package fragalign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

func batchWorkloads(n, regions int) []*Instance {
	ins := make([]*Instance, n)
	for i := range ins {
		cfg := DefaultGenConfig(int64(200 + i))
		cfg.Regions = regions
		ins[i] = Generate(cfg).Instance
		ins[i].Name = fmt.Sprintf("w%d", i)
	}
	return ins
}

// TestSolveBatchMatchesSolve pins the determinism contract of the public
// API: batch results are byte-identical to sequential Solve, at every
// shard count.
func TestSolveBatchMatchesSolve(t *testing.T) {
	ins := batchWorkloads(6, 40)
	want := make([]string, len(ins))
	for i, in := range ins {
		res, err := Solve(in, CSRImprove, WithFourApproxSeed(true))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = FormatResult(in, res)
	}
	for _, shards := range []int{1, 4, 8} {
		results, err := SolveBatch(context.Background(), ins, CSRImprove,
			WithFourApproxSeed(true), WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if got := FormatResult(ins[i], res); got != want[i] {
				t.Fatalf("shards=%d instance %d differs from sequential Solve:\n%s\nwant:\n%s",
					shards, i, got, want[i])
			}
		}
	}
}

// TestSolveBatchPartialFailure: one instance failing (exact solver over its
// fragment cap) must not poison the rest of the batch.
func TestSolveBatchPartialFailure(t *testing.T) {
	small, err := NewBuilder("small").
		FragmentH("h1", "a b").FragmentM("m1", "s t").
		Score("a", "s", 4).Score("b", "t", 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	big := batchWorkloads(1, 60)[0] // far more fragments than exact's cap
	results, err := SolveBatch(context.Background(), []*Instance{small, big}, Exact)
	if err == nil {
		t.Fatal("expected the oversized instance to fail")
	}
	if results[0] == nil || results[0].Score <= 0 {
		t.Fatalf("small instance result lost: %+v", results[0])
	}
	if results[1] != nil {
		t.Fatalf("failed instance produced a result: %+v", results[1])
	}
}

func TestSolveBatchPerInstanceTimeout(t *testing.T) {
	ins := batchWorkloads(3, 50)
	results, err := SolveBatch(context.Background(), ins, CSRImprove,
		WithPerInstanceTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	for i, r := range results {
		if r != nil {
			t.Fatalf("instance %d finished under a 1ns deadline: %+v", i, r)
		}
	}
}

func TestBatchPoolStreaming(t *testing.T) {
	ins := batchWorkloads(5, 30)
	pool := NewBatchPool(FourApprox, WithShards(2), WithQueueDepth(2))
	defer pool.Close()
	tickets := make([]*BatchTicket, len(ins))
	for i, in := range ins {
		tk, err := pool.Submit(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Index() != i {
			t.Fatalf("ticket %d got index %d", i, tk.Index())
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if res.Algorithm != FourApprox || res.Wall <= 0 {
			t.Fatalf("instance %d: bad result %+v", i, res)
		}
	}
}

// TestBatchThroughput asserts the headline batch speedup: >2x over
// sequential solving on a multi-core machine. Wall-clock assertions are
// meaningless on loaded shared runners, so the test only runs when
// explicitly requested (BATCH_SPEEDUP=1, as in the CI bench-trajectory
// job) and on ≥4 cores.
func TestBatchThroughput(t *testing.T) {
	if os.Getenv("BATCH_SPEEDUP") == "" {
		t.Skip("set BATCH_SPEEDUP=1 to run the throughput assertion")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need ≥4 cores, have %d", cores)
	}
	ins := batchWorkloads(4*cores, 60)

	seqStart := time.Now()
	for _, in := range ins {
		if _, err := Solve(in, CSRImprove, WithFourApproxSeed(true)); err != nil {
			t.Fatal(err)
		}
	}
	seq := time.Since(seqStart)

	batchStart := time.Now()
	if _, err := SolveBatch(context.Background(), ins, CSRImprove, WithFourApproxSeed(true)); err != nil {
		t.Fatal(err)
	}
	batched := time.Since(batchStart)

	speedup := float64(seq) / float64(batched)
	t.Logf("sequential %v, batched %v over %d shards: %.2fx", seq, batched, cores, speedup)
	// Full 2x is asserted only with core headroom; on exactly-4-core shared
	// runners (GitHub ubuntu-latest) GC and noisy neighbors eat into the
	// ideal ratio, so the hard floor there is 1.5x — still far beyond what
	// a broken pool (serialized shards, lock contention) would reach.
	want := 2.0
	if cores < 6 {
		want = 1.5
	}
	if speedup < want {
		t.Fatalf("batch speedup %.2fx < %.1fx on %d cores (sequential %v, batched %v)",
			speedup, want, cores, seq, batched)
	}
}
