package fragalign

import (
	"context"
	"math"
	"testing"
)

// TestIntScoreExactOnIntegralSigma: the paper example's σ is integral, so
// the int32-quantized mode is provably exact — every algorithm must return
// the same score as float64 mode.
func TestIntScoreExactOnIntegralSigma(t *testing.T) {
	in := PaperExample()
	for _, alg := range Algorithms() {
		res, err := Solve(in, alg, WithFourApproxSeed(true))
		if err != nil {
			t.Fatalf("%s float: %v", alg, err)
		}
		resI, err := Solve(in, alg, WithFourApproxSeed(true), WithIntScore(true))
		if err != nil {
			t.Fatalf("%s int: %v", alg, err)
		}
		if resI.Score != res.Score {
			t.Errorf("%s: int %v != float %v (integral σ must be exact)", alg, resI.Score, res.Score)
		}
	}
}

// TestIntScoreGenWorkloads: on float-valued generated σ the integer search
// sees scores within the quantization bound; the solutions it finds are
// re-scored under the exact σ, so results stay consistent (Solve validates
// the conjecture) and land within a whisker of float mode.
func TestIntScoreGenWorkloads(t *testing.T) {
	for _, seed := range []int64{3, 7, 11} {
		w := Generate(DefaultGenConfig(seed))
		for _, alg := range []Algorithm{CSRImprove, FourApprox, GreedyPlacement, Matching2} {
			res, err := Solve(w.Instance, alg, WithFourApproxSeed(true))
			if err != nil {
				t.Fatalf("seed %d %s float: %v", seed, alg, err)
			}
			resI, err := Solve(w.Instance, alg, WithFourApproxSeed(true), WithIntScore(true))
			if err != nil {
				t.Fatalf("seed %d %s int: %v", seed, alg, err)
			}
			if d := math.Abs(resI.Score - res.Score); d > 0.01*(1+res.Score) {
				t.Errorf("seed %d %s: int %v strays %.3g from float %v", seed, alg, resI.Score, d, res.Score)
			}
		}
	}
}

// TestIntScoreQuantizedScaling: the literal §4.1 scaling composed with
// integer mode — the scaled scorer's values are unit multiples, so the
// integer representation of the shadow search is exact.
func TestIntScoreQuantizedScaling(t *testing.T) {
	w := Generate(DefaultGenConfig(5))
	res, err := Solve(w.Instance, CSRImprove, WithFourApproxSeed(true), WithQuantizedScaling(true))
	if err != nil {
		t.Fatal(err)
	}
	resI, err := Solve(w.Instance, CSRImprove, WithFourApproxSeed(true),
		WithQuantizedScaling(true), WithIntScore(true))
	if err != nil {
		t.Fatal(err)
	}
	if resI.Score != res.Score {
		t.Errorf("quantized scaling: int %v != float %v (scaled σ is unit-quantized, must be exact)",
			resI.Score, res.Score)
	}
}

// TestSolveBatchIntMode: the batch pool's determinism guarantee holds in
// integer mode too — any shard count, byte-identical to sequential
// int-mode Solve — and the shared canonical σ compiles/quantizes once.
func TestSolveBatchIntMode(t *testing.T) {
	shared := NewCanonical(DefaultGenConfig(40))
	ins := make([]*Instance, 6)
	for i := range ins {
		cfg := DefaultGenConfig(int64(40 + i))
		cfg.Canonical = shared
		ins[i] = Generate(cfg).Instance
	}
	want := make([]*Result, len(ins))
	for i, in := range ins {
		r, err := Solve(in, CSRImprove, WithFourApproxSeed(true), WithIntScore(true))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	got, err := SolveBatch(context.Background(), ins, CSRImprove,
		WithFourApproxSeed(true), WithIntScore(true), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Score != want[i].Score || len(got[i].Solution.Matches) != len(want[i].Solution.Matches) {
			t.Errorf("instance %d: batch (%v, %d matches) != sequential (%v, %d)",
				i, got[i].Score, len(got[i].Solution.Matches), want[i].Score, len(want[i].Solution.Matches))
		}
	}
}

// TestCanonicalSharedSigma: instances generated against one Canonical carry
// the same σ table pointer and alphabet, the precondition for the batch
// pool's per-alphabet cache.
func TestCanonicalSharedSigma(t *testing.T) {
	shared := NewCanonical(DefaultGenConfig(50))
	a := Generate(func() GenConfig { c := DefaultGenConfig(50); c.Canonical = shared; return c }())
	b := Generate(func() GenConfig { c := DefaultGenConfig(51); c.Canonical = shared; return c }())
	if a.Instance.Sigma != b.Instance.Sigma {
		t.Fatal("canonical instances must share one σ table")
	}
	if a.Instance.Alpha != b.Instance.Alpha {
		t.Fatal("canonical instances must share one alphabet")
	}
	if a.Instance.Name == b.Instance.Name {
		t.Fatal("distinct seeds must generate distinct instances")
	}
	for _, w := range []*Workload{a, b} {
		if _, err := Solve(w.Instance, FourApprox); err != nil {
			t.Fatalf("canonical instance does not solve: %v", err)
		}
	}
}
