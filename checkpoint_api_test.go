package fragalign

// Public-API plumbing tests for crash-safe solves: checkpoint sinks and
// resume logs attached per submission via context, and the memory-budget
// admission gate — the surfaces csrbatch -journal and csrserve -mem-budget
// are built on. The bit-identity semantics themselves are pinned in
// internal/improve; here we prove the root package wires them through a
// BatchPool unchanged.

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// apiSink is a minimal CheckpointSink over the exported op type.
type apiSink struct{ ops []CheckpointOp }

func (s *apiSink) Accept(c CheckpointOp) error {
	s.ops = append(s.ops, c)
	return nil
}

func checkpointWorkload() *Instance {
	// Unseeded improvement on this config accepts a non-trivial op sequence
	// (the 4-approx seed would already be locally optimal).
	cfg := DefaultGenConfig(11)
	cfg.Regions = 60
	return Generate(cfg).Instance
}

func TestBatchPoolCheckpointResume(t *testing.T) {
	in := checkpointWorkload()
	pool := NewBatchPool(CSRImprove, WithShards(2))
	defer pool.Close()

	sink := &apiSink{}
	tk, err := pool.Submit(ContextWithCheckpoint(nil, sink), in)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.ops) == 0 {
		t.Fatal("no ops checkpointed; workload too easy to test resume")
	}
	if full.Stats == nil || full.Stats.Accepted != len(sink.ops) {
		t.Fatalf("sink saw %d ops, stats %+v", len(sink.ops), full.Stats)
	}

	// Resume from a prefix: same score, same matches, fresh sink holds
	// exactly the remainder of the full log.
	k := len(sink.ops) / 2
	tail := &apiSink{}
	ctx := ContextWithResume(ContextWithCheckpoint(nil, tail), sink.ops[:k])
	tk, err = pool.Submit(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Resumed != k {
		t.Fatalf("Stats.Resumed = %d, want %d", res.Stats.Resumed, k)
	}
	if res.Score != full.Score {
		t.Fatalf("resumed score %v, want %v", res.Score, full.Score)
	}
	if !reflect.DeepEqual(res.Solution.Matches, full.Solution.Matches) {
		t.Fatal("resumed match set diverged")
	}
	if !reflect.DeepEqual(append(sink.ops[:k:k], tail.ops...), sink.ops) {
		t.Fatalf("resumed checkpoint tail %v does not extend the prefix to %v", tail.ops, sink.ops)
	}
}

func TestSolveHonorsCheckpointOptions(t *testing.T) {
	// The one-shot Solve path has no context parameter; SolveBatch with one
	// instance is the documented way to checkpoint a single long solve.
	in := checkpointWorkload()
	sink := &apiSink{}
	pool := NewBatchPool(CSRImprove, WithShards(1))
	defer pool.Close()
	tk, err := pool.Submit(ContextWithCheckpoint(context.Background(), sink), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}

	// Foreign resume ops must fail the instance, not poison the pool.
	bad := sink.ops[0]
	bad.F.Idx = 999
	tk, err = pool.Submit(ContextWithResume(nil, []CheckpointOp{bad}), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err == nil {
		t.Fatal("foreign resume op solved cleanly")
	}
	// The pool is still healthy afterwards.
	tk, err = pool.Submit(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatalf("pool unhealthy after rejected resume: %v", err)
	}
}

func TestMemBudgetPublicAPI(t *testing.T) {
	in := checkpointWorkload()
	est := EstimateMem(in)
	if est.Total() <= 0 || est.SigmaBytes <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}

	pool := NewBatchPool(CSRImprove, WithShards(1), WithMemBudget(est.Total()/2))
	defer pool.Close()
	var ob *OverBudgetError
	if _, err := pool.Submit(nil, in); !errors.As(err, &ob) {
		t.Fatalf("Submit err = %v, want *OverBudgetError", err)
	}
	if ob.Budget != est.Total()/2 || ob.Estimate.Total() != est.Total() {
		t.Fatalf("error payload wrong: %+v vs estimate %d", ob, est.Total())
	}

	ok := NewBatchPool(CSRImprove, WithShards(1), WithMemBudget(est.Total()*4))
	defer ok.Close()
	tk, err := ok.Submit(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}
