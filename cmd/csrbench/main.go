// Command csrbench runs the full experiment suite (E1–E10 of DESIGN.md)
// and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	csrbench [-seed 1] [-only E2,E7]
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "experiment seed")
		only = flag.String("only", "", "comma-separated experiment IDs (default all)")
	)
	flag.Parse()
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	for _, t := range experiments.All(*seed) {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		fmt.Println(t.Format())
	}
}
