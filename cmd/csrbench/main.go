// Command csrbench runs the full experiment suite (E1–E10 of DESIGN.md)
// and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	csrbench [-seed 1] [-only E2,E7]
//	csrbench -json [-seed 1] [-regions 60] [-algs csr-improve,four-approx]
//
// With -json it instead solves one synthetic workload with every selected
// algorithm and emits machine-readable records (per-algorithm wall time,
// score, and improvement statistics) so the performance trajectory can be
// tracked across revisions in BENCH_*.json files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	fragalign "repro"
	"repro/internal/experiments"
)

// algResult is one machine-readable benchmark record.
type algResult struct {
	Algorithm string  `json:"algorithm"`
	Seed      int64   `json:"seed"`
	Regions   int     `json:"regions"`
	WallMS    float64 `json:"wall_ms"`
	Score     float64 `json:"score"`
	Matches   int     `json:"matches,omitempty"`
	Rounds    int     `json:"rounds,omitempty"`
	Evaluated int     `json:"evaluated,omitempty"`
	Accepted  int     `json:"accepted,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "experiment seed")
		only     = flag.String("only", "", "comma-separated experiment IDs (default all)")
		asJSON   = flag.Bool("json", false, "emit per-algorithm JSON records instead of tables")
		regions  = flag.Int("regions", 60, "synthetic workload size for -json")
		algsFlag = flag.String("algs", "", "comma-separated algorithms for -json (default all but exact)")
	)
	flag.Parse()
	if *asJSON {
		if err := runJSON(*seed, *regions, *algsFlag); err != nil {
			fmt.Fprintln(os.Stderr, "csrbench:", err)
			os.Exit(1)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	for _, t := range experiments.All(*seed) {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		fmt.Println(t.Format())
	}
}

func runJSON(seed int64, regions int, algsFlag string) error {
	cfg := fragalign.DefaultGenConfig(seed)
	cfg.Regions = regions
	w := fragalign.Generate(cfg)

	var algs []fragalign.Algorithm
	if algsFlag == "" {
		// Exact enumeration is factorial; exclude it from the default sweep.
		for _, a := range fragalign.Algorithms() {
			if a != fragalign.Exact {
				algs = append(algs, a)
			}
		}
	} else {
		for _, s := range strings.Split(algsFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				algs = append(algs, fragalign.Algorithm(s))
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	for _, alg := range algs {
		rec := algResult{Algorithm: string(alg), Seed: seed, Regions: regions}
		start := time.Now()
		res, err := fragalign.Solve(w.Instance, alg,
			fragalign.WithEps(0.05), fragalign.WithFourApproxSeed(true))
		rec.WallMS = float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			rec.Error = err.Error()
		} else {
			rec.Score = res.Score
			if res.Solution != nil {
				rec.Matches = len(res.Solution.Matches)
			}
			if res.Stats != nil {
				rec.Rounds = res.Stats.Rounds
				rec.Evaluated = res.Stats.Evaluated
				rec.Accepted = res.Stats.Accepted
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
