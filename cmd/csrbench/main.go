// Command csrbench runs the full experiment suite (E1–E10 of DESIGN.md)
// and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	csrbench [-seed 1] [-only E2,E7]
//	csrbench -json [-seed 1] [-regions 60] [-instances 8] [-repeat 3] [-algs csr-improve,four-approx]
//	csrbench -json -full-enum -algs csr-improve   # incremental-enumeration ablation row
//	csrbench -json -lazy=false -algs csr-improve  # eager-selection ablation row (mode=eager)
//
// With -json it instead solves synthetic workloads with every selected
// algorithm and emits machine-readable records — per-algorithm wall time,
// heap allocations/bytes, score, and improvement statistics — so the
// performance trajectory can be tracked across revisions in BENCH_*.json
// files and gated by cmd/benchdiff. -instances N solves N workloads (seeds
// seed..seed+N-1) per algorithm through the sharded batch pool
// (fragalign.SolveBatch); -repeat R reports the minimum wall/allocation
// cost over R runs, which is what CI should compare.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	fragalign "repro"
	"repro/internal/experiments"
)

// algResult is one machine-readable benchmark record. Mode distinguishes
// the solver path — "int32" for the quantized integer kernels, "full-enum"
// for from-scratch candidate enumeration (the incremental-enumeration
// ablation), "eager" for the full-list selection engine (the lazy-selection
// ablation, csrbench -lazy=false), combinations joined with "+", empty for
// the default exact float64 lazy path — and benchdiff matches records on
// (algorithm, mode, …) so every path is gated independently.
type algResult struct {
	Algorithm string  `json:"algorithm"`
	Mode      string  `json:"mode,omitempty"`
	Seed      int64   `json:"seed"`
	Regions   int     `json:"regions"`
	Instances int     `json:"instances"`
	WallMS    float64 `json:"wall_ms"`
	Allocs    uint64  `json:"allocs"`
	Bytes     uint64  `json:"bytes"`
	Score     float64 `json:"score"`
	Matches   int     `json:"matches,omitempty"`
	// Evaluated counts candidate gains obtained per round, summed over the
	// batch: the full enumerated list each round under the eager engines,
	// only the gains actually computed by simulation under the lazy engine
	// (improve.Stats.Evaluated).
	Rounds    int `json:"rounds,omitempty"`
	Evaluated int `json:"evaluated,omitempty"`
	Accepted  int `json:"accepted,omitempty"`
	// Popped / Resimulated / Skipped aggregate the lazy selection engine's
	// heap traffic over the batch (improve.Stats): heap extractions, stale
	// candidates re-simulated after an accepted attempt dirtied them, and
	// cached candidates carried through a selection untouched. All zero in
	// "eager" / "full-enum" mode rows. benchdiff gates improve rows on a
	// resimulated-count regression, so staleness-tracking rot is caught in
	// CI even when wall time hides it.
	Popped      int `json:"popped,omitempty"`
	Resimulated int `json:"resimulated,omitempty"`
	Skipped     int `json:"skipped,omitempty"`
	// EnumRefreshed / EnumReused aggregate the enumeration subsystem's
	// piece-cache traffic over the batch (improve.Stats).
	EnumRefreshed int `json:"enum_refreshed,omitempty"`
	EnumReused    int `json:"enum_reused,omitempty"`
	// SeedPairs aggregates the seeded candidate universe size over the
	// batch (improve.Stats.SeedPairs); zero unless -seeded.
	SeedPairs int `json:"seed_pairs,omitempty"`
	// Recovery is the seeded/exact score ratio measured on a downsampled
	// sibling of the preset instance (see -seed-accuracy); only present on
	// the first record of a -seed-accuracy run.
	Recovery float64 `json:"recovery,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// jsonOpts carries the -json benchmark configuration.
type jsonOpts struct {
	seed        int64
	regions     int
	instances   int
	repeat      int
	shards      int
	algs        string
	intMode     bool
	fullEnum    bool
	lazySel     bool
	sharedAl    bool
	seeded      bool
	preset      string
	label       string
	seedAcc     bool
	minRecovery float64
}

func main() {
	var (
		seed      = flag.Int64("seed", 1, "experiment seed")
		only      = flag.String("only", "", "comma-separated experiment IDs (default all)")
		asJSON    = flag.Bool("json", false, "emit per-algorithm JSON records instead of tables")
		regions   = flag.Int("regions", 60, "synthetic workload size for -json")
		instances = flag.Int("instances", 1, "workloads per algorithm for -json (seeds seed..seed+n-1)")
		repeat    = flag.Int("repeat", 1, "repetitions per algorithm for -json; the minimum is reported")
		shards    = flag.Int("shards", 0, "batch-pool shards for -json (0 = GOMAXPROCS)")
		algsFlag  = flag.String("algs", "", "comma-separated algorithms for -json (default all but exact)")
		intMode   = flag.Bool("int", false, "solve with the int32-quantized score kernels (records carry mode=int32)")
		fullEnum  = flag.Bool("full-enum", false, "disable incremental candidate enumeration — the ablation trajectory row (records carry mode=full-enum)")
		lazySel   = flag.Bool("lazy", true, "use the lazy best-first selection engine; false runs the eager full-list ablation (records carry mode=eager)")
		sharedAl  = flag.Bool("shared-alphabet", false, "generate all -json instances over one canonical alphabet/σ table (exercises the batch pool's per-alphabet cache)")
		seeded    = flag.Bool("seeded", false, "solve with minimizer-seeded sparse candidates (records carry mode=seeded)")
		preset    = flag.String("preset", "", "generate -json workloads from a named preset (genome-small, genome-large) instead of -regions")
		label     = flag.String("label", "", "override the algorithm field of -json records (trajectory row naming)")
		seedAcc   = flag.Bool("seed-accuracy", false, "also measure seeded/exact score recovery on a downsampled sibling instance; adds a recovery field")
		minRec    = flag.Float64("min-recovery", 0, "with -seed-accuracy: exit non-zero when recovery falls below this ratio")
	)
	flag.Parse()
	if *asJSON {
		opts := jsonOpts{
			seed: *seed, regions: *regions, instances: *instances,
			repeat: *repeat, shards: *shards, algs: *algsFlag,
			intMode: *intMode, fullEnum: *fullEnum, lazySel: *lazySel,
			sharedAl: *sharedAl, seeded: *seeded, preset: *preset,
			label: *label, seedAcc: *seedAcc, minRecovery: *minRec,
		}
		if err := runJSON(opts); err != nil {
			fmt.Fprintln(os.Stderr, "csrbench:", err)
			os.Exit(1)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	for _, t := range experiments.All(*seed) {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		fmt.Println(t.Format())
	}
}

func runJSON(o jsonOpts) error {
	seed, regions := o.seed, o.regions
	instances, repeat, shards := o.instances, o.repeat, o.shards
	algsFlag := o.algs
	intMode, fullEnum, lazySel := o.intMode, o.fullEnum, o.lazySel
	if instances < 1 {
		instances = 1
	}
	if repeat < 1 {
		repeat = 1
	}
	var base fragalign.GenConfig
	if o.preset != "" {
		pc, ok := fragalign.GenPreset(o.preset, seed)
		if !ok {
			return fmt.Errorf("unknown -preset %q (have %v)", o.preset, fragalign.GenPresetNames())
		}
		base, regions = pc, pc.Regions
	} else {
		base = fragalign.DefaultGenConfig(seed)
		base.Regions = regions
		if o.sharedAl {
			base.Canonical = fragalign.NewCanonical(base)
		}
	}
	ins := make([]*fragalign.Instance, instances)
	for i := range ins {
		cfg := base
		cfg.Seed = seed + int64(i)
		ins[i] = fragalign.Generate(cfg).Instance
	}
	recovery := 0.0
	if o.seedAcc {
		var err error
		if recovery, err = measureRecovery(o.preset, seed); err != nil {
			return err
		}
	}

	var algs []fragalign.Algorithm
	if algsFlag == "" {
		// Exact enumeration is factorial; exclude it from the default sweep.
		for _, a := range fragalign.Algorithms() {
			if a != fragalign.Exact {
				algs = append(algs, a)
			}
		}
	} else {
		for _, s := range strings.Split(algsFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				algs = append(algs, fragalign.Algorithm(s))
			}
		}
	}

	var modes []string
	if o.seeded {
		modes = append(modes, "seeded")
	}
	if intMode {
		modes = append(modes, "int32")
	}
	if fullEnum {
		modes = append(modes, "full-enum")
	}
	if !lazySel {
		modes = append(modes, "eager")
	}
	mode := strings.Join(modes, "+")
	enc := json.NewEncoder(os.Stdout)
	for ai, alg := range algs {
		rec := algResult{Algorithm: string(alg), Mode: mode, Seed: seed, Regions: regions, Instances: instances}
		if o.label != "" {
			rec.Algorithm = o.label
		}
		if o.seedAcc && ai == 0 {
			rec.Recovery = recovery
		}
		// Report the minimum over the repeats: wall time and allocation
		// deltas are noisy on shared runners, and the minimum is the
		// stablest estimator of the work's true cost.
		for r := 0; r < repeat; r++ {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			results, err := fragalign.SolveBatch(context.Background(), ins, alg,
				fragalign.WithEps(0.05), fragalign.WithFourApproxSeed(true),
				fragalign.WithShards(shards), fragalign.WithIntScore(intMode),
				fragalign.WithIncrementalEnum(!fullEnum),
				fragalign.WithLazySelection(lazySel),
				fragalign.WithSeededCandidates(o.seeded))
			wallMS := float64(time.Since(start).Microseconds()) / 1000
			runtime.ReadMemStats(&m1)
			if err != nil {
				rec.Error = err.Error()
				break
			}
			if r == 0 || wallMS < rec.WallMS {
				rec.WallMS = wallMS
			}
			if allocs := m1.Mallocs - m0.Mallocs; r == 0 || allocs < rec.Allocs {
				rec.Allocs = allocs
			}
			if bytes := m1.TotalAlloc - m0.TotalAlloc; r == 0 || bytes < rec.Bytes {
				rec.Bytes = bytes
			}
			if r > 0 {
				continue // scores and stats are deterministic across repeats
			}
			rec.Score, rec.Matches = 0, 0
			for _, res := range results {
				rec.Score += res.Score
				if res.Solution != nil {
					rec.Matches += len(res.Solution.Matches)
				}
				if res.Stats != nil {
					rec.Rounds += res.Stats.Rounds
					rec.Evaluated += res.Stats.Evaluated
					rec.Accepted += res.Stats.Accepted
					rec.Popped += res.Stats.Popped
					rec.Resimulated += res.Stats.Resimulated
					rec.Skipped += res.Stats.Skipped
					rec.EnumRefreshed += res.Stats.EnumRefreshed
					rec.EnumReused += res.Stats.EnumReused
					rec.SeedPairs += res.Stats.SeedPairs
				}
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if o.seedAcc && o.minRecovery > 0 && recovery < o.minRecovery {
		return fmt.Errorf("seeded recovery %.4f below -min-recovery %.4f", recovery, o.minRecovery)
	}
	return nil
}

// measureRecovery solves one downsampled (~300-region) sibling of the
// preset family twice — classic all-pairs enumeration and minimizer-seeded
// — and returns the seeded/classic score ratio. Downsampling keeps the
// exact solve tractable while preserving the preset's rearrangement and
// spurious-pair density, so the ratio is a per-run guard that the seeding
// pipeline still recovers the solutions the full sweep would find.
func measureRecovery(preset string, seed int64) (float64, error) {
	cfg := fragalign.DefaultGenConfig(seed)
	cfg.Regions = 300
	cfg.MeanContig = 6
	cfg.Inversions = 12
	cfg.InversionLen = 25
	cfg.Translocations = 3
	cfg.Spurious = 30
	if preset != "" {
		if pc, ok := fragalign.GenPreset(preset, seed); ok {
			// Inherit the preset's score model parameters; the shape above
			// stays downsampled.
			cfg.BaseScore, cfg.Noise, cfg.SpuriousScore = pc.BaseScore, pc.Noise, pc.SpuriousScore
		}
	}
	in := fragalign.Generate(cfg).Instance
	common := []fragalign.Option{
		fragalign.WithEps(0.05), fragalign.WithFourApproxSeed(true),
	}
	exact, err := fragalign.Solve(in, fragalign.CSRImprove, common...)
	if err != nil {
		return 0, fmt.Errorf("recovery exact solve: %w", err)
	}
	sdd, err := fragalign.Solve(in, fragalign.CSRImprove,
		append(common, fragalign.WithSeededCandidates(true))...)
	if err != nil {
		return 0, fmt.Errorf("recovery seeded solve: %w", err)
	}
	if exact.Score == 0 {
		return 1, nil
	}
	return sdd.Score / exact.Score, nil
}
