// Command benchdiff compares two csrbench -json trajectory files and
// enforces the CI benchmark gate: it prints a per-algorithm delta table and
// exits non-zero when any algorithm's wall time (or allocation count)
// regressed beyond the configured threshold.
//
// Usage:
//
//	benchdiff [-max-wall 25] [-max-allocs 50] BENCH_BASELINE.json BENCH_PR.json
//
// Records are matched by (algorithm, mode, seed, regions, instances) — the
// float64 and int32-quantized score paths gate independently. Baseline
// records below the noise floors (-floor-ms, -floor-allocs) are reported
// but never gated — sub-millisecond timings on shared runners are jitter,
// not signal. Improve rows additionally gate on the lazy selection
// engine's resimulated count (-max-resim, deterministic per workload, so
// no noise floor — just a size floor), catching staleness-tracking rot
// that wall-time jitter would hide. With -max-int-ratio set, the current
// run's batch csr-improve rows are additionally gated on the
// int32-vs-float64 wall ratio — a same-run comparison immune to runner
// drift, protecting the quantized kernels' payoff. A record present in the baseline but
// missing from the PR file fails the gate (an algorithm silently dropped
// from the sweep is itself a regression); new PR-only records are reported
// as additions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// record mirrors csrbench's algResult; unknown fields are ignored so the
// two tools can evolve independently.
type record struct {
	Algorithm string  `json:"algorithm"`
	Mode      string  `json:"mode"` // "" = float64 path, "int32" = quantized kernels
	Seed      int64   `json:"seed"`
	Regions   int     `json:"regions"`
	Instances int     `json:"instances"`
	WallMS    float64 `json:"wall_ms"`
	Allocs    uint64  `json:"allocs"`
	Bytes     uint64  `json:"bytes"`
	Score     float64 `json:"score"`
	// Evaluated and Resimulated are the improve driver's work counters
	// (deterministic, unlike wall time): gains obtained per round and stale
	// gains re-simulated by the lazy selection engine. Improve rows — rows
	// whose baseline carries these counters — are gated on a resimulated
	// regression, which catches staleness-tracking rot (over-invalidation)
	// that runner noise would hide in the wall gate.
	Evaluated   int    `json:"evaluated,omitempty"`
	Resimulated int    `json:"resimulated,omitempty"`
	Error       string `json:"error,omitempty"`
}

type key struct {
	alg       string
	mode      string
	seed      int64
	regions   int
	instances int
}

// label renders the algorithm with its scoring mode, the table's first
// column.
func (k key) label() string {
	if k.mode != "" {
		return k.alg + "/" + k.mode
	}
	return k.alg
}

func (k key) String() string {
	s := fmt.Sprintf("%s seed=%d regions=%d", k.label(), k.seed, k.regions)
	if k.instances > 1 {
		s += fmt.Sprintf(" instances=%d", k.instances)
	}
	return s
}

func load(path string) (map[key]record, []key, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	recs := map[key]record{}
	var order []key
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		if r.Instances == 0 {
			r.Instances = 1 // records from before the batch port
		}
		k := key{r.Algorithm, r.Mode, r.Seed, r.Regions, r.Instances}
		if _, dup := recs[k]; !dup {
			order = append(order, k)
		}
		recs[k] = r // last record wins on duplicates
	}
	return recs, order, sc.Err()
}

// pct returns the relative change base→cur in percent.
func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func main() {
	var (
		maxWall     = flag.Float64("max-wall", 25, "max wall-time regression percent before failing (0 disables)")
		maxAllocs   = flag.Float64("max-allocs", 50, "max allocation-count regression percent before failing (0 disables)")
		maxResim    = flag.Float64("max-resim", 25, "max resimulated-count regression percent for improve rows before failing (0 disables)")
		floorMS     = flag.Float64("floor-ms", 5, "baseline wall floor in ms; faster records are never gated")
		floorAllocs = flag.Uint64("floor-allocs", 100000, "baseline allocation floor; smaller records are never alloc-gated")
		floorResim  = flag.Int("floor-resim", 50, "baseline resimulated floor; smaller records are never resim-gated")
		maxIntRatio = flag.Float64("max-int-ratio", 0, "max int32/float64 wall ratio for batch csr-improve rows of the CURRENT run (0 disables)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	base, baseOrder, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cur, curOrder, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	var failures []string
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ALGORITHM\tINST\tWALL base→cur (ms)\tΔWALL\tALLOCS base→cur\tΔALLOCS\tNOTE")
	for _, k := range baseOrder {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", k))
			fmt.Fprintf(tw, "%s\t%d\t%.1f → —\t—\t—\t—\tMISSING\n", k.label(), k.instances, b.WallMS)
			continue
		}
		if c.Error != "" {
			failures = append(failures, fmt.Sprintf("%s: current run errored: %s", k, c.Error))
			fmt.Fprintf(tw, "%s\t%d\t—\t—\t—\t—\tERROR\n", k.label(), k.instances)
			continue
		}
		dWall := pct(b.WallMS, c.WallMS)
		dAllocs := pct(float64(b.Allocs), float64(c.Allocs))
		var notes []string
		if b.WallMS < *floorMS {
			notes = append(notes, "below wall floor")
		} else if *maxWall > 0 && dWall > *maxWall {
			notes = append(notes, "WALL REGRESSION")
			failures = append(failures, fmt.Sprintf("%s: wall %.1fms → %.1fms (%+.1f%% > %.0f%%)",
				k, b.WallMS, c.WallMS, dWall, *maxWall))
		}
		if b.Allocs == 0 || b.Allocs < *floorAllocs {
			// Baselines predating alloc tracking (or tiny ones) only report.
		} else if *maxAllocs > 0 && dAllocs > *maxAllocs {
			notes = append(notes, "ALLOC REGRESSION")
			failures = append(failures, fmt.Sprintf("%s: allocs %d → %d (%+.1f%% > %.0f%%)",
				k, b.Allocs, c.Allocs, dAllocs, *maxAllocs))
		}
		// Resimulated counts are deterministic per workload, so this gate has
		// no noise floor problem — only a size floor against ratio blowups on
		// tiny counts. Rows without baseline counters (non-improve
		// algorithms, eager/full-enum ablations) are skipped.
		if b.Resimulated >= *floorResim && *maxResim > 0 {
			if dResim := pct(float64(b.Resimulated), float64(c.Resimulated)); dResim > *maxResim {
				notes = append(notes, "RESIM REGRESSION")
				failures = append(failures, fmt.Sprintf("%s: resimulated %d → %d (%+.1f%% > %.0f%%)",
					k, b.Resimulated, c.Resimulated, dResim, *maxResim))
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f → %.1f\t%+.1f%%\t%d → %d\t%+.1f%%\t%s\n",
			k.label(), k.instances, b.WallMS, c.WallMS, dWall, b.Allocs, c.Allocs, dAllocs,
			strings.Join(notes, ", "))
	}
	sort.Slice(curOrder, func(i, j int) bool { return curOrder[i].String() < curOrder[j].String() })
	for _, k := range curOrder {
		if _, ok := base[k]; !ok {
			fmt.Fprintf(tw, "%s\t%d\t— → %.1f\t—\t— → %d\t—\tNEW\n",
				k.label(), k.instances, cur[k].WallMS, cur[k].Allocs)
		}
	}
	tw.Flush()

	// Relative mode gate: within the CURRENT run, the quantized batch solve
	// must keep its wall-time win over the float64 path. Both rows come from
	// the same runner and run, so their ratio is far more stable than either
	// absolute wall — this is the gate that protects the int32 kernels' payoff
	// from eroding silently while absolute thresholds absorb runner drift.
	// Gated rows: csr-improve at instances > 1 (the pinned batch workload;
	// single-instance rows are too close to the wall floor to ratio-gate).
	if *maxIntRatio > 0 {
		for _, k := range curOrder {
			if k.alg != "csr-improve" || k.mode != "int32" || k.instances <= 1 {
				continue
			}
			fk := k
			fk.mode = ""
			fc, ok := cur[fk]
			ic := cur[k]
			if !ok || ic.Error != "" || fc.Error != "" || fc.WallMS < *floorMS {
				continue
			}
			ratio := ic.WallMS / fc.WallMS
			fmt.Printf("int32/float64 wall ratio (%s, instances=%d): %.1f/%.1f = %.3f (max %.2f)\n",
				k.alg, k.instances, ic.WallMS, fc.WallMS, ratio, *maxIntRatio)
			if ratio > *maxIntRatio {
				failures = append(failures, fmt.Sprintf("%s: int32 wall %.1fms vs float64 %.1fms — ratio %.3f > %.2f",
					k, ic.WallMS, fc.WallMS, ratio, *maxIntRatio))
			}
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: trajectory OK")
}
