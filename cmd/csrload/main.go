// Command csrload is the load-generator harness for csrserve: open-loop
// Poisson arrivals at a target request rate, each request a JSONL batch of
// generated instances POSTed to /v1/solve, with achieved req/s and latency
// quantiles on stderr.
//
// Usage:
//
//	csrload -url http://localhost:8437 -rate 50 -requests 200
//	csrload -self -shards 8 -rate 0 -requests 64 -json > row.json
//
// Arrivals are open-loop (scheduled up front from a seeded exponential
// process, independent of response times) and latency is measured from the
// scheduled arrival, so a slow server shows up as growing latency rather
// than being silently absorbed by a stalled generator (no coordinated
// omission). -rate 0 removes pacing entirely: every request is due at t=0
// and the run measures saturated throughput.
//
// With -self the harness starts an in-process csrserve-equivalent on a
// loopback port and drives that — no daemon management, which is how the
// pinned serve-sustained benchmark row runs in CI. -json emits a
// benchdiff-compatible record (algorithm "serve-sustained", wall_ms = the
// run's total elapsed time) on stdout; -hist writes a latency histogram.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	fragalign "repro"
	"repro/internal/encoding"
	"repro/internal/serve"
)

type reqResult struct {
	latency    time.Duration
	status     int
	retryAfter string // Retry-After header on a 429
	records    int
	failures   int // error records within an accepted stream
	score      float64
	err        error // transport/parse failure
}

func main() {
	var (
		url      = flag.String("url", "", "csrserve base URL (empty requires -self)")
		self     = flag.Bool("self", false, "start an in-process server on loopback and drive it")
		rate     = flag.Float64("rate", 50, "target request arrivals per second (0 = no pacing, all due at t=0)")
		requests = flag.Int("requests", 200, "total requests to send")
		perReq   = flag.Int("instances", 4, "instances per request")
		regions  = flag.Int("regions", 40, "regions per generated instance")
		seed     = flag.Int64("seed", 1, "workload and arrival-process seed")
		tenant   = flag.String("tenant", "load", "X-Tenant header (empty disables σ affinity)")
		order    = flag.String("order", "", "order query parameter (submission|completion)")
		timeout  = flag.Duration("timeout", 0, "per-instance timeout query parameter (0 = server default)")
		repeat   = flag.Int("repeat", 1, "run the whole load this many times and report the fastest run (min-of-N, the csrbench timing convention)")
		histPath = flag.String("hist", "", "write a latency histogram to this file")
		jsonOut  = flag.Bool("json", false, "emit a benchdiff-compatible JSON record on stdout")
		// -self pool shape.
		algo   = flag.String("algo", "csr-improve", "algorithm (-self)")
		shards = flag.Int("shards", 0, "pool shards (-self; 0 = GOMAXPROCS)")
		queue  = flag.Int("queue", 0, "pool queue bound (-self; 0 = 2×shards)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: csrload [flags]")
		os.Exit(2)
	}
	if *requests <= 0 || *perReq <= 0 {
		fmt.Fprintln(os.Stderr, "csrload: -requests and -instances must be positive")
		os.Exit(2)
	}

	base := *url
	if *self {
		if base != "" {
			fmt.Fprintln(os.Stderr, "csrload: -self and -url are mutually exclusive")
			os.Exit(2)
		}
		var stop func()
		base, stop = startSelf(*algo, *shards, *queue)
		defer stop()
	} else if base == "" {
		fmt.Fprintln(os.Stderr, "csrload: need -url or -self")
		os.Exit(2)
	}
	base = strings.TrimRight(base, "/")
	target := base + "/v1/solve"
	var params []string
	if *order != "" {
		params = append(params, "order="+*order)
	}
	if *timeout > 0 {
		params = append(params, "timeout="+timeout.String())
	}
	if len(params) > 0 {
		target += "?" + strings.Join(params, "&")
	}

	// Pre-generate every request body and the full arrival schedule before
	// the clock starts: the measured run does no generation work, and the
	// same seed always produces the same workload and the same arrival
	// process.
	bodies := make([][]byte, *requests)
	for i := range bodies {
		var buf bytes.Buffer
		for j := 0; j < *perReq; j++ {
			cfg := fragalign.DefaultGenConfig(*seed*1_000_000 + int64(i**perReq+j))
			cfg.Regions = *regions
			in := fragalign.Generate(cfg).Instance
			in.Name = fmt.Sprintf("r%d.%d", i, j)
			if err := encoding.WriteJSONLine(&buf, in); err != nil {
				fmt.Fprintln(os.Stderr, "csrload:", err)
				os.Exit(1)
			}
		}
		bodies[i] = buf.Bytes()
	}
	arrivals := make([]time.Duration, *requests)
	if *rate > 0 {
		rng := rand.New(rand.NewSource(*seed))
		var at time.Duration
		for i := range arrivals {
			at += time.Duration(rng.ExpFloat64() / *rate * float64(time.Second))
			arrivals[i] = at
		}
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *requests}}
	run := func() ([]reqResult, time.Duration) {
		results := make([]reqResult, *requests)
		start := time.Now()
		var wg sync.WaitGroup
		for i := range bodies {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				due := start.Add(arrivals[i])
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				results[i] = shoot(client, target, *tenant, bodies[i])
				// Open-loop latency: from scheduled arrival, not actual send.
				results[i].latency = time.Since(due)
			}()
		}
		wg.Wait()
		return results, time.Since(start)
	}
	if *repeat < 1 {
		*repeat = 1
	}
	results, elapsed := run()
	for r := 1; r < *repeat; r++ {
		res, el := run()
		if el < elapsed {
			results, elapsed = res, el
		}
	}

	var ok, rejected, retryAfterOK, failed, records, instFail int
	var score float64
	var lats []time.Duration
	for i, r := range results {
		switch {
		case r.err != nil:
			failed++
			fmt.Fprintf(os.Stderr, "csrload: request %d: %v\n", i, r.err)
		case r.status == http.StatusTooManyRequests:
			rejected++
			if r.retryAfter != "" {
				retryAfterOK++
			}
		case r.status != http.StatusOK:
			failed++
			fmt.Fprintf(os.Stderr, "csrload: request %d: HTTP %d\n", i, r.status)
		default:
			ok++
			records += r.records
			instFail += r.failures
			score += r.score
			lats = append(lats, r.latency)
		}
	}

	rps := 0.0
	if elapsed > 0 {
		rps = float64(ok) / elapsed.Seconds()
	}
	fmt.Fprintf(os.Stderr,
		"csrload: %d requests (%d ok, %d rejected 429, %d failed) in %v — %.1f req/s, %.1f inst/s\n",
		*requests, ok, rejected, failed, elapsed.Round(time.Millisecond), rps,
		float64(records)/elapsed.Seconds())
	if rejected > 0 {
		fmt.Fprintf(os.Stderr, "csrload: Retry-After present on %d/%d rejections\n",
			retryAfterOK, rejected)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Fprintf(os.Stderr, "csrload: latency p50 %v  p90 %v  p99 %v  max %v\n",
			quantile(lats, 0.50).Round(time.Microsecond),
			quantile(lats, 0.90).Round(time.Microsecond),
			quantile(lats, 0.99).Round(time.Microsecond),
			lats[len(lats)-1].Round(time.Microsecond))
	}
	if *histPath != "" {
		if err := writeHist(*histPath, lats); err != nil {
			fmt.Fprintln(os.Stderr, "csrload:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		rec := map[string]any{
			"algorithm": "serve-sustained",
			"seed":      *seed,
			"regions":   *regions,
			"instances": *requests * *perReq,
			"wall_ms":   float64(elapsed.Microseconds()) / 1000,
			"allocs":    0, // below benchdiff's alloc floor: the wall gate is the contract
			"score":     score,
			"requests":  *requests,
			"rejected":  rejected,
		}
		data, err := json.Marshal(rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrload:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	}
	if failed > 0 || instFail > 0 {
		fmt.Fprintf(os.Stderr, "csrload: %d failed requests, %d failed instances\n", failed, instFail)
		os.Exit(1)
	}
}

// shoot sends one request and consumes its stream.
func shoot(client *http.Client, target, tenant string, body []byte) reqResult {
	req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return reqResult{err: err}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return reqResult{err: err}
	}
	defer resp.Body.Close()
	r := reqResult{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return r
	}
	r.err = encoding.ReadJSONLResults(resp.Body, func(rec encoding.ResultRecord) error {
		r.records++
		if rec.Error != "" {
			r.failures++
		} else {
			r.score += rec.Score
		}
		return nil
	})
	return r
}

// quantile returns the q-quantile of sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// writeHist writes a log2-bucketed latency histogram: one "le_ms count"
// line per bucket (cumulative, Prometheus-style), ending with "+inf".
func writeHist(path string, lats []time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# csrload latency histogram: cumulative request count per le_ms bucket")
	cum := 0
	i := 0
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	for le := time.Millisecond; le <= 1<<16*time.Millisecond; le *= 2 {
		for i < len(lats) && lats[i] <= le {
			cum++
			i++
		}
		fmt.Fprintf(f, "%d %d\n", le/time.Millisecond, cum)
	}
	fmt.Fprintf(f, "+inf %d\n", len(lats))
	return nil
}

// startSelf runs an in-process server on a loopback port and returns its
// base URL plus a shutdown function.
func startSelf(algo string, shards, queue int) (string, func()) {
	pool := fragalign.NewBatchPool(fragalign.Algorithm(algo),
		fragalign.WithShards(shards),
		fragalign.WithQueueDepth(queue),
		fragalign.WithFourApproxSeed(true),
	)
	srv, err := serve.New(serve.Options{Pool: serve.AdaptBatchPool(pool), Algorithm: algo})
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrload:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrload:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	fmt.Fprintf(os.Stderr, "csrload: self-serving on http://%s (%d shards, queue %d)\n",
		ln.Addr(), pool.Shards(), pool.Counters().QueueCap)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		pool.Close()
	}
}
