// Command csrload is the load-generator harness for csrserve: open-loop
// Poisson arrivals at a target request rate, each request a JSONL batch of
// generated instances POSTed to /v1/solve, with achieved req/s and latency
// quantiles on stderr.
//
// Usage:
//
//	csrload -url http://localhost:8437 -rate 50 -requests 200
//	csrload -self -shards 8 -rate 0 -requests 64 -json > row.json
//	csrload -self -rate 5 -requests 50 -tenant2 heavy -tenant2-requests 200
//
// Arrivals are open-loop (scheduled up front from a seeded exponential
// process, independent of response times) and latency is measured from the
// scheduled arrival, so a slow server shows up as growing latency rather
// than being silently absorbed by a stalled generator (no coordinated
// omission). -rate 0 removes pacing entirely: every request is due at t=0
// and the run measures saturated throughput.
//
// -retries N makes the client honor admission control: a 429-rejected
// request is retried up to N times, waiting at least the server's
// Retry-After hint with jittered exponential backoff on top. Rejections
// that exhaust their retries still count as rejected; the summary reports
// how many retries the run spent and how many records came back partial
// (graceful degradation under ?timeout=).
//
// -tenant2 NAME enables the two-tenant fairness mode: a second tenant with
// its own arrival process (-tenant2-rate, -tenant2-requests) floods the
// same server while the primary tenant's latency is measured, and the
// summary reports per-tenant quantiles. The -json row then carries
// algorithm "serve-fairness" (wall_ms = the primary tenant's p99 in ms),
// pinning the fairness property in the benchmark trajectory.
//
// With -self the harness starts an in-process csrserve-equivalent on a
// loopback port and drives that — no daemon management, which is how the
// pinned serve-sustained benchmark row runs in CI. -json emits a
// benchdiff-compatible record (algorithm "serve-sustained", wall_ms = the
// run's total elapsed time) on stdout; -hist writes a latency histogram.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	fragalign "repro"
	"repro/internal/encoding"
	"repro/internal/serve"
)

type reqResult struct {
	latency    time.Duration
	status     int
	retryAfter string // Retry-After header on a 429
	records    int
	failures   int // error records within an accepted stream
	partials   int // partial records within an accepted stream
	retries    int // 429 retries this request spent
	score      float64
	err        error // transport/parse failure
}

// summary aggregates one tenant's request results.
type summary struct {
	ok, rejected, retryAfterOK, failed int
	records, instFail, partials        int
	retries                            int
	score                              float64
	lats                               []time.Duration
}

func summarize(label string, results []reqResult) summary {
	var s summary
	for i, r := range results {
		s.retries += r.retries
		switch {
		case r.err != nil:
			s.failed++
			fmt.Fprintf(os.Stderr, "csrload: %s request %d: %v\n", label, i, r.err)
		case r.status == http.StatusTooManyRequests:
			s.rejected++
			if r.retryAfter != "" {
				s.retryAfterOK++
			}
		case r.status != http.StatusOK:
			s.failed++
			fmt.Fprintf(os.Stderr, "csrload: %s request %d: HTTP %d\n", label, i, r.status)
		default:
			s.ok++
			s.records += r.records
			s.instFail += r.failures
			s.partials += r.partials
			s.score += r.score
			s.lats = append(s.lats, r.latency)
		}
	}
	sort.Slice(s.lats, func(i, j int) bool { return s.lats[i] < s.lats[j] })
	return s
}

func (s summary) quantileLine() string {
	if len(s.lats) == 0 {
		return "no accepted requests"
	}
	return fmt.Sprintf("p50 %v  p90 %v  p99 %v  max %v",
		quantile(s.lats, 0.50).Round(time.Microsecond),
		quantile(s.lats, 0.90).Round(time.Microsecond),
		quantile(s.lats, 0.99).Round(time.Microsecond),
		s.lats[len(s.lats)-1].Round(time.Microsecond))
}

func main() {
	var (
		url      = flag.String("url", "", "csrserve base URL (empty requires -self)")
		self     = flag.Bool("self", false, "start an in-process server on loopback and drive it")
		rate     = flag.Float64("rate", 50, "target request arrivals per second (0 = no pacing, all due at t=0)")
		requests = flag.Int("requests", 200, "total requests to send")
		perReq   = flag.Int("instances", 4, "instances per request")
		regions  = flag.Int("regions", 40, "regions per generated instance")
		seed     = flag.Int64("seed", 1, "workload and arrival-process seed")
		tenant   = flag.String("tenant", "load", "X-Tenant header (empty disables σ affinity)")
		order    = flag.String("order", "", "order query parameter (submission|completion)")
		timeout  = flag.Duration("timeout", 0, "per-instance timeout query parameter (0 = server default)")
		partial  = flag.Bool("partial", false, "ask for graceful degradation (?partial=1)")
		retries  = flag.Int("retries", 0, "retry 429-rejected requests up to this many times, honoring Retry-After with jittered exponential backoff")
		repeat   = flag.Int("repeat", 1, "run the whole load this many times and report the fastest run (min-of-N, the csrbench timing convention)")
		histPath = flag.String("hist", "", "write a latency histogram to this file")
		jsonOut  = flag.Bool("json", false, "emit a benchdiff-compatible JSON record on stdout")
		// Two-tenant fairness mode.
		tenant2         = flag.String("tenant2", "", "second tenant name: floods the server with its own arrival process while the primary tenant is measured (enables the serve-fairness JSON row)")
		tenant2Rate     = flag.Float64("tenant2-rate", 0, "second tenant's arrival rate (0 = no pacing)")
		tenant2Requests = flag.Int("tenant2-requests", 0, "second tenant's request count (0 = same as -requests)")
		// -self pool shape.
		algo   = flag.String("algo", "csr-improve", "algorithm (-self)")
		shards = flag.Int("shards", 0, "pool shards (-self; 0 = GOMAXPROCS)")
		queue  = flag.Int("queue", 0, "pool queue bound (-self; 0 = 2×shards)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: csrload [flags]")
		os.Exit(2)
	}
	if *requests <= 0 || *perReq <= 0 {
		fmt.Fprintln(os.Stderr, "csrload: -requests and -instances must be positive")
		os.Exit(2)
	}
	fairness := *tenant2 != ""
	if fairness && *tenant2 == *tenant {
		fmt.Fprintln(os.Stderr, "csrload: -tenant2 must differ from -tenant")
		os.Exit(2)
	}
	n2 := *tenant2Requests
	if n2 <= 0 {
		n2 = *requests
	}

	base := *url
	if *self {
		if base != "" {
			fmt.Fprintln(os.Stderr, "csrload: -self and -url are mutually exclusive")
			os.Exit(2)
		}
		var stop func()
		base, stop = startSelf(*algo, *shards, *queue)
		defer stop()
	} else if base == "" {
		fmt.Fprintln(os.Stderr, "csrload: need -url or -self")
		os.Exit(2)
	}
	base = strings.TrimRight(base, "/")
	target := base + "/v1/solve"
	var params []string
	if *order != "" {
		params = append(params, "order="+*order)
	}
	if *timeout > 0 {
		params = append(params, "timeout="+timeout.String())
	}
	if *partial {
		params = append(params, "partial=1")
	}
	if len(params) > 0 {
		target += "?" + strings.Join(params, "&")
	}

	// Pre-generate every request body and the full arrival schedule before
	// the clock starts: the measured run does no generation work, and the
	// same seed always produces the same workload and the same arrival
	// process.
	genBodies := func(n int, prefix string, seedBase int64) [][]byte {
		bodies := make([][]byte, n)
		for i := range bodies {
			var buf bytes.Buffer
			for j := 0; j < *perReq; j++ {
				cfg := fragalign.DefaultGenConfig(seedBase + int64(i**perReq+j))
				cfg.Regions = *regions
				in := fragalign.Generate(cfg).Instance
				in.Name = fmt.Sprintf("%s%d.%d", prefix, i, j)
				if err := encoding.WriteJSONLine(&buf, in); err != nil {
					fmt.Fprintln(os.Stderr, "csrload:", err)
					os.Exit(1)
				}
			}
			bodies[i] = buf.Bytes()
		}
		return bodies
	}
	genArrivals := func(n int, rate float64, seed int64) []time.Duration {
		arrivals := make([]time.Duration, n)
		if rate > 0 {
			rng := rand.New(rand.NewSource(seed))
			var at time.Duration
			for i := range arrivals {
				at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
				arrivals[i] = at
			}
		}
		return arrivals
	}
	bodies := genBodies(*requests, "r", *seed*1_000_000)
	arrivals := genArrivals(*requests, *rate, *seed)
	var bodies2 [][]byte
	var arrivals2 []time.Duration
	if fairness {
		bodies2 = genBodies(n2, "h", *seed*1_000_000+500_000)
		arrivals2 = genArrivals(n2, *tenant2Rate, *seed+1)
	}

	maxConns := *requests + len(bodies2)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: maxConns}}
	group := func(start time.Time, ten string, bodies [][]byte, arrivals []time.Duration,
		results []reqResult, seedBase int64, wg *sync.WaitGroup) {
		for i := range bodies {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				due := start.Add(arrivals[i])
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				results[i] = shootRetry(client, target, ten, bodies[i], *retries,
					rand.New(rand.NewSource(seedBase+int64(i))))
				// Open-loop latency: from scheduled arrival, not actual
				// send — retries and their backoff included.
				results[i].latency = time.Since(due)
			}()
		}
	}
	run := func() ([]reqResult, []reqResult, time.Duration) {
		results := make([]reqResult, *requests)
		results2 := make([]reqResult, len(bodies2))
		start := time.Now()
		var wg sync.WaitGroup
		group(start, *tenant, bodies, arrivals, results, *seed*7_000_000, &wg)
		if fairness {
			group(start, *tenant2, bodies2, arrivals2, results2, *seed*7_000_000+500_000, &wg)
		}
		wg.Wait()
		return results, results2, time.Since(start)
	}
	if *repeat < 1 {
		*repeat = 1
	}
	// min-of-N selection: by elapsed time normally; in fairness mode by the
	// measured tenant's p99, since that is the row's gated quantity.
	lightP99 := func(rs []reqResult) time.Duration {
		var lats []time.Duration
		for _, r := range rs {
			if r.err == nil && r.status == http.StatusOK {
				lats = append(lats, r.latency)
			}
		}
		if len(lats) == 0 {
			return math.MaxInt64
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return quantile(lats, 0.99)
	}
	results, results2, elapsed := run()
	for r := 1; r < *repeat; r++ {
		res, res2, el := run()
		if fairness && lightP99(res) < lightP99(results) || !fairness && el < elapsed {
			results, results2, elapsed = res, res2, el
		}
	}

	s1 := summarize(*tenant, results)
	var s2 summary
	if fairness {
		s2 = summarize(*tenant2, results2)
	}

	rps := 0.0
	if elapsed > 0 {
		rps = float64(s1.ok+s2.ok) / elapsed.Seconds()
	}
	fmt.Fprintf(os.Stderr,
		"csrload: %d requests (%d ok, %d rejected 429, %d failed, %d retries spent) in %v — %.1f req/s, %.1f inst/s\n",
		len(results)+len(results2), s1.ok+s2.ok, s1.rejected+s2.rejected, s1.failed+s2.failed,
		s1.retries+s2.retries, elapsed.Round(time.Millisecond), rps,
		float64(s1.records+s2.records)/elapsed.Seconds())
	if rej := s1.rejected + s2.rejected; rej > 0 {
		fmt.Fprintf(os.Stderr, "csrload: Retry-After present on %d/%d rejections\n",
			s1.retryAfterOK+s2.retryAfterOK, rej)
	}
	if p := s1.partials + s2.partials; p > 0 {
		fmt.Fprintf(os.Stderr, "csrload: %d records returned partial (graceful degradation)\n", p)
	}
	if fairness {
		fmt.Fprintf(os.Stderr, "csrload: tenant %q: %d ok, %d rejected — latency %s\n",
			*tenant, s1.ok, s1.rejected, s1.quantileLine())
		fmt.Fprintf(os.Stderr, "csrload: tenant %q: %d ok, %d rejected — latency %s\n",
			*tenant2, s2.ok, s2.rejected, s2.quantileLine())
	} else if len(s1.lats) > 0 {
		fmt.Fprintf(os.Stderr, "csrload: latency %s\n", s1.quantileLine())
	}
	if *histPath != "" {
		if err := writeHist(*histPath, s1.lats); err != nil {
			fmt.Fprintln(os.Stderr, "csrload:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		rec := map[string]any{
			"algorithm": "serve-sustained",
			"seed":      *seed,
			"regions":   *regions,
			"instances": *requests * *perReq,
			"wall_ms":   float64(elapsed.Microseconds()) / 1000,
			"allocs":    0, // below benchdiff's alloc floor: the wall gate is the contract
			"score":     s1.score + s2.score,
			"requests":  *requests,
			"rejected":  s1.rejected + s2.rejected,
			"retries":   s1.retries + s2.retries,
			"partials":  s1.partials + s2.partials,
		}
		if fairness {
			// The fairness row's gated quantity is the measured tenant's
			// p99 under contention, not run elapsed time.
			rec["algorithm"] = "serve-fairness"
			p99 := time.Duration(0)
			if len(s1.lats) > 0 {
				p99 = quantile(s1.lats, 0.99)
			}
			rec["wall_ms"] = float64(p99.Microseconds()) / 1000
			rec["rejected"] = s1.rejected
			rec["tenant2_requests"] = n2
			rec["tenant2_rejected"] = s2.rejected
		}
		data, err := json.Marshal(rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrload:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	}
	if failed, instFail := s1.failed+s2.failed, s1.instFail+s2.instFail; failed > 0 || instFail > 0 {
		fmt.Fprintf(os.Stderr, "csrload: %d failed requests, %d failed instances\n", failed, instFail)
		os.Exit(1)
	}
	if fairness && s1.rejected > 0 {
		fmt.Fprintf(os.Stderr, "csrload: fairness violation: measured tenant %q rejected %d times\n",
			*tenant, s1.rejected)
		os.Exit(1)
	}
}

// shootRetry sends one request, retrying admission rejections up to
// retries times. Each wait honors the server's Retry-After hint as a floor
// and adds jittered exponential backoff on top (full jitter over the
// backoff term), so a retrying fleet spreads out instead of thundering
// back at the hinted second.
func shootRetry(client *http.Client, target, tenant string, body []byte, retries int, rng *rand.Rand) reqResult {
	backoff := 50 * time.Millisecond
	r := shoot(client, target, tenant, body)
	for attempt := 0; attempt < retries && r.err == nil && r.status == http.StatusTooManyRequests; attempt++ {
		wait := time.Duration(rng.Int63n(int64(backoff)))
		if secs, err := strconv.Atoi(r.retryAfter); err == nil && secs > 0 {
			wait += time.Duration(secs) * time.Second
		}
		time.Sleep(wait)
		backoff *= 2
		spent := r.retries + 1
		r = shoot(client, target, tenant, body)
		r.retries = spent
	}
	return r
}

// shoot sends one request and consumes its stream.
func shoot(client *http.Client, target, tenant string, body []byte) reqResult {
	req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return reqResult{err: err}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return reqResult{err: err}
	}
	defer resp.Body.Close()
	r := reqResult{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return r
	}
	r.err = encoding.ReadJSONLResults(resp.Body, func(rec encoding.ResultRecord) error {
		r.records++
		switch {
		case rec.Error != "":
			r.failures++
		default:
			if rec.Partial {
				r.partials++
			}
			r.score += rec.Score
		}
		return nil
	})
	return r
}

// quantile returns the q-quantile of sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// writeHist writes a log2-bucketed latency histogram: one "le_ms count"
// line per bucket (cumulative, Prometheus-style), ending with "+inf".
func writeHist(path string, lats []time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# csrload latency histogram: cumulative request count per le_ms bucket")
	cum := 0
	i := 0
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	for le := time.Millisecond; le <= 1<<16*time.Millisecond; le *= 2 {
		for i < len(lats) && lats[i] <= le {
			cum++
			i++
		}
		fmt.Fprintf(f, "%d %d\n", le/time.Millisecond, cum)
	}
	fmt.Fprintf(f, "+inf %d\n", len(lats))
	return nil
}

// startSelf runs an in-process server on a loopback port and returns its
// base URL plus a shutdown function.
func startSelf(algo string, shards, queue int) (string, func()) {
	pool := fragalign.NewBatchPool(fragalign.Algorithm(algo),
		fragalign.WithShards(shards),
		fragalign.WithQueueDepth(queue),
		fragalign.WithFourApproxSeed(true),
	)
	srv, err := serve.New(serve.Options{Pool: serve.AdaptBatchPool(pool), Algorithm: algo})
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrload:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrload:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	fmt.Fprintf(os.Stderr, "csrload: self-serving on http://%s (%d shards, queue %d)\n",
		ln.Addr(), pool.Shards(), pool.Counters().QueueCap)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		pool.Close()
	}
}
