// Command csrsolve solves a CSR instance file with a chosen algorithm and
// prints the inferred contig layout, score, and matches.
//
// Usage:
//
//	csrsolve -algo csr-improve instance.csr
//	csrsolve -algo exact -list
package main

import (
	"flag"
	"fmt"
	"os"

	fragalign "repro"
)

func main() {
	var (
		algo    = flag.String("algo", "csr-improve", "algorithm (see -list)")
		list    = flag.Bool("list", false, "list algorithms and exit")
		workers = flag.Int("workers", 1, "worker goroutines")
		eps     = flag.Float64("eps", 0.05, "scaling slack for improvement algorithms")
		seed4   = flag.Bool("seed4", true, "seed improvement with the 4-approximation")
	)
	flag.Parse()
	if *list {
		for _, a := range fragalign.Algorithms() {
			fmt.Println(a)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: csrsolve [-algo name] instance.csr")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrsolve:", err)
		os.Exit(1)
	}
	defer f.Close()
	in, err := fragalign.ReadInstance(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrsolve:", err)
		os.Exit(1)
	}
	res, err := fragalign.Solve(in, fragalign.Algorithm(*algo),
		fragalign.WithWorkers(*workers),
		fragalign.WithEps(*eps),
		fragalign.WithFourApproxSeed(*seed4),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrsolve:", err)
		os.Exit(1)
	}
	fmt.Print(fragalign.FormatResult(in, res))
}
