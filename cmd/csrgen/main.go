// Command csrgen generates synthetic fragmented-genome CSR instances in
// the text format understood by csrsolve, or as a JSONL batch stream for
// csrbatch.
//
// Usage:
//
//	csrgen -seed 7 -regions 100 -contig 5 -inversions 3 -out instance.csr
//	csrgen -seed 7 -count 64 -format jsonl | csrbatch
//	csrgen -seed 7 -count 64 -shared-alphabet -format jsonl | csrbatch
//
// With -count N, instance i is generated from seed+i and named w<seed+i>;
// batches require -format jsonl. With -shared-alphabet every instance of the
// batch is generated over one canonical alphabet and σ table (scores drawn
// once from the base seed; per-instance seeds drive evolution and
// fragmentation only) — the workload shape whose σ the batch pool's
// per-alphabet cache compiles exactly once.
package main

import (
	"flag"
	"fmt"
	"os"

	fragalign "repro"
	"repro/internal/encoding"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "random seed")
		regions   = flag.Int("regions", 60, "ancestral conserved regions")
		deleteP   = flag.Float64("delete", 0.1, "per-species region loss probability")
		inv       = flag.Int("inversions", 3, "segment inversions applied to species M")
		invLen    = flag.Int("invlen", 6, "maximum inverted segment length")
		transloc  = flag.Int("translocations", 1, "segment moves applied to species M")
		contig    = flag.Int("contig", 5, "mean contig length in regions")
		baseScore = flag.Float64("score", 10, "mean ortholog score")
		noise     = flag.Float64("noise", 0.3, "relative score jitter")
		spurious  = flag.Int("spurious", 10, "spurious alignment pairs")
		out       = flag.String("out", "", "output file (default stdout)")
		count     = flag.Int("count", 1, "instances to generate (seeds seed..seed+count-1)")
		format    = flag.String("format", "text", "output format: text or jsonl")
		sharedAl  = flag.Bool("shared-alphabet", false, "generate all instances over one canonical alphabet/σ table")
		preset    = flag.String("preset", "", "named workload preset (genome-small, genome-large); overrides the shape flags and forces -format jsonl")
	)
	flag.Parse()
	if *preset != "" {
		*format = "jsonl"
	}
	if *format != "text" && *format != "jsonl" {
		fmt.Fprintln(os.Stderr, "csrgen: -format must be text or jsonl")
		os.Exit(2)
	}
	if *count > 1 && *format != "jsonl" {
		fmt.Fprintln(os.Stderr, "csrgen: -count > 1 requires -format jsonl")
		os.Exit(2)
	}
	if *count < 1 {
		*count = 1
	}

	cfg := fragalign.GenConfig{
		Seed:           *seed,
		Regions:        *regions,
		DeleteProb:     *deleteP,
		Inversions:     *inv,
		InversionLen:   *invLen,
		Translocations: *transloc,
		MeanContig:     *contig,
		BaseScore:      *baseScore,
		Noise:          *noise,
		Spurious:       *spurious,
		SpuriousScore:  *baseScore / 2,
	}
	if *preset != "" {
		pc, ok := fragalign.GenPreset(*preset, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "csrgen: unknown -preset %q (have %v)\n",
				*preset, fragalign.GenPresetNames())
			os.Exit(2)
		}
		cfg = pc
	} else if *sharedAl {
		cfg.Canonical = fragalign.NewCanonical(cfg)
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	for i := 0; i < *count; i++ {
		cfg.Seed = *seed + int64(i)
		w := fragalign.Generate(cfg)
		if *count > 1 || w.Instance.Name == "" {
			w.Instance.Name = fmt.Sprintf("w%d", cfg.Seed)
		}
		var err error
		if *format == "jsonl" {
			err = encoding.WriteJSONLine(dst, w.Instance)
		} else {
			err = fragalign.WriteInstance(dst, w.Instance)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrgen:", err)
			os.Exit(1)
		}
		if *count == 1 {
			fmt.Fprintf(os.Stderr, "csrgen: %d H contigs, %d M contigs, truth layout score %.1f\n",
				len(w.Instance.H), len(w.Instance.M), w.TrueLayoutScore)
		}
	}
	if *count > 1 {
		fmt.Fprintf(os.Stderr, "csrgen: %d instances (seeds %d..%d)\n", *count, *seed, *seed+int64(*count)-1)
	}
}
