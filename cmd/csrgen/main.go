// Command csrgen generates synthetic fragmented-genome CSR instances in
// the text format understood by csrsolve.
//
// Usage:
//
//	csrgen -seed 7 -regions 100 -contig 5 -inversions 3 -out instance.csr
package main

import (
	"flag"
	"fmt"
	"os"

	fragalign "repro"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "random seed")
		regions   = flag.Int("regions", 60, "ancestral conserved regions")
		deleteP   = flag.Float64("delete", 0.1, "per-species region loss probability")
		inv       = flag.Int("inversions", 3, "segment inversions applied to species M")
		invLen    = flag.Int("invlen", 6, "maximum inverted segment length")
		transloc  = flag.Int("translocations", 1, "segment moves applied to species M")
		contig    = flag.Int("contig", 5, "mean contig length in regions")
		baseScore = flag.Float64("score", 10, "mean ortholog score")
		noise     = flag.Float64("noise", 0.3, "relative score jitter")
		spurious  = flag.Int("spurious", 10, "spurious alignment pairs")
		out       = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg := fragalign.GenConfig{
		Seed:           *seed,
		Regions:        *regions,
		DeleteProb:     *deleteP,
		Inversions:     *inv,
		InversionLen:   *invLen,
		Translocations: *transloc,
		MeanContig:     *contig,
		BaseScore:      *baseScore,
		Noise:          *noise,
		Spurious:       *spurious,
		SpuriousScore:  *baseScore / 2,
	}
	w := fragalign.Generate(cfg)
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := fragalign.WriteInstance(dst, w.Instance); err != nil {
		fmt.Fprintln(os.Stderr, "csrgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "csrgen: %d H contigs, %d M contigs, truth layout score %.1f\n",
		len(w.Instance.H), len(w.Instance.M), w.TrueLayoutScore)
}
