// Command csrserve is the long-lived alignment daemon: one warm
// fragalign.BatchPool behind an HTTP frontend (internal/serve), so a fleet
// of clients shares the pool's shards, bounded queue, and per-alphabet
// compiled-σ cache instead of paying process startup and σ compilation per
// batch.
//
// Usage:
//
//	csrserve -addr :8437 -algo csr-improve -shards 8 &
//	csrgen -count 64 -format jsonl | curl -sN --data-binary @- \
//	    -H 'X-Tenant: acme' http://localhost:8437/v1/solve
//	curl -s http://localhost:8437/metrics | jq .pool.sigma_hit_rate
//
// POST /v1/solve takes the csrbatch JSONL instance format and streams one
// result record per instance (submission order; ?order=completion streams
// as instances finish). ?timeout=30s bounds each instance's solve; the
// X-Tenant header keys σ-cache affinity AND fair admission across requests.
// Admission is weighted max-min fair per tenant: a tenant below its fair
// share of the queue (-tenant-weight sets shares, -tenant-max-inflight
// hard-caps a tenant) is admitted even under load, while an over-share
// tenant is refused 429 with a Retry-After keyed to its own backlog.
// ?partial=1 (or -partial) turns deadline failures mid-improvement into
// "partial": true records carrying the last accepted solution. An admitted
// request's records are byte-identical to a csrbatch run over the same
// input (wall_ms excepted; partial records excepted, by definition).
// -chaos arms the fault-injection harness (internal/faultinject) inside
// the live daemon for game-day drills.
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503, new
// solves are refused, in-flight streams finish (up to -grace), then the
// pool shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	fragalign "repro"
	"repro/internal/encoding"
	"repro/internal/faultinject"
	"repro/internal/serve"
)

// parseWeights parses the -tenant-weight grammar: "name=w,name=w" with
// positive float weights.
func parseWeights(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	weights := make(map[string]float64)
	for _, kv := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant weight %q is not name=w", kv)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tenant weight %q: weight must be a positive number", kv)
		}
		weights[name] = w
	}
	return weights, nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8437", "listen address (use 127.0.0.1:0 for an ephemeral port; the bound address is printed on stderr)")
		algo       = flag.String("algo", "csr-improve", "algorithm for every instance")
		shards     = flag.Int("shards", 0, "concurrent solvers (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "submission queue bound (0 = 2×shards)")
		workers    = flag.Int("workers", 1, "shared candidate-evaluation workers (>1 adds a shared eval pool)")
		eps        = flag.Float64("eps", 0.05, "scaling slack for improvement algorithms")
		seed4      = flag.Bool("seed4", true, "seed improvement with the 4-approximation")
		intMode    = flag.Bool("int", false, "solve with the int32-quantized score kernels")
		lazySel    = flag.Bool("lazy", true, "use the lazy best-first candidate-selection engine")
		seeded     = flag.Bool("seeded", false, "default to minimizer-seeded candidate generation (requests override with ?seeded=0/1)")
		memBudget  = flag.String("mem-budget", "", "per-instance memory budget, e.g. 512M or 2G; over-budget submissions are refused 413 (empty = no budget)")
		timeout    = flag.Duration("timeout", 0, "default per-instance solve deadline when a request sets none (0 = none)")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on the per-instance deadline a request may ask for (0 = uncapped)")
		maxBody    = flag.Int64("max-body", 256<<20, "request body size limit in bytes")
		tenants    = flag.Int("tenants", 64, "σ-affinity interner cache bound (tenants beyond this evict LRU)")
		grace      = flag.Duration("grace", 30*time.Second, "drain grace period before in-flight requests are cut off")

		tenantMax     = flag.Int("tenant-max-inflight", 0, "cap any one tenant's in-flight instances (0 = no cap)")
		tenantWeights = flag.String("tenant-weight", "", "per-tenant fair-share weights as name=w,name=w (default weight 1; falls back to $CSRSERVE_TENANT_WEIGHTS)")
		partial       = flag.Bool("partial", false, "serve partial results by default: deadline failures mid-improvement resolve as partial records unless a request says ?partial=0")
		chaos         = flag.String("chaos", "", "arm fault-injection rules, e.g. shard-slow:p=0.05:d=50ms,solve-panic:nth=1000 (see internal/faultinject; empty = none)")
		chaosSeed     = flag.Int64("chaos-seed", 1, "seed for the -chaos probability coin")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: csrserve [flags]")
		os.Exit(2)
	}

	weightSpec := *tenantWeights
	if weightSpec == "" {
		weightSpec = os.Getenv("CSRSERVE_TENANT_WEIGHTS")
	}
	weights, err := parseWeights(weightSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrserve:", err)
		os.Exit(2)
	}
	budget, err := encoding.ParseByteSize(*memBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrserve:", err)
		os.Exit(2)
	}
	var inj *fragalign.FaultInjector
	if *chaos != "" {
		rules, err := faultinject.ParseRules(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrserve:", err)
			os.Exit(2)
		}
		inj = faultinject.New(*chaosSeed, rules...)
		fmt.Fprintf(os.Stderr, "csrserve: CHAOS ARMED: %s (seed %d)\n", *chaos, *chaosSeed)
	}

	pool := fragalign.NewBatchPool(fragalign.Algorithm(*algo),
		fragalign.WithShards(*shards),
		fragalign.WithQueueDepth(*queue),
		fragalign.WithWorkers(*workers),
		fragalign.WithEps(*eps),
		fragalign.WithFourApproxSeed(*seed4),
		fragalign.WithIntScore(*intMode),
		fragalign.WithLazySelection(*lazySel),
		fragalign.WithSeededCandidates(*seeded),
		fragalign.WithMemBudget(budget),
		fragalign.WithFaultInjector(inj),
	)
	defer pool.Close()

	srv, err := serve.New(serve.Options{
		Pool:              serve.AdaptBatchPool(pool),
		Algorithm:         *algo,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxBody:           *maxBody,
		Tenants:           *tenants,
		TenantMaxInflight: *tenantMax,
		TenantWeights:     weights,
		Partial:           *partial,
		Inject:            inj,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrserve:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrserve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv}
	fmt.Fprintf(os.Stderr, "csrserve: listening on http://%s (%s, %d shards, queue %d)\n",
		ln.Addr(), *algo, pool.Shards(), pool.Counters().QueueCap)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "csrserve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "csrserve: %v — draining (grace %v)\n", s, *grace)
	}

	// Drain: stop admitting (healthz 503 → load balancers route away; new
	// solves 503) but KEEP LISTENING while in-flight streams finish, so
	// probes and rejections stay observable during the drain window; only
	// then shut the listener down and close the pool.
	srv.StartDrain()
	deadline := time.Now().Add(*grace)
	for srv.InFlightRequests() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := srv.InFlightRequests(); n > 0 {
		fmt.Fprintf(os.Stderr, "csrserve: grace expired with %d requests in flight\n", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "csrserve: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "csrserve: drained")
}
