// Command csrbatch streams CSR instances through the sharded batch-solving
// pool: JSONL instances in (stdin or a file), one JSON result record per
// instance out, plus aggregate throughput stats on stderr.
//
// Usage:
//
//	csrgen -count 64 -format jsonl | csrbatch -algo csr-improve -shards 8
//	csrbatch -timeout 30s instances.jsonl > results.jsonl
//	csrbatch -unordered instances.jsonl | consumer
//	csrbatch -results-from results.jsonl | consumer
//
// By default results stream as instances finish but always in submission
// order, so output is byte-identical for any -shards value. With -unordered
// they stream in completion order instead — each record still carries its
// submission index — so downstream pipelines (encoding.ReadJSONLResults)
// start consuming before the slowest instance finishes.
//
// -results-from replays a stored result stream instead of solving: the
// records are re-emitted through the same ordered/unordered sinks (ordered
// resequences by submission index, so a stored -unordered stream replays
// byte-identical to the ordered run that would have produced it), letting
// benchdiff-style tooling and sink consumers run over archived result
// streams without re-solving the instances.
//
// -journal dir/ makes the run crash-safe: every completed instance's record
// is written to dir/results/NNNNNN.json via atomic temp-file + rename and
// then recorded in dir/manifest.jsonl (appended + fsynced), while each
// in-flight improvement solve streams its accepted-op checkpoint to
// dir/ckpt/NNNNNN.ckpt (-ckpt-every sets the fsync cadence). After a crash —
// kill -9 included — re-running with -resume over the same input skips
// manifested instances (their stored records are re-emitted), fast-forwards
// checkpointed in-flight solves through their accepted-op logs, and solves
// the rest from scratch; the final stdout stream is byte-identical to the
// uninterrupted run's (wall_ms excepted — solve time is re-measured).
// -mem-budget refuses instances whose estimated memory footprint exceeds
// the budget instead of dying on OOM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	fragalign "repro"
	"repro/internal/core"
	"repro/internal/encoding"
)

func main() {
	var (
		algo      = flag.String("algo", "csr-improve", "algorithm for every instance")
		shards    = flag.Int("shards", 0, "concurrent solvers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "submission queue bound (0 = 2×shards)")
		workers   = flag.Int("workers", 1, "shared candidate-evaluation workers (>1 adds a shared eval pool)")
		eps       = flag.Float64("eps", 0.05, "scaling slack for improvement algorithms")
		seed4     = flag.Bool("seed4", true, "seed improvement with the 4-approximation")
		timeout   = flag.Duration("timeout", 0, "per-instance solve deadline (0 = none)")
		intMode   = flag.Bool("int", false, "solve with the int32-quantized score kernels (results re-scored under the exact σ)")
		unordered = flag.Bool("unordered", false, "emit results in completion order instead of submission order")
		lazySel   = flag.Bool("lazy", true, "use the lazy best-first candidate-selection engine (false = eager full-list ablation)")
		seeded    = flag.Bool("seeded", false, "minimizer-seeded sparse candidate generation (genome-scale mode; see README)")
		partial   = flag.Bool("partial", false, "graceful degradation: a -timeout firing mid-improvement yields the last accepted solution as a partial record instead of an error")
		replay    = flag.String("results-from", "", "replay a stored result JSONL stream through the sinks instead of solving")

		journalDir = flag.String("journal", "", "journal directory for crash-safe runs: durable per-instance results + completion manifest + in-flight solve checkpoints (empty = no journal)")
		resume     = flag.Bool("resume", false, "resume a crashed -journal run: skip manifested instances, fast-forward checkpointed solves (requires -journal and the same input and flags)")
		ckptEvery  = flag.Int("ckpt-every", 1, "fsync the solve checkpoint every N accepted ops (1 = every op; larger trades crash-replay work for fewer syncs)")
		memBudget  = flag.String("mem-budget", "", "per-instance memory budget, e.g. 512M or 2G; over-budget instances fail their record instead of dying on OOM (empty = no budget)")
	)
	flag.Parse()

	if *replay != "" {
		if flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "csrbatch: -results-from replaces the instance input; drop the positional argument")
			os.Exit(2)
		}
		if err := runReplay(*replay, *unordered); err != nil {
			fmt.Fprintln(os.Stderr, "csrbatch:", err)
			os.Exit(1)
		}
		return
	}

	budget, err := encoding.ParseByteSize(*memBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrbatch:", err)
		os.Exit(2)
	}
	if *resume && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "csrbatch: -resume requires -journal")
		os.Exit(2)
	}
	var jr *journal
	if *journalDir != "" {
		// The fingerprint pins every flag that shapes the accepted-op
		// trajectory; a -resume under different flags must re-solve, not
		// replay another configuration's log.
		fp := fmt.Sprintf("%s|eps=%g|seed4=%t|int=%t|lazy=%t|seeded=%t",
			*algo, *eps, *seed4, *intMode, *lazySel, *seeded)
		jr, err = openJournal(*journalDir, *algo, fp, *resume, *ckptEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrbatch:", err)
			os.Exit(1)
		}
		defer jr.close()
	}

	src := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: csrbatch [flags] [instances.jsonl]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrbatch:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}

	pool := fragalign.NewBatchPool(fragalign.Algorithm(*algo),
		fragalign.WithShards(*shards),
		fragalign.WithQueueDepth(*queue),
		fragalign.WithWorkers(*workers),
		fragalign.WithEps(*eps),
		fragalign.WithFourApproxSeed(*seed4),
		fragalign.WithPerInstanceTimeout(*timeout),
		fragalign.WithIntScore(*intMode),
		fragalign.WithLazySelection(*lazySel),
		fragalign.WithSeededCandidates(*seeded),
		fragalign.WithPartialResults(*partial),
		fragalign.WithMemBudget(budget),
	)
	defer pool.Close()

	// The reader goroutine parses and submits (blocking on the bounded
	// queue for backpressure); the result records are emitted either in
	// submission order (the main goroutine drains tickets sequentially) or,
	// with -unordered, in completion order (a goroutine per ticket resolves
	// into a shared channel).
	tickets := make(chan pending, pool.Shards()*2)
	var readErr error
	go func() {
		defer close(tickets)
		index := 0
		readErr = encoding.ReadJSONL(src, func(in *core.Instance) error {
			p := pending{index: index, name: in.Name}
			index++
			if jr != nil {
				// Manifested on a previous run: re-emit the stored record
				// instead of re-solving. Otherwise attach the instance's
				// checkpoint (resuming any log a crashed run left behind).
				stored, err := jr.storedRecord(p.index, in.Name)
				if err != nil {
					return err
				}
				if stored != nil {
					p.stored = stored
					tickets <- p
					return nil
				}
			}
			ctx := context.Background()
			if jr != nil {
				var err error
				if p.ckpt, p.ckptPath, ctx, err = jr.attachCheckpoint(ctx, p.index, in.Name); err != nil {
					return err
				}
			}
			t, err := pool.Submit(ctx, in)
			var ob *fragalign.OverBudgetError
			if errors.Is(err, context.DeadlineExceeded) || errors.As(err, &ob) {
				// A deadline that expired while waiting for queue space, or
				// an instance the memory budget refuses: record the failure,
				// keep the stream going.
				if p.ckpt != nil {
					p.ckpt.Close()
				}
				p.ckpt = nil
				p.err = err
				tickets <- p
				return nil
			}
			if err != nil {
				if p.ckpt != nil {
					p.ckpt.Close()
				}
				return err
			}
			p.ticket = t
			tickets <- p
			return nil
		})
	}()

	resolve := func(p pending) encoding.ResultRecord {
		if p.stored != nil {
			return *p.stored
		}
		rec := encoding.ResultRecord{Index: p.index, Name: p.name, Algorithm: *algo}
		var res *fragalign.Result
		err := p.err
		if err == nil {
			res, err = p.ticket.Wait()
		}
		if err != nil {
			rec.Error = err.Error()
		} else {
			rec.Score = res.Score
			rec.WallMS = float64(res.Wall.Microseconds()) / 1000
			if res.Solution != nil {
				rec.Matches = len(res.Solution.Matches)
			}
			if res.Stats != nil {
				rec.Rounds = res.Stats.Rounds
				rec.Partial = res.Stats.Partial
			}
		}
		if jr != nil {
			jr.complete(p, &rec)
		}
		return rec
	}

	// records carries resolved results to the single writer below. In
	// ordered mode it is fed sequentially; in unordered mode a bounded set
	// of resolver goroutines sends on completion — bounded so a consumer
	// slower than the solvers still exerts backpressure through Submit
	// instead of accumulating a goroutine per solved-but-unwritten result.
	records := make(chan encoding.ResultRecord, pool.Shards()*2)
	go func() {
		defer close(records)
		if !*unordered {
			for p := range tickets {
				records <- resolve(p)
			}
			return
		}
		sem := make(chan struct{}, pool.Shards()*2)
		var wg sync.WaitGroup
		for p := range tickets {
			p := p
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				records <- resolve(p)
				<-sem
			}()
		}
		wg.Wait()
	}()

	start := time.Now()
	var solved, failed int
	var wallTotal time.Duration
	for rec := range records {
		if rec.Error != "" {
			failed++
		} else {
			solved++
			wallTotal += time.Duration(rec.WallMS * float64(time.Millisecond))
		}
		if err := encoding.WriteJSONLResult(os.Stdout, &rec); err != nil {
			fmt.Fprintln(os.Stderr, "csrbatch:", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	if readErr != nil {
		fmt.Fprintln(os.Stderr, "csrbatch:", readErr)
		os.Exit(1)
	}
	total := solved + failed
	rate := 0.0
	if elapsed > 0 {
		rate = float64(total) / elapsed.Seconds()
	}
	mean := time.Duration(0)
	if solved > 0 {
		mean = wallTotal / time.Duration(solved)
	}
	fmt.Fprintf(os.Stderr,
		"csrbatch: %d instances (%d failed) in %v over %d shards — %.1f inst/s, mean solve %v\n",
		total, failed, elapsed.Round(time.Millisecond), pool.Shards(), rate, mean.Round(time.Microsecond))
	if failed > 0 {
		os.Exit(1)
	}
}

// runReplay re-emits a stored result stream ("-" for stdin) through the
// ordered or unordered sink without solving anything. Unordered preserves
// the stored stream order; ordered resequences by submission index,
// buffering out-of-order records until their predecessors arrive and
// flushing any residue (gaps in an incomplete archive) in index order at
// EOF. The stderr summary reports the stored per-instance wall times, not
// replay time, so pipelines can tell archived cost from replay cost.
func runReplay(path string, unordered bool) error {
	src := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	start := time.Now()
	var solved, failed int
	var wallTotal time.Duration
	emit := func(rec encoding.ResultRecord) error {
		if rec.Error != "" {
			failed++
		} else {
			solved++
			wallTotal += time.Duration(rec.WallMS * float64(time.Millisecond))
		}
		return encoding.WriteJSONLResult(os.Stdout, &rec)
	}
	var err error
	if unordered {
		err = encoding.ReadJSONLResults(src, emit)
	} else {
		pending := map[int]encoding.ResultRecord{}
		next := 0
		err = encoding.ReadJSONLResults(src, func(rec encoding.ResultRecord) error {
			pending[rec.Index] = rec
			for {
				r, ok := pending[next]
				if !ok {
					return nil
				}
				if e := emit(r); e != nil {
					return e
				}
				delete(pending, next)
				next++
			}
		})
		if err == nil && len(pending) > 0 {
			// Incomplete archive: flush the residue in index order.
			rest := make([]int, 0, len(pending))
			for idx := range pending {
				rest = append(rest, idx)
			}
			sort.Ints(rest)
			for _, idx := range rest {
				if e := emit(pending[idx]); e != nil {
					return e
				}
			}
		}
	}
	if err != nil {
		return err
	}
	total := solved + failed
	mean := time.Duration(0)
	if solved > 0 {
		mean = wallTotal / time.Duration(solved)
	}
	fmt.Fprintf(os.Stderr,
		"csrbatch: replayed %d stored records (%d failed) in %v — stored mean solve %v\n",
		total, failed, time.Since(start).Round(time.Millisecond), mean.Round(time.Microsecond))
	if failed > 0 {
		os.Exit(1)
	}
	return nil
}
