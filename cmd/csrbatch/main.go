// Command csrbatch streams CSR instances through the sharded batch-solving
// pool: JSONL instances in (stdin or a file), one JSON result record per
// instance out, in input order, plus aggregate throughput stats on stderr.
//
// Usage:
//
//	csrgen -count 64 -format jsonl | csrbatch -algo csr-improve -shards 8
//	csrbatch -timeout 30s instances.jsonl > results.jsonl
//
// Results stream as instances finish, but always in submission order, so
// output is byte-identical for any -shards value.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	fragalign "repro"
	"repro/internal/core"
	"repro/internal/encoding"
)

// record is the per-instance output line.
type record struct {
	Index     int     `json:"index"`
	Name      string  `json:"name,omitempty"`
	Algorithm string  `json:"algorithm"`
	Score     float64 `json:"score"`
	Matches   int     `json:"matches,omitempty"`
	Rounds    int     `json:"rounds,omitempty"`
	WallMS    float64 `json:"wall_ms"`
	Error     string  `json:"error,omitempty"`
}

func main() {
	var (
		algo    = flag.String("algo", "csr-improve", "algorithm for every instance")
		shards  = flag.Int("shards", 0, "concurrent solvers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "submission queue bound (0 = 2×shards)")
		workers = flag.Int("workers", 1, "shared candidate-evaluation workers (>1 adds a shared eval pool)")
		eps     = flag.Float64("eps", 0.05, "scaling slack for improvement algorithms")
		seed4   = flag.Bool("seed4", true, "seed improvement with the 4-approximation")
		timeout = flag.Duration("timeout", 0, "per-instance solve deadline (0 = none)")
		intMode = flag.Bool("int", false, "solve with the int32-quantized score kernels (results re-scored under the exact σ)")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: csrbatch [flags] [instances.jsonl]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "csrbatch:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}

	pool := fragalign.NewBatchPool(fragalign.Algorithm(*algo),
		fragalign.WithShards(*shards),
		fragalign.WithQueueDepth(*queue),
		fragalign.WithWorkers(*workers),
		fragalign.WithEps(*eps),
		fragalign.WithFourApproxSeed(*seed4),
		fragalign.WithPerInstanceTimeout(*timeout),
		fragalign.WithIntScore(*intMode),
	)
	defer pool.Close()

	// The reader goroutine parses and submits (blocking on the bounded
	// queue for backpressure); the main goroutine drains tickets in
	// submission order so the output stream is deterministic.
	type pending struct {
		ticket *fragalign.BatchTicket
		name   string
		err    error // submission-time failure (deadline hit while queued)
	}
	tickets := make(chan pending, pool.Shards()*2)
	var readErr error
	go func() {
		defer close(tickets)
		readErr = encoding.ReadJSONL(src, func(in *core.Instance) error {
			t, err := pool.Submit(context.Background(), in)
			if errors.Is(err, context.DeadlineExceeded) {
				// The per-instance deadline expired while waiting for queue
				// space: record the failure, keep the stream going.
				tickets <- pending{name: in.Name, err: err}
				return nil
			}
			if err != nil {
				return err
			}
			tickets <- pending{ticket: t, name: in.Name}
			return nil
		})
	}()

	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	var solved, failed int
	var solveTotal time.Duration
	index := 0
	for p := range tickets {
		rec := record{Index: index, Name: p.name, Algorithm: *algo}
		index++
		var res *fragalign.Result
		err := p.err
		if err == nil {
			res, err = p.ticket.Wait()
		}
		if err != nil {
			failed++
			rec.Error = err.Error()
		} else {
			solved++
			solveTotal += res.Wall
			rec.Score = res.Score
			rec.WallMS = float64(res.Wall.Microseconds()) / 1000
			if res.Solution != nil {
				rec.Matches = len(res.Solution.Matches)
			}
			if res.Stats != nil {
				rec.Rounds = res.Stats.Rounds
			}
		}
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, "csrbatch:", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	if readErr != nil {
		fmt.Fprintln(os.Stderr, "csrbatch:", readErr)
		os.Exit(1)
	}
	total := solved + failed
	rate := 0.0
	if elapsed > 0 {
		rate = float64(total) / elapsed.Seconds()
	}
	mean := time.Duration(0)
	if solved > 0 {
		mean = solveTotal / time.Duration(solved)
	}
	fmt.Fprintf(os.Stderr,
		"csrbatch: %d instances (%d failed) in %v over %d shards — %.1f inst/s, mean solve %v\n",
		total, failed, elapsed.Round(time.Millisecond), pool.Shards(), rate, mean.Round(time.Microsecond))
	if failed > 0 {
		os.Exit(1)
	}
}
