package main

// Crash-safe journaling for csrbatch runs (-journal / -resume). Layout and
// durability contract live in internal/encoding (journal.go, checkpoint.go);
// this file is the batch-loop integration: which instances to skip, which
// checkpoints to attach, and the completion sequence (result file renamed
// into place BEFORE its manifest line is appended, so a manifested instance
// always has a whole, readable result — the invariant -resume trusts).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	fragalign "repro"
	"repro/internal/encoding"
)

// pending is one instance's place in the batch pipeline.
type pending struct {
	ticket   *fragalign.BatchTicket
	index    int
	name     string
	err      error                      // submission-time failure (deadline, memory budget)
	stored   *encoding.ResultRecord     // completed on a previous run
	ckpt     *encoding.CheckpointWriter // live solve checkpoint, nil without -journal
	ckptPath string
}

// journal is one run's handle on a -journal directory.
type journal struct {
	dir   string
	algo  string
	fp    string // flag fingerprint pinning the accepted-op trajectory
	every int    // checkpoint fsync cadence
	man   *encoding.ManifestWriter
	done  map[int]encoding.ManifestEntry // manifested on a previous run
}

// openJournal prepares dir for a journaled run. A fresh run (resume false)
// refuses a directory that already holds completions — silently overwriting
// a crashed run's journal is exactly the data loss journaling exists to
// prevent; pass -resume or point at a fresh directory.
func openJournal(dir, algo, fp string, resume bool, every int) (*journal, error) {
	for _, d := range []string{dir, filepath.Join(dir, "results"), filepath.Join(dir, "ckpt")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	manPath := filepath.Join(dir, "manifest.jsonl")
	jr := &journal{dir: dir, algo: algo, fp: fp, every: every,
		done: make(map[int]encoding.ManifestEntry)}
	m, err := encoding.LoadManifest(manPath)
	if err != nil {
		return nil, fmt.Errorf("journal %s: %w", dir, err)
	}
	if !resume && len(m.Entries) > 0 {
		return nil, fmt.Errorf("journal %s already holds %d completed instances; pass -resume to continue it or use a fresh directory", dir, len(m.Entries))
	}
	if resume {
		for _, e := range m.Entries {
			jr.done[e.Index] = e
		}
	}
	jr.man, err = encoding.OpenManifest(manPath)
	if err != nil {
		return nil, err
	}
	return jr, nil
}

func (jr *journal) close() {
	if jr.man != nil {
		jr.man.Close()
	}
}

// storedRecord returns instance index's record from a previous run, nil when
// the instance was never manifested. A manifested entry whose name does not
// match the re-fed input fails the run: the journal belongs to different
// data, and "resuming" it would emit records for instances never solved.
func (jr *journal) storedRecord(index int, name string) (*encoding.ResultRecord, error) {
	e, ok := jr.done[index]
	if !ok {
		return nil, nil
	}
	if e.Name != name {
		return nil, fmt.Errorf("journal %s: instance %d is %q in the manifest but %q in the input — wrong input for this journal", jr.dir, index, e.Name, name)
	}
	data, err := os.ReadFile(filepath.Join(jr.dir, e.File))
	if err != nil {
		return nil, fmt.Errorf("journal %s: manifested result missing: %w", jr.dir, err)
	}
	var rec *encoding.ResultRecord
	if err := encoding.ReadJSONLResults(bytes.NewReader(data), func(r encoding.ResultRecord) error {
		rec = &r
		return nil
	}); err != nil || rec == nil {
		return nil, fmt.Errorf("journal %s: unreadable result %s: %v", jr.dir, e.File, err)
	}
	return rec, nil
}

// attachCheckpoint wires instance index's durable checkpoint into its
// submission context: a compatible log left by a crashed run fast-forwards
// the solve (ContextWithResume) and is appended to from there; anything
// else — no file, torn header, corrupt records, or a header from different
// flags — starts a fresh log.
func (jr *journal) attachCheckpoint(ctx context.Context, index int, name string) (*encoding.CheckpointWriter, string, context.Context, error) {
	path := filepath.Join(jr.dir, "ckpt", fmt.Sprintf("%06d.ckpt", index))
	hdr := encoding.CheckpointHeader{Index: index, Name: name, Algo: jr.algo, Fingerprint: jr.fp}
	if ck, err := encoding.LoadCheckpoint(path); err == nil &&
		ck.Header.Index == index && ck.Header.Fingerprint == jr.fp {
		w, rerr := encoding.ResumeCheckpoint(path, ck)
		if rerr != nil {
			return nil, "", ctx, rerr
		}
		w.SetFlushEvery(jr.every)
		if len(ck.Ops) > 0 {
			ctx = fragalign.ContextWithResume(ctx, ck.Ops)
		}
		return w, path, fragalign.ContextWithCheckpoint(ctx, w), nil
	} else if err != nil && !errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(os.Stderr, "csrbatch: journal %s: checkpoint %06d unusable (%v) — re-solving from scratch\n", jr.dir, index, err)
	}
	w, err := encoding.CreateCheckpoint(path, hdr)
	if err != nil {
		return nil, "", ctx, err
	}
	w.SetFlushEvery(jr.every)
	return w, path, fragalign.ContextWithCheckpoint(ctx, w), nil
}

// complete runs an instance's durability sequence once its record is final:
// close the checkpoint, atomically write the result file, fsync its manifest
// line, drop the checkpoint. Failed records are NOT manifested — a -resume
// retries them (transient deadline failures should not be pinned forever) —
// and keep their checkpoint for the retry. A journal write failure is fatal:
// continuing would stream results the journal does not back.
func (jr *journal) complete(p pending, rec *encoding.ResultRecord) {
	if p.ckpt != nil {
		p.ckpt.Close()
	}
	if rec.Error != "" {
		return
	}
	var buf bytes.Buffer
	if err := encoding.WriteJSONLResult(&buf, rec); err != nil {
		jr.fatal(err)
	}
	rel := filepath.Join("results", fmt.Sprintf("%06d.json", p.index))
	if err := encoding.WriteFileAtomic(filepath.Join(jr.dir, rel), buf.Bytes()); err != nil {
		jr.fatal(err)
	}
	if err := jr.man.Add(encoding.ManifestEntry{Index: p.index, Name: p.name, File: rel}); err != nil {
		jr.fatal(err)
	}
	if p.ckptPath != "" {
		os.Remove(p.ckptPath)
	}
}

func (jr *journal) fatal(err error) {
	fmt.Fprintf(os.Stderr, "csrbatch: journal %s: %v\n", jr.dir, err)
	os.Exit(1)
}
