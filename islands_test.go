package fragalign

import (
	"strings"
	"testing"
)

func TestIslandsReportPaperExample(t *testing.T) {
	in := PaperExample()
	res, err := Solve(in, CSRImprove)
	if err != nil {
		t.Fatal(err)
	}
	islands, err := IslandsReport(in, res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	if len(islands) != 1 {
		t.Fatalf("islands = %d, want 1 (the paper example is one island)", len(islands))
	}
	isl := islands[0]
	if isl.Score != 11 {
		t.Fatalf("island score %v", isl.Score)
	}
	if len(isl.LayoutH) != 2 || len(isl.LayoutM) != 2 {
		t.Fatalf("island layouts %v / %v", isl.LayoutH, isl.LayoutM)
	}
	text := FormatIsland(in, isl)
	for _, want := range []string{"h1", "h2'", "m1", "m2", "score 11"} {
		if !strings.Contains(text, want) {
			t.Fatalf("island text %q missing %q", text, want)
		}
	}
}

func TestIslandsReportSeparatesComponents(t *testing.T) {
	// Two unrelated pairs form two islands.
	b := NewBuilder("two-islands")
	b.FragmentH("h1", "a").FragmentH("h2", "b")
	b.FragmentM("m1", "p").FragmentM("m2", "q")
	b.Score("a", "p", 5).Score("b", "q", 3)
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, CSRImprove)
	if err != nil {
		t.Fatal(err)
	}
	islands, err := IslandsReport(in, res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	if len(islands) != 2 {
		t.Fatalf("islands = %d, want 2", len(islands))
	}
	// Sorted by descending score.
	if islands[0].Score < islands[1].Score {
		t.Fatal("islands not sorted by score")
	}
	if islands[0].Score != 5 || islands[1].Score != 3 {
		t.Fatalf("scores %v / %v", islands[0].Score, islands[1].Score)
	}
}

func TestIslandsReportGenerated(t *testing.T) {
	w := Generate(DefaultGenConfig(12))
	res, err := Solve(w.Instance, CSRImprove, WithFourApproxSeed(true))
	if err != nil {
		t.Fatal(err)
	}
	islands, err := IslandsReport(w.Instance, res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	nMatches := 0
	for _, isl := range islands {
		total += isl.Score
		nMatches += len(isl.Matches)
		if len(isl.LayoutH) == 0 || len(isl.LayoutM) == 0 {
			t.Fatal("island with an empty side")
		}
	}
	if diff := total - res.Score; diff > 1e-9*(1+res.Score) || diff < -1e-9*(1+res.Score) {
		t.Fatalf("island scores sum to %v, solution %v", total, res.Score)
	}
	if nMatches != len(res.Solution.Matches) {
		t.Fatalf("island matches %d, solution %d", nMatches, len(res.Solution.Matches))
	}
}

func TestIslandsReportNil(t *testing.T) {
	if _, err := IslandsReport(PaperExample(), nil); err == nil {
		t.Fatal("nil solution accepted")
	}
}
