package fragalign

// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E10),
// plus the ablation benches called out in DESIGN.md §6. Run with
//
//	go test -bench=. -benchmem
import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/csop"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/improve"
	"repro/internal/isp"
	"repro/internal/onecsr"
	"repro/internal/score"
	"repro/internal/symbol"
	"repro/internal/ucsr"
)

// BenchmarkE1PaperExample solves the §1 worked example with CSR_Improve.
func BenchmarkE1PaperExample(b *testing.B) {
	in := core.PaperExample()
	for i := 0; i < b.N; i++ {
		sol, _, err := improve.Improve(in, improve.Options{})
		if err != nil || sol.Score() != 11 {
			b.Fatalf("score %v err %v", sol.Score(), err)
		}
	}
}

// BenchmarkE2CSoPReduction runs the Theorem 2 pipeline (cubic graph →
// CSoP → exact → independent set) at 12 nodes.
func BenchmarkE2CSoPReduction(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g, err := graph.RandomCubic(r, 12)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		red, err := csop.FromCubic(g, r)
		if err != nil {
			b.Fatal(err)
		}
		opt := csop.Exact(red.Inst)
		if _, err := red.ExtractIS(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3UCSRReduction builds π₀, lifts the optimum, and projects back
// at ε = 0.25.
func BenchmarkE3UCSRReduction(b *testing.B) {
	x, err := ucsr.Replicate(core.PaperExample())
	if err != nil {
		b.Fatal(err)
	}
	sol := core.PaperExampleOptimum()
	for i := 0; i < b.N; i++ {
		red, err := ucsr.Reduce(x, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		f, err := red.LiftSolution(sol)
		if err != nil {
			b.Fatal(err)
		}
		proj, err := red.Project(f)
		if err != nil || proj.Score != 11 {
			b.Fatalf("score %v err %v", proj.Score, err)
		}
	}
}

// BenchmarkE4Doubling evaluates both Theorem 3 companion instances exactly.
func BenchmarkE4Doubling(b *testing.B) {
	in := core.PaperExample()
	for i := 0; i < b.N; i++ {
		if _, err := onecsr.HalfOnConcat(in); err != nil {
			b.Fatal(err)
		}
		if _, err := onecsr.HalfOnConcat(onecsr.Transpose(in)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5TwoPhase measures the O(n log n) two-phase ISP algorithm.
func BenchmarkE5TwoPhase(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(2))
			items := make([]isp.Interval, n)
			for i := range items {
				lo := r.Intn(n)
				items[i] = isp.Interval{
					ID: i, Job: r.Intn(n/4 + 1), Lo: lo, Hi: lo + 1 + r.Intn(n/8+1),
					Profit: float64(1 + r.Intn(20)),
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				isp.TwoPhase(items)
			}
		})
	}
}

// BenchmarkE6FourApprox runs Corollary 1's algorithm on a synthetic genome.
func BenchmarkE6FourApprox(b *testing.B) {
	w := gen.Generate(gen.DefaultConfig(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := onecsr.FourApprox(w.Instance); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Improve measures the Theorem 4–6 algorithms on a 60-region
// synthetic genome. The csr sub-benchmark is the ISSUE 4 acceptance
// workload (≥1.5× over the PR 3 floor); enum and enum-full isolate the
// incremental candidate-enumeration subsystem on a multi-round empty-start
// solve, where per-round re-enumeration used to dominate.
func BenchmarkE7Improve(b *testing.B) {
	cfg := gen.DefaultConfig(4)
	cfg.Regions = 60
	w := gen.Generate(cfg)
	for _, m := range []struct {
		name    string
		methods improve.Methods
	}{
		{"full", improve.FullOnly},
		{"border", improve.BorderOnly},
		{"csr", improve.AllMethods},
	} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := improve.Improve(w.Instance, improve.Options{
					Methods: m.methods, Eps: 0.05, SeedWithFourApprox: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Empty-start runs take many improvement rounds, so enumeration — not
	// round-0 simulation — carries the cost; enum uses the incremental
	// Enumerator (the default), enum-full the from-scratch ablation. Both
	// accept the identical attempt sequence (TestIncrementalEnumMatchesFull).
	for _, e := range []struct {
		name     string
		fullEnum bool
	}{
		{"enum", false},
		{"enum-full", true},
	} {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := improve.Improve(w.Instance, improve.Options{
					Methods: improve.AllMethods, Eps: 0.05, FullEnum: e.fullEnum,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Selection-engine pair on the same multi-round workload: select-lazy is
	// the generation-stamped gain heap (the default), select-eager the
	// full-list ablation. Identical accepted sequences
	// (TestLazySelectionMatchesFull); the gap is the per-round candidate
	// walk the heap avoids.
	for _, e := range []struct {
		name  string
		eager bool
	}{
		{"select-lazy", false},
		{"select-eager", true},
	} {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := improve.Improve(w.Instance, improve.Options{
					Methods: improve.AllMethods, Eps: 0.05, EagerSelect: e.eager,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Matching measures the Lemma 9 Hungarian-based 2-approximation.
func BenchmarkE8Matching(b *testing.B) {
	w := gen.Generate(gen.DefaultConfig(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := improve.MatchingTwoApprox(w.Instance); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Wavefront sweeps worker counts on a 1000×1000 alignment.
func BenchmarkE9Wavefront(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	tb := score.NewTable()
	for i := 1; i <= 40; i++ {
		tb.Set(symbol.Symbol(i), symbol.Symbol(i%40+1), float64(1+i%7))
	}
	mk := func(n int) symbol.Word {
		w := make(symbol.Word, n)
		for i := range w {
			w[i] = symbol.Symbol(1 + r.Intn(40))
		}
		return w
	}
	a, bb := mk(1000), mk(1000)
	want := align.Score(a, bb, tb)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs() // workers=1 runs inline and must stay at 0 allocs/op
			wf := align.WavefrontAligner{Workers: workers, BlockRows: 128, BlockCols: 128}
			for i := 0; i < b.N; i++ {
				if got := wf.Score(a, bb, tb); got != want {
					b.Fatalf("score %v, want %v", got, want)
				}
			}
		})
	}
	// Integer tiles: this σ is integral, so the quantized wavefront is exact.
	ci := score.Compile(tb, 40).Int()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d-int32", workers), func(b *testing.B) {
			b.ReportAllocs()
			wf := align.WavefrontAligner{Workers: workers, BlockRows: 128, BlockCols: 128}
			for i := 0; i < b.N; i++ {
				if got := wf.Score(a, bb, ci); got != want {
					b.Fatalf("score %v, want %v", got, want)
				}
			}
		})
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.Score(a, bb, tb)
		}
	})
}

// BenchmarkE10Fooling runs greedy and CSR_Improve on the adversarial
// family.
func BenchmarkE10Fooling(b *testing.B) {
	in := greedy.FoolingInstance(8, 10)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			greedy.Matching(in)
		}
	})
	b.Run("csr-improve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sol, _, err := improve.Improve(in, improve.Options{})
			if err != nil || sol.Score() != 8*(4*10.0-4) {
				b.Fatalf("score %v err %v", sol.Score(), err)
			}
		}
	})
}

// BenchmarkAblationTPA compares the two-phase algorithm against greedy
// interval selection inside the TPA candidate sets (DESIGN §6).
func BenchmarkAblationTPA(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	items := make([]isp.Interval, 5000)
	for i := range items {
		lo := r.Intn(5000)
		items[i] = isp.Interval{
			ID: i, Job: r.Intn(1200), Lo: lo, Hi: lo + 1 + r.Intn(400),
			Profit: float64(1 + r.Intn(20)),
		}
	}
	b.Run("two-phase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			isp.TwoPhase(items)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			isp.Greedy(items)
		}
	})
}

// BenchmarkAblationBlockSize sweeps the wavefront tile size (DESIGN §6).
func BenchmarkAblationBlockSize(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	tb := score.NewTable()
	for i := 1; i <= 40; i++ {
		tb.Set(symbol.Symbol(i), symbol.Symbol(i%40+1), float64(1+i%7))
	}
	mk := func(n int) symbol.Word {
		w := make(symbol.Word, n)
		for i := range w {
			w[i] = symbol.Symbol(1 + r.Intn(40))
		}
		return w
	}
	a, bb := mk(1500), mk(1500)
	for _, block := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("block=%d", block), func(b *testing.B) {
			wf := align.WavefrontAligner{Workers: 4, BlockRows: block, BlockCols: block}
			for i := 0; i < b.N; i++ {
				wf.Score(a, bb, tb)
			}
		})
	}
}

// BenchmarkAblationSeeding compares empty-start CSR_Improve against
// 4-approximation seeding (DESIGN §6).
func BenchmarkAblationSeeding(b *testing.B) {
	cfg := gen.DefaultConfig(9)
	cfg.Regions = 50
	w := gen.Generate(cfg)
	for _, seeded := range []bool{false, true} {
		name := "empty-start"
		if seeded {
			name = "four-approx-seed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := improve.Improve(w.Instance, improve.Options{
					Eps: 0.05, SeedWithFourApprox: seeded,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScaling compares thresholded acceptance (§4.1 scaling)
// against accepting every positive gain (DESIGN §6).
func BenchmarkAblationScaling(b *testing.B) {
	cfg := gen.DefaultConfig(10)
	cfg.Regions = 40
	w := gen.Generate(cfg)
	for _, eps := range []float64{0, 0.05, 0.25} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := improve.Improve(w.Instance, improve.Options{
					Eps: eps, SeedWithFourApprox: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactEnumeration measures the parallel exact solver fan-out.
func BenchmarkExactEnumeration(b *testing.B) {
	in := core.PaperExample()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exact.Solve(in, exact.Solver{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlignmentKernels compares the serial, banded, Hirschberg and
// fit-placement kernels on one workload.
func BenchmarkAlignmentKernels(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	tb := score.NewTable()
	for i := 1; i <= 30; i++ {
		tb.Set(symbol.Symbol(i), symbol.Symbol(i%30+1), float64(1+i%5))
	}
	mk := func(n int) symbol.Word {
		w := make(symbol.Word, n)
		for i := range w {
			w[i] = symbol.Symbol(1 + r.Intn(30))
		}
		return w
	}
	a, bb := mk(500), mk(500)
	b.Run("score", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.Score(a, bb, tb)
		}
	})
	b.Run("banded-64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.ScoreBanded(a, bb, tb, 64)
		}
	})
	b.Run("hirschberg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.Hirschberg(a, bb, tb)
		}
	})
	b.Run("placements", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.Placements(a[:40], bb, tb, 0)
		}
	})
	// Integer-quantized variants on the same inputs (this σ is integral, so
	// the int32 kernels return bit-identical scores). The float64 dense path
	// above is the baseline the ISSUE's ≥1.5× acceptance compares against.
	ci := score.Compile(tb, 30).Int()
	b.Run("score-int32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			align.Score(a, bb, ci)
		}
	})
	b.Run("banded-64-int32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.ScoreBanded(a, bb, ci, 64)
		}
	})
	b.Run("hirschberg-int32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.Hirschberg(a, bb, ci)
		}
	})
	b.Run("placements-int32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.Placements(a[:40], bb, ci, 0)
		}
	})
}

// BenchmarkBatchSolve measures the sharded batch-solving subsystem against
// sequential solving of the same instance set: the sharded run must beat
// sequential by >2x on a multi-core machine (the CI bench-trajectory job
// asserts this via TestBatchThroughput). The custom inst/s metric is the
// serving-throughput number the ROADMAP tracks.
func BenchmarkBatchSolve(b *testing.B) {
	const nInstances, regions = 16, 60
	ins := make([]*Instance, nInstances)
	for i := range ins {
		cfg := DefaultGenConfig(int64(300 + i))
		cfg.Regions = regions
		ins[i] = Generate(cfg).Instance
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, in := range ins {
				if _, err := Solve(in, CSRImprove, WithFourApproxSeed(true)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(nInstances)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveBatch(context.Background(), ins, CSRImprove, WithFourApproxSeed(true)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nInstances)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
	})
	b.Run("sharded-pool-reuse", func(b *testing.B) {
		// One pool across all iterations: the per-alphabet σ cache and the
		// shards are amortized the way a serving process would amortize them.
		pool := NewBatchPool(CSRImprove, WithFourApproxSeed(true))
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tickets := make([]*BatchTicket, len(ins))
			for j, in := range ins {
				t, err := pool.Submit(context.Background(), in)
				if err != nil {
					b.Fatal(err)
				}
				tickets[j] = t
			}
			for _, t := range tickets {
				if _, err := t.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(nInstances)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
	})
}
