package fragalign

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/encoding"
)

// TestCLIRoundTrip exercises the command-line tools end to end: generate a
// synthetic instance with csrgen, solve it with csrsolve, and check the
// report. Skipped when the go tool is unavailable.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	dir := t.TempDir()
	instance := filepath.Join(dir, "inst.csr")

	genCmd := exec.Command("go", "run", "./cmd/csrgen",
		"-seed", "5", "-regions", "30", "-out", instance)
	if out, err := genCmd.CombinedOutput(); err != nil {
		t.Fatalf("csrgen: %v\n%s", err, out)
	}
	data, err := os.ReadFile(instance)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "H h0") {
		t.Fatalf("generated instance lacks contigs:\n%s", data)
	}

	solveCmd := exec.Command("go", "run", "./cmd/csrsolve",
		"-algo", "csr-improve", instance)
	out, err := solveCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("csrsolve: %v\n%s", err, out)
	}
	for _, want := range []string{"algorithm: csr-improve", "score:", "H layout:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("csrsolve output missing %q:\n%s", want, out)
		}
	}

	listCmd := exec.Command("go", "run", "./cmd/csrsolve", "-list")
	out, err = listCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("csrsolve -list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "csr-improve") || !strings.Contains(string(out), "exact") {
		t.Fatalf("-list output:\n%s", out)
	}
}

// TestCLIBenchSingleTable checks csrbench's experiment filter.
func TestCLIBenchSingleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	cmd := exec.Command("go", "run", "./cmd/csrbench", "-only", "E1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("csrbench: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "E1") || strings.Contains(s, "E2 —") {
		t.Fatalf("filter failed:\n%s", s)
	}
	if !strings.Contains(s, "11.00") {
		t.Fatalf("E1 table missing the optimum:\n%s", s)
	}
}

// TestCLIBatchPipeline exercises the batch toolchain end to end: csrgen
// emits a JSONL stream, csrbatch solves it through the sharded pool, and
// the output preserves submission order.
func TestCLIBatchPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	dir := t.TempDir()
	stream := filepath.Join(dir, "batch.jsonl")

	genCmd := exec.Command("go", "run", "./cmd/csrgen",
		"-seed", "5", "-regions", "30", "-count", "4", "-format", "jsonl", "-out", stream)
	if out, err := genCmd.CombinedOutput(); err != nil {
		t.Fatalf("csrgen: %v\n%s", err, out)
	}

	batchCmd := exec.Command("go", "run", "./cmd/csrbatch",
		"-algo", "csr-improve", "-shards", "2", stream)
	out, err := batchCmd.Output()
	if err != nil {
		t.Fatalf("csrbatch: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 result lines, got %d:\n%s", len(lines), out)
	}
	for i, line := range lines {
		if !strings.Contains(line, `"index":`+strconv.Itoa(i)+",") {
			t.Fatalf("line %d out of order: %s", i, line)
		}
		if !strings.Contains(line, `"name":"w`) || !strings.Contains(line, `"score":`) {
			t.Fatalf("line %d malformed: %s", i, line)
		}
	}
}

// TestCLIBatchUnordered exercises the completion-order streaming mode: the
// output must contain one record per instance with the submission indices
// forming a permutation, readable through encoding.ReadJSONLResults.
func TestCLIBatchUnordered(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	dir := t.TempDir()
	stream := filepath.Join(dir, "batch.jsonl")

	genCmd := exec.Command("go", "run", "./cmd/csrgen",
		"-seed", "11", "-regions", "30", "-count", "5", "-format", "jsonl", "-out", stream)
	if out, err := genCmd.CombinedOutput(); err != nil {
		t.Fatalf("csrgen: %v\n%s", err, out)
	}

	batchCmd := exec.Command("go", "run", "./cmd/csrbatch",
		"-algo", "csr-improve", "-shards", "2", "-unordered", stream)
	out, err := batchCmd.Output()
	if err != nil {
		t.Fatalf("csrbatch -unordered: %v", err)
	}
	seen := map[int]bool{}
	if err := encoding.ReadJSONLResults(strings.NewReader(string(out)), func(r encoding.ResultRecord) error {
		if r.Error != "" {
			t.Fatalf("record %d failed: %s", r.Index, r.Error)
		}
		if seen[r.Index] {
			t.Fatalf("duplicate index %d", r.Index)
		}
		seen[r.Index] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !seen[i] {
			t.Fatalf("missing index %d in unordered output:\n%s", i, out)
		}
	}
}

// TestCLIBatchReplay exercises the -results-from replay mode: a stored
// unordered result stream must replay through the ordered sink as exactly
// the records of the original run resequenced by submission index, and
// through the unordered sink byte-identical to the archive — all without
// re-solving anything.
func TestCLIBatchReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	dir := t.TempDir()
	stream := filepath.Join(dir, "batch.jsonl")
	stored := filepath.Join(dir, "results.jsonl")

	genCmd := exec.Command("go", "run", "./cmd/csrgen",
		"-seed", "13", "-regions", "30", "-count", "5", "-format", "jsonl", "-out", stream)
	if out, err := genCmd.CombinedOutput(); err != nil {
		t.Fatalf("csrgen: %v\n%s", err, out)
	}
	solveCmd := exec.Command("go", "run", "./cmd/csrbatch",
		"-algo", "csr-improve", "-shards", "2", "-unordered", stream)
	archived, err := solveCmd.Output()
	if err != nil {
		t.Fatalf("csrbatch -unordered: %v", err)
	}
	if err := os.WriteFile(stored, archived, 0o644); err != nil {
		t.Fatal(err)
	}

	ordered, err := exec.Command("go", "run", "./cmd/csrbatch", "-results-from", stored).Output()
	if err != nil {
		t.Fatalf("csrbatch -results-from: %v", err)
	}
	var idx []int
	records := map[int]encoding.ResultRecord{}
	if err := encoding.ReadJSONLResults(strings.NewReader(string(ordered)), func(r encoding.ResultRecord) error {
		idx = append(idx, r.Index)
		records[r.Index] = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(idx) != 5 || !sort.IntsAreSorted(idx) {
		t.Fatalf("ordered replay emitted indices %v, want 0..4 ascending", idx)
	}
	// The replayed records must carry the archived payloads untouched.
	if err := encoding.ReadJSONLResults(strings.NewReader(string(archived)), func(r encoding.ResultRecord) error {
		if got := records[r.Index]; got != r {
			t.Fatalf("record %d mutated in replay: %+v vs %+v", r.Index, got, r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	passthrough, err := exec.Command("go", "run", "./cmd/csrbatch", "-results-from", stored, "-unordered").Output()
	if err != nil {
		t.Fatalf("csrbatch -results-from -unordered: %v", err)
	}
	if string(passthrough) != string(archived) {
		t.Fatalf("unordered replay is not byte-identical to the archive:\n%s\nvs\n%s", passthrough, archived)
	}
}

// TestCLIBenchdiff runs csrbench -json and checks benchdiff's gate logic
// in both directions: identical trajectories pass, an injected wall-time
// regression fails.
func TestCLIBenchdiff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")

	benchCmd := exec.Command("go", "run", "./cmd/csrbench",
		"-json", "-regions", "30", "-algs", "csr-improve,greedy")
	out, err := benchCmd.Output()
	if err != nil {
		t.Fatalf("csrbench -json: %v", err)
	}
	if err := os.WriteFile(baseline, out, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"wall_ms":`, `"allocs":`, `"bytes":`, `"instances":`} {
		if !strings.Contains(string(out), field) {
			t.Fatalf("csrbench record missing %s:\n%s", field, out)
		}
	}

	diffCmd := exec.Command("go", "run", "./cmd/benchdiff", baseline, baseline)
	if out, err := diffCmd.CombinedOutput(); err != nil || !strings.Contains(string(out), "trajectory OK") {
		t.Fatalf("benchdiff self-compare: %v\n%s", err, out)
	}

	// Inflate every wall time 10x and shrink the floor so the gate trips.
	regressed := filepath.Join(dir, "regressed.json")
	var inflated strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad csrbench record %q: %v", line, err)
		}
		rec["wall_ms"] = rec["wall_ms"].(float64) * 10
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		inflated.Write(data)
		inflated.WriteByte('\n')
	}
	if err := os.WriteFile(regressed, []byte(inflated.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	failCmd := exec.Command("go", "run", "./cmd/benchdiff", "-floor-ms", "0.0001", baseline, regressed)
	out2, err := failCmd.CombinedOutput()
	if err == nil {
		t.Fatalf("benchdiff accepted a 10x regression:\n%s", out2)
	}
	if !strings.Contains(string(out2), "WALL REGRESSION") {
		t.Fatalf("missing regression marker:\n%s", out2)
	}
}
