package fragalign

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIRoundTrip exercises the command-line tools end to end: generate a
// synthetic instance with csrgen, solve it with csrsolve, and check the
// report. Skipped when the go tool is unavailable.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	dir := t.TempDir()
	instance := filepath.Join(dir, "inst.csr")

	genCmd := exec.Command("go", "run", "./cmd/csrgen",
		"-seed", "5", "-regions", "30", "-out", instance)
	if out, err := genCmd.CombinedOutput(); err != nil {
		t.Fatalf("csrgen: %v\n%s", err, out)
	}
	data, err := os.ReadFile(instance)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "H h0") {
		t.Fatalf("generated instance lacks contigs:\n%s", data)
	}

	solveCmd := exec.Command("go", "run", "./cmd/csrsolve",
		"-algo", "csr-improve", instance)
	out, err := solveCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("csrsolve: %v\n%s", err, out)
	}
	for _, want := range []string{"algorithm: csr-improve", "score:", "H layout:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("csrsolve output missing %q:\n%s", want, out)
		}
	}

	listCmd := exec.Command("go", "run", "./cmd/csrsolve", "-list")
	out, err = listCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("csrsolve -list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "csr-improve") || !strings.Contains(string(out), "exact") {
		t.Fatalf("-list output:\n%s", out)
	}
}

// TestCLIBenchSingleTable checks csrbench's experiment filter.
func TestCLIBenchSingleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	cmd := exec.Command("go", "run", "./cmd/csrbench", "-only", "E1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("csrbench: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "E1") || strings.Contains(s, "E2 —") {
		t.Fatalf("filter failed:\n%s", s)
	}
	if !strings.Contains(s, "11.00") {
		t.Fatalf("E1 table missing the optimum:\n%s", s)
	}
}
