package fragalign

// Batch solving: many instances, one persistent worker pool. SolveBatch is
// the slice-in/slice-out form; BatchPool is the streaming form used by
// cmd/csrbatch. Both wrap internal/batch, which owns the shards, the
// bounded queue, the shared candidate-evaluation workers, and the
// per-alphabet cache of compiled σ matrices.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// FaultInjector arms the chaos sequence points inside a batch pool (see
// internal/faultinject): solver panics, slow shards, queue-return stalls,
// deadline overruns, σ-cache drops. Nil — the default — injects nothing.
type FaultInjector = faultinject.Injector

// WithFaultInjector arms fault injection on a batch pool. Batch APIs only;
// nil restores the default (no faults).
func WithFaultInjector(inj *FaultInjector) Option {
	return func(c *solveCfg) { c.inject = inj }
}

// ErrQueueFull is returned by BatchPool.TrySubmit when the submission
// queue has no free slot. Servers translate it into backpressure the
// client can see — csrserve answers 429 with a Retry-After hint.
var ErrQueueFull = batch.ErrQueueFull

// MemEstimate is the memory cost model's per-instance breakdown (see
// WithMemBudget and EstimateMem).
type MemEstimate = batch.MemEstimate

// OverBudgetError is returned by Submit/TrySubmit when the memory cost
// model puts an instance over the pool's WithMemBudget cap; it carries the
// estimate so frontends can answer structured rejects — csrserve turns it
// into a 413 body with the byte counts.
type OverBudgetError = batch.OverBudgetError

// EstimateMem runs the admission cost model on one instance: the bytes a
// solve would pin for the dense compiled σ, DP scratch, and solver state.
// The same model gates WithMemBudget pools (which additionally waive the σ
// term for cached alphabets).
func EstimateMem(in *Instance) MemEstimate { return batch.EstimateMem(in) }

// BatchCounters is a snapshot of a BatchPool's queue, solve, and σ-cache
// counters (see internal/batch.Counters); csrserve exports it at /metrics.
type BatchCounters = batch.Counters

// BatchPool solves a stream of instances with one algorithm over a
// persistent sharded worker pool. Submissions are bounded (WithQueueDepth)
// and individually cancelable; tickets resolve in any order but carry
// submission indices, and each instance's result is byte-identical to what
// sequential Solve produces, regardless of shard count.
//
//	pool := fragalign.NewBatchPool(fragalign.CSRImprove, fragalign.WithShards(8))
//	defer pool.Close()
//	t, _ := pool.Submit(ctx, in)
//	res, err := t.Wait()
type BatchPool struct {
	pool    *batch.Pool
	timeout time.Duration // per-instance deadline, 0 = none
}

// BatchTicket is the pending result of one submitted instance.
type BatchTicket struct {
	t *batch.Ticket
}

// Index is the ticket's submission sequence number.
func (t *BatchTicket) Index() int { return t.t.Index }

// Done is closed when the ticket's result is ready; select on it to
// multiplex many pending tickets without a goroutine per Wait.
func (t *BatchTicket) Done() <-chan struct{} { return t.t.Done() }

// Wait blocks for the result.
func (t *BatchTicket) Wait() (*Result, error) {
	v, err := t.t.Wait()
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// NewBatchPool starts a batch pool solving with alg. Solve options apply to
// every instance; WithShards, WithQueueDepth, and WithPerInstanceTimeout
// shape the pool itself. WithWorkers(n>1) additionally creates n shared
// candidate-evaluation workers that all in-flight improvement solves reuse
// (leave it unset when shards alone saturate the machine). Close the pool
// to release its goroutines.
func NewBatchPool(alg Algorithm, opts ...Option) *BatchPool {
	cfg := newSolveCfg(opts)
	evalWorkers := 0
	if cfg.workers > 1 {
		evalWorkers = cfg.workers
	}
	p := batch.New(batch.Options{
		Shards:      cfg.shards,
		Queue:       cfg.queue,
		EvalWorkers: evalWorkers,
		Inject:      cfg.inject,
		MemBudget:   cfg.memBudget,
		Solve: func(ctx context.Context, in *core.Instance, rt batch.Runtime) (any, error) {
			return solveInstance(ctx, in, alg, cfg, rt.Eval)
		},
	})
	return &BatchPool{pool: p, timeout: cfg.timeout}
}

// Submit enqueues an instance, blocking while the queue is full. The
// returned ticket resolves once a shard solves the instance; ctx (nil means
// Background) cancels queue wait and solve alike.
func (bp *BatchPool) Submit(ctx context.Context, in *Instance) (*BatchTicket, error) {
	return bp.submit(ctx, in, bp.pool.Submit)
}

// TrySubmit is the non-blocking form of Submit: when the bounded queue has
// no free slot it fails immediately with ErrQueueFull instead of waiting.
// This is the admission-control entry point for serving frontends that
// must shed load rather than absorb it.
func (bp *BatchPool) TrySubmit(ctx context.Context, in *Instance) (*BatchTicket, error) {
	return bp.submit(ctx, in, bp.pool.TrySubmit)
}

func (bp *BatchPool) submit(ctx context.Context, in *Instance,
	do func(context.Context, *core.Instance) (*batch.Ticket, error)) (*BatchTicket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if bp.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, bp.timeout)
	}
	t, err := do(ctx, in)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if cancel != nil {
		go func() {
			<-t.Done()
			cancel()
		}()
	}
	return &BatchTicket{t: t}, nil
}

// Counters snapshots the pool's queue, solve, and σ-cache counters.
func (bp *BatchPool) Counters() BatchCounters { return bp.pool.Counters() }

// Shards returns the pool's concurrency.
func (bp *BatchPool) Shards() int { return bp.pool.Shards() }

// Close drains queued work and stops the pool's goroutines.
func (bp *BatchPool) Close() { bp.pool.Close() }

// SolveBatch solves every instance with alg over a sharded worker pool and
// returns results in input order — deterministically: results[i] is
// byte-identical to Solve(ins[i], alg, opts...) no matter how many shards
// ran (WithShards; default GOMAXPROCS). Per-instance failures leave a nil
// slot in results and are joined into err, so callers can consume the
// successes of a partially failed batch.
func SolveBatch(ctx context.Context, ins []*Instance, alg Algorithm, opts ...Option) ([]*Result, error) {
	bp := NewBatchPool(alg, opts...)
	defer bp.Close()
	results := make([]*Result, len(ins))
	tickets := make([]*BatchTicket, 0, len(ins))
	var errs []error
	for i, in := range ins {
		t, err := bp.Submit(ctx, in)
		if err != nil {
			errs = append(errs, fmt.Errorf("fragalign: submit instance %d (%s): %w", i, in.Name, err))
			break // submission fails only when ctx fired or the pool closed
		}
		tickets = append(tickets, t)
	}
	for i, t := range tickets {
		r, err := t.Wait()
		if err != nil {
			errs = append(errs, fmt.Errorf("fragalign: instance %d (%s): %w", i, ins[i].Name, err))
			continue
		}
		results[i] = r
	}
	return results, errors.Join(errs...)
}
