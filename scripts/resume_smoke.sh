#!/usr/bin/env sh
# Crash-recovery smoke for csrbatch journaling, run by the CI chaos job and
# runnable locally. Proves the durability contract on a real process: a
# journaled run is byte-identical to a plain one, a kill -9 mid-run loses
# nothing a -resume cannot reproduce (the resumed stream is byte-identical
# to the uninterrupted run's, wall_ms excepted — solve time is re-measured),
# the fresh-run guard refuses to clobber a completed journal, and the
# memory-budget gate fails instances as records instead of dying on OOM.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
batch_pid=""
cleanup() {
    [ -n "$batch_pid" ] && kill -9 "$batch_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/csrgen" ./cmd/csrgen
go build -o "$workdir/csrbatch" ./cmd/csrbatch

strip_wall() { sed 's/,"wall_ms":[0-9.e+-]*//'; }

# Enough work that the kill below lands mid-run: checkpoint fsyncs per
# accepted op slow the solves just enough on CI-class disks.
"$workdir/csrgen" -count 32 -seed 9 -regions 120 -format jsonl > "$workdir/instances.jsonl"

# 1. Baseline and an uninterrupted journaled run must emit byte-identical
#    result streams — journaling is transparent to the output contract.
"$workdir/csrbatch" -shards 2 "$workdir/instances.jsonl" 2>/dev/null \
    | strip_wall > "$workdir/baseline.jsonl"
"$workdir/csrbatch" -shards 2 -journal "$workdir/j1" "$workdir/instances.jsonl" 2>/dev/null \
    | strip_wall > "$workdir/journaled.jsonl"
cmp -s "$workdir/baseline.jsonl" "$workdir/journaled.jsonl" \
    || { echo "resume_smoke: journaled run differs from baseline"; exit 1; }
records=$(wc -l < "$workdir/journaled.jsonl")
[ "$records" -eq 32 ] || { echo "resume_smoke: expected 32 records, got $records"; exit 1; }
echo "resume_smoke: journaled run byte-identical to baseline ($records records)"

# 2. Fresh-run guard: pointing a NON-resume run at the completed journal
#    must refuse rather than silently clobber it.
if "$workdir/csrbatch" -journal "$workdir/j1" "$workdir/instances.jsonl" \
    >/dev/null 2>"$workdir/guard.log"; then
    echo "resume_smoke: fresh run into a completed journal was not refused"
    exit 1
fi
grep -q 'pass -resume' "$workdir/guard.log" \
    || { echo "resume_smoke: guard refusal does not say how to proceed:"; cat "$workdir/guard.log"; exit 1; }
echo "resume_smoke: fresh-run guard refuses a completed journal"

# 3. The kill -9 drill: start a journaled run, wait until the manifest has
#    at least one completion (so the crash lands with work both done and in
#    flight), SIGKILL it, then -resume and demand the byte-identical stream.
"$workdir/csrbatch" -shards 2 -journal "$workdir/j2" "$workdir/instances.jsonl" \
    > "$workdir/partial.jsonl" 2>/dev/null &
batch_pid=$!
manifest="$workdir/j2/manifest.jsonl"
for _ in $(seq 1 600); do
    if [ -s "$manifest" ]; then break; fi
    kill -0 "$batch_pid" 2>/dev/null || break
    sleep 0.02
done
kill -9 "$batch_pid" 2>/dev/null || true
wait "$batch_pid" 2>/dev/null || true
batch_pid=""
[ -s "$manifest" ] || { echo "resume_smoke: run died before any completion reached the manifest"; exit 1; }
done_before=$(wc -l < "$manifest")
if [ "$done_before" -ge 32 ]; then
    echo "resume_smoke: warning: run completed before the kill landed ($done_before/32); resume covers only the stored-record path"
else
    echo "resume_smoke: killed -9 with $done_before/32 manifested"
fi

"$workdir/csrbatch" -shards 2 -journal "$workdir/j2" -resume "$workdir/instances.jsonl" 2>/dev/null \
    | strip_wall > "$workdir/resumed.jsonl"
cmp -s "$workdir/baseline.jsonl" "$workdir/resumed.jsonl" \
    || { echo "resume_smoke: resumed stream differs from the uninterrupted run:"; \
         diff "$workdir/baseline.jsonl" "$workdir/resumed.jsonl" | head -20; exit 1; }
done_after=$(wc -l < "$manifest")
[ "$done_after" -eq 32 ] || { echo "resume_smoke: resume left $done_after/32 manifested"; exit 1; }
# Completed instances drop their checkpoints; a healthy finished journal
# holds none.
leftover=$(find "$workdir/j2/ckpt" -name '*.ckpt' 2>/dev/null | wc -l)
[ "$leftover" -eq 0 ] || { echo "resume_smoke: $leftover stale checkpoints after resume"; exit 1; }
echo "resume_smoke: resume after kill -9 byte-identical ($done_before completed before crash, 32 after)"

# 4. Memory-budget admission: an absurd budget fails every instance as a
#    structured record (exit 1, one error record per instance) — never OOM,
#    never a lost record.
if "$workdir/csrbatch" -mem-budget 1K "$workdir/instances.jsonl" \
    > "$workdir/budget.jsonl" 2>/dev/null; then
    echo "resume_smoke: -mem-budget 1K run claimed success"
    exit 1
fi
budget_errs=$(grep -c 'memory budget' "$workdir/budget.jsonl" || true)
[ "$budget_errs" -eq 32 ] \
    || { echo "resume_smoke: expected 32 over-budget records, got $budget_errs"; exit 1; }
echo "resume_smoke: memory budget refuses structurally (32 over-budget records)"

echo "resume_smoke: all checks passed"
