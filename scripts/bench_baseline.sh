#!/usr/bin/env sh
# Regenerates BENCH_BASELINE.json, the committed benchmark trajectory the
# CI bench-trajectory job gates against (cmd/benchdiff, >25% wall-time
# regression fails). Run on a quiet machine and commit the result when a PR
# legitimately moves the floor — the seeds and workload sizes here must
# stay in lockstep with .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/csrbench -json -seed 1 -regions 60 -repeat 3 > BENCH_BASELINE.json
go run ./cmd/csrbench -json -seed 1 -regions 60 -instances 8 -repeat 3 -algs csr-improve,four-approx >> BENCH_BASELINE.json
go run ./cmd/csrbench -json -seed 1 -regions 60 -repeat 3 -int -algs csr-improve,four-approx >> BENCH_BASELINE.json
go run ./cmd/csrbench -json -seed 1 -regions 60 -instances 8 -repeat 3 -int -algs csr-improve,four-approx >> BENCH_BASELINE.json
# Incremental-enumeration ablation row (mode=full-enum): tracks what
# from-scratch per-round enumeration costs, so the E7Improve/enum gap
# stays visible in the committed trajectory.
go run ./cmd/csrbench -json -seed 1 -regions 60 -instances 8 -repeat 3 -full-enum -algs csr-improve >> BENCH_BASELINE.json
# Lazy-selection ablation row (mode=eager): the full-list selection engine,
# so the heap engine's win — and any future erosion of it — stays visible.
go run ./cmd/csrbench -json -seed 1 -regions 60 -instances 8 -repeat 3 -lazy=false -algs csr-improve >> BENCH_BASELINE.json
# Genome-scale seeded row (algorithm=csr-genome, mode=seeded): the pinned
# 5k-region genome-small preset solved with minimizer-seeded sparse
# candidates. Single repeat — the row is dominated by the dense-σ build,
# whose wall is stable — and the same invocation measures seeded-vs-classic
# score recovery on a downsampled sibling instance, failing below 0.9
# (the quality gate rides with the perf row). Classic all-pairs mode on
# this preset is benchmarked offline only (≥10x the seeded wall).
go run ./cmd/csrbench -json -seed 1 -preset genome-small -seeded -algs csr-improve     -label csr-genome -seed-accuracy -min-recovery 0.9 >> BENCH_BASELINE.json
# Serving-path sustained-throughput row (algorithm=serve-sustained): csrload
# saturates an in-process csrserve over loopback HTTP; wall_ms is the run's
# total elapsed, so daemon-layer regressions (framing, admission, σ
# affinity, stream-out) trip the same benchdiff wall gate as solver rows.
# Keep the flags in lockstep with the CI bench-trajectory job.
go run ./cmd/csrload -self -rate 0 -requests 32 -instances 4 -regions 60 \
    -seed 1 -shards 4 -queue 128 -repeat 3 -json >> BENCH_BASELINE.json
# Two-tenant fairness row (algorithm=serve-fairness): a paced light tenant
# measured under a heavy tenant's unpaced flood on a deliberately small
# queue; wall_ms is the light tenant's p99, so regressions in fair
# admission's latency isolation trip the wall gate. csrload itself exits
# non-zero if the light tenant is ever rejected.
go run ./cmd/csrload -self -rate 40 -requests 50 -instances 1 -regions 60 \
    -seed 1 -shards 4 -queue 8 -tenant light -tenant2 heavy -tenant2-rate 0 \
    -tenant2-requests 40 -repeat 3 -json >> BENCH_BASELINE.json
echo "wrote BENCH_BASELINE.json:" >&2
cat BENCH_BASELINE.json >&2
