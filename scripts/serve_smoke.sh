#!/usr/bin/env sh
# End-to-end smoke of the csrserve daemon, run by the CI serve-smoke job
# and runnable locally. Proves the serving contract on a real process (not
# httptest): a csrgen→HTTP round trip is byte-identical to cmd/csrbatch
# over the same input (wall_ms stripped — it is timing), admission control
# answers 429 with Retry-After when the queue is full, and SIGTERM drains
# gracefully (healthz flips to 503, in-flight work finishes, clean exit).
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/csrserve" ./cmd/csrserve
go build -o "$workdir/csrgen" ./cmd/csrgen
go build -o "$workdir/csrbatch" ./cmd/csrbatch
go build -o "$workdir/csrload" ./cmd/csrload

# The daemon picks an ephemeral loopback port and prints it on stderr.
"$workdir/csrserve" -addr 127.0.0.1:0 -shards 4 -queue 32 \
    2>"$workdir/serve.log" &
server_pid=$!
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/serve.log")
    if [ -n "$base" ] && curl -fsS "$base/healthz" >/dev/null 2>&1; then
        break
    fi
    base=""
    sleep 0.1
done
[ -n "$base" ] || { echo "serve_smoke: server never came up"; cat "$workdir/serve.log"; exit 1; }
echo "serve_smoke: daemon at $base"

# 1. Round trip: served results must be byte-identical to csrbatch over the
#    same instances — at a shard count different from the server's, which
#    is exactly the determinism contract. wall_ms is timing, strip it.
"$workdir/csrgen" -count 24 -seed 7 -format jsonl > "$workdir/instances.jsonl"
strip_wall() { sed 's/,"wall_ms":[0-9.e+-]*//'; }
curl -fsS --data-binary @"$workdir/instances.jsonl" "$base/v1/solve" \
    | strip_wall > "$workdir/served.jsonl"
"$workdir/csrbatch" -shards 2 "$workdir/instances.jsonl" 2>/dev/null \
    | strip_wall > "$workdir/batch.jsonl"
if ! cmp -s "$workdir/served.jsonl" "$workdir/batch.jsonl"; then
    echo "serve_smoke: served stream differs from csrbatch:"
    diff "$workdir/batch.jsonl" "$workdir/served.jsonl" | head -20
    exit 1
fi
records=$(wc -l < "$workdir/served.jsonl")
[ "$records" -eq 24 ] || { echo "serve_smoke: expected 24 records, got $records"; exit 1; }
echo "serve_smoke: round trip byte-identical to csrbatch ($records records)"

# 2. Completion-order stream: same record set, every index present once.
curl -fsS --data-binary @"$workdir/instances.jsonl" "$base/v1/solve?order=completion" \
    | jq -s 'map(.index) | sort == [range(24)]' | grep -qx true \
    || { echo "serve_smoke: completion-order stream lost records"; exit 1; }
echo "serve_smoke: completion-order stream complete"

# 3. Metrics surface: pool and server sections live, σ cache exercised.
curl -fsS "$base/metrics" > "$workdir/metrics.json"
jq -e '.pool.completed >= 48 and .server.requests >= 2
       and .server.instances_solved >= 48 and .improve.rounds > 0' \
    "$workdir/metrics.json" >/dev/null \
    || { echo "serve_smoke: metrics implausible:"; cat "$workdir/metrics.json"; exit 1; }
echo "serve_smoke: metrics live"

# 4. Admission control: saturate the pool (open-loop burst far beyond the
#    32-slot queue, large instances so shards stay busy) and require that
#    at least one request is refused with 429 + Retry-After while the
#    accepted ones still finish clean. csrload exits non-zero on any hard
#    failure, so 429s being handled as clean rejections is also asserted.
"$workdir/csrload" -url "$base" -rate 0 -requests 60 -instances 4 -regions 80 \
    2>"$workdir/load.log" || { echo "serve_smoke: load run failed:"; cat "$workdir/load.log"; exit 1; }
cat "$workdir/load.log"
rejected=$(sed -n 's/.*(\([0-9]*\) ok, \([0-9]*\) rejected 429.*/\2/p' "$workdir/load.log")
[ -n "$rejected" ] && [ "$rejected" -gt 0 ] \
    || { echo "serve_smoke: burst never tripped admission control"; exit 1; }
# Every rejection must carry Retry-After; csrload verifies the header on
# each 429 and reports the tally.
grep -q "Retry-After present on $rejected/$rejected rejections" "$workdir/load.log" \
    || { echo "serve_smoke: some 429s lacked Retry-After"; exit 1; }
curl -fsS "$base/metrics" | jq -e '.server.rejected_requests > 0' >/dev/null \
    || { echo "serve_smoke: rejections missing from metrics"; exit 1; }
echo "serve_smoke: admission control live ($rejected rejected, all with Retry-After)"

# 4b. Per-tenant fairness: repeat the saturating burst as tenant "heavy"
#     while a paced low-rate tenant "light" is measured. Fair admission
#     must admit every light request (csrload exits non-zero on a light
#     rejection in -tenant2 mode) and the per-tenant /metrics breakdown
#     must show both tenants.
"$workdir/csrload" -url "$base" -rate 10 -requests 10 -instances 1 -regions 40 \
    -tenant light -tenant2 heavy -tenant2-rate 0 -tenant2-requests 40 \
    2>"$workdir/fair.log" || { echo "serve_smoke: fairness run failed:"; cat "$workdir/fair.log"; exit 1; }
cat "$workdir/fair.log"
grep -q 'tenant "light": 10 ok, 0 rejected' "$workdir/fair.log" \
    || { echo "serve_smoke: light tenant was not fully admitted"; exit 1; }
curl -fsS "$base/metrics" | jq -e '.tenants_detail.light.admitted >= 10
        and .tenants_detail.heavy.admitted > 0
        and .tenants_detail.light.rejected == 0' >/dev/null \
    || { echo "serve_smoke: per-tenant metrics missing or wrong"; exit 1; }
echo "serve_smoke: two-tenant burst fair (light fully admitted under heavy flood)"

# 5. Graceful drain: park a request mid-stream (body held open), SIGTERM
#    the daemon, and require (a) healthz flips to 503, (b) the in-flight
#    stream still completes with all its records, (c) clean exit.
fifo="$workdir/drain.fifo"; mkfifo "$fifo"
( head -c 0 /dev/null; "$workdir/csrgen" -count 1 -seed 11 -format jsonl; sleep 2; \
  "$workdir/csrgen" -count 1 -seed 12 -format jsonl ) > "$fifo" &
feeder_pid=$!
# -T - streams stdin as it arrives (chunked); --data-binary would buffer
# the fifo to EOF and the request would never be in flight at drain time.
curl -sN -X POST -T - "$base/v1/solve" < "$fifo" \
    > "$workdir/drain.jsonl" &
curl_pid=$!
sleep 0.5
kill -TERM "$server_pid"
for _ in $(seq 1 50); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz" || true)
    [ "$code" = 503 ] && break
    sleep 0.1
done
[ "$code" = 503 ] || { echo "serve_smoke: healthz did not flip to 503 on drain"; exit 1; }
new=$(curl -s -o /dev/null -w '%{http_code}' --data-binary @"$workdir/instances.jsonl" "$base/v1/solve" || true)
[ "$new" = 503 ] || { echo "serve_smoke: new request during drain got $new, want 503"; exit 1; }
wait "$feeder_pid" "$curl_pid" || { echo "serve_smoke: in-flight request died during drain"; exit 1; }
drained=$(wc -l < "$workdir/drain.jsonl")
[ "$drained" -eq 2 ] || { echo "serve_smoke: in-flight stream truncated ($drained/2 records)"; exit 1; }
wait "$server_pid" || { echo "serve_smoke: server exited non-zero after SIGTERM"; exit 1; }
server_pid=""
grep -q drained "$workdir/serve.log" || { echo "serve_smoke: no drain log line"; exit 1; }
echo "serve_smoke: graceful drain ok (in-flight stream completed with $drained records)"

echo "serve_smoke: all checks passed"
