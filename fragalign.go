// Package fragalign aligns two fragmented sequences: a complete Go
// implementation of "Aligning two fragmented sequences" (Veeramachaneni,
// Berman, Miller; IPPS 2002 / Discrete Applied Mathematics 127, 2003).
//
// Two partially sequenced genomes are given as sets of contigs, each an
// ordered list of conserved regions with cross-species alignment scores σ.
// The Consensus Sequence Reconstruction (CSR) problem orients and orders
// the contigs of each species, deleting regions as needed, to maximize the
// total alignment score — computationally inferring contig order and
// orientation from comparative data alone.
//
// The package exposes:
//
//   - instance construction (Builder), parsing and serialization;
//   - the paper's approximation algorithms: the ratio-(3+ε) iterative
//     improvement family CSR_Improve / Full_Improve / Border_Improve
//     (Theorems 4–6), the ISP-based 4-approximation (Corollary 1), and the
//     Lemma 9 matching 2-approximation;
//   - baselines: exact enumeration for small instances and greedy
//     heuristics;
//   - solution objects that verify their own consistency by constructing a
//     realizing conjecture pair (Definition 2 / Remark 1);
//   - a synthetic fragmented-genome workload generator with ground truth.
//
// Quick start:
//
//	b := fragalign.NewBuilder("demo")
//	b.FragmentH("h1", "a b c")
//	b.FragmentM("m1", "s t")
//	b.Score("a", "s", 4)
//	in, _ := b.Build()
//	res, _ := fragalign.Solve(in, fragalign.CSRImprove)
//	fmt.Println(res.Score, res.LayoutH, res.LayoutM)
package fragalign

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/exact"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/greedy"
	"repro/internal/improve"
	"repro/internal/improve/enum"
	"repro/internal/onecsr"
	"repro/internal/score"
	"repro/internal/seed"
	"repro/internal/symbol"
)

// Re-exported model types. The underlying implementations live in internal
// packages; these aliases are the supported public surface.
type (
	// Instance is one CSR problem: fragment sets H and M plus σ.
	Instance = core.Instance
	// Fragment is one contig.
	Fragment = core.Fragment
	// Species selects the H or M side.
	Species = core.Species
	// Site is a contiguous subfragment f(i..j).
	Site = core.Site
	// Match pairs an H site with an M site at a relative orientation.
	Match = core.Match
	// Solution is a set of matches.
	Solution = core.Solution
	// Conjecture is a realized conjecture pair with layouts.
	Conjecture = core.Conjecture
	// OrientedFrag is a fragment with an orientation in a layout.
	OrientedFrag = core.OrientedFrag
	// Word is a sequence of region symbols.
	Word = symbol.Word
	// Symbol is one conserved-region occurrence.
	Symbol = symbol.Symbol
	// GenConfig parameterizes the synthetic workload generator.
	GenConfig = gen.Config
	// Canonical is a shared alphabet/σ table for generated workloads: set
	// GenConfig.Canonical so a whole batch shares one score table (and the
	// batch pool's per-alphabet cache compiles it once).
	Canonical = gen.Canonical
	// Workload is a generated instance with ground truth.
	Workload = gen.Workload
	// Accuracy quantifies ground-truth layout recovery.
	Accuracy = gen.Accuracy
	// ImproveStats reports on an iterative-improvement run.
	ImproveStats = improve.Stats
	// CheckpointOp is one accepted improvement operation — the unit of the
	// solver's crash-recovery log. The improvement driver is deterministic:
	// replaying a solve's accepted ops over a fresh state reproduces its
	// exact mid-solve state, so a durable op log IS a checkpoint.
	CheckpointOp = enum.Cand
	// CheckpointSink receives each accepted operation of an improvement
	// solve as it happens (see ContextWithCheckpoint). A sink error aborts
	// the solve: the solver never runs ahead of its durable log.
	// encoding.CheckpointWriter is the file-backed implementation.
	CheckpointSink = improve.CheckpointSink
)

// Species constants.
const (
	SpeciesH = core.SpeciesH
	SpeciesM = core.SpeciesM
)

// Builder assembles instances from region names. Reversed occurrences are
// written with a trailing apostrophe: "a'" is aᴿ.
type Builder struct {
	in  *core.Instance
	tb  *score.Table
	err error
}

// NewBuilder starts an empty instance.
func NewBuilder(name string) *Builder {
	tb := score.NewTable()
	return &Builder{
		in: &core.Instance{Name: name, Alpha: symbol.NewAlphabet(), Sigma: tb},
		tb: tb,
	}
}

// FragmentH appends an H-side contig given as space-separated region names.
func (b *Builder) FragmentH(name, regions string) *Builder {
	return b.frag(core.SpeciesH, name, regions)
}

// FragmentM appends an M-side contig.
func (b *Builder) FragmentM(name, regions string) *Builder {
	return b.frag(core.SpeciesM, name, regions)
}

func (b *Builder) frag(sp core.Species, name, regions string) *Builder {
	if b.err != nil {
		return b
	}
	w, err := b.in.Alpha.ParseWord(regions)
	if err != nil {
		b.err = err
		return b
	}
	f := core.Fragment{Name: name, Regions: w}
	if sp == core.SpeciesH {
		b.in.H = append(b.in.H, f)
	} else {
		b.in.M = append(b.in.M, f)
	}
	return b
}

// Score records σ(a, b) = v (and σ(aᴿ, bᴿ) = v by reversal symmetry). Use
// the apostrophe suffix for reversed occurrences, e.g. Score("b", "t'", 3).
func (b *Builder) Score(a, bb string, v float64) *Builder {
	if b.err != nil {
		return b
	}
	sa, err := b.in.Alpha.ParseSymbol(a)
	if err != nil {
		b.err = err
		return b
	}
	sb, err := b.in.Alpha.ParseSymbol(bb)
	if err != nil {
		b.err = err
		return b
	}
	b.tb.Set(sa, sb, v)
	return b
}

// Build validates and returns the instance.
func (b *Builder) Build() (*Instance, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.in.Validate(); err != nil {
		return nil, err
	}
	return b.in, nil
}

// PaperExample returns the worked data set of the paper's §1 (Fig. 2),
// whose optimal score is 11.
func PaperExample() *Instance { return core.PaperExample() }

// Generate builds a synthetic fragmented-genome workload.
func Generate(cfg GenConfig) *Workload { return gen.Generate(cfg) }

// NewCanonical builds a canonical alphabet/σ table for GenConfig.Canonical.
func NewCanonical(cfg GenConfig) *Canonical { return gen.NewCanonical(cfg) }

// DefaultGenConfig returns a small structured workload configuration.
func DefaultGenConfig(seed int64) GenConfig { return gen.DefaultConfig(seed) }

// GenPreset returns a named workload configuration ("genome-small",
// "genome-large"); ok is false for unknown names. The genome presets carry
// a shared canonical alphabet — reuse the returned Config (changing only
// Seed) across a batch so every instance targets the same σ table.
func GenPreset(name string, seed int64) (GenConfig, bool) { return gen.Preset(name, seed) }

// GenPresetNames lists the presets accepted by GenPreset.
func GenPresetNames() []string { return gen.PresetNames() }

// ReadInstance parses the text instance format.
func ReadInstance(r io.Reader) (*Instance, error) { return encoding.ReadText(r) }

// WriteInstance serializes an instance in the text format.
func WriteInstance(w io.Writer, in *Instance) error { return encoding.WriteText(w, in) }

// Algorithm selects a CSR solver.
type Algorithm string

// Available algorithms.
const (
	// Exact enumerates all conjecture pairs (small instances only).
	Exact Algorithm = "exact"
	// GreedyMatching is the best-pair-first whole-fragment heuristic.
	GreedyMatching Algorithm = "greedy"
	// GreedyPlacement is the best-placement-first heuristic.
	GreedyPlacement Algorithm = "greedy-placement"
	// FourApprox is Corollary 1: the ISP-based 4-approximation.
	FourApprox Algorithm = "four-approx"
	// Matching2 is the Lemma 9 matching-based 2-approximation for Border
	// CSR instances.
	Matching2 Algorithm = "matching2"
	// FullImprove is Theorem 4's I1-only iterative improvement (Full CSR).
	FullImprove Algorithm = "full-improve"
	// BorderImprove is Theorem 5's I2/I3 iterative improvement (Border CSR).
	BorderImprove Algorithm = "border-improve"
	// CSRImprove is Theorem 6's combined algorithm — ratio 3+ε for general
	// CSR; the paper's headline solver.
	CSRImprove Algorithm = "csr-improve"
)

// Algorithms lists every solver name.
func Algorithms() []Algorithm {
	return []Algorithm{Exact, GreedyMatching, GreedyPlacement, FourApprox,
		Matching2, FullImprove, BorderImprove, CSRImprove}
}

// Option tunes Solve.
type Option func(*solveCfg)

type solveCfg struct {
	workers     int
	eps         float64
	seed4       bool
	exactCap    int
	check       bool
	quantize    bool
	intScore    bool
	fullEnum    bool
	eagerSelect bool
	partial     bool
	seeded      bool
	seedParams  seed.Params
	// Batch-only knobs (see solvebatch.go).
	shards    int
	queue     int
	timeout   time.Duration
	inject    *faultinject.Injector
	memBudget int64
}

// WithWorkers parallelizes candidate evaluation (improvement algorithms)
// or layout enumeration (exact).
func WithWorkers(n int) Option { return func(c *solveCfg) { c.workers = n } }

// WithEps sets the §4.1 scaling slack for the improvement algorithms
// (default 0.05). Zero accepts every positive gain.
func WithEps(eps float64) Option { return func(c *solveCfg) { c.eps = eps } }

// WithFourApproxSeed starts the improvement algorithms from the Corollary 1
// solution instead of the empty set.
func WithFourApproxSeed(on bool) Option { return func(c *solveCfg) { c.seed4 = on } }

// WithExactCap raises the exact solver's per-side fragment cap.
func WithExactCap(n int) Option { return func(c *solveCfg) { c.exactCap = n } }

// WithConsistencyChecks validates the solution after every improvement
// step (slow; for debugging).
func WithConsistencyChecks(on bool) Option { return func(c *solveCfg) { c.check = on } }

// WithQuantizedScaling uses the literal §4.1 Chandra–Halldórsson scaling
// for the improvement algorithms: search under scores truncated to
// multiples of X/k², re-score under the true σ at the end.
func WithQuantizedScaling(on bool) Option { return func(c *solveCfg) { c.quantize = on } }

// WithIntScore runs the solver's alignment kernels over the
// integer-quantized σ matrix: σ compiles to a flat []int32 (unit auto-derived
// from the value range, or exact when every score is an integer multiple of
// one unit) and every DP sweeps contiguous int32 rows — measurably faster
// than the float64 dense path. The final solution is re-scored under the
// true σ, so Result.Score is always exact; only the search itself sees
// quantized values, deviating from float64 mode by at most the
// score.CompiledInt error bound (zero for integral σ). Off by default:
// results are then bit-identical to float64 mode.
func WithIntScore(on bool) Option { return func(c *solveCfg) { c.intScore = on } }

// WithIncrementalEnum toggles the improvement driver's incremental
// candidate-enumeration subsystem (on by default): candidate windows are
// cached per fragment under the driver's version counters and only the
// windows that read a fragment touched by the last accepted attempt are
// re-enumerated each round — the candidate list, the accepted-attempt
// sequence, and the final solution are bit-identical either way (the A/B
// oracle is enforced by the improve test suite). Pass false to re-enumerate
// from scratch every round, for A/B benchmarking (csrbench -full-enum).
// ImproveStats.EnumRefreshed / EnumReused report the subsystem's cache
// traffic.
func WithIncrementalEnum(on bool) Option { return func(c *solveCfg) { c.fullEnum = !on } }

// WithLazySelection toggles the improvement driver's lazy best-first
// candidate-selection engine (on by default): cached candidate gains live
// in a generation-stamped slot array feeding an indexed max-heap, accepted
// attempts dirty only the candidates that read a touched fragment (via a
// per-fragment inverted dependency index), and each round re-simulates just
// that stale frontier before accepting the heap top — so converged rounds
// touch O(dirty + log C) candidates instead of walking all C. Accepted
// attempt sequences, match sets, and scores are bit-identical either way
// (the improve test suite triangulates the engines against the FullEnum and
// FullReeval oracles). Pass false to fall back to the eager full-list
// engine, for A/B benchmarking (csrbench -lazy=false).
// ImproveStats.Popped / Resimulated / Skipped report the engine's heap
// traffic.
func WithLazySelection(on bool) Option { return func(c *solveCfg) { c.eagerSelect = !on } }

// WithSeededCandidates replaces all-pairs candidate enumeration in the
// improvement algorithms with minimizer seed-and-chain candidate generation
// (internal/seed): only fragment pairs whose words share σ-translated
// minimizer chains enter the search. This is the genome-scale mode — pair
// sweeps become near-linear in the fragment count — at the cost of a
// documented recall bound: pairs whose best alignment has no seed chain are
// never tried.
func WithSeededCandidates(on bool) Option { return func(c *solveCfg) { c.seeded = on } }

// WithSeedParams overrides the seeding pipeline's tuning (implies nothing
// about WithSeededCandidates; set both). The zero value means
// seed.DefaultParams(); Params.Exhaustive selects the provably lossless
// positive-σ mask instead of minimizers.
func WithSeedParams(p seed.Params) Option { return func(c *solveCfg) { c.seedParams = p } }

// WithPartialResults degrades deadline and cancellation failures of the
// improvement algorithms gracefully: when the context fires mid-solve, the
// solver returns the last accepted solution — consistent, with Score exact
// under the true σ — and marks ImproveStats.Partial instead of failing with
// the context error. In the spirit of the paper's 4-approximation, an
// anytime answer beats no answer; off by default, so deadline overruns stay
// hard errors. Per-submission opt-in for batch pools goes through
// ContextWithPartial instead.
func WithPartialResults(on bool) Option { return func(c *solveCfg) { c.partial = on } }

// partialKey marks a context whose solves should degrade gracefully.
type partialKey struct{}

// ContextWithPartial marks ctx so any solve submitted under it behaves as if
// WithPartialResults(true) were set — the per-request form used by csrserve's
// ?partial=1, where one pool serves requests with different preferences.
func ContextWithPartial(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, partialKey{}, true)
}

func partialFromContext(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	on, _ := ctx.Value(partialKey{}).(bool)
	return on
}

// Per-submission solve overrides carried on the submission context, the
// mechanism batch pools use for knobs that vary per instance while one pool
// serves them all (ContextWithPartial established the pattern).
type (
	checkpointKey struct{}
	resumeKey     struct{}
	seededKey     struct{}
)

// ContextWithCheckpoint attaches a checkpoint sink to a submission: every
// accepted improvement operation of a solve run under ctx is handed to sink
// before the solve proceeds, and a sink error aborts the solve. With a
// durable sink (encoding.CreateCheckpoint) a killed solve can be resumed
// from its last flushed op via ContextWithResume. Improvement algorithms
// only; other solvers ignore it.
func ContextWithCheckpoint(ctx context.Context, sink CheckpointSink) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, checkpointKey{}, sink)
}

func checkpointFromContext(ctx context.Context) improve.CheckpointSink {
	if ctx == nil {
		return nil
	}
	sink, _ := ctx.Value(checkpointKey{}).(improve.CheckpointSink)
	return sink
}

// ContextWithResume fast-forwards a solve through a previously checkpointed
// accepted-op log before its round loop starts. The ops must come from a
// checkpoint of the same instance under the same solve configuration
// (encoding.CheckpointHeader.Fingerprint is how csrbatch pins this); the
// resumed solve's remaining accepted sequence, final solution, and score are
// then bit-identical to the uninterrupted run's. Ops that do not fit the
// instance fail the solve with a typed error. Improvement algorithms only.
func ContextWithResume(ctx context.Context, ops []CheckpointOp) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, resumeKey{}, ops)
}

func resumeFromContext(ctx context.Context) []enum.Cand {
	if ctx == nil {
		return nil
	}
	ops, _ := ctx.Value(resumeKey{}).([]enum.Cand)
	return ops
}

// ContextWithSeeded overrides WithSeededCandidates per submission — the
// per-request form behind csrserve's ?seeded= parameter, where one pool
// serves requests with different candidate-generation preferences.
func ContextWithSeeded(ctx context.Context, on bool) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, seededKey{}, on)
}

// SeededFromContext reports the ContextWithSeeded override: on is the value
// and ok whether one was set (false ok means "use the pool's default").
func SeededFromContext(ctx context.Context) (on, ok bool) {
	if ctx == nil {
		return false, false
	}
	on, ok = ctx.Value(seededKey{}).(bool)
	return on, ok
}

// WithShards sets the number of concurrent per-instance solvers a batch
// pool runs (default GOMAXPROCS). Batch APIs only; Solve ignores it.
func WithShards(n int) Option { return func(c *solveCfg) { c.shards = n } }

// WithQueueDepth bounds a batch pool's submission queue (default
// 2×shards); Submit blocks while the queue is full. Batch APIs only.
func WithQueueDepth(n int) Option { return func(c *solveCfg) { c.queue = n } }

// WithPerInstanceTimeout gives every batch-submitted instance its own
// solve deadline; an instance that exceeds it fails with
// context.DeadlineExceeded without affecting the rest of the batch.
// Batch APIs only.
func WithPerInstanceTimeout(d time.Duration) Option {
	return func(c *solveCfg) { c.timeout = d }
}

// WithMemBudget caps the estimated memory footprint of any single instance a
// batch pool admits: submissions whose cost-model estimate (σ compile bytes
// from the alphabet size + DP scratch from the fragment-length profile +
// solver state) exceeds bytes are refused with an *OverBudgetError instead
// of being queued to die on OOM. Instances whose σ is already resident in
// the pool's per-alphabet cache are charged only scratch + state. 0 (the
// default) disables the gate. Batch APIs only.
func WithMemBudget(bytes int64) Option {
	return func(c *solveCfg) { c.memBudget = bytes }
}

// Result is a solved instance.
type Result struct {
	// Algorithm that produced the result.
	Algorithm Algorithm
	// Score is the total score of the solution.
	Score float64
	// Solution is the consistent match set (nil for Exact, which proves
	// the optimum by enumeration instead).
	Solution *Solution
	// Conjecture realizes the solution (nil for Exact).
	Conjecture *Conjecture
	// LayoutH and LayoutM are the inferred fragment orders/orientations.
	LayoutH, LayoutM []OrientedFrag
	// Stats carries improvement-run statistics when applicable.
	Stats *ImproveStats
	// Wall is the solve's wall-clock duration (queueing excluded for
	// batch-submitted instances).
	Wall time.Duration
}

func newSolveCfg(opts []Option) solveCfg {
	var cfg solveCfg
	cfg.eps = 0.05
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Solve runs the selected algorithm on the instance.
func Solve(in *Instance, alg Algorithm, opts ...Option) (*Result, error) {
	return solveInstance(nil, in, alg, newSolveCfg(opts), nil)
}

// solveInstance is the shared solver core behind Solve and the batch APIs:
// ctx cancels improvement runs sub-round (between candidate simulations,
// between enumeration shards, and inside TPA batches), and eval (when
// non-nil) is a batch-owned evaluation pool shared across concurrent solves
// for both simulation and enumeration jobs.
func solveInstance(ctx context.Context, in *Instance, alg Algorithm, cfg solveCfg, eval *improve.EvalPool) (*Result, error) {
	res := &Result{Algorithm: alg}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()
	// Integer scoring mode: the non-improvement algorithms solve a shadow
	// instance whose σ is the int32-quantized matrix, and the resulting
	// match set is re-scored under the true σ before the conjecture is
	// built — quantization never leaks into Result.Score. The improvement
	// algorithms handle the same swap internally (improve.Options.IntScore).
	solveIn := in
	var denseSigma *score.Compiled // retained for the boundary re-score
	intBoundary := false
	if cfg.intScore {
		switch alg {
		case Exact, GreedyMatching, GreedyPlacement, FourApprox, Matching2:
			denseSigma = score.Compile(in.Sigma, in.MaxSymbolID())
			shadow := *in
			shadow.Sigma = denseSigma.Int()
			solveIn = &shadow
			intBoundary = alg != Exact // exact re-scores its winner itself
		}
	}
	var sol *Solution
	switch alg {
	case Exact:
		r, err := exact.Solve(solveIn, exact.Solver{MaxFrags: cfg.exactCap, Workers: cfg.workers})
		if err != nil {
			return nil, err
		}
		res.Score = r.Score
		res.LayoutH, res.LayoutM = r.HOrder, r.MOrder
		return res, nil
	case GreedyMatching:
		sol = greedy.Matching(solveIn)
	case GreedyPlacement:
		sol = greedy.Placement(solveIn)
	case FourApprox:
		var err error
		sol, err = onecsr.FourApprox(solveIn)
		if err != nil {
			return nil, err
		}
	case Matching2:
		var err error
		sol, err = improve.MatchingTwoApprox(solveIn)
		if err != nil {
			return nil, err
		}
	case FullImprove, BorderImprove, CSRImprove:
		methods := improve.AllMethods
		if alg == FullImprove {
			methods = improve.FullOnly
		}
		if alg == BorderImprove {
			methods = improve.BorderOnly
		}
		seeded := cfg.seeded
		if on, ok := SeededFromContext(ctx); ok {
			seeded = on
		}
		s, stats, err := improve.Improve(in, improve.Options{
			Methods:            methods,
			Eps:                cfg.eps,
			SeedWithFourApprox: cfg.seed4,
			Workers:            cfg.workers,
			Quantize:           cfg.quantize,
			IntScore:           cfg.intScore,
			FullEnum:           cfg.fullEnum,
			EagerSelect:        cfg.eagerSelect,
			Seeded:             seeded,
			SeedParams:         cfg.seedParams,
			CheckInvariants:    cfg.check,
			Partial:            cfg.partial || partialFromContext(ctx),
			Checkpoint:         checkpointFromContext(ctx),
			Resume:             resumeFromContext(ctx),
			Ctx:                ctx,
			Eval:               eval,
		})
		if err != nil {
			return nil, err
		}
		sol = s
		res.Stats = &stats
	default:
		return nil, fmt.Errorf("fragalign: unknown algorithm %q", alg)
	}
	if intBoundary {
		// Dequantization boundary: cached match scores leave the integer
		// search re-scored under the exact σ the shadow was quantized from.
		// The solver built sol for this call alone, so mutate it directly.
		improve.RescoreInPlace(in, sol, denseSigma)
	}
	conj, err := sol.BuildConjecture(in)
	if err != nil {
		return nil, fmt.Errorf("fragalign: %s produced an inconsistent solution: %w", alg, err)
	}
	res.Solution = sol
	res.Score = sol.Score()
	res.Conjecture = conj
	res.LayoutH, res.LayoutM = conj.HOrder, conj.MOrder
	return res, nil
}

// FormatResult renders a result for terminals: score, layouts, matches.
func FormatResult(in *Instance, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "algorithm: %s\nscore: %v\n", res.Algorithm, res.Score)
	if res.Conjecture != nil {
		fmt.Fprintf(&b, "H layout: %s\nM layout: %s\n",
			res.Conjecture.FormatLayout(in, SpeciesH, matchedCount(in, res, SpeciesH)),
			res.Conjecture.FormatLayout(in, SpeciesM, matchedCount(in, res, SpeciesM)))
		fmt.Fprintf(&b, "matches: %d\n", len(res.Solution.Matches))
		for _, mt := range res.Solution.Matches {
			rev := ""
			if mt.Rev {
				rev = " (reversed)"
			}
			fmt.Fprintf(&b, "  %v ~ %v%s score %v\n", mt.HSite, mt.MSite, rev, mt.Score)
		}
	} else {
		fmt.Fprintf(&b, "H layout: %v\nM layout: %v\n", res.LayoutH, res.LayoutM)
	}
	return b.String()
}

func matchedCount(in *Instance, res *Result, sp Species) int {
	seen := map[int]bool{}
	for _, mt := range res.Solution.Matches {
		seen[mt.Side(sp).Frag] = true
	}
	return len(seen)
}

// RecoveryAccuracy scores a result's inferred layout for one species
// against a generated workload's ground truth: pairwise contig order and
// orientation accuracy, modulo the unobservable whole-genome flip. Only
// contigs that participate in matches are evaluated.
func RecoveryAccuracy(res *Result, sp Species) Accuracy {
	if res.Solution == nil || res.Conjecture == nil {
		return Accuracy{}
	}
	layout := res.Conjecture.HOrder
	if sp == SpeciesM {
		layout = res.Conjecture.MOrder
	}
	seen := map[int]bool{}
	for _, mt := range res.Solution.Matches {
		seen[mt.Side(sp).Frag] = true
	}
	return gen.LayoutAccuracy(layout, len(seen))
}
