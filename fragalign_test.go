package fragalign

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestBuilderAndSolvePaperExample(t *testing.T) {
	b := NewBuilder("paper")
	b.FragmentH("h1", "a b c").FragmentH("h2", "d")
	b.FragmentM("m1", "s t").FragmentM("m2", "u v")
	b.Score("a", "s", 4).Score("a", "t", 1).Score("b", "t'", 3)
	b.Score("c", "u", 5).Score("d", "t", 2).Score("d", "v'", 2)
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		res, err := Solve(in, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Score < 0 || res.Score > 11 {
			t.Fatalf("%s: score %v out of range", alg, res.Score)
		}
		if alg == Exact && res.Score != 11 {
			t.Fatalf("exact score %v, want 11", res.Score)
		}
		if alg == CSRImprove && res.Score != 11 {
			t.Fatalf("CSR_Improve score %v, want 11 on the paper example", res.Score)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.FragmentH("h", "'")
	if _, err := b.Build(); err == nil {
		t.Fatal("bad token accepted")
	}
	b2 := NewBuilder("empty")
	b2.FragmentH("h", "a")
	b2.Score("'", "x", 1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("bad score token accepted")
	}
	b3 := NewBuilder("emptyfrag")
	b3.FragmentH("h", "")
	if _, err := b3.Build(); err == nil {
		t.Fatal("empty fragment accepted")
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	in := PaperExample()
	if _, err := Solve(in, Algorithm("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSolveOptionsAndStats(t *testing.T) {
	in := PaperExample()
	res, err := Solve(in, CSRImprove,
		WithWorkers(2), WithEps(0.1), WithFourApproxSeed(true), WithConsistencyChecks(true))
	if err != nil {
		t.Fatal(err)
	}
	qres, err := Solve(in, CSRImprove, WithQuantizedScaling(true))
	if err != nil {
		t.Fatal(err)
	}
	if qres.Score != 11 {
		t.Fatalf("quantized-scaling score %v, want 11", qres.Score)
	}
	if res.Stats == nil {
		t.Fatal("no stats from improvement run")
	}
	if res.Conjecture == nil || res.Solution == nil {
		t.Fatal("missing artifacts")
	}
	if len(res.LayoutH) == 0 || len(res.LayoutM) == 0 {
		t.Fatal("missing layouts")
	}
}

func TestInstanceIO(t *testing.T) {
	in := PaperExample()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(back, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 11 {
		t.Fatalf("round-trip optimum %v", res.Score)
	}
}

func TestGenerateAndSolveEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		cfg := DefaultGenConfig(r.Int63())
		cfg.Regions = 25
		w := Generate(cfg)
		res, err := Solve(w.Instance, CSRImprove, WithFourApproxSeed(true))
		if err != nil {
			t.Fatal(err)
		}
		fa, err := Solve(w.Instance, FourApprox)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score < fa.Score-1e-9 {
			t.Fatalf("improvement below its seedable baseline: %v < %v", res.Score, fa.Score)
		}
	}
}

func TestFormatResult(t *testing.T) {
	in := PaperExample()
	res, err := Solve(in, CSRImprove)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(in, res)
	for _, want := range []string{"score: 11", "H layout:", "matches:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
	ex, err := Solve(in, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatResult(in, ex); !strings.Contains(out, "score: 11") {
		t.Fatalf("exact format: %s", out)
	}
}

func TestMatching2OnBorderInstances(t *testing.T) {
	// Fooling-family instances are single-region fragments: every match is
	// full–full, so Matching2 is the optimal matching and must reach the
	// planted optimum.
	b := NewBuilder("pairs")
	b.FragmentH("h1", "x").FragmentH("h2", "y")
	b.FragmentM("m1", "p").FragmentM("m2", "q")
	b.Score("x", "p", 3).Score("x", "q", 4).Score("y", "p", 5)
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Matching2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 9 { // x–q + y–p
		t.Fatalf("matching2 score %v, want 9", res.Score)
	}
}
