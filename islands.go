package fragalign

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Island is one group of contigs whose relative order and orientation the
// comparison determines (§1: "an island of contigs that are oriented and
// ordered relative to one another"). Inter-island relationships are not
// implied by the data.
type Island struct {
	// LayoutH and LayoutM list the island's contigs of each species in
	// inferred order with orientations (relative within the island).
	LayoutH, LayoutM []OrientedFrag
	// Score is the total score of the island's matches.
	Score float64
	// Matches are the supporting matches.
	Matches []Match
}

// FormatIsland renders one island, e.g. "H: h1 h2' | M: m1 m2 (score 11)".
func FormatIsland(in *Instance, isl Island) string {
	name := func(sp Species, of OrientedFrag) string {
		n := in.Frag(sp, of.Frag).Name
		if n == "" {
			n = fmt.Sprintf("%v%d", sp, of.Frag)
		}
		if of.Rev {
			n += "'"
		}
		return n
	}
	var hs, ms []string
	for _, of := range isl.LayoutH {
		hs = append(hs, name(SpeciesH, of))
	}
	for _, of := range isl.LayoutM {
		ms = append(ms, name(SpeciesM, of))
	}
	return fmt.Sprintf("H: %s | M: %s (score %v, %d matches)",
		strings.Join(hs, " "), strings.Join(ms, " "), isl.Score, len(isl.Matches))
}

// IslandsReport decomposes a solution into its islands — the units of
// order/orientation information the method can actually assert. Each
// island's layouts are computed independently (orientations are relative
// within the island; a global flip of any island is equally valid).
// Islands are sorted by descending score.
func IslandsReport(in *Instance, sol *Solution) ([]Island, error) {
	if sol == nil {
		return nil, fmt.Errorf("fragalign: nil solution")
	}
	var out []Island
	for _, matchIdxs := range sol.Islands(in) {
		sub := &core.Solution{}
		for _, mi := range matchIdxs {
			sub.Matches = append(sub.Matches, sol.Matches[mi])
		}
		conj, err := sub.BuildConjecture(in)
		if err != nil {
			return nil, fmt.Errorf("fragalign: island inconsistent: %w", err)
		}
		isl := Island{Score: sub.Score(), Matches: sub.Matches}
		// Keep only contigs that actually participate in the island.
		inIsland := map[FragRef]bool{}
		for _, mt := range sub.Matches {
			inIsland[FragRef{Sp: SpeciesH, Idx: mt.HSite.Frag}] = true
			inIsland[FragRef{Sp: SpeciesM, Idx: mt.MSite.Frag}] = true
		}
		for _, of := range conj.HOrder {
			if inIsland[FragRef{Sp: SpeciesH, Idx: of.Frag}] {
				isl.LayoutH = append(isl.LayoutH, of)
			}
		}
		for _, of := range conj.MOrder {
			if inIsland[FragRef{Sp: SpeciesM, Idx: of.Frag}] {
				isl.LayoutM = append(isl.LayoutM, of)
			}
		}
		out = append(out, isl)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// FragRef re-exports the fragment reference type used by island reports.
type FragRef = core.FragRef
