package batch

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// checkQueueInvariant asserts the token-semaphore bookkeeping at quiescence:
// every queue slot is either a free token in space or an undequeued job, so
// tokens_free + len(jobs) == Queue. A leaked or double-returned token — the
// failure a panicking or stalling shard could plausibly cause — breaks this
// permanently, wedging (or overcommitting) every later submission.
func checkQueueInvariant(t *testing.T, p *Pool) {
	t.Helper()
	free, queued, bound := len(p.space), len(p.jobs), cap(p.space)
	if free+queued != bound {
		t.Fatalf("queue invariant broken: %d free tokens + %d queued jobs != %d slots",
			free, queued, bound)
	}
}

// TestChaosPanicIsolation: an injected solver panic on every 3rd solve must
// resolve those tickets as errors while every other instance solves normally,
// with Completed + Failed == Submitted and the token semaphore intact.
func TestChaosPanicIsolation(t *testing.T) {
	ins := testInstances(t, 12, 25)
	p := New(Options{
		Shards: 2,
		Solve:  improveSolver,
		Inject: faultinject.New(1, faultinject.Rule{Point: faultinject.SolvePanic, Nth: 3}),
	})
	defer p.Close()

	results, errs, err := p.SolveAll(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	panics := 0
	for i := range ins {
		if errs[i] != nil {
			if !strings.Contains(errs[i].Error(), "solver panic") {
				t.Fatalf("instance %d: unexpected error %v", i, errs[i])
			}
			panics++
			continue
		}
		if !strings.HasPrefix(results[i].(string), ins[i].Name+" ") {
			t.Fatalf("instance %d: bad result %v", i, results[i])
		}
	}
	if panics != 4 {
		t.Fatalf("got %d injected panics, want 4 (every 3rd of 12 solves)", panics)
	}

	c := p.Counters()
	if c.Submitted != 12 || c.Completed != 8 || c.Failed != 4 {
		t.Fatalf("counters inconsistent after panics: submitted=%d completed=%d failed=%d",
			c.Submitted, c.Completed, c.Failed)
	}
	checkQueueInvariant(t, p)

	// The pool is still fully operational: the 13th solve (not a multiple
	// of 3) succeeds.
	tk, err := p.Submit(context.Background(), ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatalf("solve after panic storm: %v", err)
	}
	checkQueueInvariant(t, p)
}

// TestChaosPanicNeverWedgesSemaphore: with EVERY solve panicking on a
// single-shard pool, far more submissions than the queue bound must still
// flow through — a panic that leaked the shard goroutine or a queue token
// would block a later Submit forever.
func TestChaosPanicNeverWedgesSemaphore(t *testing.T) {
	ins := testInstances(t, 1, 20)
	p := New(Options{
		Shards: 1,
		Queue:  2,
		Solve:  improveSolver,
		Inject: faultinject.New(1, faultinject.Rule{Point: faultinject.SolvePanic}),
	})
	defer p.Close()

	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		tk, err := p.Submit(ctx, ins[0])
		if err != nil {
			cancel()
			t.Fatalf("submit %d blocked or failed: %v", i, err)
		}
		_, werr := tk.Wait()
		cancel()
		if werr == nil || !strings.Contains(werr.Error(), "solver panic") {
			t.Fatalf("solve %d: got %v, want injected panic", i, werr)
		}
	}
	c := p.Counters()
	if c.Failed != 10 || c.Completed != 0 {
		t.Fatalf("counters after all-panic run: completed=%d failed=%d", c.Completed, c.Failed)
	}
	checkQueueInvariant(t, p)
}

// TestChaosQueueStallDrain: with every dequeue's token return stalled, a
// burst larger than the queue bound still solves completely and Close
// drains cleanly — the stall shrinks effective queue capacity but must
// never strand a submitted ticket.
func TestChaosQueueStallDrain(t *testing.T) {
	ins := testInstances(t, 8, 25)
	p := New(Options{
		Shards: 2,
		Queue:  2,
		Solve:  improveSolver,
		Inject: faultinject.New(1, faultinject.Rule{Point: faultinject.QueueStall, Delay: 10 * time.Millisecond}),
	})

	results, errs, err := p.SolveAll(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if errs[i] != nil {
			t.Fatalf("instance %d under queue stall: %v", i, errs[i])
		}
		if !strings.HasPrefix(results[i].(string), ins[i].Name+" ") {
			t.Fatalf("instance %d: bad result %v", i, results[i])
		}
	}
	checkQueueInvariant(t, p)
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain under injected queue stalls")
	}
}

// TestChaosSlowShardHonorsDeadline: an injected shard stall far longer than
// the instance deadline must wake on the deadline and resolve the ticket as
// a deadline failure promptly — the stall cannot hold a doomed instance
// hostage for its full injected delay.
func TestChaosSlowShardHonorsDeadline(t *testing.T) {
	ins := testInstances(t, 1, 25)
	p := New(Options{
		Shards: 1,
		Solve:  improveSolver,
		Inject: faultinject.New(1, faultinject.Rule{Point: faultinject.ShardSlow, Delay: time.Hour}),
	})
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	tk, err := p.Submit(ctx, ins[0])
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, werr := tk.Wait()
	if werr == nil || !strings.Contains(werr.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("got %v, want deadline exceeded", werr)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stalled ticket took %v to resolve; the stall ignored the deadline", elapsed)
	}
	checkQueueInvariant(t, p)
}

// TestChaosSigmaDropIdentity is the σ-cache corruption guard: solves whose
// interned scorer identity is randomly dropped (forcing fresh compiles that
// bypass the cache) must produce byte-identical results to an uninjected
// pool — correctness can depend only on σ's content, never on which
// compiled-matrix identity a solve happened to receive.
func TestChaosSigmaDropIdentity(t *testing.T) {
	ins := testInstances(t, 8, 30)

	clean := New(Options{Shards: 2, Solve: improveSolver})
	want, werrs, err := clean.SolveAll(context.Background(), ins)
	clean.Close()
	if err != nil {
		t.Fatal(err)
	}

	chaos := New(Options{
		Shards: 2,
		Solve:  improveSolver,
		Inject: faultinject.New(7, faultinject.Rule{Point: faultinject.SigmaDrop, Nth: 2}),
	})
	defer chaos.Close()
	got, gerrs, err := chaos.SolveAll(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if werrs[i] != nil || gerrs[i] != nil {
			t.Fatalf("instance %d errored: clean=%v chaos=%v", i, werrs[i], gerrs[i])
		}
		if got[i].(string) != want[i].(string) {
			t.Fatalf("instance %d diverged under σ-cache drops:\n  got  %s\n  want %s",
				i, got[i], want[i])
		}
	}
	if c := chaos.Counters(); c.SigmaMisses >= 8 {
		t.Fatalf("σ-cache misses %d: injected drops must bypass the cache, not churn it", c.SigmaMisses)
	}
	checkQueueInvariant(t, chaos)
}
