package batch

import (
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/score"
)

// sigCache maps scorer identity to its compiled dense matrix, so the many
// instances of one alphabet that share a σ table compile it exactly once.
// The matrix's derived forms ride along: Transposed and the
// integer-quantized Int matrix are both cached on the Compiled itself
// (sync.Once), so int-mode batch solves quantize one alphabet exactly once
// no matter how many shards race on it.
//
// Identity is the scorer interface value itself (for the common *score.Table
// the pointer), which is precisely the "same σ" relation batch workloads
// express by reusing one table across instances. Scorers of uncomparable
// dynamic type cannot key a map and fall back to per-submit compilation —
// score.Compile still short-circuits when handed an already-compiled matrix.
type sigCache struct {
	mu sync.Mutex
	m  map[score.Scorer]*score.Compiled
	// hits counts submissions served without compiling (map hits and
	// pre-compiled scorers alike); misses counts dense compiles paid —
	// including per-submit compiles of uncomparable scorers. Exposed via
	// Pool.Counters as the σ-cache hit rate.
	hits   atomic.Int64
	misses atomic.Int64
}

func (c *sigCache) init() { c.m = make(map[score.Scorer]*score.Compiled) }

// get returns sc compiled over region IDs up to maxID, caching by scorer
// identity. Compilation happens under the lock on purpose: when thousands
// of same-σ instances are submitted concurrently, exactly one pays the
// O(maxID²) compile and the rest wait for the pointer instead of burning
// cores on duplicate work.
func (c *sigCache) get(sc score.Scorer, maxID int32) score.Scorer {
	if sc == nil {
		return nil
	}
	if cp, ok := sc.(*score.Compiled); ok && cp.MaxID() >= maxID {
		c.hits.Add(1)
		return cp
	}
	if !reflect.TypeOf(sc).Comparable() {
		c.misses.Add(1)
		return score.Compile(sc, maxID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cp, ok := c.m[sc]; ok && cp.MaxID() >= maxID {
		c.hits.Add(1)
		return cp
	}
	c.misses.Add(1)
	cp := score.Compile(sc, maxID)
	c.m[sc] = cp
	return cp
}

// peek reports whether a submission with this scorer would be served from
// cache without paying a fresh compile — the memory-budget gate uses it to
// waive the σ term for alphabets already resident. Never compiles.
func (c *sigCache) peek(sc score.Scorer, maxID int32) bool {
	if sc == nil {
		return true
	}
	if cp, ok := sc.(*score.Compiled); ok && cp.MaxID() >= maxID {
		return true
	}
	if !reflect.TypeOf(sc).Comparable() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.m[sc]
	return ok && cp.MaxID() >= maxID
}
