package batch

// Memory-budget admission: a cost model estimating the peak bytes one
// instance's solve pins, gated at submit so a pool (or the daemon in front
// of it) refuses work it cannot fit instead of dying on OOM. The genome
// presets make the failure mode concrete: genome-small's dense compiled σ
// alone is ~6.5 GB, so a single mis-sized instance can take down a daemon
// serving thousands of small ones.
//
// The model is deliberately simple and inspectable — three structural terms
// any operator can recompute from the instance shape:
//
//   - σ compile bytes: the dense float64 matrix is dim² cells for
//     dim = 2·MaxSymbolID+1, and its transpose (cached on the matrix, built
//     by every improvement solve) doubles it. Int-score mode adds int32
//     copies; the float term dominates and is what we charge.
//   - DP scratch: alignment kernels sweep rolled rows, but the two-phase
//     scoring path materializes O(maxH·maxM) cells for the longest fragment
//     pair, plus per-worker row scratch.
//   - solver state: per-region structures (sites, index slots, version
//     counters, enumeration pieces) and per-match bookkeeping across the
//     live state and its simulation clones.
//
// Constants are calibrated to observed live-heap profiles of the pinned
// 60-region and genome-small workloads — intentionally on the conservative
// side, since the budget guards against death, not fragmentation.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/encoding"
)

// MemEstimate is the per-instance cost-model breakdown, in bytes.
type MemEstimate struct {
	// SigmaBytes is the dense σ compile cost (matrix + cached transpose).
	// Zero when the pool's σ cache already holds this scorer's matrix — the
	// admission question is what ADDITIONAL memory the solve pins.
	SigmaBytes int64 `json:"sigma_bytes"`
	// ScratchBytes is the DP scratch high-water mark.
	ScratchBytes int64 `json:"scratch_bytes"`
	// StateBytes covers solver state: per-region and per-match structures.
	StateBytes int64 `json:"state_bytes"`
}

// Total is the admission-gated sum.
func (e MemEstimate) Total() int64 { return e.SigmaBytes + e.ScratchBytes + e.StateBytes }

func (e MemEstimate) String() string {
	return fmt.Sprintf("%s (σ %s + scratch %s + state %s)",
		encoding.FormatByteSize(e.Total()), encoding.FormatByteSize(e.SigmaBytes),
		encoding.FormatByteSize(e.ScratchBytes), encoding.FormatByteSize(e.StateBytes))
}

// Per-unit constants of the cost model (see the package comment above).
const (
	sigmaCellBytes   = 2 * 8 // float64 matrix cell + its cached transpose's
	scratchCellBytes = 8     // one two-phase DP cell
	regionBytes      = 192   // sites, fragment index slots, enum pieces, versions
	matchBytes       = 96    // live match + memo + clone share
)

// EstimateMem runs the admission cost model on one instance.
func EstimateMem(in *core.Instance) MemEstimate {
	return estimateMem(in, in.MaxSymbolID())
}

// estimateMem is EstimateMem with the MaxSymbolID scan hoisted, for callers
// that already need the ID (the submit gate reuses it for the σ-cache peek).
func estimateMem(in *core.Instance, maxID int32) MemEstimate {
	dim := 2*int64(maxID) + 1
	var maxH, maxM int64
	for i := range in.H {
		if l := int64(len(in.H[i].Regions)); l > maxH {
			maxH = l
		}
	}
	for i := range in.M {
		if l := int64(len(in.M[i].Regions)); l > maxM {
			maxM = l
		}
	}
	return MemEstimate{
		SigmaBytes:   sigmaCellBytes * dim * dim,
		ScratchBytes: scratchCellBytes * (maxH + 2) * (maxM + 2),
		StateBytes:   regionBytes*int64(in.TotalRegions()) + matchBytes*int64(in.MaxMatches()),
	}
}

// OverBudgetError is returned by Submit/TrySubmit when the cost model puts
// an instance over the pool's MemBudget. It carries the full estimate so
// frontends can answer a structured reject (csrserve's 413 body) and
// operators can see which term blew the budget.
type OverBudgetError struct {
	Estimate MemEstimate
	Budget   int64
}

func (e *OverBudgetError) Error() string {
	return fmt.Sprintf("batch: instance needs ~%s, over the %s memory budget",
		e.Estimate, encoding.FormatByteSize(e.Budget))
}

// admitMem applies the memory budget to one submission; nil error admits.
// Instances whose σ is already resident (pre-compiled, or in the pool's
// identity cache) are charged only their scratch and state.
func (p *Pool) admitMem(in *core.Instance) error {
	if p.opts.MemBudget <= 0 {
		return nil
	}
	maxID := in.MaxSymbolID()
	est := estimateMem(in, maxID)
	if p.sigs.peek(in.Sigma, maxID) {
		est.SigmaBytes = 0
	}
	if est.Total() > p.opts.MemBudget {
		p.overBudget.Add(1)
		return &OverBudgetError{Estimate: est, Budget: p.opts.MemBudget}
	}
	return nil
}
