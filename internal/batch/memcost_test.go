package batch

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/score"
)

func TestEstimateMemShape(t *testing.T) {
	in := testInstances(t, 1, 30)[0]
	est := EstimateMem(in)
	if est.SigmaBytes <= 0 || est.ScratchBytes <= 0 || est.StateBytes <= 0 {
		t.Fatalf("estimate has non-positive terms: %+v", est)
	}
	if est.Total() != est.SigmaBytes+est.ScratchBytes+est.StateBytes {
		t.Fatalf("Total() != sum of terms: %+v", est)
	}
	dim := 2*int64(in.MaxSymbolID()) + 1
	if est.SigmaBytes != sigmaCellBytes*dim*dim {
		t.Fatalf("SigmaBytes = %d, want %d·dim² = %d", est.SigmaBytes, int64(sigmaCellBytes), sigmaCellBytes*dim*dim)
	}

	// The model must be monotone in instance size: more regions, more bytes.
	big := testInstances(t, 1, 120)[0]
	if eb := EstimateMem(big); eb.Total() <= est.Total() {
		t.Fatalf("4× regions estimated no bigger: %v vs %v", eb.Total(), est.Total())
	}

	// The rendered form names every term, for operators reading a 413.
	s := est.String()
	for _, part := range []string{"σ", "scratch", "state"} {
		if !strings.Contains(s, part) {
			t.Fatalf("estimate string %q missing %q", s, part)
		}
	}
}

func TestMemBudgetGate(t *testing.T) {
	ins := testInstances(t, 2, 30)
	need := EstimateMem(ins[0]).Total()

	// A budget below the estimate refuses both submission paths with the
	// typed error, before any queue interaction.
	p := New(Options{Shards: 1, Solve: improveSolver, MemBudget: need / 2})
	defer p.Close()
	var ob *OverBudgetError
	if _, err := p.Submit(context.Background(), ins[0]); !errors.As(err, &ob) {
		t.Fatalf("Submit err = %v, want *OverBudgetError", err)
	}
	if ob.Budget != need/2 || ob.Estimate.Total() != need {
		t.Fatalf("error carries wrong numbers: %+v", ob)
	}
	if _, err := p.TrySubmit(context.Background(), ins[1]); !errors.As(err, &ob) {
		t.Fatalf("TrySubmit err = %v, want *OverBudgetError", err)
	}
	if got := p.Counters().OverBudget; got != 2 {
		t.Fatalf("Counters().OverBudget = %d, want 2", got)
	}

	// A generous budget admits and solves normally.
	ok := New(Options{Shards: 1, Solve: improveSolver, MemBudget: 4 * need})
	defer ok.Close()
	tk, err := ok.Submit(context.Background(), ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := ok.Counters().OverBudget; got != 0 {
		t.Fatalf("admitted pool counted %d over-budget", got)
	}
}

func TestMemBudgetZeroDisables(t *testing.T) {
	in := testInstances(t, 1, 30)[0]
	p := New(Options{Shards: 1, Solve: improveSolver}) // MemBudget unset
	defer p.Close()
	tk, err := p.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestMemBudgetSigmaResidencyWaiver pins the cache-aware half of the model:
// an instance whose σ the pool already holds is charged only scratch+state,
// so a budget too small for a fresh compile still admits the warm alphabet.
func TestMemBudgetSigmaResidencyWaiver(t *testing.T) {
	ins := testInstances(t, 2, 30)
	est := EstimateMem(ins[0])
	budget := est.ScratchBytes + est.StateBytes + est.SigmaBytes/2 // fits iff σ waived

	p := New(Options{Shards: 1, Solve: improveSolver, MemBudget: budget})
	defer p.Close()

	// Cold: the σ compile is charged and the instance is refused.
	var ob *OverBudgetError
	if _, err := p.Submit(context.Background(), ins[0]); !errors.As(err, &ob) {
		t.Fatalf("cold submit err = %v, want *OverBudgetError", err)
	}

	// Same instance with its σ pre-compiled: resident, waived, admitted.
	warm := *ins[0]
	warm.Sigma = score.Compile(ins[0].Sigma, ins[0].MaxSymbolID())
	tk, err := p.Submit(context.Background(), &warm)
	if err != nil {
		t.Fatalf("pre-compiled σ refused: %v", err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}

	// And once the pool's identity cache holds the compiled matrix (seeded by
	// a solve under a no-budget pool sharing the same Table pointer), the
	// original Table-scored instance is admitted too.
	seeded := New(Options{Shards: 1, Solve: improveSolver, MemBudget: budget})
	defer seeded.Close()
	seeded.sigs.get(ins[0].Sigma, ins[0].MaxSymbolID())
	if _, err := seeded.Submit(context.Background(), ins[0]); err != nil {
		t.Fatalf("σ-resident submit refused: %v", err)
	}
}

func TestEstimateMemGenomePreset(t *testing.T) {
	// The motivating case from the cost-model comment: a genome-scale σ
	// (alphabet width grows with the region count) is gigabytes on its own,
	// so any sane daemon budget must refuse it while the same budget passes
	// the small instances by orders of magnitude.
	small := testInstances(t, 1, 30)[0]
	cfg := gen.DefaultConfig(1)
	cfg.Regions = 5000
	big := gen.Generate(cfg).Instance
	if EstimateMem(big).SigmaBytes < 100*EstimateMem(small).Total() {
		t.Fatalf("genome-scale σ (%v) not dominating small instance (%v)",
			EstimateMem(big).SigmaBytes, EstimateMem(small).Total())
	}
}
