package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/improve"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("batch: pool is closed")

// Runtime hands a Solver the pool resources shared across instances.
type Runtime struct {
	// Eval is the shared candidate-evaluation pool, nil when the pool was
	// built with EvalWorkers == 0. Solvers pass it to improve.Options.Eval.
	Eval *improve.EvalPool
}

// Solver solves one instance. The instance's Sigma has already been swapped
// for the pool's cached compiled matrix; ctx is the per-instance context
// and is already non-nil and live when the solver runs.
type Solver func(ctx context.Context, in *core.Instance, rt Runtime) (any, error)

// Options configures a Pool.
type Options struct {
	// Shards is the number of concurrent instance solvers; < 1 means
	// GOMAXPROCS.
	Shards int
	// Queue bounds the submission queue; Submit blocks when it is full.
	// < 1 means 2×Shards.
	Queue int
	// EvalWorkers sizes the shared improve.EvalPool; 0 disables it (each
	// solve evaluates candidates on its own shard goroutine, which is the
	// right default when Shards already saturates the machine).
	EvalWorkers int
	// Solve is the per-instance solver. Required.
	Solve Solver
}

// Ticket is the handle for one submitted instance.
type Ticket struct {
	// Index is the submission sequence number, assigned in Submit order.
	Index int

	in   *core.Instance
	ctx  context.Context
	done chan struct{}
	res  any
	err  error
}

// Wait blocks until the instance is solved (or its context fires while it
// is still queued or running) and returns the solver's result.
func (t *Ticket) Wait() (any, error) {
	<-t.done
	return t.res, t.err
}

// Done is closed when the ticket's result is ready; wrappers use it to
// release per-instance deadline timers without waiting themselves.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Pool is a sharded batch solver. See the package documentation.
type Pool struct {
	opts Options
	jobs chan *Ticket
	eval *improve.EvalPool
	sigs sigCache
	next atomic.Int64
	// seq is a one-slot semaphore serializing enqueue+index-assignment so
	// Ticket.Index always matches queue order under concurrent Submit —
	// unlike a mutex, waiting submitters can still honor their contexts.
	seq chan struct{}

	mu     sync.RWMutex // guards closed against concurrent Submit/Close
	closed bool
	wg     sync.WaitGroup // shard goroutines
}

// New starts a pool. The caller must Close it to release the workers.
func New(opts Options) *Pool {
	if opts.Solve == nil {
		panic("batch: Options.Solve is required")
	}
	if opts.Shards < 1 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.Queue < 1 {
		opts.Queue = 2 * opts.Shards
	}
	p := &Pool{opts: opts, jobs: make(chan *Ticket, opts.Queue), seq: make(chan struct{}, 1)}
	p.sigs.init()
	if opts.EvalWorkers > 0 {
		p.eval = improve.NewEvalPool(opts.EvalWorkers)
	}
	p.wg.Add(opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		go p.shard()
	}
	return p
}

// Shards returns the number of solver goroutines.
func (p *Pool) Shards() int { return p.opts.Shards }

// Submit enqueues one instance and returns its ticket. It blocks while the
// queue is full; ctx (nil means Background) cancels both the wait for queue
// space and, later, the solve itself — per-instance deadlines are set by
// deriving ctx with context.WithDeadline before submitting. The instance is
// shallow-copied with its scorer swapped for the pool's cached compiled
// matrix, so the caller's instance is never mutated.
func (p *Pool) Submit(ctx context.Context, in *core.Instance) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cin := *in
	cin.Sigma = p.sigs.get(in.Sigma, in.MaxSymbolID())
	t := &Ticket{in: &cin, ctx: ctx, done: make(chan struct{})}

	// The read lock spans the send: Close's write lock therefore waits for
	// in-flight Submits, and no Submit can send on a closed channel.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	// Hold the sequencer across the send so no other Submit can enqueue
	// between this ticket's send and its index assignment: Index order is
	// exactly queue order even under concurrent submitters.
	select {
	case p.seq <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-p.seq }()
	select {
	case p.jobs <- t:
		t.Index = int(p.next.Add(1) - 1)
		return t, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SolveAll submits every instance and waits for all of them, returning
// results and errors in input order. A per-instance failure (including
// cancellation) occupies its slot in errs; err is non-nil only when
// submission itself failed, and the returned slices still cover every
// submitted instance.
func (p *Pool) SolveAll(ctx context.Context, ins []*core.Instance) (results []any, errs []error, err error) {
	results = make([]any, len(ins))
	errs = make([]error, len(ins))
	tickets := make([]*Ticket, 0, len(ins))
	for _, in := range ins {
		t, serr := p.Submit(ctx, in)
		if serr != nil {
			err = fmt.Errorf("batch: submit instance %d: %w", len(tickets), serr)
			break
		}
		tickets = append(tickets, t)
	}
	for i, t := range tickets {
		results[i], errs[i] = t.Wait()
	}
	return results, errs, err
}

// Close drains the queue, stops the shards, and releases the shared eval
// pool. Submit fails with ErrClosed afterwards; Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	if !already {
		close(p.jobs)
	}
	p.mu.Unlock()
	if already {
		return
	}
	p.wg.Wait()
	if p.eval != nil {
		p.eval.Close()
	}
}

func (p *Pool) shard() {
	defer p.wg.Done()
	for t := range p.jobs {
		p.run(t)
	}
}

func (p *Pool) run(t *Ticket) {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("batch: solver panic: %v", r)
		}
	}()
	if err := t.ctx.Err(); err != nil {
		t.err = err
		return
	}
	t.res, t.err = p.opts.Solve(t.ctx, t.in, Runtime{Eval: p.eval})
}
