package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/improve"
	"repro/internal/score"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("batch: pool is closed")

// ErrQueueFull is returned by TrySubmit when the submission queue has no
// free slot — the admission-control signal servers turn into a 429.
var ErrQueueFull = errors.New("batch: submission queue is full")

// Runtime hands a Solver the pool resources shared across instances.
type Runtime struct {
	// Eval is the shared candidate-evaluation pool, nil when the pool was
	// built with EvalWorkers == 0. Solvers pass it to improve.Options.Eval.
	Eval *improve.EvalPool
}

// Solver solves one instance. The instance's Sigma has already been swapped
// for the pool's cached compiled matrix; ctx is the per-instance context
// and is already non-nil and live when the solver runs.
type Solver func(ctx context.Context, in *core.Instance, rt Runtime) (any, error)

// Options configures a Pool.
type Options struct {
	// Shards is the number of concurrent instance solvers; < 1 means
	// GOMAXPROCS.
	Shards int
	// Queue bounds the submission queue; Submit blocks when it is full.
	// < 1 means 2×Shards.
	Queue int
	// EvalWorkers sizes the shared improve.EvalPool; 0 disables it (each
	// solve evaluates candidates on its own shard goroutine, which is the
	// right default when Shards already saturates the machine).
	EvalWorkers int
	// Solve is the per-instance solver. Required.
	Solve Solver
	// Inject arms the fault-injection points inside the pool (shard
	// panics, slow shards, queue-return stalls, deadline overruns, σ-cache
	// drops). Nil — the default — injects nothing; see internal/faultinject.
	Inject *faultinject.Injector
	// MemBudget, when > 0, caps the estimated memory of any single admitted
	// instance: Submit and TrySubmit run the EstimateMem cost model and
	// refuse over-budget instances with an *OverBudgetError before taking a
	// queue slot. Instances whose σ is already resident (pre-compiled or in
	// the pool's cache) are charged only scratch + state. 0 disables the
	// gate.
	MemBudget int64
}

// Ticket is the handle for one submitted instance.
type Ticket struct {
	// Index is the submission sequence number, assigned in Submit order.
	Index int

	in   *core.Instance
	ctx  context.Context
	done chan struct{}
	res  any
	err  error
}

// Wait blocks until the instance is solved (or its context fires while it
// is still queued or running) and returns the solver's result.
func (t *Ticket) Wait() (any, error) {
	<-t.done
	return t.res, t.err
}

// Done is closed when the ticket's result is ready; wrappers use it to
// release per-instance deadline timers without waiting themselves.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Counters is a point-in-time snapshot of a Pool's observable state, the
// raw material for admission control and a /metrics surface. All cumulative
// fields count since New.
type Counters struct {
	// QueueDepth is the number of submitted instances waiting for a shard
	// right now; QueueCap is the configured bound. Depth == Cap means the
	// next TrySubmit is rejected.
	QueueDepth int
	QueueCap   int
	// InFlight is the number of instances currently being solved.
	InFlight int
	// Submitted counts accepted submissions (Submit and TrySubmit alike);
	// Rejected counts TrySubmit refusals due to a full queue; OverBudget
	// counts submissions refused by the memory-budget gate.
	Submitted  int64
	Rejected   int64
	OverBudget int64
	// Completed counts solves that returned a result; Failed counts solves
	// that returned an error — cancellations, deadline hits, and solver
	// panics included. Submitted == Completed + Failed + QueueDepth +
	// InFlight at any quiescent point.
	Completed int64
	Failed    int64
	// SigmaHits and SigmaMisses count the per-alphabet compiled-σ cache:
	// a hit is a submission whose scorer was already compiled (or arrived
	// pre-compiled), a miss paid the dense compile.
	SigmaHits   int64
	SigmaMisses int64
	// ShardBusy is the cumulative wall time each shard spent solving,
	// indexed by shard; busy/elapsed per shard is the pool's utilization.
	ShardBusy []time.Duration
}

// Pool is a sharded batch solver. See the package documentation.
type Pool struct {
	opts Options
	jobs chan *Ticket
	// space is the queue-bound token semaphore: it starts with Queue
	// tokens, Submit/TrySubmit take one before sending on jobs, and a shard
	// returns it on dequeue. The invariant tokens_free + len(jobs) == Queue
	// makes the jobs send below always non-blocking, so the seq critical
	// section is O(ns) and TrySubmit can reject without ever blocking
	// behind a stalled Submit.
	space chan struct{}
	eval  *improve.EvalPool
	sigs  sigCache
	inj   *faultinject.Injector
	next  atomic.Int64
	// seq is a one-slot semaphore serializing enqueue+index-assignment so
	// Ticket.Index always matches queue order under concurrent Submit —
	// unlike a mutex, waiting submitters can still honor their contexts.
	seq chan struct{}

	submitted  atomic.Int64
	rejected   atomic.Int64
	overBudget atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	inflight   atomic.Int64
	busy       []atomic.Int64 // per-shard cumulative solve nanoseconds

	mu     sync.RWMutex // guards closed against concurrent Submit/Close
	closed bool
	wg     sync.WaitGroup // shard goroutines
}

// New starts a pool. The caller must Close it to release the workers.
func New(opts Options) *Pool {
	if opts.Solve == nil {
		panic("batch: Options.Solve is required")
	}
	if opts.Shards < 1 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.Queue < 1 {
		opts.Queue = 2 * opts.Shards
	}
	p := &Pool{
		opts:  opts,
		jobs:  make(chan *Ticket, opts.Queue),
		space: make(chan struct{}, opts.Queue),
		seq:   make(chan struct{}, 1),
		busy:  make([]atomic.Int64, opts.Shards),
		inj:   opts.Inject,
	}
	for i := 0; i < opts.Queue; i++ {
		p.space <- struct{}{}
	}
	p.sigs.init()
	if opts.EvalWorkers > 0 {
		p.eval = improve.NewEvalPool(opts.EvalWorkers)
	}
	p.wg.Add(opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		go p.shard(i)
	}
	return p
}

// Shards returns the number of solver goroutines.
func (p *Pool) Shards() int { return p.opts.Shards }

// Counters returns a snapshot of the pool's queue, solve, and σ-cache
// counters. Safe for concurrent use; the snapshot is internally consistent
// only at quiescence (fields are read individually, not atomically as a
// set), which is all a metrics surface needs.
func (p *Pool) Counters() Counters {
	c := Counters{
		QueueDepth:  len(p.jobs),
		QueueCap:    cap(p.jobs),
		InFlight:    int(p.inflight.Load()),
		Submitted:   p.submitted.Load(),
		Rejected:    p.rejected.Load(),
		OverBudget:  p.overBudget.Load(),
		Completed:   p.completed.Load(),
		Failed:      p.failed.Load(),
		SigmaHits:   p.sigs.hits.Load(),
		SigmaMisses: p.sigs.misses.Load(),
		ShardBusy:   make([]time.Duration, len(p.busy)),
	}
	for i := range p.busy {
		c.ShardBusy[i] = time.Duration(p.busy[i].Load())
	}
	return c
}

// Submit enqueues one instance and returns its ticket. It blocks while the
// queue is full; ctx (nil means Background) cancels both the wait for queue
// space and, later, the solve itself — per-instance deadlines are set by
// deriving ctx with context.WithDeadline before submitting. The instance is
// shallow-copied with its scorer swapped for the pool's cached compiled
// matrix, so the caller's instance is never mutated.
func (p *Pool) Submit(ctx context.Context, in *core.Instance) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The read lock spans the enqueue: Close's write lock therefore waits
	// for in-flight Submits, and no Submit can send on a closed channel.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	// The memory-budget gate runs before any queue wait: an instance the
	// pool could never fit should fail immediately, not after blocking
	// behind admissible work.
	if err := p.admitMem(in); err != nil {
		return nil, err
	}
	// Take a queue slot first — the only wait that can last — without
	// holding seq, so non-blocking TrySubmit callers are never stuck
	// behind a backpressured Submit.
	select {
	case <-p.space:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return p.enqueue(ctx, in)
}

// TrySubmit is the non-blocking form of Submit: when the queue has no free
// slot it fails immediately with ErrQueueFull instead of waiting, counting
// the rejection. This is the admission-control primitive — a server maps
// ErrQueueFull to 429 + Retry-After rather than absorbing unbounded load.
func (p *Pool) TrySubmit(ctx context.Context, in *core.Instance) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	if err := p.admitMem(in); err != nil {
		return nil, err
	}
	select {
	case <-p.space:
	default:
		p.rejected.Add(1)
		return nil, ErrQueueFull
	}
	return p.enqueue(ctx, in)
}

// enqueue finishes a submission that already holds a queue-slot token (and
// the closed read lock): swap in the cached σ, then send + assign the index
// under seq so Ticket.Index order is exactly queue order.
func (p *Pool) enqueue(ctx context.Context, in *core.Instance) (*Ticket, error) {
	cin := *in
	if p.inj.Fires(faultinject.SigmaDrop) {
		// Injected σ-cache drop: compile fresh, bypassing the identity
		// cache. The corruption guard — results must not depend on which
		// matrix identity a solve happened to receive.
		cin.Sigma = score.Compile(in.Sigma, in.MaxSymbolID())
	} else {
		cin.Sigma = p.sigs.get(in.Sigma, in.MaxSymbolID())
	}
	t := &Ticket{in: &cin, ctx: ctx, done: make(chan struct{})}
	select {
	case p.seq <- struct{}{}:
	case <-ctx.Done():
		p.space <- struct{}{} // return the unused slot
		return nil, ctx.Err()
	}
	// Holding a space token guarantees len(jobs) < cap, so this send never
	// blocks; holding seq across send + assignment keeps index order equal
	// to queue order even under concurrent submitters.
	p.jobs <- t
	t.Index = int(p.next.Add(1) - 1)
	<-p.seq
	p.submitted.Add(1)
	return t, nil
}

// SolveAll submits every instance and waits for all of them, returning
// results and errors in input order. A per-instance failure (including
// cancellation) occupies its slot in errs; err is non-nil only when
// submission itself failed, and the returned slices still cover every
// submitted instance.
func (p *Pool) SolveAll(ctx context.Context, ins []*core.Instance) (results []any, errs []error, err error) {
	results = make([]any, len(ins))
	errs = make([]error, len(ins))
	tickets := make([]*Ticket, 0, len(ins))
	for _, in := range ins {
		t, serr := p.Submit(ctx, in)
		if serr != nil {
			err = fmt.Errorf("batch: submit instance %d: %w", len(tickets), serr)
			break
		}
		tickets = append(tickets, t)
	}
	for i, t := range tickets {
		results[i], errs[i] = t.Wait()
	}
	return results, errs, err
}

// Close drains the queue, stops the shards, and releases the shared eval
// pool. Submit fails with ErrClosed afterwards; Close is idempotent. This
// is the graceful-drain primitive: queued and in-flight instances finish
// (Close blocks for them), only new submissions are refused.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	if !already {
		close(p.jobs)
	}
	p.mu.Unlock()
	if already {
		return
	}
	p.wg.Wait()
	if p.eval != nil {
		p.eval.Close()
	}
}

func (p *Pool) shard(id int) {
	defer p.wg.Done()
	for t := range p.jobs {
		// Injected queue stall: delay the slot return, so the bounded
		// queue looks full longer than the work it actually holds.
		p.inj.Stall(t.ctx, faultinject.QueueStall)
		// Return the queue slot on dequeue, not completion: the bound
		// covers waiting work, matching the pre-token semantics where the
		// jobs channel itself was the bound.
		p.space <- struct{}{}
		p.run(id, t)
	}
}

func (p *Pool) run(id int, t *Ticket) {
	p.inflight.Add(1)
	start := time.Now()
	defer func() {
		p.busy[id].Add(int64(time.Since(start)))
		p.inflight.Add(-1)
		if t.err != nil {
			p.failed.Add(1)
		} else {
			p.completed.Add(1)
		}
		close(t.done)
	}()
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("batch: solver panic: %v", r)
		}
	}()
	if err := t.ctx.Err(); err != nil {
		t.err = err
		return
	}
	// Injected slow shard: stall before solving, waking early if the
	// instance's deadline fires (the solve then starts with a dead context
	// and resolves as a deadline failure — or a partial result).
	p.inj.Stall(t.ctx, faultinject.ShardSlow)
	if p.inj.Fires(faultinject.SolvePanic) {
		panic("faultinject: injected solver panic")
	}
	t.res, t.err = p.opts.Solve(t.ctx, t.in, Runtime{Eval: p.eval})
	// Injected deadline overrun: a solver that ignores cancellation and
	// keeps the shard busy past its deadline — deliberately not woken by
	// ctx.Done.
	p.inj.StallHard(faultinject.DeadlineOverrun)
}
