// Package batch solves many CSR instances concurrently over one persistent
// worker pool — the serving building block for high-throughput workloads
// where thousands of instances arrive as a stream rather than one at a
// time.
//
// A Pool owns three shared resources:
//
//   - Shards: a fixed set of solver goroutines that pull submitted
//     instances from a bounded queue. Parallelism comes from solving
//     distinct instances on distinct shards, so individual solves default
//     to single-threaded evaluation.
//   - One improve.EvalPool (optional): workers shared by every in-flight
//     improvement solve for both of the driver's shardable job kinds —
//     candidate gain simulations and enumeration piece refreshes
//     (internal/improve/enum) — instead of goroutines spawned per
//     instance. Because completion is tracked per submission batch, the
//     enumeration shards of one solve overlap with the simulations of
//     another on the same workers.
//   - A per-alphabet cache of compiled σ matrices keyed by scorer
//     identity: thousands of instances sharing one score table compile σ
//     into the dense matrix once, and the lazily cached transpose
//     (score.Compiled.Transposed) is likewise shared. The JSONL reader
//     (encoding.ReadJSONL) content-deduplicates σ tables, so streamed
//     pipelines hit this cache across process boundaries too.
//
// Submission is bounded and cancelable: Submit blocks while the queue is
// full (respecting the submission context) and each instance carries its
// own context, checked before the solve starts and — sub-round — between
// candidate simulations, between enumeration shards, and inside TPA
// batches, so a per-instance deadline interrupts even a single long
// improvement round. Results are delivered through Tickets in submission
// order, so output ordering — and, because each solve is deterministic in
// isolation, every per-instance result — is byte-identical regardless of
// the shard count or scheduling (see TestShardCountInvariance).
//
// The public surface is fragalign.SolveBatch / fragalign.NewBatchPool and
// the csrbatch command; this package carries the machinery.
package batch
