package batch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/improve"
	"repro/internal/score"
)

// testInstances generates n distinct workloads.
func testInstances(t testing.TB, n, regions int) []*core.Instance {
	t.Helper()
	ins := make([]*core.Instance, n)
	for i := range ins {
		cfg := gen.DefaultConfig(int64(100 + i))
		cfg.Regions = regions
		ins[i] = gen.Generate(cfg).Instance
		ins[i].Name = fmt.Sprintf("w%d", i)
	}
	return ins
}

// improveSolver runs CSR_Improve and renders the solution as a canonical
// string, so "byte-identical results" is literal string equality.
func improveSolver(ctx context.Context, in *core.Instance, rt Runtime) (any, error) {
	sol, stats, err := improve.Improve(in, improve.Options{
		Eps:                0.05,
		SeedWithFourApprox: true,
		Ctx:                ctx,
		Eval:               rt.Eval,
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s score=%v rounds=%d matches=[", in.Name, sol.Score(), stats.Rounds)
	for _, mt := range sol.Matches {
		fmt.Fprintf(&b, "%v~%v/%v:%v ", mt.HSite, mt.MSite, mt.Rev, mt.Score)
	}
	b.WriteString("]")
	return b.String(), nil
}

func TestPoolSolvesInOrder(t *testing.T) {
	ins := testInstances(t, 6, 30)
	p := New(Options{Shards: 3, Solve: improveSolver})
	defer p.Close()
	results, errs, err := p.SolveAll(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if errs[i] != nil {
			t.Fatalf("instance %d: %v", i, errs[i])
		}
		got := results[i].(string)
		if !strings.HasPrefix(got, ins[i].Name+" ") {
			t.Fatalf("result %d out of order: %q", i, got)
		}
	}
}

// TestShardCountInvariance is the batch determinism contract: the same
// instance set solved with 1, 4, and 8 shards produces byte-identical
// per-instance results.
func TestShardCountInvariance(t *testing.T) {
	ins := testInstances(t, 8, 40)
	var reference []string
	for _, shards := range []int{1, 4, 8} {
		p := New(Options{Shards: shards, Solve: improveSolver})
		results, errs, err := p.SolveAll(context.Background(), ins)
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		rendered := make([]string, len(ins))
		for i := range ins {
			if errs[i] != nil {
				t.Fatalf("shards=%d instance %d: %v", shards, i, errs[i])
			}
			rendered[i] = results[i].(string)
		}
		if reference == nil {
			reference = rendered
			continue
		}
		for i := range rendered {
			if rendered[i] != reference[i] {
				t.Fatalf("shards=%d instance %d diverged:\n  got  %s\n  want %s",
					shards, i, rendered[i], reference[i])
			}
		}
	}
}

// TestPoolConcurrentSubmit stress-tests one pool under concurrent
// submitters (run under -race in CI): every resubmission of the same
// instance must produce the identical result.
func TestPoolConcurrentSubmit(t *testing.T) {
	ins := testInstances(t, 4, 30)
	p := New(Options{Shards: 4, Queue: 2, EvalWorkers: 2, Solve: improveSolver})
	defer p.Close()

	want := make([]string, len(ins))
	for i, in := range ins {
		tk, err := p.Submit(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		v, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v.(string)
	}

	const submitters = 8
	var wg sync.WaitGroup
	errc := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, in := range ins {
				tk, err := p.Submit(context.Background(), in)
				if err != nil {
					errc <- fmt.Errorf("submitter %d: %w", g, err)
					return
				}
				v, err := tk.Wait()
				if err != nil {
					errc <- fmt.Errorf("submitter %d instance %d: %w", g, i, err)
					return
				}
				if v.(string) != want[i] {
					errc <- fmt.Errorf("submitter %d instance %d: nondeterministic result", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestSigmaCacheSharedAcrossInstances(t *testing.T) {
	var c sigCache
	c.init()
	tb := score.NewTable()
	tb.Set(1, 1, 2.5)
	a := c.get(tb, 4)
	b := c.get(tb, 4)
	if a != b {
		t.Fatal("same scorer compiled twice")
	}
	cp, ok := a.(*score.Compiled)
	if !ok || cp.MaxID() < 4 {
		t.Fatalf("cache returned %T covering %v", a, cp.MaxID())
	}
	// A wider alphabet forces a recompile; the cache must upgrade.
	w := c.get(tb, 9).(*score.Compiled)
	if w == cp || w.MaxID() < 9 {
		t.Fatalf("cache did not widen: %v", w.MaxID())
	}
	// Already-compiled scorers pass through untouched.
	if got := c.get(w, 9); got != w {
		t.Fatal("compiled scorer was re-wrapped")
	}
	other := score.NewTable()
	other.Set(1, 2, 1.0)
	if c.get(other, 4) == a {
		t.Fatal("distinct scorers shared one matrix")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	ins := testInstances(t, 1, 20)
	p := New(Options{Shards: 1, Solve: improveSolver})
	p.Close()
	p.Close() // idempotent
	if _, err := p.Submit(context.Background(), ins[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
}

func TestPerInstanceContext(t *testing.T) {
	ins := testInstances(t, 1, 20)
	p := New(Options{Shards: 1, Solve: improveSolver})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk, err := p.Submit(ctx, ins[0])
	if err != nil {
		// Allowed: the canceled context can also fail the submit itself.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit: %v", err)
		}
		return
	}
	if _, err := tk.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after cancel: %v", err)
	}
}

// TestPerInstanceDeadlineSubRound pins the fine-grained cancellation path:
// a deadline that fires mid-solve on a large instance must surface as that
// instance's error well before the solve would have finished, while other
// instances sharing the pool (and its eval workers) complete normally with
// results identical to an undisturbed pool.
func TestPerInstanceDeadlineSubRound(t *testing.T) {
	big := testInstances(t, 1, 90)[0]
	small := testInstances(t, 3, 30)
	run := func(cancelBig bool) ([]any, []error) {
		p := New(Options{Shards: 2, EvalWorkers: 2, Solve: improveSolver})
		defer p.Close()
		ctx := context.Background()
		bigCtx := ctx
		var cancel context.CancelFunc
		if cancelBig {
			bigCtx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
			defer cancel()
		}
		var tickets []*Ticket
		tb, err := p.Submit(bigCtx, big)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tb)
		for _, in := range small {
			tk, err := p.Submit(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		results := make([]any, len(tickets))
		errs := make([]error, len(tickets))
		for i, tk := range tickets {
			results[i], errs[i] = tk.Wait()
		}
		return results, errs
	}
	ref, refErrs := run(false)
	got, errs := run(true)
	for i, err := range refErrs {
		if err != nil {
			t.Fatalf("reference instance %d: %v", i, err)
		}
	}
	if !errors.Is(errs[0], context.DeadlineExceeded) {
		t.Fatalf("big instance error = %v, want deadline exceeded", errs[0])
	}
	for i := 1; i < len(got); i++ {
		if errs[i] != nil {
			t.Fatalf("small instance %d failed alongside the cancellation: %v", i, errs[i])
		}
		if got[i] != ref[i] {
			t.Fatalf("small instance %d diverged after a concurrent cancellation:\n%v\nwant\n%v",
				i, got[i], ref[i])
		}
	}
}

func TestBoundedQueueRespectsContext(t *testing.T) {
	ins := testInstances(t, 3, 20)
	release := make(chan struct{})
	p := New(Options{Shards: 1, Queue: 1, Solve: func(ctx context.Context, in *core.Instance, rt Runtime) (any, error) {
		<-release
		return "done", nil
	}})
	defer p.Close()
	defer close(release)

	// Occupy the shard, then fill the queue.
	if _, err := p.Submit(context.Background(), ins[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, err := p.Submit(ctx, ins[1])
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			return // queue full and Submit honored the context
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("queue never filled")
}

func TestSolverPanicIsAnError(t *testing.T) {
	ins := testInstances(t, 1, 20)
	p := New(Options{Shards: 1, Solve: func(ctx context.Context, in *core.Instance, rt Runtime) (any, error) {
		panic("boom")
	}})
	defer p.Close()
	tk, err := p.Submit(context.Background(), ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not surfaced: %v", err)
	}
}

// TestTrySubmitQueueFull pins the admission-control primitive: with the
// lone shard occupied and the one-slot queue full, TrySubmit must fail
// immediately with ErrQueueFull (never block), count the rejection, and
// succeed again once the queue drains.
func TestTrySubmitQueueFull(t *testing.T) {
	ins := testInstances(t, 4, 20)
	release := make(chan struct{})
	p := New(Options{Shards: 1, Queue: 1, Solve: func(ctx context.Context, in *core.Instance, rt Runtime) (any, error) {
		<-release
		return in.Name, nil
	}})
	defer p.Close()

	// Occupy the shard, then the queue's single slot. The first submit may
	// be dequeued at any moment, so poll until the queue slot is provably
	// held.
	if _, err := p.Submit(context.Background(), ins[0]); err != nil {
		t.Fatal(err)
	}
	var queued *Ticket
	deadline := time.Now().Add(5 * time.Second)
	for queued == nil {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		tk, err := p.TrySubmit(context.Background(), ins[1])
		if errors.Is(err, ErrQueueFull) {
			continue // the first instance was still queued; retry
		}
		if err != nil {
			t.Fatal(err)
		}
		queued = tk
	}
	// Shard busy on ins[0], queue holds ins[1]: rejection is now certain.
	done := make(chan error, 1)
	go func() {
		_, err := p.TrySubmit(context.Background(), ins[2])
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("TrySubmit on a full queue: %v, want ErrQueueFull", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TrySubmit blocked on a full queue")
	}
	c := p.Counters()
	if c.Rejected < 1 {
		t.Fatalf("Rejected = %d, want >= 1", c.Rejected)
	}
	if c.QueueDepth != 1 || c.QueueCap != 1 {
		t.Fatalf("queue depth/cap = %d/%d, want 1/1", c.QueueDepth, c.QueueCap)
	}
	if c.InFlight != 1 {
		t.Fatalf("InFlight = %d, want 1", c.InFlight)
	}

	close(release)
	if _, err := queued.Wait(); err != nil {
		t.Fatal(err)
	}
	// Drained: TrySubmit admits again.
	tk, err := p.TrySubmit(context.Background(), ins[3])
	if err != nil {
		t.Fatalf("TrySubmit after drain: %v", err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTrySubmitAfterClose(t *testing.T) {
	ins := testInstances(t, 1, 20)
	p := New(Options{Shards: 1, Solve: improveSolver})
	p.Close()
	if _, err := p.TrySubmit(context.Background(), ins[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close: %v", err)
	}
}

// TestCountersLifecycle checks the cumulative counters across a small
// batch: submissions reconcile with completions and failures, shards accrue
// busy time, and the σ cache reports one miss plus hits for the instances
// sharing the table.
func TestCountersLifecycle(t *testing.T) {
	const n = 6
	ins := testInstances(t, n, 20)
	// One shared σ table across all instances so the cache traffic is
	// deterministic: 1 compile, n-1 hits.
	shared := score.NewTable()
	shared.Set(1, 1, 2.0)
	for _, in := range ins {
		in.Sigma = shared
	}
	p := New(Options{Shards: 2, Solve: func(ctx context.Context, in *core.Instance, rt Runtime) (any, error) {
		time.Sleep(time.Millisecond)
		if in.Name == "w0" {
			return nil, fmt.Errorf("synthetic failure")
		}
		return in.Name, nil
	}})
	defer p.Close()
	_, errs, err := p.SolveAll(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] == nil {
		t.Fatal("synthetic failure not reported")
	}
	c := p.Counters()
	if c.Submitted != n {
		t.Fatalf("Submitted = %d, want %d", c.Submitted, n)
	}
	if c.Completed != n-1 || c.Failed != 1 {
		t.Fatalf("Completed/Failed = %d/%d, want %d/1", c.Completed, c.Failed, n-1)
	}
	if c.QueueDepth != 0 || c.InFlight != 0 {
		t.Fatalf("quiescent pool reports depth=%d inflight=%d", c.QueueDepth, c.InFlight)
	}
	if c.SigmaMisses != 1 || c.SigmaHits != n-1 {
		t.Fatalf("σ cache hits/misses = %d/%d, want %d/1", c.SigmaHits, c.SigmaMisses, n-1)
	}
	if len(c.ShardBusy) != 2 {
		t.Fatalf("ShardBusy has %d entries, want 2", len(c.ShardBusy))
	}
	var busy time.Duration
	for _, d := range c.ShardBusy {
		busy += d
	}
	if busy < n*time.Millisecond {
		t.Fatalf("cumulative busy time %v, want >= %v", busy, n*time.Millisecond)
	}
}

// TestTrySubmitIndexOrder checks that TrySubmit participates in the same
// dense queue-ordered index sequence as Submit.
func TestTrySubmitIndexOrder(t *testing.T) {
	ins := testInstances(t, 8, 10)
	p := New(Options{Shards: 1, Queue: 16, Solve: func(ctx context.Context, in *core.Instance, rt Runtime) (any, error) {
		return in.Name, nil
	}})
	defer p.Close()
	var tickets []*Ticket
	for i, in := range ins {
		var tk *Ticket
		var err error
		if i%2 == 0 {
			tk, err = p.Submit(context.Background(), in)
		} else {
			tk, err = p.TrySubmit(context.Background(), in)
		}
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		if tk.Index != i {
			t.Fatalf("ticket %d has index %d", i, tk.Index)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIndexMatchesQueueOrder pins the Ticket.Index contract under
// concurrent submitters: indices are dense and agree with the order a
// lone shard actually dequeues the work.
func TestIndexMatchesQueueOrder(t *testing.T) {
	const n = 64
	var mu sync.Mutex
	var processed []string
	p := New(Options{Shards: 1, Queue: 2, Solve: func(ctx context.Context, in *core.Instance, rt Runtime) (any, error) {
		mu.Lock()
		processed = append(processed, in.Name)
		mu.Unlock()
		return in.Name, nil
	}})
	defer p.Close()

	ins := testInstances(t, n, 10)
	type tagged struct {
		idx  int
		name string
	}
	out := make(chan tagged, n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				tk, err := p.Submit(context.Background(), ins[i])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tk.Wait(); err != nil {
					t.Error(err)
					return
				}
				out <- tagged{idx: tk.Index, name: ins[i].Name}
			}
		}(g)
	}
	wg.Wait()
	close(out)

	byIndex := make([]string, n)
	seen := 0
	for tg := range out {
		if tg.idx < 0 || tg.idx >= n || byIndex[tg.idx] != "" {
			t.Fatalf("index %d out of range or duplicated", tg.idx)
		}
		byIndex[tg.idx] = tg.name
		seen++
	}
	if seen != n {
		t.Fatalf("got %d tickets, want %d", seen, n)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range byIndex {
		if processed[i] != byIndex[i] {
			t.Fatalf("queue position %d processed %q but Index %d belongs to %q",
				i, processed[i], i, byIndex[i])
		}
	}
}
