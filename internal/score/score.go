// Package score implements the alignment score function σ : Σ̃ × Σ̃ → ℝ of
// the CSR problem, with the paper's required laws
//
//	σ(a, b) = σ(aᴿ, bᴿ)            (reversal symmetry)
//	σ(a, ⊥) = σ(⊥, a) = 0          (padding is free)
//
// The primary implementation is a sparse Table keyed by canonicalized symbol
// pairs; an Identity scorer serves the UCSR restriction where σ(a,b) = 0 for
// a ≠ b. A Quantized wrapper implements the Chandra–Halldórsson scaling step
// used to bound the number of local improvements.
//
// # Compiled dense matrices
//
// Any Scorer can be compiled into a Compiled dense matrix (Compile): a flat
// []float64 indexed by oriented symbol index, covering region IDs up to a
// chosen bound. Solvers compile σ once per solve and pass the matrix through
// every alignment kernel, turning each DP cell's score lookup from an
// interface call plus map hash into a single slice load (Row/Index expose
// the raw rows for inner loops). Entries are the exact float64 values the
// base scorer returned at compile time, so compiled and sparse paths score
// bit-identically; out-of-range symbols fall back to the base scorer.
// Table and Identity compile in O(stored entries) rather than O(alphabet²).
// Transpose exchanges species sides, transposing the dense matrix when
// given one.
package score

import (
	"math"
	"sync/atomic"

	"repro/internal/symbol"
)

// Scorer evaluates σ(a, b). Implementations must obey reversal symmetry and
// score 0 against the padding symbol.
type Scorer interface {
	// Score returns σ(a, b).
	Score(a, b symbol.Symbol) float64
}

// pairKey canonicalizes an (a, b) pair under reversal symmetry: (a, b) and
// (aᴿ, bᴿ) share a key. Species sides are NOT interchangeable: σ(a,b) and
// σ(b,a) are distinct entries unless the caller sets both.
type pairKey struct{ a, b symbol.Symbol }

func canonKey(a, b symbol.Symbol) pairKey {
	// Canonical representative: make the first symbol normal-orientation;
	// if the first is a pad, make the second normal-orientation.
	if a.Reversed() || (a.IsPad() && b.Reversed()) {
		a, b = a.Rev(), b.Rev()
	}
	return pairKey{a, b}
}

// Table is a sparse score function: unlisted pairs score 0. The zero value
// is not usable; create with NewTable.
type Table struct {
	m map[pairKey]float64
	// gen counts mutations; compiled caches the last Compile result stamped
	// with the gen it saw, so repeated solves over one table — every batch
	// driver's steady state — reuse one dense matrix (and, through its
	// sub-caches, one quantization and one transpose) instead of
	// re-densifying per pool. Mutating and compiling a table concurrently
	// is as unsynchronized as mutating and scoring one; the cache pointer
	// itself is atomic so concurrent Compile calls stay safe.
	gen      uint64
	compiled atomic.Pointer[tableCompiled]
}

// tableCompiled stamps a cached dense matrix with the table generation it
// was built from.
type tableCompiled struct {
	gen uint64
	c   *Compiled
}

// NewTable returns an empty sparse score table.
func NewTable() *Table { return &Table{m: make(map[pairKey]float64)} }

// Set records σ(a, b) = v (and, by reversal symmetry, σ(aᴿ, bᴿ) = v).
// Setting a score against the padding symbol is ignored: pads always
// score 0.
func (t *Table) Set(a, b symbol.Symbol, v float64) {
	if a.IsPad() || b.IsPad() {
		return
	}
	t.gen++
	t.m[canonKey(a, b)] = v
}

// Score returns σ(a, b); unlisted pairs and pad pairs score 0.
func (t *Table) Score(a, b symbol.Symbol) float64 {
	if a.IsPad() || b.IsPad() {
		return 0
	}
	return t.m[canonKey(a, b)]
}

// Len returns the number of distinct stored pairs (counting (a,b) and
// (aᴿ,bᴿ) once).
func (t *Table) Len() int { return len(t.m) }

// Pairs invokes fn for every stored pair in canonical orientation.
// Iteration order is unspecified.
func (t *Table) Pairs(fn func(a, b symbol.Symbol, v float64)) {
	for k, v := range t.m {
		fn(k.a, k.b, v)
	}
}

// MaxScore returns the largest stored score, or 0 for an empty table.
func (t *Table) MaxScore() float64 {
	best := 0.0
	for _, v := range t.m {
		if v > best {
			best = v
		}
	}
	return best
}

// TotalPositive returns the sum of all positive stored scores — a trivial
// upper bound on any solution score.
func (t *Table) TotalPositive() float64 {
	sum := 0.0
	for _, v := range t.m {
		if v > 0 {
			sum += v
		}
	}
	return sum
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := NewTable()
	for k, v := range t.m {
		c.m[k] = v
	}
	return c
}

// Identity scores σ(a, a) = weight(a) and σ(a, b) = 0 for a ≠ b — the UCSR
// restriction of §3.1. Weights are keyed by region ID, so a and aᴿ share a
// weight, and σ(a, a) = σ(aᴿ, aᴿ) as required. Note σ(a, aᴿ) = 0: matching a
// region against its own reversal scores nothing under Identity.
type Identity struct {
	weights map[int32]float64
	// Default is used for regions with no explicit weight.
	Default float64
}

// NewIdentity returns an identity scorer with the given default weight.
func NewIdentity(def float64) *Identity {
	return &Identity{weights: make(map[int32]float64), Default: def}
}

// SetWeight assigns σ'(a) for the region underlying s (orientation
// ignored).
func (id *Identity) SetWeight(s symbol.Symbol, w float64) {
	id.weights[s.ID()] = w
}

// Weight returns σ'(a) for the region underlying s.
func (id *Identity) Weight(s symbol.Symbol) float64 {
	if w, ok := id.weights[s.ID()]; ok {
		return w
	}
	return id.Default
}

// Score implements Scorer: equal symbols score their region weight,
// everything else scores 0.
func (id *Identity) Score(a, b symbol.Symbol) float64 {
	if a.IsPad() || b.IsPad() || a != b {
		return 0
	}
	return id.Weight(a)
}

// Quantized wraps a Scorer, truncating every score down to an integer
// multiple of Unit. With Unit = X/k² (X a 4-approximate solution score, k a
// bound on the number of matches) this is exactly the Chandra–Halldórsson
// scaling of §4.1: it limits the number of positive-gain improvements to
// 4k² while underestimating the optimum by at most X/k.
type Quantized struct {
	Base Scorer
	Unit float64
}

// Score truncates Base.Score down to a multiple of Unit. A non-positive
// Unit passes scores through unchanged.
func (q Quantized) Score(a, b symbol.Symbol) float64 {
	v := q.Base.Score(a, b)
	if q.Unit <= 0 {
		return v
	}
	return math.Floor(v/q.Unit) * q.Unit
}

// Verify checks the scorer laws on the given symbol universe: reversal
// symmetry for all pairs drawn from syms, and zero against the pad. It
// returns the first violated pair, or ok = true.
func Verify(sc Scorer, syms []symbol.Symbol) (a, b symbol.Symbol, ok bool) {
	for _, x := range syms {
		if sc.Score(x, symbol.Pad) != 0 || sc.Score(symbol.Pad, x) != 0 {
			return x, symbol.Pad, false
		}
		for _, y := range syms {
			if sc.Score(x, y) != sc.Score(x.Rev(), y.Rev()) {
				return x, y, false
			}
		}
	}
	return 0, 0, true
}
