package score

import (
	"math"
	"sync"

	"repro/internal/symbol"
)

// intHeadroomBits bounds the magnitude of a quantized cell: |q| ≤ 2^intHeadroomBits.
// DP accumulation adds at most min(|a|,|b|) cells, so with 31 value bits in an
// int32 the integer kernels are overflow-safe for words up to
// 2^(31−intHeadroomBits) regions; longer alignments fall back to the exact
// float64 path (see Fits).
const intHeadroomBits = 20

// CompiledInt is an integer-quantized dense σ-matrix: every cell of a
// *Compiled rounded to the nearest multiple of a quantization unit and stored
// as that multiple in a flat []int32. Alignment kernels that detect a
// *CompiledInt run their DP entirely in int32 — contiguous 4-byte rows,
// branch-light max loops — and dequantize only the final total.
//
// The quantization unit is chosen at build time (see (*Compiled).Int): the
// declared unit of a Quantized base scorer when one exists, 1 when every cell
// is already integral (the common integer-σ case, which quantizes exactly),
// and otherwise maxAbs/2^20 auto-derived from the matrix's value range. The
// per-cell rounding error is recorded in cellErr, giving the provable bound
//
//	|Dequantize(intScore) − floatScore| ≤ cellErr · min(|a|, |b|)
//
// for any alignment of words a, b (Bound); when cellErr is 0 the two modes
// score identically (Exact).
//
// A CompiledInt is itself a Scorer — Score returns the dequantized cell — so
// it can flow through every kernel and solver interface unchanged; the exact
// float64 matrix it was built from stays reachable via Source.
type CompiledInt struct {
	// src is the exact float64 matrix the quantization was built from. On a
	// transposed matrix it is materialized lazily (see source): the integer
	// kernels never touch it, so eagerly densifying the float64 transpose
	// per alphabet was pure memory traffic — the int32-mode batch
	// regression — and it is only ever needed on the rare fallback paths
	// (out-of-range symbols, alignments too long for int32 headroom).
	src     *Compiled
	srcOnce sync.Once
	unit    float64
	n       int32 // maximum region ID covered
	dim     int32 // 2n+1 oriented symbols
	// stride is the row pitch of flat: dim rounded up to the lane width
	// (LaneWidth), so every row starts lane-aligned and the lane-blocked
	// kernels can read full 8-cell blocks without a per-row remainder
	// special case. Padding cells are zero and unreachable through Index.
	stride  int32
	flat    []int32
	maxAbs  int32   // largest |cell|, for overflow headroom checks
	cellErr float64 // max over cells of |v − q·unit|

	// trans caches Transposed, mirroring Compiled.
	transOnce sync.Once
	trans     *CompiledInt

	// Per-row positive-column index, built lazily (posOnce) and shared by
	// every solve over this matrix: row a's positive cells are
	// posCol/posVal[posOff[ia]:posOff[ia+1]] (ia the row index). The sparse
	// sweep kernels intersect these few cells with the word b instead of
	// scanning a full σ row per symbol — σ matrices are overwhelmingly
	// zero, so the positive lists are tiny.
	posOnce sync.Once
	posOff  []int32
	posCol  []int32
	posVal  []int32
}

// source returns the exact float64 matrix, materializing a transposed
// matrix's source on first use (c.trans is then the original, whose source
// is always present).
func (c *CompiledInt) source() *Compiled {
	c.srcOnce.Do(func() {
		if c.src == nil {
			c.src = c.trans.src.Transposed()
		}
	})
	return c.src
}

// Int returns the integer-quantized form of the matrix, computed once and
// cached — solvers and the batch pool's per-alphabet cache share one
// quantization per compiled σ, exactly as they share one transpose.
func (c *Compiled) Int() *CompiledInt {
	c.intOnce.Do(func() {
		c.intc = quantize(c, chooseUnit(c))
	})
	return c.intc
}

// IntWithUnit quantizes the matrix with an explicit unit (not cached). A
// non-positive unit falls back to the automatic choice; a unit too fine for
// the matrix's value range is coarsened so every cell stays well inside
// int32 (|q| ≤ 2^30).
func (c *Compiled) IntWithUnit(unit float64) *CompiledInt {
	if unit <= 0 {
		unit = chooseUnit(c)
	}
	if m := maxAbsCell(c); m/unit > float64(int32(1)<<30) {
		unit = m / float64(int32(1)<<30)
	}
	return quantize(c, unit)
}

// maxAbsCell returns the largest |cell| of the compiled matrix.
func maxAbsCell(c *Compiled) float64 {
	v := 0.0
	for _, x := range c.flat {
		if a := math.Abs(x); a > v {
			v = a
		}
	}
	return v
}

// chooseUnit picks the quantization unit for a compiled matrix:
//
//  1. the declared unit of a Quantized base scorer, when its headroom holds;
//  2. 1, when every cell is integral (quantization is then exact);
//  3. maxAbs/2^20 otherwise — ~20 significant bits per cell, leaving
//     overflow headroom for alignments of up to 2^11 regions.
func chooseUnit(c *Compiled) float64 {
	maxAbs := maxAbsCell(c)
	if maxAbs == 0 {
		return 1
	}
	headroom := float64(int32(1) << intHeadroomBits)
	if q, ok := c.base.(Quantized); ok && q.Unit > 0 && maxAbs/q.Unit <= 2*headroom {
		return q.Unit
	}
	integral := true
	for _, v := range c.flat {
		if v != math.Trunc(v) {
			integral = false
			break
		}
	}
	if integral && maxAbs <= 2*headroom {
		return 1
	}
	return maxAbs / headroom
}

// LaneWidth is the int32 lane block of the vectorized DP kernels: quantized
// matrix rows are padded to a multiple of it at compile time.
const LaneWidth = 8

// padStride rounds a row length up to the lane width.
func padStride(dim int32) int32 { return (dim + LaneWidth - 1) &^ (LaneWidth - 1) }

func quantize(c *Compiled, unit float64) *CompiledInt {
	ci := &CompiledInt{
		src:    c,
		unit:   unit,
		n:      c.n,
		dim:    c.dim,
		stride: padStride(c.dim),
	}
	d, st := int(c.dim), int(ci.stride)
	ci.flat = make([]int32, st*d)
	for r := 0; r < d; r++ {
		src := c.flat[r*d : (r+1)*d]
		dst := ci.flat[r*st : r*st+d]
		for j, v := range src {
			q := int32(math.Round(v / unit))
			dst[j] = q
			a := q
			if a < 0 {
				a = -a
			}
			if a > ci.maxAbs {
				ci.maxAbs = a
			}
			if e := math.Abs(v - float64(q)*unit); e > ci.cellErr {
				ci.cellErr = e
			}
		}
	}
	return ci
}

// Source returns the exact float64 matrix the quantization was built from
// (built on demand for transposed matrices).
func (c *CompiledInt) Source() *Compiled { return c.source() }

// MaxID returns the largest region ID the matrix covers.
func (c *CompiledInt) MaxID() int32 { return c.n }

// Unit returns the quantization unit: every cell is an int32 multiple of it.
func (c *CompiledInt) Unit() float64 { return c.unit }

// Exact reports whether quantization was lossless: every cell dequantizes to
// the exact float64 the source matrix holds, so integer and float kernels
// agree on every alignment (σ values that are unit multiples, e.g. integral
// tables, always quantize exactly).
func (c *CompiledInt) Exact() bool { return c.cellErr == 0 }

// Bound returns the worst-case absolute error of a dequantized alignment
// score against the exact float64 score, for alignments with at most pathLen
// scoring columns (pathLen = min(|a|, |b|) is always safe): each column's σ
// is off by at most the recorded per-cell rounding error.
func (c *CompiledInt) Bound(pathLen int) float64 {
	if pathLen < 0 {
		pathLen = 0
	}
	return c.cellErr * float64(pathLen)
}

// Fits reports whether an alignment DP over words of minimum length minLen
// can accumulate in int32 without overflow: every partial total is at most
// (minLen+1)·(maxAbs+1) in magnitude. Kernels fall back to the exact float64
// matrix when this fails, so quantized mode is safe at any input size.
func (c *CompiledInt) Fits(minLen int) bool {
	return (int64(c.maxAbs)+1)*(int64(minLen)+1) <= math.MaxInt32
}

// Dequantize maps an accumulated integer score back to the float64 scale.
func (c *CompiledInt) Dequantize(q int64) float64 { return float64(q) * c.unit }

// Score implements Scorer: in-range pairs return the dequantized cell, so
// interface-path alignments agree with the integer kernels; out-of-range
// symbols fall back to the exact base scorer.
func (c *CompiledInt) Score(a, b symbol.Symbol) float64 {
	ia, ib := int32(a)+c.n, int32(b)+c.n
	if uint32(ia) >= uint32(c.dim) || uint32(ib) >= uint32(c.dim) {
		return c.source().Score(a, b)
	}
	return float64(c.flat[ia*c.stride+ib]) * c.unit
}

// Row returns the dense quantized row for symbol a: Row(a)[Index(b)] is the
// integer multiple of Unit scoring (a, b). The caller must ensure |a| ≤
// MaxID; the returned slice must not be modified. The row is padded to
// LaneWidth with zero cells beyond index dim−1.
func (c *CompiledInt) Row(a symbol.Symbol) []int32 {
	ia := int(int32(a) + c.n)
	return c.flat[ia*int(c.stride) : (ia+1)*int(c.stride)]
}

// Index returns the column index of symbol b within a Row.
func (c *CompiledInt) Index(b symbol.Symbol) int32 { return int32(b) + c.n }

// IndexWordInto maps every symbol of w to its column index, appending into
// dst[:0] so hot loops reuse one backing array (see Compiled.IndexWordInto).
func (c *CompiledInt) IndexWordInto(dst []int32, w symbol.Word) []int32 {
	dst = dst[:0]
	for _, s := range w {
		dst = append(dst, int32(s)+c.n)
	}
	return dst
}

// PosRow returns the positive cells of symbol a's quantized row as parallel
// column-index and value slices (column order, ascending). The index over
// all rows is built once per matrix and cached; the returned slices must
// not be modified. The caller must ensure |a| ≤ MaxID.
func (c *CompiledInt) PosRow(a symbol.Symbol) (cols, vals []int32) {
	c.posOnce.Do(c.buildPosRows)
	ia := int(int32(a) + c.n)
	lo, hi := c.posOff[ia], c.posOff[ia+1]
	return c.posCol[lo:hi], c.posVal[lo:hi]
}

func (c *CompiledInt) buildPosRows() {
	d, st := int(c.dim), int(c.stride)
	c.posOff = make([]int32, d+1)
	for i := 0; i < d; i++ {
		row := c.flat[i*st : i*st+d]
		for j, v := range row {
			if v > 0 {
				c.posCol = append(c.posCol, int32(j))
				c.posVal = append(c.posVal, v)
			}
		}
		c.posOff[i+1] = int32(len(c.posCol))
	}
}

// Transposed returns the quantized matrix of σᵀ, cached like
// Compiled.Transposed and linked back so t.Transposed() == c. The transpose
// shares the unit, error bound, and headroom of the original; its float64
// source matrix is NOT built here — the int32 kernels never read it, so it
// materializes only if a fallback path asks (Source/source).
func (c *CompiledInt) Transposed() *CompiledInt {
	c.transOnce.Do(func() {
		t := &CompiledInt{
			unit:    c.unit,
			n:       c.n,
			dim:     c.dim,
			stride:  c.stride,
			flat:    make([]int32, len(c.flat)),
			maxAbs:  c.maxAbs,
			cellErr: c.cellErr,
		}
		d, st := int(c.dim), int(c.stride)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				t.flat[j*st+i] = c.flat[i*st+j]
			}
		}
		t.trans = c
		t.transOnce.Do(func() {})
		c.trans = t
	})
	return c.trans
}

// Prepare returns a kernel-ready scorer covering region IDs up to maxID:
// dense matrices (float64 or int32-quantized) that already cover the range
// pass through unchanged, anything else compiles to a dense float64 matrix.
// Solvers use it so a caller-selected scoring mode survives their internal
// compile step.
func Prepare(sc Scorer, maxID int32) Scorer {
	if ci, ok := sc.(*CompiledInt); ok && ci.n >= maxID {
		return ci
	}
	return Compile(sc, maxID)
}
