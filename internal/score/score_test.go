package score

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/symbol"
)

func TestTableReversalSymmetry(t *testing.T) {
	tb := NewTable()
	a, b := symbol.Symbol(1), symbol.Symbol(2)
	tb.Set(a, b, 4)
	if got := tb.Score(a, b); got != 4 {
		t.Fatalf("Score(a,b) = %v, want 4", got)
	}
	if got := tb.Score(a.Rev(), b.Rev()); got != 4 {
		t.Fatalf("Score(aᴿ,bᴿ) = %v, want 4 (reversal symmetry)", got)
	}
	// The mixed-orientation pair is a distinct entry.
	if got := tb.Score(a, b.Rev()); got != 0 {
		t.Fatalf("Score(a,bᴿ) = %v, want 0", got)
	}
	tb.Set(a, b.Rev(), 7)
	if got := tb.Score(a.Rev(), b); got != 7 {
		t.Fatalf("Score(aᴿ,b) = %v, want 7", got)
	}
	if got := tb.Score(a, b); got != 4 {
		t.Fatalf("Score(a,b) disturbed: %v", got)
	}
}

func TestTablePadAlwaysZero(t *testing.T) {
	tb := NewTable()
	a := symbol.Symbol(3)
	tb.Set(a, symbol.Pad, 99) // must be ignored
	if got := tb.Score(a, symbol.Pad); got != 0 {
		t.Fatalf("Score(a,⊥) = %v, want 0", got)
	}
	if got := tb.Score(symbol.Pad, a); got != 0 {
		t.Fatalf("Score(⊥,a) = %v, want 0", got)
	}
	if got := tb.Score(symbol.Pad, symbol.Pad); got != 0 {
		t.Fatalf("Score(⊥,⊥) = %v, want 0", got)
	}
	if tb.Len() != 0 {
		t.Fatalf("pad Set stored an entry")
	}
}

func TestTableQuickSymmetry(t *testing.T) {
	f := func(x, y int16, v float64) bool {
		a, b := symbol.Symbol(x), symbol.Symbol(y)
		tb := NewTable()
		tb.Set(a, b, v)
		return tb.Score(a, b) == tb.Score(a.Rev(), b.Rev())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableVerify(t *testing.T) {
	tb := NewTable()
	r := rand.New(rand.NewSource(7))
	syms := make([]symbol.Symbol, 0, 20)
	for i := 1; i <= 10; i++ {
		s := symbol.Symbol(i)
		syms = append(syms, s, s.Rev())
	}
	for trial := 0; trial < 40; trial++ {
		a := syms[r.Intn(len(syms))]
		b := syms[r.Intn(len(syms))]
		tb.Set(a, b, float64(r.Intn(10)))
	}
	if a, b, ok := Verify(tb, syms); !ok {
		t.Fatalf("Verify failed at (%v,%v)", a, b)
	}
}

func TestTableAggregates(t *testing.T) {
	tb := NewTable()
	tb.Set(1, 2, 5)
	tb.Set(3, 4, -2)
	tb.Set(5, 6, 3)
	if got := tb.MaxScore(); got != 5 {
		t.Fatalf("MaxScore = %v, want 5", got)
	}
	if got := tb.TotalPositive(); got != 8 {
		t.Fatalf("TotalPositive = %v, want 8", got)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
	c := tb.Clone()
	c.Set(7, 8, 100)
	if tb.Len() != 3 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTablePairsIteration(t *testing.T) {
	tb := NewTable()
	tb.Set(1, 2, 5)
	tb.Set(symbol.Symbol(3).Rev(), 4, 7) // stored canonically as (3, 4ᴿ)
	seen := 0
	tb.Pairs(func(a, b symbol.Symbol, v float64) {
		seen++
		if a.Reversed() {
			t.Errorf("non-canonical pair surfaced: (%v,%v)", a, b)
		}
		if got := tb.Score(a, b); got != v {
			t.Errorf("Pairs value %v inconsistent with Score %v", v, got)
		}
	})
	if seen != 2 {
		t.Fatalf("Pairs visited %d entries, want 2", seen)
	}
}

func TestIdentityScorer(t *testing.T) {
	id := NewIdentity(1)
	a, b := symbol.Symbol(1), symbol.Symbol(2)
	id.SetWeight(a, 5)
	if got := id.Score(a, a); got != 5 {
		t.Fatalf("Score(a,a) = %v, want 5", got)
	}
	if got := id.Score(a.Rev(), a.Rev()); got != 5 {
		t.Fatalf("Score(aᴿ,aᴿ) = %v, want 5", got)
	}
	if got := id.Score(a, a.Rev()); got != 0 {
		t.Fatalf("Score(a,aᴿ) = %v, want 0", got)
	}
	if got := id.Score(a, b); got != 0 {
		t.Fatalf("Score(a,b) = %v, want 0", got)
	}
	if got := id.Score(b, b); got != 1 {
		t.Fatalf("default weight: Score(b,b) = %v, want 1", got)
	}
	if got := id.Score(a, symbol.Pad); got != 0 {
		t.Fatalf("Score(a,⊥) = %v, want 0", got)
	}
}

func TestQuantized(t *testing.T) {
	tb := NewTable()
	tb.Set(1, 2, 7.9)
	q := Quantized{Base: tb, Unit: 2}
	if got := q.Score(1, 2); got != 6 {
		t.Fatalf("quantized Score = %v, want 6", got)
	}
	q0 := Quantized{Base: tb, Unit: 0}
	if got := q0.Score(1, 2); got != 7.9 {
		t.Fatalf("unit 0 should pass through, got %v", got)
	}
	// Quantization preserves the scorer laws.
	syms := []symbol.Symbol{1, -1, 2, -2}
	if a, b, ok := Verify(q, syms); !ok {
		t.Fatalf("quantized scorer violates laws at (%v,%v)", a, b)
	}
}

func TestQuantizedUnderestimatesBoundedly(t *testing.T) {
	tb := NewTable()
	r := rand.New(rand.NewSource(11))
	for i := 1; i <= 50; i++ {
		tb.Set(symbol.Symbol(i), symbol.Symbol(i+100), r.Float64()*10)
	}
	unit := 0.25
	q := Quantized{Base: tb, Unit: unit}
	tb.Pairs(func(a, b symbol.Symbol, v float64) {
		qv := q.Score(a, b)
		if qv > v || v-qv >= unit {
			t.Errorf("quantization out of range: %v -> %v", v, qv)
		}
	})
}
