package score

import (
	"math"
	"sync"

	"repro/internal/symbol"
)

// Compiled is a dense σ-matrix: a Scorer compiled into a flat []float64
// indexed by oriented symbol index, so that DP inner loops become pure slice
// arithmetic with no interface dispatch, no hashing, and no per-cell
// canonicalization.
//
// A matrix compiled for maximum region ID n covers the 2n+1 oriented symbols
// −n … n (reversed regions, the pad, normal regions). Symbol s maps to index
// s+n; the score of (a, b) lives at flat[(a+n)·dim + (b+n)]. Pads compile to
// zero rows and columns, and reversal symmetry is inherited from the base
// scorer, so the compiled matrix obeys the same scorer laws bit-for-bit:
// every entry is the exact float64 the base scorer returned at compile time.
//
// Symbols outside the compiled range fall back to the base scorer, so a
// Compiled is safe to use as a drop-in Scorer anywhere; alignment kernels
// additionally detect a *Compiled and switch to the row fast path when it
// covers their words (see internal/align).
type Compiled struct {
	base Scorer
	n    int32 // maximum region ID covered
	dim  int32 // 2n+1 oriented symbols
	flat []float64

	// trans caches Transposed so concurrent solves sharing one compiled
	// matrix (the batch pool's per-alphabet cache) transpose σ once.
	transOnce sync.Once
	trans     *Compiled

	// intc caches Int() — the integer-quantized form — so it is built once
	// per compiled matrix and shared alongside the transpose.
	intOnce sync.Once
	intc    *CompiledInt

	// Cached positive-cell index (PosRow), built once per matrix like the
	// CompiledInt one: posOff[i]..posOff[i+1] spans row i's positive columns
	// in posCol/posVal.
	posOnce sync.Once
	posOff  []int32
	posCol  []int32
	posVal  []float64
}

// Compile evaluates base on every oriented symbol pair with region IDs up to
// maxID and returns the dense matrix. If base is already a Compiled covering
// maxID it is returned as is. A *Table additionally remembers its last
// compilation: recompiling an unmutated table that was already compiled for a
// sufficient maxID returns the identical matrix (with its cached transpose
// and quantization) instead of re-densifying. Cost is O(maxID²) base
// evaluations on a miss.
func Compile(base Scorer, maxID int32) *Compiled {
	if maxID < 0 {
		maxID = 0
	}
	if c, ok := base.(*Compiled); ok && c.n >= maxID {
		return c
	}
	if t, ok := base.(*Table); ok {
		if e := t.compiled.Load(); e != nil && e.gen == t.gen && e.c.n >= maxID {
			return e.c
		}
	}
	n := maxID
	dim := 2*n + 1
	c := &Compiled{base: base, n: n, dim: dim, flat: make([]float64, int(dim)*int(dim))}
	switch s := base.(type) {
	case *Table:
		// O(stored pairs): each canonical entry (a, b) = v expands to the
		// two oriented cells (a, b) and (aᴿ, bᴿ) the reversal law implies.
		s.Pairs(func(a, b symbol.Symbol, v float64) {
			if a.ID() > n || b.ID() > n {
				return
			}
			c.flat[(int32(a)+n)*dim+(int32(b)+n)] = v
			c.flat[(-int32(a)+n)*dim+(-int32(b)+n)] = v
		})
	case *Identity:
		// O(regions): only the diagonal σ(a, a) = weight(a) is nonzero.
		for id := int32(1); id <= n; id++ {
			w := s.Weight(symbol.Symbol(id))
			c.flat[(id+n)*dim+(id+n)] = w
			c.flat[(-id+n)*dim+(-id+n)] = w
		}
	case Quantized:
		// Compile the base (hitting its own fast case), then truncate each
		// cell — the same floor Quantized.Score applies per call.
		cb := Compile(s.Base, n)
		if cb.n == n {
			copy(c.flat, cb.flat)
		} else {
			for a := -n; a <= n; a++ {
				for b := -n; b <= n; b++ {
					c.flat[(a+n)*dim+(b+n)] = cb.Score(symbol.Symbol(a), symbol.Symbol(b))
				}
			}
		}
		if s.Unit > 0 {
			for i, v := range c.flat {
				c.flat[i] = math.Floor(v/s.Unit) * s.Unit
			}
		}
	default:
		for a := -n; a <= n; a++ {
			if a == 0 {
				continue // pad row stays zero
			}
			row := c.flat[int(a+n)*int(dim) : int(a+n+1)*int(dim)]
			for b := -n; b <= n; b++ {
				if b == 0 {
					continue // pad column stays zero
				}
				row[b+n] = base.Score(symbol.Symbol(a), symbol.Symbol(b))
			}
		}
	}
	if t, ok := base.(*Table); ok {
		t.compiled.Store(&tableCompiled{gen: t.gen, c: c})
	}
	return c
}

// MaxID returns the largest region ID the matrix covers.
func (c *Compiled) MaxID() int32 { return c.n }

// Base returns the scorer the matrix was compiled from.
func (c *Compiled) Base() Scorer { return c.base }

// Score implements Scorer. In-range pairs are a single slice load;
// out-of-range symbols fall back to the base scorer.
func (c *Compiled) Score(a, b symbol.Symbol) float64 {
	ia, ib := int32(a)+c.n, int32(b)+c.n
	if uint32(ia) >= uint32(c.dim) || uint32(ib) >= uint32(c.dim) {
		return c.base.Score(a, b)
	}
	return c.flat[ia*c.dim+ib]
}

// Row returns the dense score row for symbol a: Row(a)[Index(b)] = σ(a, b).
// The caller must ensure a is in range (|a| ≤ MaxID); the returned slice
// must not be modified.
func (c *Compiled) Row(a symbol.Symbol) []float64 {
	ia := int(int32(a) + c.n)
	return c.flat[ia*int(c.dim) : (ia+1)*int(c.dim)]
}

// Index returns the column index of symbol b within a Row.
func (c *Compiled) Index(b symbol.Symbol) int32 { return int32(b) + c.n }

// IndexWord maps every symbol of w to its column index, for hoisting the
// index computation out of DP inner loops.
func (c *Compiled) IndexWord(w symbol.Word) []int32 {
	return c.IndexWordInto(make([]int32, 0, len(w)), w)
}

// IndexWordInto is IndexWord appending into dst[:0], so kernels and scratch
// arenas reuse one backing array across calls instead of allocating per DP.
func (c *Compiled) IndexWordInto(dst []int32, w symbol.Word) []int32 {
	dst = dst[:0]
	for _, s := range w {
		dst = append(dst, int32(s)+c.n)
	}
	return dst
}

// PosRow returns the positive cells of symbol a's row as parallel
// column-index and value slices (column order, ascending) — the float64
// counterpart of CompiledInt.PosRow. The index over all rows is built once
// per matrix and cached; the returned slices must not be modified. The
// caller must ensure |a| ≤ MaxID.
func (c *Compiled) PosRow(a symbol.Symbol) (cols []int32, vals []float64) {
	c.posOnce.Do(c.buildPosRows)
	ia := int(int32(a) + c.n)
	lo, hi := c.posOff[ia], c.posOff[ia+1]
	return c.posCol[lo:hi], c.posVal[lo:hi]
}

func (c *Compiled) buildPosRows() {
	d := int(c.dim)
	c.posOff = make([]int32, d+1)
	for i := 0; i < d; i++ {
		row := c.flat[i*d : (i+1)*d]
		for j, v := range row {
			if v > 0 {
				c.posCol = append(c.posCol, int32(j))
				c.posVal = append(c.posVal, v)
			}
		}
		c.posOff[i+1] = int32(len(c.posCol))
	}
}

// Transposed returns the compiled matrix of σᵀ(a, b) = σ(b, a). The result
// is computed once and cached (safely under concurrent use), and its own
// transpose links back to c, so repeated solves over a shared matrix pay
// for the O(dim²) flip a single time.
func (c *Compiled) Transposed() *Compiled {
	c.transOnce.Do(func() {
		t := &Compiled{base: Transpose(c.base), n: c.n, dim: c.dim, flat: make([]float64, len(c.flat))}
		d := int(c.dim)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				t.flat[j*d+i] = c.flat[i*d+j]
			}
		}
		t.trans = c
		t.transOnce.Do(func() {}) // mark resolved: t.Transposed() == c
		c.trans = t
	})
	return c.trans
}

// transposedScorer swaps the species arguments: σᵀ(x, y) = σ(y, x).
type transposedScorer struct{ base Scorer }

func (t transposedScorer) Score(a, b symbol.Symbol) float64 { return t.base.Score(b, a) }

// Transpose returns the scorer with species sides exchanged. Transposing a
// transpose returns the original scorer; transposing a dense matrix (float64
// or int32-quantized) returns the transposed dense matrix.
func Transpose(sc Scorer) Scorer {
	switch s := sc.(type) {
	case *Compiled:
		return s.Transposed()
	case *CompiledInt:
		return s.Transposed()
	case transposedScorer:
		return s.base
	}
	return transposedScorer{sc}
}
