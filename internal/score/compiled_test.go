package score

import (
	"math/rand"
	"testing"

	"repro/internal/symbol"
)

// orientedUniverse lists every oriented symbol with region ID ≤ n, plus the
// pad.
func orientedUniverse(n int32) []symbol.Symbol {
	var out []symbol.Symbol
	for id := -n; id <= n; id++ {
		out = append(out, symbol.Symbol(id))
	}
	return out
}

// randomTable builds a table over n regions with random entries in random
// orientations, including some negative scores.
func randomTable(r *rand.Rand, n int32, entries int) *Table {
	tb := NewTable()
	for i := 0; i < entries; i++ {
		a := symbol.Symbol(1 + r.Int31n(n))
		b := symbol.Symbol(1 + r.Int31n(n))
		if r.Intn(2) == 0 {
			a = a.Rev()
		}
		if r.Intn(2) == 0 {
			b = b.Rev()
		}
		tb.Set(a, b, float64(r.Intn(21)-5))
	}
	return tb
}

// TestCompiledAgreesWithTable is the compiled-scorer property test: on a
// randomized alphabet the dense matrix must agree with the wrapped sparse
// table on every oriented symbol pair, obey the pad-zero law, and inherit
// reversal symmetry.
func TestCompiledAgreesWithTable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Int31n(20)
		tb := randomTable(r, n, 1+r.Intn(60))
		c := Compile(tb, n)
		univ := orientedUniverse(n)
		for _, a := range univ {
			for _, b := range univ {
				if got, want := c.Score(a, b), tb.Score(a, b); got != want {
					t.Fatalf("trial %d: compiled σ(%d,%d) = %v, table %v", trial, a, b, got, want)
				}
			}
			if c.Score(a, symbol.Pad) != 0 || c.Score(symbol.Pad, a) != 0 {
				t.Fatalf("trial %d: pad law violated at %d", trial, a)
			}
		}
		if a, b, ok := Verify(c, univ); !ok {
			t.Fatalf("trial %d: compiled scorer violates laws at (%d, %d)", trial, a, b)
		}
		// Row/Index agreement with Score.
		for _, a := range univ {
			row := c.Row(a)
			for _, b := range univ {
				if row[c.Index(b)] != c.Score(a, b) {
					t.Fatalf("trial %d: Row(%d)[Index(%d)] != Score", trial, a, b)
				}
			}
		}
	}
}

// TestCompiledAgreesWithIdentity covers the Identity (UCSR) fast-compile
// path.
func TestCompiledAgreesWithIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Int31n(15)
		id := NewIdentity(float64(r.Intn(5)))
		for k := int32(1); k <= n; k++ {
			if r.Intn(2) == 0 {
				id.SetWeight(symbol.Symbol(k), float64(r.Intn(9)))
			}
		}
		c := Compile(id, n)
		univ := orientedUniverse(n)
		for _, a := range univ {
			for _, b := range univ {
				if c.Score(a, b) != id.Score(a, b) {
					t.Fatalf("trial %d: compiled identity σ(%d,%d) = %v, want %v",
						trial, a, b, c.Score(a, b), id.Score(a, b))
				}
			}
		}
	}
}

// TestCompiledAgreesWithQuantized covers the Quantized fast-compile path:
// the dense matrix must floor exactly as the wrapper does per call.
func TestCompiledAgreesWithQuantized(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Int31n(15)
		q := Quantized{Base: randomTable(r, n, 40), Unit: r.Float64() * 3}
		if trial%5 == 0 {
			q.Unit = 0 // pass-through case
		}
		c := Compile(q, n)
		for _, a := range orientedUniverse(n) {
			for _, b := range orientedUniverse(n) {
				if c.Score(a, b) != q.Score(a, b) {
					t.Fatalf("trial %d: compiled quantized σ(%d,%d) = %v, want %v",
						trial, a, b, c.Score(a, b), q.Score(a, b))
				}
			}
		}
	}
}

// TestCompiledOutOfRangeFallsBack checks symbols beyond the compiled range
// still score through the base scorer.
func TestCompiledOutOfRangeFallsBack(t *testing.T) {
	tb := NewTable()
	tb.Set(symbol.Symbol(2), symbol.Symbol(9), 7)
	c := Compile(tb, 4) // 9 is out of range
	if got := c.Score(symbol.Symbol(2), symbol.Symbol(9)); got != 7 {
		t.Fatalf("out-of-range fallback = %v, want 7", got)
	}
	if got := c.Score(symbol.Symbol(2).Rev(), symbol.Symbol(9).Rev()); got != 7 {
		t.Fatalf("out-of-range reversed fallback = %v, want 7", got)
	}
}

// TestCompiledTransposed checks σᵀ(a, b) = σ(b, a) cell for cell, and that
// transposing a transpose restores the original scorer.
func TestCompiledTransposed(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := int32(12)
	tb := randomTable(r, n, 40)
	c := Compile(tb, n)
	ct := c.Transposed()
	univ := orientedUniverse(n)
	for _, a := range univ {
		for _, b := range univ {
			if ct.Score(a, b) != c.Score(b, a) {
				t.Fatalf("σᵀ(%d,%d) = %v, want σ(%d,%d) = %v", a, b, ct.Score(a, b), b, a, c.Score(b, a))
			}
		}
	}
	if back := Transpose(Transpose(Scorer(tb))); back != Scorer(tb) {
		t.Fatal("double transpose did not restore the original scorer")
	}
}

// TestCompileIdempotent checks compiling a covering Compiled is a no-op.
func TestCompileIdempotent(t *testing.T) {
	tb := NewTable()
	tb.Set(symbol.Symbol(1), symbol.Symbol(2), 3)
	c := Compile(tb, 8)
	if Compile(c, 5) != c {
		t.Fatal("re-compiling a covering matrix should return it unchanged")
	}
	if Compile(c, 9) == c {
		t.Fatal("compiling past the covered range must build a wider matrix")
	}
}

// BenchmarkScorerDispatch compares per-pair lookup cost: the sparse map
// table (hash + canonicalization per call) versus the compiled dense matrix
// (one slice load).
func BenchmarkScorerDispatch(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	const n = 40
	tb := randomTable(r, n, 200)
	c := Compile(tb, n)
	pairs := make([][2]symbol.Symbol, 1024)
	for i := range pairs {
		a := symbol.Symbol(r.Int31n(2*n+1) - n)
		bb := symbol.Symbol(r.Int31n(2*n+1) - n)
		pairs[i] = [2]symbol.Symbol{a, bb}
	}
	b.Run("table", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			p := pairs[i&1023]
			sink += tb.Score(p[0], p[1])
		}
		_ = sink
	})
	b.Run("compiled", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			p := pairs[i&1023]
			sink += c.Score(p[0], p[1])
		}
		_ = sink
	})
	b.Run("compiled-row", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			p := pairs[i&1023]
			sink += c.Row(p[0])[c.Index(p[1])]
		}
		_ = sink
	})
}
