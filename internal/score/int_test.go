package score

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/symbol"
)

// randTable builds a random sparse table over region IDs 1..n. Integral
// forces integer-valued scores.
func randTable(r *rand.Rand, n int, pairs int, integral bool) *Table {
	tb := NewTable()
	for k := 0; k < pairs; k++ {
		a := symbol.Symbol(1 + r.Intn(n))
		b := symbol.Symbol(1 + r.Intn(n))
		if r.Intn(2) == 0 {
			b = b.Rev()
		}
		var v float64
		if integral {
			v = float64(1 + r.Intn(20))
		} else {
			v = r.Float64() * 20
		}
		tb.Set(a, b, v)
	}
	return tb
}

func symbolsUpTo(n int32) []symbol.Symbol {
	var out []symbol.Symbol
	for id := int32(1); id <= n; id++ {
		out = append(out, symbol.Symbol(id), symbol.Symbol(id).Rev())
	}
	return out
}

// TestIntExactOnIntegralTable: integer-valued σ quantizes with unit 1,
// losslessly.
func TestIntExactOnIntegralTable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c := Compile(randTable(r, 12, 40, true), 12)
	ci := c.Int()
	if ci.Unit() != 1 {
		t.Fatalf("unit = %v, want 1 for an integral table", ci.Unit())
	}
	if !ci.Exact() {
		t.Fatalf("integral table must quantize exactly (cellErr bound %v)", ci.Bound(1))
	}
	for _, a := range symbolsUpTo(12) {
		for _, b := range symbolsUpTo(12) {
			if got, want := ci.Score(a, b), c.Score(a, b); got != want {
				t.Fatalf("Score(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestIntCellBound: every cell of a float-valued quantization is within the
// recorded per-cell error, which itself is at most unit/2 (round to nearest).
func TestIntCellBound(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		c := Compile(randTable(r, 10, 30, false), 10)
		ci := c.Int()
		if ci.Bound(1) > ci.Unit()/2+1e-12 {
			t.Fatalf("cell error %v exceeds unit/2 = %v", ci.Bound(1), ci.Unit()/2)
		}
		for _, a := range symbolsUpTo(10) {
			for _, b := range symbolsUpTo(10) {
				d := math.Abs(ci.Score(a, b) - c.Score(a, b))
				if d > ci.Bound(1)+1e-12 {
					t.Fatalf("cell (%v,%v): |%v − %v| = %v > bound %v",
						a, b, ci.Score(a, b), c.Score(a, b), d, ci.Bound(1))
				}
			}
		}
	}
}

// TestIntScorerLaws: the quantized matrix is itself a lawful scorer —
// reversal symmetry and free pads survive quantization (symmetric cells hold
// equal values, so they round identically).
func TestIntScorerLaws(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ci := Compile(randTable(r, 9, 35, false), 9).Int()
	if a, b, ok := Verify(ci, symbolsUpTo(9)); !ok {
		t.Fatalf("scorer laws violated at (%v, %v)", a, b)
	}
}

// TestIntQuantizedUnit: a Quantized base scorer donates its declared unit,
// and the truncated values quantize exactly.
func TestIntQuantizedUnit(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	base := randTable(r, 8, 30, false)
	q := Quantized{Base: base, Unit: 0.25}
	ci := Compile(q, 8).Int()
	if ci.Unit() != 0.25 {
		t.Fatalf("unit = %v, want the Quantized unit 0.25", ci.Unit())
	}
	if !ci.Exact() {
		t.Fatalf("quantized-scorer cells are unit multiples; Int must be exact (err %v)", ci.Bound(1))
	}
}

// TestIntTransposed: the transpose swaps argument order, caches, and links
// back.
func TestIntTransposed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ci := Compile(randTable(r, 7, 25, false), 7).Int()
	tr := ci.Transposed()
	if tr.Transposed() != ci {
		t.Fatal("double transpose must return the original matrix")
	}
	if ci.Transposed() != tr {
		t.Fatal("Transposed must cache")
	}
	for _, a := range symbolsUpTo(7) {
		for _, b := range symbolsUpTo(7) {
			if tr.Score(a, b) != ci.Score(b, a) {
				t.Fatalf("transpose(%v,%v): %v != %v", a, b, tr.Score(a, b), ci.Score(b, a))
			}
		}
	}
	if Transpose(ci) != tr {
		t.Fatal("score.Transpose must return the quantized transpose")
	}
}

// TestIntFits: headroom arithmetic.
func TestIntFits(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c := Compile(randTable(r, 6, 20, true), 6)
	ci := c.Int() // maxAbs ≤ 20
	if !ci.Fits(1 << 20) {
		t.Fatal("small cells must fit very long words")
	}
	big := c.IntWithUnit(1e-9) // unit clamps so cells peak near 2^30
	if big.maxAbs > int32(1)<<30 {
		t.Fatalf("maxAbs %d escaped the int32 clamp", big.maxAbs)
	}
	if big.Fits(1000) {
		t.Fatalf("maxAbs %d × 1001 must not fit int32", big.maxAbs)
	}
}

// TestIntCached: Int is computed once and shared.
func TestIntCached(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := Compile(randTable(r, 5, 15, true), 5)
	if c.Int() != c.Int() {
		t.Fatal("Int must cache")
	}
	if c.Int().Source() != c {
		t.Fatal("Source must return the compiled float matrix")
	}
}

// TestPrepare: dense matrices pass through, everything else compiles.
func TestPrepare(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tb := randTable(r, 6, 20, false)
	c := Compile(tb, 6)
	if Prepare(c, 6) != c {
		t.Fatal("Prepare must pass a covering Compiled through")
	}
	ci := c.Int()
	if Prepare(ci, 6) != ci {
		t.Fatal("Prepare must pass a covering CompiledInt through")
	}
	if _, ok := Prepare(tb, 6).(*Compiled); !ok {
		t.Fatal("Prepare must compile a raw table")
	}
	if _, ok := Prepare(ci, 99).(*Compiled); !ok {
		t.Fatal("Prepare must recompile an undersized quantized matrix to a covering float matrix")
	}
}

// TestIndexWordInto: append-into-dst reuses the backing array.
func TestIndexWordInto(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c := Compile(randTable(r, 6, 20, false), 6)
	w := symbol.Word{1, 2, symbol.Symbol(3).Rev(), symbol.Pad}
	want := c.IndexWord(w)
	buf := make([]int32, 0, 16)
	got := c.IndexWordInto(buf, w)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("index %d: %d != %d", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("IndexWordInto must reuse dst's backing array")
	}
	gi := c.Int().IndexWordInto(buf, w)
	for i := range gi {
		if gi[i] != want[i] {
			t.Fatalf("int index %d: %d != %d", i, gi[i], want[i])
		}
	}
}
