package faultinject

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestNilInjectorNeverFires: every method must be a safe no-op on the nil
// receiver — the production default.
func TestNilInjectorNeverFires(t *testing.T) {
	var inj *Injector
	for p := Point(0); p < numPoints; p++ {
		if fired, d := inj.Fire(p); fired || d != 0 {
			t.Fatalf("nil injector fired at %v", p)
		}
		if inj.Fires(p) || inj.Stall(context.Background(), p) || inj.StallHard(p) {
			t.Fatalf("nil injector triggered at %v", p)
		}
		if inj.Hits(p) != 0 || inj.Fired(p) != 0 {
			t.Fatalf("nil injector counted at %v", p)
		}
	}
}

// TestSequenceRule: Nth/After conditions are exact and deterministic.
func TestSequenceRule(t *testing.T) {
	inj := New(1, Rule{Point: SolvePanic, Nth: 3, After: 3})
	var fires []int
	for i := 1; i <= 12; i++ {
		if inj.Fires(SolvePanic) {
			fires = append(fires, i)
		}
	}
	want := []int{6, 9, 12} // multiples of 3 after the first 3 hits
	if len(fires) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", fires, want)
		}
	}
	if inj.Hits(SolvePanic) != 12 || inj.Fired(SolvePanic) != 3 {
		t.Fatalf("hits %d fired %d, want 12/3", inj.Hits(SolvePanic), inj.Fired(SolvePanic))
	}
}

// TestProbabilityRuleReproducible: the same seed reproduces the same fault
// sequence, and the empirical rate is in the right ballpark.
func TestProbabilityRuleReproducible(t *testing.T) {
	run := func() []bool {
		inj := New(42, Rule{Point: ShardSlow, Prob: 0.3})
		out := make([]bool, 1000)
		for i := range out {
			out[i], _ = inj.Fire(ShardSlow)
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d diverged across same-seed runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired < 200 || fired > 400 {
		t.Fatalf("Prob 0.3 fired %d/1000", fired)
	}
}

// TestStallWakesOnContext: a canceled context cuts a Stall short, while
// StallHard runs the full delay regardless.
func TestStallWakesOnContext(t *testing.T) {
	inj := New(1,
		Rule{Point: ShardSlow, Delay: 5 * time.Second},
		Rule{Point: DeadlineOverrun, Delay: 20 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if !inj.Stall(ctx, ShardSlow) {
		t.Fatal("armed stall did not fire")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("canceled stall slept %v", el)
	}
	start = time.Now()
	if !inj.StallHard(DeadlineOverrun) {
		t.Fatal("armed hard stall did not fire")
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("hard stall cut short at %v", el)
	}
}

// TestConcurrentFire: counters stay consistent under concurrent hits (the
// -race guard for the injector itself).
func TestConcurrentFire(t *testing.T) {
	inj := New(7, Rule{Point: QueueStall, Prob: 0.5})
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				inj.Fire(QueueStall)
			}
		}()
	}
	wg.Wait()
	if inj.Hits(QueueStall) != workers*each {
		t.Fatalf("hits %d, want %d", inj.Hits(QueueStall), workers*each)
	}
	if f := inj.Fired(QueueStall); f <= 0 || f >= workers*each {
		t.Fatalf("fired %d out of range", f)
	}
}

// TestParsePoint round-trips every point name.
func TestParsePoint(t *testing.T) {
	for p := Point(0); p < numPoints; p++ {
		got, err := ParsePoint(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePoint(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePoint("bogus"); err == nil {
		t.Fatal("ParsePoint accepted garbage")
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("shard-slow:p=0.05:d=50ms, solve-panic:nth=1000:after=10")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Point: ShardSlow, Prob: 0.05, Delay: 50 * time.Millisecond},
		{Point: SolvePanic, Nth: 1000, After: 10},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	if r, err := ParseRules(""); err != nil || r != nil {
		t.Fatalf("empty spec: %v, %v", r, err)
	}
	for _, bad := range []string{"bogus", "shard-slow:p=2", "shard-slow:d=-1s", "shard-slow:x=1", "shard-slow:p"} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules accepted %q", bad)
		}
	}
}
