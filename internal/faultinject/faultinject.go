// Package faultinject is the build-tag-free fault-injection harness behind
// the chaos test suites: a set of named sequence points in the batch pool
// and the serving stack where an Injector can arm faults — solver panics,
// slow shards, queue-return stalls, deadline overruns, σ-cache drops, and
// response-path stalls — either probabilistically (seeded, reproducible) or
// on exact hit counts.
//
// The zero value of the integration is "no faults, no cost": every
// production call site holds a *Injector that is nil by default, and every
// method is safe (and trivially cheap) on a nil receiver. There is no build
// tag; chaos coverage runs in the ordinary test binary and in ordinary
// builds when an operator arms it, so the code path the chaos suite proves
// is byte-for-byte the production code path.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one instrumented location. Each point is hit (counted) every
// time execution passes it, and fires only when an armed rule triggers.
type Point uint8

const (
	// SolvePanic panics inside a batch shard's solve, within the pool's
	// recover scope — the "solver bug" fault. The chaos suite proves a
	// panicking shard resolves its ticket with an error, keeps the pool
	// counters consistent, and never wedges the queue-token semaphore.
	SolvePanic Point = iota
	// ShardSlow stalls a shard for the rule's Delay before it starts
	// solving, waking early if the instance's context fires — the
	// "overloaded machine" fault behind the drain-under-stall tests.
	ShardSlow
	// QueueStall stalls the return of a dequeued instance's queue-slot
	// token, so the bounded queue looks full longer than the work it
	// holds — the "queue not draining" fault admission control must
	// tolerate.
	QueueStall
	// DeadlineOverrun stalls after a solve completes without honoring the
	// instance context — a solver that ignores cancellation and overruns
	// its deadline. Unlike ShardSlow the stall does not wake on ctx.Done:
	// that is the fault.
	DeadlineOverrun
	// SigmaDrop makes the pool's per-alphabet σ cache treat a lookup as a
	// miss, recompiling the matrix fresh. The corruption guard: results
	// must be byte-identical whether σ came from the cache or a fresh
	// compile, so a run with SigmaDrop armed proves no solver depends on
	// cached-matrix identity for correctness.
	SigmaDrop
	// ServeStall stalls the HTTP handler between admission and streaming,
	// waking early if the request context fires — the fault that widens
	// the drain and mid-stream-disconnect windows the serve chaos suite
	// targets.
	ServeStall
	// CheckpointTorn tears a checkpoint flush mid-record: the writer
	// persists only a prefix of the pending bytes and then fails, exactly
	// what a crash between write and fsync leaves on disk. The recovery
	// suite proves the torn-tolerant reader drops the partial tail and a
	// resumed solve replays bit-identical to the uninterrupted oracle.
	CheckpointTorn

	numPoints
)

var pointNames = [numPoints]string{
	SolvePanic:      "solve-panic",
	ShardSlow:       "shard-slow",
	QueueStall:      "queue-stall",
	DeadlineOverrun: "deadline-overrun",
	SigmaDrop:       "sigma-drop",
	ServeStall:      "serve-stall",
	CheckpointTorn:  "checkpoint-torn",
}

func (p Point) String() string {
	if p < numPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("faultinject.Point(%d)", uint8(p))
}

// ParsePoint resolves a point name ("solve-panic", "shard-slow", ...) — the
// csrserve -chaos flag grammar.
func ParsePoint(name string) (Point, error) {
	for p, n := range pointNames {
		if n == name {
			return Point(p), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown point %q", name)
}

// ParseRule parses one csrserve -chaos rule spec:
//
//	point[:p=PROB][:nth=N][:after=K][:d=DELAY]
//
// e.g. "shard-slow:p=0.05:d=50ms" (5% of solves stall 50ms) or
// "solve-panic:nth=1000" (every 1000th solve panics).
func ParseRule(spec string) (Rule, error) {
	fields := strings.Split(spec, ":")
	p, err := ParsePoint(fields[0])
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Point: p}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Rule{}, fmt.Errorf("faultinject: rule field %q is not key=value", f)
		}
		switch key {
		case "p":
			if r.Prob, err = strconv.ParseFloat(val, 64); err != nil || r.Prob < 0 || r.Prob > 1 {
				return Rule{}, fmt.Errorf("faultinject: bad probability %q", val)
			}
		case "nth":
			if r.Nth, err = strconv.Atoi(val); err != nil || r.Nth < 0 {
				return Rule{}, fmt.Errorf("faultinject: bad nth %q", val)
			}
		case "after":
			if r.After, err = strconv.Atoi(val); err != nil || r.After < 0 {
				return Rule{}, fmt.Errorf("faultinject: bad after %q", val)
			}
		case "d":
			if r.Delay, err = time.ParseDuration(val); err != nil || r.Delay < 0 {
				return Rule{}, fmt.Errorf("faultinject: bad delay %q", val)
			}
		default:
			return Rule{}, fmt.Errorf("faultinject: unknown rule field %q", key)
		}
	}
	return r, nil
}

// ParseRules parses a comma-separated list of rule specs (the full -chaos
// flag value). An empty string arms nothing.
func ParseRules(specs string) ([]Rule, error) {
	if specs == "" {
		return nil, nil
	}
	var rules []Rule
	for _, spec := range strings.Split(specs, ",") {
		r, err := ParseRule(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Rule arms one point. A rule triggers on a hit when the hit's (1-based)
// sequence number matches the rule's sequence condition AND the seeded coin
// passes. Prob 0 is treated as 1 (pure sequence rules stay deterministic);
// Nth/After 0 match every hit (pure probability rules).
type Rule struct {
	Point Point
	// Prob is the per-hit trigger probability in (0, 1]; 0 means always
	// (the rule is then purely sequence-conditioned).
	Prob float64
	// Nth triggers on hits whose sequence number is a multiple of Nth
	// (1-based); 0 matches every hit.
	Nth int
	// After suppresses the rule for the first After hits; 0 arms it
	// immediately.
	After int
	// Delay is the stall duration for the stall-type points (ShardSlow,
	// QueueStall, DeadlineOverrun, ServeStall); ignored by SolvePanic and
	// SigmaDrop.
	Delay time.Duration
}

// Injector decides, per hit, whether an armed fault fires. Safe for
// concurrent use; all methods are no-ops on a nil receiver, which is the
// production default.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules [numPoints][]Rule
	hits  [numPoints]atomic.Int64
	fired [numPoints]atomic.Int64
}

// New builds an injector over a seeded coin; the same seed and hit sequence
// reproduce the same fault sequence.
func New(seed int64, rules ...Rule) *Injector {
	inj := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		if r.Point < numPoints {
			inj.rules[r.Point] = append(inj.rules[r.Point], r)
		}
	}
	return inj
}

// Fire records a hit at p and reports whether an armed rule triggers,
// returning the triggering rule's Delay. Nil injectors (and unarmed
// points) never fire.
func (inj *Injector) Fire(p Point) (bool, time.Duration) {
	if inj == nil || p >= numPoints {
		return false, 0
	}
	if len(inj.rules[p]) == 0 {
		inj.hits[p].Add(1)
		return false, 0
	}
	n := inj.hits[p].Add(1)
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, r := range inj.rules[p] {
		if int64(r.After) >= n {
			continue
		}
		if r.Nth > 1 && n%int64(r.Nth) != 0 {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && inj.rng.Float64() >= r.Prob {
			continue
		}
		inj.fired[p].Add(1)
		return true, r.Delay
	}
	return false, 0
}

// Fires is Fire for points whose fault has no duration (SolvePanic,
// SigmaDrop).
func (inj *Injector) Fires(p Point) bool {
	fired, _ := inj.Fire(p)
	return fired
}

// Stall fires p and, when it triggers with a positive delay, sleeps for the
// delay or until ctx is done, whichever comes first (nil ctx never wakes the
// stall early). It reports whether the point fired.
func (inj *Injector) Stall(ctx context.Context, p Point) bool {
	fired, d := inj.Fire(p)
	if !fired || d <= 0 {
		return fired
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	return true
}

// StallHard is Stall without a context: the stall runs its full delay even
// if the surrounding work was canceled — the DeadlineOverrun semantics.
func (inj *Injector) StallHard(p Point) bool { return inj.Stall(nil, p) }

// Hits returns the number of times p was passed; Fired the number of times
// an armed rule triggered there. Both are 0 on a nil injector.
func (inj *Injector) Hits(p Point) int64 {
	if inj == nil || p >= numPoints {
		return 0
	}
	return inj.hits[p].Load()
}

// Fired returns the number of times p's armed rules triggered.
func (inj *Injector) Fired(p Point) int64 {
	if inj == nil || p >= numPoints {
		return 0
	}
	return inj.fired[p].Load()
}
