package csop

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

func randInstance(r *rand.Rand, n int) *Instance {
	perm := r.Perm(2 * n)
	in := &Instance{N: 2 * n}
	for k := 0; k < n; k++ {
		a, b := perm[2*k], perm[2*k+1]
		if a > b {
			a, b = b, a
		}
		in.Pairs = append(in.Pairs, [2]int{a, b})
	}
	return in
}

// bruteForce enumerates all subsets of [0, N).
func bruteForce(in *Instance) int {
	best := 0
	for mask := 0; mask < 1<<in.N; mask++ {
		var u []int
		for x := 0; x < in.N; x++ {
			if mask&(1<<x) != 0 {
				u = append(u, x)
			}
		}
		if in.Feasible(u) == nil && len(u) > best {
			best = len(u)
		}
	}
	return best
}

func TestValidate(t *testing.T) {
	good := &Instance{N: 4, Pairs: [][2]int{{0, 2}, {1, 3}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*Instance{
		{N: 4, Pairs: [][2]int{{0, 2}}},
		{N: 4, Pairs: [][2]int{{2, 0}, {1, 3}}},
		{N: 4, Pairs: [][2]int{{0, 2}, {0, 3}}},
		{N: 4, Pairs: [][2]int{{0, 2}, {1, 5}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad instance %v accepted", bad)
		}
	}
}

func TestFeasible(t *testing.T) {
	in := &Instance{N: 6, Pairs: [][2]int{{0, 3}, {1, 4}, {2, 5}}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := in.Feasible([]int{0, 3}); err != nil {
		t.Errorf("pair alone rejected: %v", err)
	}
	if err := in.Feasible([]int{0, 3, 1}); err == nil {
		t.Error("element inside a chosen pair accepted")
	}
	if err := in.Feasible([]int{0, 1, 2}); err != nil {
		t.Errorf("singletons rejected: %v", err)
	}
	if err := in.Feasible([]int{0, 0}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := in.Feasible([]int{9}); err == nil {
		t.Error("out of range accepted")
	}
}

func TestExactAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		in := randInstance(r, 2+r.Intn(5)) // N ≤ 12: brute force 4096 subsets
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		got := Exact(in)
		if err := in.Feasible(got); err != nil {
			t.Fatalf("exact infeasible: %v", err)
		}
		if want := bruteForce(in); len(got) != want {
			t.Fatalf("exact %d, brute %d on %v", len(got), want, in.Pairs)
		}
	}
}

func TestGreedyFeasibleAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		in := randInstance(r, 2+r.Intn(6))
		g := Greedy(in)
		if err := in.Feasible(g); err != nil {
			t.Fatalf("greedy infeasible: %v", err)
		}
		if len(g) > len(Exact(in)) {
			t.Fatal("greedy beats exact")
		}
	}
}

func TestNormalize(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 80; trial++ {
		in := randInstance(r, 2+r.Intn(6))
		// Random feasible solution: greedily insert random elements.
		var u []int
		for _, x := range r.Perm(in.N) {
			cand := append(append([]int{}, u...), x)
			if in.Feasible(cand) == nil {
				u = cand
			}
			if len(u) >= in.N/2 {
				break
			}
		}
		norm, err := in.Normalize(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(norm) < len(u) {
			t.Fatalf("normalization shrank solution: %d → %d", len(u), len(norm))
		}
		chosen := make(map[int]bool)
		for _, x := range norm {
			chosen[x] = true
		}
		for k, p := range in.Pairs {
			if !chosen[p[0]] && !chosen[p[1]] {
				t.Fatalf("pair %d untouched after normalization", k)
			}
		}
	}
}

func TestReductionOptEquals5nPlusMIS(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	// Cubic graphs admit a non-consecutive ordering for ≥ 8 vertices (the
	// complement has minimum degree ≥ n/2, so Dirac applies); K4 and K3,3
	// genuinely have none.
	for _, nodes := range []int{8, 10} {
		g, err := graph.RandomCubic(r, nodes)
		if err != nil {
			t.Fatal(err)
		}
		red, err := FromCubic(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := red.Inst.Validate(); err != nil {
			t.Fatal(err)
		}
		mis := graph.MaxIndependentSetExact(red.G)
		opt := Exact(red.Inst)
		want := 5*(nodes/2) + len(mis)
		if len(opt) != want {
			t.Fatalf("nodes=%d: opt(CSoP) = %d, want 5n+|MIS| = %d", nodes, len(opt), want)
		}
		// Forward witness realizes the same value.
		wit, err := red.SolutionFromIS(mis)
		if err != nil {
			t.Fatal(err)
		}
		if len(wit) != want {
			t.Fatalf("witness size %d, want %d", len(wit), want)
		}
		// Back-mapping recovers an independent set of the full MIS size
		// from the optimal CSoP solution.
		w, err := red.ExtractIS(opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(w) < len(mis) {
			t.Fatalf("extracted IS %d < MIS %d", len(w), len(mis))
		}
	}
}

func TestReductionRejectsNonCubic(t *testing.T) {
	g := graph.New(4)
	_ = g.AddEdge(0, 1)
	r := rand.New(rand.NewSource(1))
	if _, err := FromCubic(g, r); err == nil {
		t.Fatal("non-cubic graph accepted")
	}
}

func TestToCSR(t *testing.T) {
	in := &Instance{N: 4, Pairs: [][2]int{{0, 2}, {1, 3}}}
	inst := in.ToCSR()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inst.H) != 2 || len(inst.M) != 1 {
		t.Fatalf("CSR shape wrong: %d H, %d M", len(inst.H), len(inst.M))
	}
	if inst.M[0].Len() != 4 {
		t.Fatalf("M length %d", inst.M[0].Len())
	}
	// Unit identity: every letter scores 1 with itself.
	for _, s := range inst.M[0].Regions {
		if inst.Sigma.Score(s, s) != 1 {
			t.Fatalf("σ(%v,%v) != 1", s, s)
		}
	}
}

func TestPairOf(t *testing.T) {
	in := &Instance{N: 4, Pairs: [][2]int{{0, 2}, {1, 3}}}
	if in.PairOf(2) != 0 || in.PairOf(1) != 1 {
		t.Fatal("PairOf wrong")
	}
	if in.PairOf(9) != -1 {
		t.Fatal("missing element should return -1")
	}
}

func TestExtractISFromArbitraryFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	g, err := graph.RandomCubic(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	red, err := FromCubic(g, r)
	if err != nil {
		t.Fatal(err)
	}
	// The empty solution normalizes to a normal solution and maps back.
	w, err := red.ExtractIS(nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(w)
	if !graph.IsIndependentSet(red.G, w) {
		t.Fatal("not independent")
	}
}
