// Package csop implements the Consistent Subsets of Pairs problem of §3.2 —
// the restricted UCSR core that the paper proves MAX-SNP hard — together
// with the Theorem 2 approximation-preserving reduction from 3-MIS and its
// back-mapping.
//
// An instance consists of n pairs {i(k), j(k)} partitioning [0, 2n). A
// feasible solution is U ⊆ [0, 2n) such that whenever both elements of a
// pair lie in U, no element of U lies strictly between them; the goal is to
// maximize |U|. (In UCSR terms: M is the single sequence a₀…a₂ₙ₋₁, H is the
// set of two-letter fragments given by the pairs, and σ is the unit identity
// score.)
package csop

import (
	"fmt"
	"sort"
)

// Instance is one CSoP problem: Pairs partition [0, N), each with
// Pairs[k][0] < Pairs[k][1].
type Instance struct {
	// N is the universe size (2n for n pairs).
	N int
	// Pairs lists the fragment pairs {i(k), j(k)}.
	Pairs [][2]int
}

// Validate checks that the pairs partition [0, N) with ordered elements.
func (in *Instance) Validate() error {
	if in.N != 2*len(in.Pairs) {
		return fmt.Errorf("csop: N = %d but %d pairs", in.N, len(in.Pairs))
	}
	seen := make([]bool, in.N)
	for k, p := range in.Pairs {
		if p[0] >= p[1] {
			return fmt.Errorf("csop: pair %d = %v not ordered", k, p)
		}
		for _, x := range p {
			if x < 0 || x >= in.N {
				return fmt.Errorf("csop: pair %d element %d out of range", k, x)
			}
			if seen[x] {
				return fmt.Errorf("csop: element %d appears twice", x)
			}
			seen[x] = true
		}
	}
	return nil
}

// PairOf returns the index of the pair containing element x.
func (in *Instance) PairOf(x int) int {
	for k, p := range in.Pairs {
		if p[0] == x || p[1] == x {
			return k
		}
	}
	return -1
}

// Feasible checks the CSoP constraint for U: if both elements of a pair are
// chosen, nothing chosen lies strictly between them.
func (in *Instance) Feasible(U []int) error {
	chosen := make([]bool, in.N)
	for _, x := range U {
		if x < 0 || x >= in.N {
			return fmt.Errorf("csop: element %d out of range", x)
		}
		if chosen[x] {
			return fmt.Errorf("csop: element %d chosen twice", x)
		}
		chosen[x] = true
	}
	for k, p := range in.Pairs {
		if chosen[p[0]] && chosen[p[1]] {
			for l := p[0] + 1; l < p[1]; l++ {
				if chosen[l] {
					return fmt.Errorf("csop: pair %d = %v selected with %d inside", k, p, l)
				}
			}
		}
	}
	return nil
}

// Normalize converts a feasible solution into a normal one — same size,
// intersecting every pair — by the exchange argument in the Theorem 2
// proof: a pair disjoint from U absorbs its left element, evicting the left
// element of any fully-chosen pair whose interval covers it.
func (in *Instance) Normalize(U []int) ([]int, error) {
	if err := in.Feasible(U); err != nil {
		return nil, err
	}
	chosen := make([]bool, in.N)
	for _, x := range U {
		chosen[x] = true
	}
	for {
		// Find a pair disjoint from the selection.
		disjoint := -1
		for k, p := range in.Pairs {
			if !chosen[p[0]] && !chosen[p[1]] {
				disjoint = k
				break
			}
		}
		if disjoint < 0 {
			break
		}
		x := in.Pairs[disjoint][0]
		// Inserting x is invalid only if some fully-chosen pair k′ has
		// i(k′) < x < j(k′); evict that pair's left element.
		evicted := false
		for _, p := range in.Pairs {
			if chosen[p[0]] && chosen[p[1]] && p[0] < x && x < p[1] {
				chosen[p[0]] = false
				evicted = true
				break
			}
		}
		chosen[x] = true
		_ = evicted
	}
	var out []int
	for x := 0; x < in.N; x++ {
		if chosen[x] {
			out = append(out, x)
		}
	}
	if err := in.Feasible(out); err != nil {
		return nil, fmt.Errorf("csop: normalization produced infeasible set: %w", err)
	}
	sort.Ints(out)
	return out, nil
}

// Exact solves CSoP by branch-and-bound over per-pair decisions
// (both/left/right), using the normalization lemma that some optimum keeps
// at least one element of every pair. Exponential worst case; intended for
// the reduction experiments.
func Exact(in *Instance) []int {
	n := len(in.Pairs)
	// Order pairs by interval length: tight pairs constrain most.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := in.Pairs[order[a]], in.Pairs[order[b]]
		return pa[1]-pa[0] < pb[1]-pb[0]
	})
	chosen := make([]bool, in.N)
	forbidden := make([]int, in.N) // count of both-pair intervals covering x
	// Seed the incumbent with the greedy solution: a strong initial bound
	// that prunes most of the search tree.
	best := Greedy(in)
	count := 0
	var dfs func(step int)
	record := func() {
		if count > len(best) {
			best = best[:0]
			for x := 0; x < in.N; x++ {
				if chosen[x] {
					best = append(best, x)
				}
			}
		}
	}
	canTake := func(x int) bool { return forbidden[x] == 0 }
	// upperBound adds, per remaining pair, 2 when taking both is still
	// conceivable (endpoints free, nothing chosen inside), else 1 when an
	// endpoint is free, else 0.
	upperBound := func(step int) int {
		ub := count
		for i := step; i < n; i++ {
			p := in.Pairs[order[i]]
			switch {
			case canTake(p[0]) && canTake(p[1]):
				open := true
				for l := p[0] + 1; l < p[1] && open; l++ {
					if chosen[l] {
						open = false
					}
				}
				if open {
					ub += 2
				} else {
					ub++
				}
			case canTake(p[0]) || canTake(p[1]):
				ub++
			}
		}
		return ub
	}
	dfs = func(step int) {
		if count+2*(n-step) <= len(best) || upperBound(step) <= len(best) {
			return
		}
		if step == n {
			record()
			return
		}
		k := order[step]
		p := in.Pairs[k]
		// Option both: requires nothing chosen inside and neither endpoint
		// forbidden; then forbid the open interval.
		if canTake(p[0]) && canTake(p[1]) {
			okInside := true
			for l := p[0] + 1; l < p[1] && okInside; l++ {
				if chosen[l] {
					okInside = false
				}
			}
			if okInside {
				chosen[p[0]], chosen[p[1]] = true, true
				count += 2
				for l := p[0] + 1; l < p[1]; l++ {
					forbidden[l]++
				}
				dfs(step + 1)
				for l := p[0] + 1; l < p[1]; l++ {
					forbidden[l]--
				}
				chosen[p[0]], chosen[p[1]] = false, false
				count -= 2
			}
		}
		// Option single element (left or right).
		for _, x := range p {
			if canTake(x) {
				chosen[x] = true
				count++
				dfs(step + 1)
				chosen[x] = false
				count--
			}
		}
	}
	dfs(0)
	sort.Ints(best)
	return best
}

// Greedy builds a normal solution cheaply: take both elements of each pair
// when feasible against already-forbidden intervals, else one element.
// Pairs are processed by increasing interval length.
func Greedy(in *Instance) []int {
	n := len(in.Pairs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := in.Pairs[order[a]], in.Pairs[order[b]]
		return pa[1]-pa[0] < pb[1]-pb[0]
	})
	chosen := make([]bool, in.N)
	forbidden := make([]int, in.N)
	for _, k := range order {
		p := in.Pairs[k]
		okInside := forbidden[p[0]] == 0 && forbidden[p[1]] == 0
		for l := p[0] + 1; l < p[1] && okInside; l++ {
			if chosen[l] {
				okInside = false
			}
		}
		if okInside {
			chosen[p[0]], chosen[p[1]] = true, true
			for l := p[0] + 1; l < p[1]; l++ {
				forbidden[l]++
			}
			continue
		}
		switch {
		case forbidden[p[0]] == 0:
			chosen[p[0]] = true
		case forbidden[p[1]] == 0:
			chosen[p[1]] = true
		}
	}
	var out []int
	for x := 0; x < in.N; x++ {
		if chosen[x] {
			out = append(out, x)
		}
	}
	return out
}
