package csop

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/score"
	"repro/internal/symbol"
)

// Reduction carries the Theorem 2 translation from a 3-MIS instance (a
// cubic graph) to a CSoP instance, retaining what is needed to map
// solutions back.
//
// Construction (0-based): after relabeling the graph so consecutive nodes
// are never adjacent, node u owns letters 5u..5u+4 of M = a₀…a₁₀ₙ₋₁ (the
// graph has N = 2n nodes). H gets a node pair {5u, 5u+4} for every node and
// an edge pair {5u+4−b, 5v+4−c} for every edge {u,v}, where v is neighbor
// number b of u and u is neighbor number c of v (b, c ∈ {1,2,3}).
type Reduction struct {
	// G is the relabeled graph (consecutive nodes non-adjacent).
	G *graph.Graph
	// Order maps original vertex → relabeled vertex.
	Order []int
	// Inst is the resulting CSoP instance.
	Inst *Instance
	// NodePair[u] indexes the node pair of relabeled node u in Inst.Pairs.
	NodePair []int
}

// FromCubic builds the Theorem 2 reduction for a cubic graph g. The
// randomness source drives the search for a non-consecutive ordering.
func FromCubic(g *graph.Graph, r *rand.Rand) (*Reduction, error) {
	if !g.IsRegular(3) {
		return nil, fmt.Errorf("csop: reduction requires a 3-regular graph")
	}
	ord, err := graph.NonConsecutiveOrder(g, r)
	if err != nil {
		return nil, err
	}
	// ord is a sequence of original vertices; position = new label.
	perm := make([]int, g.N)
	for pos, v := range ord {
		perm[v] = pos
	}
	h := g.Relabel(perm)
	inst := &Instance{N: 5 * g.N}
	red := &Reduction{G: h, Order: perm, Inst: inst, NodePair: make([]int, g.N)}
	for u := 0; u < h.N; u++ {
		red.NodePair[u] = len(inst.Pairs)
		inst.Pairs = append(inst.Pairs, [2]int{5 * u, 5*u + 4})
	}
	for _, e := range h.Edges() {
		u, v := e[0], e[1]
		b := neighborIndex(h, u, v)
		c := neighborIndex(h, v, u)
		lo := 5*u + 3 - b
		hi := 5*v + 3 - c
		inst.Pairs = append(inst.Pairs, [2]int{lo, hi})
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("csop: reduction built invalid instance: %w", err)
	}
	return red, nil
}

func neighborIndex(g *graph.Graph, u, v int) int {
	for i, w := range g.Neighbors(u) {
		if w == v {
			return i
		}
	}
	return -1
}

// ExtractIS maps a feasible CSoP solution back to an independent set of the
// relabeled graph: normalize, then take every node whose pair is fully
// chosen. The returned set has size ≥ |U| − 5n where n = N/2 nodes... see
// Theorem 2: |U| = 5·(N/2) + |W| for normal U.
func (red *Reduction) ExtractIS(U []int) ([]int, error) {
	norm, err := red.Inst.Normalize(U)
	if err != nil {
		return nil, err
	}
	chosen := make([]bool, red.Inst.N)
	for _, x := range norm {
		chosen[x] = true
	}
	var w []int
	for u := 0; u < red.G.N; u++ {
		p := red.Inst.Pairs[red.NodePair[u]]
		if chosen[p[0]] && chosen[p[1]] {
			w = append(w, u)
		}
	}
	if !graph.IsIndependentSet(red.G, w) {
		return nil, fmt.Errorf("csop: extracted set is not independent (reduction invariant violated)")
	}
	return w, nil
}

// SolutionFromIS builds the forward witness of Theorem 2: given an
// independent set W of the relabeled graph, a normal CSoP solution of size
// 5n + |W| (n = N/2): all last elements {5u+4}, one endpoint per edge pair
// chosen on the W side, and the first elements {5u} for u ∈ W.
func (red *Reduction) SolutionFromIS(W []int) ([]int, error) {
	if !graph.IsIndependentSet(red.G, W) {
		return nil, fmt.Errorf("csop: W is not independent")
	}
	inW := make([]bool, red.G.N)
	for _, u := range W {
		inW[u] = true
	}
	chosen := make([]bool, red.Inst.N)
	for u := 0; u < red.G.N; u++ {
		chosen[5*u+4] = true
		if inW[u] {
			chosen[5*u] = true
		}
	}
	// Every edge has an endpoint outside W; pick that endpoint's letter.
	for _, e := range red.G.Edges() {
		u, v := e[0], e[1]
		pick := u
		if inW[u] {
			pick = v
		}
		if inW[pick] {
			return nil, fmt.Errorf("csop: edge %v inside W", e)
		}
		other := u + v - pick
		b := neighborIndex(red.G, pick, other)
		chosen[5*pick+3-b] = true
	}
	var out []int
	for x := 0; x < red.Inst.N; x++ {
		if chosen[x] {
			out = append(out, x)
		}
	}
	if err := red.Inst.Feasible(out); err != nil {
		return nil, fmt.Errorf("csop: forward witness infeasible: %w", err)
	}
	return out, nil
}

// ToCSR renders the CSoP instance as a CSR instance (§3.2's restrictions):
// M is the single fragment a₀…a_{2n−1}, H holds one two-letter fragment per
// pair, and σ is the unit identity score. Solving the CSR instance and
// counting score reproduces |U|.
func (in *Instance) ToCSR() *core.Instance {
	al := symbol.NewAlphabet()
	letters := make([]symbol.Symbol, in.N)
	m := make(symbol.Word, in.N)
	for x := 0; x < in.N; x++ {
		letters[x] = al.Intern(fmt.Sprintf("a%d", x))
		m[x] = letters[x]
	}
	tb := score.NewTable()
	for x := 0; x < in.N; x++ {
		tb.Set(letters[x], letters[x], 1)
	}
	inst := &core.Instance{
		Name:  "csop",
		M:     []core.Fragment{{Name: "m", Regions: m}},
		Alpha: al,
		Sigma: tb,
	}
	for k, p := range in.Pairs {
		inst.H = append(inst.H, core.Fragment{
			Name:    fmt.Sprintf("p%d", k),
			Regions: symbol.Word{letters[p[0]], letters[p[1]]},
		})
	}
	return inst
}
