package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fragalign "repro"
	"repro/internal/encoding"
	"repro/internal/faultinject"
)

// newChaosServer builds a Server with explicit Options over a real batch
// pool, so chaos tests can arm both the pool-side injection points (via
// fragalign.WithFaultInjector) and the serve-side one (Options.Inject).
func newChaosServer(t *testing.T, sopts Options, opts ...fragalign.Option) *Server {
	t.Helper()
	opts = append([]fragalign.Option{fragalign.WithFourApproxSeed(true), fragalign.WithShards(4)}, opts...)
	bp := fragalign.NewBatchPool(fragalign.CSRImprove, opts...)
	t.Cleanup(bp.Close)
	sopts.Pool = AdaptBatchPool(bp)
	if sopts.Algorithm == "" {
		sopts.Algorithm = string(fragalign.CSRImprove)
	}
	s, err := New(sopts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChaosSolvePanicStreamsErrors: injected solver panics must surface as
// per-record errors in an otherwise healthy stream — the connection stays
// up, the other instances solve, the counters account for every instance,
// and the next request is unaffected.
func TestChaosSolvePanicStreamsErrors(t *testing.T) {
	s := newChaosServer(t, Options{},
		fragalign.WithFaultInjector(faultinject.New(1,
			faultinject.Rule{Point: faultinject.SolvePanic, Nth: 2})))
	ts := httptest.NewServer(s)
	defer ts.Close()

	ins := workloads(t, 6, 25)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	recs := readRecords(t, resp.Body)
	if len(recs) != len(ins) {
		t.Fatalf("got %d records, want %d", len(recs), len(ins))
	}
	panics, ok := 0, 0
	for _, rec := range recs {
		switch {
		case rec.Error == "":
			ok++
		case strings.Contains(rec.Error, "solver panic"):
			panics++
		default:
			t.Fatalf("record %d: unexpected error %q", rec.Index, rec.Error)
		}
	}
	if panics != 3 || ok != 3 {
		t.Fatalf("got %d panics / %d ok, want 3 / 3", panics, ok)
	}
	if f, k := s.ctr.instancesFail.Load(), s.ctr.instancesOK.Load(); f != 3 || k != 3 {
		t.Fatalf("counters after panics: failed=%d ok=%d, want 3/3", f, k)
	}

	// The 7th solve (odd injection count) proves the server shrugged it off.
	resp, err = http.Post(ts.URL+"/v1/solve", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, ins[:1])))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	recs = readRecords(t, resp.Body)
	if len(recs) != 1 || recs[0].Error != "" {
		t.Fatalf("request after panic storm: %+v", recs)
	}
}

// TestChaosDrainUnderStall is the drain httptest case with every stall
// point armed: shard-slow and queue-stall delays on the pool plus a
// serve-side handler stall. Drain must still flip health, refuse new work,
// and let the in-flight stalled request finish cleanly.
func TestChaosDrainUnderStall(t *testing.T) {
	s := newChaosServer(t,
		Options{Inject: faultinject.New(3,
			faultinject.Rule{Point: faultinject.ServeStall, Delay: 20 * time.Millisecond})},
		fragalign.WithFaultInjector(faultinject.New(2,
			faultinject.Rule{Point: faultinject.ShardSlow, Delay: 30 * time.Millisecond},
			faultinject.Rule{Point: faultinject.QueueStall, Delay: 10 * time.Millisecond})))
	ts := httptest.NewServer(s)
	defer ts.Close()

	ins := workloads(t, 2, 25)
	pr, pw := io.Pipe()
	type result struct {
		recs []encoding.ResultRecord
		code int
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/x-ndjson", pr)
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var r result
		r.code = resp.StatusCode
		r.err = encoding.ReadJSONLResults(resp.Body, func(rec encoding.ResultRecord) error {
			r.recs = append(r.recs, rec)
			return nil
		})
		resc <- r
	}()
	var buf bytes.Buffer
	if err := encoding.WriteJSONLine(&buf, ins[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return s.ctr.requests.Load() == 1 })

	s.StartDrain()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: %d, want 503", resp.StatusCode)
	}

	buf.Reset()
	if err := encoding.WriteJSONLine(&buf, ins[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	got := <-resc
	if got.err != nil {
		t.Fatalf("in-flight request under stalled drain: %v", got.err)
	}
	if got.code != http.StatusOK || len(got.recs) != 2 {
		t.Fatalf("in-flight request under stalled drain: code %d, %d records", got.code, len(got.recs))
	}
	for _, rec := range got.recs {
		if rec.Error != "" {
			t.Fatalf("record %d failed under stalled drain: %s", rec.Index, rec.Error)
		}
	}
	if s.InFlightRequests() != 0 {
		t.Fatalf("in-flight gauge %d after drain, want 0", s.InFlightRequests())
	}
}

// TestChaosDisconnectUnderStall is the mid-stream disconnect case with the
// shards parked in an effectively infinite injected stall: when the client
// vanishes, the stall must wake on the request context, every admitted
// instance must resolve as a failure, and nothing may wedge.
func TestChaosDisconnectUnderStall(t *testing.T) {
	s := newChaosServer(t, Options{},
		fragalign.WithFaultInjector(faultinject.New(5,
			faultinject.Rule{Point: faultinject.ShardSlow, Delay: time.Hour})))
	ts := httptest.NewServer(s)
	defer ts.Close()

	pr, pw := io.Pipe()
	go func() {
		pw.Write(jsonlBody(t, workloads(t, 2, 20)))
		// Keep the pipe open — the server must see disconnect, not EOF.
	}()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", pr)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()

	// Both instances admitted and parked inside the injected stall, then
	// the client dies.
	waitFor(t, 5*time.Second, func() bool { return s.ctr.requests.Load() == 1 })
	cancel()
	pw.Close()
	<-errc

	// The hour-long stall must collapse to the disconnect: both instances
	// resolve as failures long before any real deadline.
	waitFor(t, 10*time.Second, func() bool { return s.ctr.instancesFail.Load() == 2 })
	waitFor(t, 5*time.Second, func() bool { return s.InFlightRequests() == 0 })
}

// TestChaosTenantFairness is the fairness proof on a real server: a
// low-rate tenant sending one instance at a time is never rejected while a
// heavy tenant floods the queue, its latency stays within a constant factor
// of its solo latency, and the heavy tenant still gets the slack.
func TestChaosTenantFairness(t *testing.T) {
	s := newChaosServer(t, Options{},
		fragalign.WithShards(2), fragalign.WithQueueDepth(4))
	ts := httptest.NewServer(s)
	defer ts.Close()

	lightBody := jsonlBody(t, workloads(t, 1, 20))
	heavyBody := jsonlBody(t, workloads(t, 4, 20))
	// A rejected request's unread body makes the server close the
	// connection, so concurrent clients routinely see resets on reused
	// conns: post reports transport errors instead of failing the test.
	post := func(tenant string, body []byte) (int, error) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	const probes = 6
	lightRound := func() time.Duration {
		var worst time.Duration
		for i := 0; i < probes; i++ {
			start := time.Now()
			code, err := post("light", lightBody)
			for retries := 0; err != nil && retries < 5; retries++ {
				code, err = post("light", lightBody)
			}
			if err != nil {
				t.Fatalf("light request: %v", err)
			}
			if code != http.StatusOK {
				t.Fatalf("light request got %d, want 200", code)
			}
			if d := time.Since(start); d > worst {
				worst = d
			}
		}
		return worst
	}

	// Solo phase: the light tenant alone, worst-case request latency.
	solo := lightRound()

	// Load phase: four heavy clients flood the 4-slot queue (retrying
	// their 429s immediately) while the light tenant probes again.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var heavyOK, heavyRejected atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, err := post("heavy", heavyBody)
				switch {
				case err != nil: // transient transport churn under flood
					time.Sleep(2 * time.Millisecond)
				case code == http.StatusOK:
					heavyOK.Add(1)
				case code == http.StatusTooManyRequests:
					heavyRejected.Add(1)
					time.Sleep(2 * time.Millisecond)
				default:
					t.Errorf("heavy request got %d", code)
					return
				}
			}
		}()
	}
	// Let the flood saturate the queue before probing.
	waitFor(t, 10*time.Second, func() bool {
		return heavyOK.Load()+heavyRejected.Load() > 0
	})
	loaded := lightRound()
	close(stop)
	wg.Wait()

	detail := s.tenants.detail()
	light, heavy := detail["light"], detail["heavy"]
	if light.Rejected != 0 {
		t.Fatalf("light tenant rejected %d times under load; fair admission must admit its guaranteed share", light.Rejected)
	}
	if light.Admitted != 2*probes {
		t.Fatalf("light tenant admitted %d instances, want %d", light.Admitted, 2*probes)
	}
	if heavy.Admitted == 0 {
		t.Fatalf("heavy tenant admitted nothing; fairness must share slack, not starve")
	}
	// Constant-factor latency bound, deliberately loose: the guaranteed
	// share means the light tenant waits for queue turnover, never for the
	// heavy tenant's whole backlog. The absolute term absorbs scheduler
	// noise on slow CI machines.
	if limit := 40*solo + 500*time.Millisecond; loaded > limit {
		t.Fatalf("light tenant worst latency %v under load (solo %v): beyond constant-factor bound %v",
			loaded, solo, limit)
	}
	t.Logf("fairness: light solo=%v loaded=%v; heavy ok=%d rejected=%d",
		solo, loaded, heavyOK.Load(), heavyRejected.Load())
}

// TestChaosMetricsUnderInjection: partial and tenant detail surfaces stay
// coherent when chaos is armed — a deadline fired mid-improve with
// ?partial=1 lands as partial records, counted in /metrics.
func TestChaosMetricsUnderInjection(t *testing.T) {
	s := newChaosServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Large enough to still be improving when a tight deadline fires.
	ins := workloads(t, 2, 60)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve?partial=1&timeout=3ms",
		bytes.NewReader(jsonlBody(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "deg")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	recs := readRecords(t, resp.Body)
	if len(recs) != len(ins) {
		t.Fatalf("got %d records, want %d", len(recs), len(ins))
	}
	partials := 0
	for _, rec := range recs {
		if rec.Partial {
			partials++
			if rec.Error != "" {
				t.Fatalf("record %d both partial and errored: %s", rec.Index, rec.Error)
			}
			if rec.Score <= 0 {
				t.Fatalf("partial record %d has non-positive score %v", rec.Index, rec.Score)
			}
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if int(m.Server.PartialResults) != partials {
		t.Fatalf("metrics partial_results %d, records said %d", m.Server.PartialResults, partials)
	}
	tm, ok := m.TenantsDetail["deg"]
	if !ok {
		t.Fatalf("tenant detail missing 'deg': %+v", m.TenantsDetail)
	}
	if tm.Admitted != int64(len(ins)) || tm.InFlight != 0 {
		t.Fatalf("tenant detail for 'deg': %+v, want admitted=%d in_flight=0", tm, len(ins))
	}
}
