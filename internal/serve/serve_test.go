package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	fragalign "repro"
	"repro/internal/encoding"
)

func workloads(t *testing.T, n, regions int) []*fragalign.Instance {
	t.Helper()
	ins := make([]*fragalign.Instance, n)
	for i := range ins {
		cfg := fragalign.DefaultGenConfig(int64(700 + i))
		cfg.Regions = regions
		ins[i] = fragalign.Generate(cfg).Instance
		ins[i].Name = fmt.Sprintf("w%d", i)
	}
	return ins
}

func jsonlBody(t *testing.T, ins []*fragalign.Instance) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, in := range ins {
		if err := encoding.WriteJSONLine(&buf, in); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func readRecords(t *testing.T, r io.Reader) []encoding.ResultRecord {
	t.Helper()
	var recs []encoding.ResultRecord
	if err := encoding.ReadJSONLResults(r, func(rec encoding.ResultRecord) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func newRealServer(t *testing.T, opts ...fragalign.Option) (*Server, *fragalign.BatchPool) {
	t.Helper()
	opts = append([]fragalign.Option{fragalign.WithFourApproxSeed(true), fragalign.WithShards(4)}, opts...)
	bp := fragalign.NewBatchPool(fragalign.CSRImprove, opts...)
	t.Cleanup(bp.Close)
	s, err := New(Options{Pool: AdaptBatchPool(bp), Algorithm: string(fragalign.CSRImprove)})
	if err != nil {
		t.Fatal(err)
	}
	return s, bp
}

// TestSolveRoundTrip pins the serving contract: a POST /v1/solve stream
// resolves to exactly the records SolveBatch produces for the same input,
// in submission order.
func TestSolveRoundTrip(t *testing.T) {
	s, _ := newRealServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	ins := workloads(t, 6, 40)
	want, err := fragalign.SolveBatch(context.Background(), ins, fragalign.CSRImprove,
		fragalign.WithFourApproxSeed(true))
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/solve", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	recs := readRecords(t, resp.Body)
	if len(recs) != len(ins) {
		t.Fatalf("got %d records, want %d", len(recs), len(ins))
	}
	for i, rec := range recs {
		if rec.Index != i {
			t.Fatalf("record %d has index %d; want submission order", i, rec.Index)
		}
		if rec.Error != "" {
			t.Fatalf("record %d failed: %s", i, rec.Error)
		}
		if rec.Name != ins[i].Name || rec.Algorithm != string(fragalign.CSRImprove) {
			t.Fatalf("record %d identity mismatch: %+v", i, rec)
		}
		if rec.Score != want[i].Score {
			t.Fatalf("record %d score %v, want %v", i, rec.Score, want[i].Score)
		}
		if rec.Matches != len(want[i].Solution.Matches) {
			t.Fatalf("record %d matches %d, want %d", i, rec.Matches, len(want[i].Solution.Matches))
		}
		if rec.Rounds != want[i].Stats.Rounds {
			t.Fatalf("record %d rounds %d, want %d", i, rec.Rounds, want[i].Stats.Rounds)
		}
	}
}

// TestSolveCompletionOrder: ?order=completion streams the same record set
// as submission order, just not necessarily sorted.
func TestSolveCompletionOrder(t *testing.T) {
	s, _ := newRealServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	ins := workloads(t, 8, 30)
	resp, err := http.Post(ts.URL+"/v1/solve?order=completion", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	recs := readRecords(t, resp.Body)
	if len(recs) != len(ins) {
		t.Fatalf("got %d records, want %d", len(recs), len(ins))
	}
	seen := make(map[int]bool)
	for _, rec := range recs {
		if rec.Error != "" {
			t.Fatalf("record %d failed: %s", rec.Index, rec.Error)
		}
		if seen[rec.Index] {
			t.Fatalf("index %d emitted twice", rec.Index)
		}
		seen[rec.Index] = true
	}
	for i := range ins {
		if !seen[i] {
			t.Fatalf("index %d missing from completion-order stream", i)
		}
	}
}

// TestEmptyAndMalformedInput: empty body is an empty 200 stream; garbage
// with no prior output is a 400.
func TestEmptyAndMalformedInput(t *testing.T) {
	s, _ := newRealServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/solve", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty input: status %d, want 200", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/solve", "application/x-ndjson", strings.NewReader("{not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed input: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/solve?order=sideways", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad order: status %d, want 400", resp.StatusCode)
	}
}

// fakeTicket resolves immediately with res, or blocks until its context
// fires and resolves with the context error.
type fakeTicket struct {
	ctx context.Context
	res *fragalign.Result
}

func (t *fakeTicket) Wait() (*fragalign.Result, error) {
	if t.res != nil {
		return t.res, nil
	}
	<-t.ctx.Done()
	return nil, t.ctx.Err()
}

// fakePool is a deterministic backend: optionally rejecting all TrySubmits
// and/or blocking every ticket on its instance context.
type fakePool struct {
	reject bool // TrySubmit always ErrQueueFull
	block  bool // tickets resolve only on context cancellation

	mu   sync.Mutex
	ctxs []context.Context
}

func (p *fakePool) Submit(ctx context.Context, in *fragalign.Instance) (Ticket, error) {
	p.mu.Lock()
	p.ctxs = append(p.ctxs, ctx)
	p.mu.Unlock()
	if p.block {
		return &fakeTicket{ctx: ctx}, nil
	}
	return &fakeTicket{res: &fragalign.Result{Score: 1, Wall: time.Millisecond}}, nil
}

func (p *fakePool) TrySubmit(ctx context.Context, in *fragalign.Instance) (Ticket, error) {
	if p.reject {
		return nil, fragalign.ErrQueueFull
	}
	return p.Submit(ctx, in)
}

func (p *fakePool) Counters() fragalign.BatchCounters {
	return fragalign.BatchCounters{QueueCap: 8, ShardBusy: []time.Duration{0}}
}

func (p *fakePool) Shards() int { return 1 }

func (p *fakePool) contexts() []context.Context {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]context.Context(nil), p.ctxs...)
}

// TestAdmission429: a tenant at its in-flight cap is refused before any
// response byte is written — 429, Retry-After set, nothing streamed — while
// an unrelated tenant still gets in.
func TestAdmission429(t *testing.T) {
	fp := &fakePool{block: true}
	s, err := New(Options{Pool: fp, Algorithm: "x", TenantMaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// First request from t1 is admitted and parks on its blocked ticket
	// (released by canceling the client context at the end).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	go pw.Write(jsonlBody(t, workloads(t, 1, 20)))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "t1")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return len(fp.contexts()) == 1 })

	// Second t1 request hits the per-tenant cap: whole-request 429. (The
	// ?timeout lets admitted requests resolve their blocked tickets.)
	post := func(tenant string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve?timeout=50ms",
			bytes.NewReader(jsonlBody(t, workloads(t, 1, 20))))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post("t1")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got, _ := io.ReadAll(resp.Body); !strings.Contains(string(got), "queue full") {
		t.Fatalf("429 body %q", got)
	}
	if n := s.ctr.rejected.Load(); n != 1 {
		t.Fatalf("rejected counter %d, want 1", n)
	}

	// A different tenant is unaffected by t1's cap.
	resp2 := post("t2")
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusTooManyRequests {
		t.Fatal("t2 refused because t1 is at its cap")
	}

	cancel()
	pw.Close()
	<-done
}

// TestAdmissionSlackQueueFull exercises the slack path end to end: an
// at-share tenant's request falls back to non-blocking submission and is
// refused when the queue is actually full, with the reservation rolled
// back.
func TestAdmissionSlackQueueFull(t *testing.T) {
	// TrySubmit always fails (reject), Submit admits but blocks tickets:
	// capacity 8, tenant "heavy" parks 4 in-flight instances (exactly its
	// 8/2 share once "light" is active) across two held requests — two
	// instances each, so every reader returns to its body read and the
	// server can notice client disconnects at cleanup — and "light" parks
	// 1. heavy's next request is at share with global headroom → slack →
	// TrySubmit → 429.
	fp := &fakePool{block: true, reject: true}
	s, err := New(Options{Pool: fp, Algorithm: "x"}) // capacity = fake QueueCap = 8
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	hold := func(tenant string, n int) func() {
		ctx, cancel := context.WithCancel(context.Background())
		pr, pw := io.Pipe()
		go pw.Write(jsonlBody(t, workloads(t, n, 20)))
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", pr)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		return func() { cancel(); pw.Close(); <-done }
	}
	finishHeavy1 := hold("heavy", 2)
	defer finishHeavy1()
	waitFor(t, 5*time.Second, func() bool { return len(fp.contexts()) == 2 })
	finishHeavy2 := hold("heavy", 2)
	defer finishHeavy2()
	waitFor(t, 5*time.Second, func() bool { return len(fp.contexts()) == 4 })
	finishLight := hold("light", 1)
	defer finishLight()
	waitFor(t, 5*time.Second, func() bool { return len(fp.contexts()) == 5 })

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve",
		bytes.NewReader(jsonlBody(t, workloads(t, 1, 20))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "heavy")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("slack-path status %d, want 429", resp.StatusCode)
	}
	// The failed slack reservation must roll back: heavy still shows
	// exactly 4 in-flight instances, and the rejection is booked to it.
	d := s.tenants.detail()
	if h := d["heavy"]; h.InFlight != 4 || h.Rejected != 1 {
		t.Fatalf("heavy after slack rejection: %+v", h)
	}
	if l := d["light"]; l.InFlight != 1 || l.Rejected != 0 {
		t.Fatalf("light after heavy's rejection: %+v", l)
	}
}

// TestAdmitFirstDecisions pins the fair-share decision table at the unit
// level: guaranteed below share, slack at share with headroom, reject over
// cap / over capacity / over the 2×capacity guaranteed bound, and
// weight-proportional shares.
func TestAdmitFirstDecisions(t *testing.T) {
	const capacity = 8
	tc := newTenantCache(16, map[string]float64{"vip": 3}, 1)
	park := func(key string, n int) *tenantEntry {
		e := tc.acquire(key)
		for i := 0; i < n; i++ {
			tc.reserve(e)
		}
		return e
	}
	decide := func(e *tenantEntry, maxInflight int) admitDecision {
		d, _ := tc.admitFirst(e, capacity, maxInflight)
		if d != admitReject {
			// Roll the probe's reservation back so decisions stay
			// independent.
			tc.mu.Lock()
			e.inflight--
			tc.total--
			e.admitted--
			tc.mu.Unlock()
		}
		return d
	}

	// Solo tenant: whole capacity is its share.
	solo := park("solo", 0)
	if d := decide(solo, 0); d != admitGuaranteed {
		t.Fatalf("fresh solo tenant: %v, want guaranteed", d)
	}
	park("solo", capacity-1) // share-1 in flight: still guaranteed
	if d := decide(solo, 0); d != admitGuaranteed {
		t.Fatalf("solo below share: %v, want guaranteed", d)
	}
	tc.reserve(solo) // at share AND at capacity: no slack left
	if d := decide(solo, 0); d != admitReject {
		t.Fatalf("solo at capacity: %v, want reject", d)
	}
	for i := 0; i < capacity; i++ {
		tc.finishInstance(solo)
	}

	// Two equal tenants split the capacity 4/4; the under-share one is
	// guaranteed even while the other holds 6.
	heavy := park("heavy", 6)
	light := park("light", 1)
	if d := decide(light, 0); d != admitGuaranteed {
		t.Fatalf("under-share tenant: %v, want guaranteed", d)
	}
	if d := decide(heavy, 0); d != admitSlack {
		t.Fatalf("over-share tenant with headroom: %v, want slack", d)
	}
	park("heavy", 1) // total now 8 = capacity: no slack
	if d := decide(heavy, 0); d != admitReject {
		t.Fatalf("over-share tenant without headroom: %v, want reject", d)
	}
	// The under-share tenant still gets the guaranteed path past a full
	// queue — the point of fair admission.
	if d := decide(light, 0); d != admitGuaranteed {
		t.Fatalf("under-share tenant at full queue: %v, want guaranteed", d)
	}

	// Per-tenant cap trumps share.
	if d := decide(light, 1); d != admitReject {
		t.Fatalf("tenant at its cap: %v, want reject", d)
	}

	// Weighted share: vip (weight 3) vs heavy+light (1 each) gets
	// 8·3/5 = 4 guaranteed slots even with the queue saturated; its 5th
	// would be over share.
	vip := park("vip", 3)
	if d := decide(vip, 0); d != admitGuaranteed {
		t.Fatalf("weighted tenant below its share: %v, want guaranteed", d)
	}
	park("vip", 1)
	if d := decide(vip, 0); d != admitReject {
		t.Fatalf("weighted tenant at share, queue full: %v, want reject", d)
	}

	// Hard global bound: guaranteed admission stops at 2×capacity.
	fresh := park("glutton", 0)
	tc.mu.Lock()
	for tc.total < 2*capacity {
		fresh.inflight++
		tc.total++
	}
	tc.mu.Unlock()
	newbie := park("newbie", 0)
	if d := decide(newbie, 0); d != admitReject {
		t.Fatalf("fresh tenant past 2×capacity: %v, want reject", d)
	}
}

// TestTenantEvictionPinning is the regression test for the evict-then-
// recreate race: an entry held by a live request must never be evicted, so
// two concurrent requests of one tenant always share one interner.
func TestTenantEvictionPinning(t *testing.T) {
	tc := newTenantCache(1, nil, 1)
	a1 := tc.acquire("a")
	b := tc.acquire("b") // over the bound: "a" is pinned, so no eviction
	a2 := tc.acquire("a")
	if a1 != a2 {
		t.Fatal("concurrent requests of one tenant got different entries")
	}
	if a1.si != a2.si {
		t.Fatal("concurrent requests of one tenant got different interners")
	}
	tc.release(a1)
	tc.release(a2)
	tc.release(b)
	// With "a" idle, the bound applies again: acquiring "c" evicts one.
	c := tc.acquire("c")
	if tc.len() > 2 {
		t.Fatalf("cache size %d after eviction opportunity", tc.len())
	}
	tc.release(c)

	// Hammer the invariant under -race: for any key, every entry held at
	// the same moment must be identical.
	tc2 := newTenantCache(2, nil, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g%4)
			for i := 0; i < 500; i++ {
				e1 := tc2.acquire(key)
				e2 := tc2.acquire(key)
				if e1 != e2 {
					t.Errorf("key %s: concurrent acquires diverged", key)
				}
				tc2.release(e2)
				tc2.release(e1)
			}
		}()
	}
	wg.Wait()
}

// TestPerRequestDeadline: ?timeout= gives every instance of the request
// its own solve deadline; an impossible deadline yields per-instance error
// records, not a dead stream.
func TestPerRequestDeadline(t *testing.T) {
	s, _ := newRealServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	ins := workloads(t, 4, 30)
	resp, err := http.Post(ts.URL+"/v1/solve?timeout=1ns", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	recs := readRecords(t, resp.Body)
	if len(recs) != len(ins) {
		t.Fatalf("got %d records, want %d", len(recs), len(ins))
	}
	for _, rec := range recs {
		if rec.Error == "" {
			t.Fatalf("record %d solved under a 1ns deadline", rec.Index)
		}
		if !strings.Contains(rec.Error, context.DeadlineExceeded.Error()) {
			t.Fatalf("record %d error %q, want deadline exceeded", rec.Index, rec.Error)
		}
	}

	resp, err = http.Post(ts.URL+"/v1/solve?timeout=bogus", "application/x-ndjson",
		strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d, want 400", resp.StatusCode)
	}
}

// TestMidStreamDisconnect: when the client goes away mid-stream, every
// per-instance context the server handed the pool must cancel, and the
// handler must still drain its tickets (failures land in the metrics).
func TestMidStreamDisconnect(t *testing.T) {
	fp := &fakePool{block: true}
	s, err := New(Options{Pool: fp, Algorithm: "x"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Body is a pipe held open: the server admits the instances it has
	// received, their tickets block, then the client vanishes.
	pr, pw := io.Pipe()
	go func() {
		pw.Write(jsonlBody(t, workloads(t, 2, 20)))
		// Keep the pipe open — the server must see disconnect, not EOF.
	}()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", pr)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until both instances are admitted, then kill the client.
	deadline := time.After(5 * time.Second)
	for len(fp.contexts()) < 2 {
		select {
		case <-deadline:
			t.Fatal("instances never reached the pool")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	pw.Close()
	<-errc

	for i, ictx := range fp.contexts() {
		select {
		case <-ictx.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("instance %d context not canceled after client disconnect", i)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return s.ctr.instancesFail.Load() == 2 })
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrain: StartDrain flips /healthz to 503 and refuses new solves while
// an in-flight request runs to completion.
func TestDrain(t *testing.T) {
	s, _ := newRealServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", code)
	}

	// Start a request, hold its body open so it is in flight across the
	// drain flip, then finish it: it must complete normally.
	ins := workloads(t, 2, 30)
	pr, pw := io.Pipe()
	type result struct {
		recs []encoding.ResultRecord
		code int
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/x-ndjson", pr)
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var r result
		r.code = resp.StatusCode
		r.err = encoding.ReadJSONLResults(resp.Body, func(rec encoding.ResultRecord) error {
			r.recs = append(r.recs, rec)
			return nil
		})
		resc <- r
	}()
	if err := func() error {
		var buf bytes.Buffer
		if err := encoding.WriteJSONLine(&buf, ins[0]); err != nil {
			return err
		}
		_, err := pw.Write(buf.Bytes())
		return err
	}(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return s.ctr.requests.Load() == 1 })

	s.StartDrain()
	if code := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", code)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 without Retry-After")
	}

	// The in-flight request finishes cleanly under drain.
	var buf bytes.Buffer
	if err := encoding.WriteJSONLine(&buf, ins[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	got := <-resc
	if got.err != nil {
		t.Fatalf("in-flight request under drain: %v", got.err)
	}
	if got.code != http.StatusOK || len(got.recs) != 2 {
		t.Fatalf("in-flight request under drain: code %d, %d records", got.code, len(got.recs))
	}
	for _, rec := range got.recs {
		if rec.Error != "" {
			t.Fatalf("record %d failed under drain: %s", rec.Index, rec.Error)
		}
	}
	if n := s.ctr.drainRejected.Load(); n != 1 {
		t.Fatalf("drain_rejected %d, want 1", n)
	}
}

// TestMetricsSnapshot: the /metrics document carries the pool, server, and
// improve sections with live values after traffic.
func TestMetricsSnapshot(t *testing.T) {
	s, _ := newRealServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	ins := workloads(t, 3, 30)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("metrics content type %q", ct)
	}
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Pool.Shards != 4 || m.Pool.QueueCap <= 0 || len(m.Pool.ShardBusyMS) != 4 {
		t.Fatalf("pool section: %+v", m.Pool)
	}
	if m.Pool.Completed != 3 || m.Pool.Submitted != 3 {
		t.Fatalf("pool counters: %+v", m.Pool)
	}
	if m.Server.Requests != 1 || m.Server.InstancesSolved != 3 || m.Server.RecordsWritten != 3 {
		t.Fatalf("server section: %+v", m.Server)
	}
	if m.Server.BytesStreamed <= 0 || m.Server.MeanSolveMS < 0 || m.Server.UptimeSeconds <= 0 {
		t.Fatalf("server derived values: %+v", m.Server)
	}
	if m.Improve.Rounds <= 0 || m.Improve.Evaluated <= 0 {
		t.Fatalf("improve section: %+v", m.Improve)
	}
}

// TestTenantAffinity: two requests sharing a tenant and σ content compile
// the alphabet once (one σ-cache miss, then hits); anonymous requests
// recompile per request.
func TestTenantAffinity(t *testing.T) {
	s, bp := newRealServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(tenant string) {
		cfg := fragalign.DefaultGenConfig(900) // same seed: same σ content
		cfg.Regions = 30
		in := fragalign.Generate(cfg).Instance
		in.Name = "affine"
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve",
			bytes.NewReader(jsonlBody(t, []*fragalign.Instance{in})))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	post("acme")
	base := bp.Counters()
	if base.SigmaMisses != 1 {
		t.Fatalf("first tenant request: %d σ misses, want 1", base.SigmaMisses)
	}
	post("acme")
	post("acme")
	after := bp.Counters()
	if after.SigmaMisses != 1 {
		t.Fatalf("repeat tenant requests recompiled σ: %d misses", after.SigmaMisses)
	}
	if after.SigmaHits < base.SigmaHits+2 {
		t.Fatalf("σ hits %d, want ≥ %d", after.SigmaHits, base.SigmaHits+2)
	}

	post("") // anonymous: fresh interner, fresh table identity, new miss
	if c := bp.Counters(); c.SigmaMisses != 2 {
		t.Fatalf("anonymous request: %d σ misses, want 2", c.SigmaMisses)
	}

	if s.tenants.len() != 1 {
		t.Fatalf("tenant cache size %d, want 1", s.tenants.len())
	}
}
