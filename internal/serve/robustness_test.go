package serve

// Robustness-surface tests: the seeded-mode request override, the
// memory-budget 413, the MaxBody 413, and structured 400s for malformed
// instances — every reject a client can hit carries a machine-readable
// JSON body and bumps its own /metrics counter.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fragalign "repro"
)

func postSolve(t *testing.T, url, query string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve"+query, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func serverMetrics(t *testing.T, url string) ServerMetrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m.Server
}

// TestSeededQueryOverride: ?seeded=0/1 reaches the pool as a per-submission
// context override, absence leaves the pool default untouched, and anything
// else is a 400 before any instance is submitted.
func TestSeededQueryOverride(t *testing.T) {
	fp := &fakePool{}
	s, err := New(Options{Pool: fp, Algorithm: "x"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := jsonlBody(t, workloads(t, 1, 20))

	for _, tc := range []struct {
		query   string
		wantOn  bool
		wantSet bool
	}{
		{"?seeded=1", true, true},
		{"?seeded=0", false, true},
		{"", false, false},
	} {
		before := len(fp.contexts())
		resp, out := postSolve(t, ts.URL, tc.query, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d: %s", tc.query, resp.StatusCode, out)
		}
		ctxs := fp.contexts()
		if len(ctxs) != before+1 {
			t.Fatalf("%q: %d submissions, want 1", tc.query, len(ctxs)-before)
		}
		on, ok := fragalign.SeededFromContext(ctxs[len(ctxs)-1])
		if ok != tc.wantSet || on != tc.wantOn {
			t.Fatalf("%q: seeded context = (%v, %v), want (%v, %v)",
				tc.query, on, ok, tc.wantOn, tc.wantSet)
		}
	}

	before := len(fp.contexts())
	resp, _ := postSolve(t, ts.URL, "?seeded=yes", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seeded value: status %d, want 400", resp.StatusCode)
	}
	if len(fp.contexts()) != before {
		t.Fatal("bad seeded value still submitted instances")
	}
}

// TestSeededSolvesDiffer closes the loop through a real pool: the same
// instance solved ?seeded=0 vs ?seeded=1 exercises different generation
// paths (both must succeed; this is the ROADMAP 9b serving surface).
func TestSeededSolvesDiffer(t *testing.T) {
	s, _ := newRealServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := jsonlBody(t, workloads(t, 2, 40))

	for _, q := range []string{"?seeded=0", "?seeded=1"} {
		resp, out := postSolve(t, ts.URL, q, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, resp.StatusCode, out)
		}
		recs := readRecords(t, bytes.NewReader(out))
		if len(recs) != 2 {
			t.Fatalf("%s: %d records, want 2", q, len(recs))
		}
		for _, rec := range recs {
			if rec.Error != "" {
				t.Fatalf("%s: record %d failed: %s", q, rec.Index, rec.Error)
			}
		}
	}
}

// TestOverBudget413 pins the whole-request memory reject: the first instance
// over the pool budget answers 413 with the full cost breakdown, nothing is
// streamed, and both the server and pool over_budget counters move.
func TestOverBudget413(t *testing.T) {
	ins := workloads(t, 1, 40)
	est := fragalign.EstimateMem(ins[0])
	s, _ := newRealServer(t, fragalign.WithMemBudget(est.Total()/2))
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, out := postSolve(t, ts.URL, "", jsonlBody(t, ins))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var doc struct {
		Error         string `json:"error"`
		EstimateBytes int64  `json:"estimate_bytes"`
		SigmaBytes    int64  `json:"sigma_bytes"`
		ScratchBytes  int64  `json:"scratch_bytes"`
		StateBytes    int64  `json:"state_bytes"`
		BudgetBytes   int64  `json:"budget_bytes"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("413 body is not JSON: %v: %s", err, out)
	}
	if !strings.Contains(doc.Error, "memory budget") {
		t.Fatalf("413 error %q does not name the budget", doc.Error)
	}
	// The server estimates the instance as re-interned from the wire (its
	// symbol IDs, hence σ dimension, can differ from the generator's), so
	// assert consistency rather than equality with the local estimate.
	if doc.BudgetBytes != est.Total()/2 {
		t.Fatalf("budget_bytes = %d, want %d", doc.BudgetBytes, est.Total()/2)
	}
	if doc.EstimateBytes <= doc.BudgetBytes {
		t.Fatalf("413 numbers inconsistent: %+v", doc)
	}
	if doc.SigmaBytes+doc.ScratchBytes+doc.StateBytes != doc.EstimateBytes {
		t.Fatalf("413 breakdown does not sum: %+v", doc)
	}
	m := serverMetrics(t, ts.URL)
	if m.OverBudget != 1 {
		t.Fatalf("server over_budget = %d, want 1", m.OverBudget)
	}
}

// TestOverBudgetMidStream: once records are flowing, a later over-budget
// instance degrades to a per-record error instead of poisoning the stream.
func TestOverBudgetMidStream(t *testing.T) {
	small := workloads(t, 1, 20)[0]
	big := workloads(t, 2, 160)[1]
	estSmall, estBig := fragalign.EstimateMem(small), fragalign.EstimateMem(big)
	if estBig.Total() <= estSmall.Total()*2 {
		t.Fatalf("workload sizing broke: big %v vs small %v", estBig.Total(), estSmall.Total())
	}
	s, _ := newRealServer(t, fragalign.WithMemBudget(estSmall.Total()*2))
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, out := postSolve(t, ts.URL, "", jsonlBody(t, []*fragalign.Instance{small, big}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (stream already committed): %s", resp.StatusCode, out)
	}
	recs := readRecords(t, bytes.NewReader(out))
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	if recs[0].Error != "" {
		t.Fatalf("small instance failed: %s", recs[0].Error)
	}
	if !strings.Contains(recs[1].Error, "memory budget") {
		t.Fatalf("big instance error %q does not name the budget", recs[1].Error)
	}
}

// TestMaxBody413 pins the ingest size limit: an oversize body is a JSON 413
// naming the limit, counted under too_large.
func TestMaxBody413(t *testing.T) {
	s, err := New(Options{Pool: &fakePool{}, Algorithm: "x", MaxBody: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, out := postSolve(t, ts.URL, "", bytes.Repeat([]byte("x"), 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, out)
	}
	var doc struct {
		Error        string `json:"error"`
		MaxBodyBytes int64  `json:"max_body_bytes"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("413 body is not JSON: %v: %s", err, out)
	}
	if doc.MaxBodyBytes != 64 {
		t.Fatalf("max_body_bytes = %d, want 64", doc.MaxBodyBytes)
	}
	if m := serverMetrics(t, ts.URL); m.TooLarge != 1 {
		t.Fatalf("server too_large = %d, want 1", m.TooLarge)
	}
}

// TestMalformedInstance400 pins the structured ingest rejects: duplicate
// fragment ids, fragments without scores, and non-finite score values all
// answer a JSON 400 naming the defect, counted under bad_input.
func TestMalformedInstance400(t *testing.T) {
	s, err := New(Options{Pool: &fakePool{}, Algorithm: "x"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	for name, tc := range map[string]struct {
		line string
		want string
	}{
		"duplicate-fragment-id": {
			`{"name":"dup","scores":[{"a":"x","b":"x","v":1}],"h":[{"name":"f1","regions":["x"]},{"name":"f1","regions":["x"]}],"m":[]}`,
			"duplicate",
		},
		"empty-score-table": {
			`{"name":"noscores","scores":[],"h":[{"name":"f1","regions":["x"]}],"m":[]}`,
			"empty score table",
		},
		"not-json": {
			`{not json`,
			"",
		},
	} {
		t.Run(name, func(t *testing.T) {
			resp, out := postSolve(t, ts.URL, "", []byte(tc.line+"\n"))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, out)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var doc struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(out, &doc); err != nil {
				t.Fatalf("400 body is not JSON: %v: %s", err, out)
			}
			if !strings.Contains(doc.Error, tc.want) {
				t.Fatalf("400 error %q does not mention %q", doc.Error, tc.want)
			}
		})
	}
	if m := serverMetrics(t, ts.URL); m.BadInput != 3 {
		t.Fatalf("server bad_input = %d, want 3", m.BadInput)
	}
}
