package serve

import (
	"sync/atomic"
	"time"

	fragalign "repro"
)

// counters is the server-side half of the /metrics surface: request
// admission outcomes, instance outcomes, and the ImproveStats aggregates
// accumulated over every solved instance. All fields are cumulative since
// server start.
type counters struct {
	inflight       atomic.Int64 // /v1/solve requests currently processing
	requests       atomic.Int64 // /v1/solve requests accepted for processing
	rejected       atomic.Int64 // whole requests refused 429 (queue full)
	drainRejected  atomic.Int64 // requests refused 503 while draining
	overBudget     atomic.Int64 // whole requests refused 413 (memory budget)
	tooLarge       atomic.Int64 // whole requests refused 413 (body over MaxBody)
	badInput       atomic.Int64 // whole requests refused 400 (malformed input)
	instancesOK    atomic.Int64 // instances solved
	instancesFail  atomic.Int64 // instances that resolved with an error
	solveNanos     atomic.Int64 // cumulative Result.Wall over solved instances
	rounds         atomic.Int64
	evaluated      atomic.Int64
	accepted       atomic.Int64
	popped         atomic.Int64
	resimulated    atomic.Int64
	skipped        atomic.Int64
	enumRefreshed  atomic.Int64
	enumReused     atomic.Int64
	bytesStreamed  atomic.Int64 // result bytes written to clients
	recordsWritten atomic.Int64 // result records written to clients
	partials       atomic.Int64 // instances resolved as partial (graceful degradation)
}

func (c *counters) addImprove(st *fragalign.ImproveStats) {
	c.rounds.Add(int64(st.Rounds))
	c.evaluated.Add(int64(st.Evaluated))
	c.accepted.Add(int64(st.Accepted))
	c.popped.Add(int64(st.Popped))
	c.resimulated.Add(int64(st.Resimulated))
	c.skipped.Add(int64(st.Skipped))
	c.enumRefreshed.Add(int64(st.EnumRefreshed))
	c.enumReused.Add(int64(st.EnumReused))
}

// Metrics is the JSON document served at /metrics. The schema is part of
// the serving contract (documented in README "Serving"); fields only get
// added, never renamed.
type Metrics struct {
	Pool    PoolMetrics    `json:"pool"`
	Server  ServerMetrics  `json:"server"`
	Improve ImproveMetrics `json:"improve"`
	// TenantsDetail breaks admission and σ-affinity down per tenant key.
	// Bounded: entries live exactly as long as the σ-affinity LRU keeps the
	// tenant, so the map cannot grow past the tenant-cache bound (plus
	// currently active tenants). Unidentified requests are not listed.
	TenantsDetail map[string]TenantMetrics `json:"tenants_detail"`
}

// TenantMetrics is one tenant's live admission and σ-affinity state.
type TenantMetrics struct {
	InFlight int     `json:"in_flight"` // instances submitted, unresolved
	Weight   float64 `json:"weight"`
	Admitted int64   `json:"admitted"` // cumulative instances admitted
	Rejected int64   `json:"rejected"` // cumulative requests refused 429
	// SigmaHits / SigmaMisses count the tenant interner's σ-content cache
	// traffic: misses are fresh alphabet/table builds, hits reuse the
	// tenant's interned identity (what the batch pool's compile cache
	// keys on).
	SigmaHits   int64 `json:"sigma_hits"`
	SigmaMisses int64 `json:"sigma_misses"`
}

// PoolMetrics mirrors fragalign.BatchCounters plus derived rates.
type PoolMetrics struct {
	Shards      int   `json:"shards"`
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	InFlight    int   `json:"in_flight"`
	Submitted   int64 `json:"submitted"`
	Rejected    int64 `json:"rejected"`
	OverBudget  int64 `json:"over_budget"` // submissions the memory-budget gate refused
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	SigmaHits   int64 `json:"sigma_hits"`
	SigmaMisses int64 `json:"sigma_misses"`
	// SigmaHitRate is hits/(hits+misses), 0 when no traffic.
	SigmaHitRate float64   `json:"sigma_hit_rate"`
	ShardBusyMS  []float64 `json:"shard_busy_ms"`
}

// ServerMetrics is the HTTP layer's own view.
type ServerMetrics struct {
	Draining         bool    `json:"draining"`
	RequestsInFlight int64   `json:"requests_in_flight"`
	Requests         int64   `json:"requests"`
	RejectedRequests int64   `json:"rejected_requests"` // 429s
	DrainRejected    int64   `json:"drain_rejected"`    // 503s while draining
	OverBudget       int64   `json:"over_budget"`       // 413s from the memory-budget gate
	TooLarge         int64   `json:"too_large"`         // 413s from MaxBody
	BadInput         int64   `json:"bad_input"`         // 400s from malformed input
	InstancesSolved  int64   `json:"instances_solved"`
	InstancesFailed  int64   `json:"instances_failed"`
	SolveMSTotal     float64 `json:"solve_ms_total"` // sum of Result.Wall
	MeanSolveMS      float64 `json:"mean_solve_ms"`
	RecordsWritten   int64   `json:"records_written"`
	BytesStreamed    int64   `json:"bytes_streamed"`
	PartialResults   int64   `json:"partial_results"` // gracefully degraded instances
	Tenants          int     `json:"tenants"`         // live σ-affinity interners
	UptimeSeconds    float64 `json:"uptime_seconds"`
}

// ImproveMetrics aggregates fragalign.ImproveStats over all solved
// instances: the solver's work counters, exported so a fleet can watch
// cache-efficiency trends (popped vs resimulated vs skipped, enum reuse)
// under live traffic.
type ImproveMetrics struct {
	Rounds        int64 `json:"rounds"`
	Evaluated     int64 `json:"evaluated"`
	Accepted      int64 `json:"accepted"`
	Popped        int64 `json:"popped"`
	Resimulated   int64 `json:"resimulated"`
	Skipped       int64 `json:"skipped"`
	EnumRefreshed int64 `json:"enum_refreshed"`
	EnumReused    int64 `json:"enum_reused"`
}

// snapshot assembles the full metrics document.
func (s *Server) snapshot() Metrics {
	pc := s.opts.Pool.Counters()
	busy := make([]float64, len(pc.ShardBusy))
	for i, d := range pc.ShardBusy {
		busy[i] = float64(d.Microseconds()) / 1000
	}
	hitRate := 0.0
	if total := pc.SigmaHits + pc.SigmaMisses; total > 0 {
		hitRate = float64(pc.SigmaHits) / float64(total)
	}
	solved := s.ctr.instancesOK.Load()
	solveMS := float64(s.ctr.solveNanos.Load()) / 1e6
	mean := 0.0
	if solved > 0 {
		mean = solveMS / float64(solved)
	}
	return Metrics{
		Pool: PoolMetrics{
			Shards:       s.opts.Pool.Shards(),
			QueueDepth:   pc.QueueDepth,
			QueueCap:     pc.QueueCap,
			InFlight:     pc.InFlight,
			Submitted:    pc.Submitted,
			Rejected:     pc.Rejected,
			OverBudget:   pc.OverBudget,
			Completed:    pc.Completed,
			Failed:       pc.Failed,
			SigmaHits:    pc.SigmaHits,
			SigmaMisses:  pc.SigmaMisses,
			SigmaHitRate: hitRate,
			ShardBusyMS:  busy,
		},
		Server: ServerMetrics{
			Draining:         s.draining.Load(),
			RequestsInFlight: s.ctr.inflight.Load(),
			Requests:         s.ctr.requests.Load(),
			RejectedRequests: s.ctr.rejected.Load(),
			DrainRejected:    s.ctr.drainRejected.Load(),
			OverBudget:       s.ctr.overBudget.Load(),
			TooLarge:         s.ctr.tooLarge.Load(),
			BadInput:         s.ctr.badInput.Load(),
			InstancesSolved:  solved,
			InstancesFailed:  s.ctr.instancesFail.Load(),
			SolveMSTotal:     solveMS,
			MeanSolveMS:      mean,
			RecordsWritten:   s.ctr.recordsWritten.Load(),
			BytesStreamed:    s.ctr.bytesStreamed.Load(),
			PartialResults:   s.ctr.partials.Load(),
			Tenants:          s.tenants.len(),
			UptimeSeconds:    time.Since(s.started).Seconds(),
		},
		Improve: ImproveMetrics{
			Rounds:        s.ctr.rounds.Load(),
			Evaluated:     s.ctr.evaluated.Load(),
			Accepted:      s.ctr.accepted.Load(),
			Popped:        s.ctr.popped.Load(),
			Resimulated:   s.ctr.resimulated.Load(),
			Skipped:       s.ctr.skipped.Load(),
			EnumRefreshed: s.ctr.enumRefreshed.Load(),
			EnumReused:    s.ctr.enumReused.Load(),
		},
		TenantsDetail: s.tenants.detail(),
	}
}
