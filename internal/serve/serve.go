// Package serve is the long-lived alignment daemon behind cmd/csrserve: an
// HTTP frontend over one warm fragalign.BatchPool.
//
// Endpoints:
//
//	POST /v1/solve   JSONL instances in (encoding.ReadJSONL wire format),
//	                 streamed encoding.ResultRecord JSONL out. Results
//	                 stream in submission order by default, or completion
//	                 order with ?order=completion. ?timeout=DUR gives every
//	                 instance of the request its own solve deadline; the
//	                 X-Tenant header (or ?tenant=) keys σ-cache affinity.
//	GET  /metrics    JSON snapshot: pool counters, server counters, and
//	                 aggregated fragalign.ImproveStats (see Metrics).
//	GET  /healthz    200 "ok" while serving, 503 "draining" after drain
//	                 starts — the load-balancer eviction signal.
//
// Admission control is enforced at the request boundary, per tenant: the
// first instance of a request passes weighted max-min fair admission
// (admission.go) — a tenant below its fair share of the queue is admitted
// even under load (blocking submission), a tenant at or above its share
// only gets the queue's actual slack (non-blocking submission), and an
// over-share tenant is refused 429 with a Retry-After keyed to its own
// drain estimate. A solo tenant's share is the whole capacity, so
// single-tenant servers shed load exactly as before. Once a request is
// admitted, its remaining instances use blocking submission: within one
// admitted stream the bounded queue exerts ordinary backpressure on the
// request body, exactly the csrbatch semantics, which keeps an admitted
// request's results byte-identical to a csrbatch run over the same input
// (wall_ms aside).
//
// Graceful degradation: with ?partial=1 (or the server-wide Partial
// option) an instance whose deadline fires mid-improvement resolves as a
// "partial": true record carrying the last accepted solution — score exact
// under the true σ — instead of a deadline error.
//
// Graceful drain (Server.StartDrain, wired to SIGTERM by csrserve) flips
// /healthz to 503 and refuses new /v1/solve requests with 503 while
// letting in-flight requests run to completion and flush their streams;
// the pool itself is closed only after the HTTP server has drained.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	fragalign "repro"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/faultinject"
)

// Options configures a Server.
type Options struct {
	// Pool is the solving backend. Required; the server never closes it.
	Pool Pool
	// Algorithm is the label stamped on every result record; it should
	// match the algorithm the pool actually solves with.
	Algorithm string
	// DefaultTimeout is the per-instance solve deadline applied when a
	// request does not set ?timeout. Zero means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-instance deadline a request may ask for
	// (and applies to requests asking for none). Zero means uncapped.
	MaxTimeout time.Duration
	// MaxBody bounds the request body in bytes; 0 means 256 MiB.
	MaxBody int64
	// Tenants bounds the σ-affinity interner cache; 0 means 64.
	Tenants int
	// TenantMaxInflight caps any one tenant's in-flight instances; a
	// request whose tenant is at the cap is refused 429 regardless of
	// queue headroom. 0 means no per-tenant cap.
	TenantMaxInflight int
	// TenantWeights gives named tenants a fair-share weight (default 1);
	// shares are proportional to weight over the active tenant set.
	TenantWeights map[string]float64
	// AdmitCapacity overrides the fair-share capacity denominator; 0
	// derives it from the pool's queue bound.
	AdmitCapacity int
	// Partial makes graceful degradation the server default: deadline
	// failures mid-improvement resolve as partial records for every
	// request that does not say ?partial=0. Off by default — requests
	// opt in with ?partial=1.
	Partial bool
	// Inject arms the serve-side chaos point (faultinject.ServeStall) and
	// is handed nowhere else; pool-side points are armed on the pool
	// itself. Nil — the default — injects nothing.
	Inject *faultinject.Injector
}

// Server is the HTTP daemon. Create with New, mount as an http.Handler.
type Server struct {
	opts     Options
	mux      *http.ServeMux
	draining atomic.Bool
	ctr      counters
	tenants  *tenantCache
	started  time.Time
}

// New builds a Server over its backend pool.
func New(opts Options) (*Server, error) {
	if opts.Pool == nil {
		return nil, errors.New("serve: Options.Pool is required")
	}
	if opts.Algorithm == "" {
		opts.Algorithm = string(fragalign.CSRImprove)
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 256 << 20
	}
	if opts.Tenants <= 0 {
		opts.Tenants = 64
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		tenants: newTenantCache(opts.Tenants, opts.TenantWeights, 1),
		started: time.Now(),
	}
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// ServeHTTP dispatches to the server's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDrain begins a graceful drain: /healthz flips to 503 (so load
// balancers stop routing here) and new /v1/solve requests are refused with
// 503, while requests already streaming run to completion. Idempotent.
// The caller is responsible for subsequently shutting down the HTTP server
// (which waits for in-flight requests) and closing the pool.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlightRequests is the number of /v1/solve requests currently being
// processed — the drain loop in cmd/csrserve polls this toward zero before
// shutting the HTTP server down, so the daemon keeps answering /healthz
// (with 503) for load balancers while in-flight streams finish.
func (s *Server) InFlightRequests() int64 { return s.ctr.inflight.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// retryAfterSeconds estimates how long a rejected client should back off:
// the time the full queue needs to drain across the shards, from the
// observed mean solve time (1s before any observation), clamped to
// [1s, 60s] whole seconds.
func (s *Server) retryAfterSeconds() int {
	mean := time.Second
	if solved := s.ctr.instancesOK.Load(); solved > 0 {
		mean = time.Duration(s.ctr.solveNanos.Load() / solved)
	}
	c := s.opts.Pool.Counters()
	shards := s.opts.Pool.Shards()
	if shards < 1 {
		shards = 1
	}
	est := mean * time.Duration(c.QueueCap) / time.Duration(shards)
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// retryAfterTenant estimates how long a tenant refused by fair admission
// should back off: the time its own queue excess needs to drain across the
// shards, from the observed mean solve time (1s before any observation),
// clamped to [1s, 60s] whole seconds. A heavily over-share tenant is told
// to stay away longer than one nudging its cap — per-tenant backoff, not a
// global constant.
func (s *Server) retryAfterTenant(excess int) int {
	mean := time.Second
	if solved := s.ctr.instancesOK.Load(); solved > 0 {
		mean = time.Duration(s.ctr.solveNanos.Load() / solved)
	}
	shards := s.opts.Pool.Shards()
	if shards < 1 {
		shards = 1
	}
	if excess < 1 {
		excess = 1
	}
	est := mean * time.Duration(excess) / time.Duration(shards)
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// admitCapacity is the fair-share denominator: the configured override, or
// the pool's queue bound.
func (s *Server) admitCapacity() int {
	if s.opts.AdmitCapacity > 0 {
		return s.opts.AdmitCapacity
	}
	if qc := s.opts.Pool.Counters().QueueCap; qc > 0 {
		return qc
	}
	return 1
}

// pending is one instance's place in a request's pipeline, mirroring the
// csrbatch sink structure.
type pending struct {
	ticket Ticket
	cancel context.CancelFunc
	index  int
	name   string
	ten    *tenantEntry // non-nil iff an in-flight reservation is held
	err    error        // submission-time failure (deadline hit while queued)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		s.ctr.drainRejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	unordered := false
	switch q.Get("order") {
	case "", "submission":
	case "completion":
		unordered = true
	default:
		http.Error(w, "order must be submission or completion", http.StatusBadRequest)
		return
	}
	timeout := s.opts.DefaultTimeout
	if ts := q.Get("timeout"); ts != "" {
		d, err := time.ParseDuration(ts)
		if err != nil || d < 0 {
			http.Error(w, "bad timeout: "+ts, http.StatusBadRequest)
			return
		}
		timeout = d
	}
	if s.opts.MaxTimeout > 0 && (timeout == 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	partial := s.opts.Partial
	switch q.Get("partial") {
	case "":
	case "1", "true":
		partial = true
	case "0", "false":
		partial = false
	default:
		http.Error(w, "partial must be 0 or 1", http.StatusBadRequest)
		return
	}
	// ?seeded= overrides the pool's candidate-generation mode per request
	// (ContextWithSeeded); absent means the pool default — whatever
	// csrserve's -seeded flag built the pool with.
	seededSet, seededOn := false, false
	switch q.Get("seeded") {
	case "":
	case "1", "true":
		seededSet, seededOn = true, true
	case "0", "false":
		seededSet, seededOn = true, false
	default:
		http.Error(w, "seeded must be 0 or 1", http.StatusBadRequest)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if t := q.Get("tenant"); t != "" {
		tenant = t
	}
	s.ctr.requests.Add(1)
	s.ctr.inflight.Add(1)
	defer s.ctr.inflight.Add(-1)

	// The handler streams records while the reader goroutine is still
	// consuming instances from the same connection. HTTP/1 servers
	// half-duplex that by default — the server drains the unread body the
	// moment the response starts, racing (and truncating) our reader — so
	// opt in to full duplex; on HTTP/2 this is a no-op.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil && r.ProtoMajor == 1 {
		http.Error(w, "full-duplex streaming unsupported: "+err.Error(), http.StatusInternalServerError)
		return
	}

	ten := s.tenants.acquire(tenant)
	defer s.tenants.release(ten)
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBody)
	reqCtx := r.Context()
	subCtx := reqCtx
	if partial {
		subCtx = fragalign.ContextWithPartial(subCtx)
	}
	if seededSet {
		subCtx = fragalign.ContextWithSeeded(subCtx, seededOn)
	}

	// Reader goroutine: parse and submit, blocking on the bounded queue for
	// backpressure — except the request's first instance, which must clear
	// per-tenant fair admission (admission.go) or the whole request is
	// refused 429 before any response byte is written.
	var errRejected = errors.New("serve: admission refused")
	var errOverBudget = errors.New("serve: over memory budget")
	var overBudget *fragalign.OverBudgetError // set when errOverBudget
	capacity := s.admitCapacity()
	rejectExcess := 1 // sizes the Retry-After hint when errRejected
	buf := 2 * s.opts.Pool.Shards()
	tickets := make(chan pending, buf)
	var readErr error
	go func() {
		defer close(tickets)
		index := 0
		readErr = encoding.ReadJSONLWith(body, ten.si, func(in *core.Instance) error {
			ictx := subCtx
			var cancel context.CancelFunc
			if timeout > 0 {
				ictx, cancel = context.WithTimeout(subCtx, timeout)
			}
			var t Ticket
			var err error
			if index == 0 {
				dec, excess := s.tenants.admitFirst(ten, capacity, s.opts.TenantMaxInflight)
				switch dec {
				case admitReject:
					if cancel != nil {
						cancel()
					}
					rejectExcess = excess
					return errRejected
				case admitSlack:
					t, err = s.opts.Pool.TrySubmit(ictx, in)
					if errors.Is(err, fragalign.ErrQueueFull) {
						if cancel != nil {
							cancel()
						}
						s.tenants.unadmit(ten)
						return errRejected
					}
				default: // admitGuaranteed
					t, err = s.opts.Pool.Submit(ictx, in)
				}
			} else {
				s.tenants.reserve(ten)
				t, err = s.opts.Pool.Submit(ictx, in)
			}
			if err != nil {
				if index == 0 {
					// A first instance the pool's memory budget refuses fails
					// the whole request with a structured 413 — nothing was
					// admitted, nothing streamed. Later instances surface the
					// same error per record below.
					var ob *fragalign.OverBudgetError
					if errors.As(err, &ob) {
						overBudget = ob
						s.tenants.unadmit(ten)
						if cancel != nil {
							cancel()
						}
						return errOverBudget
					}
				}
				// Per-instance submission failure (deadline or cancellation
				// while queued): record it, keep the stream going — unless
				// the whole request is gone.
				s.tenants.finishInstance(ten)
				if cancel != nil {
					cancel()
				}
				if reqCtx.Err() != nil {
					return reqCtx.Err()
				}
				tickets <- pending{index: index, name: in.Name, err: err}
				index++
				return nil
			}
			tickets <- pending{ticket: t, cancel: cancel, index: index, name: in.Name, ten: ten}
			index++
			return nil
		})
	}()

	// Injected handler stall (chaos: widens the drain and mid-stream
	// disconnect windows between admission and streaming).
	s.opts.Inject.Stall(reqCtx, faultinject.ServeStall)

	// The single writer: resolve pendings (in submission or completion
	// order), stream records, flush per record so clients consume results
	// while later instances still solve. On client death we keep draining —
	// every ticket must resolve so deadline timers release and metrics see
	// the failures — but stop writing.
	var wroteAny bool
	var writeErr error
	flusher, _ := w.(http.Flusher)
	cw := &countingWriter{w: w, n: &s.ctr.bytesStreamed}
	emit := func(rec encoding.ResultRecord) {
		s.ctr.recordsWritten.Add(1)
		if writeErr != nil {
			return
		}
		if !wroteAny {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wroteAny = true
		}
		if err := encoding.WriteJSONLResult(cw, &rec); err != nil {
			writeErr = err
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if unordered {
		records := make(chan encoding.ResultRecord, buf)
		go func() {
			defer close(records)
			sem := make(chan struct{}, buf)
			var wg sync.WaitGroup
			for p := range tickets {
				p := p
				sem <- struct{}{}
				wg.Add(1)
				go func() {
					defer wg.Done()
					records <- s.resolve(p)
					<-sem
				}()
			}
			wg.Wait()
		}()
		for rec := range records {
			emit(rec)
		}
	} else {
		for p := range tickets {
			emit(s.resolve(p))
		}
	}

	var maxBytesErr *http.MaxBytesError
	switch {
	case errors.Is(readErr, errRejected):
		// Nothing admitted, nothing written: refuse the whole request with
		// the rejected tenant's own drain estimate.
		s.ctr.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterTenant(rejectExcess)))
		http.Error(w, "queue full", http.StatusTooManyRequests)
	case errors.Is(readErr, errOverBudget) && !wroteAny:
		// The request's first instance blew the pool's memory budget: a
		// structured 413 carrying the cost-model estimate, so the client can
		// see which term to shrink (or which budget to raise).
		s.ctr.overBudget.Add(1)
		writeJSONError(w, http.StatusRequestEntityTooLarge, overBudget.Error(), map[string]any{
			"estimate_bytes": overBudget.Estimate.Total(),
			"sigma_bytes":    overBudget.Estimate.SigmaBytes,
			"scratch_bytes":  overBudget.Estimate.ScratchBytes,
			"state_bytes":    overBudget.Estimate.StateBytes,
			"budget_bytes":   overBudget.Budget,
		})
	case errors.As(readErr, &maxBytesErr) && !wroteAny:
		// The body overran MaxBody: a structured 413 with the limit, before
		// the server read (or buffered) anything past it.
		s.ctr.tooLarge.Add(1)
		writeJSONError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", maxBytesErr.Limit),
			map[string]any{"max_body_bytes": maxBytesErr.Limit})
	case readErr != nil && reqCtx.Err() == nil:
		if !wroteAny {
			// Malformed input (bad JSON, negative lengths, duplicate
			// fragment IDs, empty alphabets, ...): a structured 400 naming
			// the offending line.
			s.ctr.badInput.Add(1)
			writeJSONError(w, http.StatusBadRequest, readErr.Error(), nil)
			return
		}
		// The stream already carries records; append a stream-level error
		// record (index -1 marks it as not belonging to any instance).
		emit(encoding.ResultRecord{Index: -1, Error: "input: " + readErr.Error()})
	case !wroteAny && writeErr == nil && reqCtx.Err() == nil:
		// Empty but well-formed input: an empty 200 stream.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
}

// resolve waits for one pending instance and renders its result record —
// field for field what csrbatch emits, so a served stream is comparable to
// a csrbatch run byte for byte (modulo wall_ms).
func (s *Server) resolve(p pending) encoding.ResultRecord {
	rec := encoding.ResultRecord{Index: p.index, Name: p.name, Algorithm: s.opts.Algorithm}
	var res *fragalign.Result
	err := p.err
	if err == nil {
		res, err = p.ticket.Wait()
	}
	if p.cancel != nil {
		p.cancel()
	}
	if p.ten != nil {
		s.tenants.finishInstance(p.ten)
	}
	if err != nil {
		s.ctr.instancesFail.Add(1)
		rec.Error = err.Error()
		return rec
	}
	s.ctr.instancesOK.Add(1)
	s.ctr.solveNanos.Add(int64(res.Wall))
	rec.Score = res.Score
	rec.WallMS = float64(res.Wall.Microseconds()) / 1000
	if res.Solution != nil {
		rec.Matches = len(res.Solution.Matches)
	}
	if res.Stats != nil {
		rec.Rounds = res.Stats.Rounds
		if res.Stats.Partial {
			rec.Partial = true
			s.ctr.partials.Add(1)
		}
		s.ctr.addImprove(res.Stats)
	}
	return rec
}

// writeJSONError answers a whole-request failure with a structured JSON
// body: {"error": msg} plus any extra fields (cost-model estimates, limits).
// Machine-readable rejects let batch clients distinguish "shrink this
// instance" from "retry later" without parsing prose.
func writeJSONError(w http.ResponseWriter, status int, msg string, extra map[string]any) {
	doc := map[string]any{"error": msg}
	for k, v := range extra {
		doc[k] = v
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(doc)
}

// countingWriter tallies streamed bytes for the metrics surface.
type countingWriter struct {
	w http.ResponseWriter
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}
