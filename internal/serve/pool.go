package serve

import (
	"context"

	fragalign "repro"
)

// Ticket is one pending solve, resolved by the backend pool.
type Ticket interface {
	// Wait blocks until the instance is solved or its context fires.
	Wait() (*fragalign.Result, error)
}

// Pool is the solving backend the server drives: the subset of
// fragalign.BatchPool the HTTP layer needs. It is an interface so tests can
// substitute deterministic backends (blocking tickets, forced rejections);
// production wiring goes through AdaptBatchPool.
type Pool interface {
	// Submit enqueues an instance, blocking while the queue is full.
	Submit(ctx context.Context, in *fragalign.Instance) (Ticket, error)
	// TrySubmit fails immediately with fragalign.ErrQueueFull instead of
	// blocking — the admission-control primitive behind 429 responses.
	TrySubmit(ctx context.Context, in *fragalign.Instance) (Ticket, error)
	// Counters snapshots the pool's queue, solve, and σ-cache counters.
	Counters() fragalign.BatchCounters
	// Shards is the pool's solver concurrency.
	Shards() int
}

// AdaptBatchPool wraps a fragalign.BatchPool as a serve.Pool.
func AdaptBatchPool(bp *fragalign.BatchPool) Pool { return batchPool{bp} }

type batchPool struct{ bp *fragalign.BatchPool }

func (p batchPool) Submit(ctx context.Context, in *fragalign.Instance) (Ticket, error) {
	t, err := p.bp.Submit(ctx, in)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func (p batchPool) TrySubmit(ctx context.Context, in *fragalign.Instance) (Ticket, error) {
	t, err := p.bp.TrySubmit(ctx, in)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func (p batchPool) Counters() fragalign.BatchCounters { return p.bp.Counters() }
func (p batchPool) Shards() int                       { return p.bp.Shards() }
