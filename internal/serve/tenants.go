package serve

import (
	"sync"

	"repro/internal/encoding"
)

// tenantCache holds the per-tenant serving state: one encoding.SigmaInterner
// per tenant key (σ-cache affinity — every request a tenant sends with the
// same σ content resolves to the same *score.Table identity, so the batch
// pool compiles the tenant's alphabet once for its connection lifetime) plus
// the admission bookkeeping fair sharing runs on (in-flight instances,
// weight, admitted/rejected tallies; see admission.go).
//
// The cache is bounded by max: when a new tenant would exceed the bound the
// least-recently-used idle tenant's entry is dropped — its σ simply
// recompiles on that tenant's next request, so eviction is a performance
// event, never a correctness one. Entries pinned by an active request
// (refs > 0) or by in-flight instances are never evicted: a request that
// resolved its interner keeps exactly that interner for its whole stream,
// so two concurrent requests of one tenant can never be handed different
// interners for the same key by an evict/recreate race. The map can
// therefore exceed max transiently, by at most the number of concurrently
// active tenants — bounded by the HTTP server's connection limit, not by
// tenant-key cardinality.
type tenantCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*tenantEntry
	// anon holds the per-request throwaway entries of unidentified
	// requests (no tenant key): each is its own single-request tenant for
	// fairness purposes, active only while its request runs.
	anon      map[*tenantEntry]struct{}
	gen       int64 // logical clock for LRU
	total     int   // in-flight instances across all tenants
	weights   map[string]float64
	defWeight float64
}

// tenantEntry is one tenant's live state. All non-interner fields are
// guarded by the owning cache's mutex.
type tenantEntry struct {
	key      string
	si       *encoding.SigmaInterner
	used     int64
	refs     int // active requests holding the entry (eviction pin)
	inflight int // instances submitted and not yet resolved (eviction pin)
	weight   float64
	admitted int64 // cumulative instances admitted
	rejected int64 // cumulative requests refused 429 for this tenant
}

func newTenantCache(max int, weights map[string]float64, defWeight float64) *tenantCache {
	if defWeight <= 0 {
		defWeight = 1
	}
	return &tenantCache{
		max:       max,
		m:         make(map[string]*tenantEntry),
		anon:      make(map[*tenantEntry]struct{}),
		weights:   weights,
		defWeight: defWeight,
	}
}

// acquire pins and returns the tenant's entry for the duration of one
// request, creating (and, when over the bound, evicting the stalest idle
// entry) as needed. An empty tenant key gets a fresh single-request entry:
// no affinity without identification, but still a fairness participant.
func (tc *tenantCache) acquire(tenant string) *tenantEntry {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.gen++
	if tenant == "" {
		e := &tenantEntry{si: encoding.NewSigmaInterner(), used: tc.gen, refs: 1, weight: tc.defWeight}
		tc.anon[e] = struct{}{}
		return e
	}
	if e, ok := tc.m[tenant]; ok {
		e.used = tc.gen
		e.refs++
		return e
	}
	if len(tc.m) >= tc.max {
		// Evict the coldest idle entry. Every entry may be pinned (refs or
		// in-flight instances); the map then overflows transiently rather
		// than yank an interner out from under a live request.
		var coldest *tenantEntry
		for _, e := range tc.m {
			if e.refs > 0 || e.inflight > 0 {
				continue
			}
			if coldest == nil || e.used < coldest.used {
				coldest = e
			}
		}
		if coldest != nil {
			delete(tc.m, coldest.key)
		}
	}
	w := tc.defWeight
	if ww, ok := tc.weights[tenant]; ok && ww > 0 {
		w = ww
	}
	e := &tenantEntry{key: tenant, si: encoding.NewSigmaInterner(), used: tc.gen, refs: 1, weight: w}
	tc.m[tenant] = e
	return e
}

// release unpins an entry at the end of its request.
func (tc *tenantCache) release(e *tenantEntry) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	e.refs--
	if e.key == "" && e.refs <= 0 && e.inflight <= 0 {
		delete(tc.anon, e)
	}
}

func (tc *tenantCache) len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.m)
}

// detail snapshots every named tenant's admission and σ-affinity state for
// /metrics — bounded by the cache bound itself, since entries live exactly
// as long as the LRU keeps them.
func (tc *tenantCache) detail() map[string]TenantMetrics {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make(map[string]TenantMetrics, len(tc.m))
	for k, e := range tc.m {
		hits, misses := e.si.Stats()
		out[k] = TenantMetrics{
			InFlight:    e.inflight,
			Weight:      e.weight,
			Admitted:    e.admitted,
			Rejected:    e.rejected,
			SigmaHits:   hits,
			SigmaMisses: misses,
		}
	}
	return out
}
