package serve

import (
	"sync"

	"repro/internal/encoding"
)

// tenantCache holds one encoding.SigmaInterner per tenant key, giving a
// client σ-cache affinity across requests: every request a tenant sends
// with the same σ content resolves to the same *score.Table identity, so
// the batch pool compiles (and int-quantizes) the tenant's alphabet once
// for its connection lifetime instead of once per request.
//
// The cache is bounded by max: when full, the least-recently-used tenant's
// interner is dropped — its σ simply recompiles on that tenant's next
// request, so eviction is a performance event, never a correctness one.
type tenantCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*tenantEntry
	gen int64 // logical clock for LRU
}

type tenantEntry struct {
	si   *encoding.SigmaInterner
	used int64
}

func newTenantCache(max int) *tenantCache {
	return &tenantCache{max: max, m: make(map[string]*tenantEntry)}
}

// get returns the tenant's interner, creating (and, when over the bound,
// evicting the stalest) as needed. An empty tenant key gets a fresh
// throwaway interner: no affinity without identification.
func (tc *tenantCache) get(tenant string) *encoding.SigmaInterner {
	if tenant == "" {
		return encoding.NewSigmaInterner()
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.gen++
	if e, ok := tc.m[tenant]; ok {
		e.used = tc.gen
		return e.si
	}
	if len(tc.m) >= tc.max {
		var coldest string
		var coldestUsed int64
		for k, e := range tc.m {
			if coldest == "" || e.used < coldestUsed {
				coldest, coldestUsed = k, e.used
			}
		}
		delete(tc.m, coldest)
	}
	e := &tenantEntry{si: encoding.NewSigmaInterner(), used: tc.gen}
	tc.m[tenant] = e
	return e.si
}

func (tc *tenantCache) len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.m)
}
