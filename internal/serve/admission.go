package serve

// Per-tenant fair admission. The pool's bounded queue is a single global
// FIFO; left alone, one tenant's burst fills it and every other tenant eats
// 429s — admission-by-arrival-order, the opposite of fair. This layer moves
// the admission decision up to the tenant level with weighted max-min
// sharing over the *active* tenant set:
//
//	share(t) = max(1, capacity · w_t / Σ_{active u} w_u)   (capped by the
//	                                                        per-tenant limit)
//
// where a tenant is active while it has in-flight instances. A request
// whose tenant is below its share is admitted on the *guaranteed* path —
// blocking submission, so it waits (briefly) for a queue slot instead of
// losing a race against a saturating tenant's refill; a tenant at or above
// its share may still use whatever slack the queue has (non-blocking
// submission, first come first served), and is otherwise refused 429 with a
// Retry-After keyed to that tenant's own drain estimate. A solo tenant's
// share is the whole capacity, so single-tenant servers keep today's
// shed-when-saturated behavior exactly.
//
// The guaranteed path means admission no longer refuses a below-share
// tenant just because the queue is momentarily full — fairness with an
// instantaneous-occupancy check alone is impossible, since a saturating
// tenant refills the queue the moment a slot frees. The cost is a bounded
// wait: at most one queue drain, which keeps the light tenant's latency
// within a constant factor of its solo latency (the fairness acceptance
// bound). A hard global cap of 2·capacity in-flight instances bounds the
// aggregate guaranteed overshoot no matter how many tenants go active at
// once.
//
// Accounting is reservation-based: admit/reserve bump the tenant's
// in-flight count before submission so concurrent deciders see each other,
// and every reservation is paired with exactly one finishInstance (after
// the ticket resolves) or unadmit (submission failed).

// admitDecision is the fate of a request's first instance.
type admitDecision int

const (
	// admitGuaranteed: below fair share — submit blocking; the tenant is
	// entitled to the slot even if the queue is momentarily full.
	admitGuaranteed admitDecision = iota
	// admitSlack: at/over fair share but the system has headroom — submit
	// non-blocking, reject the request if the queue is actually full.
	admitSlack
	// admitReject: over share and no headroom (or over the per-tenant
	// cap) — refuse 429 with the tenant's own Retry-After estimate.
	admitReject
)

// admitFirst decides admission for a request's first instance and, when
// admitting, reserves the in-flight slot. capacity is the fair-share
// denominator (the pool queue bound); maxInflight caps any one tenant
// (0 = uncapped). The second result is the tenant's queue excess, sizing
// the Retry-After hint on rejection.
func (tc *tenantCache) admitFirst(e *tenantEntry, capacity, maxInflight int) (admitDecision, int) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	share := tc.shareLocked(e, capacity, maxInflight)
	excess := e.inflight - share + 1
	if excess < 1 {
		excess = 1
	}
	switch {
	case maxInflight > 0 && e.inflight >= maxInflight:
		e.rejected++
		return admitReject, excess
	case e.inflight < share && tc.total < 2*capacity:
		e.inflight++
		tc.total++
		e.admitted++
		return admitGuaranteed, 0
	case tc.total < capacity:
		e.inflight++
		tc.total++
		e.admitted++
		return admitSlack, 0
	default:
		e.rejected++
		return admitReject, excess
	}
}

// shareLocked computes e's current weighted max-min share of capacity over
// the active tenant set (tenants with in-flight instances, plus e itself —
// the requester counts as active for its own decision).
func (tc *tenantCache) shareLocked(e *tenantEntry, capacity, maxInflight int) int {
	var sum float64
	for _, o := range tc.m {
		if o.inflight > 0 || o == e {
			sum += o.weight
		}
	}
	for o := range tc.anon {
		if o.inflight > 0 || o == e {
			sum += o.weight
		}
	}
	if sum <= 0 {
		sum = e.weight
	}
	share := int(float64(capacity) * e.weight / sum)
	if share < 1 {
		share = 1
	}
	if maxInflight > 0 && share > maxInflight {
		share = maxInflight
	}
	return share
}

// reserve books one more in-flight instance for an already-admitted
// request's subsequent submissions (the admitted stream keeps ordinary
// blocking backpressure; fairness acts at request admission).
func (tc *tenantCache) reserve(e *tenantEntry) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	e.inflight++
	tc.total++
	e.admitted++
}

// unadmit rolls back a reservation whose submission failed (slack-path
// queue-full, or a dead request context) and books the rejection.
func (tc *tenantCache) unadmit(e *tenantEntry) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	e.inflight--
	tc.total--
	e.admitted--
	e.rejected++
}

// finishInstance retires a reservation once its ticket resolved.
func (tc *tenantCache) finishInstance(e *tenantEntry) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	e.inflight--
	tc.total--
	if e.key == "" && e.refs <= 0 && e.inflight <= 0 {
		delete(tc.anon, e)
	}
}
