package seed

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/score"
	"repro/internal/symbol"
)

// randGroup builds one sorted anchor group (same H fragment, same
// orientation) with n anchors on an L×L grid and lengths in [1, 3].
func randGroup(r *rand.Rand, n, L int) []Anchor {
	a := make([]Anchor, n)
	for i := range a {
		a[i] = Anchor{
			H:    7,
			PosH: int32(r.Intn(L)),
			PosM: int32(r.Intn(L)),
			Len:  int32(1 + r.Intn(3)),
		}
	}
	SortAnchors(a)
	return a
}

// TestChainerOracle checks the sweep-line chainer against the O(n²) brute
// reference for exact equality — score bit-for-bit, same chain length, same
// window — across random groups up to 64 anchors.
func TestChainerOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gaps := []float64{0, 0.25, 0.5, 1, 2}
	var cs chainScratch
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(64)
		L := 4 + r.Intn(40)
		anchors := randGroup(r, n, L)
		gap := gaps[trial%len(gaps)]
		got := chainBest(anchors, gap, &cs)
		want := chainBestBrute(anchors, gap)
		if got != want {
			t.Fatalf("trial %d (n=%d L=%d gap=%v):\n got %+v\nwant %+v\nanchors %+v",
				trial, n, L, gap, got, want, anchors)
		}
	}
}

// TestChainerColinear checks a clean diagonal chains end to end.
func TestChainerColinear(t *testing.T) {
	anchors := []Anchor{
		{PosH: 0, PosM: 0, Len: 3},
		{PosH: 3, PosM: 3, Len: 3},
		{PosH: 6, PosM: 6, Len: 3},
	}
	var cs chainScratch
	ch := chainBest(anchors, 0.5, &cs)
	if ch.Anchors != 3 || ch.Score != 9 || ch.HLo != 0 || ch.HHi != 9 || ch.MLo != 0 || ch.MHi != 9 {
		t.Fatalf("colinear chain = %+v", ch)
	}
	// Crossing anchors cannot extend the chain.
	anchors = append(anchors, Anchor{PosH: 9, PosM: 0, Len: 3})
	SortAnchors(anchors)
	ch = chainBest(anchors, 0.5, &cs)
	if ch.Anchors != 3 || ch.Score != 9 {
		t.Fatalf("crossed chain = %+v", ch)
	}
}

// crossInstance builds a two-species instance over regions 0..n-1 where
// σ(H_i, M_i) = 10: the seed translation maps M_i to H_i exactly.
func crossInstance(hFrags, mFrags [][]int) (*core.Instance, []symbol.Symbol, []symbol.Symbol) {
	al := symbol.NewAlphabet()
	tb := score.NewTable()
	maxR := 0
	for _, f := range append(append([][]int{}, hFrags...), mFrags...) {
		for _, r := range f {
			if r > maxR {
				maxR = r
			}
		}
	}
	h := make([]symbol.Symbol, maxR+1)
	m := make([]symbol.Symbol, maxR+1)
	for i := 0; i <= maxR; i++ {
		h[i] = al.Intern(fmt.Sprintf("H%d", i))
		m[i] = al.Intern(fmt.Sprintf("M%d", i))
		tb.Set(h[i], m[i], 10)
	}
	in := &core.Instance{Name: "cross", Alpha: al, Sigma: tb}
	word := func(rs []int, syms []symbol.Symbol) symbol.Word {
		w := make(symbol.Word, len(rs))
		for i, r := range rs {
			w[i] = syms[r]
		}
		return w
	}
	for i, f := range hFrags {
		in.H = append(in.H, core.Fragment{Name: fmt.Sprintf("h%d", i), Regions: word(f, h)})
	}
	for i, f := range mFrags {
		in.M = append(in.M, core.Fragment{Name: fmt.Sprintf("m%d", i), Regions: word(f, m)})
	}
	return in, h, m
}

// TestMinimizerIndexProperty: with W = 1 (every k-mer indexed) and no
// frequency cap, every shared k-mer between an H fragment (at its index
// level) and a translated M fragment yields exactly the expected anchor
// set — no hit missed, none invented.
func TestMinimizerIndexProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		nh, nm := 1+r.Intn(4), 1+r.Intn(4)
		regions := 6
		randFrags := func(n int) [][]int {
			out := make([][]int, n)
			for i := range out {
				f := make([]int, 1+r.Intn(7))
				for j := range f {
					f[j] = r.Intn(regions)
				}
				out[i] = f
			}
			return out
		}
		in, hSyms, _ := crossInstance(randFrags(nh), randFrags(nm))
		p := Params{K: 3, W: 1, MaxFreq: 0, Gap: 0.5}
		sx := newSigmaIndex(score.Prepare(in.Sigma, in.MaxSymbolID()))
		var st Stats
		idx := buildIndex(in, p, &st)

		// Expected anchors by direct token comparison. M_i translates to
		// H_i (the only positive partner); reversed M symbols have no
		// positive partner under this σ (σ(H_iᴿ, M_iᴿ) = 10 covers the
		// reversed class instead), so reverse-orientation queries translate
		// the un-reversed classes only.
		hTok := func(s symbol.Symbol) int32 { return int32(s) }
		mTok := func(s symbol.Symbol) int32 { return sx.bestPartner(int32(s)) }
		type key struct {
			h, m   int
			ph, pm int32
			ln     int32
			rev    bool
		}
		want := map[key]bool{}
		for hi := range in.H {
			hw := in.H[hi].Regions
			k := min(p.K, len(hw))
			for mi := range in.M {
				mw := in.M[mi].Regions
				for _, rev := range [2]bool{false, true} {
					ori := mw.Orient(rev)
					for i := 0; i+k <= len(hw); i++ {
						for j := 0; j+k <= len(ori); j++ {
							ok := true
							for d := 0; d < k; d++ {
								ht, mt := hTok(hw[i+d]), mTok(ori[j+d])
								if ht == 0 || mt == 0 || ht != mt {
									ok = false
									break
								}
							}
							if ok {
								want[key{hi, mi, int32(i), int32(j), int32(k), rev}] = true
							}
						}
					}
				}
			}
		}
		got := map[key]bool{}
		var anchors []Anchor
		for mi := range in.M {
			anchors = idx.queryFrag(in, sx, mi, anchors[:0])
			for _, a := range anchors {
				got[key{int(a.H), mi, a.PosH, a.PosM, a.Len, a.Rev}] = true
			}
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing anchor %+v (H frag %v, M frag %v)",
					trial, k, in.H[k.h].Regions, in.M[k.m].Regions)
			}
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("trial %d: unexpected anchor %+v", trial, k)
			}
		}
		_ = hSyms
	}
}

// TestFrequencyCap: a minimizer occurring in more fragments than MaxFreq is
// dropped from the index.
func TestFrequencyCap(t *testing.T) {
	frag := []int{0, 1, 2}
	in, _, _ := crossInstance([][]int{frag, frag, frag}, [][]int{frag})
	var st Stats
	idx := buildIndex(in, Params{K: 3, W: 1, MaxFreq: 2}, &st)
	sx := newSigmaIndex(score.Prepare(in.Sigma, in.MaxSymbolID()))
	if anchors := idx.queryFrag(in, sx, 0, nil); len(anchors) != 0 {
		t.Fatalf("capped seed still yields anchors: %+v", anchors)
	}
	if st.Capped == 0 {
		t.Fatalf("no postings were capped: %+v", st)
	}
}

// TestCandidatesSubsetOfExhaustive: every pair the practical pipeline admits
// shares a positive σ cell, so it must appear in the exhaustive mask.
func TestCandidatesSubsetOfExhaustive(t *testing.T) {
	for seedv := int64(0); seedv < 5; seedv++ {
		w := gen.Generate(gen.DefaultConfig(seedv))
		in := w.Instance
		ex := Candidates(in, Params{Exhaustive: true})
		if len(ex.Pairs) == 0 {
			t.Fatalf("seed %d: exhaustive mask empty", seedv)
		}
		mask := map[[2]int]bool{}
		for _, p := range ex.Pairs {
			mask[[2]int{p.H, p.M}] = true
		}
		got := Candidates(in, DefaultParams())
		for _, p := range got.Pairs {
			if !mask[[2]int{p.H, p.M}] {
				t.Fatalf("seed %d: seeded pair (%d,%d) outside the positive-σ mask", seedv, p.H, p.M)
			}
			if len(p.Chains) == 0 {
				t.Fatalf("seed %d: seeded pair (%d,%d) has no chains", seedv, p.H, p.M)
			}
		}
		if got.Stats.Pairs != len(got.Pairs) || ex.Stats.Pairs != len(ex.Pairs) {
			t.Fatalf("stats disagree with results: %+v / %+v", got.Stats, ex.Stats)
		}
	}
}

// TestExhaustiveCoversOrthologs: the exhaustive mask contains every pair
// connected by a surviving ortholog region (σ > 0 by construction).
func TestExhaustiveCoversOrthologs(t *testing.T) {
	w := gen.Generate(gen.DefaultConfig(3))
	in := w.Instance
	ex := Candidates(in, Params{Exhaustive: true})
	mask := map[[2]int]bool{}
	for _, p := range ex.Pairs {
		mask[[2]int{p.H, p.M}] = true
	}
	// Any (f, g) with σ(a, b) > 0 for some a ∈ f, b ∈ g (either orientation)
	// must be in the mask.
	for hi := range in.H {
		for mi := range in.M {
			pos := false
			for _, a := range in.H[hi].Regions {
				for _, b := range in.M[mi].Regions {
					if in.Sigma.Score(a, b) > 0 || in.Sigma.Score(a.Rev(), b) > 0 ||
						in.Sigma.Score(a, b.Rev()) > 0 || in.Sigma.Score(a.Rev(), b.Rev()) > 0 {
						pos = true
					}
				}
			}
			if pos && !mask[[2]int{hi, mi}] {
				t.Fatalf("pair (%d,%d) has a positive σ cell but is not in the exhaustive mask", hi, mi)
			}
			if !pos && mask[[2]int{hi, mi}] {
				t.Fatalf("pair (%d,%d) has no positive σ cell but is in the exhaustive mask", hi, mi)
			}
		}
	}
}

// TestCandidatesFindsInversions: an inverted ortholog block seeds a
// reverse-orientation chain with a window covering the block.
func TestCandidatesFindsInversions(t *testing.T) {
	// H fragment carries regions 0..7 in order; the M fragment carries the
	// middle block 2..5 inverted.
	in, _, mSyms := crossInstance(
		[][]int{{0, 1, 2, 3, 4, 5, 6, 7}},
		[][]int{{0, 1}}, // placeholder, rebuilt below
	)
	inv := make(symbol.Word, 0, 8)
	for _, r := range []int{0, 1} {
		inv = append(inv, mSyms[r])
	}
	for _, r := range []int{5, 4, 3, 2} {
		inv = append(inv, mSyms[r].Rev())
	}
	for _, r := range []int{6, 7} {
		inv = append(inv, mSyms[r])
	}
	in.M[0].Regions = inv
	res := Candidates(in, Params{K: 3, W: 1, Gap: 0.5, Band: 2, Verify: true})
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %+v", res.Pairs)
	}
	var rev *Chain
	for i := range res.Pairs[0].Chains {
		if res.Pairs[0].Chains[i].Rev {
			rev = &res.Pairs[0].Chains[i]
		}
	}
	if rev == nil {
		t.Fatalf("no reverse chain found: %+v", res.Pairs[0].Chains)
	}
	// The inverted block occupies M[2:6] in forward coordinates; the best
	// reverse chain must land inside it and span at least one seed.
	if rev.MLo < 2 || rev.MHi > 6 || rev.MHi-rev.MLo < 3 {
		t.Fatalf("reverse chain window misses the inverted block: %+v", rev)
	}
}

func FuzzChainer(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 9, 9}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, g uint8) {
		var anchors []Anchor
		for i := 0; i+3 <= len(data) && len(anchors) < 80; i += 3 {
			anchors = append(anchors, Anchor{
				PosH: int32(data[i]),
				PosM: int32(data[i+1]),
				Len:  int32(1 + data[i+2]%4),
			})
		}
		if len(anchors) == 0 {
			return
		}
		SortAnchors(anchors)
		gap := float64(g%8) / 4
		var cs chainScratch
		got := chainBest(anchors, gap, &cs)
		want := chainBestBrute(anchors, gap)
		if got != want {
			t.Fatalf("chainBest %+v != brute %+v (anchors %+v gap %v)", got, want, anchors, gap)
		}
		if got.Score < float64(anchors[0].Len) {
			t.Fatalf("chain score %v below any single anchor", got.Score)
		}
	})
}
