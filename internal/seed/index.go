package seed

import (
	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/symbol"
)

// sigmaIndex is the seeding pipeline's column-wise view of σ: for every
// oriented symbol b it knows the best positive partner argmax_h σ(h, b)
// and the full positive-partner list. Both are distilled from the forward
// matrix's cached positive-row lists (Compiled/CompiledInt.PosRow) in one
// sparse pass — the earlier implementation materialized the dense
// Transposed() matrix just to read its columns, which at genome scale
// (dim ≈ 20k) allocated ~3 GB and dominated the seeded wall with page
// faults. Total storage here is O(dim + stored positive cells).
type sigmaIndex struct {
	n        int32
	best     []int32   // best[b+n] = argmax_h σ(h, b) over positive cells, 0 if none
	partners [][]int32 // partners[b+n] = canonical IDs of positive partners, σ-row order
}

func newSigmaIndex(sc score.Scorer) sigmaIndex {
	switch m := sc.(type) {
	case *score.CompiledInt:
		n := m.MaxID()
		x := newEmptySigmaIndex(n)
		bv := make([]int32, 2*int(n)+1)
		for a := -n; a <= n; a++ {
			cols, vals := m.PosRow(symbol.Symbol(a))
			x.addRow(a, cols, func(k int) bool { return vals[k] > bv[cols[k]] },
				func(k int) { bv[cols[k]] = vals[k] })
		}
		return x
	case *score.Compiled:
		return newSigmaIndexF(m)
	default:
		// Prepare always returns a compiled form; this path is unreachable
		// from Candidates but keeps the type total.
		return newSigmaIndexF(score.Compile(sc, 0))
	}
}

func newSigmaIndexF(m *score.Compiled) sigmaIndex {
	n := m.MaxID()
	x := newEmptySigmaIndex(n)
	bv := make([]float64, 2*int(n)+1)
	for a := -n; a <= n; a++ {
		cols, vals := m.PosRow(symbol.Symbol(a))
		x.addRow(a, cols, func(k int) bool { return vals[k] > bv[cols[k]] },
			func(k int) { bv[cols[k]] = vals[k] })
	}
	return x
}

func newEmptySigmaIndex(n int32) sigmaIndex {
	dim := 2*int(n) + 1
	return sigmaIndex{n: n, best: make([]int32, dim), partners: make([][]int32, dim)}
}

// addRow folds row a's positive columns into the column-wise tables. Rows
// arrive in ascending oriented-symbol order and beats uses a strict >, so
// ties keep the smallest oriented partner — the same determinism the old
// transpose argmax had (its columns ascended too).
func (x *sigmaIndex) addRow(a int32, cols []int32, beats func(k int) bool, record func(k int)) {
	canon := a
	if canon < 0 {
		canon = -canon
	}
	for k, col := range cols {
		if beats(k) {
			record(k)
			x.best[col] = a
		}
		if canon != 0 {
			x.partners[col] = append(x.partners[col], canon)
		}
	}
}

func (x sigmaIndex) maxID() int32 { return x.n }

func (x sigmaIndex) inRange(ob int32) bool {
	return ob >= -x.n && ob <= x.n
}

// bestPartner returns the oriented H symbol maximizing σ(h, b) over positive
// cells, or 0 when b has no positive partner. Ties keep the smallest
// oriented symbol, so the translation is deterministic and independent of
// matrix internals.
func (x sigmaIndex) bestPartner(ob int32) int32 {
	if !x.inRange(ob) {
		return 0
	}
	return x.best[ob+x.n]
}

// eachPartnerCanon calls fn with the canonical region ID of every positive
// partner of oriented symbol ob (exhaustive mode's mask walk).
func (x sigmaIndex) eachPartnerCanon(ob int32, fn func(id int32)) {
	if !x.inRange(ob) {
		return
	}
	for _, id := range x.partners[ob+x.n] {
		fn(id)
	}
}

// mix64 is the 64-bit finalizer of MurmurHash3 — a cheap invertible mixer
// with full avalanche, used both to scramble single tokens and to finalize
// k-mer hashes.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

const fnvOffset = 1469598103934665603
const fnvPrime = 1099511628211

// kmerHash hashes k tokens starting at toks[i]. Returns (0, false) when the
// window contains a hole (token 0: a pad, or an M symbol with no positive σ
// partner) — holes break k-mers, they never match anything.
func kmerHash(toks []int32, i, k int) (uint64, bool) {
	h := uint64(fnvOffset)
	for _, t := range toks[i : i+k] {
		if t == 0 {
			return 0, false
		}
		h = (h ^ mix64(uint64(uint32(t)))) * fnvPrime
	}
	return mix64(h ^ uint64(k)), true
}

// minimizers appends the (w-window) minimizer positions of the k-mers of
// toks to dst as (hash, pos) pairs: within every window of w consecutive
// k-mer starts, the smallest valid hash is selected (leftmost on ties), and
// consecutive duplicate selections are emitted once. With w = 1 every valid
// k-mer is emitted.
func minimizers(toks []int32, k, w int, hashes []uint64, dst []minmer) ([]uint64, []minmer) {
	n := len(toks) - k + 1
	if n <= 0 {
		return hashes, dst
	}
	if cap(hashes) < n {
		hashes = make([]uint64, n)
	}
	hashes = hashes[:n]
	for i := 0; i < n; i++ {
		h, ok := kmerHash(toks, i, k)
		if !ok {
			h = holeHash
		}
		hashes[i] = h
	}
	lastPos := -1
	for lo := 0; lo < n; lo += 1 {
		hi := lo + w
		if hi > n {
			hi = n
		}
		best, bestPos := holeHash, -1
		for i := lo; i < hi; i++ {
			if hashes[i] < best {
				best = hashes[i]
				bestPos = i
			}
		}
		if bestPos >= 0 && bestPos != lastPos {
			dst = append(dst, minmer{hash: best, pos: int32(bestPos)})
			lastPos = bestPos
		}
		if hi == n {
			break
		}
	}
	return hashes, dst
}

// holeHash marks an invalid k-mer position; it is never selected as a
// minimizer (it compares greater than every real hash, and a window of only
// holes selects nothing).
const holeHash = ^uint64(0)

type minmer struct {
	hash uint64
	pos  int32
}

type posting struct {
	frag int32
	pos  int32
}

// index is the multi-level minimizer index over the H fragments. Level k
// holds k-token seeds; fragment f is indexed at a single level
// min(K, len(f)), so fragments shorter than K (ubiquitous after heavy
// fragmentation) still produce seeds instead of falling out of the index.
// Queries probe every populated level.
type index struct {
	p      Params
	levels []map[uint64][]posting // levels[k] is nil when no fragment uses k
}

func buildIndex(in *core.Instance, p Params, st *Stats) *index {
	idx := &index{p: p, levels: make([]map[uint64][]posting, p.K+1)}
	var (
		toks   []int32
		hashes []uint64
		mms    []minmer
	)
	for hi := 0; hi < in.NumFrags(core.SpeciesH); hi++ {
		w := in.Frag(core.SpeciesH, hi).Regions
		if len(w) == 0 {
			continue
		}
		k := min(p.K, len(w))
		toks = toks[:0]
		for _, s := range w {
			toks = append(toks, int32(s)) // H tokens are the oriented symbols themselves
		}
		mms = mms[:0]
		hashes, mms = minimizers(toks, k, p.W, hashes, mms)
		if len(mms) == 0 {
			continue
		}
		lv := idx.levels[k]
		if lv == nil {
			lv = make(map[uint64][]posting)
			idx.levels[k] = lv
		}
		for _, mm := range mms {
			lv[mm.hash] = append(lv[mm.hash], posting{frag: int32(hi), pos: mm.pos})
		}
		st.Minimizers += len(mms)
	}
	if p.MaxFreq > 0 {
		for _, lv := range idx.levels {
			for h, ps := range lv {
				if len(ps) > p.MaxFreq {
					delete(lv, h)
					st.Capped++
				}
			}
		}
	}
	return idx
}

// queryFrag translates M fragment mi into H-token space through σ and probes
// every index level in both orientations, appending the resulting anchors to
// dst. Reverse-orientation anchors carry positions in the reversed M word;
// the chainer's caller maps their windows back to forward coordinates.
func (idx *index) queryFrag(in *core.Instance, sx sigmaIndex, mi int, dst []Anchor) []Anchor {
	w := in.Frag(core.SpeciesM, mi).Regions
	if len(w) == 0 {
		return dst
	}
	var (
		toks   []int32
		hashes []uint64
		mms    []minmer
	)
	for _, rev := range [2]bool{false, true} {
		toks = toks[:0]
		if rev {
			for j := len(w) - 1; j >= 0; j-- {
				toks = append(toks, sx.bestPartner(int32(w[j].Rev())))
			}
		} else {
			for _, s := range w {
				toks = append(toks, sx.bestPartner(int32(s)))
			}
		}
		for k := 1; k < len(idx.levels); k++ {
			lv := idx.levels[k]
			if lv == nil || len(toks) < k {
				continue
			}
			mms = mms[:0]
			hashes, mms = minimizers(toks, k, idx.p.W, hashes, mms)
			for _, mm := range mms {
				for _, ps := range lv[mm.hash] {
					dst = append(dst, Anchor{
						H:    ps.frag,
						PosH: ps.pos,
						PosM: mm.pos,
						Len:  int32(k),
						Rev:  rev,
					})
				}
			}
		}
	}
	return dst
}

// verifyScratch re-scores chain windows through the banded alignment
// kernels, on whichever compiled σ form the instance prepared.
type verifyScratch struct {
	scr *align.Scratch
	sc  score.Scorer
	ci  *score.CompiledInt
}

func newVerifyScratch(in *core.Instance) *verifyScratch {
	sc := score.Prepare(in.Sigma, in.MaxSymbolID())
	v := &verifyScratch{scr: align.NewScratch(), sc: sc}
	if ci, ok := sc.(*score.CompiledInt); ok {
		v.ci = ci
	}
	return v
}

func (v *verifyScratch) release() { v.scr.Release() }

// positive reports whether the chain's window, extended by the band slack,
// aligns to a positive score. The int32 form uses the early-exit sparse
// kernel (ScoreAtLeast against 0); the float64 form the banded DP.
func (v *verifyScratch) positive(in *core.Instance, p Params, pr Pair, ch Chain) bool {
	hw := in.Frag(core.SpeciesH, pr.H).Regions
	mw := in.Frag(core.SpeciesM, pr.M).Regions
	hLo, hHi := max(0, ch.HLo-p.Band), min(len(hw), ch.HHi+p.Band)
	mLo, mHi := max(0, ch.MLo-p.Band), min(len(mw), ch.MHi+p.Band)
	if hLo >= hHi || mLo >= mHi {
		return false
	}
	a := hw[hLo:hHi]
	b := mw[mLo:mHi].Orient(ch.Rev)
	if v.ci != nil {
		return v.scr.ScoreAtLeast(a, b, v.sc, 0) > 0
	}
	band := len(a) - len(b)
	if band < 0 {
		band = -band
	}
	return v.scr.ScoreBanded(a, b, v.sc, band+p.Band) > 0
}
