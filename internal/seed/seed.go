// Package seed implements minimizer-seeded sparse candidate generation for
// genome-scale CSR instances: the seed-and-chain pipeline that replaces
// all-pairs fragment enumeration with an O(anchors log anchors) sweep.
//
// The pipeline has three stages:
//
//  1. A minimizer index over the H fragment words: (k, w)-minimizers of each
//     word's oriented-symbol token sequence, hashed into an inverted index,
//     with postings lists longer than a frequency cap dropped (repetitive
//     seeds carry no pairing signal).
//  2. Anchor matching: each M fragment is translated into H-token space
//     through σ (for an oriented M symbol b, its token is the positive-σ
//     partner argmax_h σ(h, b); species words share no literal symbols, so
//     cross-species k-mer identity only exists through σ), queried against
//     the index in both orientations, and every postings hit becomes an
//     anchor (fragH, fragM, posH, posM, len, rev).
//  3. An O(n log n) sweep-line colinear chainer per fragment pair and
//     orientation (chain.go, backed by fenwick.MaxTree) scores anchor
//     chains under a decomposable gap penalty and keeps the best chain per
//     orientation; surviving chains optionally verify their banded window
//     through the existing ScoreBanded / ScoreAtLeast kernels before the
//     pair is admitted.
//
// The output is a sparse fragment-pair set (plus per-pair chain windows)
// that the improve driver consumes as its candidate universe
// (improve.Options.Seeded): pairs without anchors are never enumerated,
// which is what opens the 5–50k-region regime.
//
// Exhaustive mode (Params.Exhaustive) replaces the minimizer machinery with
// a provably complete mask: a pair (f, g) is admitted iff some symbol of g
// has a positive σ cell against some symbol of f in either orientation
// class. Any I1/I2/I3 attempt on a pair without such a cell aligns to
// nothing and returns gain ≤ 0, so restricting enumeration to this mask is
// bit-identical to all-pairs enumeration — the parity oracle the tests
// enforce (see improve's seeded parity test).
package seed

import (
	"sort"

	"repro/internal/core"
	"repro/internal/score"
)

// Params tunes the seeding pipeline. The zero value is not useful; start
// from DefaultParams.
type Params struct {
	// K is the k-mer length in regions (tokens). Fragments shorter than K
	// are indexed whole, at level min(K, len) — see index.go.
	K int
	// W is the minimizer window: one k-mer is selected out of every W
	// consecutive ones. W=1 indexes every k-mer (full sensitivity).
	W int
	// MaxFreq drops minimizers whose postings list exceeds it (repetitive
	// seeds). ≤ 0 disables the cap.
	MaxFreq int
	// Gap is the chain gap penalty per skipped region (both axes).
	Gap float64
	// MinChain is the minimum chain score (anchored tokens minus gap costs)
	// a pair must reach; 0 admits any anchored pair.
	MinChain float64
	// Band is the extra half-width added to a chain window's banded
	// verification alignment, and the slack the window is extended by.
	Band int
	// Verify re-scores each surviving chain window through the banded
	// kernels (ScoreBanded on float64 σ, ScoreAtLeast on int32) and drops
	// pairs whose window aligns to nothing.
	Verify bool
	// Exhaustive replaces minimizer seeding with the complete positive-σ
	// pair mask (bit-identical candidate search; see the package comment).
	Exhaustive bool
}

// DefaultParams returns the tuning used by the genome presets: 3-region
// seeds, 4-wide winnowing, a generous frequency cap, and banded
// verification on.
func DefaultParams() Params {
	return Params{K: 3, W: 4, MaxFreq: 64, Gap: 0.5, MinChain: 0, Band: 8, Verify: true}
}

func (p Params) sanitized() Params {
	if p.K < 1 {
		p.K = 1
	}
	if p.W < 1 {
		p.W = 1
	}
	if p.Gap < 0 {
		p.Gap = 0
	}
	if p.Band < 0 {
		p.Band = 0
	}
	return p
}

// Chain is one surviving anchor chain of a pair: its score and the window
// it spans on both fragments (M in forward coordinates).
type Chain struct {
	Rev      bool
	Score    float64
	Anchors  int
	HLo, HHi int
	MLo, MHi int
}

// Pair is one admitted fragment pair with its surviving chains (best per
// orientation, best-first; empty in exhaustive mode, which admits pairs
// without windows).
type Pair struct {
	H, M   int
	Chains []Chain
}

// Stats reports the pipeline's funnel.
type Stats struct {
	// Minimizers indexed over the H fragments; Capped postings lists were
	// dropped by the frequency cap.
	Minimizers int
	Capped     int
	// Anchors emitted by index queries.
	Anchors int
	// AnchoredPairs is the number of distinct pairs sharing ≥ 1 minimizer
	// (in exhaustive mode: pairs in the positive-σ mask).
	AnchoredPairs int
	// Pairs survive chain scoring and verification — the driver's candidate
	// universe.
	Pairs int
}

// Result is the seeding output: the admitted pairs, sorted by (H, M).
type Result struct {
	Pairs []Pair
	Stats Stats
}

// Candidates runs the seeding pipeline over the instance. σ is prepared
// (dense-compiled) if the instance has not already done so; the improve
// driver passes instances whose Sigma is the solve's shared matrix, so no
// extra compilation happens there.
func Candidates(in *core.Instance, p Params) *Result {
	p = p.sanitized()
	sx := newSigmaIndex(score.Prepare(in.Sigma, in.MaxSymbolID()))
	if p.Exhaustive {
		return exhaustivePairs(in, sx)
	}
	res := &Result{}
	idx := buildIndex(in, p, &res.Stats)
	var (
		anchors []Anchor
		cs      chainScratch
		pairs   []Pair
	)
	for mi := 0; mi < in.NumFrags(core.SpeciesM); mi++ {
		anchors = idx.queryFrag(in, sx, mi, anchors[:0])
		res.Stats.Anchors += len(anchors)
		if len(anchors) == 0 {
			continue
		}
		SortAnchors(anchors)
		lenM := in.Frag(core.SpeciesM, mi).Len()
		// Walk the (H, rev) groups of this M fragment's sorted anchors.
		for lo := 0; lo < len(anchors); {
			hi := lo + 1
			for hi < len(anchors) && anchors[hi].H == anchors[lo].H && anchors[hi].Rev == anchors[lo].Rev {
				hi++
			}
			ch := chainBest(anchors[lo:hi], p.Gap, &cs)
			if anchors[lo].Rev {
				// Chain coordinates are in the reversed M word; flip the
				// window back to forward coordinates.
				ch.MLo, ch.MHi = lenM-ch.MHi, lenM-ch.MLo
			}
			if ch.Score >= p.MinChain {
				hIdx := int(anchors[lo].H)
				if n := len(pairs); n > 0 && pairs[n-1].H == hIdx && pairs[n-1].M == mi {
					pairs[n-1].Chains = appendChain(pairs[n-1].Chains, ch)
				} else {
					pairs = append(pairs, Pair{H: hIdx, M: mi, Chains: []Chain{ch}})
				}
			}
			lo = hi
		}
	}
	// AnchoredPairs counts distinct anchored pairs regardless of MinChain.
	res.Stats.AnchoredPairs = countAnchoredPairs(pairs)
	if p.Verify {
		pairs = verifyPairs(in, p, pairs)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].H != pairs[j].H {
			return pairs[i].H < pairs[j].H
		}
		return pairs[i].M < pairs[j].M
	})
	res.Pairs = pairs
	res.Stats.Pairs = len(pairs)
	return res
}

// appendChain keeps a pair's chain list best-first (ties keep insertion
// order: forward before reverse).
func appendChain(chains []Chain, ch Chain) []Chain {
	chains = append(chains, ch)
	for i := len(chains) - 1; i > 0 && chains[i].Score > chains[i-1].Score; i-- {
		chains[i], chains[i-1] = chains[i-1], chains[i]
	}
	return chains
}

func countAnchoredPairs(pairs []Pair) int {
	// The builder merges consecutive (H, M) duplicates, so entries are
	// already distinct pairs.
	return len(pairs)
}

// verifyPairs re-scores each pair's chain windows through the banded
// kernels, dropping chains (and pairs) whose window aligns to nothing. The
// H window is the alignment's first word, so σ is used H-first exactly as
// the improve attempts do.
func verifyPairs(in *core.Instance, p Params, pairs []Pair) []Pair {
	scr := newVerifyScratch(in)
	defer scr.release()
	out := pairs[:0]
	for _, pr := range pairs {
		kept := pr.Chains[:0]
		for _, ch := range pr.Chains {
			if scr.positive(in, p, pr, ch) {
				kept = append(kept, ch)
			}
		}
		if len(kept) > 0 {
			pr.Chains = kept
			out = append(out, pr)
		}
	}
	return out
}

// PairList flattens the result into (H, M) index pairs — the improve
// driver's PairSet input.
func (r *Result) PairList() [][2]int32 {
	out := make([][2]int32, len(r.Pairs))
	for i, p := range r.Pairs {
		out[i] = [2]int32{int32(p.H), int32(p.M)}
	}
	return out
}

// exhaustivePairs computes the complete positive-σ pair mask: (f, g) is
// admitted iff some symbol of g scores positively against some symbol of f
// in either orientation class. The mask is a superset of every pair any
// improvement attempt can extract a positive alignment from, which is what
// makes seeded search under it bit-identical to all-pairs enumeration.
func exhaustivePairs(in *core.Instance, sx sigmaIndex) *Result {
	nh := in.NumFrags(core.SpeciesH)
	// Index H fragments by the canonical region IDs they contain.
	byCanon := make([][]int32, sx.maxID()+1)
	for hi := 0; hi < nh; hi++ {
		for _, s := range in.Frag(core.SpeciesH, hi).Regions {
			id := s.ID()
			if id <= 0 || int(id) >= len(byCanon) {
				continue
			}
			if l := byCanon[id]; len(l) == 0 || l[len(l)-1] != int32(hi) {
				byCanon[id] = append(byCanon[id], int32(hi))
			}
		}
	}
	res := &Result{}
	stamp := make([]int32, nh)
	for i := range stamp {
		stamp[i] = -1
	}
	var marked []int32
	for mi := 0; mi < in.NumFrags(core.SpeciesM); mi++ {
		marked = marked[:0]
		for _, b := range in.Frag(core.SpeciesM, mi).Regions {
			for _, ob := range [2]int32{int32(b), int32(b.Rev())} {
				sx.eachPartnerCanon(ob, func(id int32) {
					if int(id) >= len(byCanon) {
						return
					}
					for _, hi := range byCanon[id] {
						if stamp[hi] != int32(mi) {
							stamp[hi] = int32(mi)
							marked = append(marked, hi)
						}
					}
				})
			}
		}
		sort.Slice(marked, func(i, j int) bool { return marked[i] < marked[j] })
		for _, hi := range marked {
			res.Pairs = append(res.Pairs, Pair{H: int(hi), M: mi})
		}
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].H != res.Pairs[j].H {
			return res.Pairs[i].H < res.Pairs[j].H
		}
		return res.Pairs[i].M < res.Pairs[j].M
	})
	res.Stats.AnchoredPairs = len(res.Pairs)
	res.Stats.Pairs = len(res.Pairs)
	return res
}
