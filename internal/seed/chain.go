package seed

import (
	"math"
	"sort"

	"repro/internal/fenwick"
)

// Anchor is one exact seed hit between an H fragment and an oriented M
// fragment: k tokens starting at PosH on the H word and PosM on the
// (possibly reversed) M word.
type Anchor struct {
	H    int32
	PosH int32
	PosM int32
	Len  int32
	Rev  bool
}

// SortAnchors orders anchors by (H, Rev, PosH, PosM, Len) — the grouping
// and sweep order chainBest requires (forward groups before reverse).
func SortAnchors(a []Anchor) {
	sort.Slice(a, func(i, j int) bool {
		x, y := a[i], a[j]
		if x.H != y.H {
			return x.H < y.H
		}
		if x.Rev != y.Rev {
			return y.Rev
		}
		if x.PosH != y.PosH {
			return x.PosH < y.PosH
		}
		if x.PosM != y.PosM {
			return x.PosM < y.PosM
		}
		return x.Len < y.Len
	})
}

// chainScratch holds the chainer's reusable buffers: the prefix-max tree
// over M end positions, per-anchor DP values and parents, and the pending
// insertion order.
type chainScratch struct {
	tree   *fenwick.MaxTree
	f      []float64
	parent []int32
	byHEnd []int32
}

// chainBest finds the maximum-score colinear chain over one sorted anchor
// group (same H fragment and orientation; ascending (PosH, PosM)).
//
// Chain score is Σ len(aᵢ) − gap·Σ (gapH(i) + gapM(i)) where the gaps are
// the distances between consecutive anchor starts and the previous anchor's
// ends: anchor p may precede c when p.hEnd ≤ c.PosH and p.mEnd ≤ c.PosM
// (strictly colinear, non-overlapping on both axes). Because the penalty is
// decomposable — gap cost = gap·(c.PosH + c.PosM) − gap·(p.hEnd + p.mEnd) —
// the best predecessor only depends on the prefix maximum of
// v(p) = f(p) + gap·(p.hEnd + p.mEnd) over eligible p, which a prefix-max
// tree over M end positions answers in O(log n): anchors are swept in
// (PosH, PosM) order and inserted into the tree once their hEnd falls
// behind the sweep (the byHEnd two-pointer), so the tree always contains
// exactly the hEnd-eligible anchors and the query PrefixMax(c.PosM+1)
// applies the mEnd constraint. O(n log n) overall.
//
// Ties break deterministically toward the smallest anchor index (both in
// the tree and in the final best pick), and a predecessor is taken only
// when it strictly improves on starting fresh — chainBestBrute mirrors
// these rules expression-for-expression, which is what makes the oracle
// test an exact float comparison.
func chainBest(anchors []Anchor, gap float64, cs *chainScratch) Chain {
	n := len(anchors)
	if n == 0 {
		return Chain{}
	}
	maxMEnd := 0
	for _, a := range anchors {
		if e := int(a.PosM + a.Len); e > maxMEnd {
			maxMEnd = e
		}
	}
	if cs.tree == nil || cs.tree.Len() < maxMEnd+1 {
		cs.tree = fenwick.NewMax(maxMEnd + 1)
	} else {
		cs.tree.Reset()
	}
	if cap(cs.f) < n {
		cs.f = make([]float64, n)
		cs.parent = make([]int32, n)
		cs.byHEnd = make([]int32, n)
	}
	f, parent, byHEnd := cs.f[:n], cs.parent[:n], cs.byHEnd[:n]
	for i := range byHEnd {
		byHEnd[i] = int32(i)
	}
	sort.Slice(byHEnd, func(i, j int) bool {
		x, y := byHEnd[i], byHEnd[j]
		ex := anchors[x].PosH + anchors[x].Len
		ey := anchors[y].PosH + anchors[y].Len
		if ex != ey {
			return ex < ey
		}
		return x < y
	})
	bestIdx, bestF := 0, 0.0
	p := 0
	for i, a := range anchors {
		// Delayed insertion: an anchor enters the tree only once its H end
		// is at or behind the sweep front — its f is final by then, since
		// hEnd ≤ a.PosH implies it precedes a in (PosH, PosM) order.
		for p < n {
			j := byHEnd[p]
			pj := anchors[j]
			hEnd := pj.PosH + pj.Len
			if hEnd > a.PosH {
				break
			}
			mEnd := pj.PosM + pj.Len
			cs.tree.Update(int(mEnd), f[j]+gap*float64(hEnd+mEnd), j)
			p++
		}
		q, id := cs.tree.PrefixMax(int(a.PosM) + 1)
		fi := float64(a.Len)
		par := int32(-1)
		if id >= 0 {
			if cand := q - gap*float64(a.PosH+a.PosM); cand > 0 {
				fi += cand
				par = id
			}
		}
		f[i], parent[i] = fi, par
		if fi > bestF || i == 0 {
			bestF, bestIdx = fi, i
		}
	}
	// Backtrack to the chain's first anchor for the window span.
	first, count := int32(bestIdx), 1
	for parent[first] >= 0 {
		first = parent[first]
		count++
	}
	fa, la := anchors[first], anchors[bestIdx]
	return Chain{
		Rev:     la.Rev,
		Score:   bestF,
		Anchors: count,
		HLo:     int(fa.PosH),
		HHi:     int(la.PosH + la.Len),
		MLo:     int(fa.PosM),
		MHi:     int(la.PosM + la.Len),
	}
}

// chainBestBrute is the O(n²) reference chainer: identical grouping,
// predecessor rule, float expressions, and tie-breaks as chainBest, so the
// two agree bit-for-bit on any sorted group (the oracle test's contract).
func chainBestBrute(anchors []Anchor, gap float64) Chain {
	n := len(anchors)
	if n == 0 {
		return Chain{}
	}
	f := make([]float64, n)
	parent := make([]int32, n)
	bestIdx, bestF := 0, 0.0
	for i, a := range anchors {
		q, id := math.Inf(-1), int32(-1)
		for j := 0; j < i; j++ {
			pj := anchors[j]
			hEnd, mEnd := pj.PosH+pj.Len, pj.PosM+pj.Len
			if hEnd > a.PosH || mEnd > a.PosM {
				continue
			}
			if v := f[j] + gap*float64(hEnd+mEnd); v > q {
				q, id = v, int32(j)
			}
		}
		fi := float64(a.Len)
		par := int32(-1)
		if id >= 0 {
			if cand := q - gap*float64(a.PosH+a.PosM); cand > 0 {
				fi += cand
				par = id
			}
		}
		f[i], parent[i] = fi, par
		if fi > bestF || i == 0 {
			bestF, bestIdx = fi, i
		}
	}
	first, count := int32(bestIdx), 1
	for parent[first] >= 0 {
		first = parent[first]
		count++
	}
	fa, la := anchors[first], anchors[bestIdx]
	return Chain{
		Rev:     la.Rev,
		Score:   bestF,
		Anchors: count,
		HLo:     int(fa.PosH),
		HHi:     int(la.PosH + la.Len),
		MLo:     int(fa.PosM),
		MHi:     int(la.PosM + la.Len),
	}
}
