package symbol

// Word is a sequence of symbols over the duplicated alphabet: a fragment, a
// padded sequence, or a conjecture sequence.
type Word []Symbol

// Rev returns the reversal of w: the order of symbols is reversed and each
// symbol is individually reversed, so that (uv)ᴿ = vᴿuᴿ and (wᴿ)ᴿ = w.
// The receiver is not modified.
func (w Word) Rev() Word {
	r := make(Word, len(w))
	for i, s := range w {
		r[len(w)-1-i] = s.Rev()
	}
	return r
}

// Clone returns a copy of w.
func (w Word) Clone() Word {
	c := make(Word, len(w))
	copy(c, w)
	return c
}

// Equal reports whether w and v are identical symbol sequences.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// StripPads returns w with every padding symbol removed. The receiver is not
// modified; if w contains no pads the original slice is returned.
func (w Word) StripPads() Word {
	n := 0
	for _, s := range w {
		if !s.IsPad() {
			n++
		}
	}
	if n == len(w) {
		return w
	}
	r := make(Word, 0, n)
	for _, s := range w {
		if !s.IsPad() {
			r = append(r, s)
		}
	}
	return r
}

// CountPads returns the number of padding symbols in w.
func (w Word) CountPads() int {
	n := 0
	for _, s := range w {
		if s.IsPad() {
			n++
		}
	}
	return n
}

// Concat returns the concatenation of the given words as a fresh Word.
func Concat(words ...Word) Word {
	n := 0
	for _, w := range words {
		n += len(w)
	}
	r := make(Word, 0, n)
	for _, w := range words {
		r = append(r, w...)
	}
	return r
}

// Sub returns the site w(lo..hi) as a sub-word, using half-open 0-based
// indexing [lo, hi). It panics if the bounds are invalid, matching slice
// semantics. The returned word shares storage with w.
func (w Word) Sub(lo, hi int) Word { return w[lo:hi] }

// Orient returns w if rev is false and wᴿ otherwise.
func (w Word) Orient(rev bool) Word {
	if rev {
		return w.Rev()
	}
	return w
}

// IsPadded reports whether w contains at least one padding symbol.
func (w Word) IsPadded() bool {
	for _, s := range w {
		if s.IsPad() {
			return true
		}
	}
	return false
}

// IsPaddingOf reports whether w can be obtained from s by inserting padding
// symbols (w ∈ P_s in the paper's notation).
func (w Word) IsPaddingOf(s Word) bool {
	j := 0
	for _, c := range w {
		if c.IsPad() {
			continue
		}
		if j >= len(s) || s[j] != c {
			return false
		}
		j++
	}
	return j == len(s)
}

// IsSubsequenceOf reports whether the pad-free content of w is a subsequence
// of s. This is the "subsequence building block" variant of Remark 1.
func (w Word) IsSubsequenceOf(s Word) bool {
	j := 0
	for _, c := range s {
		if j < len(w) && w[j] == c {
			j++
		}
	}
	return j == len(w)
}
