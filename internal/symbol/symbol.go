// Package symbol implements the duplicated alphabet Σ ∪ Σᴿ of the paper
// "Aligning two fragmented sequences" (Veeramachaneni, Berman, Miller).
//
// Each conserved region is a symbol of a duplicated alphabet Σ̃ = Σ ∪ Σᴿ.
// A fragment (contig) is a word over Σ̃. The reversal operation satisfies
//
//	Σ ∩ Σᴿ = ∅
//	a ∈ Σ ⇒ aᴿ ∈ Σᴿ and a ∈ Σᴿ ⇒ aᴿ ∈ Σ
//	(uv)ᴿ = vᴿ uᴿ
//	(uᴿ)ᴿ = u
//
// plus the padding symbol ⊥ with ⊥ᴿ = ⊥.
//
// Symbols are represented as int32: 0 is the padding symbol ⊥, a positive
// value k is region k in normal orientation, and −k is region k reversed.
// Reversal is therefore negation, and all the laws above hold by
// construction.
package symbol

// Symbol is one conserved region occurrence (normal or reversed) or the
// padding symbol Pad.
type Symbol int32

// Pad is the padding symbol ⊥. It is its own reversal and scores 0 against
// every symbol.
const Pad Symbol = 0

// Rev returns the reversal of s: region k becomes kᴿ and vice versa; the
// padding symbol is fixed (⊥ᴿ = ⊥).
func (s Symbol) Rev() Symbol { return -s }

// IsPad reports whether s is the padding symbol ⊥.
func (s Symbol) IsPad() bool { return s == 0 }

// Reversed reports whether s is a reversed region occurrence (member of Σᴿ).
// The padding symbol is not reversed.
func (s Symbol) Reversed() bool { return s < 0 }

// ID returns the region identity of s, ignoring orientation. ID(⊥) = 0.
// Two occurrences a and aᴿ have the same ID.
func (s Symbol) ID() int32 {
	if s < 0 {
		return int32(-s)
	}
	return int32(s)
}

// Canon returns the canonical (normal-orientation) form of s.
func (s Symbol) Canon() Symbol {
	if s < 0 {
		return -s
	}
	return s
}
