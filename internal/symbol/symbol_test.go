package symbol

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPadProperties(t *testing.T) {
	if !Pad.IsPad() {
		t.Fatal("Pad.IsPad() = false")
	}
	if Pad.Rev() != Pad {
		t.Fatalf("⊥ᴿ = %d, want ⊥", Pad.Rev())
	}
	if Pad.ID() != 0 {
		t.Fatalf("Pad.ID() = %d, want 0", Pad.ID())
	}
	if Pad.Reversed() {
		t.Fatal("Pad.Reversed() = true")
	}
}

func TestRevInvolutionSymbol(t *testing.T) {
	f := func(x int32) bool {
		s := Symbol(x)
		return s.Rev().Rev() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRevSwapsAlphabetHalves(t *testing.T) {
	s := Symbol(7)
	if s.Reversed() {
		t.Fatal("positive symbol reported reversed")
	}
	if !s.Rev().Reversed() {
		t.Fatal("reversal of normal symbol not reversed")
	}
	if s.Rev().ID() != s.ID() {
		t.Fatal("reversal changed region identity")
	}
	if s.Canon() != s || s.Rev().Canon() != s {
		t.Fatal("Canon mismatch")
	}
}

func TestRevDisjointness(t *testing.T) {
	// Σ ∩ Σᴿ = ∅: no non-pad symbol equals its own reversal.
	f := func(x int32) bool {
		s := Symbol(x)
		if s.IsPad() {
			return true
		}
		return s.Rev() != s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randWord(r *rand.Rand, n, alpha int) Word {
	w := make(Word, n)
	for i := range w {
		s := Symbol(r.Intn(alpha) + 1)
		if r.Intn(2) == 0 {
			s = s.Rev()
		}
		w[i] = s
	}
	return w
}

func TestWordRevInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		w := randWord(r, r.Intn(30), 10)
		if !w.Rev().Rev().Equal(w) {
			t.Fatalf("(wᴿ)ᴿ ≠ w for %v", w)
		}
	}
}

func TestWordRevAntihomomorphism(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		u := randWord(r, r.Intn(15), 8)
		v := randWord(r, r.Intn(15), 8)
		lhs := Concat(u, v).Rev()
		rhs := Concat(v.Rev(), u.Rev())
		if !lhs.Equal(rhs) {
			t.Fatalf("(uv)ᴿ ≠ vᴿuᴿ: u=%v v=%v", u, v)
		}
	}
}

func TestStripPads(t *testing.T) {
	w := Word{1, Pad, 2, Pad, Pad, -3}
	got := w.StripPads()
	want := Word{1, 2, -3}
	if !got.Equal(want) {
		t.Fatalf("StripPads = %v, want %v", got, want)
	}
	if w.CountPads() != 3 {
		t.Fatalf("CountPads = %d, want 3", w.CountPads())
	}
	// No-pad fast path returns the same backing array.
	v := Word{1, 2, 3}
	if &v[0] != &v.StripPads()[0] {
		t.Fatal("StripPads copied a pad-free word")
	}
}

func TestIsPaddingOf(t *testing.T) {
	s := Word{1, 2, -3}
	cases := []struct {
		w    Word
		want bool
	}{
		{Word{1, 2, -3}, true},
		{Word{Pad, 1, Pad, 2, -3, Pad}, true},
		{Word{1, 2}, false},
		{Word{1, 2, 3}, false},
		{Word{2, 1, -3}, false},
		{Word{}, false},
	}
	for _, c := range cases {
		if got := c.w.IsPaddingOf(s); got != c.want {
			t.Errorf("IsPaddingOf(%v, %v) = %v, want %v", c.w, s, got, c.want)
		}
	}
	if !(Word{}).IsPaddingOf(Word{}) {
		t.Error("empty word should be padding of empty word")
	}
}

func TestIsSubsequenceOf(t *testing.T) {
	s := Word{1, 2, 3, 4, 5}
	if !(Word{1, 3, 5}).IsSubsequenceOf(s) {
		t.Error("1 3 5 should be a subsequence")
	}
	if (Word{3, 1}).IsSubsequenceOf(s) {
		t.Error("3 1 should not be a subsequence")
	}
	if !(Word{}).IsSubsequenceOf(s) {
		t.Error("empty word is a subsequence of anything")
	}
}

func TestPaddingRevCommutes(t *testing.T) {
	// Padding then reversing equals reversing then padding (at mirrored
	// positions): wᴿ strips to (strip(w))ᴿ.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		w := randWord(r, r.Intn(20), 6)
		// Insert pads at random positions.
		padded := make(Word, 0, len(w)+5)
		for _, s := range w {
			for r.Intn(3) == 0 {
				padded = append(padded, Pad)
			}
			padded = append(padded, s)
		}
		lhs := padded.Rev().StripPads()
		rhs := padded.StripPads().Rev()
		if !lhs.Equal(rhs) {
			t.Fatalf("strip/rev do not commute: %v", padded)
		}
	}
}

func TestAlphabetInternLookup(t *testing.T) {
	a := NewAlphabet()
	s1 := a.Intern("alpha")
	s2 := a.Intern("beta")
	if s1 == s2 {
		t.Fatal("distinct names interned to same symbol")
	}
	if got := a.Intern("alpha"); got != s1 {
		t.Fatal("re-interning changed symbol")
	}
	if got, ok := a.Lookup("beta"); !ok || got != s2 {
		t.Fatal("Lookup failed for interned name")
	}
	if _, ok := a.Lookup("gamma"); ok {
		t.Fatal("Lookup succeeded for unknown name")
	}
	if a.Size() != 2 {
		t.Fatalf("Size = %d, want 2", a.Size())
	}
}

func TestAlphabetNameFormat(t *testing.T) {
	a := NewAlphabet()
	s := a.Intern("a")
	if a.Name(s) != "a" {
		t.Fatalf("Name = %q, want a", a.Name(s))
	}
	if a.Name(s.Rev()) != "a'" {
		t.Fatalf("Name(rev) = %q, want a'", a.Name(s.Rev()))
	}
	if a.Name(Pad) != "-" {
		t.Fatalf("Name(Pad) = %q, want -", a.Name(Pad))
	}
	if a.Name(Symbol(999)) != "#999" {
		t.Fatalf("out-of-range Name = %q", a.Name(Symbol(999)))
	}
}

func TestParseWordRoundTrip(t *testing.T) {
	a := NewAlphabet()
	w, err := a.ParseWord("a b' c - a'")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 5 {
		t.Fatalf("parsed %d symbols, want 5", len(w))
	}
	text := a.FormatWord(w)
	w2, err := a.ParseWord(text)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(w2) {
		t.Fatalf("round trip: %v != %v", w, w2)
	}
	if w[0] != w[4].Rev() {
		t.Fatal("a and a' should be reversals")
	}
	if !w[3].IsPad() {
		t.Fatal("- should parse to Pad")
	}
}

func TestParseSymbolErrors(t *testing.T) {
	a := NewAlphabet()
	if _, err := a.ParseSymbol(""); err == nil {
		t.Error("empty token should fail")
	}
	if _, err := a.ParseSymbol("'"); err == nil {
		t.Error("bare reversal marker should fail")
	}
}

func TestConcatAndSub(t *testing.T) {
	u := Word{1, 2}
	v := Word{3}
	w := Concat(u, v)
	if !w.Equal(Word{1, 2, 3}) {
		t.Fatalf("Concat = %v", w)
	}
	if !w.Sub(1, 3).Equal(Word{2, 3}) {
		t.Fatalf("Sub = %v", w.Sub(1, 3))
	}
	if !w.Orient(true).Equal(Word{-3, -2, -1}) {
		t.Fatalf("Orient(true) = %v", w.Orient(true))
	}
	if !w.Orient(false).Equal(w) {
		t.Fatal("Orient(false) changed word")
	}
}
