package symbol

import (
	"fmt"
	"strings"
)

// Alphabet interns region names and assigns them stable positive symbol IDs.
// The zero value is not usable; create one with NewAlphabet. An Alphabet is
// not safe for concurrent mutation; concurrent reads are fine.
type Alphabet struct {
	names []string         // names[0] is unused (⊥); names[k] is region k
	index map[string]int32 // name → region id
}

// NewAlphabet returns an empty alphabet.
func NewAlphabet() *Alphabet {
	return &Alphabet{
		names: []string{"⊥"},
		index: make(map[string]int32),
	}
}

// Intern returns the normal-orientation symbol for the region with the given
// name, creating a fresh region ID on first use. Names must be non-empty and
// must not end with the reversal marker '.
func (a *Alphabet) Intern(name string) Symbol {
	if id, ok := a.index[name]; ok {
		return Symbol(id)
	}
	id := int32(len(a.names))
	a.names = append(a.names, name)
	a.index[name] = id
	return Symbol(id)
}

// Lookup returns the normal-orientation symbol for name, or (Pad, false) if
// the name has never been interned.
func (a *Alphabet) Lookup(name string) (Symbol, bool) {
	id, ok := a.index[name]
	return Symbol(id), ok
}

// Size returns the number of distinct regions interned so far.
func (a *Alphabet) Size() int { return len(a.names) - 1 }

// Name formats s using the interned names: region k prints as its name,
// kᴿ as the name followed by ', and ⊥ as "-". Symbols outside the alphabet
// print as #k / #k'.
func (a *Alphabet) Name(s Symbol) string {
	if s.IsPad() {
		return "-"
	}
	id := s.ID()
	var base string
	if int(id) < len(a.names) {
		base = a.names[id]
	} else {
		base = fmt.Sprintf("#%d", id)
	}
	if s.Reversed() {
		return base + "'"
	}
	return base
}

// FormatWord renders w as space-separated symbol names.
func (a *Alphabet) FormatWord(w Word) string {
	parts := make([]string, len(w))
	for i, s := range w {
		parts[i] = a.Name(s)
	}
	return strings.Join(parts, " ")
}

// ParseSymbol parses one token: a region name, optionally suffixed with '
// for reversal, or "-" for the padding symbol. Unknown names are interned.
func (a *Alphabet) ParseSymbol(tok string) (Symbol, error) {
	if tok == "" {
		return Pad, fmt.Errorf("symbol: empty token")
	}
	if tok == "-" {
		return Pad, nil
	}
	rev := false
	if strings.HasSuffix(tok, "'") {
		rev = true
		tok = strings.TrimSuffix(tok, "'")
		if tok == "" {
			return Pad, fmt.Errorf("symbol: bare reversal marker")
		}
	}
	s := a.Intern(tok)
	if rev {
		s = s.Rev()
	}
	return s, nil
}

// ParseWord parses a whitespace-separated list of symbol tokens.
func (a *Alphabet) ParseWord(text string) (Word, error) {
	fields := strings.Fields(text)
	w := make(Word, 0, len(fields))
	for _, f := range fields {
		s, err := a.ParseSymbol(f)
		if err != nil {
			return nil, err
		}
		w = append(w, s)
	}
	return w, nil
}
