package onecsr

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/score"
	"repro/internal/symbol"
)

func randInstance(r *rand.Rand, hFrags, mFrags, fragLen, alpha int) *core.Instance {
	al := symbol.NewAlphabet()
	syms := make([]symbol.Symbol, alpha)
	for i := range syms {
		syms[i] = al.Intern(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	tb := score.NewTable()
	for trial := 0; trial < alpha*3; trial++ {
		a := syms[r.Intn(alpha)]
		b := syms[r.Intn(alpha)]
		if r.Intn(2) == 0 {
			b = b.Rev()
		}
		tb.Set(a, b, float64(1+r.Intn(9)))
	}
	mk := func(n int) []core.Fragment {
		fs := make([]core.Fragment, n)
		for i := range fs {
			w := make(symbol.Word, 1+r.Intn(fragLen))
			for j := range w {
				w[j] = syms[r.Intn(alpha)]
				if r.Intn(4) == 0 {
					w[j] = w[j].Rev()
				}
			}
			fs[i] = core.Fragment{Name: "f", Regions: w}
		}
		return fs
	}
	return &core.Instance{H: mk(hFrags), M: mk(mFrags), Alpha: al, Sigma: tb}
}

func TestSolveOnePaperStyle(t *testing.T) {
	// 1-CSR variant of the paper example: M is a single contig s t u v.
	base := core.PaperExample()
	in := &core.Instance{
		H:     base.H,
		M:     []core.Fragment{{Name: "m", Regions: symbol.Concat(base.M[0].Regions, base.M[1].Regions)}},
		Alpha: base.Alpha,
		Sigma: base.Sigma,
	}
	sol, err := SolveOne(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("1-CSR solution inconsistent")
	}
	// Optimum of the single-M instance (computable exactly) bounds it by
	// at most 2×.
	opt, err := exact.Solve(in, exact.Solver{})
	if err != nil {
		t.Fatal(err)
	}
	if 2*sol.Score() < opt.Score-1e-9 {
		t.Fatalf("1-CSR ratio violated: %v vs opt %v", sol.Score(), opt.Score)
	}
}

func TestSolveOneRequiresSingleM(t *testing.T) {
	in := core.PaperExample()
	if _, err := SolveOne(in); err == nil {
		t.Fatal("multi-M instance accepted")
	}
}

func TestSolveOneRatioRandom(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 50; trial++ {
		in := randInstance(r, 1+r.Intn(4), 1, 3, 5)
		sol, err := SolveOne(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := sol.Validate(in); err != nil {
			t.Fatal(err)
		}
		if !sol.IsConsistent(in) {
			t.Fatal("inconsistent 1-CSR solution")
		}
		opt, err := exact.Solve(in, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		if 2*sol.Score() < opt.Score-1e-9 {
			t.Fatalf("ratio >2: sol %v opt %v", sol.Score(), opt.Score)
		}
		if sol.Score() > opt.Score+1e-9 {
			t.Fatalf("approximation beats exact: %v > %v", sol.Score(), opt.Score)
		}
	}
}

func TestFourApproxPaperExample(t *testing.T) {
	in := core.PaperExample()
	sol, err := FourApprox(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("4-approx solution inconsistent")
	}
	if 4*sol.Score() < 11-1e-9 {
		t.Fatalf("4-approx below opt/4: %v", sol.Score())
	}
}

func TestFourApproxRatioRandom(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(r, 1+r.Intn(3), 1+r.Intn(3), 3, 5)
		sol, err := FourApprox(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := sol.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !sol.IsConsistent(in) {
			t.Fatalf("trial %d: inconsistent", trial)
		}
		opt, err := exact.Solve(in, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		if 4*sol.Score() < opt.Score-1e-9 {
			t.Fatalf("4-approx ratio violated: %v vs %v", sol.Score(), opt.Score)
		}
		if sol.Score() > opt.Score+1e-9 {
			t.Fatalf("beats exact: %v > %v", sol.Score(), opt.Score)
		}
	}
}

func TestDoublingInequality(t *testing.T) {
	// Theorem 3 inequality (2): Opt(H,M′) + Opt(M,H′) ≥ Opt(H,M).
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 25; trial++ {
		in := randInstance(r, 1+r.Intn(3), 1+r.Intn(3), 2, 4)
		cat, _ := concatM(in)
		optHM2, err := exact.Solve(cat, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		tcat, _ := concatM(Transpose(in))
		optMH2, err := exact.Solve(tcat, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(in, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		if optHM2.Score+optMH2.Score < opt.Score-1e-9 {
			t.Fatalf("inequality (2) violated: %v + %v < %v",
				optHM2.Score, optMH2.Score, opt.Score)
		}
	}
}

func TestTranspose(t *testing.T) {
	in := core.PaperExample()
	tin := Transpose(in)
	if len(tin.H) != len(in.M) || len(tin.M) != len(in.H) {
		t.Fatal("transpose shape wrong")
	}
	// σᵀ(s, a) = σ(a, s) = 4.
	a, _ := in.Alpha.Lookup("a")
	s, _ := in.Alpha.Lookup("s")
	if got := tin.Sigma.Score(s, a); got != 4 {
		t.Fatalf("σᵀ(s,a) = %v, want 4", got)
	}
}

func TestSplitAcrossBoundaryReversed(t *testing.T) {
	// The straddling window aligns in reversed orientation: h = ⟨x y⟩ with
	// σ(x, qᴿ) and σ(y, pᴿ), so h pairs (m1 m2)ᴿ across the boundary.
	al := symbol.NewAlphabet()
	x, y := al.Intern("x"), al.Intern("y")
	p, q := al.Intern("p"), al.Intern("q")
	tb := score.NewTable()
	tb.Set(x, q.Rev(), 5)
	tb.Set(y, p.Rev(), 5)
	in := &core.Instance{
		H: []core.Fragment{{Name: "h", Regions: symbol.Word{x, y}}},
		M: []core.Fragment{
			{Name: "m1", Regions: symbol.Word{p}},
			{Name: "m2", Regions: symbol.Word{q}},
		},
		Alpha: al,
		Sigma: tb,
	}
	sol, err := FourApprox(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Score() != 10 {
		t.Fatalf("score %v, want 10", sol.Score())
	}
	if len(sol.Matches) != 2 {
		t.Fatalf("matches %d, want 2 split parts", len(sol.Matches))
	}
	for _, mt := range sol.Matches {
		if !mt.Rev {
			t.Fatalf("reversed straddle lost orientation: %+v", mt)
		}
	}
	conj, err := sol.BuildConjecture(in)
	if err != nil {
		t.Fatalf("reversed chain inconsistent: %v", err)
	}
	// The realized M layout must place m2 before m1 (both reversed) or the
	// global flip thereof.
	if len(conj.MOrder) != 2 {
		t.Fatalf("M order %v", conj.MOrder)
	}
}

func TestSplitThreeWayChain(t *testing.T) {
	// h straddles three M fragments; the middle one must come back as a
	// full-site satellite and the ends as border claims.
	al := symbol.NewAlphabet()
	regs := make([]symbol.Symbol, 3)
	h := make(symbol.Word, 3)
	tb := score.NewTable()
	m := make([]core.Fragment, 3)
	for i := range regs {
		regs[i] = al.Intern(string(rune('p' + i)))
		h[i] = al.Intern(string(rune('x' + i)))
		tb.Set(h[i], regs[i], 4)
		m[i] = core.Fragment{Name: string(rune('1' + i)), Regions: symbol.Word{regs[i]}}
	}
	in := &core.Instance{
		H:     []core.Fragment{{Name: "h", Regions: h}},
		M:     m,
		Alpha: al,
		Sigma: tb,
	}
	sol, err := FourApprox(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Score() != 12 || len(sol.Matches) != 3 {
		t.Fatalf("score %v matches %d", sol.Score(), len(sol.Matches))
	}
	if !sol.IsConsistent(in) {
		t.Fatal("three-way chain inconsistent")
	}
	fullCount := 0
	for _, mt := range sol.Matches {
		if in.KindOf(mt) == core.FullMatch {
			fullCount++
		}
	}
	if fullCount < 1 {
		t.Fatal("middle fragment not a full match")
	}
}

func TestSplitAcrossBoundary(t *testing.T) {
	// An H fragment whose best window straddles two M fragments must come
	// back as a consistent chain.
	al := symbol.NewAlphabet()
	x, y := al.Intern("x"), al.Intern("y")
	p, q := al.Intern("p"), al.Intern("q")
	tb := score.NewTable()
	tb.Set(x, p, 5)
	tb.Set(y, q, 5)
	in := &core.Instance{
		H: []core.Fragment{{Name: "h", Regions: symbol.Word{x, y}}},
		M: []core.Fragment{
			{Name: "m1", Regions: symbol.Word{p}},
			{Name: "m2", Regions: symbol.Word{q}},
		},
		Alpha: al,
		Sigma: tb,
	}
	sol, err := FourApprox(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Score() != 10 {
		t.Fatalf("score %v, want 10", sol.Score())
	}
	if !sol.IsConsistent(in) {
		t.Fatal("straddling solution inconsistent")
	}
	if len(sol.Matches) != 2 {
		t.Fatalf("expected 2 split matches, got %d", len(sol.Matches))
	}
}
