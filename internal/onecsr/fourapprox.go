package onecsr

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/score"
)

// Transpose returns the instance with species swapped (H′ = M, M′ = H and
// σ transposed). A solution of the transposed instance maps back by
// swapping the sides of every match. A compiled σ transposes into a
// compiled matrix, so both halves of the Theorem 3 doubling stay on the
// dense fast path.
func Transpose(in *core.Instance) *core.Instance {
	return &core.Instance{
		Name:  in.Name + "ᵀ",
		H:     in.M,
		M:     in.H,
		Alpha: in.Alpha,
		Sigma: score.Transpose(in.Sigma),
	}
}

// transposeSolution swaps the sides of every match back.
func transposeSolution(sol *core.Solution) *core.Solution {
	out := &core.Solution{Matches: make([]core.Match, len(sol.Matches))}
	for i, mt := range sol.Matches {
		h, m := mt.MSite, mt.HSite
		h.Species, m.Species = core.SpeciesH, core.SpeciesM
		out.Matches[i] = core.Match{HSite: h, MSite: m, Rev: mt.Rev, Score: mt.Score}
	}
	return out
}

// FourApprox is Corollary 1: a polynomial-time 4-approximation for general
// CSR. It runs the ratio-2 1-CSR algorithm on (H, M′) and on (M, H′) —
// Theorem 3's doubling, where X′ concatenates a fragment set into one word —
// splits the concatenated matches back onto original fragments, and keeps
// the better of the two consistent solutions.
func FourApprox(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	// One prepared σ — dense float64, or the caller's int32-quantized
	// matrix — serves both doubling halves, every placement DP, and the
	// final validations.
	cin := *in
	cin.Sigma = score.Prepare(in.Sigma, in.MaxSymbolID())
	a, err := HalfOnConcat(&cin)
	if err != nil {
		return nil, err
	}
	tin := Transpose(&cin)
	bT, err := HalfOnConcat(tin)
	if err != nil {
		return nil, err
	}
	b := transposeSolution(bT)
	// Recompute scores under the original σ orientation (they are equal,
	// but the cached values must verify against in.Sigma).
	scr := align.NewScratch()
	for i := range b.Matches {
		mt := &b.Matches[i]
		mt.Score = scr.Score(in.SiteWord(mt.HSite), in.SiteWord(mt.MSite).Orient(mt.Rev), cin.Sigma)
	}
	scr.Release()
	if err := b.Validate(&cin); err != nil {
		return nil, fmt.Errorf("onecsr: transposed solution invalid: %w", err)
	}
	if a.Score() >= b.Score() {
		return a, nil
	}
	return b, nil
}

// HalfOnConcat runs the ratio-2 1-CSR algorithm on (H, M′) where M′ is the
// concatenation of all M fragments, then splits matches back across
// fragment boundaries. By inequality (2) of Theorem 3, the better of this
// and its transpose is a 4-approximation.
func HalfOnConcat(in *core.Instance) (*core.Solution, error) {
	if len(in.M) == 1 {
		sol, err := SolveOne(in)
		if err != nil {
			return nil, err
		}
		if err := sol.Validate(in); err != nil {
			return nil, err
		}
		return sol, nil
	}
	cat, bounds := concatM(in)
	sol, err := SolveOne(cat)
	if err != nil {
		return nil, err
	}
	return splitByBounds(in, cat, bounds, sol)
}
