// Package onecsr implements §3.3–3.4: the 1-CSR restriction (a single M
// fragment), its reduction to the Interval Selection Problem, the Theorem 3
// doubling that lifts any 1-CSR algorithm to general CSR at twice the
// ratio, and the resulting Corollary 1 algorithm — a polynomial-time
// 4-approximation for CSR built on the ratio-2 two-phase ISP algorithm.
package onecsr

import (
	"fmt"
	"sort"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/isp"
	"repro/internal/score"
)

// placementSet builds the ISP instance of §3.4 for fragments H against a
// single reference word (fragment mIdx of species M): every Pareto-optimal
// fit placement of every H fragment, in both orientations, becomes an
// interval with profit MS(hᵢ, m(d,e)).
func placementSet(scr *align.Scratch, in *core.Instance, mIdx int) []isp.Interval {
	m := in.M[mIdx].Regions
	var out []isp.Interval
	id := 0
	for hi := range in.H {
		h := in.H[hi].Regions
		for orient := 0; orient < 2; orient++ {
			rev := orient == 1
			for _, p := range scr.Placements(h.Orient(rev), m, in.Sigma, 0) {
				out = append(out, isp.Interval{
					ID:     id<<1 | orient,
					Job:    hi,
					Lo:     p.Lo,
					Hi:     p.Hi,
					Profit: p.Score,
				})
				id++
			}
		}
	}
	return out
}

// SolveOne solves a 1-CSR instance (single M fragment) via the two-phase
// ISP algorithm, returning a consistent solution of full H-site matches
// into disjoint windows of m — ratio 2 by Berman–DasGupta.
func SolveOne(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(in.M) != 1 {
		return nil, fmt.Errorf("onecsr: instance has %d M fragments, want 1", len(in.M))
	}
	// Prepare σ once for the whole placement sweep (a no-op when the caller
	// already passed a prepared instance, as FourApprox does); one scratch
	// arena serves every placement DP and match re-score of the solve.
	cin := *in
	cin.Sigma = score.Prepare(in.Sigma, in.MaxSymbolID())
	scr := align.NewScratch()
	defer scr.Release()
	res := isp.TwoPhase(placementSet(scr, &cin, 0))
	sol := &core.Solution{}
	for _, iv := range res.Selected {
		rev := iv.ID&1 == 1
		h := in.H[iv.Job].Regions
		hs := core.Site{Species: core.SpeciesH, Frag: iv.Job, Lo: 0, Hi: len(h)}
		ms := core.Site{Species: core.SpeciesM, Frag: 0, Lo: iv.Lo, Hi: iv.Hi}
		sol.Matches = append(sol.Matches, core.Match{
			HSite: hs,
			MSite: ms,
			Rev:   rev,
			Score: scr.Score(h, in.SiteWord(ms).Orient(rev), cin.Sigma),
		})
	}
	return sol, nil
}

// concatM builds the Theorem 3 companion instance (H, M′): all M fragments
// concatenated, in given order and orientation, into a single fragment.
// boundaries[i] is the start offset of fragment i in the concatenation.
func concatM(in *core.Instance) (*core.Instance, []int) {
	bounds := make([]int, len(in.M)+1)
	var w []core.Fragment
	var cat core.Fragment
	cat.Name = "M'"
	for i, f := range in.M {
		bounds[i] = len(cat.Regions)
		cat.Regions = append(cat.Regions, f.Regions...)
	}
	bounds[len(in.M)] = len(cat.Regions)
	w = append(w, cat)
	return &core.Instance{
		Name:  in.Name + "+concatM",
		H:     in.H,
		M:     w,
		Alpha: in.Alpha,
		Sigma: in.Sigma,
	}, bounds
}

// splitByBounds maps a solution of the concatenated instance back to the
// original: every match window on M′ is split at fragment boundaries, the
// alignment columns are partitioned accordingly, and each part becomes a
// match against the original fragment. Scores are re-computed per part (they
// can only grow). H fragments whose window spans several M fragments become
// chain (caterpillar) fragments, which remain consistent.
func splitByBounds(in *core.Instance, cat *core.Instance, bounds []int, sol *core.Solution) (*core.Solution, error) {
	out := &core.Solution{}
	scr := align.NewScratch()
	defer scr.Release()
	fragOf := func(pos int) int {
		return sort.SearchInts(bounds, pos+1) - 1
	}
	for _, mt := range sol.Matches {
		h := cat.SiteWord(mt.HSite)
		mw := cat.SiteWord(mt.MSite)
		_, cols := scr.Align(h, mw.Orient(mt.Rev), cat.Sigma)
		if len(cols) == 0 {
			continue
		}
		// Columns are in oriented-m coordinates; map back to absolute
		// positions on M′, then split by original fragment.
		type part struct {
			mFrag    int
			hLo, hHi int
			mLo, mHi int
		}
		var parts []part
		for _, c := range cols {
			mpos := mt.MSite.Lo + c.J
			if mt.Rev {
				mpos = mt.MSite.Lo + (mt.MSite.Len() - 1 - c.J)
			}
			f := fragOf(mpos)
			if len(parts) == 0 || parts[len(parts)-1].mFrag != f {
				parts = append(parts, part{mFrag: f, hLo: c.I, hHi: c.I + 1, mLo: mpos, mHi: mpos + 1})
			} else {
				p := &parts[len(parts)-1]
				p.hHi = c.I + 1
				if mpos < p.mLo {
					p.mLo = mpos
				}
				if mpos+1 > p.mHi {
					p.mHi = mpos + 1
				}
			}
		}
		// A straddling match becomes a chain of border matches: every part
		// site must reach its fragment end on the side facing its
		// neighbouring parts (the window covered those regions, so the
		// extensions stay disjoint from other matches), and the outer
		// h-sides extend to the h fragment's ends. Without the extensions a
		// later fill could slip a match beyond a chain link, which no
		// conjecture pair can realize.
		if len(parts) > 1 {
			for i := range parts {
				p := &parts[i]
				fLo, fHi := bounds[p.mFrag], bounds[p.mFrag+1]
				if i > 0 {
					if parts[i-1].mFrag > p.mFrag {
						p.mHi = fHi
					} else {
						p.mLo = fLo
					}
				}
				if i < len(parts)-1 {
					if parts[i+1].mFrag > p.mFrag {
						p.mHi = fHi
					} else {
						p.mLo = fLo
					}
				}
			}
			parts[0].hLo = -mt.HSite.Lo // extends to h position 0 below
			parts[len(parts)-1].hHi = cat.Frag(core.SpeciesH, mt.HSite.Frag).Len() - mt.HSite.Lo
		}
		for _, p := range parts {
			hs := core.Site{
				Species: core.SpeciesH,
				Frag:    mt.HSite.Frag,
				Lo:      mt.HSite.Lo + p.hLo,
				Hi:      mt.HSite.Lo + p.hHi,
			}
			ms := core.Site{
				Species: core.SpeciesM,
				Frag:    p.mFrag,
				Lo:      p.mLo - bounds[p.mFrag],
				Hi:      p.mHi - bounds[p.mFrag],
			}
			sc := scr.Score(in.SiteWord(hs), in.SiteWord(ms).Orient(mt.Rev), in.Sigma)
			out.Matches = append(out.Matches, core.Match{
				HSite: hs, MSite: ms, Rev: mt.Rev, Score: sc,
			})
		}
	}
	if err := out.Validate(in); err != nil {
		return nil, fmt.Errorf("onecsr: split solution invalid: %w", err)
	}
	return out, nil
}
