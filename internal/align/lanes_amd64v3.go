//go:build amd64.v3

package align

// GOAMD64=v3 (or higher) guarantees AVX2: skip the runtime probe.
const amd64v3 = true
