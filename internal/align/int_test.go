package align

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/symbol"
)

func randIntTable(r *rand.Rand, ids int, pairs int, integral bool) *score.Table {
	tb := score.NewTable()
	for k := 0; k < pairs; k++ {
		a := symbol.Symbol(1 + r.Intn(ids))
		b := symbol.Symbol(1 + r.Intn(ids))
		if r.Intn(2) == 0 {
			b = b.Rev()
		}
		if integral {
			tb.Set(a, b, float64(1+r.Intn(12)))
		} else {
			tb.Set(a, b, r.Float64()*12)
		}
	}
	return tb
}

func randIntWord(r *rand.Rand, ids, n int) symbol.Word {
	w := make(symbol.Word, n)
	for i := range w {
		w[i] = symbol.Symbol(1 + r.Intn(ids))
		if r.Intn(8) == 0 {
			w[i] = w[i].Rev()
		}
	}
	return w
}

// TestIntKernelsExactOnIntegralSigma: with an integer-valued σ the quantized
// kernels must agree with the float64 kernels bit for bit, on every kernel.
func TestIntKernelsExactOnIntegralSigma(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 50; trial++ {
		ids := 3 + r.Intn(12)
		tb := randIntTable(r, ids, 5+r.Intn(40), true)
		c := score.Compile(tb, int32(ids))
		ci := c.Int()
		if !ci.Exact() {
			t.Fatal("integral σ must quantize exactly")
		}
		a := randIntWord(r, ids, 1+r.Intn(60))
		b := randIntWord(r, ids, 1+r.Intn(60))
		if got, want := Score(a, b, ci), Score(a, b, c); got != want {
			t.Fatalf("trial %d: Score int %v != float %v", trial, got, want)
		}
		band := 1 + r.Intn(20)
		if got, want := ScoreBanded(a, b, ci, band), ScoreBanded(a, b, c, band); got != want {
			t.Fatalf("trial %d: ScoreBanded int %v != float %v", trial, got, want)
		}
		gi, ci2 := Hirschberg(a, b, ci)
		gf, _ := Hirschberg(a, b, c)
		if gi != gf {
			t.Fatalf("trial %d: Hirschberg int %v != float %v", trial, gi, gf)
		}
		if !ValidCols(ci2, len(a), len(b)) {
			t.Fatalf("trial %d: invalid int Hirschberg columns", trial)
		}
		si, colsI := Align(a, b, ci)
		sf, _ := Align(a, b, c)
		if si != sf || ColsScore(colsI) != sf {
			t.Fatalf("trial %d: Align int (%v, cols %v) != float %v", trial, si, ColsScore(colsI), sf)
		}
		pi := Placements(a, b, ci, 0)
		pf := Placements(a, b, c, 0)
		if len(pi) != len(pf) {
			t.Fatalf("trial %d: %d int placements != %d float", trial, len(pi), len(pf))
		}
		for i := range pi {
			if pi[i] != pf[i] {
				t.Fatalf("trial %d: placement %d: %+v != %+v", trial, i, pi[i], pf[i])
			}
		}
		wf := WavefrontAligner{Workers: 1 + r.Intn(3), BlockRows: 1 + r.Intn(30), BlockCols: 1 + r.Intn(30)}
		if got, want := wf.Score(a, b, ci), Score(a, b, ci); got != want {
			t.Fatalf("trial %d: wavefront int %v != serial int %v", trial, got, want)
		}
	}
}

// TestIntScoreBound: for arbitrary float σ, the dequantized integer score is
// within the proven quantization bound of the exact float score:
// |int − float| ≤ cellErr · min(|a|, |b|).
func TestIntScoreBound(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		ids := 3 + r.Intn(10)
		tb := randIntTable(r, ids, 5+r.Intn(30), false)
		c := score.Compile(tb, int32(ids))
		ci := c.Int()
		a := randIntWord(r, ids, 1+r.Intn(80))
		b := randIntWord(r, ids, 1+r.Intn(80))
		want := Score(a, b, c)
		got := Score(a, b, ci)
		bound := ci.Bound(min(len(a), len(b)))
		slack := 1e-9 * (1 + math.Abs(want))
		if d := math.Abs(got - want); d > bound+slack {
			t.Fatalf("trial %d: |%v − %v| = %v > bound %v (unit %v, %d×%d)",
				trial, got, want, d, bound, ci.Unit(), len(a), len(b))
		}
	}
}

// TestIntOverflowFallback: a quantization whose headroom cannot cover the
// word lengths must fall back to the exact float64 matrix — scores then match
// the float path exactly at any size.
func TestIntOverflowFallback(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	tb := randIntTable(r, 8, 30, false)
	c := score.Compile(tb, 8)
	ci := c.IntWithUnit(1e-12) // clamps to |q| ≤ 2^30: nothing fits alongside even 2 cells
	if ci.Fits(2) {
		t.Fatal("test premise: headroom must fail")
	}
	a := randIntWord(r, 8, 40)
	b := randIntWord(r, 8, 40)
	if got, want := Score(a, b, ci), Score(a, b, c); got != want {
		t.Fatalf("fallback Score %v != float %v", got, want)
	}
	if got, want := ScoreBanded(a, b, ci, 5), ScoreBanded(a, b, c, 5); got != want {
		t.Fatalf("fallback ScoreBanded %v != float %v", got, want)
	}
}

// TestIntOutOfRangeSymbols: symbols beyond the compiled range push the
// kernels onto the interface path, which scores dequantized cells for
// in-range pairs and exact base values beyond — deterministically.
func TestIntOutOfRangeSymbols(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tb := randIntTable(r, 12, 40, true)
	c := score.Compile(tb, 6) // covers only half the IDs
	ci := c.Int()
	a := randIntWord(r, 12, 20)
	b := randIntWord(r, 12, 20)
	if got, want := Score(a, b, ci), Score(a, b, score.Scorer(ci)); got != want {
		t.Fatalf("out-of-range int path diverged: %v != %v", got, want)
	}
}

// FuzzIntScoreBound drives the quantization-bound property from fuzzed word
// and σ shapes.
func FuzzIntScoreBound(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(10), uint8(12), false)
	f.Add(int64(7), uint8(8), uint8(33), uint8(50), true)
	f.Add(int64(99), uint8(2), uint8(1), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed int64, ids, la, lb uint8, integral bool) {
		if ids == 0 {
			ids = 1
		}
		r := rand.New(rand.NewSource(seed))
		tb := randIntTable(r, int(ids), 3+r.Intn(50), integral)
		c := score.Compile(tb, int32(ids))
		ci := c.Int()
		a := randIntWord(r, int(ids), int(la))
		b := randIntWord(r, int(ids), int(lb))
		want := Score(a, b, c)
		got := Score(a, b, ci)
		bound := ci.Bound(min(len(a), len(b)))
		if d := math.Abs(got - want); d > bound+1e-9*(1+math.Abs(want)) {
			t.Fatalf("|%v − %v| = %v > bound %v", got, want, d, bound)
		}
		if integral && got != want {
			t.Fatalf("integral σ must score exactly: %v != %v", got, want)
		}
	})
}
