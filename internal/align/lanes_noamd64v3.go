//go:build !amd64.v3

package align

// Builds below GOAMD64=v3 probe for AVX2 at init (lanes_amd64.go).
const amd64v3 = false
