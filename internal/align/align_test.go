package align

import (
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/symbol"
)

// bruteScore enumerates every monotone pairing recursively — exponential,
// for cross-checking on tiny inputs only.
func bruteScore(a, b symbol.Word, sc score.Scorer) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	best := bruteScore(a[1:], b, sc)
	if v := bruteScore(a, b[1:], sc); v > best {
		best = v
	}
	if v := sc.Score(a[0], b[0]) + bruteScore(a[1:], b[1:], sc); v > best {
		best = v
	}
	return best
}

func randTable(r *rand.Rand, alpha int, density float64) *score.Table {
	tb := score.NewTable()
	for i := 1; i <= alpha; i++ {
		for j := 1; j <= alpha; j++ {
			if r.Float64() < density {
				x, y := symbol.Symbol(i), symbol.Symbol(j)
				if r.Intn(2) == 0 {
					y = y.Rev()
				}
				tb.Set(x, y, float64(1+r.Intn(9)))
			}
		}
	}
	return tb
}

func randOrientedWord(r *rand.Rand, n, alpha int) symbol.Word {
	w := make(symbol.Word, n)
	for i := range w {
		s := symbol.Symbol(r.Intn(alpha) + 1)
		if r.Intn(2) == 0 {
			s = s.Rev()
		}
		w[i] = s
	}
	return w
}

func TestScoreMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		tb := randTable(r, 4, 0.5)
		a := randOrientedWord(r, r.Intn(7), 4)
		b := randOrientedWord(r, r.Intn(7), 4)
		want := bruteScore(a, b, tb)
		if got := Score(a, b, tb); got != want {
			t.Fatalf("Score(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

// TestScoreSkipSweepMatchesDense pins the float64 skip-propagation sweep
// (the sparse positive-column fast path of scoreCompiled, ported from the
// int32 kernel) against the plain dense loop and the interface path: the
// skipped writes must be no-ops, bit for bit, across densities — including
// all-negative rows (no adds at all), near-empty tables, and dense ones.
func TestScoreSkipSweepMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := NewScratch()
	defer s.Release()
	for trial := 0; trial < 200; trial++ {
		alpha := 3 + r.Intn(6)
		density := []float64{0, 0.02, 0.1, 0.5, 0.9}[trial%5]
		tb := randTable(r, alpha, density)
		// Sprinkle negative entries: they must behave exactly like absent
		// ones in the sparse sweep (only positive columns carry adds).
		for i := 1; i <= alpha; i++ {
			if r.Intn(3) == 0 {
				tb.Set(symbol.Symbol(i), symbol.Symbol(r.Intn(alpha)+1), -float64(1+r.Intn(5)))
			}
		}
		// Long words so len(a)*len(b) clears the small-path threshold and
		// the skip sweep actually runs.
		a := randOrientedWord(r, 20+r.Intn(40), alpha)
		b := randOrientedWord(r, 20+r.Intn(40), alpha)
		c := score.Compile(tb, int32(alpha))
		got := s.scoreCompiled(a, b, c)
		if want := s.scoreCompiledSmall(a, b, c); got != want {
			t.Fatalf("trial %d: skip sweep %v != dense loop %v", trial, got, want)
		}
		// The interface path is the independent reference implementation.
		n := len(b)
		prev := make([]float64, n+1)
		cur := make([]float64, n+1)
		for i := 1; i <= len(a); i++ {
			for j := 1; j <= n; j++ {
				best := prev[j-1] + tb.Score(a[i-1], b[j-1])
				if prev[j] > best {
					best = prev[j]
				}
				if cur[j-1] > best {
					best = cur[j-1]
				}
				cur[j] = best
			}
			prev, cur = cur, prev
		}
		if got != prev[n] {
			t.Fatalf("trial %d: skip sweep %v != reference %v", trial, got, prev[n])
		}
	}
}

func TestScoreEmpty(t *testing.T) {
	tb := score.NewTable()
	if Score(nil, symbol.Word{1}, tb) != 0 || Score(symbol.Word{1}, nil, tb) != 0 {
		t.Fatal("empty word should score 0")
	}
}

func TestScoreJointReversalInvariance(t *testing.T) {
	// P_score(a,b) = P_score(aᴿ,bᴿ): reversing both words and orientations
	// preserves the score because σ(aᴿ,bᴿ) = σ(a,b).
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		tb := randTable(r, 5, 0.4)
		a := randOrientedWord(r, r.Intn(12), 5)
		b := randOrientedWord(r, r.Intn(12), 5)
		if Score(a, b, tb) != Score(a.Rev(), b.Rev(), tb) {
			t.Fatalf("joint reversal changed score: %v vs %v", a, b)
		}
	}
}

func TestScoreMonotoneInWindow(t *testing.T) {
	// Extending a site never lowers P_score (free gaps).
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		tb := randTable(r, 4, 0.5)
		a := randOrientedWord(r, 3+r.Intn(6), 4)
		b := randOrientedWord(r, 4+r.Intn(8), 4)
		full := Score(a, b, tb)
		lo := r.Intn(len(b))
		hi := lo + r.Intn(len(b)-lo)
		sub := Score(a, b[lo:hi], tb)
		if sub > full {
			t.Fatalf("sub-window scored higher: %v > %v", sub, full)
		}
	}
}

func TestAlignColsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for trial := 0; trial < 200; trial++ {
		tb := randTable(r, 4, 0.5)
		a := randOrientedWord(r, r.Intn(10), 4)
		b := randOrientedWord(r, r.Intn(10), 4)
		sc, cols := Align(a, b, tb)
		if sc != Score(a, b, tb) {
			t.Fatalf("Align score %v != Score %v", sc, Score(a, b, tb))
		}
		if !ValidCols(cols, len(a), len(b)) {
			t.Fatalf("invalid columns %v", cols)
		}
		if ColsScore(cols) != sc {
			t.Fatalf("columns sum %v != score %v", ColsScore(cols), sc)
		}
		for _, c := range cols {
			if tb.Score(a[c.I], b[c.J]) != c.Sigma {
				t.Fatalf("column σ mismatch at %v", c)
			}
			if c.Sigma <= 0 {
				t.Fatalf("non-positive scoring column %v", c)
			}
		}
	}
}

func TestHirschbergEqualsAlign(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	for trial := 0; trial < 150; trial++ {
		tb := randTable(r, 5, 0.4)
		a := randOrientedWord(r, r.Intn(25), 5)
		b := randOrientedWord(r, r.Intn(25), 5)
		want := Score(a, b, tb)
		got, cols := Hirschberg(a, b, tb)
		if got != want {
			t.Fatalf("Hirschberg score %v, want %v", got, want)
		}
		if !ValidCols(cols, len(a), len(b)) {
			t.Fatalf("Hirschberg produced invalid columns")
		}
		if ColsScore(cols) != want {
			t.Fatalf("Hirschberg columns sum %v != %v", ColsScore(cols), want)
		}
	}
}

func TestBandedLowerBoundAndExactWideBand(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		tb := randTable(r, 4, 0.5)
		a := randOrientedWord(r, r.Intn(15), 4)
		b := randOrientedWord(r, r.Intn(15), 4)
		full := Score(a, b, tb)
		for _, band := range []int{1, 3, 5} {
			if v := ScoreBanded(a, b, tb, band); v > full {
				t.Fatalf("banded score %v exceeds full %v", v, full)
			}
		}
		wide := len(a) + len(b) + 1
		if v := ScoreBanded(a, b, tb, wide); v != full {
			t.Fatalf("wide band %v != full %v", v, full)
		}
	}
}

func TestBestOrient(t *testing.T) {
	tb := score.NewTable()
	a := symbol.Word{1, 2}
	b := symbol.Word{-2, -1} // = (1 2)ᴿ
	tb.Set(1, 1, 5)
	tb.Set(2, 2, 5)
	sc, rev := BestOrient(a, b, tb)
	if sc != 10 || !rev {
		t.Fatalf("BestOrient = (%v,%v), want (10,true)", sc, rev)
	}
	sc, rev = BestOrient(a, symbol.Word{1, 2}, tb)
	if sc != 10 || rev {
		t.Fatalf("BestOrient fwd = (%v,%v), want (10,false)", sc, rev)
	}
}

func TestWavefrontEqualsSerial(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	for trial := 0; trial < 60; trial++ {
		tb := randTable(r, 6, 0.3)
		a := randOrientedWord(r, r.Intn(120), 6)
		b := randOrientedWord(r, r.Intn(120), 6)
		want := Score(a, b, tb)
		for _, cfg := range []WavefrontAligner{
			{Workers: 1, BlockRows: 7, BlockCols: 5},
			{Workers: 4, BlockRows: 16, BlockCols: 16},
			{Workers: 8, BlockRows: 3, BlockCols: 50},
			{Workers: 2}, // default block size
		} {
			if got := cfg.Score(a, b, tb); got != want {
				t.Fatalf("wavefront %+v = %v, want %v (|a|=%d |b|=%d)",
					cfg, got, want, len(a), len(b))
			}
		}
	}
}

func TestWavefrontEmpty(t *testing.T) {
	tb := score.NewTable()
	w := WavefrontAligner{Workers: 4}
	if w.Score(nil, symbol.Word{1}, tb) != 0 {
		t.Fatal("empty input should score 0")
	}
}

func TestPlacementsTightAndOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(49))
	for trial := 0; trial < 150; trial++ {
		tb := randTable(r, 4, 0.5)
		a := randOrientedWord(r, 1+r.Intn(5), 4)
		b := randOrientedWord(r, 1+r.Intn(12), 4)
		ps := Placements(a, b, tb, 0)
		full := Score(a, b, tb)
		if len(ps) == 0 {
			if full != 0 {
				t.Fatalf("no placements but full score %v", full)
			}
			continue
		}
		last := ps[len(ps)-1]
		if last.Score != full {
			t.Fatalf("best placement %v != full score %v", last.Score, full)
		}
		prev := 0.0
		for _, p := range ps {
			if p.Lo < 0 || p.Hi > len(b) || p.Lo >= p.Hi {
				t.Fatalf("bad window %+v", p)
			}
			if p.Score <= prev {
				t.Fatalf("placements not strictly increasing: %+v", ps)
			}
			prev = p.Score
			// The window really achieves the claimed score...
			if got := Score(a, b[p.Lo:p.Hi], tb); got != p.Score {
				t.Fatalf("window [%d,%d) scores %v, claimed %v", p.Lo, p.Hi, got, p.Score)
			}
			// ...and is tight: shrinking either side strictly loses.
			if got := Score(a, b[p.Lo+1:p.Hi], tb); got >= p.Score {
				t.Fatalf("window not left-tight: [%d,%d)", p.Lo, p.Hi)
			}
			if got := Score(a, b[p.Lo:p.Hi-1], tb); got >= p.Score {
				t.Fatalf("window not right-tight: [%d,%d)", p.Lo, p.Hi)
			}
		}
	}
}

func TestBestPlacement(t *testing.T) {
	tb := score.NewTable()
	tb.Set(1, 7, 3)
	a := symbol.Word{1}
	b := symbol.Word{9, 7, 9, 7, 9}
	p, ok := BestPlacement(a, b, tb, 0)
	if !ok {
		t.Fatal("expected a placement")
	}
	if p.Score != 3 || p.Hi-p.Lo != 1 {
		t.Fatalf("BestPlacement = %+v", p)
	}
	if _, ok := BestPlacement(a, b, tb, 5); ok {
		t.Fatal("minScore filter failed")
	}
	if _, ok := BestPlacement(symbol.Word{2}, b, tb, 0); ok {
		t.Fatal("unalignable query produced a placement")
	}
}
