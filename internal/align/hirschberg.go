package align

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

// Hirschberg returns the same result as Align — the optimal score and one
// optimal set of scoring columns — using O(|a|+|b|) working memory via the
// classic divide-and-conquer of Hirschberg (1975), adapted to free-gap
// scoring. Time remains O(|a|·|b|).
func Hirschberg(a, b symbol.Word, sc score.Scorer) (float64, []Col) {
	s := NewScratch()
	defer s.Release()
	return s.Hirschberg(a, b, sc)
}

// Hirschberg is the kernel form of the package-level Hirschberg.
func (s *Scratch) Hirschberg(a, b symbol.Word, sc score.Scorer) (float64, []Col) {
	// Resolve once at the top of the recursion; every lastRow and base-case
	// Align below then rides the same fast path (sub-words only shrink, so
	// an integer matrix that fits here fits everywhere below).
	ci, cf := resolve(sc, a, b, len(a)*len(b))
	if ci != nil {
		cols := s.hirschInt(a, b, 0, 0, ci)
		return ColsScore(cols), cols
	}
	if cf != nil {
		sc = cf
	}
	cols := s.hirsch(a, b, 0, 0, sc)
	return ColsScore(cols), cols
}

func (s *Scratch) hirsch(a, b symbol.Word, ioff, joff int, sc score.Scorer) []Col {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return nil
	}
	if m == 1 || n == 1 {
		// Small base case: full traceback is cheap.
		_, cols := s.Align(a, b, sc)
		for k := range cols {
			cols[k].I += ioff
			cols[k].J += joff
		}
		return cols
	}
	mid := m / 2
	// Forward scores for a[:mid] vs every prefix of b, backward scores for
	// a[mid:] vs every suffix — into the dedicated boundary rows, which stay
	// valid while lastRow reuses the rolled working pair.
	s.ga = s.lastRowInto(s.ga, a[:mid], b, sc)
	s.gb = s.lastRowInto(s.gb, symbol.Word(a[mid:]).Rev(), b.Rev(), sc)
	fwd, bwd := s.ga, s.gb
	// Choose the split point of b maximizing the combined score.
	split, best := 0, fwd[0]+bwd[n]
	for j := 1; j <= n; j++ {
		if v := fwd[j] + bwd[n-j]; v > best {
			best, split = v, j
		}
	}
	left := s.hirsch(a[:mid], b[:split], ioff, joff, sc)
	right := s.hirsch(a[mid:], b[split:], ioff+mid, joff+split, sc)
	return append(left, right...)
}

// hirschInt is hirsch with int32 boundary rows: the split comparison runs on
// exact integer sums, so the recursion picks the same splits the integer
// full-matrix DP would.
func (s *Scratch) hirschInt(a, b symbol.Word, ioff, joff int, c *score.CompiledInt) []Col {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return nil
	}
	if m == 1 || n == 1 {
		_, cols := s.alignInt(a, b, c)
		for k := range cols {
			cols[k].I += ioff
			cols[k].J += joff
		}
		return cols
	}
	mid := m / 2
	s.ja = s.lastRowIntInto(s.ja, a[:mid], b, c)
	s.jb = s.lastRowIntInto(s.jb, symbol.Word(a[mid:]).Rev(), b.Rev(), c)
	fwd, bwd := s.ja, s.jb
	split, best := 0, fwd[0]+bwd[n]
	for j := 1; j <= n; j++ {
		if v := fwd[j] + bwd[n-j]; v > best {
			best, split = v, j
		}
	}
	left := s.hirschInt(a[:mid], b[:split], ioff, joff, c)
	right := s.hirschInt(a[mid:], b[split:], ioff+mid, joff+split, c)
	return append(left, right...)
}

// lastRowInto computes D[len(a)][j] for all j in O(|a|·|b|) time, O(|b|)
// space, into dst (resized as needed) — leaving the rolled working rows free
// for the caller's next kernel call.
//
// Note: reversing both words preserves P_score because σ(x,y) does not
// change when the pairing order flips — the DP is direction-symmetric.
// (This is positional reversal only; symbol reversal is handled by the
// caller via Word.Rev when orientation matters.)
func (s *Scratch) lastRowInto(dst []float64, a, b symbol.Word, sc score.Scorer) []float64 {
	if cf := fastPath(sc, a, b, len(a)*len(b)); cf != nil {
		return s.lastRowCompiledInto(dst, a, b, cf)
	}
	n := len(b)
	prev, cur := s.floatRows(n + 1)
	for i := 1; i <= len(a); i++ {
		ai := a[i-1]
		cur[0] = 0
		for j := 1; j <= n; j++ {
			best := prev[j-1] + sc.Score(ai, b[j-1])
			if prev[j] > best {
				best = prev[j]
			}
			if cur[j-1] > best {
				best = cur[j-1]
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	dst = growF(dst, n+1)
	copy(dst, prev)
	return dst
}
