package align

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

// Hirschberg returns the same result as Align — the optimal score and one
// optimal set of scoring columns — using O(|a|+|b|) working memory via the
// classic divide-and-conquer of Hirschberg (1975), adapted to free-gap
// scoring. Time remains O(|a|·|b|).
func Hirschberg(a, b symbol.Word, sc score.Scorer) (float64, []Col) {
	// Compile once at the top of the recursion; every lastRow and base-case
	// Align below then rides the dense fast path.
	if c := fastPath(sc, a, b, len(a)*len(b)); c != nil {
		sc = c
	}
	cols := hirsch(a, b, 0, 0, sc)
	return ColsScore(cols), cols
}

func hirsch(a, b symbol.Word, ioff, joff int, sc score.Scorer) []Col {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return nil
	}
	if m == 1 || n == 1 {
		// Small base case: full traceback is cheap.
		_, cols := Align(a, b, sc)
		for k := range cols {
			cols[k].I += ioff
			cols[k].J += joff
		}
		return cols
	}
	mid := m / 2
	// Forward scores for a[:mid] vs every prefix of b.
	fwd := lastRow(a[:mid], b, sc)
	// Backward scores for a[mid:] vs every suffix of b.
	bwd := lastRow(symbol.Word(a[mid:]).Rev(), b.Rev(), sc)
	// Choose the split point of b maximizing the combined score.
	split, best := 0, fwd[0]+bwd[n]
	for j := 1; j <= n; j++ {
		if v := fwd[j] + bwd[n-j]; v > best {
			best, split = v, j
		}
	}
	left := hirsch(a[:mid], b[:split], ioff, joff, sc)
	right := hirsch(a[mid:], b[split:], ioff+mid, joff+split, sc)
	return append(left, right...)
}

// lastRow computes D[len(a)][j] for all j in O(|a|·|b|) time, O(|b|) space.
//
// Note: reversing both words preserves P_score because σ(x,y) does not
// change when the pairing order flips — the DP is direction-symmetric.
// (This is positional reversal only; symbol reversal is handled by the
// caller via Word.Rev when orientation matters.)
func lastRow(a, b symbol.Word, sc score.Scorer) []float64 {
	if c := fastPath(sc, a, b, len(a)*len(b)); c != nil {
		return lastRowCompiled(a, b, c)
	}
	n := len(b)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for i := 1; i <= len(a); i++ {
		ai := a[i-1]
		cur[0] = 0
		for j := 1; j <= n; j++ {
			best := prev[j-1] + sc.Score(ai, b[j-1])
			if prev[j] > best {
				best = prev[j]
			}
			if cur[j-1] > best {
				best = cur[j-1]
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev
}
