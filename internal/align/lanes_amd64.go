//go:build amd64 && !noasm

package align

// The AVX2 lane tier. dpRowAVX2 (lanes_amd64.s) computes the same row cells
// as dpRowIntGo with 8-lane vector adds and a log-step in-register prefix
// max. Dispatch is decided once at package init: unconditionally on when the
// build pins GOAMD64=v3 (the microarchitecture level that guarantees AVX2),
// otherwise by a CPUID probe — feature bit, AVX OS support (OSXSAVE +
// XCR0 YMM state), and the AVX2 leaf. Build with -tags noasm to force the
// portable tier (lanes_generic.go).

// cpuid executes the CPUID instruction (lanes_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (lanes_amd64.s); callers must check OSXSAVE first.
func xgetbv() (eax, edx uint32)

// dpRowAVX2 computes cur[1..n] of one free-gap DP row (see dpRowInt for the
// cell contract) and returns cur[n]. n must be a positive multiple of the
// lane width; prev, cur and g must hold at least n+1, n+1 and n cells.
func dpRowAVX2(prev, cur, g []int32, n int) int32

var useAVX2 = amd64v3 || probeAVX2()

func probeAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false // OS does not save XMM+YMM state
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// setAVX2ForTest forces the dispatch for a test and returns the restore
// func, so the portable tier is exercised on AVX2 machines too.
func setAVX2ForTest(v bool) func() {
	old := useAVX2
	useAVX2 = v
	return func() { useAVX2 = old }
}
