package align

import (
	"sync"

	"repro/internal/score"
	"repro/internal/symbol"
)

// WavefrontAligner computes the free-gap alignment score with a blocked
// anti-diagonal wavefront schedule: the DP matrix is partitioned into
// BlockRows × BlockCols tiles; a tile becomes runnable once the tiles above
// and to its left have completed, and runnable tiles are executed by a pool
// of Workers goroutines. This reproduces the parallel incremental-DP design
// of the IPPS 2002 evaluation on shared-memory goroutines instead of a
// cluster.
//
// Memory is O(number-of-tile-rows × |b|): only tile boundary rows are
// retained, as in coarse-grained cluster implementations.
type WavefrontAligner struct {
	// Workers is the number of goroutines; values < 1 mean 1.
	Workers int
	// BlockRows and BlockCols are the tile dimensions; values < 1 default
	// to 128.
	BlockRows, BlockCols int
}

// Score returns P_score(a, b), identical to the serial Score.
func (w WavefrontAligner) Score(a, b symbol.Word, sc score.Scorer) float64 {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return 0
	}
	br, bc := w.BlockRows, w.BlockCols
	if br < 1 {
		br = 128
	}
	if bc < 1 {
		bc = 128
	}
	workers := w.Workers
	if workers < 1 {
		workers = 1
	}
	nI := (m + br - 1) / br // tile rows
	nJ := (n + bc - 1) / bc // tile cols

	// Dense fast path: all tiles share one compiled matrix and one column
	// index vector for b.
	cm := fastPath(sc, a, b, len(a)*len(b))
	var bIdx []int32
	if cm != nil {
		bIdx = cm.IndexWord(b)
	}

	// rowBuf[I][j] = D[rowEnd(I)][j] once every tile of tile-row I left of
	// column j is done; rowBuf[0] is the all-zero DP row 0.
	rowBuf := make([][]float64, nI+1)
	rowBuf[0] = make([]float64, n+1)
	for I := 1; I <= nI; I++ {
		rowBuf[I] = make([]float64, n+1)
	}
	// carry[I] holds the right boundary column of the most recent tile in
	// tile-row I: carry[I][r] = D[rowLo(I)+r][colDone], r = 0..height, with
	// carry[I][0] the value on the boundary row above. Tiles within a row
	// run strictly left to right, so the carry needs no locking.
	carry := make([][]float64, nI)
	for I := 0; I < nI; I++ {
		h := br
		if (I+1)*br > m {
			h = m - I*br
		}
		carry[I] = make([]float64, h+1) // column 0 of the DP is all zeros
	}

	type tile struct{ I, J int }
	total := nI * nJ
	ready := make(chan tile, total)
	var wg sync.WaitGroup
	wg.Add(total)

	// Remaining dependency count per tile.
	deps := make([]int32, total)
	var mu sync.Mutex
	idx := func(I, J int) int { return I*nJ + J }
	for I := 0; I < nI; I++ {
		for J := 0; J < nJ; J++ {
			d := int32(0)
			if I > 0 {
				d++
			}
			if J > 0 {
				d++
			}
			deps[idx(I, J)] = d
		}
	}
	release := func(I, J int) {
		if I >= nI || J >= nJ {
			return
		}
		mu.Lock()
		deps[idx(I, J)]--
		run := deps[idx(I, J)] == 0
		mu.Unlock()
		if run {
			ready <- tile{I, J}
		}
	}

	compute := func(t tile) {
		rowLo := t.I * br
		rowHi := min(m, rowLo+br)
		colLo := t.J * bc
		colHi := min(n, colLo+bc)
		h := rowHi - rowLo
		wdt := colHi - colLo

		top := rowBuf[t.I][colLo : colHi+1] // includes corner at index 0? no: rowBuf[I][colLo..colHi]
		left := carry[t.I]                  // left[r] = D[rowLo+r][colLo]

		// Local DP over the tile, rolling rows. prev[c] = D[row-1][colLo+c].
		prev := make([]float64, wdt+1)
		cur := make([]float64, wdt+1)
		// Initialize prev from the boundary row above: D[rowLo][colLo..colHi].
		copy(prev, top)
		// But top[0] is D[rowLo][colLo] which must equal left[0]; they agree
		// by construction.
		newCarry := make([]float64, h+1)
		newCarry[0] = prev[wdt]
		for r := 1; r <= h; r++ {
			ai := a[rowLo+r-1]
			cur[0] = left[r]
			if cm != nil {
				row := cm.Row(ai)
				bi := bIdx[colLo:colHi]
				for c := 1; c <= wdt; c++ {
					best := prev[c-1] + row[bi[c-1]]
					if prev[c] > best {
						best = prev[c]
					}
					if cur[c-1] > best {
						best = cur[c-1]
					}
					cur[c] = best
				}
			} else {
				for c := 1; c <= wdt; c++ {
					best := prev[c-1] + sc.Score(ai, b[colLo+c-1])
					if prev[c] > best {
						best = prev[c]
					}
					if cur[c-1] > best {
						best = cur[c-1]
					}
					cur[c] = best
				}
			}
			newCarry[r] = cur[wdt]
			prev, cur = cur, prev
		}
		// Publish bottom boundary row segment and right column.
		copy(rowBuf[t.I+1][colLo+1:colHi+1], prev[1:])
		if colLo == 0 {
			rowBuf[t.I+1][0] = 0
		}
		copy(carry[t.I], newCarry)
	}

	for g := 0; g < workers; g++ {
		go func() {
			for t := range ready {
				compute(t)
				release(t.I+1, t.J)
				release(t.I, t.J+1)
				wg.Done()
			}
		}()
	}
	ready <- tile{0, 0}
	wg.Wait()
	close(ready)
	return rowBuf[nI][n]
}
