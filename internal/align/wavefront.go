package align

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/score"
	"repro/internal/symbol"
)

// WavefrontAligner computes the free-gap alignment score with a blocked
// anti-diagonal wavefront schedule: the DP matrix is partitioned into
// BlockRows × BlockCols tiles; a tile becomes runnable once the tiles above
// and to its left have completed, and runnable tiles are executed by a pool
// of Workers goroutines. This reproduces the parallel incremental-DP design
// of the IPPS 2002 evaluation on shared-memory goroutines instead of a
// cluster.
//
// Memory is O(number-of-tile-rows × |b|): only tile boundary rows are
// retained, as in coarse-grained cluster implementations — and all of it
// (boundary rows, carry columns, dependency counters, tile working rows) is
// pooled and reused across calls, so steady-state scoring allocates nothing
// with Workers == 1 (which runs the tiles inline as a blocked cache-friendly
// sweep) and only scheduling state otherwise. A quantized σ
// (score.CompiledInt) runs every tile in int32 and dequantizes the final
// corner only.
type WavefrontAligner struct {
	// Workers is the number of goroutines; values < 1 mean 1. With exactly
	// one worker the tiles run inline on the calling goroutine: same blocked
	// schedule, no channels, no spawns.
	Workers int
	// BlockRows and BlockCols are the tile dimensions; values < 1 default
	// to 128.
	BlockRows, BlockCols int
	// Ctx, when non-nil, cancels a sweep between tiles: the schedulers
	// (inline and parallel alike) poll it before computing each tile, so a
	// deadline interrupts even one very large single alignment mid-sweep
	// instead of at the matrix boundary. A canceled Score returns 0; use
	// ScoreCtx to observe the error. Cancellation never corrupts the pooled
	// sweep state — remaining tiles are skipped, not half-computed, and the
	// state is recycled as usual.
	Ctx context.Context
}

// wfState is the pooled per-call state of one wavefront run: the retained
// tile boundary rows and right-boundary carry columns (float64 and int32
// variants), the column index word, and the tile dependency counters.
type wfState struct {
	a, b   symbol.Word
	sc     score.Scorer
	cm     *score.Compiled
	ci     *score.CompiledInt
	bi     []int32
	m, n   int
	br, bc int
	nI, nJ int

	rowBuf  [][]float64 // rowBuf[I][j] = D[rowEnd(I)][j]; rowBuf[0] = DP row 0
	carry   [][]float64 // carry[I][r] = D[rowLo(I)+r][colDone], updated in place
	rowBufI [][]int32
	carryI  [][]int32
	deps    []int32
}

var wfPool = sync.Pool{New: func() any { return new(wfState) }}

func growRowsF(rows [][]float64, k, n int) [][]float64 {
	if cap(rows) < k {
		rows = append(rows[:cap(rows)], make([][]float64, k-cap(rows))...)
	}
	rows = rows[:k]
	for i := range rows {
		rows[i] = growF(rows[i], n)
	}
	return rows
}

func growRowsI(rows [][]int32, k, n int) [][]int32 {
	if cap(rows) < k {
		rows = append(rows[:cap(rows)], make([][]int32, k-cap(rows))...)
	}
	rows = rows[:k]
	for i := range rows {
		rows[i] = growI(rows[i], n)
	}
	return rows
}

// Score returns P_score(a, b), identical to the serial Score. A canceled
// Ctx yields 0; ScoreCtx surfaces the error.
func (w WavefrontAligner) Score(a, b symbol.Word, sc score.Scorer) float64 {
	out, _ := w.ScoreCtx(a, b, sc)
	return out
}

// ScoreCtx is Score with the cancellation error surfaced: it returns the
// Ctx error when the sweep was interrupted (the partial score is discarded)
// and otherwise the exact score.
func (w WavefrontAligner) ScoreCtx(a, b symbol.Word, sc score.Scorer) (float64, error) {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return 0, nil
	}
	br, bc := w.BlockRows, w.BlockCols
	if br < 1 {
		br = 128
	}
	if bc < 1 {
		bc = 128
	}
	workers := w.Workers
	if workers < 1 {
		workers = 1
	}

	ws := wfPool.Get().(*wfState)
	ws.a, ws.b, ws.sc = a, b, sc
	ws.m, ws.n = m, n
	ws.br, ws.bc = br, bc
	ws.nI = (m + br - 1) / br
	ws.nJ = (n + bc - 1) / bc
	ws.ci, ws.cm = resolve(sc, a, b, m*n)

	// Boundary rows and carry columns; row 0 and column 0 of the DP are all
	// zeros, everything else is fully written by some tile before it is read.
	if ws.ci != nil {
		ws.bi = ws.ci.IndexWordInto(growI(ws.bi, n)[:0], b)
		ws.rowBufI = growRowsI(ws.rowBufI, ws.nI+1, n+1)
		clear(ws.rowBufI[0])
		ws.carryI = growRowsI(ws.carryI, ws.nI, br+1)
		for I := range ws.carryI {
			clear(ws.carryI[I])
		}
	} else {
		if ws.cm != nil {
			ws.bi = ws.cm.IndexWordInto(growI(ws.bi, n)[:0], b)
		}
		ws.rowBuf = growRowsF(ws.rowBuf, ws.nI+1, n+1)
		clear(ws.rowBuf[0])
		ws.carry = growRowsF(ws.carry, ws.nI, br+1)
		for I := range ws.carry {
			clear(ws.carry[I])
		}
	}

	if workers == 1 {
		s := NewScratch()
	sweep:
		for I := 0; I < ws.nI; I++ {
			for J := 0; J < ws.nJ; J++ {
				// Poll between tiles: a tile is the cancellation quantum, so
				// a deadline interrupts the sweep mid-matrix.
				if w.Ctx != nil && w.Ctx.Err() != nil {
					break sweep
				}
				ws.tile(I, J, s)
			}
		}
		s.Release()
	} else {
		ws.runParallel(workers, w.Ctx)
	}

	var out float64
	if ws.ci != nil {
		out = ws.ci.Dequantize(int64(ws.rowBufI[ws.nI][n]))
	} else {
		out = ws.rowBuf[ws.nI][n]
	}
	// Drop references to caller data before pooling the state.
	ws.a, ws.b, ws.sc, ws.cm, ws.ci = nil, nil, nil, nil, nil
	wfPool.Put(ws)
	if w.Ctx != nil {
		if err := w.Ctx.Err(); err != nil {
			return 0, err // the partial sweep's corner is garbage
		}
	}
	return out, nil
}

// runParallel executes the tiles over a worker pool with per-tile dependency
// counters: a tile is enqueued when both its up- and left-neighbour are done.
// A canceled ctx stops the compute but not the scheduling: remaining tiles
// drain through the dependency graph as no-ops, so the wait group settles
// without deadlock and the pooled state stays reusable.
func (ws *wfState) runParallel(workers int, ctx context.Context) {
	total := ws.nI * ws.nJ
	ws.deps = growI(ws.deps, total)
	for I := 0; I < ws.nI; I++ {
		for J := 0; J < ws.nJ; J++ {
			d := int32(0)
			if I > 0 {
				d++
			}
			if J > 0 {
				d++
			}
			ws.deps[I*ws.nJ+J] = d
		}
	}
	var stop atomic.Bool
	type tile struct{ I, J int32 }
	ready := make(chan tile, total)
	var wg, workersWG sync.WaitGroup
	wg.Add(total)
	release := func(I, J int) {
		if I >= ws.nI || J >= ws.nJ {
			return
		}
		if atomic.AddInt32(&ws.deps[I*ws.nJ+J], -1) == 0 {
			ready <- tile{int32(I), int32(J)}
		}
	}
	workersWG.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer workersWG.Done()
			s := NewScratch()
			defer s.Release()
			for t := range ready {
				if !stop.Load() {
					if ctx != nil && ctx.Err() != nil {
						stop.Store(true) // fast path for the other workers
					} else {
						ws.tile(int(t.I), int(t.J), s)
					}
				}
				release(int(t.I)+1, int(t.J))
				release(int(t.I), int(t.J)+1)
				wg.Done()
			}
		}()
	}
	ready <- tile{0, 0}
	wg.Wait()
	close(ready)
	// Join the workers, not just the tiles: a returned sweep must leave no
	// goroutines winding down behind it (their scratch Gets and Releases
	// would otherwise race into whatever the caller does next — visible as
	// phantom allocations in zero-alloc measurements).
	workersWG.Wait()
}

// tile computes one DP tile, reading the boundary row above and the carry
// column to its left and publishing its own bottom row and right column.
// Tiles within a tile-row run strictly left to right, so the carry is
// updated in place: slot r is rewritten only after the row that read it.
func (ws *wfState) tile(I, J int, s *Scratch) {
	rowLo := I * ws.br
	rowHi := min(ws.m, rowLo+ws.br)
	colLo := J * ws.bc
	colHi := min(ws.n, colLo+ws.bc)
	h := rowHi - rowLo
	wdt := colHi - colLo

	if ws.ci != nil {
		top := ws.rowBufI[I][colLo : colHi+1]
		left := ws.carryI[I]
		prev, cur := s.intRows(wdt + 1)
		copy(prev, top)
		left[0] = prev[wdt]
		bi := ws.bi[colLo:colHi]
		for r := 1; r <= h; r++ {
			// Tile cells are genuine full-matrix DP cells (≥ 0), so the
			// lane kernel's contract holds even for interior tiles.
			cur[0] = left[r]
			s.dpRowIntAuto(prev, cur, ws.ci.Row(ws.a[rowLo+r-1]), bi)
			left[r] = cur[wdt]
			prev, cur = cur, prev
		}
		copy(ws.rowBufI[I+1][colLo+1:colHi+1], prev[1:])
		if colLo == 0 {
			ws.rowBufI[I+1][0] = 0
		}
		return
	}

	top := ws.rowBuf[I][colLo : colHi+1]
	left := ws.carry[I]
	prev, cur := s.floatRows(wdt + 1)
	copy(prev, top)
	left[0] = prev[wdt]
	for r := 1; r <= h; r++ {
		ai := ws.a[rowLo+r-1]
		cur[0] = left[r]
		if ws.cm != nil {
			row := ws.cm.Row(ai)
			bi := ws.bi[colLo:colHi]
			for c := 1; c <= wdt; c++ {
				best := prev[c-1] + row[bi[c-1]]
				if prev[c] > best {
					best = prev[c]
				}
				if cur[c-1] > best {
					best = cur[c-1]
				}
				cur[c] = best
			}
		} else {
			for c := 1; c <= wdt; c++ {
				best := prev[c-1] + ws.sc.Score(ai, ws.b[colLo+c-1])
				if prev[c] > best {
					best = prev[c]
				}
				if cur[c-1] > best {
					best = cur[c-1]
				}
				cur[c] = best
			}
		}
		left[r] = cur[wdt]
		prev, cur = cur, prev
	}
	// Publish the bottom boundary row segment; the right column was carried
	// in place above.
	copy(ws.rowBuf[I+1][colLo+1:colHi+1], prev[1:])
	if colLo == 0 {
		ws.rowBuf[I+1][0] = 0
	}
}
