package align

import (
	"math"

	"repro/internal/score"
	"repro/internal/symbol"
)

// Integer-quantized kernels: the same free-gap DP as the float64 fast path,
// run entirely over contiguous int32 rows of a score.CompiledInt and
// dequantized only at the boundary. The inner loops use the builtin max,
// which the compiler lowers to branchless conditional moves for integers —
// the branch-light form the quantized mode exists for — and int32 cells
// halve the memory traffic of the float64 rows. resolve guarantees the
// accumulation headroom before any of these run, so no partial total can
// wrap.

// minusInfI is the unreachable-cell sentinel of the banded int32 kernel,
// deep enough below zero that adding any in-headroom cell cannot wrap.
const minusInfI = int32(math.MinInt32 / 4)

// sparseRowsI is sparseRowsF over quantized rows.
func (s *Scratch) sparseRowsI(a symbol.Word, c *score.CompiledInt) {
	s.resetSparse(2*int(c.MaxID()) + 1)
	for _, sym := range a {
		ia := c.Index(sym)
		if s.rowOf[ia] != 0 {
			continue
		}
		row := c.Row(sym)
		start := int32(len(s.pos))
		for j, bj := range s.bi {
			if v := row[bj]; v > 0 {
				s.pos = append(s.pos, int32(j))
				s.valI = append(s.valI, v)
			}
		}
		s.spans = append(s.spans, [2]int32{start, int32(len(s.pos))})
		s.rowOf[ia] = int32(len(s.spans))
	}
}

// scoreInt is Score on the int32 fast path. Beyond the int32 cells it
// exploits a structural property of the free-gap DP: every row is monotone
// nondecreasing, so a cell with no positive σ reduces to max(up, left-max) —
// which leaves the rolled row unchanged once the running maximum has been
// absorbed. The loop therefore touches only the positive columns of each row
// plus the cells a diagonal add is still rippling through, skipping
// untouched spans outright (rows whose symbol scores positively against
// nothing in b are skipped whole). The skipped writes are provably no-ops,
// so the result is identical to the full sweep.
func (s *Scratch) scoreInt(a, b symbol.Word, c *score.CompiledInt) float64 {
	n := len(b)
	if len(a)*n < 8*int(c.MaxID())+4 {
		return s.scoreIntSmall(a, b, c)
	}
	s.indexWordInt(c, b)
	s.sparseRowsI(a, c)
	arr, _ := s.intRows(n + 1)
	for i := 1; i <= len(a); i++ {
		span := s.spans[s.rowOf[c.Index(a[i-1])]-1]
		pos, val := s.pos[span[0]:span[1]], s.valI[span[0]:span[1]]
		if len(pos) == 0 {
			continue // no adds: the whole row is a no-op
		}
		// j is the next column to finalize, best the new value at j-1, and
		// oldPrev the previous row's value at j-1 (the diagonal input).
		j := 1
		best, oldPrev := int32(0), int32(0)
		for k := 0; k < len(pos); k++ {
			pj := int(pos[k]) + 1
			// Ripple best through the add-free span [j, pj): once it is
			// absorbed (best ≤ old cell), the rest of the span is unchanged
			// and can be skipped — the old values are exactly the new ones.
			for j < pj {
				old := arr[j]
				if best <= old {
					j = pj
					best = arr[pj-1]
					oldPrev = best
					break
				}
				arr[j] = best
				oldPrev = old
				j++
			}
			up := arr[pj]
			v := max(oldPrev+val[k], up)
			v = max(v, best)
			arr[pj] = v
			best = v
			oldPrev = up
			j = pj + 1
		}
		// Tail: ripple the last add until absorbed.
		for j <= n && best > arr[j] {
			arr[j] = best
			j++
		}
	}
	return c.Dequantize(int64(arr[n]))
}

// scoreIntSmall is the dense int32 Score loop for words smaller than the
// alphabet.
func (s *Scratch) scoreIntSmall(a, b symbol.Word, c *score.CompiledInt) float64 {
	n := len(b)
	bi := s.indexWordInt(c, b)
	prev, cur := s.intRows(n + 1)
	for i := 1; i <= len(a); i++ {
		row := c.Row(a[i-1])
		diag, best := prev[0], int32(0)
		cur[0] = 0
		for j := 1; j <= n; j++ {
			v := diag + row[bi[j-1]]
			up := prev[j]
			v = max(v, up)
			v = max(v, best)
			cur[j] = v
			best = v
			diag = up
		}
		prev, cur = cur, prev
	}
	return c.Dequantize(int64(prev[n]))
}

// fillInt computes the full int32 DP matrix of Align.
func (s *Scratch) fillInt(a, b symbol.Word, c *score.CompiledInt) [][]int32 {
	m, n := len(a), len(b)
	d := s.matrixI(m, n)
	bi := s.indexWordInt(c, b)
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		di, dp := d[i], d[i-1]
		for j := 1; j <= n; j++ {
			best := dp[j-1] + row[bi[j-1]]
			best = max(best, dp[j])
			best = max(best, di[j-1])
			di[j] = best
		}
	}
	return d
}

// alignInt is Align on the int32 fast path: integer fill and traceback,
// with column σ contributions dequantized into the emitted Cols.
func (s *Scratch) alignInt(a, b symbol.Word, c *score.CompiledInt) (float64, []Col) {
	m, n := len(a), len(b)
	d := s.fillInt(a, b, c)
	var cols []Col
	i, j := m, n
	for i > 0 && j > 0 {
		q := c.Row(a[i-1])[c.Index(b[j-1])]
		switch {
		case q > 0 && d[i][j] == d[i-1][j-1]+q:
			cols = append(cols, Col{I: i - 1, J: j - 1, Sigma: c.Dequantize(int64(q))})
			i, j = i-1, j-1
		case d[i][j] == d[i-1][j]:
			i--
		case d[i][j] == d[i][j-1]:
			j--
		default:
			// Zero or negative σ diagonal that ties; skip it without
			// recording a scoring column.
			i, j = i-1, j-1
		}
	}
	for l, r := 0, len(cols)-1; l < r; l, r = l+1, r-1 {
		cols[l], cols[r] = cols[r], cols[l]
	}
	return c.Dequantize(int64(d[m][n])), cols
}

// lastRowIntInto computes the int32 last DP row into dst.
func (s *Scratch) lastRowIntInto(dst []int32, a, b symbol.Word, c *score.CompiledInt) []int32 {
	n := len(b)
	bi := s.indexWordInt(c, b)
	prev, cur := s.intRows(n + 1)
	for i := 1; i <= len(a); i++ {
		row := c.Row(a[i-1])
		cur[0] = 0
		for j := 1; j <= n; j++ {
			best := prev[j-1] + row[bi[j-1]]
			best = max(best, prev[j])
			best = max(best, cur[j-1])
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	dst = growI(dst, n+1)
	copy(dst, prev)
	return dst
}

// scoreBandedInt is ScoreBanded on the int32 fast path.
func (s *Scratch) scoreBandedInt(a, b symbol.Word, c *score.CompiledInt, band int) float64 {
	m, n := len(a), len(b)
	bi := s.indexWordInt(c, b)
	prev, cur := s.intRows(n + 1)
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		center := i * n / m
		lo := max(1, center-band)
		hi := min(n, center+band)
		for j := range cur {
			cur[j] = minusInfI
		}
		cur[0] = 0
		for j := lo; j <= hi; j++ {
			best := minusInfI
			if prev[j-1] > minusInfI/2 {
				best = prev[j-1] + row[bi[j-1]]
			}
			best = max(best, prev[j])
			best = max(best, cur[j-1])
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	best := int32(0)
	for j := 0; j <= n; j++ {
		best = max(best, prev[j])
	}
	return c.Dequantize(int64(best))
}

// placementsInt is Placements on the int32 fast path. minScore is compared
// on the dequantized frontier values, so the emitted windows satisfy the
// caller's float64 threshold exactly as the float kernel would.
func (s *Scratch) placementsInt(a, b symbol.Word, c *score.CompiledInt, minScore float64) []Placement {
	m, n := len(a), len(b)
	bi := s.indexWordInt(c, b)
	const noStart = int32(1) << 30
	dPrev, dCur := s.intRows(n + 1)
	s.sa, s.sb = growI(s.sa, n+1), growI(s.sb, n+1)
	stPrev, stCur := s.sa, s.sb
	for j := range stPrev {
		stPrev[j] = noStart
	}
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		dCur[0] = 0
		stCur[0] = noStart
		for j := 1; j <= n; j++ {
			sv := row[bi[j-1]]
			bestV := dPrev[j]
			bestS := stPrev[j]
			if dCur[j-1] > bestV || (dCur[j-1] == bestV && stCur[j-1] > bestS) {
				bestV, bestS = dCur[j-1], stCur[j-1]
			}
			if sv > 0 {
				v := dPrev[j-1] + sv
				st := stPrev[j-1]
				if st == noStart {
					st = int32(j - 1)
				}
				if v > bestV || (v == bestV && st > bestS) {
					bestV, bestS = v, st
				}
			}
			dCur[j], stCur[j] = bestV, bestS
		}
		dPrev, dCur = dCur, dPrev
		stPrev, stCur = stCur, stPrev
	}
	var out []Placement
	for j := 1; j <= n; j++ {
		if dPrev[j] > dPrev[j-1] && stPrev[j] != noStart {
			if v := c.Dequantize(int64(dPrev[j])); v > minScore {
				out = append(out, Placement{Lo: int(stPrev[j]), Hi: j, Score: v})
			}
		}
	}
	return out
}
