package align

import (
	"math"

	"repro/internal/score"
	"repro/internal/symbol"
)

// Integer-quantized kernels: the same free-gap DP as the float64 fast path,
// run entirely over contiguous int32 rows of a score.CompiledInt and
// dequantized only at the boundary. Two complementary strategies split the
// kernels:
//
//   - Sparse skip sweeps (Score, ScoreAtLeast, Placements): DP rows are
//     monotone nondecreasing, so cells without a positive σ reduce to
//     max(up, left-max) and whole add-free spans are provably unchanged —
//     the loop touches only the positive columns plus the cells a diagonal
//     add is still rippling through.
//   - Lane-blocked dense rows (Align's fill, lastRow, wavefront tiles):
//     when every cell must be materialized, the row runs through dpRowInt
//     (lanes.go) — 8 int32 cells per iteration on the portable tier, an
//     AVX2 prefix-max scan on amd64 — over a σ row pre-gathered into
//     contiguous memory (Scratch.gatherI).
//
// resolve guarantees the accumulation headroom before any of these run, so
// no partial total can wrap.

// minusInfI is the unreachable-cell sentinel of the banded int32 kernel,
// deep enough below zero that adding any in-headroom cell cannot wrap.
const minusInfI = int32(math.MinInt32 / 4)

// sparseRowsI is sparseRowsF over quantized rows, additionally recording
// each span's maximum value (spanMax) — the row's largest possible gain,
// which the early-exit bounds of ScoreAtLeast and placementsInt sum into
// a suffix bound on the remaining rows.
//
// Unlike the float build, it does not scan a σ row per distinct symbol: it
// intersects the matrix's cached positive-column lists (CompiledInt.PosRow
// — σ rows are overwhelmingly zero) with an inverse index of b built in
// one O(|b|) pass, so the per-symbol cost is proportional to the row's
// positive cells and their hits in b rather than to |b|.
func (s *Scratch) sparseRowsI(a symbol.Word, c *score.CompiledInt) {
	dim := 2*int(c.MaxID()) + 1
	s.resetSparse(dim)
	s.indexB(dim)
	for _, sym := range a {
		ia := c.Index(sym)
		if s.rowOf[ia] != 0 {
			continue
		}
		cols, vals := c.PosRow(sym)
		start := int32(len(s.pos))
		mx := int32(0)
		for k, col := range cols {
			h := s.bHead[col]
			if h == 0 {
				continue
			}
			v := vals[k]
			for j := h; j != 0; j = s.bNext[j] {
				s.pos = append(s.pos, j-1)
				s.valI = append(s.valI, v)
			}
			if v > mx {
				mx = v
			}
		}
		// Hits arrive grouped by column (each group ascending); the sweep
		// needs ascending positions. Rows hit through one column — the
		// common case — are already sorted and cost a linear pass.
		sortPosVal(s.pos[start:], s.valI[start:])
		s.spans = append(s.spans, [2]int32{start, int32(len(s.pos))})
		s.spanMax = append(s.spanMax, mx)
		s.rowOf[ia] = int32(len(s.spans))
		s.rowIdx = append(s.rowIdx, ia)
	}
}

// sortPosVal insertion-sorts the parallel position/value pairs by position.
// Positions are distinct (each b cell lives in exactly one column chain)
// and arrive as a handful of ascending runs, for which insertion sort is
// near-linear.
func sortPosVal(pos, val []int32) {
	for i := 1; i < len(pos); i++ {
		p, v := pos[i], val[i]
		j := i
		for j > 0 && pos[j-1] > p {
			pos[j], val[j] = pos[j-1], val[j-1]
			j--
		}
		pos[j], val[j] = p, v
	}
}

// intSkipRow advances the rolled DP row arr (arr[0] = 0, monotone) by one
// row whose positive columns are pos/val: the skip-propagation sweep of
// scoreInt. The skipped writes are provably no-ops, so the result is
// identical to the full dense row update.
func intSkipRow(arr []int32, pos, val []int32) {
	n := len(arr) - 1
	// j is the next column to finalize, best the new value at j-1, and
	// oldPrev the previous row's value at j-1 (the diagonal input).
	j := 1
	best, oldPrev := int32(0), int32(0)
	for k := 0; k < len(pos); k++ {
		pj := int(pos[k]) + 1
		// Ripple best through the add-free span [j, pj): once it is
		// absorbed (best ≤ old cell), the rest of the span is unchanged
		// and can be skipped — the old values are exactly the new ones.
		for j < pj {
			old := arr[j]
			if best <= old {
				j = pj
				best = arr[pj-1]
				oldPrev = best
				break
			}
			arr[j] = best
			oldPrev = old
			j++
		}
		up := arr[pj]
		v := max(oldPrev+val[k], up)
		v = max(v, best)
		arr[pj] = v
		best = v
		oldPrev = up
		j = pj + 1
	}
	// Tail: ripple the last add until absorbed.
	for j <= n && best > arr[j] {
		arr[j] = best
		j++
	}
}

// scoreInt is Score on the int32 fast path: the sparse skip sweep over
// positive columns (see intSkipRow), which beats even the lane-blocked
// dense row because typical σ rows score positively against few columns.
func (s *Scratch) scoreInt(a, b symbol.Word, c *score.CompiledInt) float64 {
	n := len(b)
	if len(a)*n < 8*int(c.MaxID())+4 {
		return s.scoreIntSmall(a, b, c)
	}
	s.indexWordInt(c, b)
	s.sparseRowsI(a, c)
	arr, _ := s.intRows(n + 1)
	for i := 1; i <= len(a); i++ {
		span := s.spans[s.rowOf[c.Index(a[i-1])]-1]
		pos, val := s.pos[span[0]:span[1]], s.valI[span[0]:span[1]]
		if len(pos) == 0 {
			continue // no adds: the whole row is a no-op
		}
		intSkipRow(arr, pos, val)
	}
	return c.Dequantize(int64(arr[n]))
}

// scoreAtLeastInt is ScoreAtLeast on the int32 fast path: the scoreInt
// sweep with an adaptive early exit. Every DP path gains at most one σ cell
// per row, so after row i the final score is bounded by
//
//	max_j D[i][j] + Σ_{i' > i} spanMax(i')
//
// and the kernel bails with that bound as soon as it cannot clear atLeast.
// The bound arithmetic is exact in integers — no rounding direction to get
// wrong, which is why the early exit lives on the quantized tier only.
func (s *Scratch) scoreAtLeastInt(a, b symbol.Word, c *score.CompiledInt, atLeast float64) float64 {
	n := len(b)
	if len(a)*n < 8*int(c.MaxID())+4 {
		return s.scoreIntSmall(a, b, c) // small words: exact is cheapest
	}
	s.indexWordInt(c, b)
	s.sparseRowsI(a, c)
	remaining := int64(0)
	for _, sym := range a {
		remaining += int64(s.spanMax[s.rowOf[c.Index(sym)]-1])
	}
	if ub := c.Dequantize(remaining); ub <= atLeast {
		return ub // the all-rows gain bound already rules the pair out
	}
	arr, _ := s.intRows(n + 1)
	for i := 1; i <= len(a); i++ {
		r := s.rowOf[c.Index(a[i-1])] - 1
		span := s.spans[r]
		remaining -= int64(s.spanMax[r])
		pos, val := s.pos[span[0]:span[1]], s.valI[span[0]:span[1]]
		if len(pos) == 0 {
			continue // row max and suffix bound both unchanged
		}
		intSkipRow(arr, pos, val)
		// arr[n] is the row maximum (rows are monotone nondecreasing).
		if ub := c.Dequantize(int64(arr[n]) + remaining); ub <= atLeast {
			return ub
		}
	}
	return c.Dequantize(int64(arr[n]))
}

// scoreIntSmall is the int32 Score loop for words smaller than the
// alphabet: per-row gather plus the lane-blocked row kernel, no per-call
// tables.
func (s *Scratch) scoreIntSmall(a, b symbol.Word, c *score.CompiledInt) float64 {
	n := len(b)
	bi := s.indexWordInt(c, b)
	prev, cur := s.intRows(n + 1)
	for i := 1; i <= len(a); i++ {
		cur[0] = 0
		s.dpRowIntAuto(prev, cur, c.Row(a[i-1]), bi)
		prev, cur = cur, prev
	}
	return c.Dequantize(int64(prev[n]))
}

// fillInt computes the full int32 DP matrix of Align, one lane-blocked row
// at a time.
func (s *Scratch) fillInt(a, b symbol.Word, c *score.CompiledInt) [][]int32 {
	m, n := len(a), len(b)
	d := s.matrixI(m, n)
	bi := s.indexWordInt(c, b)
	for i := 1; i <= m; i++ {
		s.dpRowIntAuto(d[i-1], d[i], c.Row(a[i-1]), bi) // d[i][0] preset to 0 by matrixI
	}
	return d
}

// alignInt is Align on the int32 fast path: integer fill and traceback,
// with column σ contributions dequantized into the emitted Cols.
func (s *Scratch) alignInt(a, b symbol.Word, c *score.CompiledInt) (float64, []Col) {
	m, n := len(a), len(b)
	d := s.fillInt(a, b, c)
	var cols []Col
	i, j := m, n
	for i > 0 && j > 0 {
		q := c.Row(a[i-1])[c.Index(b[j-1])]
		switch {
		case q > 0 && d[i][j] == d[i-1][j-1]+q:
			cols = append(cols, Col{I: i - 1, J: j - 1, Sigma: c.Dequantize(int64(q))})
			i, j = i-1, j-1
		case d[i][j] == d[i-1][j]:
			i--
		case d[i][j] == d[i][j-1]:
			j--
		default:
			// Zero or negative σ diagonal that ties; skip it without
			// recording a scoring column.
			i, j = i-1, j-1
		}
	}
	for l, r := 0, len(cols)-1; l < r; l, r = l+1, r-1 {
		cols[l], cols[r] = cols[r], cols[l]
	}
	return c.Dequantize(int64(d[m][n])), cols
}

// lastRowIntInto computes the int32 last DP row into dst with the
// lane-blocked row kernel.
func (s *Scratch) lastRowIntInto(dst []int32, a, b symbol.Word, c *score.CompiledInt) []int32 {
	n := len(b)
	bi := s.indexWordInt(c, b)
	prev, cur := s.intRows(n + 1)
	for i := 1; i <= len(a); i++ {
		cur[0] = 0
		s.dpRowIntAuto(prev, cur, c.Row(a[i-1]), bi)
		prev, cur = cur, prev
	}
	dst = growI(dst, n+1)
	copy(dst, prev)
	return dst
}

// scoreBandedInt is ScoreBanded on the int32 fast path. The cell update
// keeps the per-cell sentinel guard on the scalar tier — band-edge cells
// can carry legitimately negative values, which the vector tier's zero-fill
// prefix scan does not admit (see dpRowInt's ≥ 0 contract) — and reads σ
// through the column index map directly: band segments are narrow, so a
// separate gather pass costs more than it saves.
func (s *Scratch) scoreBandedInt(a, b symbol.Word, c *score.CompiledInt, band int) float64 {
	m, n := len(a), len(b)
	bi := s.indexWordInt(c, b)
	prev, cur := s.intRows(n + 1)
	for i := 1; i <= m; i++ {
		center := i * n / m
		lo := max(1, center-band)
		hi := min(n, center+band)
		for j := range cur {
			cur[j] = minusInfI
		}
		cur[0] = 0
		row := c.Row(a[i-1])
		for j := lo; j <= hi; j++ {
			best := minusInfI
			if prev[j-1] > minusInfI/2 {
				best = prev[j-1] + row[bi[j-1]]
			}
			best = max(best, prev[j])
			best = max(best, cur[j-1])
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	best := int32(0)
	for j := 0; j <= n; j++ {
		best = max(best, prev[j])
	}
	return c.Dequantize(int64(best))
}

// The int32 placement kernel packs a DP cell's (value, start) pair into one
// int64 — value in the high 32 bits, start in the low 32 — so the kernel's
// lexicographic order (larger value wins, ties prefer the larger start, the
// exact tie-break of the float kernel) is plain int64 comparison: starts
// are nonnegative and below 2³¹, so the low word compares like an unsigned
// and never disturbs the value ordering.

func pkPack(v, st int32) int64 { return int64(v)<<32 | int64(uint32(st)) }
func pkVal(p int64) int32      { return int32(p >> 32) }
func pkStart(p int64) int32    { return int32(uint32(p)) }

// placementsInt is Placements on the int32 fast path: the packed-pair form
// of the skip-propagation sweep. Packed rows are monotone nondecreasing
// exactly like score rows (each is a running lexicographic prefix max), so
// the same absorption argument applies: add-free spans are unchanged, rows
// whose symbol has no positive column are skipped whole, and the sweep
// touches only positive columns plus active ripples. The frontier depends
// only on the final row, so a suffix gain bound also ends the sweep early
// once no remaining row can lift any final value above minScore — the
// common case for the low-similarity fragment pairs that dominate TPA
// candidate evaluation. minScore is compared on dequantized values, so the
// emitted windows satisfy the caller's float64 threshold exactly as the
// float kernel would.
func (s *Scratch) placementsInt(a, b symbol.Word, c *score.CompiledInt, minScore float64) []Placement {
	m, n := len(a), len(b)
	s.indexWordInt(c, b)
	s.sparseRowsI(a, c)
	remaining := int64(0)
	for _, sym := range a {
		remaining += int64(s.spanMax[s.rowOf[c.Index(sym)]-1])
	}
	if c.Dequantize(remaining) <= minScore {
		return nil // even the sum of per-row best gains cannot clear it
	}
	const noStart = int32(1) << 30
	pk0 := pkPack(0, noStart)
	arr := growI64(s.pk, n+1)
	s.pk = arr
	for j := range arr {
		arr[j] = pk0
	}
	for i := 1; i <= m; i++ {
		r := s.rowOf[c.Index(a[i-1])] - 1
		span := s.spans[r]
		remaining -= int64(s.spanMax[r])
		pos, val := s.pos[span[0]:span[1]], s.valI[span[0]:span[1]]
		if len(pos) == 0 {
			continue // no adds: the packed row is provably unchanged
		}
		j := 1
		best, oldPrev := arr[0], arr[0]
		for k := 0; k < len(pos); k++ {
			pj := int(pos[k]) + 1
			for j < pj {
				old := arr[j]
				if best <= old {
					j = pj
					best = arr[pj-1]
					oldPrev = best
					break
				}
				arr[j] = best
				oldPrev = old
				j++
			}
			up := arr[pj]
			st := pkStart(oldPrev)
			if st == noStart {
				st = int32(pj - 1) // this diagonal is the first scoring column
			}
			v := pkPack(pkVal(oldPrev)+val[k], st)
			v = max(v, up)
			v = max(v, best)
			arr[pj] = v
			best = v
			oldPrev = up
			j = pj + 1
		}
		for j <= n && best > arr[j] {
			arr[j] = best
			j++
		}
		if c.Dequantize(int64(pkVal(arr[n]))+remaining) <= minScore {
			return nil // no remaining row can lift the frontier above minScore
		}
	}
	// Count emissions first so the result is a single exact-size allocation
	// (the caller memoizes it, so it cannot live in the scratch arena).
	cnt := 0
	for j := 1; j <= n; j++ {
		if pkVal(arr[j]) > pkVal(arr[j-1]) && pkStart(arr[j]) != noStart &&
			c.Dequantize(int64(pkVal(arr[j]))) > minScore {
			cnt++
		}
	}
	if cnt == 0 {
		return nil
	}
	out := make([]Placement, 0, cnt)
	for j := 1; j <= n; j++ {
		if pkVal(arr[j]) > pkVal(arr[j-1]) && pkStart(arr[j]) != noStart {
			if v := c.Dequantize(int64(pkVal(arr[j]))); v > minScore {
				out = append(out, Placement{Lo: int(pkStart(arr[j])), Hi: j, Score: v})
			}
		}
	}
	return out
}
