//go:build amd64 && !noasm

#include "textflag.h"

// func dpRowAVX2(prev, cur, g []int32, n int) int32
//
// One free-gap DP row, 8 int32 cells per iteration:
//
//	t[j]   = max(prev[j-1] + g[j-1], prev[j])   (vector add + max)
//	cur[j] = max(t[j], cur[j-1])                (prefix max)
//
// The prefix max runs in-register: two byte-shift/max steps scan each
// 128-bit half, one cross-half step folds the low half's top lane into the
// high half, and a broadcast lane carries the running maximum between
// blocks. Shifted-in zero lanes are harmless because every cell is ≥ 0
// (free-gap DP with zero boundary; see dpRowInt's contract). n is a
// positive multiple of 8; cur[0] is preset by the caller.
TEXT ·dpRowAVX2(SB), NOSPLIT, $0-84
	MOVQ prev_base+0(FP), SI
	MOVQ cur_base+24(FP), DI
	MOVQ g_base+48(FP), DX
	MOVQ n+72(FP), CX

	VPBROADCASTD (DI), Y0      // Y0 = carry: cur[0] in all lanes
	XORQ AX, AX                // j = 0 (0-based cell index)

loop:
	VMOVDQU (SI)(AX*4), Y1     // prev[j .. j+7]   (diagonal inputs)
	VMOVDQU 4(SI)(AX*4), Y2    // prev[j+1 .. j+8] (up inputs)
	VPADDD  (DX)(AX*4), Y1, Y1 // diag + g[j .. j+7]
	VPMAXSD Y2, Y1, Y1         // t

	// Prefix max within each 128-bit half (shift in zeros, cells ≥ 0).
	VPSLLDQ $4, Y1, Y2
	VPMAXSD Y2, Y1, Y1
	VPSLLDQ $8, Y1, Y2
	VPMAXSD Y2, Y1, Y1
	// Fold the low half's top lane (its scan total) into the high half.
	VPERM2I128 $0x08, Y1, Y1, Y2 // Y2 = [ hi: Y1.lo128, lo: 0 ]
	VPSHUFD $0xFF, Y2, Y2        // hi half = lane 3 of Y1.lo128; lo stays 0
	VPMAXSD Y2, Y1, Y1
	// Carry from the previous block.
	VPMAXSD Y0, Y1, Y1

	VMOVDQU Y1, 4(DI)(AX*4)    // cur[j+1 .. j+8]

	// New carry: lane 7 (the block's running maximum) in all lanes.
	VPERMQ  $0xFF, Y1, Y0      // qword 3 everywhere → lanes [6,7,6,7,...]
	VPSHUFD $0xFF, Y0, Y0      // lane 7 everywhere

	ADDQ $8, AX
	CMPQ AX, CX
	JL   loop

	VMOVD X0, AX               // carry lane 0 = cur[n]
	MOVL AX, ret+80(FP)
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
