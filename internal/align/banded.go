package align

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

// minusInf is a sentinel for unreachable banded-DP cells, far below any
// score reachable from finite inputs.
const minusInf = -1e300

// ScoreBanded computes the free-gap alignment score restricted to DP cells
// within a diagonal band of half-width band around the slope-corrected
// diagonal j ≈ i·|b|/|a|. It is a lower bound on Score(a, b) and equals it
// whenever some optimal alignment stays inside the band — always true for
// band ≥ max(|a|,|b|). Useful when the words are near-collinear, e.g.
// orthologous contigs with few rearrangements; runs in O(|a|·band) time.
func ScoreBanded(a, b symbol.Word, sc score.Scorer, band int) float64 {
	s := NewScratch()
	defer s.Release()
	return s.ScoreBanded(a, b, sc, band)
}

// ScoreBanded is the kernel form of the package-level ScoreBanded.
func (s *Scratch) ScoreBanded(a, b symbol.Word, sc score.Scorer, band int) float64 {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return 0
	}
	if band < 1 {
		band = 1
	}
	ci, cf := resolve(sc, a, b, len(a)*min(len(b), 2*band+1))
	if ci != nil {
		return s.scoreBandedInt(a, b, ci, band)
	}
	if cf != nil {
		return s.scoreBandedCompiled(a, b, cf, band)
	}
	prev, cur := s.floatRows(n + 1)
	// Row 0 is all zeros: leading gaps are free.
	for i := 1; i <= m; i++ {
		ai := a[i-1]
		center := i * n / m
		lo := max(1, center-band)
		hi := min(n, center+band)
		for j := range cur {
			cur[j] = minusInf
		}
		cur[0] = 0
		for j := lo; j <= hi; j++ {
			best := minusInf
			if prev[j-1] > minusInf/2 {
				best = prev[j-1] + sc.Score(ai, b[j-1])
			}
			if prev[j] > best {
				best = prev[j]
			}
			if cur[j-1] > best {
				best = cur[j-1]
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	best := 0.0
	for j := 0; j <= n; j++ {
		if prev[j] > best {
			best = prev[j]
		}
	}
	return best
}
