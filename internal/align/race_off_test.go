//go:build !race

package align

// raceEnabled reports whether the race detector is active. The zero-alloc
// tests skip under -race: the detector intentionally defeats sync.Pool
// caching to expose reuse races, so allocation counts are meaningless there.
const raceEnabled = false
