// Package align implements alignment of region lists over the duplicated
// alphabet: the P_score of Definition 4 in "Aligning two fragmented
// sequences".
//
// For padded sequences u ∈ P_s̄ and v ∈ P_t̄ the paper defines
//
//	P_score(s̄, t̄) = max_{u,v} Score(u, v),  Score(u,v) = Σ σ(uᵢ, vᵢ)
//
// Because the padding symbol scores 0 against everything, P_score is the
// classic global-alignment dynamic program with free gaps:
//
//	D[i][j] = max(D[i−1][j−1] + σ(aᵢ, bⱼ), D[i−1][j], D[i][j−1])
//	D[0][·] = D[·][0] = 0
//
// The package provides serial scoring, full tracebacks, a linear-space
// Hirschberg variant, banded scoring, Pareto-optimal fit placements for the
// TPA subroutine, and a blocked parallel wavefront engine (the IPPS 2002
// parallel-DP angle).
package align

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

// Score returns P_score(a, b): the maximum total σ over all monotone
// pairings of a against b with free padding. Runs in O(|a|·|b|) time and
// O(|b|) space, allocation-free in steady state (buffers come from the
// scratch pool).
func Score(a, b symbol.Word, sc score.Scorer) float64 {
	s := NewScratch()
	defer s.Release()
	return s.Score(a, b, sc)
}

// Score is the kernel form of the package-level Score, running on the
// caller's scratch arena.
func (s *Scratch) Score(a, b symbol.Word, sc score.Scorer) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ci, cf := resolve(sc, a, b, len(a)*len(b))
	if ci != nil {
		return s.scoreInt(a, b, ci)
	}
	if cf != nil {
		return s.scoreCompiled(a, b, cf)
	}
	// σ is not symmetric in its species sides, so the argument order is
	// significant and the words are never swapped.
	n := len(b)
	prev, cur := s.floatRows(n + 1)
	for i := 1; i <= len(a); i++ {
		ai := a[i-1]
		cur[0] = 0
		for j := 1; j <= n; j++ {
			best := prev[j-1] + sc.Score(ai, b[j-1])
			if prev[j] > best {
				best = prev[j]
			}
			if cur[j-1] > best {
				best = cur[j-1]
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// ScoreAtLeast returns an upper bound on P_score(a, b) that is exact
// whenever it exceeds atLeast. Callers that only act on scores above a
// threshold (candidate screens, acceptance floors) can therefore treat the
// result exactly like Score: any returned value ≤ atLeast would have been
// rejected anyway, and any value > atLeast is the true score. On the
// quantized fast path the kernel stops as soon as a per-row suffix gain
// bound proves the remaining rows cannot lift the score above atLeast —
// the bound arithmetic is exact in integers, so the early exit cannot
// misclassify. Other σ tiers compute the exact score (a float-tier bound
// would need directed rounding to stay sound).
func ScoreAtLeast(a, b symbol.Word, sc score.Scorer, atLeast float64) float64 {
	s := NewScratch()
	defer s.Release()
	return s.ScoreAtLeast(a, b, sc, atLeast)
}

// ScoreAtLeast is the kernel form of the package-level ScoreAtLeast,
// running on the caller's scratch arena.
func (s *Scratch) ScoreAtLeast(a, b symbol.Word, sc score.Scorer, atLeast float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ci, cf := resolve(sc, a, b, len(a)*len(b))
	if ci != nil {
		return s.scoreAtLeastInt(a, b, ci, atLeast)
	}
	if cf != nil {
		return s.scoreCompiled(a, b, cf)
	}
	return s.Score(a, b, sc)
}

// BestOrient returns max(P_score(a,b), P_score(a,bᴿ)) and whether the
// maximum used the reversed orientation of b. This is the Fig. 7 rule for
// matches involving a full site.
func BestOrient(a, b symbol.Word, sc score.Scorer) (float64, bool) {
	s := NewScratch()
	defer s.Release()
	return s.BestOrient(a, b, sc)
}

// BestOrient is the kernel form of the package-level BestOrient.
func (s *Scratch) BestOrient(a, b symbol.Word, sc score.Scorer) (float64, bool) {
	fwd := s.Score(a, b, sc)
	rev := s.Score(a, b.Rev(), sc)
	if rev > fwd {
		return rev, true
	}
	return fwd, false
}

// Col is one scoring column of an alignment: position I of the first word
// paired with position J of the second, contributing Sigma.
type Col struct {
	I, J  int
	Sigma float64
}

// Align returns P_score(a, b) together with the scoring columns (pairs with
// σ > 0) of one optimal alignment, in increasing order of both coordinates.
// Runs in O(|a|·|b|) time and space; for long inputs prefer Hirschberg.
func Align(a, b symbol.Word, sc score.Scorer) (float64, []Col) {
	s := NewScratch()
	defer s.Release()
	return s.Align(a, b, sc)
}

// Align is the kernel form of the package-level Align, filling the DP matrix
// in the caller's scratch arena.
func (s *Scratch) Align(a, b symbol.Word, sc score.Scorer) (float64, []Col) {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return 0, nil
	}
	ci, cf := resolve(sc, a, b, len(a)*len(b))
	if ci != nil {
		return s.alignInt(a, b, ci)
	}
	var d [][]float64
	if cf != nil {
		d = s.fillCompiled(a, b, cf)
		sc = cf // the traceback's O(m+n) lookups take the dense path too
	} else {
		d = s.matrixF(m, n)
		for i := 1; i <= m; i++ {
			for j := 1; j <= n; j++ {
				best := d[i-1][j-1] + sc.Score(a[i-1], b[j-1])
				if d[i-1][j] > best {
					best = d[i-1][j]
				}
				if d[i][j-1] > best {
					best = d[i][j-1]
				}
				d[i][j] = best
			}
		}
	}
	var cols []Col
	i, j := m, n
	for i > 0 && j > 0 {
		s := sc.Score(a[i-1], b[j-1])
		switch {
		case s > 0 && d[i][j] == d[i-1][j-1]+s:
			cols = append(cols, Col{I: i - 1, J: j - 1, Sigma: s})
			i, j = i-1, j-1
		case d[i][j] == d[i-1][j]:
			i--
		case d[i][j] == d[i][j-1]:
			j--
		default:
			// Zero or negative σ diagonal that ties; skip it without
			// recording a scoring column.
			i, j = i-1, j-1
		}
	}
	// Reverse into increasing order.
	for l, r := 0, len(cols)-1; l < r; l, r = l+1, r-1 {
		cols[l], cols[r] = cols[r], cols[l]
	}
	return d[m][n], cols
}

// ColsScore sums the σ contributions of an alignment's scoring columns.
func ColsScore(cols []Col) float64 {
	t := 0.0
	for _, c := range cols {
		t += c.Sigma
	}
	return t
}

// ValidCols reports whether cols is a strictly increasing monotone pairing
// of positions within words of the given lengths.
func ValidCols(cols []Col, la, lb int) bool {
	pi, pj := -1, -1
	for _, c := range cols {
		if c.I <= pi || c.J <= pj || c.I >= la || c.J >= lb || c.I < 0 || c.J < 0 {
			return false
		}
		pi, pj = c.I, c.J
	}
	return true
}
