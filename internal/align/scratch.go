package align

import (
	"sync"

	"repro/internal/score"
	"repro/internal/symbol"
)

// Scratch is a reusable arena for every buffer the alignment kernels need:
// rolled DP row pairs (float64 and int32), start-index rows, the column-index
// word of b, the sparse positive-column tables of the dense Score fast path,
// Hirschberg boundary rows, and the full DP matrix of Align. All kernels are
// methods on Scratch; the package-level functions borrow one from an internal
// sync.Pool, so steady-state alignment — thousands of candidate simulations
// per improvement round, every tile of a wavefront sweep — performs no heap
// allocation at all.
//
// A Scratch is not safe for concurrent use: one goroutine, one Scratch.
// Solvers hold one per solve (greedy, onecsr, exact, the improve driver);
// the improve eval pool gives each worker its own; everyone else goes
// through the package-level functions and shares the pool.
type Scratch struct {
	fa, fb []float64 // rolled float64 DP rows
	ga, gb []float64 // Hirschberg float64 boundary rows (fwd/bwd)
	ia, ib []int32   // rolled int32 DP rows
	ja, jb []int32   // Hirschberg int32 boundary rows
	sa, sb []int32   // placement start-index rows
	bi     []int32   // column indices of b

	// Sparse positive-column table of the dense Score fast path: rowOf maps
	// an oriented symbol index to 1+its span, spans[k] indexes pos/val.
	// spanMax[k] is the largest value of span k (0 when empty) — the int32
	// kernels' per-row maximum gain, powering the early-exit suffix bounds
	// of ScoreAtLeast and the placement kernels.
	rowOf   []int32
	rowIdx  []int32 // oriented indices set in rowOf, for O(touched) reset
	spans   [][2]int32
	pos     []int32
	valF    []float64
	valI    []int32
	spanMax []int32

	// Inverse index of b for the int32 sparse build: bHead[col] chains the
	// positions of b holding oriented column col (1-based indices into
	// bNext, ascending). bTouched lists the set bHead cells for O(touched)
	// reset, mirroring rowIdx.
	bHead    []int32
	bNext    []int32
	bTouched []int32

	// gv is the gathered σ row of the lane kernels (gv[j] = row[bi[j]]):
	// the gather is hoisted out of the DP inner loop so the lane tiers
	// stream contiguous int32. pk is the packed (value, start) row of the
	// int32 placement kernel.
	gv []int32
	pk []int64

	// Full DP matrix of Align: flat cells plus row headers.
	cellsF []float64
	rowsF  [][]float64
	cellsI []int32
	rowsI  [][]int32
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// NewScratch borrows a scratch arena from the package pool. Callers running
// many alignments (a solve, a worker goroutine) should hold one for the
// duration and Release it at the end.
func NewScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the arena to the pool. The caller must not use it again.
func (s *Scratch) Release() { scratchPool.Put(s) }

// growF resizes a float64 buffer to n entries, reusing capacity. Contents
// are unspecified; callers clear what they rely on.
func growF(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// growI resizes an int32 buffer to n entries, reusing capacity.
func growI(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

// floatRows returns the two rolled DP rows, zeroing the first (DP row 0 is
// all zeros; the second is fully overwritten before it is read).
func (s *Scratch) floatRows(n int) (prev, cur []float64) {
	s.fa, s.fb = growF(s.fa, n), growF(s.fb, n)
	clear(s.fa)
	return s.fa, s.fb
}

// intRows is floatRows for the int32 kernels.
func (s *Scratch) intRows(n int) (prev, cur []int32) {
	s.ia, s.ib = growI(s.ia, n), growI(s.ib, n)
	clear(s.ia)
	return s.ia, s.ib
}

// indexWord fills s.bi with the column indices of b.
func (s *Scratch) indexWord(c *score.Compiled, b symbol.Word) []int32 {
	s.bi = c.IndexWordInto(growI(s.bi, len(b))[:0], b)
	return s.bi
}

// indexWordInt is indexWord for a quantized matrix.
func (s *Scratch) indexWordInt(c *score.CompiledInt, b symbol.Word) []int32 {
	s.bi = c.IndexWordInto(growI(s.bi, len(b))[:0], b)
	return s.bi
}

// matrixF returns an (m+1)×(n+1) float64 DP matrix with row 0 and column 0
// zeroed, backed by the arena.
func (s *Scratch) matrixF(m, n int) [][]float64 {
	s.cellsF = growF(s.cellsF, (m+1)*(n+1))
	if cap(s.rowsF) < m+1 {
		s.rowsF = make([][]float64, m+1)
	}
	d := s.rowsF[:m+1]
	for i := range d {
		d[i] = s.cellsF[i*(n+1) : (i+1)*(n+1)]
		d[i][0] = 0
	}
	clear(d[0])
	return d
}

// matrixI is matrixF for the int32 kernels.
func (s *Scratch) matrixI(m, n int) [][]int32 {
	s.cellsI = growI(s.cellsI, (m+1)*(n+1))
	if cap(s.rowsI) < m+1 {
		s.rowsI = make([][]int32, m+1)
	}
	d := s.rowsI[:m+1]
	for i := range d {
		d[i] = s.cellsI[i*(n+1) : (i+1)*(n+1)]
		d[i][0] = 0
	}
	clear(d[0])
	return d
}

// resetSparse prepares the sparse positive-column table for a matrix of the
// given oriented dimension. rowOf is kept all-zero between calls by undoing
// exactly the entries the last build set (rowIdx) — words are a handful of
// symbols while dim is the full oriented alphabet, so clearing only the
// touched cells beats a dim-wide memclr on every Score/Placements call.
func (s *Scratch) resetSparse(dim int) {
	if cap(s.rowOf) < dim {
		s.rowOf = make([]int32, dim)
	} else {
		for _, ia := range s.rowIdx {
			s.rowOf[ia] = 0
		}
		s.rowOf = s.rowOf[:dim]
	}
	s.rowIdx = s.rowIdx[:0]
	s.spans = s.spans[:0]
	s.pos = s.pos[:0]
	s.valF = s.valF[:0]
	s.valI = s.valI[:0]
	s.spanMax = s.spanMax[:0]
}

// indexB builds the inverse index of b for the sparse positive-column
// builds: bHead[col] chains the positions of b holding oriented column col
// (1-based indices into bNext, ascending), from s.bi in one reverse O(|b|)
// pass. bTouched lists the set bHead cells for O(touched) reset.
func (s *Scratch) indexB(dim int) {
	if cap(s.bHead) < dim {
		s.bHead = make([]int32, dim)
	} else {
		for _, col := range s.bTouched {
			s.bHead[col] = 0
		}
		s.bHead = s.bHead[:dim]
	}
	s.bTouched = s.bTouched[:0]
	s.bNext = growI(s.bNext, len(s.bi)+1)
	for j := len(s.bi) - 1; j >= 0; j-- {
		col := s.bi[j]
		if s.bHead[col] == 0 {
			s.bTouched = append(s.bTouched, col)
		}
		s.bNext[j+1] = s.bHead[col]
		s.bHead[col] = int32(j + 1)
	}
}

// growI64 is growI for int64 buffers.
func growI64(b []int64, n int) []int64 {
	if cap(b) < n {
		return make([]int64, n)
	}
	return b[:n]
}

// gatherI fills s.gv[j] = row[bi[j]] and returns it — one contiguous
// gathered σ row for the lane kernels.
func (s *Scratch) gatherI(row []int32, bi []int32) []int32 {
	s.gv = growI(s.gv, len(bi))
	g := s.gv
	for j, bj := range bi {
		g[j] = row[bj]
	}
	return g
}

// dpRowIntAuto advances one int32 DP row through the cheapest tier for its
// width: the fused index sweep below the lane cut, gather plus lane kernel
// from 2·laneWidth up (the narrowest row the AVX2 tier accepts).
func (s *Scratch) dpRowIntAuto(prev, cur, row, bi []int32) {
	if len(bi) < 2*laneWidth {
		dpRowIntIdx(prev, cur, row, bi)
		return
	}
	dpRowInt(prev, cur, s.gatherI(row, bi))
}
