package align

import (
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/symbol"
)

func TestValidColsRejects(t *testing.T) {
	cases := []struct {
		cols []Col
		la   int
		lb   int
		ok   bool
	}{
		{nil, 0, 0, true},
		{[]Col{{I: 0, J: 0}}, 1, 1, true},
		{[]Col{{I: 0, J: 0}, {I: 0, J: 1}}, 2, 2, false}, // I not increasing
		{[]Col{{I: 0, J: 1}, {I: 1, J: 0}}, 2, 2, false}, // J decreasing
		{[]Col{{I: 2, J: 0}}, 2, 1, false},               // I out of range
		{[]Col{{I: -1, J: 0}}, 2, 1, false},
	}
	for _, c := range cases {
		if got := ValidCols(c.cols, c.la, c.lb); got != c.ok {
			t.Errorf("ValidCols(%v,%d,%d) = %v", c.cols, c.la, c.lb, got)
		}
	}
}

func TestWavefrontExtremeShapes(t *testing.T) {
	tb := score.NewTable()
	tb.Set(1, 2, 3)
	long := make(symbol.Word, 500)
	for i := range long {
		long[i] = 2
	}
	single := symbol.Word{1}
	for _, cfg := range []WavefrontAligner{
		{Workers: 4, BlockRows: 7, BlockCols: 64},
		{Workers: 2, BlockRows: 1000, BlockCols: 3},
	} {
		if got := cfg.Score(single, long, tb); got != 3 {
			t.Fatalf("1×n: %v", got)
		}
		if got := cfg.Score(long, single, tb); got != 0 {
			t.Fatalf("n×1: %v (no entry for (2,1))", got)
		}
	}
}

func TestScoreExtensionMonotonicity(t *testing.T) {
	// Appending regions to either word never lowers the score (free pads).
	r := rand.New(rand.NewSource(131))
	for trial := 0; trial < 80; trial++ {
		tb := randTable(r, 4, 0.5)
		a := randOrientedWord(r, 1+r.Intn(8), 4)
		b := randOrientedWord(r, 1+r.Intn(8), 4)
		base := Score(a, b, tb)
		extra := randOrientedWord(r, 1+r.Intn(3), 4)
		if got := Score(symbol.Concat(a, extra), b, tb); got < base {
			t.Fatalf("extending a lowered score: %v < %v", got, base)
		}
		if got := Score(a, symbol.Concat(extra, b), tb); got < base {
			t.Fatalf("prepending to b lowered score: %v < %v", got, base)
		}
	}
}

func TestHirschbergLongAsymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(137))
	tb := randTable(r, 6, 0.3)
	a := randOrientedWord(r, 300, 6)
	b := randOrientedWord(r, 40, 6)
	want := Score(a, b, tb)
	got, cols := Hirschberg(a, b, tb)
	if got != want {
		t.Fatalf("asymmetric Hirschberg %v, want %v", got, want)
	}
	if ColsScore(cols) != want {
		t.Fatal("columns do not sum")
	}
}

func TestPlacementsMinScoreFilter(t *testing.T) {
	tb := score.NewTable()
	tb.Set(1, 5, 2)
	tb.Set(2, 6, 3)
	a := symbol.Word{1, 2}
	b := symbol.Word{5, 6}
	all := Placements(a, b, tb, 0)
	if len(all) != 2 {
		t.Fatalf("placements = %v", all)
	}
	high := Placements(a, b, tb, 4)
	if len(high) != 1 || high[0].Score != 5 {
		t.Fatalf("filtered placements = %v", high)
	}
}
