//go:build !amd64 || noasm

package align

// Portable build (non-amd64, or -tags noasm): the AVX2 tier compiles out
// entirely — useAVX2 is a false constant, so dpRowInt's vector branch is
// dead-code-eliminated and every row runs the unrolled Go tier.

const useAVX2 = false

func dpRowAVX2(prev, cur, g []int32, n int) int32 {
	panic("align: AVX2 kernel called on a build without it")
}

// setAVX2ForTest is a no-op on builds without the AVX2 tier.
func setAVX2ForTest(bool) func() { return func() {} }
