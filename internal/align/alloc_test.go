package align

import (
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/symbol"
)

// TestScoreZeroAlloc asserts the ISSUE's steady-state guarantee: with a
// prepared σ matrix (float64 or int32) every Score call runs entirely out of
// the pooled scratch arena — zero heap allocations per call on both the
// package-level and the per-Scratch form.
func TestScoreZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector defeats sync.Pool caching on purpose")
	}
	r := rand.New(rand.NewSource(30))
	tb := randIntTable(r, 20, 60, true)
	c := score.Compile(tb, 20)
	ci := c.Int()
	a := randIntWord(r, 20, 300)
	b := randIntWord(r, 20, 300)

	cases := []struct {
		name string
		fn   func()
	}{
		{"pooled-float", func() { Score(a, b, c) }},
		{"pooled-int", func() { Score(a, b, ci) }},
		{"pooled-banded", func() { ScoreBanded(a, b, c, 16) }},
		{"pooled-banded-int", func() { ScoreBanded(a, b, ci, 16) }},
	}
	s := NewScratch()
	defer s.Release()
	cases = append(cases,
		struct {
			name string
			fn   func()
		}{"scratch-float", func() { s.Score(a, b, c) }},
		struct {
			name string
			fn   func()
		}{"scratch-int", func() { s.Score(a, b, ci) }},
	)
	for _, tc := range cases {
		tc.fn() // warm the pool and grow the buffers
		if avg := testing.AllocsPerRun(50, tc.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, avg)
		}
	}
}

// TestWavefrontZeroAlloc: the single-worker wavefront (inline blocked sweep)
// reuses its pooled boundary rows, carries, and tile buffers — zero
// allocations per Score in steady state, in both score modes.
func TestWavefrontZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector defeats sync.Pool caching on purpose")
	}
	r := rand.New(rand.NewSource(31))
	tb := randIntTable(r, 20, 60, true)
	c := score.Compile(tb, 20)
	ci := c.Int()
	a := randIntWord(r, 20, 500)
	b := randIntWord(r, 20, 500)
	wf := WavefrontAligner{Workers: 1, BlockRows: 64, BlockCols: 64}

	for _, tc := range []struct {
		name string
		sc   score.Scorer
	}{{"float", c}, {"int", ci}} {
		fn := func() { wf.Score(a, b, tc.sc) }
		fn()
		if avg := testing.AllocsPerRun(20, fn); avg != 0 {
			t.Errorf("wavefront %s: %v allocs/op, want 0", tc.name, avg)
		}
	}
}

// TestWavefrontParallelMatchesSerial pins the pooled parallel scheduler to
// the serial kernels across block shapes and worker counts.
func TestWavefrontParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	tb := randIntTable(r, 15, 50, false)
	c := score.Compile(tb, 15)
	a := randIntWord(r, 15, 333)
	b := randIntWord(r, 15, 271)
	want := Score(a, b, c)
	for _, workers := range []int{1, 2, 4, 7} {
		for _, block := range []int{1, 17, 64, 1000} {
			wf := WavefrontAligner{Workers: workers, BlockRows: block, BlockCols: block}
			if got := wf.Score(a, b, c); got != want {
				t.Fatalf("workers=%d block=%d: %v != %v", workers, block, got, want)
			}
		}
	}
}

var benchSink float64

// BenchmarkScoreIntVsFloat is the kernel-level comparison the ISSUE gates on
// (≥1.5× for the int32 mode), on the same inputs as BenchmarkAlignmentKernels.
func BenchmarkScoreIntVsFloat(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	tb := score.NewTable()
	for i := 1; i <= 30; i++ {
		tb.Set(symbol.Symbol(i), symbol.Symbol(i%30+1), float64(1+i%5))
	}
	mk := func(n int) symbol.Word {
		w := make(symbol.Word, n)
		for i := range w {
			w[i] = symbol.Symbol(1 + r.Intn(30))
		}
		return w
	}
	a, bb := mk(500), mk(500)
	c := score.Compile(tb, 30)
	ci := c.Int()
	b.Run("float64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = Score(a, bb, c)
		}
	})
	b.Run("int32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = Score(a, bb, ci)
		}
	})
}

// BenchmarkSparseRowBuild isolates the per-call sparse-row table build that
// fronts the skip-propagation kernels: long words over a large alphabet with
// few positive cells per row, where the build (not the DP sweep) dominates.
// The float64 and int32 variants share the PosRow × inverse-column-index
// construction; this row is the before/after gauge for that build.
func BenchmarkSparseRowBuild(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	const dim = 2000
	tb := score.NewTable()
	for i := 1; i <= dim; i++ {
		// ~4 positive partners per symbol.
		for k := 0; k < 4; k++ {
			tb.Set(symbol.Symbol(i), symbol.Symbol(1+r.Intn(dim)), float64(1+r.Intn(5)))
		}
	}
	mk := func(n int) symbol.Word {
		w := make(symbol.Word, n)
		for i := range w {
			w[i] = symbol.Symbol(1 + r.Intn(dim))
		}
		return w
	}
	a, bb := mk(1200), mk(1200)
	c := score.Compile(tb, dim)
	ci := c.Int()
	b.Run("float64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = Score(a, bb, c)
		}
	})
	b.Run("int32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = Score(a, bb, ci)
		}
	})
}
