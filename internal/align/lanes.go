package align

// Lane-blocked int32 DP row kernels. The free-gap row update
//
//	cur[j] = max(prev[j-1] + g[j-1], prev[j], cur[j-1])
//
// is a prefix-max scan of the data-parallel term
//
//	t[j] = max(prev[j-1] + g[j-1], prev[j])
//
// so a row splits into an 8-wide add/max block (independent lanes, full ILP)
// followed by a max-scan. The portable tier below unrolls both by the lane
// width with bounds-check-free slice windows; on amd64 an AVX2 tier computes
// the same row with vector adds and a log-step in-register prefix max
// (lanes_amd64.s), dispatched behind a CPUID probe — or unconditionally when
// the build pins GOAMD64=v3, which implies AVX2. The rolled scalar loop is
// retained (dpRowIntScalar) as the fallback and the bit-exactness oracle of
// the fuzz tests; all three tiers produce identical cells.
//
// g holds the σ row of the current symbol of a gathered against b
// (g[j] = row[bi[j]], see Scratch.gatherRowI): the gather is hoisted out of
// the inner loop so every tier streams contiguous int32.

// laneWidth mirrors score.LaneWidth without importing it into the hot path.
const laneWidth = 8

// dpRowInt computes cur[1..n] of one free-gap DP row, n = len(g), with
// cur[0] preset by the caller (0 for plain rows, the left carry for
// wavefront tiles). prev and cur must not alias and hold at least n+1 cells.
// Returns cur[n], which — rows being monotone nondecreasing — is the row
// maximum. All cells of prev and cur[0] must be ≥ 0 (true for every
// free-gap DP with zero boundary); g may be negative.
func dpRowInt(prev, cur, g []int32) int32 {
	n := len(g)
	if useAVX2 && n >= 2*laneWidth {
		k := n &^ (laneWidth - 1)
		best := dpRowAVX2(prev, cur, g, k)
		for j := k + 1; j <= n; j++ {
			best = max(best, max(prev[j-1]+g[j-1], prev[j]))
			cur[j] = best
		}
		return best
	}
	return dpRowIntGo(prev, cur, g)
}

// dpRowIntGo is the portable lane tier: 8 cells per iteration, slice windows
// sized so the compiler drops every bounds check, adds independent across
// lanes, and the prefix max an unrolled scan chain of branch-free CMOVs.
func dpRowIntGo(prev, cur, g []int32) int32 {
	n := len(g)
	best := cur[0]
	j := 1
	for ; j+laneWidth <= n+1; j += laneWidth {
		p := prev[j-1 : j+laneWidth] // prev[j-1 .. j+7], 9 cells
		gg := g[j-1 : j-1+laneWidth : j-1+laneWidth]
		c := cur[j : j+laneWidth : j+laneWidth]
		t0 := max(p[0]+gg[0], p[1])
		t1 := max(p[1]+gg[1], p[2])
		t2 := max(p[2]+gg[2], p[3])
		t3 := max(p[3]+gg[3], p[4])
		t4 := max(p[4]+gg[4], p[5])
		t5 := max(p[5]+gg[5], p[6])
		t6 := max(p[6]+gg[6], p[7])
		t7 := max(p[7]+gg[7], p[8])
		best = max(best, t0)
		c[0] = best
		best = max(best, t1)
		c[1] = best
		best = max(best, t2)
		c[2] = best
		best = max(best, t3)
		c[3] = best
		best = max(best, t4)
		c[4] = best
		best = max(best, t5)
		c[5] = best
		best = max(best, t6)
		c[6] = best
		best = max(best, t7)
		c[7] = best
	}
	for ; j <= n; j++ {
		best = max(best, max(prev[j-1]+g[j-1], prev[j]))
		cur[j] = best
	}
	return best
}

// dpRowIntIdx is dpRowInt with the σ gather fused into the sweep: the cell
// term reads row[bi[j]] in place of a pre-gathered g. Rows too narrow for
// the AVX2 tier to engage lose more to the separate gather pass than the
// lane unroll wins back — typical improve-loop words are a handful of
// symbols — so Scratch.dpRowIntAuto routes them here and gathers only from
// 2·laneWidth up. Same cells, same contract as dpRowInt.
func dpRowIntIdx(prev, cur, row, bi []int32) int32 {
	best := cur[0]
	for j, bj := range bi {
		best = max(best, max(prev[j]+row[bj], prev[j+1]))
		cur[j+1] = best
	}
	return best
}

// dpRowIntScalar is the rolled reference row: the scalar fallback the fuzz
// tests hold every lane tier against.
func dpRowIntScalar(prev, cur, g []int32) int32 {
	best := cur[0]
	for j := 1; j <= len(g); j++ {
		best = max(best, max(prev[j-1]+g[j-1], prev[j]))
		cur[j] = best
	}
	return best
}
