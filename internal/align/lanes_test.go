package align

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/score"
)

// laneCase builds one random row-update instance honouring the kernel
// contract: prev cells ≥ 0 (monotone half the time, like a real DP row),
// cur[0] ≥ 0, g unrestricted in sign. Values stay far below the int32
// accumulation headroom.
func laneCase(r *rand.Rand, n int) (prev []int32, c0 int32, row []int32, bi []int32, g []int32) {
	prev = make([]int32, n+1)
	for j := range prev {
		prev[j] = int32(r.Intn(1 << 20))
	}
	if r.Intn(2) == 0 {
		for j := 1; j <= n; j++ {
			prev[j] = max(prev[j], prev[j-1])
		}
	}
	c0 = int32(r.Intn(1 << 20))
	dim := 1 + r.Intn(64)
	row = make([]int32, dim)
	for j := range row {
		row[j] = int32(r.Intn(1<<21) - 1<<20)
	}
	bi = make([]int32, n)
	g = make([]int32, n)
	for j := range bi {
		bi[j] = int32(r.Intn(dim))
		g[j] = row[bi[j]]
	}
	return
}

// checkLaneTier runs one kernel form against the scalar oracle.
func checkLaneTier(t *testing.T, name string, want []int32, wb int32, c0 int32, run func(cur []int32) int32) {
	t.Helper()
	cur := make([]int32, len(want))
	cur[0] = c0
	if gb := run(cur); gb != wb {
		t.Fatalf("%s: n=%d best %d, scalar %d", name, len(want)-1, gb, wb)
	}
	for j, w := range want {
		if cur[j] != w {
			t.Fatalf("%s: n=%d cell %d: %d, scalar %d", name, len(want)-1, j, cur[j], w)
		}
	}
}

// checkLaneKernels holds every lane tier to the scalar oracle on one
// instance: the portable 8-wide tier, the fused-gather index tier, the
// dispatcher with AVX2 forced off, and — when the host supports it — the
// AVX2 tier itself.
func checkLaneKernels(t *testing.T, prev []int32, c0 int32, row, bi, g []int32) {
	t.Helper()
	want := make([]int32, len(prev))
	want[0] = c0
	wb := dpRowIntScalar(prev, want, g)

	checkLaneTier(t, "go", want, wb, c0, func(cur []int32) int32 {
		return dpRowIntGo(prev, cur, g)
	})
	checkLaneTier(t, "idx", want, wb, c0, func(cur []int32) int32 {
		return dpRowIntIdx(prev, cur, row, bi)
	})
	restore := setAVX2ForTest(false)
	checkLaneTier(t, "dispatch-portable", want, wb, c0, func(cur []int32) int32 {
		return dpRowInt(prev, cur, g)
	})
	restore()
	if useAVX2 {
		checkLaneTier(t, "dispatch-avx2", want, wb, c0, func(cur []int32) int32 {
			return dpRowInt(prev, cur, g)
		})
	}
}

// TestLaneKernelWidths sweeps every row width through three lane blocks —
// covering each ragged-tail residue on both sides of the AVX2 engagement
// threshold (2·laneWidth) — with several random instances per width.
func TestLaneKernelWidths(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for n := 1; n <= 3*laneWidth+laneWidth-1; n++ {
		for trial := 0; trial < 8; trial++ {
			prev, c0, row, bi, g := laneCase(r, n)
			checkLaneKernels(t, prev, c0, row, bi, g)
		}
	}
}

// FuzzLaneKernelsMatchScalar drives the same tier-vs-oracle property from
// fuzzed widths and contents, including widths far beyond the sweep.
func FuzzLaneKernelsMatchScalar(f *testing.F) {
	f.Add(int64(1), uint16(1))
	f.Add(int64(2), uint16(laneWidth-1))
	f.Add(int64(3), uint16(laneWidth))
	f.Add(int64(4), uint16(laneWidth+5))
	f.Add(int64(5), uint16(2*laneWidth))   // AVX2 engagement width
	f.Add(int64(6), uint16(2*laneWidth+7)) // AVX2 + maximal ragged tail
	f.Add(int64(7), uint16(100))
	f.Add(int64(8), uint16(1000))
	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		width := int(n)%2048 + 1
		r := rand.New(rand.NewSource(seed))
		prev, c0, row, bi, g := laneCase(r, width)
		checkLaneKernels(t, prev, c0, row, bi, g)
	})
}

// TestScoreAtLeastSound pins the ScoreAtLeast contract against the exact
// kernel: any result above the threshold is the exact score, and whenever
// the exact score clears the threshold the early exit must not have fired —
// a screening caller can never lose a qualifying pair. The returned value is
// also always an upper bound on the exact score (it is either the score
// itself or the suffix bound that justified the exit).
func TestScoreAtLeastSound(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for trial := 0; trial < 300; trial++ {
		ids := 3 + r.Intn(10)
		tb := randIntTable(r, ids, 5+r.Intn(40), r.Intn(2) == 0)
		c := score.Compile(tb, int32(ids))
		ci := c.Int()
		a := randIntWord(r, ids, 1+r.Intn(80))
		b := randIntWord(r, ids, 1+r.Intn(80))
		exact := Score(a, b, ci)
		ths := []float64{-1, 0, exact - 1, exact, exact + 1, 2 * exact, r.Float64() * 100}
		for _, th := range ths {
			got := ScoreAtLeast(a, b, ci, th)
			if got < exact {
				t.Fatalf("trial %d th=%v: ScoreAtLeast %v below exact %v", trial, th, got, exact)
			}
			if got > th && got != exact {
				t.Fatalf("trial %d th=%v: result %v above threshold must be exact %v", trial, th, got, exact)
			}
			if got <= th && exact > th {
				t.Fatalf("trial %d th=%v: early exit (%v) excluded qualifying exact score %v", trial, th, got, exact)
			}
		}
	}
}

// TestPlacementsThresholdSound holds the int32 placement kernel — including
// both of its suffix-bound early bails — to the float64 kernel (which has no
// early exit) across random thresholds, on integral σ where the two must
// agree exactly.
func TestPlacementsThresholdSound(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		ids := 3 + r.Intn(10)
		tb := randIntTable(r, ids, 5+r.Intn(40), true)
		c := score.Compile(tb, int32(ids))
		ci := c.Int()
		a := randIntWord(r, ids, 1+r.Intn(60))
		b := randIntWord(r, ids, 1+r.Intn(60))
		th := float64(r.Intn(30) - 2)
		pf := Placements(a, b, c, th)
		pi := Placements(a, b, ci, th)
		if !slices.Equal(pi, pf) {
			t.Fatalf("trial %d th=%v: int placements %v != float %v", trial, th, pi, pf)
		}
	}
}
