//go:build race

package align

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
