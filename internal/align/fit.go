package align

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

// Placement is a candidate site for a full word inside a larger zone: the
// half-open window [Lo, Hi) of the zone achieves alignment score Score
// against the whole query word, and no optimal alignment with right end at
// Hi uses a narrower window.
type Placement struct {
	Lo, Hi int
	Score  float64
}

// Placements computes the Pareto frontier of fit-alignment placements of
// query a inside zone b: for every window right end e where the best
// achievable score strictly increases, it reports the minimal window
// [Lo, e) attaining that score. These are exactly the candidate intervals
// the TPA subroutine feeds to the interval-selection algorithm: any larger
// window with the same score only blocks more of the zone.
//
// Runs in O(|a|·|b|) time and O(|b|) space. Windows with score ≤ minScore
// are omitted.
func Placements(a, b symbol.Word, sc score.Scorer, minScore float64) []Placement {
	s := NewScratch()
	defer s.Release()
	return s.Placements(a, b, sc, minScore)
}

// Placements is the kernel form of the package-level Placements.
func (s *Scratch) Placements(a, b symbol.Word, sc score.Scorer, minScore float64) []Placement {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return nil
	}
	ci, cf := resolve(sc, a, b, len(a)*len(b))
	if ci != nil {
		return s.placementsInt(a, b, ci, minScore)
	}
	if cf != nil {
		return s.placementsCompiled(a, b, cf, minScore)
	}
	// d[j]: best score of aligning all of a against b[?..j).
	// st[j]: latest start of the first scoring column among optimal
	// alignments achieving d[j]; n+1 when no scoring column exists.
	const noStart = int32(1) << 30
	dPrev, dCur := s.floatRows(n + 1)
	s.sa, s.sb = growI(s.sa, n+1), growI(s.sb, n+1)
	stPrev, stCur := s.sa, s.sb
	for j := range stPrev {
		stPrev[j] = noStart
	}
	for i := 1; i <= m; i++ {
		ai := a[i-1]
		dCur[0] = 0
		stCur[0] = noStart
		for j := 1; j <= n; j++ {
			sv := sc.Score(ai, b[j-1])
			// Candidate moves: (value, start).
			bestV := dPrev[j]
			bestS := stPrev[j]
			if dCur[j-1] > bestV || (dCur[j-1] == bestV && stCur[j-1] > bestS) {
				bestV, bestS = dCur[j-1], stCur[j-1]
			}
			if sv > 0 {
				v := dPrev[j-1] + sv
				st := stPrev[j-1]
				if st == noStart {
					st = int32(j - 1) // this diagonal is the first scoring column
				}
				if v > bestV || (v == bestV && st > bestS) {
					bestV, bestS = v, st
				}
			}
			dCur[j], stCur[j] = bestV, bestS
		}
		dPrev, dCur = dCur, dPrev
		stPrev, stCur = stCur, stPrev
	}
	var out []Placement
	for j := 1; j <= n; j++ {
		// A strict increase at j means every optimal alignment of prefix
		// b[..j) has its last scoring column at j−1, so the emitted window
		// is tight on the right as well as on the left.
		if dPrev[j] > dPrev[j-1] && dPrev[j] > minScore && stPrev[j] != noStart {
			out = append(out, Placement{Lo: int(stPrev[j]), Hi: j, Score: dPrev[j]})
		}
	}
	return out
}

// BestPlacement returns the highest-scoring placement of a inside b, or
// ok = false when no alignment scores above minScore.
func BestPlacement(a, b symbol.Word, sc score.Scorer, minScore float64) (Placement, bool) {
	s := NewScratch()
	defer s.Release()
	return s.BestPlacement(a, b, sc, minScore)
}

// BestPlacement is the kernel form of the package-level BestPlacement.
func (s *Scratch) BestPlacement(a, b symbol.Word, sc score.Scorer, minScore float64) (Placement, bool) {
	ps := s.Placements(a, b, sc, minScore)
	if len(ps) == 0 {
		return Placement{}, false
	}
	return ps[len(ps)-1], true
}
