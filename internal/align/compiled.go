package align

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

// fastPath returns a dense compiled matrix covering every symbol of the
// given words, or nil when the interface path is preferable.
//
// A pre-compiled scorer is used whenever it covers the words — callers that
// compile once per solve (improve, onecsr, greedy, exact) always hit the
// dense path, even for tiny site words. Any other scorer is compiled on the
// fly only when the DP cell count (area — callers pass the number of cells
// their kernel actually computes, e.g. the band area for ScoreBanded)
// dwarfs the O(dim²) compilation cost, so small one-off alignments never
// pay for a matrix they cannot amortize.
func fastPath(sc score.Scorer, a, b symbol.Word, area int) *score.Compiled {
	need := wordsMaxID(a, b)
	if c, ok := sc.(*score.Compiled); ok {
		if c.MaxID() >= need {
			return c
		}
		return nil // out-of-range symbols: stay on the (correct) interface path
	}
	dim := 2*int(need) + 1
	if area < 4*dim*dim {
		return nil
	}
	return score.Compile(sc, need)
}

// resolve picks the kernel fast path for a scorer: (ci, nil) runs the
// integer-quantized kernels, (nil, cf) the dense float64 kernels, and
// (nil, nil) the interface path. A quantized matrix is used only when it
// covers the words AND its int32 accumulation headroom holds for their
// lengths; when the headroom fails, the alignment silently falls back to the
// exact float64 source matrix, so integer mode is safe at any input size.
func resolve(sc score.Scorer, a, b symbol.Word, area int) (*score.CompiledInt, *score.Compiled) {
	if ci, ok := sc.(*score.CompiledInt); ok {
		if ci.MaxID() < wordsMaxID(a, b) {
			return nil, nil // out-of-range symbols: interface path (dequantized cells)
		}
		if ci.Fits(min(len(a), len(b))) {
			return ci, nil
		}
		return nil, ci.Source()
	}
	return nil, fastPath(sc, a, b, area)
}

func wordsMaxID(a, b symbol.Word) int32 {
	var m int32
	for _, s := range a {
		if id := s.ID(); id > m {
			m = id
		}
	}
	for _, s := range b {
		if id := s.ID(); id > m {
			m = id
		}
	}
	return m
}

// sparseRowsF builds, for each distinct symbol of a, the positive columns of
// its σ row against b (s.bi must already hold b's column indices). DP rows
// are monotone nondecreasing, so a cell whose σ is ≤ 0 reduces exactly to
// max(up, left) — only the positive columns ever need the add, and they are
// typically a small fraction of the row. All storage lives in the arena.
//
// Like sparseRowsI, it intersects the matrix's cached positive-column lists
// (Compiled.PosRow) with an inverse index of b built in one O(|b|) pass, so
// the per-symbol cost is proportional to the row's positive cells and their
// hits in b rather than to |b| (the previous build scanned a full σ row per
// distinct symbol).
func (s *Scratch) sparseRowsF(a symbol.Word, c *score.Compiled) {
	dim := 2*int(c.MaxID()) + 1
	s.resetSparse(dim)
	s.indexB(dim)
	for _, sym := range a {
		ia := c.Index(sym)
		if s.rowOf[ia] != 0 {
			continue
		}
		cols, vals := c.PosRow(sym)
		start := int32(len(s.pos))
		for k, col := range cols {
			h := s.bHead[col]
			if h == 0 {
				continue
			}
			v := vals[k]
			for j := h; j != 0; j = s.bNext[j] {
				s.pos = append(s.pos, j-1)
				s.valF = append(s.valF, v)
			}
		}
		// Hits arrive grouped by column (each group ascending); the sweep
		// needs ascending positions (see sortPosVal).
		sortPosValF(s.pos[start:], s.valF[start:])
		s.spans = append(s.spans, [2]int32{start, int32(len(s.pos))})
		s.rowOf[ia] = int32(len(s.spans))
		s.rowIdx = append(s.rowIdx, ia)
	}
}

// sortPosValF is sortPosVal with float64 values.
func sortPosValF(pos []int32, val []float64) {
	for i := 1; i < len(pos); i++ {
		p, v := pos[i], val[i]
		j := i
		for j > 0 && pos[j-1] > p {
			pos[j], val[j] = pos[j-1], val[j-1]
			j--
		}
		pos[j], val[j] = p, v
	}
}

// scoreCompiled is Score on the dense fast path, using the same
// skip-propagation sweep as the int32 kernel (scoreInt): DP rows are
// monotone nondecreasing, so a cell with no positive σ reduces to
// max(up, left-max) — which leaves the rolled row unchanged once the
// running maximum has been absorbed. The loop therefore touches only the
// positive columns of each row plus the cells a diagonal add is still
// rippling through, skipping untouched spans outright (rows whose symbol
// scores positively against nothing in b are skipped whole). The skipped
// writes are provably no-ops and the per-cell arithmetic is unchanged (one
// add, then maxima), so the result is bit-identical to the full sweep.
// Words too small to amortize the O(alphabet) sparse-row table take a plain
// dense loop instead.
func (s *Scratch) scoreCompiled(a, b symbol.Word, c *score.Compiled) float64 {
	n := len(b)
	if len(a)*n < 8*int(c.MaxID())+4 {
		return s.scoreCompiledSmall(a, b, c)
	}
	s.indexWord(c, b)
	s.sparseRowsF(a, c)
	arr, _ := s.floatRows(n + 1)
	for i := 1; i <= len(a); i++ {
		span := s.spans[s.rowOf[c.Index(a[i-1])]-1]
		pos, val := s.pos[span[0]:span[1]], s.valF[span[0]:span[1]]
		if len(pos) == 0 {
			continue // no adds: the whole row is a no-op
		}
		// j is the next column to finalize, best the new value at j-1, and
		// oldPrev the previous row's value at j-1 (the diagonal input).
		j := 1
		best, oldPrev := 0.0, 0.0
		for k := 0; k < len(pos); k++ {
			pj := int(pos[k]) + 1
			// Ripple best through the add-free span [j, pj): once it is
			// absorbed (best ≤ old cell), the rest of the span is unchanged
			// and can be skipped — the old values are exactly the new ones.
			for j < pj {
				old := arr[j]
				if best <= old {
					j = pj
					best = arr[pj-1]
					oldPrev = best
					break
				}
				arr[j] = best
				oldPrev = old
				j++
			}
			up := arr[pj]
			v := oldPrev + val[k]
			if up > v {
				v = up
			}
			if best > v {
				v = best
			}
			arr[pj] = v
			best = v
			oldPrev = up
			j = pj + 1
		}
		// Tail: ripple the last add until absorbed.
		for j <= n && best > arr[j] {
			arr[j] = best
			j++
		}
	}
	return arr[n]
}

// scoreCompiledSmall is the dense Score loop for words whose DP area is
// smaller than the alphabet: row gathers per cell, no per-call tables.
func (s *Scratch) scoreCompiledSmall(a, b symbol.Word, c *score.Compiled) float64 {
	n := len(b)
	bi := s.indexWord(c, b)
	prev, cur := s.floatRows(n + 1)
	for i := 1; i <= len(a); i++ {
		row := c.Row(a[i-1])
		diag, best := prev[0], 0.0
		cur[0] = 0
		for j := 1; j <= n; j++ {
			v := diag + row[bi[j-1]]
			up := prev[j]
			if up > v {
				v = up
			}
			if best > v {
				v = best
			}
			cur[j] = v
			best = v
			diag = up
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// fillCompiled computes the full DP matrix of Align on the dense fast path.
// The matrix is arena-backed: valid until the scratch's next matrix request.
func (s *Scratch) fillCompiled(a, b symbol.Word, c *score.Compiled) [][]float64 {
	m, n := len(a), len(b)
	d := s.matrixF(m, n)
	bi := s.indexWord(c, b)
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		di, dp := d[i], d[i-1]
		for j := 1; j <= n; j++ {
			best := dp[j-1] + row[bi[j-1]]
			if dp[j] > best {
				best = dp[j]
			}
			if di[j-1] > best {
				best = di[j-1]
			}
			di[j] = best
		}
	}
	return d
}

// lastRowCompiledInto is lastRow on the dense fast path, writing D[len(a)]
// into dst (resized as needed).
func (s *Scratch) lastRowCompiledInto(dst []float64, a, b symbol.Word, c *score.Compiled) []float64 {
	n := len(b)
	bi := s.indexWord(c, b)
	prev, cur := s.floatRows(n + 1)
	for i := 1; i <= len(a); i++ {
		row := c.Row(a[i-1])
		cur[0] = 0
		for j := 1; j <= n; j++ {
			best := prev[j-1] + row[bi[j-1]]
			if prev[j] > best {
				best = prev[j]
			}
			if cur[j-1] > best {
				best = cur[j-1]
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	dst = growF(dst, n+1)
	copy(dst, prev)
	return dst
}

// scoreBandedCompiled is ScoreBanded on the dense fast path.
func (s *Scratch) scoreBandedCompiled(a, b symbol.Word, c *score.Compiled, band int) float64 {
	m, n := len(a), len(b)
	bi := s.indexWord(c, b)
	prev, cur := s.floatRows(n + 1)
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		center := i * n / m
		lo := max(1, center-band)
		hi := min(n, center+band)
		for j := range cur {
			cur[j] = minusInf
		}
		cur[0] = 0
		for j := lo; j <= hi; j++ {
			best := minusInf
			if prev[j-1] > minusInf/2 {
				best = prev[j-1] + row[bi[j-1]]
			}
			if prev[j] > best {
				best = prev[j]
			}
			if cur[j-1] > best {
				best = cur[j-1]
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	best := 0.0
	for j := 0; j <= n; j++ {
		if prev[j] > best {
			best = prev[j]
		}
	}
	return best
}

// placementsCompiled is Placements on the dense fast path.
func (s *Scratch) placementsCompiled(a, b symbol.Word, c *score.Compiled, minScore float64) []Placement {
	m, n := len(a), len(b)
	bi := s.indexWord(c, b)
	const noStart = int32(1) << 30
	dPrev, dCur := s.floatRows(n + 1)
	s.sa, s.sb = growI(s.sa, n+1), growI(s.sb, n+1)
	stPrev, stCur := s.sa, s.sb
	for j := range stPrev {
		stPrev[j] = noStart
	}
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		dCur[0] = 0
		stCur[0] = noStart
		for j := 1; j <= n; j++ {
			sv := row[bi[j-1]]
			bestV := dPrev[j]
			bestS := stPrev[j]
			if dCur[j-1] > bestV || (dCur[j-1] == bestV && stCur[j-1] > bestS) {
				bestV, bestS = dCur[j-1], stCur[j-1]
			}
			if sv > 0 {
				v := dPrev[j-1] + sv
				st := stPrev[j-1]
				if st == noStart {
					st = int32(j - 1)
				}
				if v > bestV || (v == bestV && st > bestS) {
					bestV, bestS = v, st
				}
			}
			dCur[j], stCur[j] = bestV, bestS
		}
		dPrev, dCur = dCur, dPrev
		stPrev, stCur = stCur, stPrev
	}
	var out []Placement
	for j := 1; j <= n; j++ {
		if dPrev[j] > dPrev[j-1] && dPrev[j] > minScore && stPrev[j] != noStart {
			out = append(out, Placement{Lo: int(stPrev[j]), Hi: j, Score: dPrev[j]})
		}
	}
	return out
}
