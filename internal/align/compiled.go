package align

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

// fastPath returns a dense compiled matrix covering every symbol of the
// given words, or nil when the interface path is preferable.
//
// A pre-compiled scorer is used whenever it covers the words — callers that
// compile once per solve (improve, onecsr, greedy, exact) always hit the
// dense path, even for tiny site words. Any other scorer is compiled on the
// fly only when the DP cell count (area — callers pass the number of cells
// their kernel actually computes, e.g. the band area for ScoreBanded)
// dwarfs the O(dim²) compilation cost, so small one-off alignments never
// pay for a matrix they cannot amortize.
func fastPath(sc score.Scorer, a, b symbol.Word, area int) *score.Compiled {
	need := wordsMaxID(a, b)
	if c, ok := sc.(*score.Compiled); ok {
		if c.MaxID() >= need {
			return c
		}
		return nil // out-of-range symbols: stay on the (correct) interface path
	}
	dim := 2*int(need) + 1
	if area < 4*dim*dim {
		return nil
	}
	return score.Compile(sc, need)
}

func wordsMaxID(a, b symbol.Word) int32 {
	var m int32
	for _, s := range a {
		if id := s.ID(); id > m {
			m = id
		}
	}
	for _, s := range b {
		if id := s.ID(); id > m {
			m = id
		}
	}
	return m
}

// scoreCompiled is Score on the dense fast path: the σ row of a[i-1] is
// hoisted out of the inner loop and b's column indices are precomputed, so
// each cell is three compares and one slice load.
// sparseRow lists the columns of one σ row with a positive score: pos[k] is
// the 0-based position in b, val[k] the score against b[pos[k]].
type sparseRow struct {
	pos []int32
	val []float64
}

// sparseRows builds, for each distinct symbol of a, the positive columns of
// its σ row against b. DP rows are monotone nondecreasing, so a cell whose σ
// is ≤ 0 reduces exactly to max(up, left) — only the positive columns ever
// need the add, and they are typically a small fraction of the row.
func sparseRows(a, b symbol.Word, c *score.Compiled) []*sparseRow {
	bi := c.IndexWord(b)
	rows := make([]*sparseRow, 2*int(c.MaxID())+1)
	for _, s := range a {
		ia := c.Index(s)
		if rows[ia] != nil {
			continue
		}
		sr := &sparseRow{}
		row := c.Row(s)
		for j, bj := range bi {
			if v := row[bj]; v > 0 {
				sr.pos = append(sr.pos, int32(j))
				sr.val = append(sr.val, v)
			}
		}
		rows[ia] = sr
	}
	return rows
}

// scoreCompiled is Score on the dense fast path. It rolls a single DP array,
// carries the diagonal and the running row max in registers, and touches σ
// only at the precomputed positive columns of each row. Words too small to
// amortize the O(alphabet) sparse-row table take a plain dense loop instead.
func scoreCompiled(a, b symbol.Word, c *score.Compiled) float64 {
	n := len(b)
	if len(a)*n < 8*int(c.MaxID())+4 {
		return scoreCompiledSmall(a, b, c)
	}
	rows := sparseRows(a, b, c)
	arr := make([]float64, n+1)
	for i := 1; i <= len(a); i++ {
		sr := rows[c.Index(a[i-1])]
		pos, val := sr.pos, sr.val
		k := 0
		diag, best := 0.0, 0.0
		for j := 1; j <= n; j++ {
			up := arr[j]
			v := up
			if k < len(pos) && int(pos[k]) == j-1 {
				if d := diag + val[k]; d > v {
					v = d
				}
				k++
			}
			if best > v {
				v = best
			}
			arr[j] = v
			best = v
			diag = up
		}
	}
	return arr[n]
}

// scoreCompiledSmall is the dense Score loop for words whose DP area is
// smaller than the alphabet: row gathers per cell, no per-call tables.
func scoreCompiledSmall(a, b symbol.Word, c *score.Compiled) float64 {
	n := len(b)
	bi := c.IndexWord(b)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for i := 1; i <= len(a); i++ {
		row := c.Row(a[i-1])
		diag, best := prev[0], 0.0
		cur[0] = 0
		for j := 1; j <= n; j++ {
			v := diag + row[bi[j-1]]
			up := prev[j]
			if up > v {
				v = up
			}
			if best > v {
				v = best
			}
			cur[j] = v
			best = v
			diag = up
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// fillCompiled computes the full DP matrix of Align on the dense fast path.
func fillCompiled(a, b symbol.Word, c *score.Compiled) [][]float64 {
	m, n := len(a), len(b)
	d := make([][]float64, m+1)
	for i := range d {
		d[i] = make([]float64, n+1)
	}
	bi := c.IndexWord(b)
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		di, dp := d[i], d[i-1]
		for j := 1; j <= n; j++ {
			best := dp[j-1] + row[bi[j-1]]
			if dp[j] > best {
				best = dp[j]
			}
			if di[j-1] > best {
				best = di[j-1]
			}
			di[j] = best
		}
	}
	return d
}

// lastRowCompiled is lastRow on the dense fast path.
func lastRowCompiled(a, b symbol.Word, c *score.Compiled) []float64 {
	n := len(b)
	bi := c.IndexWord(b)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for i := 1; i <= len(a); i++ {
		row := c.Row(a[i-1])
		cur[0] = 0
		for j := 1; j <= n; j++ {
			best := prev[j-1] + row[bi[j-1]]
			if prev[j] > best {
				best = prev[j]
			}
			if cur[j-1] > best {
				best = cur[j-1]
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev
}

// scoreBandedCompiled is ScoreBanded on the dense fast path.
func scoreBandedCompiled(a, b symbol.Word, c *score.Compiled, band int) float64 {
	m, n := len(a), len(b)
	bi := c.IndexWord(b)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		center := i * n / m
		lo := max(1, center-band)
		hi := min(n, center+band)
		for j := range cur {
			cur[j] = minusInf
		}
		cur[0] = 0
		for j := lo; j <= hi; j++ {
			best := minusInf
			if prev[j-1] > minusInf/2 {
				best = prev[j-1] + row[bi[j-1]]
			}
			if prev[j] > best {
				best = prev[j]
			}
			if cur[j-1] > best {
				best = cur[j-1]
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	best := 0.0
	for j := 0; j <= n; j++ {
		if prev[j] > best {
			best = prev[j]
		}
	}
	return best
}

// placementsCompiled is Placements on the dense fast path.
func placementsCompiled(a, b symbol.Word, c *score.Compiled, minScore float64) []Placement {
	m, n := len(a), len(b)
	bi := c.IndexWord(b)
	const noStart = 1 << 30
	dPrev := make([]float64, n+1)
	dCur := make([]float64, n+1)
	stPrev := make([]int, n+1)
	stCur := make([]int, n+1)
	for j := range stPrev {
		stPrev[j] = noStart
	}
	for i := 1; i <= m; i++ {
		row := c.Row(a[i-1])
		dCur[0] = 0
		stCur[0] = noStart
		for j := 1; j <= n; j++ {
			s := row[bi[j-1]]
			bestV := dPrev[j]
			bestS := stPrev[j]
			if dCur[j-1] > bestV || (dCur[j-1] == bestV && stCur[j-1] > bestS) {
				bestV, bestS = dCur[j-1], stCur[j-1]
			}
			if s > 0 {
				v := dPrev[j-1] + s
				st := stPrev[j-1]
				if st == noStart {
					st = j - 1
				}
				if v > bestV || (v == bestV && st > bestS) {
					bestV, bestS = v, st
				}
			}
			dCur[j], stCur[j] = bestV, bestS
		}
		dPrev, dCur = dCur, dPrev
		stPrev, stCur = stCur, stPrev
	}
	var out []Placement
	for j := 1; j <= n; j++ {
		if dPrev[j] > dPrev[j-1] && dPrev[j] > minScore && stPrev[j] != noStart {
			out = append(out, Placement{Lo: stPrev[j], Hi: j, Score: dPrev[j]})
		}
	}
	return out
}
