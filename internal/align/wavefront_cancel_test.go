package align

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/score"
	"repro/internal/symbol"
)

func wfWords(n int, seed int64) (symbol.Word, symbol.Word, *score.Table) {
	r := rand.New(rand.NewSource(seed))
	tb := score.NewTable()
	for i := 1; i <= 40; i++ {
		tb.Set(symbol.Symbol(i), symbol.Symbol(i%40+1), float64(1+i%7))
	}
	mk := func() symbol.Word {
		w := make(symbol.Word, n)
		for i := range w {
			w[i] = symbol.Symbol(1 + r.Intn(40))
		}
		return w
	}
	return mk(), mk(), tb
}

// TestWavefrontCancel checks the contract of a canceled sweep on both
// schedulers: ScoreCtx returns the context error (and a zero score), a nil
// or un-fired context scores exactly, and the pooled state survives a
// cancellation — the next sweep on the same pool is exact.
func TestWavefrontCancel(t *testing.T) {
	a, b, tb := wfWords(600, 1)
	want := Score(a, b, tb)
	for _, workers := range []int{1, 4} {
		wf := WavefrontAligner{Workers: workers, BlockRows: 64, BlockCols: 64}
		if got, err := wf.ScoreCtx(a, b, tb); err != nil || got != want {
			t.Fatalf("workers=%d: nil ctx: got %v, %v; want %v", workers, got, err, want)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // fired before the sweep: every tile is skipped
		wf.Ctx = ctx
		got, err := wf.ScoreCtx(a, b, tb)
		if err != context.Canceled || got != 0 {
			t.Fatalf("workers=%d: canceled ctx: got %v, err %v; want 0, context.Canceled", workers, got, err)
		}
		if wf.Score(a, b, tb) != 0 {
			t.Fatalf("workers=%d: canceled Score must return 0", workers)
		}
		// The pooled sweep state must be intact after the aborted run.
		wf.Ctx = context.Background()
		if got, err := wf.ScoreCtx(a, b, tb); err != nil || got != want {
			t.Fatalf("workers=%d: post-cancel sweep: got %v, %v; want %v", workers, got, err, want)
		}
	}
}

// TestWavefrontCancelPromptness bounds the latency of a mid-sweep deadline
// on an alignment whose full sweep takes much longer: the return must come
// well before the sweep would have finished, proving the tile scheduler —
// not the caller — observed the deadline (the ROADMAP follow-up from the
// sub-round solver cancellation work).
func TestWavefrontCancelPromptness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a, b, tb := wfWords(4000, 2)
	for _, workers := range []int{1, 4} {
		wf := WavefrontAligner{Workers: workers, BlockRows: 64, BlockCols: 64}
		solo := time.Now()
		wf.Score(a, b, tb)
		full := time.Since(solo)
		// Shrink the deadline until a sweep actually gets interrupted; warm
		// pools can make later sweeps faster than the reference.
		for deadline := full / 8; deadline >= 50*time.Microsecond; deadline /= 4 {
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			wf.Ctx = ctx
			start := time.Now()
			_, err := wf.ScoreCtx(a, b, tb)
			elapsed := time.Since(start)
			cancel()
			if err == nil {
				continue // the sweep beat this deadline; tighten
			}
			if err != context.DeadlineExceeded {
				t.Fatalf("workers=%d: err = %v, want deadline exceeded", workers, err)
			}
			if elapsed > full/2+50*time.Millisecond {
				t.Fatalf("workers=%d: cancellation took %v of a %v sweep — not mid-sweep", workers, elapsed, full)
			}
			return
		}
		t.Logf("workers=%d: machine sweeps faster than every deadline; nothing to observe", workers)
	}
}
