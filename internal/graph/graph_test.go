package graph

import (
	"math/rand"
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Error("degrees wrong")
	}
	if es := g.Edges(); len(es) != 1 || es[0] != [2]int{0, 1} {
		t.Errorf("Edges = %v", es)
	}
}

func TestRandomCubic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{4, 6, 8, 10, 16, 24} {
		g, err := RandomCubic(r, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !g.IsRegular(3) {
			t.Fatalf("n=%d: not cubic", n)
		}
		if len(g.Edges()) != 3*n/2 {
			t.Fatalf("n=%d: %d edges, want %d", n, len(g.Edges()), 3*n/2)
		}
	}
	if _, err := RandomCubic(r, 5); err == nil {
		t.Error("odd n accepted")
	}
	if _, err := RandomCubic(r, 2); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestNonConsecutiveOrder(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for _, n := range []int{8, 10, 16, 20} {
		g, err := RandomCubic(r, n)
		if err != nil {
			t.Fatal(err)
		}
		ord, err := NonConsecutiveOrder(g, r)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := make([]bool, n)
		for _, v := range ord {
			if seen[v] {
				t.Fatal("order is not a permutation")
			}
			seen[v] = true
		}
		for i := 1; i < len(ord); i++ {
			if g.HasEdge(ord[i-1], ord[i]) {
				t.Fatalf("consecutive adjacent vertices %d,%d", ord[i-1], ord[i])
			}
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g, err := RandomCubic(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(10)
	h := g.Relabel(perm)
	if !h.IsRegular(3) {
		t.Fatal("relabeled graph not cubic")
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(perm[e[0]], perm[e[1]]) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

// bruteMIS enumerates all subsets.
func bruteMIS(g *Graph) int {
	best := 0
	for mask := 0; mask < 1<<g.N; mask++ {
		var set []int
		for v := 0; v < g.N; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		if IsIndependentSet(g, set) && len(set) > best {
			best = len(set)
		}
	}
	return best
}

func TestExactMISAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(10)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					_ = g.AddEdge(u, v)
				}
			}
		}
		set := MaxIndependentSetExact(g)
		if !IsIndependentSet(g, set) {
			t.Fatal("exact returned dependent set")
		}
		if want := bruteMIS(g); len(set) != want {
			t.Fatalf("exact |MIS| = %d, brute force %d", len(set), want)
		}
	}
}

func TestGreedyIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g, err := RandomCubic(r, 8+2*r.Intn(6))
		if err != nil {
			t.Fatal(err)
		}
		set := GreedyIndependentSet(g)
		if !IsIndependentSet(g, set) {
			t.Fatal("greedy returned dependent set")
		}
		exact := MaxIndependentSetExact(g)
		if len(set) > len(exact) {
			t.Fatal("greedy beats exact")
		}
		// Cubic graphs: greedy is at least n/4 (every pick kills ≤ 4).
		if 4*len(set) < g.N {
			t.Fatalf("greedy too small: %d on %d vertices", len(set), g.N)
		}
	}
}

func TestIsIndependentSetDuplicates(t *testing.T) {
	g := New(3)
	if IsIndependentSet(g, []int{1, 1}) {
		t.Fatal("duplicate vertices accepted")
	}
}
