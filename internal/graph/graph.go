// Package graph provides the undirected-graph substrate for the Theorem 2
// hardness reduction: random 3-regular (cubic) graphs, the Dirac-style
// orderings with no consecutive adjacent nodes the reduction requires, and
// maximum-independent-set solvers (exact branch-and-bound and greedy) for
// 3-MIS.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N−1.
type Graph struct {
	N   int
	adj [][]int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n)}
}

// AddEdge inserts the edge {u, v}. Self-loops and duplicate edges are
// rejected.
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return fmt.Errorf("graph: edge {%d,%d} out of range", u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns v's adjacency list (shared storage; do not mutate).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Edges returns every edge once, as ordered pairs u < v, sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.N; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for v := 0; v < g.N; v++ {
		if len(g.adj[v]) != d {
			return false
		}
	}
	return true
}

// Relabel returns the graph with vertex v renamed to perm[v].
func (g *Graph) Relabel(perm []int) *Graph {
	h := New(g.N)
	for _, e := range g.Edges() {
		// Errors are impossible: perm is a bijection over a simple graph.
		_ = h.AddEdge(perm[e[0]], perm[e[1]])
	}
	return h
}

// RandomCubic generates a random simple 3-regular graph on n vertices
// (n even, n ≥ 4) by taking a random Hamiltonian cycle plus a random
// perfect matching on the cycle's "antipodal-ish" chords, retrying until
// simple. The union of a cycle (degree 2) and a perfect matching (degree 1)
// is cubic.
func RandomCubic(r *rand.Rand, n int) (*Graph, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("graph: cubic graphs need even n ≥ 4, got %d", n)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		g := New(n)
		order := r.Perm(n)
		ok := true
		for i := 0; i < n && ok; i++ {
			if err := g.AddEdge(order[i], order[(i+1)%n]); err != nil {
				ok = false
			}
		}
		if !ok {
			continue
		}
		// Random perfect matching avoiding existing edges.
		pool := r.Perm(n)
		var pairs [][2]int
		if !matchPool(g, pool, &pairs) {
			continue
		}
		for _, p := range pairs {
			if err := g.AddEdge(p[0], p[1]); err != nil {
				ok = false
				break
			}
		}
		if ok && g.IsRegular(3) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: failed to generate a cubic graph on %d vertices", n)
}

// matchPool greedily pairs pool entries avoiding edges of g, with
// backtracking.
func matchPool(g *Graph, pool []int, out *[][2]int) bool {
	if len(pool) == 0 {
		return true
	}
	u := pool[0]
	for i := 1; i < len(pool); i++ {
		v := pool[i]
		if g.HasEdge(u, v) {
			continue
		}
		rest := make([]int, 0, len(pool)-2)
		rest = append(rest, pool[1:i]...)
		rest = append(rest, pool[i+1:]...)
		*out = append(*out, [2]int{u, v})
		if matchPool(g, rest, out) {
			return true
		}
		*out = (*out)[:len(*out)-1]
	}
	return false
}

// NonConsecutiveOrder returns a permutation ord of the vertices such that
// ord[i] and ord[i+1] are never adjacent — the ordering Theorem 2 requires
// (available for cubic graphs with n ≥ 6 by Dirac-style arguments). Found by
// randomized greedy with backtracking.
func NonConsecutiveOrder(g *Graph, r *rand.Rand) ([]int, error) {
	for attempt := 0; attempt < 200; attempt++ {
		perm := r.Perm(g.N)
		ord := make([]int, 0, g.N)
		used := make([]bool, g.N)
		if placeNext(g, perm, used, &ord) {
			return ord, nil
		}
	}
	return nil, fmt.Errorf("graph: no non-consecutive order found")
}

func placeNext(g *Graph, perm []int, used []bool, ord *[]int) bool {
	if len(*ord) == g.N {
		return true
	}
	for _, v := range perm {
		if used[v] {
			continue
		}
		if len(*ord) > 0 && g.HasEdge((*ord)[len(*ord)-1], v) {
			continue
		}
		used[v] = true
		*ord = append(*ord, v)
		if placeNext(g, perm, used, ord) {
			return true
		}
		*ord = (*ord)[:len(*ord)-1]
		used[v] = false
	}
	return false
}

// IsIndependentSet reports whether set is pairwise non-adjacent in g.
func IsIndependentSet(g *Graph, set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if set[i] == set[j] || g.HasEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// GreedyIndependentSet repeatedly takes a minimum-degree vertex and removes
// its neighborhood — the classic heuristic (ratio (Δ+2)/3 on
// degree-Δ-bounded graphs).
func GreedyIndependentSet(g *Graph) []int {
	alive := make([]bool, g.N)
	deg := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		alive[v] = true
		deg[v] = g.Degree(v)
	}
	remaining := g.N
	var set []int
	for remaining > 0 {
		best := -1
		for v := 0; v < g.N; v++ {
			if alive[v] && (best < 0 || deg[v] < deg[best]) {
				best = v
			}
		}
		set = append(set, best)
		kill := append([]int{best}, g.adj[best]...)
		for _, v := range kill {
			if alive[v] {
				alive[v] = false
				remaining--
				for _, w := range g.adj[v] {
					if alive[w] {
						deg[w]--
					}
				}
			}
		}
	}
	sort.Ints(set)
	return set
}

// MaxIndependentSetExact returns a maximum independent set by
// branch-and-bound: branch on a maximum-degree vertex, pruning with the
// remaining-vertex bound. Exponential worst case; fine for the reduction
// experiments (n ≤ ~40 cubic vertices).
func MaxIndependentSetExact(g *Graph) []int {
	alive := make([]bool, g.N)
	for v := range alive {
		alive[v] = true
	}
	var best []int
	var cur []int
	var dfs func(remaining int)
	dfs = func(remaining int) {
		if len(cur) > len(best) {
			best = append([]int(nil), cur...)
		}
		if len(cur)+remaining <= len(best) || remaining == 0 {
			return
		}
		// Pick a max-degree (within alive) vertex.
		pick, pickDeg := -1, -1
		for v := 0; v < g.N; v++ {
			if !alive[v] {
				continue
			}
			d := 0
			for _, w := range g.adj[v] {
				if alive[w] {
					d++
				}
			}
			if d > pickDeg {
				pick, pickDeg = v, d
			}
		}
		if pickDeg == 0 {
			// All remaining vertices are isolated: take them all.
			added := 0
			for v := 0; v < g.N; v++ {
				if alive[v] {
					cur = append(cur, v)
					added++
				}
			}
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			cur = cur[:len(cur)-added]
			return
		}
		// Branch 1: include pick.
		removed := []int{pick}
		alive[pick] = false
		for _, w := range g.adj[pick] {
			if alive[w] {
				alive[w] = false
				removed = append(removed, w)
			}
		}
		cur = append(cur, pick)
		dfs(remaining - len(removed))
		cur = cur[:len(cur)-1]
		for _, v := range removed {
			alive[v] = true
		}
		// Branch 2: exclude pick.
		alive[pick] = false
		dfs(remaining - 1)
		alive[pick] = true
	}
	dfs(g.N)
	sort.Ints(best)
	return best
}
