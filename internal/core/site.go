package core

import (
	"fmt"

	"repro/internal/symbol"
)

// Site identifies the contiguous subfragment f(Lo..Hi) of one fragment,
// using half-open 0-based indexing [Lo, Hi). The paper writes h(i, j) with
// 1-based inclusive indices; h(i, j) corresponds to Site{Lo: i−1, Hi: j}.
type Site struct {
	Species Species
	Frag    int
	Lo, Hi  int
}

// Len returns the number of regions in the site.
func (s Site) Len() int { return s.Hi - s.Lo }

// SameFragment reports whether s and t lie in the same fragment.
func (s Site) SameFragment(t Site) bool {
	return s.Species == t.Species && s.Frag == t.Frag
}

// Contains reports whether t lies within s (same fragment, t ⊆ s).
// Mirrors Definition 5: f(i,j) is contained in f(i′,j′) if i′≤i≤j≤j′.
func (s Site) Contains(t Site) bool {
	return s.SameFragment(t) && s.Lo <= t.Lo && t.Hi <= s.Hi
}

// Overlaps reports whether s and t share at least one region.
func (s Site) Overlaps(t Site) bool {
	return s.SameFragment(t) && s.Lo < t.Hi && t.Lo < s.Hi
}

// Adjacent reports whether s and t are contiguous without overlapping,
// mirroring Definition 5's adjacency.
func (s Site) Adjacent(t Site) bool {
	return s.SameFragment(t) && (s.Hi == t.Lo || t.Hi == s.Lo)
}

// Hides reports whether t is strictly inside s on both ends (Definition 5:
// f(i,j) is hidden by f(i′,j′) if i′<i≤j<j′). A hidden site cannot be
// prepared.
func (s Site) Hides(t Site) bool {
	return s.SameFragment(t) && s.Lo < t.Lo && t.Hi < s.Hi
}

func (s Site) String() string {
	return fmt.Sprintf("%v%d(%d,%d)", s.Species, s.Frag, s.Lo+1, s.Hi)
}

// SiteKind classifies a site per Definition 3.
type SiteKind int

const (
	// KindFull is the whole fragment h(1, n).
	KindFull SiteKind = iota
	// KindPrefix is a border site h(1, i), i < n.
	KindPrefix
	// KindSuffix is a border site h(i, n), i > 1.
	KindSuffix
	// KindInner touches neither fragment end.
	KindInner
)

func (k SiteKind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindPrefix:
		return "prefix"
	case KindSuffix:
		return "suffix"
	default:
		return "inner"
	}
}

// IsBorder reports whether the kind is a border site (prefix or suffix but
// not full).
func (k SiteKind) IsBorder() bool { return k == KindPrefix || k == KindSuffix }

// Kind classifies s within its fragment per Definition 3.
func (in *Instance) Kind(s Site) SiteKind {
	n := in.Frag(s.Species, s.Frag).Len()
	switch {
	case s.Lo == 0 && s.Hi == n:
		return KindFull
	case s.Lo == 0:
		return KindPrefix
	case s.Hi == n:
		return KindSuffix
	default:
		return KindInner
	}
}

// SiteWord returns the region word of the site in normal orientation.
func (in *Instance) SiteWord(s Site) symbol.Word {
	return in.Frag(s.Species, s.Frag).Regions[s.Lo:s.Hi]
}

// CheckSite validates the site's bounds against the instance.
func (in *Instance) CheckSite(s Site) error {
	if s.Species != SpeciesH && s.Species != SpeciesM {
		return fmt.Errorf("core: site %v: bad species", s)
	}
	if s.Frag < 0 || s.Frag >= in.NumFrags(s.Species) {
		return fmt.Errorf("core: site %v: fragment out of range", s)
	}
	n := in.Frag(s.Species, s.Frag).Len()
	if s.Lo < 0 || s.Hi > n || s.Lo >= s.Hi {
		return fmt.Errorf("core: site %v: bad interval (fragment length %d)", s, n)
	}
	return nil
}
