package core

import (
	"strings"
	"testing"

	"repro/internal/score"
	"repro/internal/symbol"
)

func TestSpecies(t *testing.T) {
	if SpeciesH.Other() != SpeciesM || SpeciesM.Other() != SpeciesH {
		t.Fatal("Other() wrong")
	}
	if SpeciesH.String() != "H" || SpeciesM.String() != "M" {
		t.Fatal("String() wrong")
	}
}

func TestSiteRelations(t *testing.T) {
	a := Site{SpeciesH, 0, 2, 5}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	cases := []struct {
		b                                   Site
		contains, overlaps, adjacent, hides bool
	}{
		{Site{SpeciesH, 0, 3, 4}, true, true, false, true},
		{Site{SpeciesH, 0, 2, 5}, true, true, false, false},
		{Site{SpeciesH, 0, 2, 4}, true, true, false, false},
		{Site{SpeciesH, 0, 3, 5}, true, true, false, false},
		{Site{SpeciesH, 0, 5, 7}, false, false, true, false},
		{Site{SpeciesH, 0, 0, 2}, false, false, true, false},
		{Site{SpeciesH, 0, 0, 1}, false, false, false, false},
		{Site{SpeciesH, 0, 4, 7}, false, true, false, false},
		{Site{SpeciesH, 1, 3, 4}, false, false, false, false},
		{Site{SpeciesM, 0, 3, 4}, false, false, false, false},
	}
	for _, c := range cases {
		if got := a.Contains(c.b); got != c.contains {
			t.Errorf("Contains(%v,%v) = %v", a, c.b, got)
		}
		if got := a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("Overlaps(%v,%v) = %v", a, c.b, got)
		}
		if got := a.Adjacent(c.b); got != c.adjacent {
			t.Errorf("Adjacent(%v,%v) = %v", a, c.b, got)
		}
		if got := a.Hides(c.b); got != c.hides {
			t.Errorf("Hides(%v,%v) = %v", a, c.b, got)
		}
	}
}

func TestSiteKinds(t *testing.T) {
	in := &Instance{
		H:     []Fragment{{Name: "h", Regions: symbol.Word{1, 2, 3, 4}}},
		M:     []Fragment{{Name: "m", Regions: symbol.Word{5}}},
		Sigma: score.NewTable(),
	}
	cases := []struct {
		s    Site
		want SiteKind
	}{
		{Site{SpeciesH, 0, 0, 4}, KindFull},
		{Site{SpeciesH, 0, 0, 2}, KindPrefix},
		{Site{SpeciesH, 0, 1, 4}, KindSuffix},
		{Site{SpeciesH, 0, 1, 3}, KindInner},
		{Site{SpeciesM, 0, 0, 1}, KindFull},
	}
	for _, c := range cases {
		if got := in.Kind(c.s); got != c.want {
			t.Errorf("Kind(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	if !KindPrefix.IsBorder() || !KindSuffix.IsBorder() || KindFull.IsBorder() || KindInner.IsBorder() {
		t.Error("IsBorder misclassifies")
	}
}

func TestInstanceValidate(t *testing.T) {
	in := PaperExample()
	if err := in.Validate(); err != nil {
		t.Fatalf("paper example invalid: %v", err)
	}
	bad := &Instance{H: []Fragment{{Name: "x"}}, M: nil, Sigma: score.NewTable()}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty fragment accepted")
	}
	pad := &Instance{
		H:     []Fragment{{Name: "x", Regions: symbol.Word{symbol.Pad}}},
		Sigma: score.NewTable(),
	}
	if err := pad.Validate(); err == nil {
		t.Fatal("padding symbol in fragment accepted")
	}
	noSigma := &Instance{}
	if err := noSigma.Validate(); err == nil {
		t.Fatal("missing scorer accepted")
	}
}

func TestCheckSite(t *testing.T) {
	in := PaperExample()
	good := Site{SpeciesH, 0, 0, 3}
	if err := in.CheckSite(good); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Site{
		{SpeciesH, 0, 0, 4},
		{SpeciesH, 0, 2, 2},
		{SpeciesH, 0, -1, 2},
		{SpeciesH, 5, 0, 1},
		{Species(7), 0, 0, 1},
	} {
		if err := in.CheckSite(bad); err == nil {
			t.Errorf("bad site %v accepted", bad)
		}
	}
}

func TestMatchScoreFullSite(t *testing.T) {
	in := PaperExample()
	// h2 = ⟨d⟩ (full site) against m2(2,2) = ⟨v⟩: σ(d,vᴿ)=2, so the
	// reversed orientation wins.
	mt, err := in.MatchScore(Site{SpeciesH, 1, 0, 1}, Site{SpeciesM, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if mt.Score != 2 || !mt.Rev {
		t.Fatalf("MS = %+v, want score 2 rev", mt)
	}
	// h1 full vs m1 full: best is a-s (4) + nothing else forward; reversed
	// pairing gives b-tᴿ? h1 = a b c vs m1ᴿ = tᴿ sᴿ: σ(a,tᴿ)=0, σ(b,sᴿ)=0 —
	// forward gives σ(a,s)+... a~s then t can pair with b? σ(b,t)=0. So 4.
	mt, err = in.MatchScore(Site{SpeciesH, 0, 0, 3}, Site{SpeciesM, 0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if mt.Score != 4 || mt.Rev {
		t.Fatalf("MS(h1,m1) = %+v, want 4 fwd", mt)
	}
}

func TestMatchScoreBorderOrientationRule(t *testing.T) {
	al := symbol.NewAlphabet()
	x, y := al.Intern("x"), al.Intern("y")
	p, q := al.Intern("p"), al.Intern("q")
	tb := score.NewTable()
	tb.Set(x, p, 3)       // forward pairing
	tb.Set(x, q.Rev(), 7) // reversed pairing
	in := &Instance{
		H:     []Fragment{{Name: "h", Regions: symbol.Word{x, y}}},
		M:     []Fragment{{Name: "m", Regions: symbol.Word{p, q}}},
		Alpha: al,
		Sigma: tb,
	}
	// prefix–prefix: orientation forced reversed.
	mt, err := in.MatchScore(Site{SpeciesH, 0, 0, 1}, Site{SpeciesM, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !mt.Rev {
		t.Fatal("prefix–prefix must pair reversed")
	}
	if mt.Score != 0 { // x vs pᴿ scores 0
		t.Fatalf("score = %v, want 0", mt.Score)
	}
	// prefix(h) – suffix(m): forced forward. Site m(2,2)=⟨q⟩.
	mt, err = in.MatchScore(Site{SpeciesH, 0, 0, 1}, Site{SpeciesM, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if mt.Rev {
		t.Fatal("prefix–suffix must pair forward")
	}
	if mt.Score != 0 { // x vs q forward scores 0
		t.Fatalf("score = %v, want 0", mt.Score)
	}
	// suffix(h) – suffix(m): forced reversed; h(2,2)=⟨y⟩ vs m(2,2)=⟨q⟩ᴿ.
	tb.Set(y, q.Rev(), 5)
	mt, err = in.MatchScore(Site{SpeciesH, 0, 1, 2}, Site{SpeciesM, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !mt.Rev || mt.Score != 5 {
		t.Fatalf("suffix–suffix = %+v, want rev score 5", mt)
	}
}

func TestMatchScoreInnerInvalid(t *testing.T) {
	al := symbol.NewAlphabet()
	var w symbol.Word
	for _, n := range []string{"a", "b", "c", "d"} {
		w = append(w, al.Intern(n))
	}
	in := &Instance{
		H:     []Fragment{{Name: "h", Regions: w}},
		M:     []Fragment{{Name: "m", Regions: w.Clone()}},
		Alpha: al,
		Sigma: score.NewTable(),
	}
	inner := Site{SpeciesH, 0, 1, 3}
	innerM := Site{SpeciesM, 0, 1, 3}
	border := Site{SpeciesM, 0, 0, 2}
	if _, err := in.MatchScore(inner, innerM); err == nil {
		t.Error("inner–inner accepted")
	}
	if _, err := in.MatchScore(inner, border); err == nil {
		t.Error("inner–border accepted")
	}
	full := Site{SpeciesM, 0, 0, 4}
	if _, err := in.MatchScore(inner, full); err != nil {
		t.Errorf("inner–full rejected: %v", err)
	}
}

func TestSolutionAggregates(t *testing.T) {
	in := PaperExample()
	sol := PaperExampleOptimum()
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := sol.Score(); got != 11 {
		t.Fatalf("Score = %v, want 11", got)
	}
	if got := sol.Contribution(SpeciesH, 0); got != 9 {
		t.Fatalf("Cb(h1) = %v, want 9", got)
	}
	if got := sol.Contribution(SpeciesM, 1); got != 7 {
		t.Fatalf("Cb(m2) = %v, want 7", got)
	}
	mult := sol.Mult(in)
	if len(mult) != 2 {
		t.Fatalf("Mult = %v, want h1 and m2", mult)
	}
	simp := sol.Simp(in)
	if len(simp) != 2 {
		t.Fatalf("Simp = %v, want h2 and m1", simp)
	}
	if d := sol.Degree(in, SpeciesH, 0); d != 2 {
		t.Fatalf("Degree(h1) = %d", d)
	}
	isl := sol.Islands(in)
	if len(isl) != 1 || len(isl[0]) != 3 {
		t.Fatalf("Islands = %v, want one island of 3 matches", isl)
	}
	c := sol.Clone()
	c.Matches[0].Score = 99
	if sol.Matches[0].Score == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	in := PaperExample()
	sol := PaperExampleOptimum()
	sol.Matches[1].HSite = Site{SpeciesH, 0, 1, 3} // overlaps match 0's h1(1,2)
	sol.Matches[1].Score = sol.Matches[1].AlignScore(in)
	if err := sol.Validate(in); err == nil {
		t.Fatal("overlapping sites accepted")
	}
}

func TestValidateRejectsBadScore(t *testing.T) {
	in := PaperExample()
	sol := PaperExampleOptimum()
	sol.Matches[0].Score = 100
	if err := sol.Validate(in); err == nil {
		t.Fatal("stale cached score accepted")
	}
}

func TestFormatWord(t *testing.T) {
	in := PaperExample()
	w := in.H[0].Regions
	if got := in.FormatWord(w); got != "a b c" {
		t.Fatalf("FormatWord = %q", got)
	}
	in2 := &Instance{Sigma: score.NewTable()}
	if got := in2.FormatWord(symbol.Word{1}); !strings.Contains(got, "1") {
		t.Fatalf("alphabet-free FormatWord = %q", got)
	}
}

func TestMaxMatchesAndTotals(t *testing.T) {
	in := PaperExample()
	if got := in.TotalRegions(); got != 8 {
		t.Fatalf("TotalRegions = %d, want 8", got)
	}
	if got := in.MaxMatches(); got != 4 {
		t.Fatalf("MaxMatches = %d, want 4", got)
	}
}
