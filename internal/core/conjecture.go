package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/align"
	"repro/internal/symbol"
)

// OrientedFrag is one fragment with its orientation in a conjecture
// sequence.
type OrientedFrag struct {
	Frag int
	Rev  bool
}

// Conjecture is a realized conjecture pair (Definition 1): two equal-length
// padded words together with the fragment layouts that produced them and
// the match emission order. Score is the column score Score(h, m), which
// equals the total score of the consistent match set it was built from
// (Remark 1).
type Conjecture struct {
	H, M           symbol.Word
	HOrder, MOrder []OrientedFrag
	MatchOrder     []int
	Score          float64
}

// FormatLayout renders the fragment layout of one species, e.g.
// "h2' h1 | h3" (reversal marked with ', unmatched fragments after |).
func (c *Conjecture) FormatLayout(in *Instance, sp Species, matched int) string {
	order := c.HOrder
	if sp == SpeciesM {
		order = c.MOrder
	}
	parts := make([]string, 0, len(order)+1)
	for i, of := range order {
		if i == matched {
			parts = append(parts, "|")
		}
		name := in.Frag(sp, of.Frag).Name
		if name == "" {
			name = fmt.Sprintf("%v%d", sp, of.Frag)
		}
		if of.Rev {
			name += "'"
		}
		parts = append(parts, name)
	}
	return strings.Join(parts, " ")
}

// IsConsistent reports whether the match set is consistent (Definition 2):
// producible from some conjecture pair. It is a convenience wrapper around
// BuildConjecture.
func (sol *Solution) IsConsistent(in *Instance) bool {
	_, err := sol.BuildConjecture(in)
	return err == nil
}

// BuildConjecture constructs a conjecture pair realizing the match set
// (Remark 1), or reports why none exists. The construction walks each
// island of the solution graph: islands must be caterpillar chains —
// multiple fragments joined by border ("chain link") matches at the extreme
// ends of their match lists, with orientations propagating consistently —
// with simple fragments plugged into the interior. The resulting column
// score always equals the match-set score.
func (sol *Solution) BuildConjecture(in *Instance) (*Conjecture, error) {
	if err := sol.Validate(in); err != nil {
		return nil, err
	}
	ix := sol.index(in)
	deg := sol.degrees(in)

	// Multi-edges (two matches between the same fragment pair) are never
	// produced by a single conjecture pair: the pair would merge them into
	// one match.
	seenPair := make(map[[2]int]bool)
	for i := range sol.Matches {
		key := [2]int{sol.Matches[i].HSite.Frag, sol.Matches[i].MSite.Frag}
		if seenPair[key] {
			return nil, fmt.Errorf("core: fragments H%d and M%d share two matches", key[0], key[1])
		}
		seenPair[key] = true
	}

	// Chain links: matches whose two fragments both have ≥ 2 matches.
	isLink := make([]bool, len(sol.Matches))
	for i := range sol.Matches {
		mt := &sol.Matches[i]
		if deg[SpeciesH][mt.HSite.Frag] >= 2 && deg[SpeciesM][mt.MSite.Frag] >= 2 {
			isLink[i] = true
		}
	}
	// Per-fragment link positions must be extreme.
	chainDeg := func(sp Species, f int) int {
		n := 0
		for _, mi := range ix.by[sp][f] {
			if isLink[mi] {
				n++
			}
		}
		return n
	}
	for sp := SpeciesH; sp <= SpeciesM; sp++ {
		spc := Species(sp)
		for f, lst := range ix.by[sp] {
			var links []int // positions within lst
			for p, mi := range lst {
				if isLink[mi] {
					links = append(links, p)
				}
			}
			switch {
			case len(links) > 2:
				return nil, fmt.Errorf("core: fragment %v%d has %d chain links (max 2)", spc, f, len(links))
			case len(links) == 2:
				if links[0] != 0 || links[1] != len(lst)-1 {
					return nil, fmt.Errorf("core: fragment %v%d: chain links not at opposite extremes", spc, f)
				}
			case len(links) == 1:
				if links[0] != 0 && links[0] != len(lst)-1 {
					return nil, fmt.Errorf("core: fragment %v%d: chain link at interior position", spc, f)
				}
			}
		}
	}

	// Walk every island, producing the global match emission order and
	// fragment orientations.
	orient := make(map[FragRef]bool)
	visitedFrag := make(map[FragRef]bool)
	emitted := make([]bool, len(sol.Matches))
	var matchOrder []int
	var hOrder, mOrder []OrientedFrag

	appearFrag := func(fr FragRef, rev bool) {
		if visitedFrag[fr] {
			return
		}
		visitedFrag[fr] = true
		orient[fr] = rev
		of := OrientedFrag{Frag: fr.Idx, Rev: rev}
		if fr.Sp == SpeciesH {
			hOrder = append(hOrder, of)
		} else {
			mOrder = append(mOrder, of)
		}
	}

	// walk processes fragment fr whose emission-first match is entry (or -1
	// for a chain start) under the forced orientation rev.
	var walk func(fr FragRef, entry int, rev bool) error
	walk = func(fr FragRef, entry int, rev bool) error {
		if visitedFrag[fr] {
			return fmt.Errorf("core: fragment %v revisited (cycle)", fr)
		}
		appearFrag(fr, rev)
		lst := ix.by[fr.Sp][fr.Idx]
		order := make([]int, len(lst))
		copy(order, lst)
		if rev {
			for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
				order[l], order[r] = order[r], order[l]
			}
		}
		if entry >= 0 && order[0] != entry {
			return fmt.Errorf("core: fragment %v: entry link not at emission start", fr)
		}
		for p, mi := range order {
			if mi == entry {
				continue
			}
			mt := &sol.Matches[mi]
			partner := FragRef{Sp: fr.Sp.Other(), Idx: mt.Side(fr.Sp.Other()).Frag}
			partnerRev := rev != mt.Rev
			if isLink[mi] {
				if p != len(order)-1 {
					return fmt.Errorf("core: fragment %v: exit link not at emission end", fr)
				}
				emitted[mi] = true
				matchOrder = append(matchOrder, mi)
				return walk(partner, mi, partnerRev)
			}
			emitted[mi] = true
			matchOrder = append(matchOrder, mi)
			appearFrag(partner, partnerRev)
		}
		return nil
	}

	for _, island := range sol.Islands(in) {
		// Gather the island's fragments.
		fragSet := make(map[FragRef]bool)
		for _, mi := range island {
			fragSet[FragRef{SpeciesH, sol.Matches[mi].HSite.Frag}] = true
			fragSet[FragRef{SpeciesM, sol.Matches[mi].MSite.Frag}] = true
		}
		frags := make([]FragRef, 0, len(fragSet))
		for fr := range fragSet {
			frags = append(frags, fr)
		}
		sort.Slice(frags, func(a, b int) bool {
			if frags[a].Sp != frags[b].Sp {
				return frags[a].Sp < frags[b].Sp
			}
			return frags[a].Idx < frags[b].Idx
		})
		// Choose the walk start: a chain end when links exist, otherwise the
		// unique multiple fragment, otherwise the H side of the single match.
		var start FragRef
		found := false
		hasChain := false
		for _, fr := range frags {
			cd := chainDeg(fr.Sp, fr.Idx)
			if cd > 0 {
				hasChain = true
			}
			if cd == 1 && !found {
				start, found = fr, true
			}
		}
		if hasChain && !found {
			return nil, fmt.Errorf("core: island has a chain cycle")
		}
		if !found {
			for _, fr := range frags {
				if deg[fr.Sp][fr.Idx] >= 2 {
					start, found = fr, true
					break
				}
			}
		}
		if !found {
			start = frags[0] // single-match island; frags sorted H first
		}
		// Orient the start so its exit link (if any) is emission-last.
		rev := false
		lst := ix.by[start.Sp][start.Idx]
		for p, mi := range lst {
			if isLink[mi] {
				rev = p == 0 && len(lst) > 1
				break
			}
		}
		if err := walk(start, -1, rev); err != nil {
			return nil, err
		}
	}
	for i := range emitted {
		if !emitted[i] {
			return nil, fmt.Errorf("core: match %d not reachable by island walk", i)
		}
	}

	// Append unmatched fragments.
	for sp := SpeciesH; sp <= SpeciesM; sp++ {
		spc := Species(sp)
		for f := 0; f < in.NumFrags(spc); f++ {
			appearFrag(FragRef{spc, f}, false)
		}
	}

	return sol.assemble(in, matchOrder, hOrder, mOrder)
}

// assemble lays out the two conjecture words column by column following the
// match emission order, pairing unmatched regions with ⊥.
func (sol *Solution) assemble(in *Instance, matchOrder []int, hOrder, mOrder []OrientedFrag) (*Conjecture, error) {
	type cursor struct {
		seq  []OrientedFrag
		fi   int // index into seq
		pos  int // position in the current oriented fragment word
		word symbol.Word
	}
	var h, m cursor
	h.seq, m.seq = hOrder, mOrder
	var hw, mw symbol.Word

	fragWord := func(sp Species, of OrientedFrag) symbol.Word {
		return in.Frag(sp, of.Frag).Regions.Orient(of.Rev)
	}
	cur := func(sp Species, c *cursor) symbol.Word {
		return fragWord(sp, c.seq[c.fi])
	}
	// emitH/emitM append one column with the other row padded.
	emitH := func(s symbol.Symbol) { hw = append(hw, s); mw = append(mw, symbol.Pad) }
	emitM := func(s symbol.Symbol) { hw = append(hw, symbol.Pad); mw = append(mw, s) }
	// flushTo advances a cursor to position p in its current fragment.
	flushTo := func(sp Species, c *cursor, p int, emit func(symbol.Symbol)) error {
		w := cur(sp, c)
		if p < c.pos || p > len(w) {
			return fmt.Errorf("core: assemble: matches out of order in fragment %v%d", sp, c.seq[c.fi].Frag)
		}
		for ; c.pos < p; c.pos++ {
			emit(w[c.pos])
		}
		return nil
	}
	// advanceTo moves a cursor to the given fragment, flushing tails.
	advanceTo := func(sp Species, c *cursor, frag int, emit func(symbol.Symbol)) error {
		for c.seq[c.fi].Frag != frag {
			if err := flushTo(sp, c, len(cur(sp, c)), emit); err != nil {
				return err
			}
			c.fi++
			c.pos = 0
			if c.fi >= len(c.seq) {
				return fmt.Errorf("core: assemble: fragment %v%d missing from layout", sp, frag)
			}
		}
		return nil
	}
	orientedSpan := func(sp Species, of OrientedFrag, s Site) (int, int) {
		n := in.Frag(sp, of.Frag).Len()
		if of.Rev {
			return n - s.Hi, n - s.Lo
		}
		return s.Lo, s.Hi
	}

	total := 0.0
	for _, mi := range matchOrder {
		mt := &sol.Matches[mi]
		if err := advanceTo(SpeciesH, &h, mt.HSite.Frag, emitH); err != nil {
			return nil, err
		}
		if err := advanceTo(SpeciesM, &m, mt.MSite.Frag, emitM); err != nil {
			return nil, err
		}
		hOF, mOF := h.seq[h.fi], m.seq[m.fi]
		if (hOF.Rev != mOF.Rev) != mt.Rev {
			return nil, fmt.Errorf("core: assemble: match %d orientation mismatch", mi)
		}
		hs, he := orientedSpan(SpeciesH, hOF, mt.HSite)
		ms, me := orientedSpan(SpeciesM, mOF, mt.MSite)
		if err := flushTo(SpeciesH, &h, hs, emitH); err != nil {
			return nil, err
		}
		if err := flushTo(SpeciesM, &m, ms, emitM); err != nil {
			return nil, err
		}
		hword := cur(SpeciesH, &h)[hs:he]
		mword := cur(SpeciesM, &m)[ms:me]
		sc, cols := align.Align(hword, mword, in.Sigma)
		// The emission orientation may reverse both words; the score is
		// equal by reversal symmetry but float summation order differs, so
		// compare with a relative tolerance.
		if d := sc - mt.Score; d > 1e-6*(1+mt.Score) || d < -1e-6*(1+mt.Score) {
			return nil, fmt.Errorf("core: assemble: match %d realizes %v, cached %v", mi, sc, mt.Score)
		}
		pi, pj := 0, 0
		for _, col := range cols {
			for ; pi < col.I; pi++ {
				emitH(hword[pi])
			}
			for ; pj < col.J; pj++ {
				emitM(mword[pj])
			}
			hw = append(hw, hword[pi])
			mw = append(mw, mword[pj])
			pi, pj = pi+1, pj+1
			total += col.Sigma
		}
		for ; pi < len(hword); pi++ {
			emitH(hword[pi])
		}
		for ; pj < len(mword); pj++ {
			emitM(mword[pj])
		}
		h.pos, m.pos = he, me
	}
	// Flush everything that remains.
	for h.fi < len(h.seq) {
		if err := flushTo(SpeciesH, &h, len(cur(SpeciesH, &h)), emitH); err != nil {
			return nil, err
		}
		h.fi++
		h.pos = 0
	}
	for m.fi < len(m.seq) {
		if err := flushTo(SpeciesM, &m, len(cur(SpeciesM, &m)), emitM); err != nil {
			return nil, err
		}
		m.fi++
		m.pos = 0
	}
	if len(hw) != len(mw) {
		return nil, fmt.Errorf("core: assemble: unequal conjecture lengths %d vs %d", len(hw), len(mw))
	}
	return &Conjecture{
		H: hw, M: mw,
		HOrder: hOrder, MOrder: mOrder,
		MatchOrder: matchOrder,
		Score:      total,
	}, nil
}

// ColumnScore recomputes Score(h, m) for two equal-length padded words by
// summing σ column-wise — the paper's Score function for conjecture pairs.
func ColumnScore(in *Instance, h, m symbol.Word) (float64, error) {
	if len(h) != len(m) {
		return 0, fmt.Errorf("core: column score of unequal lengths %d vs %d", len(h), len(m))
	}
	t := 0.0
	for i := range h {
		t += in.Sigma.Score(h[i], m[i])
	}
	return t, nil
}
