package core

import (
	"fmt"
	"sort"
)

// Solution is a set of matches; the solver's working representation of a
// (candidate) consistent match set.
type Solution struct {
	Matches []Match
}

// Score returns the total score of all matches.
func (sol *Solution) Score() float64 {
	t := 0.0
	for i := range sol.Matches {
		t += sol.Matches[i].Score
	}
	return t
}

// Clone returns a deep copy.
func (sol *Solution) Clone() *Solution {
	c := &Solution{Matches: make([]Match, len(sol.Matches))}
	copy(c.Matches, sol.Matches)
	return c
}

// FragRef names one fragment of one species.
type FragRef struct {
	Sp  Species
	Idx int
}

func (fr FragRef) String() string { return fmt.Sprintf("%v%d", fr.Sp, fr.Idx) }

// siteIndex maps fragments to the matches touching them, sorted by site
// position within the fragment.
type siteIndex struct {
	// by[sp][frag] lists indices into Solution.Matches sorted by Site.Lo.
	by [2][][]int
}

func (sol *Solution) index(in *Instance) *siteIndex {
	ix := &siteIndex{}
	for sp := SpeciesH; sp <= SpeciesM; sp++ {
		ix.by[sp] = make([][]int, in.NumFrags(sp))
	}
	for i := range sol.Matches {
		mt := &sol.Matches[i]
		for _, s := range []Site{mt.HSite, mt.MSite} {
			ix.by[s.Species][s.Frag] = append(ix.by[s.Species][s.Frag], i)
		}
	}
	for sp := SpeciesH; sp <= SpeciesM; sp++ {
		spc := Species(sp)
		for f := range ix.by[sp] {
			lst := ix.by[sp][f]
			sort.Slice(lst, func(a, b int) bool {
				return sol.Matches[lst[a]].Side(spc).Lo < sol.Matches[lst[b]].Side(spc).Lo
			})
		}
	}
	return ix
}

// Degree returns the number of matches touching fragment (sp, idx).
func (sol *Solution) Degree(in *Instance, sp Species, idx int) int {
	n := 0
	for i := range sol.Matches {
		if sol.Matches[i].Side(sp).Frag == idx {
			n++
		}
	}
	return n
}

// Contribution returns Cb(f, S): the total score of matches involving the
// fragment (Definition 5).
func (sol *Solution) Contribution(sp Species, idx int) float64 {
	t := 0.0
	for i := range sol.Matches {
		if sol.Matches[i].Side(sp).Frag == idx {
			t += sol.Matches[i].Score
		}
	}
	return t
}

// Mult returns the multiple fragments of the solution: fragments
// participating in more than one match (Definition 5; in a two-fragment
// island the paper designates one fragment of the pair as multiple — here
// we use the purely combinatorial ≥2-matches criterion, and islands with a
// single shared border match are handled by the chain logic).
func (sol *Solution) Mult(in *Instance) []FragRef {
	deg := sol.degrees(in)
	var out []FragRef
	for sp := SpeciesH; sp <= SpeciesM; sp++ {
		for f, d := range deg[sp] {
			if d >= 2 {
				out = append(out, FragRef{Sp: Species(sp), Idx: f})
			}
		}
	}
	return out
}

// Simp returns the simple fragments: those participating in exactly one
// match.
func (sol *Solution) Simp(in *Instance) []FragRef {
	deg := sol.degrees(in)
	var out []FragRef
	for sp := SpeciesH; sp <= SpeciesM; sp++ {
		for f, d := range deg[sp] {
			if d == 1 {
				out = append(out, FragRef{Sp: Species(sp), Idx: f})
			}
		}
	}
	return out
}

func (sol *Solution) degrees(in *Instance) [2][]int {
	var deg [2][]int
	deg[0] = make([]int, in.NumFrags(SpeciesH))
	deg[1] = make([]int, in.NumFrags(SpeciesM))
	for i := range sol.Matches {
		deg[SpeciesH][sol.Matches[i].HSite.Frag]++
		deg[SpeciesM][sol.Matches[i].MSite.Frag]++
	}
	return deg
}

// Islands returns the connected components of the solution graph
// (Definition 5): fragments are nodes, matches are edges. Each island is
// returned as the list of match indices it contains; fragments with no
// matches appear in no island.
func (sol *Solution) Islands(in *Instance) [][]int {
	parent := make(map[FragRef]FragRef)
	var find func(x FragRef) FragRef
	find = func(x FragRef) FragRef {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	union := func(a, b FragRef) { parent[find(a)] = find(b) }
	for i := range sol.Matches {
		mt := &sol.Matches[i]
		union(FragRef{SpeciesH, mt.HSite.Frag}, FragRef{SpeciesM, mt.MSite.Frag})
	}
	groups := make(map[FragRef][]int)
	for i := range sol.Matches {
		r := find(FragRef{SpeciesH, sol.Matches[i].HSite.Frag})
		groups[r] = append(groups[r], i)
	}
	keys := make([]FragRef, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Sp != keys[b].Sp {
			return keys[a].Sp < keys[b].Sp
		}
		return keys[a].Idx < keys[b].Idx
	})
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		sort.Ints(g)
		out = append(out, g)
	}
	return out
}

// Validate checks the structural invariants that every candidate match set
// must satisfy regardless of consistency: valid sites, valid cached scores,
// and pairwise-disjoint sites on every fragment.
func (sol *Solution) Validate(in *Instance) error {
	for i := range sol.Matches {
		if err := in.CheckMatch(sol.Matches[i]); err != nil {
			return fmt.Errorf("match %d: %w", i, err)
		}
	}
	ix := sol.index(in)
	for sp := SpeciesH; sp <= SpeciesM; sp++ {
		spc := Species(sp)
		for f, lst := range ix.by[sp] {
			for k := 1; k < len(lst); k++ {
				prev := sol.Matches[lst[k-1]].Side(spc)
				cur := sol.Matches[lst[k]].Side(spc)
				if prev.Hi > cur.Lo {
					return fmt.Errorf("core: fragment %v%d: overlapping sites %v and %v",
						spc, f, prev, cur)
				}
			}
		}
	}
	return nil
}
