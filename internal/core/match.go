package core

import (
	"fmt"

	"repro/internal/align"
)

// Match pairs a site of an H fragment with a site of an M fragment
// (Definition 2). Rev records the relative orientation: the scored
// alignment pairs the H site word (normal orientation) against the M site
// word, reversed when Rev is true. Score caches the alignment score.
type Match struct {
	HSite, MSite Site
	Rev          bool
	Score        float64
}

// Side returns the match's site for the given species.
func (mt Match) Side(sp Species) Site {
	if sp == SpeciesH {
		return mt.HSite
	}
	return mt.MSite
}

// SetSide replaces the match's site for the given species. The caller is
// responsible for refreshing the cached Score afterwards.
func (mt *Match) SetSide(sp Species, s Site) {
	if sp == SpeciesH {
		mt.HSite = s
	} else {
		mt.MSite = s
	}
}

// AlignScore recomputes the alignment score of the match's oriented site
// words under the instance's σ.
func (mt *Match) AlignScore(in *Instance) float64 {
	hw := in.SiteWord(mt.HSite)
	mw := in.SiteWord(mt.MSite).Orient(mt.Rev)
	return align.Score(hw, mw, in.Sigma)
}

// CheckMatch validates the match's sites and cached score.
func (in *Instance) CheckMatch(mt Match) error {
	if err := in.CheckSite(mt.HSite); err != nil {
		return err
	}
	if err := in.CheckSite(mt.MSite); err != nil {
		return err
	}
	if mt.HSite.Species != SpeciesH || mt.MSite.Species != SpeciesM {
		return fmt.Errorf("core: match %v/%v: sites on wrong species", mt.HSite, mt.MSite)
	}
	if got := mt.AlignScore(in); got != mt.Score {
		return fmt.Errorf("core: match %v/%v: cached score %v, alignment scores %v",
			mt.HSite, mt.MSite, mt.Score, got)
	}
	return nil
}

// MatchKind classifies a match per Definition 3: a full match involves a
// full site; a border match involves a border site (and no full site).
type MatchKind int

const (
	// FullMatch involves at least one full site.
	FullMatch MatchKind = iota
	// BorderMatch involves a border site and no full site.
	BorderMatch
	// InvalidMatch involves an inner site and no full site; such a site
	// combination cannot occur in any conjecture pair.
	InvalidMatch
)

func (k MatchKind) String() string {
	switch k {
	case FullMatch:
		return "full"
	case BorderMatch:
		return "border"
	default:
		return "invalid"
	}
}

// KindOf classifies the match.
func (in *Instance) KindOf(mt Match) MatchKind {
	hk, mk := in.Kind(mt.HSite), in.Kind(mt.MSite)
	if hk == KindFull || mk == KindFull {
		return FullMatch
	}
	if hk.IsBorder() && mk.IsBorder() {
		return BorderMatch
	}
	return InvalidMatch
}

// MatchScore computes MS(h̄, m̄) per Definition 4 together with the
// orientation that attains it:
//
//   - If either site is full, both relative orientations are permitted
//     (Fig. 7): MS = max(P_score(h̄, m̄), P_score(h̄, m̄ᴿ)).
//   - If both sites are border sites, the fragments must continue in
//     opposite directions away from the match (Fig. 8), which forces the
//     relative orientation: two prefixes or two suffixes must pair
//     reversed; a prefix–suffix pair must pair forward.
//   - Inner–inner and inner–border combinations are invalid: an inner site
//     leaves its fragment continuing on both sides, which no conjecture
//     pair can realize against a non-full partner.
//
// The returned Match carries the chosen orientation and cached score.
func (in *Instance) MatchScore(hs, ms Site) (Match, error) {
	if err := in.CheckSite(hs); err != nil {
		return Match{}, err
	}
	if err := in.CheckSite(ms); err != nil {
		return Match{}, err
	}
	hk, mk := in.Kind(hs), in.Kind(ms)
	hw := in.SiteWord(hs)
	mw := in.SiteWord(ms)
	if hk == KindFull || mk == KindFull {
		sc, rev := align.BestOrient(hw, mw, in.Sigma)
		return Match{HSite: hs, MSite: ms, Rev: rev, Score: sc}, nil
	}
	if !hk.IsBorder() || !mk.IsBorder() {
		return Match{}, fmt.Errorf("core: MS undefined for %v(%v) vs %v(%v)", hs, hk, ms, mk)
	}
	// Border–border: prefix continues right, suffix continues left (in
	// normal orientation); reversal flips the direction. Opposite
	// continuation directions require rev = (same kind).
	rev := hk == mk
	sc := align.Score(hw, mw.Orient(rev), in.Sigma)
	return Match{HSite: hs, MSite: ms, Rev: rev, Score: sc}, nil
}
