// Package core implements the Consensus Sequence Reconstruction (CSR)
// problem model of "Aligning two fragmented sequences" (Veeramachaneni,
// Berman, Miller): instances over two fragment sets H and M, sites and
// matches (Definitions 2–4), match scores MS with the Fig. 7/8 orientation
// rules, consistency checking of match sets, and construction of conjecture
// pairs (Remark 1).
package core

import (
	"fmt"

	"repro/internal/score"
	"repro/internal/symbol"
)

// Species identifies which fragment set a fragment belongs to: H (the
// paper's "h-contigs") or M ("m-contigs").
type Species int

const (
	// SpeciesH is the first species (rows of the conjecture pair).
	SpeciesH Species = 0
	// SpeciesM is the second species.
	SpeciesM Species = 1
)

// Other returns the opposite species.
func (sp Species) Other() Species { return 1 - sp }

// String returns "H" or "M".
func (sp Species) String() string {
	if sp == SpeciesH {
		return "H"
	}
	return "M"
}

// Fragment is one contig: an ordered list of conserved regions.
type Fragment struct {
	// Name is a human-readable identifier (e.g. "h1").
	Name string
	// Regions is the ordered list of conserved-region symbols.
	Regions symbol.Word
}

// Len returns the number of regions in the fragment.
func (f *Fragment) Len() int { return len(f.Regions) }

// Instance is one CSR problem: two fragment sets and the score function σ.
type Instance struct {
	// Name labels the instance in reports.
	Name string
	// H and M are the two fragment sets.
	H, M []Fragment
	// Alpha interns region names; optional (used for formatting).
	Alpha *symbol.Alphabet
	// Sigma is the alignment score function σ.
	Sigma score.Scorer
}

// Frags returns the fragment slice for the given species.
func (in *Instance) Frags(sp Species) []Fragment {
	if sp == SpeciesH {
		return in.H
	}
	return in.M
}

// Frag returns fragment i of the given species.
func (in *Instance) Frag(sp Species, i int) *Fragment {
	if sp == SpeciesH {
		return &in.H[i]
	}
	return &in.M[i]
}

// NumFrags returns the number of fragments of the given species.
func (in *Instance) NumFrags(sp Species) int {
	if sp == SpeciesH {
		return len(in.H)
	}
	return len(in.M)
}

// TotalRegions returns the combined region count over both species.
func (in *Instance) TotalRegions() int {
	n := 0
	for i := range in.H {
		n += len(in.H[i].Regions)
	}
	for i := range in.M {
		n += len(in.M[i].Regions)
	}
	return n
}

// MaxMatches returns a crude upper bound on the number of matches any
// solution can contain: each match consumes at least one region on each
// side, so min(total H regions, total M regions) suffices. Used as the k of
// the §4.1 scaling rule.
func (in *Instance) MaxMatches() int {
	h, m := 0, 0
	for i := range in.H {
		h += len(in.H[i].Regions)
	}
	for i := range in.M {
		m += len(in.M[i].Regions)
	}
	if h < m {
		return h
	}
	return m
}

// MaxSymbolID returns the largest region ID appearing in any fragment of
// either species — the coverage bound solvers use to compile σ into a dense
// matrix (score.Compile) once per solve.
func (in *Instance) MaxSymbolID() int32 {
	var m int32
	for _, sp := range []Species{SpeciesH, SpeciesM} {
		for i := range in.Frags(sp) {
			for _, s := range in.Frags(sp)[i].Regions {
				if id := s.ID(); id > m {
					m = id
				}
			}
		}
	}
	return m
}

// Validate checks structural sanity: a scorer is present, fragments are
// non-empty, and no fragment contains the padding symbol.
func (in *Instance) Validate() error {
	if in.Sigma == nil {
		return fmt.Errorf("core: instance %q has no score function", in.Name)
	}
	for _, sp := range []Species{SpeciesH, SpeciesM} {
		for i, f := range in.Frags(sp) {
			if len(f.Regions) == 0 {
				return fmt.Errorf("core: %v fragment %d (%s) is empty", sp, i, f.Name)
			}
			for _, s := range f.Regions {
				if s.IsPad() {
					return fmt.Errorf("core: %v fragment %d (%s) contains the padding symbol", sp, i, f.Name)
				}
			}
		}
	}
	return nil
}

// FormatWord renders w with the instance's alphabet when available.
func (in *Instance) FormatWord(w symbol.Word) string {
	if in.Alpha != nil {
		return in.Alpha.FormatWord(w)
	}
	return fmt.Sprint(w)
}
