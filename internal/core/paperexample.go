package core

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

// PaperExample builds the worked data set of the paper's §1 (Figs 2, 4, 5):
// contigs h1 = ⟨a b c⟩, h2 = ⟨d⟩, m1 = ⟨s t⟩, m2 = ⟨u v⟩ with scores
// σ(a,s)=4, σ(a,t)=1, σ(b,tᴿ)=3, σ(c,u)=5, σ(d,t)=σ(d,vᴿ)=2. The optimal
// solution deletes b and t, reverses h2, and scores 4+5+2 = 11.
func PaperExample() *Instance {
	al := symbol.NewAlphabet()
	a, b, c, d := al.Intern("a"), al.Intern("b"), al.Intern("c"), al.Intern("d")
	s, t, u, v := al.Intern("s"), al.Intern("t"), al.Intern("u"), al.Intern("v")
	tb := score.NewTable()
	tb.Set(a, s, 4)
	tb.Set(a, t, 1)
	tb.Set(b, t.Rev(), 3)
	tb.Set(c, u, 5)
	tb.Set(d, t, 2)
	tb.Set(d, v.Rev(), 2)
	return &Instance{
		Name: "paper-example",
		H: []Fragment{
			{Name: "h1", Regions: symbol.Word{a, b, c}},
			{Name: "h2", Regions: symbol.Word{d}},
		},
		M: []Fragment{
			{Name: "m1", Regions: symbol.Word{s, t}},
			{Name: "m2", Regions: symbol.Word{u, v}},
		},
		Alpha: al,
		Sigma: tb,
	}
}

// PaperExampleOptimum returns the optimal consistent match set of the
// paper's example (Fig. 5): ω1 = (h1(1,2), m1(1,2)), ω2 = (h1(3,3),
// m2(1,1)), ω3 = (h2ᴿ(1,1), m2(2,2)), with total score 11.
func PaperExampleOptimum() *Solution {
	return &Solution{Matches: []Match{
		{
			HSite: Site{SpeciesH, 0, 0, 2},
			MSite: Site{SpeciesM, 0, 0, 2},
			Rev:   false,
			Score: 4,
		},
		{
			HSite: Site{SpeciesH, 0, 2, 3},
			MSite: Site{SpeciesM, 1, 0, 1},
			Rev:   false,
			Score: 5,
		},
		{
			HSite: Site{SpeciesH, 1, 0, 1},
			MSite: Site{SpeciesM, 1, 1, 2},
			Rev:   true,
			Score: 2,
		},
	}}
}
