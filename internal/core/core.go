package core
