package core

import (
	"testing"

	"repro/internal/score"
	"repro/internal/symbol"
)

func TestPaperExampleConjecture(t *testing.T) {
	in := PaperExample()
	sol := PaperExampleOptimum()
	c, err := sol.BuildConjecture(in)
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 11 {
		t.Fatalf("conjecture score %v, want 11", c.Score)
	}
	cs, err := ColumnScore(in, c.H, c.M)
	if err != nil {
		t.Fatal(err)
	}
	if cs != 11 {
		t.Fatalf("column score %v, want 11", cs)
	}
	// Layout must be h1 h2' / m1 m2 (Fig. 4).
	if len(c.HOrder) != 2 || c.HOrder[0] != (OrientedFrag{0, false}) || c.HOrder[1] != (OrientedFrag{1, true}) {
		t.Fatalf("HOrder = %v", c.HOrder)
	}
	if len(c.MOrder) != 2 || c.MOrder[0] != (OrientedFrag{0, false}) || c.MOrder[1] != (OrientedFrag{1, false}) {
		t.Fatalf("MOrder = %v", c.MOrder)
	}
	// The padded words must be paddings of the concatenated oriented
	// fragments (Definition 1).
	wantH := symbol.Concat(in.H[0].Regions, in.H[1].Regions.Rev())
	wantM := symbol.Concat(in.M[0].Regions, in.M[1].Regions)
	if !c.H.StripPads().Equal(wantH) {
		t.Fatalf("H word %v does not realize layout %v", in.FormatWord(c.H), in.FormatWord(wantH))
	}
	if !c.M.StripPads().Equal(wantM) {
		t.Fatalf("M word %v does not realize layout %v", in.FormatWord(c.M), in.FormatWord(wantM))
	}
	if len(c.H) != len(c.M) {
		t.Fatal("conjecture words have unequal length")
	}
	if !sol.IsConsistent(in) {
		t.Fatal("IsConsistent = false for the paper optimum")
	}
}

func TestFormatLayout(t *testing.T) {
	in := PaperExample()
	sol := PaperExampleOptimum()
	c, err := sol.BuildConjecture(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.FormatLayout(in, SpeciesH, len(c.HOrder)); got != "h1 h2'" {
		t.Fatalf("H layout = %q", got)
	}
	if got := c.FormatLayout(in, SpeciesM, 1); got != "m1 | m2" {
		t.Fatalf("M layout with divider = %q", got)
	}
}

// chainInstance builds an instance whose optimum is a length-3 chain
// h1 – m1 – h2 with border matches, to exercise multi-link walks.
func chainInstance() (*Instance, *Solution) {
	al := symbol.NewAlphabet()
	syms := make([]symbol.Symbol, 8)
	for i := range syms {
		syms[i] = al.Intern(string(rune('a' + i)))
	}
	// h1 = [0 1], m1 = [2 3], h2 = [4 5]; σ pairs h1[1]~m1[0], m1[1]~h2[0].
	tb := score.NewTable()
	tb.Set(syms[1], syms[2], 5)
	tb.Set(syms[4], syms[3], 4)
	in := &Instance{
		H: []Fragment{
			{Name: "h1", Regions: symbol.Word{syms[0], syms[1]}},
			{Name: "h2", Regions: symbol.Word{syms[4], syms[5]}},
		},
		M: []Fragment{
			{Name: "m1", Regions: symbol.Word{syms[2], syms[3]}},
		},
		Alpha: al,
		Sigma: tb,
	}
	sol := &Solution{Matches: []Match{
		{HSite: Site{SpeciesH, 0, 1, 2}, MSite: Site{SpeciesM, 0, 0, 1}, Rev: false, Score: 5},
		{HSite: Site{SpeciesH, 1, 0, 1}, MSite: Site{SpeciesM, 0, 1, 2}, Rev: false, Score: 4},
	}}
	return in, sol
}

func TestChainConjecture(t *testing.T) {
	in, sol := chainInstance()
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	c, err := sol.BuildConjecture(in)
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 9 {
		t.Fatalf("chain score = %v, want 9", c.Score)
	}
	if len(c.HOrder) != 2 {
		t.Fatalf("HOrder = %v", c.HOrder)
	}
	cs, _ := ColumnScore(in, c.H, c.M)
	if cs != 9 {
		t.Fatalf("column score %v", cs)
	}
}

func TestChainReversedLink(t *testing.T) {
	// Same chain but h2 participates reversed: σ(h2[1]ᴿ, m1[1]) pairing.
	in, sol := chainInstance()
	al := in.Alpha
	e, d := al.Intern("f"), al.Intern("d") // h2[1] is "f", m1[1] is "d"
	tb := in.Sigma.(*score.Table)
	tb.Set(e.Rev(), d, 4)
	sol.Matches[1] = Match{
		HSite: Site{SpeciesH, 1, 1, 2},
		MSite: Site{SpeciesM, 0, 1, 2},
		Rev:   true,
		Score: 4,
	}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	c, err := sol.BuildConjecture(in)
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 9 {
		t.Fatalf("score %v, want 9", c.Score)
	}
	// h2 must come out reversed in the layout.
	foundRev := false
	for _, of := range c.HOrder {
		if of.Frag == 1 && of.Rev {
			foundRev = true
		}
	}
	if !foundRev {
		t.Fatalf("h2 not reversed in layout %v", c.HOrder)
	}
}

func TestInconsistentCrossing(t *testing.T) {
	// Fig. 3 second example: aligning regions out of order in the two
	// sequences. h = ⟨a b⟩, m = ⟨c d⟩ with a~d and b~c crossing.
	al := symbol.NewAlphabet()
	a, b := al.Intern("a"), al.Intern("b")
	cSym, d := al.Intern("c"), al.Intern("d")
	tb := score.NewTable()
	tb.Set(a, d, 3)
	tb.Set(b, cSym, 3)
	in := &Instance{
		H:     []Fragment{{Name: "h", Regions: symbol.Word{a, b}}},
		M:     []Fragment{{Name: "m", Regions: symbol.Word{cSym, d}}},
		Alpha: al,
		Sigma: tb,
	}
	sol := &Solution{Matches: []Match{
		{HSite: Site{SpeciesH, 0, 0, 1}, MSite: Site{SpeciesM, 0, 1, 2}, Rev: false, Score: 3},
		{HSite: Site{SpeciesH, 0, 1, 2}, MSite: Site{SpeciesM, 0, 0, 1}, Rev: false, Score: 3},
	}}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if sol.IsConsistent(in) {
		t.Fatal("crossing matches reported consistent (two matches between the same pair)")
	}
}

func TestInconsistentInteriorLink(t *testing.T) {
	// A mult fragment whose chain link sits between two other matches can
	// never be realized.
	al := symbol.NewAlphabet()
	var h1 symbol.Word
	for _, n := range []string{"a", "b", "c"} {
		h1 = append(h1, al.Intern(n))
	}
	m1 := symbol.Word{al.Intern("p")}
	m2 := symbol.Word{al.Intern("q"), al.Intern("r")}
	m3 := symbol.Word{al.Intern("s")}
	tb := score.NewTable()
	tb.Set(h1[0], m1[0], 2)
	tb.Set(h1[1], m2[0], 2)
	tb.Set(h1[2], m3[0], 2)
	tb.Set(h1[1], m2[1], 1) // unused
	in := &Instance{
		H: []Fragment{{Name: "h1", Regions: h1}},
		M: []Fragment{
			{Name: "m1", Regions: m1},
			{Name: "m2", Regions: m2},
			{Name: "m3", Regions: m3},
		},
		Alpha: al,
		Sigma: tb,
	}
	// Give m2 a second match by splitting h1's middle against m2 twice —
	// instead, link m2 to another H fragment to make it multiple.
	in.H = append(in.H, Fragment{Name: "h2", Regions: symbol.Word{al.Intern("z")}})
	tb.Set(in.H[1].Regions[0], m2[1], 2)
	sol := &Solution{Matches: []Match{
		{HSite: Site{SpeciesH, 0, 0, 1}, MSite: Site{SpeciesM, 0, 0, 1}, Rev: false, Score: 2},
		{HSite: Site{SpeciesH, 0, 1, 2}, MSite: Site{SpeciesM, 1, 0, 1}, Rev: false, Score: 2},
		{HSite: Site{SpeciesH, 0, 2, 3}, MSite: Site{SpeciesM, 2, 0, 1}, Rev: false, Score: 2},
		{HSite: Site{SpeciesH, 1, 0, 1}, MSite: Site{SpeciesM, 1, 1, 2}, Rev: false, Score: 2},
	}}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	// h1–m2 is a chain link (both mult) but sits in the middle of h1's
	// matches: inconsistent.
	if sol.IsConsistent(in) {
		t.Fatal("interior chain link reported consistent")
	}
}

func TestEmptySolutionConjecture(t *testing.T) {
	in := PaperExample()
	sol := &Solution{}
	c, err := sol.BuildConjecture(in)
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 0 {
		t.Fatalf("empty solution score %v", c.Score)
	}
	// All fragments appear unmatched.
	if len(c.HOrder) != 2 || len(c.MOrder) != 2 {
		t.Fatalf("layout %v / %v", c.HOrder, c.MOrder)
	}
	if len(c.H) != len(c.M) {
		t.Fatal("unequal lengths")
	}
}

func TestColumnScoreLengthMismatch(t *testing.T) {
	in := PaperExample()
	if _, err := ColumnScore(in, symbol.Word{1}, symbol.Word{1, 2}); err == nil {
		t.Fatal("unequal lengths accepted")
	}
}

func TestOneIslandMultipleSimplePartners(t *testing.T) {
	// One long M fragment with three H fragments plugged in (a 1-island).
	al := symbol.NewAlphabet()
	var m symbol.Word
	for i := 0; i < 6; i++ {
		m = append(m, al.Intern(string(rune('p'+i))))
	}
	h1 := symbol.Word{al.Intern("a")}
	h2 := symbol.Word{al.Intern("b")}
	h3 := symbol.Word{al.Intern("c")}
	tb := score.NewTable()
	tb.Set(h1[0], m[0], 1)
	tb.Set(h2[0], m[2].Rev(), 2)
	tb.Set(h3[0], m[5], 3)
	in := &Instance{
		H: []Fragment{
			{Name: "h1", Regions: h1},
			{Name: "h2", Regions: h2},
			{Name: "h3", Regions: h3},
		},
		M:     []Fragment{{Name: "m", Regions: m}},
		Alpha: al,
		Sigma: tb,
	}
	sol := &Solution{Matches: []Match{
		{HSite: Site{SpeciesH, 0, 0, 1}, MSite: Site{SpeciesM, 0, 0, 1}, Rev: false, Score: 1},
		{HSite: Site{SpeciesH, 1, 0, 1}, MSite: Site{SpeciesM, 0, 2, 3}, Rev: true, Score: 2},
		{HSite: Site{SpeciesH, 2, 0, 1}, MSite: Site{SpeciesM, 0, 5, 6}, Rev: false, Score: 3},
	}}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	c, err := sol.BuildConjecture(in)
	if err != nil {
		t.Fatal(err)
	}
	if c.Score != 6 {
		t.Fatalf("score %v, want 6", c.Score)
	}
	// h2 plugged in reversed.
	for _, of := range c.HOrder {
		if of.Frag == 1 && !of.Rev {
			t.Fatal("h2 should be reversed in layout")
		}
	}
}
