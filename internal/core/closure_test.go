package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestConsistencyClosedUnderRemoval verifies a structural theorem of the
// model: removing any subset of matches from a consistent solution leaves
// a consistent solution (chains split into shorter chains, satellites
// detach). The solver's removal-based preparation steps rely on this.
func TestConsistencyClosedUnderRemoval(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		g := newCaterpillarGen(300 + int64(trial))
		g.buildChain(1+g.r.Intn(3), g.r.Intn(3))
		g.buildChain(g.r.Intn(3), g.r.Intn(2))
		if !g.sol.IsConsistent(g.in) {
			t.Fatalf("trial %d: baseline inconsistent", trial)
		}
		// Remove a random non-empty subset.
		sub := &Solution{}
		removed := 0
		for _, mt := range g.sol.Matches {
			if r.Intn(3) == 0 {
				removed++
				continue
			}
			sub.Matches = append(sub.Matches, mt)
		}
		if removed == 0 {
			continue
		}
		if err := sub.Validate(g.in); err != nil {
			t.Fatalf("trial %d: subset invalid: %v", trial, err)
		}
		if !sub.IsConsistent(g.in) {
			t.Fatalf("trial %d: removal broke consistency (%d of %d removed)",
				trial, removed, len(g.sol.Matches))
		}
	}
}

func TestSiteRelationProperties(t *testing.T) {
	mk := func(lo, hi int8) Site {
		l, h := int(lo), int(hi)
		if l < 0 {
			l = -l
		}
		if h < 0 {
			h = -h
		}
		if l > h {
			l, h = h, l
		}
		return Site{Species: SpeciesH, Frag: 0, Lo: l, Hi: h + 1}
	}
	// Overlaps is symmetric.
	if err := quick.Check(func(a1, a2, b1, b2 int8) bool {
		x, y := mk(a1, a2), mk(b1, b2)
		return x.Overlaps(y) == y.Overlaps(x)
	}, nil); err != nil {
		t.Error(err)
	}
	// Contains is transitive.
	if err := quick.Check(func(a1, a2, b1, b2, c1, c2 int8) bool {
		x, y, z := mk(a1, a2), mk(b1, b2), mk(c1, c2)
		if x.Contains(y) && y.Contains(z) {
			return x.Contains(z)
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
	// Hides implies Contains but never the reverse direction with shared
	// endpoints.
	if err := quick.Check(func(a1, a2, b1, b2 int8) bool {
		x, y := mk(a1, a2), mk(b1, b2)
		if x.Hides(y) {
			return x.Contains(y) && !y.Contains(x)
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
	// Adjacent sites never overlap.
	if err := quick.Check(func(a1, a2, b1, b2 int8) bool {
		x, y := mk(a1, a2), mk(b1, b2)
		if x.Adjacent(y) {
			return !x.Overlaps(y)
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
