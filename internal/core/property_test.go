package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/symbol"
)

// buildCaterpillar generatively constructs a random *valid* solution with
// the structure the theory permits: islands that are chains of centers
// joined by border matches at their extremes, with full-site satellites
// plugged into interior windows. Every solution built this way must pass
// IsConsistent — a strong generative property test of the walk/assemble
// machinery.
type caterpillarGen struct {
	r     *rand.Rand
	al    *symbol.Alphabet
	tb    *score.Table
	in    *Instance
	sol   *Solution
	next  int
	hFree []int // indices of unused H fragment slots (created lazily)
}

func newCaterpillarGen(seed int64) *caterpillarGen {
	g := &caterpillarGen{
		r:  rand.New(rand.NewSource(seed)),
		al: symbol.NewAlphabet(),
		tb: score.NewTable(),
	}
	g.in = &Instance{Name: "caterpillar", Alpha: g.al, Sigma: g.tb}
	g.sol = &Solution{}
	return g
}

// freshWord mints a word of n brand-new regions.
func (g *caterpillarGen) freshWord(n int) symbol.Word {
	w := make(symbol.Word, n)
	for i := range w {
		g.next++
		w[i] = g.al.Intern(fmt.Sprintf("x%d", g.next))
	}
	return w
}

// addFrag appends a fragment and returns its index.
func (g *caterpillarGen) addFrag(sp Species, w symbol.Word) int {
	f := Fragment{Name: fmt.Sprintf("%v%d", sp, g.in.NumFrags(sp)), Regions: w}
	if sp == SpeciesH {
		g.in.H = append(g.in.H, f)
		return len(g.in.H) - 1
	}
	g.in.M = append(g.in.M, f)
	return len(g.in.M) - 1
}

// pairScore links region a (H side) to region b (M side) with relative
// orientation rev and weight v.
func (g *caterpillarGen) pairScore(a, b symbol.Symbol, rev bool, v float64) {
	if rev {
		b = b.Rev()
	}
	g.tb.Set(a, b, v)
}

// buildChain builds one island: a chain of `links+1` center fragments
// alternating species, joined by border matches, with satellites plugged
// into the interior of each center. Each center may be flipped in the
// realized layout; the chain-link relative orientation is then forced to
// rev = flip(prev) XOR flip(cur) with the claimed ends facing each other —
// the Fig. 8 geometry. (A uniformly random rev is *invalid* half the time,
// and the checker must reject it: see TestMutatedCaterpillarsDetected.)
func (g *caterpillarGen) buildChain(links, satellitesPerCenter int) {
	sp := Species(g.r.Intn(2))
	// Each center has: [claim region][interior satellite regions][claim region].
	interior := 1 + satellitesPerCenter
	prev := -1
	prevSp := sp
	prevFlip := false
	var prevExitRegion symbol.Symbol
	var prevExitSite Site
	for c := 0; c <= links; c++ {
		w := g.freshWord(interior + 2)
		idx := g.addFrag(sp, w)
		flip := g.r.Intn(2) == 1
		n := len(w)
		// Entry claim: the end facing the previous fragment.
		entrySite := Site{sp, idx, 0, 1}
		entryRegion := w[0]
		if flip {
			entrySite = Site{sp, idx, n - 1, n}
			entryRegion = w[n-1]
		}
		// Border match to the previous center (chain link).
		if prev >= 0 {
			rev := prevFlip != flip
			v := float64(1 + g.r.Intn(9))
			var mt Match
			if prevSp == SpeciesH {
				g.pairScore(prevExitRegion, entryRegion, rev, v)
				mt = Match{HSite: prevExitSite, MSite: entrySite, Rev: rev, Score: v}
			} else {
				g.pairScore(entryRegion, prevExitRegion, rev, v)
				mt = Match{HSite: entrySite, MSite: prevExitSite, Rev: rev, Score: v}
			}
			g.sol.Matches = append(g.sol.Matches, mt)
		}
		// Satellites into interior positions 1..interior-1 (position 0 is
		// reserved as junk so satellite sites stay interior).
		for s := 0; s < satellitesPerCenter; s++ {
			pos := 2 + s
			satSp := sp.Other()
			satW := g.freshWord(1)
			satIdx := g.addFrag(satSp, satW)
			rev := g.r.Intn(2) == 1
			v := float64(1 + g.r.Intn(9))
			centerSite := Site{sp, idx, pos, pos + 1}
			satSite := Site{satSp, satIdx, 0, 1}
			var mt Match
			if sp == SpeciesH {
				g.pairScore(w[pos], satW[0], rev, v)
				mt = Match{HSite: centerSite, MSite: satSite, Rev: rev, Score: v}
			} else {
				g.pairScore(satW[0], w[pos], rev, v)
				mt = Match{HSite: satSite, MSite: centerSite, Rev: rev, Score: v}
			}
			g.sol.Matches = append(g.sol.Matches, mt)
		}
		prev = idx
		prevSp = sp
		prevFlip = flip
		// Exit claim: the opposite end from the entry.
		prevExitSite = Site{sp, idx, n - 1, n}
		prevExitRegion = w[n-1]
		if flip {
			prevExitSite = Site{sp, idx, 0, 1}
			prevExitRegion = w[0]
		}
		sp = sp.Other()
	}
}

func TestGenerativeCaterpillarsAreConsistent(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := newCaterpillarGen(seed)
		islands := 1 + g.r.Intn(3)
		for i := 0; i < islands; i++ {
			g.buildChain(g.r.Intn(4), g.r.Intn(3))
		}
		if err := g.in.Validate(); err != nil {
			t.Fatalf("seed %d: instance: %v", seed, err)
		}
		if err := g.sol.Validate(g.in); err != nil {
			t.Fatalf("seed %d: solution: %v", seed, err)
		}
		conj, err := g.sol.BuildConjecture(g.in)
		if err != nil {
			t.Fatalf("seed %d: BuildConjecture: %v", seed, err)
		}
		if conj.Score != g.sol.Score() {
			t.Fatalf("seed %d: conjecture score %v != solution %v", seed, conj.Score, g.sol.Score())
		}
		cs, err := ColumnScore(g.in, conj.H, conj.M)
		if err != nil || cs != conj.Score {
			t.Fatalf("seed %d: column score %v (err %v)", seed, cs, err)
		}
	}
}

func TestGenerativeChainWithBothEndsLinked(t *testing.T) {
	// A 5-fragment chain: every middle fragment has links at both extremes
	// plus interior satellites — the hardest walk case.
	g := newCaterpillarGen(99)
	g.buildChain(4, 2)
	if err := g.sol.Validate(g.in); err != nil {
		t.Fatal(err)
	}
	if !g.sol.IsConsistent(g.in) {
		t.Fatal("long chain with satellites inconsistent")
	}
	// Check the chain structure: 5 centers, 3 with two links each.
	two := 0
	for sp := SpeciesH; sp <= SpeciesM; sp++ {
		for i := 0; i < g.in.NumFrags(sp); i++ {
			links := 0
			for _, mi := range fragMatches(g.sol, sp, i) {
				mt := g.sol.Matches[mi]
				if g.sol.Degree(g.in, SpeciesH, mt.HSite.Frag) >= 2 &&
					g.sol.Degree(g.in, SpeciesM, mt.MSite.Frag) >= 2 {
					links++
				}
			}
			if links == 2 {
				two++
			}
		}
	}
	if two != 3 {
		t.Fatalf("middle-fragment count = %d, want 3", two)
	}
}

func fragMatches(sol *Solution, sp Species, idx int) []int {
	var out []int
	for i := range sol.Matches {
		if sol.Matches[i].Side(sp).Frag == idx {
			out = append(out, i)
		}
	}
	return out
}

func TestFlippedLinkOrientationRejected(t *testing.T) {
	// Flipping the relative orientation of a chain link (without moving its
	// sites) breaks the Fig. 8 end geometry; the checker must reject it.
	// The cached score is re-pointed at the flipped pairing so that
	// Validate still passes and the failure is purely structural.
	rejected := 0
	for seed := int64(0); seed < 30; seed++ {
		g := newCaterpillarGen(1000 + seed)
		g.buildChain(2, 1)
		if !g.sol.IsConsistent(g.in) {
			t.Fatalf("seed %d: baseline inconsistent", seed)
		}
		for i := range g.sol.Matches {
			mt := g.sol.Matches[i]
			if g.sol.Degree(g.in, SpeciesH, mt.HSite.Frag) >= 2 &&
				g.sol.Degree(g.in, SpeciesM, mt.MSite.Frag) >= 2 {
				bad := g.sol.Clone()
				bad.Matches[i].Rev = !mt.Rev
				ha := g.in.SiteWord(mt.HSite)[0]
				ma := g.in.SiteWord(mt.MSite)[0]
				g.pairScore(ha, ma, bad.Matches[i].Rev, mt.Score)
				if bad.Validate(g.in) == nil && bad.IsConsistent(g.in) {
					t.Fatalf("seed %d: flipped link accepted", seed)
				}
				rejected++
				break
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no chain links generated")
	}
}

func TestMutatedCaterpillarsDetected(t *testing.T) {
	// Swapping two satellite sites on the same center produces crossing
	// matches between the same fragments... rather: moving a chain link
	// into the interior must be detected as inconsistent.
	g := newCaterpillarGen(7)
	g.buildChain(2, 2)
	if !g.sol.IsConsistent(g.in) {
		t.Fatal("baseline inconsistent")
	}
	// Find a chain-link match and a satellite of the same fragment, then
	// swap their site intervals — the link moves inland.
	for i := range g.sol.Matches {
		mt := g.sol.Matches[i]
		if g.sol.Degree(g.in, SpeciesH, mt.HSite.Frag) >= 2 && g.sol.Degree(g.in, SpeciesM, mt.MSite.Frag) >= 2 {
			for j := range g.sol.Matches {
				if i == j {
					continue
				}
				other := g.sol.Matches[j]
				if other.HSite.Frag == mt.HSite.Frag && other.HSite.Species == mt.HSite.Species &&
					g.sol.Degree(g.in, SpeciesM, other.MSite.Frag) == 1 {
					bad := g.sol.Clone()
					bad.Matches[i].HSite.Lo, bad.Matches[j].HSite.Lo = other.HSite.Lo, mt.HSite.Lo
					bad.Matches[i].HSite.Hi, bad.Matches[j].HSite.Hi = other.HSite.Hi, mt.HSite.Hi
					// Scores no longer verify, which is fine: Validate
					// catches either the score or the structure.
					if bad.IsConsistent(g.in) {
						t.Fatal("interior chain link accepted")
					}
					return
				}
			}
		}
	}
	t.Skip("no swappable pair found for this seed")
}
