package fenwick

import (
	"math"
	"math/rand"
	"testing"
)

func TestAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(64)
		tree := New(n)
		naive := make([]float64, n)
		for op := 0; op < 200; op++ {
			if r.Intn(2) == 0 {
				i := r.Intn(n)
				v := float64(r.Intn(21) - 10)
				tree.Add(i, v)
				naive[i] += v
			} else {
				lo := r.Intn(n + 1)
				hi := r.Intn(n + 1)
				want := 0.0
				if lo < hi {
					for k := lo; k < hi; k++ {
						want += naive[k]
					}
				}
				if got := tree.RangeSum(lo, hi); math.Abs(got-want) > 1e-9 {
					t.Fatalf("RangeSum(%d,%d) = %v, want %v", lo, hi, got, want)
				}
			}
		}
		total := 0.0
		for _, v := range naive {
			total += v
		}
		if got := tree.Total(); math.Abs(got-total) > 1e-9 {
			t.Fatalf("Total = %v, want %v", got, total)
		}
	}
}

func TestEmptyAndBounds(t *testing.T) {
	tree := New(4)
	if tree.Len() != 4 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if tree.PrefixSum(0) != 0 {
		t.Fatal("PrefixSum(0) != 0")
	}
	if tree.RangeSum(3, 3) != 0 || tree.RangeSum(3, 1) != 0 {
		t.Fatal("degenerate ranges should be 0")
	}
	tree.Add(3, 5)
	if tree.PrefixSum(4) != 5 {
		t.Fatal("last position not included")
	}
}
