package fenwick

import "math"

// MaxTree is the prefix-max counterpart of Tree: point updates that only
// ever raise a position's value, and prefix-maximum queries, both in
// O(log n). It additionally tracks an int32 payload (an anchor index) for
// the maximising position, with deterministic smallest-payload tie-breaks —
// the best-chain-score query structure of the sweep-line anchor chainer
// (internal/seed).
type MaxTree struct {
	vals []float64
	args []int32
}

// NewMax returns a max-tree over n positions, all −Inf with payload −1.
func NewMax(n int) *MaxTree {
	t := &MaxTree{vals: make([]float64, n+1), args: make([]int32, n+1)}
	for i := range t.vals {
		t.vals[i] = math.Inf(-1)
		t.args[i] = -1
	}
	return t
}

// Len returns the number of positions.
func (t *MaxTree) Len() int { return len(t.vals) - 1 }

// Reset restores every position to −Inf/−1 without reallocating.
func (t *MaxTree) Reset() {
	for i := range t.vals {
		t.vals[i] = math.Inf(-1)
		t.args[i] = -1
	}
}

// Update raises position i (0-based) to at least v with payload id. Equal
// values keep the smaller payload, so query results are independent of
// update order among ties.
func (t *MaxTree) Update(i int, v float64, id int32) {
	for i++; i < len(t.vals); i += i & (-i) {
		if v > t.vals[i] || (v == t.vals[i] && id < t.args[i]) {
			t.vals[i] = v
			t.args[i] = id
		}
	}
}

// PrefixMax returns the maximum value over positions 0..i−1 and its
// payload; (−Inf, −1) when the range is empty or never updated.
func (t *MaxTree) PrefixMax(i int) (float64, int32) {
	v, id := math.Inf(-1), int32(-1)
	for ; i > 0; i -= i & (-i) {
		if t.vals[i] > v || (t.vals[i] == v && t.args[i] < id && t.args[i] >= 0) {
			v, id = t.vals[i], t.args[i]
		}
	}
	return v, id
}
