// Package fenwick implements a Fenwick (binary indexed) tree over float64
// prefix sums. It is the index structure behind the O(n log n) two-phase
// interval-selection algorithm of Berman and DasGupta used by the paper's
// TPA subroutine.
package fenwick

// Tree supports point updates and prefix-sum queries over positions
// 0..n−1 in O(log n).
type Tree struct {
	sums []float64
}

// New returns a tree over n positions, all zero.
func New(n int) *Tree { return &Tree{sums: make([]float64, n+1)} }

// Wrap returns a tree over a caller-owned backing array of n+1 zeroed
// slots — the allocation-free form for callers that pool their buffers
// (the two-phase ISP scratch). The caller keeps ownership and must re-zero
// the array before reuse.
func Wrap(sums []float64) Tree { return Tree{sums: sums} }

// Len returns the number of positions.
func (t *Tree) Len() int { return len(t.sums) - 1 }

// Add adds v at position i (0-based).
func (t *Tree) Add(i int, v float64) {
	for i++; i < len(t.sums); i += i & (-i) {
		t.sums[i] += v
	}
}

// PrefixSum returns the sum of positions 0..i−1; PrefixSum(0) = 0.
func (t *Tree) PrefixSum(i int) float64 {
	s := 0.0
	for ; i > 0; i -= i & (-i) {
		s += t.sums[i]
	}
	return s
}

// RangeSum returns the sum of positions lo..hi−1.
func (t *Tree) RangeSum(lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	return t.PrefixSum(hi) - t.PrefixSum(lo)
}

// Total returns the sum of all positions.
func (t *Tree) Total() float64 { return t.PrefixSum(t.Len()) }
