package isp

import (
	"math/rand"
	"testing"
)

func randInstance(r *rand.Rand, n, jobs, span int) []Interval {
	out := make([]Interval, n)
	for i := range out {
		lo := r.Intn(span)
		hi := lo + 1 + r.Intn(span/4+1)
		out[i] = Interval{
			ID:     i,
			Job:    r.Intn(jobs),
			Lo:     lo,
			Hi:     hi,
			Profit: float64(1 + r.Intn(20)),
		}
	}
	return out
}

func TestConflicts(t *testing.T) {
	a := Interval{Job: 1, Lo: 0, Hi: 5}
	cases := []struct {
		b    Interval
		want bool
	}{
		{Interval{Job: 2, Lo: 5, Hi: 8}, false},  // touching, half-open
		{Interval{Job: 2, Lo: 4, Hi: 8}, true},   // overlap
		{Interval{Job: 1, Lo: 10, Hi: 12}, true}, // same job
		{Interval{Job: 2, Lo: 0, Hi: 1}, true},
		{Interval{Job: 3, Lo: 6, Hi: 7}, false},
	}
	for _, c := range cases {
		if got := a.Conflicts(c.b); got != c.want {
			t.Errorf("Conflicts(%+v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Interval{{Job: 0, Lo: 0, Hi: 2}, {Job: 1, Lo: 2, Hi: 4}}
	if err := Validate(good); err != nil {
		t.Fatal(err)
	}
	overlap := []Interval{{Job: 0, Lo: 0, Hi: 3}, {Job: 1, Lo: 2, Hi: 4}}
	if err := Validate(overlap); err == nil {
		t.Fatal("overlap accepted")
	}
	dupJob := []Interval{{Job: 0, Lo: 0, Hi: 1}, {Job: 0, Lo: 2, Hi: 3}}
	if err := Validate(dupJob); err == nil {
		t.Fatal("duplicate job accepted")
	}
	empty := []Interval{{Job: 0, Lo: 1, Hi: 1}}
	if err := Validate(empty); err == nil {
		t.Fatal("empty interval accepted")
	}
}

func TestExactSmallKnown(t *testing.T) {
	// Two jobs over one shared slot plus an independent slot.
	items := []Interval{
		{ID: 0, Job: 0, Lo: 0, Hi: 2, Profit: 10},
		{ID: 1, Job: 1, Lo: 1, Hi: 3, Profit: 9},
		{ID: 2, Job: 1, Lo: 4, Hi: 6, Profit: 5},
	}
	res := Exact(items)
	if res.Total != 15 {
		t.Fatalf("Exact total %v, want 15", res.Total)
	}
	if err := Validate(res.Selected); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseFeasibleAndWithinRatio(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		items := randInstance(r, 3+r.Intn(12), 1+r.Intn(5), 12)
		tp := TwoPhase(items)
		if err := Validate(tp.Selected); err != nil {
			t.Fatalf("two-phase infeasible: %v (items %+v)", err, items)
		}
		opt := Exact(items)
		if tp.Total*2 < opt.Total-1e-9 {
			t.Fatalf("two-phase ratio violated: %v vs opt %v\nitems %+v",
				tp.Total, opt.Total, items)
		}
		if tp.Total > opt.Total+1e-9 {
			t.Fatalf("two-phase beats exact?! %v vs %v", tp.Total, opt.Total)
		}
	}
}

func TestGreedyFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		items := randInstance(r, 3+r.Intn(15), 1+r.Intn(5), 15)
		g := Greedy(items)
		if err := Validate(g.Selected); err != nil {
			t.Fatalf("greedy infeasible: %v", err)
		}
		opt := Exact(items)
		if g.Total > opt.Total+1e-9 {
			t.Fatalf("greedy beats exact: %v vs %v", g.Total, opt.Total)
		}
	}
}

func TestTwoPhaseDropsNonPositive(t *testing.T) {
	items := []Interval{
		{ID: 0, Job: 0, Lo: 0, Hi: 2, Profit: 0},
		{ID: 1, Job: 1, Lo: 0, Hi: 2, Profit: -5},
		{ID: 2, Job: 2, Lo: 3, Hi: 3, Profit: 7}, // empty
	}
	res := TwoPhase(items)
	if len(res.Selected) != 0 || res.Total != 0 {
		t.Fatalf("selected %+v", res.Selected)
	}
	if res := Exact(items); len(res.Selected) != 0 {
		t.Fatalf("exact selected %+v", res.Selected)
	}
}

func TestTwoPhaseEmpty(t *testing.T) {
	if res := TwoPhase(nil); res.Total != 0 || len(res.Selected) != 0 {
		t.Fatal("empty instance mishandled")
	}
}

func TestTwoPhaseChainExample(t *testing.T) {
	// A classic two-phase stress: a chain of pairwise-overlapping unit
	// profits against one big interval.
	items := []Interval{
		{ID: 0, Job: 0, Lo: 0, Hi: 10, Profit: 11},
		{ID: 1, Job: 1, Lo: 0, Hi: 2, Profit: 6},
		{ID: 2, Job: 2, Lo: 2, Hi: 4, Profit: 6},
		{ID: 3, Job: 3, Lo: 4, Hi: 6, Profit: 6},
		{ID: 4, Job: 4, Lo: 6, Hi: 8, Profit: 6},
		{ID: 5, Job: 5, Lo: 8, Hi: 10, Profit: 6},
	}
	opt := Exact(items) // the five small ones: 30
	if opt.Total != 30 {
		t.Fatalf("exact = %v, want 30", opt.Total)
	}
	tp := TwoPhase(items)
	if tp.Total*2 < opt.Total {
		t.Fatalf("two-phase %v below half of %v", tp.Total, opt.Total)
	}
}

func TestTwoPhaseSameJobChain(t *testing.T) {
	// All intervals share a job: selection must be a single interval.
	items := []Interval{
		{ID: 0, Job: 7, Lo: 0, Hi: 1, Profit: 3},
		{ID: 1, Job: 7, Lo: 5, Hi: 6, Profit: 4},
		{ID: 2, Job: 7, Lo: 10, Hi: 11, Profit: 5},
	}
	res := TwoPhase(items)
	if len(res.Selected) != 1 {
		t.Fatalf("selected %d intervals from one job", len(res.Selected))
	}
	if res.Total < 2.5 { // at least half of opt 5
		t.Fatalf("total %v below ratio", res.Total)
	}
}

func TestTwoPhaseLargeRatioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := rand.New(rand.NewSource(11))
	worst := 1.0
	for trial := 0; trial < 60; trial++ {
		items := randInstance(r, 14, 4, 10)
		tp := TwoPhase(items)
		opt := Exact(items)
		if opt.Total > 0 {
			ratio := tp.Total / opt.Total
			if ratio < worst {
				worst = ratio
			}
		}
	}
	if worst < 0.5 {
		t.Fatalf("worst observed ratio %v < 0.5", worst)
	}
}
