package isp

import (
	"sort"

	"repro/internal/fenwick"
)

// TwoPhase runs the two-phase algorithm of Berman and DasGupta ("Multi-phase
// algorithms for throughput maximization for real-time scheduling", J. Comb.
// Optim. 4(3), 2000), the ratio-2, O(n log n) interval-selection algorithm
// cited in §3.4.
//
// Evaluation phase: process intervals by non-decreasing right endpoint,
// assigning each the residual value
//
//	v(I) = p(I) − Σ { v(J) : J on the stack, J conflicts with I }
//
// and pushing I when v(I) > 0. Selection phase: pop the stack (decreasing
// right endpoint), selecting every interval compatible with the selection so
// far. The total profit of the selection is at least half the optimum.
//
// The conflict sum decomposes as (time overlaps) + (same job) − (both); the
// first term is a Fenwick suffix sum over right endpoints, the last two are
// per-job prefix sums, giving O(log n) per interval.
func TwoPhase(intervals []Interval) Result {
	items := make([]Interval, 0, len(intervals))
	for _, iv := range intervals {
		if iv.Profit > 0 && iv.Hi > iv.Lo {
			items = append(items, iv)
		}
	}
	if len(items) == 0 {
		return Result{}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Hi != items[j].Hi {
			return items[i].Hi < items[j].Hi
		}
		if items[i].Lo != items[j].Lo {
			return items[i].Lo < items[j].Lo
		}
		return items[i].ID < items[j].ID
	})

	// Coordinate-compress right endpoints for the Fenwick tree.
	his := make([]int, 0, len(items))
	for _, iv := range items {
		his = append(his, iv.Hi)
	}
	sort.Ints(his)
	his = dedupInts(his)
	rank := func(x int) int { return sort.SearchInts(his, x) }

	overlapByHi := fenwick.New(len(his))
	type jobEntry struct {
		hi  int
		sum float64 // running total of pushed v for this job up to this entry
	}
	jobLog := make(map[int][]jobEntry)
	jobTotal := make(map[int]float64)

	type stacked struct {
		iv Interval
		v  float64
	}
	var stack []stacked

	for _, iv := range items {
		// Σ v(J) over stack intervals overlapping iv in time: pushed J have
		// J.Hi ≤ iv.Hi; overlap ⇔ J.Hi > iv.Lo.
		overlap := overlapByHi.Total() - overlapByHi.PrefixSum(rank(iv.Lo+1))
		// Σ v(J) over stack intervals of the same job.
		sameJob := jobTotal[iv.Job]
		// Σ v(J) over stack intervals of the same job that also overlap —
		// counted twice above. Per-job entries have non-decreasing hi.
		both := 0.0
		log := jobLog[iv.Job]
		if len(log) > 0 {
			// First entry with hi > iv.Lo.
			k := sort.Search(len(log), func(i int) bool { return log[i].hi > iv.Lo })
			if k < len(log) {
				prior := 0.0
				if k > 0 {
					prior = log[k-1].sum
				}
				both = log[len(log)-1].sum - prior
			}
		}
		v := iv.Profit - (overlap + sameJob - both)
		if v <= 0 {
			continue
		}
		stack = append(stack, stacked{iv, v})
		overlapByHi.Add(rank(iv.Hi), v)
		jobTotal[iv.Job] += v
		jobLog[iv.Job] = append(log, jobEntry{hi: iv.Hi, sum: jobTotal[iv.Job]})
	}

	// Selection phase: pop in reverse order; candidates have hi no larger
	// than every selected interval's hi, so time conflict ⇔ candidate.Hi >
	// min selected Lo.
	var res Result
	minLo := int(^uint(0) >> 1) // max int
	usedJob := make(map[int]bool)
	for i := len(stack) - 1; i >= 0; i-- {
		iv := stack[i].iv
		if usedJob[iv.Job] || iv.Hi > minLo {
			continue
		}
		res.Selected = append(res.Selected, iv)
		res.Total += iv.Profit
		usedJob[iv.Job] = true
		if iv.Lo < minLo {
			minLo = iv.Lo
		}
	}
	return res
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
