package isp

import (
	"slices"
	"sort"

	"repro/internal/fenwick"
)

// Scratch holds the reusable working state of TwoPhaseScratch: the filtered
// item list, the compressed coordinate table, the Fenwick array, the
// per-job logs (dense, indexed by job id), the evaluation stack, and the
// selection buffer. One call's cost then allocates nothing in steady state
// — the paper's TPA subroutine runs TwoPhase thousands of times per
// improvement round, which made the per-call maps and trees the hottest
// allocation site of candidate simulation. Not safe for concurrent use: one
// goroutine, one Scratch.
type Scratch struct {
	items []Interval
	his   []int
	fen   []float64
	stack []stackedIv
	sel   []Interval

	jobLog   [][]jobEntry
	jobTotal []float64
	usedJob  []bool
	touched  []int32 // jobs written this call, for O(touched) reset
}

type jobEntry struct {
	hi  int
	sum float64 // running total of pushed v for this job up to this entry
}

type stackedIv struct {
	iv Interval
	v  float64
}

// grow sizes the per-job tables for job ids in [0, numJobs).
func (s *Scratch) grow(numJobs int) {
	if len(s.jobLog) < numJobs {
		s.jobLog = append(s.jobLog, make([][]jobEntry, numJobs-len(s.jobLog))...)
		s.jobTotal = append(s.jobTotal, make([]float64, numJobs-len(s.jobTotal))...)
		s.usedJob = append(s.usedJob, make([]bool, numJobs-len(s.usedJob))...)
	}
}

// TwoPhase runs the two-phase algorithm of Berman and DasGupta ("Multi-phase
// algorithms for throughput maximization for real-time scheduling", J. Comb.
// Optim. 4(3), 2000), the ratio-2, O(n log n) interval-selection algorithm
// cited in §3.4.
//
// Evaluation phase: process intervals by non-decreasing right endpoint,
// assigning each the residual value
//
//	v(I) = p(I) − Σ { v(J) : J on the stack, J conflicts with I }
//
// and pushing I when v(I) > 0. Selection phase: pop the stack (decreasing
// right endpoint), selecting every interval compatible with the selection so
// far. The total profit of the selection is at least half the optimum.
//
// The conflict sum decomposes as (time overlaps) + (same job) − (both); the
// first term is a Fenwick suffix sum over right endpoints, the last two are
// per-job prefix sums, giving O(log n) per interval.
//
// The result's Selected slice is freshly allocated; hot callers use
// TwoPhaseScratch instead.
func TwoPhase(intervals []Interval) Result {
	maxJob := -1
	for _, iv := range intervals {
		if iv.Job > maxJob {
			maxJob = iv.Job
		}
	}
	res := TwoPhaseScratch(new(Scratch), intervals, maxJob+1)
	res.Selected = append([]Interval(nil), res.Selected...)
	return res
}

// TwoPhaseScratch is TwoPhase over caller-owned scratch state: every
// internal structure, the returned Selected slice included, lives in s and
// is valid only until the next call with the same Scratch. Job ids must lie
// in [0, numJobs). The selection is identical to TwoPhase — the evaluation
// order is a total order (Hi, Lo, ID), so the sort produces one sequence
// regardless of algorithm or scratch reuse.
func TwoPhaseScratch(s *Scratch, intervals []Interval, numJobs int) Result {
	items := s.items[:0]
	for _, iv := range intervals {
		if iv.Profit > 0 && iv.Hi > iv.Lo {
			items = append(items, iv)
		}
	}
	s.items = items
	if len(items) == 0 {
		return Result{}
	}
	slices.SortFunc(items, func(a, b Interval) int {
		if a.Hi != b.Hi {
			return a.Hi - b.Hi
		}
		if a.Lo != b.Lo {
			return a.Lo - b.Lo
		}
		return a.ID - b.ID
	})

	// Coordinate-compress right endpoints for the Fenwick tree.
	his := s.his[:0]
	for _, iv := range items {
		his = append(his, iv.Hi)
	}
	slices.Sort(his)
	his = dedupInts(his)
	s.his = his
	rank := func(x int) int { return sort.SearchInts(his, x) }

	if cap(s.fen) < len(his)+1 {
		s.fen = make([]float64, len(his)+1)
	}
	overlapByHi := fenwick.Wrap(s.fen[:len(his)+1])
	s.grow(numJobs)

	stack := s.stack[:0]
	touched := s.touched[:0]
	for _, iv := range items {
		// Σ v(J) over stack intervals overlapping iv in time: pushed J have
		// J.Hi ≤ iv.Hi; overlap ⇔ J.Hi > iv.Lo.
		overlap := overlapByHi.Total() - overlapByHi.PrefixSum(rank(iv.Lo+1))
		// Σ v(J) over stack intervals of the same job.
		sameJob := s.jobTotal[iv.Job]
		// Σ v(J) over stack intervals of the same job that also overlap —
		// counted twice above. Per-job entries have non-decreasing hi.
		both := 0.0
		log := s.jobLog[iv.Job]
		if len(log) > 0 {
			// First entry with hi > iv.Lo.
			k := sort.Search(len(log), func(i int) bool { return log[i].hi > iv.Lo })
			if k < len(log) {
				prior := 0.0
				if k > 0 {
					prior = log[k-1].sum
				}
				both = log[len(log)-1].sum - prior
			}
		}
		v := iv.Profit - (overlap + sameJob - both)
		if v <= 0 {
			continue
		}
		stack = append(stack, stackedIv{iv, v})
		overlapByHi.Add(rank(iv.Hi), v)
		if len(log) == 0 && s.jobTotal[iv.Job] == 0 {
			touched = append(touched, int32(iv.Job))
		}
		s.jobTotal[iv.Job] += v
		s.jobLog[iv.Job] = append(log, jobEntry{hi: iv.Hi, sum: s.jobTotal[iv.Job]})
	}
	s.stack = stack

	// Selection phase: pop in reverse order; candidates have hi no larger
	// than every selected interval's hi, so time conflict ⇔ candidate.Hi >
	// min selected Lo.
	res := Result{Selected: s.sel[:0]}
	minLo := int(^uint(0) >> 1) // max int
	for i := len(stack) - 1; i >= 0; i-- {
		iv := stack[i].iv
		if s.usedJob[iv.Job] || iv.Hi > minLo {
			continue
		}
		res.Selected = append(res.Selected, iv)
		res.Total += iv.Profit
		s.usedJob[iv.Job] = true
		if iv.Lo < minLo {
			minLo = iv.Lo
		}
	}
	s.sel = res.Selected
	// O(touched) reset of the dense per-job tables for the next call.
	for _, j := range touched {
		s.jobLog[j] = s.jobLog[j][:0]
		s.jobTotal[j] = 0
		s.usedJob[j] = false
	}
	s.touched = touched[:0]
	clear(s.fen[:len(his)+1])
	return res
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
