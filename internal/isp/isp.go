// Package isp implements the Interval Selection Problem of §3.4: given a
// set A of integer intervals and a profit function p over job–interval
// pairs, select at most one interval per job so that the selected intervals
// are pairwise disjoint and total profit is maximal.
//
// The package provides the two-phase algorithm of Berman and DasGupta
// (ratio 2, O(n log n)) — the engine inside the paper's TPA subroutine —
// plus a greedy baseline and an exact branch-and-bound solver used as the
// yardstick in ratio experiments.
package isp

import (
	"fmt"
	"sort"
)

// Interval is one selectable job–interval pair. Intervals use half-open
// coordinates [Lo, Hi). Two intervals conflict when they overlap in time or
// share a Job.
type Interval struct {
	// ID is a caller-chosen identifier carried through to results.
	ID int
	// Job indexes the job (the paper's i ∈ [1, k]); at most one interval
	// per job may be selected.
	Job int
	// Lo and Hi delimit the interval, half-open.
	Lo, Hi int
	// Profit is the gain from selecting this interval; non-positive
	// intervals are never selected.
	Profit float64
}

// Conflicts reports whether a and b cannot both be selected.
func (a Interval) Conflicts(b Interval) bool {
	if a.Job == b.Job {
		return true
	}
	return a.Lo < b.Hi && b.Lo < a.Hi
}

// Result is a feasible selection with its total profit.
type Result struct {
	Selected []Interval
	Total    float64
}

// Validate checks feasibility of a selection: pairwise disjoint, one
// interval per job, positive lengths.
func Validate(sel []Interval) error {
	byLo := make([]Interval, len(sel))
	copy(byLo, sel)
	sort.Slice(byLo, func(i, j int) bool { return byLo[i].Lo < byLo[j].Lo })
	jobs := make(map[int]bool)
	for i, iv := range byLo {
		if iv.Hi <= iv.Lo {
			return fmt.Errorf("isp: empty interval %+v", iv)
		}
		if jobs[iv.Job] {
			return fmt.Errorf("isp: job %d selected twice", iv.Job)
		}
		jobs[iv.Job] = true
		if i > 0 && byLo[i-1].Hi > iv.Lo {
			return fmt.Errorf("isp: intervals %+v and %+v overlap", byLo[i-1], iv)
		}
	}
	return nil
}

// Greedy selects intervals in non-increasing profit order, skipping
// conflicts — the naive baseline.
func Greedy(intervals []Interval) Result {
	order := make([]Interval, 0, len(intervals))
	for _, iv := range intervals {
		if iv.Profit > 0 && iv.Hi > iv.Lo {
			order = append(order, iv)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Profit != order[j].Profit {
			return order[i].Profit > order[j].Profit
		}
		if order[i].Hi != order[j].Hi {
			return order[i].Hi < order[j].Hi
		}
		return order[i].ID < order[j].ID
	})
	var res Result
	for _, iv := range order {
		ok := true
		for _, s := range res.Selected {
			if iv.Conflicts(s) {
				ok = false
				break
			}
		}
		if ok {
			res.Selected = append(res.Selected, iv)
			res.Total += iv.Profit
		}
	}
	return res
}

// Exact finds an optimal selection by depth-first search with
// sum-of-remaining pruning. Exponential in the worst case; intended for
// small instances (ratio experiments, tests).
func Exact(intervals []Interval) Result {
	items := make([]Interval, 0, len(intervals))
	for _, iv := range intervals {
		if iv.Profit > 0 && iv.Hi > iv.Lo {
			items = append(items, iv)
		}
	}
	// Highest profit first makes the bound tight early.
	sort.Slice(items, func(i, j int) bool { return items[i].Profit > items[j].Profit })
	suffix := make([]float64, len(items)+1)
	for i := len(items) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + items[i].Profit
	}
	var best Result
	var cur []Interval
	var dfs func(i int, total float64)
	dfs = func(i int, total float64) {
		if total > best.Total {
			best.Total = total
			best.Selected = append([]Interval(nil), cur...)
		}
		if i >= len(items) || total+suffix[i] <= best.Total {
			return
		}
		// Include items[i] if feasible.
		ok := true
		for _, s := range cur {
			if items[i].Conflicts(s) {
				ok = false
				break
			}
		}
		if ok {
			cur = append(cur, items[i])
			dfs(i+1, total+items[i].Profit)
			cur = cur[:len(cur)-1]
		}
		dfs(i+1, total)
	}
	dfs(0, 0)
	return best
}
