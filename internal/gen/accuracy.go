package gen

import (
	"repro/internal/core"
)

// Accuracy quantifies how well an inferred layout recovers the generator's
// ground truth — the measurement real contig data cannot provide.
type Accuracy struct {
	// Placed is the number of ground-truth contigs appearing in the
	// evaluated layout prefix.
	Placed int
	// PairOrder is the fraction of placed contig pairs whose relative
	// order matches the ground truth, under the better global flip
	// (a whole-genome reversal is unobservable, so both are tried).
	PairOrder float64
	// Orientation is the fraction of placed contigs whose orientation
	// matches the ground truth under the same flip.
	Orientation float64
}

// LayoutAccuracy scores an inferred layout of one species against the
// ground truth (contigs 0..k−1, forward, in index order). Only the first
// `placed` entries of the layout are evaluated — callers pass the count of
// fragments that actually participate in matches, excluding the unplaced
// tail the conjecture builder appends.
func LayoutAccuracy(layout []core.OrientedFrag, placed int) Accuracy {
	if placed > len(layout) {
		placed = len(layout)
	}
	entries := layout[:placed]
	if len(entries) == 0 {
		return Accuracy{}
	}
	eval := func(flip bool) (float64, float64) {
		seq := entries
		if flip {
			seq = make([]core.OrientedFrag, len(entries))
			for i, of := range entries {
				seq[len(entries)-1-i] = core.OrientedFrag{Frag: of.Frag, Rev: !of.Rev}
			}
		}
		orientOK := 0
		for _, of := range seq {
			if !of.Rev {
				orientOK++
			}
		}
		pairs, pairOK := 0, 0
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				pairs++
				if seq[i].Frag < seq[j].Frag {
					pairOK++
				}
			}
		}
		po := 1.0
		if pairs > 0 {
			po = float64(pairOK) / float64(pairs)
		}
		return po, float64(orientOK) / float64(len(seq))
	}
	poF, orF := eval(false)
	poR, orR := eval(true)
	acc := Accuracy{Placed: len(entries)}
	if poF+orF >= poR+orR {
		acc.PairOrder, acc.Orientation = poF, orF
	} else {
		acc.PairOrder, acc.Orientation = poR, orR
	}
	return acc
}
