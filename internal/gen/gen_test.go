package gen

import (
	"testing"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/symbol"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(1))
	b := Generate(DefaultConfig(1))
	if len(a.Instance.H) != len(b.Instance.H) || len(a.Instance.M) != len(b.Instance.M) {
		t.Fatal("same seed, different shapes")
	}
	for i := range a.Instance.H {
		if !a.Instance.H[i].Regions.Equal(b.Instance.H[i].Regions) {
			t.Fatal("same seed, different fragments")
		}
	}
	if a.TrueLayoutScore != b.TrueLayoutScore {
		t.Fatal("same seed, different truth score")
	}
	c := Generate(DefaultConfig(2))
	if a.TrueLayoutScore == c.TrueLayoutScore && len(a.Instance.H) == len(c.Instance.H) {
		// Not impossible, but with these parameters effectively so.
		t.Log("warning: different seeds produced identical workloads")
	}
}

func TestGenerateValidInstance(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		w := Generate(DefaultConfig(seed))
		if err := w.Instance.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(w.TrueH) != len(w.Instance.H) || len(w.TrueM) != len(w.Instance.M) {
			t.Fatalf("seed %d: truth layout shape mismatch", seed)
		}
	}
}

func TestTruthBounds(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		w := Generate(DefaultConfig(seed))
		// The true layout score is achievable, hence ≤ total positive σ.
		// It must also be reproducible from the truth layouts.
		var hw, mw symbol.Word
		for _, of := range w.TrueH {
			hw = append(hw, w.Instance.H[of.Frag].Regions.Orient(of.Rev)...)
		}
		for _, of := range w.TrueM {
			mw = append(mw, w.Instance.M[of.Frag].Regions.Orient(of.Rev)...)
		}
		got := align.Score(hw, mw, w.Instance.Sigma)
		if got != w.TrueLayoutScore {
			t.Fatalf("seed %d: truth layout scores %v, recorded %v", seed, got, w.TrueLayoutScore)
		}
	}
}

func TestFragmentationCoversGenome(t *testing.T) {
	w := Generate(DefaultConfig(3))
	total := 0
	for _, f := range w.Instance.H {
		total += f.Len()
		if f.Len() == 0 {
			t.Fatal("empty contig")
		}
	}
	if total == 0 {
		t.Fatal("species H lost every region")
	}
}

func TestTinyConfig(t *testing.T) {
	cfg := Config{Seed: 9, Regions: 1, MeanContig: 1, BaseScore: 5}
	w := Generate(cfg)
	if err := w.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Instance.TotalRegions() == 0 {
		t.Skip("both copies deleted — acceptable for tiny configs")
	}
}

func TestSpuriousScoresDoNotMaskOrthologs(t *testing.T) {
	cfg := DefaultConfig(4)
	w := Generate(cfg)
	// Ortholog pairs must retain their scores despite spurious injection
	// (spurious entries never overwrite existing pairs).
	count := 0
	for i := 0; i < cfg.Regions; i++ {
		hs, ok1 := w.Instance.Alpha.Lookup("H" + itoa(i))
		ms, ok2 := w.Instance.Alpha.Lookup("M" + itoa(i))
		if !ok1 || !ok2 {
			continue
		}
		if v := w.Instance.Sigma.Score(hs, ms); v > 0 {
			count++
			if v < 1 {
				t.Fatalf("ortholog score %v below floor", v)
			}
		}
	}
	if count == 0 {
		t.Fatal("no ortholog scores survived")
	}
	_ = core.SpeciesH
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{byte('0' + i%10)}, buf...)
		i /= 10
	}
	return string(buf)
}
