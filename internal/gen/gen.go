// Package gen synthesizes fragmented-genome CSR workloads. The paper
// evaluated on conserved regions of real contig libraries (human/mouse,
// E. coli vs Salmonella); those data are not redistributable, so this
// package builds the closest synthetic equivalent: an ancestral sequence of
// conserved regions evolves into two species by deletion, segment inversion
// and translocation; each species is fragmented into contigs at random
// breakpoints; ortholog alignment scores carry multiplicative noise and
// spurious (paralog-like) alignments are injected. The generator returns
// the ground-truth layout so experiments can score order/orientation
// recovery — something real data cannot provide.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/symbol"
)

// Config parameterizes a synthetic workload.
type Config struct {
	// Seed drives all randomness; equal configs generate equal workloads.
	Seed int64
	// Regions is the number of conserved regions in the ancestor.
	Regions int
	// DeleteProb is the per-region, per-species loss probability.
	DeleteProb float64
	// Inversions is the number of segment inversions applied to species M.
	Inversions int
	// InversionLen is the maximum inverted segment length (regions).
	InversionLen int
	// Translocations is the number of segment moves applied to species M.
	Translocations int
	// MeanContig is the expected contig length in regions (geometric
	// fragmentation); min 1.
	MeanContig int
	// BaseScore is the mean ortholog alignment score.
	BaseScore float64
	// Noise is the relative score jitter in [0, 1).
	Noise float64
	// Spurious is the number of injected spurious alignment pairs.
	Spurious int
	// SpuriousScore caps the spurious scores (drawn uniformly below it).
	SpuriousScore float64
	// Canonical, when set, generates the instance over a shared canonical
	// alphabet and σ table (see NewCanonical) instead of a fresh per-instance
	// table: every instance of a batch then carries the *same* score.Table
	// pointer, so the batch pool's per-alphabet cache compiles (and
	// quantizes) σ exactly once for the whole workload. The canonical table
	// must cover at least Regions regions.
	Canonical *Canonical
}

// Canonical is a shared alphabet and σ table for a family of generated
// instances: ortholog scores for every ancestral region (drawn once from the
// canonical seed, jitter included) plus the spurious pairs. Instances
// generated against one Canonical differ in evolution and fragmentation but
// agree on symbols and scores — the "many instances, one σ" shape a serving
// workload has, which the batch pool's per-alphabet cache exploits.
type Canonical struct {
	Alpha   *symbol.Alphabet
	Sigma   *score.Table
	regions int
	hSyms   []symbol.Symbol
	mSyms   []symbol.Symbol
}

// Regions returns the number of ancestral regions the table covers.
func (c *Canonical) Regions() int { return c.regions }

// NewCanonical builds the shared alphabet/σ table for the configuration:
// scores for all cfg.Regions ortholog pairs and cfg.Spurious spurious pairs,
// drawn deterministically from cfg.Seed.
func NewCanonical(cfg Config) *Canonical {
	if cfg.Regions < 1 {
		cfg.Regions = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	c := &Canonical{
		Alpha:   symbol.NewAlphabet(),
		Sigma:   score.NewTable(),
		regions: cfg.Regions,
		hSyms:   make([]symbol.Symbol, cfg.Regions),
		mSyms:   make([]symbol.Symbol, cfg.Regions),
	}
	for i := 0; i < cfg.Regions; i++ {
		c.hSyms[i] = c.Alpha.Intern(fmt.Sprintf("H%d", i))
		c.mSyms[i] = c.Alpha.Intern(fmt.Sprintf("M%d", i))
	}
	for i := 0; i < cfg.Regions; i++ {
		s := cfg.BaseScore * (1 + cfg.Noise*(2*r.Float64()-1))
		if s < 1 {
			s = 1
		}
		c.Sigma.Set(c.hSyms[i], c.mSyms[i], s)
	}
	for k := 0; k < cfg.Spurious; k++ {
		hi := r.Intn(cfg.Regions)
		mi := r.Intn(cfg.Regions)
		ms := c.mSyms[mi]
		if r.Intn(2) == 0 {
			ms = ms.Rev()
		}
		if c.Sigma.Score(c.hSyms[hi], ms) == 0 && cfg.SpuriousScore > 0 {
			c.Sigma.Set(c.hSyms[hi], ms, 1+r.Float64()*(cfg.SpuriousScore-1))
		}
	}
	return c
}

// DefaultConfig returns a small but structured workload configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Regions:        40,
		DeleteProb:     0.1,
		Inversions:     3,
		InversionLen:   6,
		Translocations: 1,
		MeanContig:     5,
		BaseScore:      10,
		Noise:          0.3,
		Spurious:       10,
		SpuriousScore:  4,
	}
}

// Preset returns a named workload configuration. The genome presets model
// fragmented whole-genome comparisons: thousands of conserved regions in
// short contigs, heavy rearrangement, and a sizable spurious-pair floor.
// They use a shared canonical alphabet (one σ table per preset family) so a
// batch of instances at different seeds exercises the same score model.
//
//	genome-small — 5,000 regions; the CI-sized seeded benchmark target.
//	genome-large — 50,000 regions; offline only (the dense σ table alone
//	               is tens of GB — run with seeded mode on big-memory hosts).
//
// Unknown names return ok == false.
func Preset(name string, seed int64) (Config, bool) {
	cfg := DefaultConfig(seed)
	switch name {
	case "genome-small":
		cfg.Regions = 5000
	case "genome-large":
		cfg.Regions = 50000
	default:
		return Config{}, false
	}
	scale := cfg.Regions / 5000
	cfg.MeanContig = 6
	cfg.Inversions = 40 * scale
	cfg.InversionLen = 25
	cfg.Translocations = 8 * scale
	cfg.Spurious = 500 * scale
	cfg.Canonical = NewCanonical(cfg)
	return cfg, true
}

// PresetNames lists the named presets accepted by Preset, for flag help.
func PresetNames() []string { return []string{"genome-small", "genome-large"} }

// Workload is a generated instance plus its ground truth.
type Workload struct {
	Instance *core.Instance
	// TrueH and TrueM are the ground-truth layouts: contigs in genomic
	// order, forward orientation (contigs were cut from the genomes
	// left-to-right).
	TrueH, TrueM []core.OrientedFrag
	// OrthologTotal is the total score of all surviving ortholog pairs —
	// an upper bound on any solution restricted to ortholog matches.
	OrthologTotal float64
	// TrueLayoutScore is the alignment score of the ground-truth conjecture
	// pair — a lower bound on the CSR optimum.
	TrueLayoutScore float64
}

// Generate builds a workload from the configuration.
func Generate(cfg Config) *Workload {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Regions < 1 {
		cfg.Regions = 1
	}
	if cfg.MeanContig < 1 {
		cfg.MeanContig = 1
	}
	var al *symbol.Alphabet
	var tb *score.Table
	var hSyms, mSyms []symbol.Symbol
	if c := cfg.Canonical; c != nil {
		if c.regions < cfg.Regions {
			cfg.Regions = c.regions // the shared table bounds the region count
		}
		al, tb = c.Alpha, c.Sigma
		hSyms, mSyms = c.hSyms[:cfg.Regions], c.mSyms[:cfg.Regions]
	} else {
		al = symbol.NewAlphabet()
		tb = score.NewTable()
		// Ancestral regions; species-specific symbols so σ is a genuine
		// cross-species table.
		hSyms = make([]symbol.Symbol, cfg.Regions)
		mSyms = make([]symbol.Symbol, cfg.Regions)
		for i := 0; i < cfg.Regions; i++ {
			hSyms[i] = al.Intern(fmt.Sprintf("H%d", i))
			mSyms[i] = al.Intern(fmt.Sprintf("M%d", i))
		}
	}

	// Species H keeps ancestral order; species M evolves.
	var hGenome, mGenome symbol.Word
	present := make([][2]bool, cfg.Regions)
	for i := 0; i < cfg.Regions; i++ {
		if r.Float64() >= cfg.DeleteProb {
			hGenome = append(hGenome, hSyms[i])
			present[i][0] = true
		}
		if r.Float64() >= cfg.DeleteProb {
			mGenome = append(mGenome, mSyms[i])
			present[i][1] = true
		}
	}
	// Inversions on M.
	for k := 0; k < cfg.Inversions && len(mGenome) > 1; k++ {
		l := 1 + r.Intn(max(1, cfg.InversionLen))
		if l > len(mGenome) {
			l = len(mGenome)
		}
		at := r.Intn(len(mGenome) - l + 1)
		seg := symbol.Word(mGenome[at : at+l]).Rev()
		copy(mGenome[at:at+l], seg)
	}
	// Translocations on M: cut a segment, reinsert elsewhere.
	for k := 0; k < cfg.Translocations && len(mGenome) > 2; k++ {
		l := 1 + r.Intn(max(1, cfg.InversionLen))
		if l >= len(mGenome) {
			continue
		}
		at := r.Intn(len(mGenome) - l + 1)
		seg := append(symbol.Word(nil), mGenome[at:at+l]...)
		rest := append(append(symbol.Word(nil), mGenome[:at]...), mGenome[at+l:]...)
		pos := r.Intn(len(rest) + 1)
		mGenome = append(append(append(symbol.Word(nil), rest[:pos]...), seg...), rest[pos:]...)
	}

	// Ortholog scores for regions surviving in both species. With a
	// canonical table the scores (and spurious pairs) were drawn once from
	// the canonical seed; per-instance randomness drives structure only.
	ortho := 0.0
	if cfg.Canonical != nil {
		for i := 0; i < cfg.Regions; i++ {
			if present[i][0] && present[i][1] {
				ortho += tb.Score(hSyms[i], mSyms[i])
			}
		}
	} else {
		for i := 0; i < cfg.Regions; i++ {
			if present[i][0] && present[i][1] {
				s := cfg.BaseScore * (1 + cfg.Noise*(2*r.Float64()-1))
				if s < 1 {
					s = 1
				}
				tb.Set(hSyms[i], mSyms[i], s)
				ortho += s
			}
		}
		// Spurious alignments between random cross pairs.
		for k := 0; k < cfg.Spurious; k++ {
			hi := r.Intn(cfg.Regions)
			mi := r.Intn(cfg.Regions)
			ms := mSyms[mi]
			if r.Intn(2) == 0 {
				ms = ms.Rev()
			}
			if tb.Score(hSyms[hi], ms) == 0 && cfg.SpuriousScore > 0 {
				tb.Set(hSyms[hi], ms, 1+r.Float64()*(cfg.SpuriousScore-1))
			}
		}
	}

	in := &core.Instance{
		Name:  fmt.Sprintf("gen-%d", cfg.Seed),
		Alpha: al,
		Sigma: tb,
	}
	w := &Workload{Instance: in, OrthologTotal: ortho}
	// Fragment both genomes into contigs.
	for fi, frag := range fragment(r, hGenome, cfg.MeanContig) {
		in.H = append(in.H, core.Fragment{Name: fmt.Sprintf("h%d", fi), Regions: frag})
		w.TrueH = append(w.TrueH, core.OrientedFrag{Frag: fi})
	}
	for fi, frag := range fragment(r, mGenome, cfg.MeanContig) {
		in.M = append(in.M, core.Fragment{Name: fmt.Sprintf("m%d", fi), Regions: frag})
		w.TrueM = append(w.TrueM, core.OrientedFrag{Frag: fi})
	}
	w.TrueLayoutScore = align.Score(hGenome, mGenome, tb)
	return w
}

// fragment splits a genome into contigs with geometric lengths.
func fragment(r *rand.Rand, genome symbol.Word, mean int) []symbol.Word {
	var out []symbol.Word
	var cur symbol.Word
	for _, s := range genome {
		cur = append(cur, s)
		if r.Float64() < 1/float64(mean) {
			out = append(out, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
