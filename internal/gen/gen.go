// Package gen synthesizes fragmented-genome CSR workloads. The paper
// evaluated on conserved regions of real contig libraries (human/mouse,
// E. coli vs Salmonella); those data are not redistributable, so this
// package builds the closest synthetic equivalent: an ancestral sequence of
// conserved regions evolves into two species by deletion, segment inversion
// and translocation; each species is fragmented into contigs at random
// breakpoints; ortholog alignment scores carry multiplicative noise and
// spurious (paralog-like) alignments are injected. The generator returns
// the ground-truth layout so experiments can score order/orientation
// recovery — something real data cannot provide.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/symbol"
)

// Config parameterizes a synthetic workload.
type Config struct {
	// Seed drives all randomness; equal configs generate equal workloads.
	Seed int64
	// Regions is the number of conserved regions in the ancestor.
	Regions int
	// DeleteProb is the per-region, per-species loss probability.
	DeleteProb float64
	// Inversions is the number of segment inversions applied to species M.
	Inversions int
	// InversionLen is the maximum inverted segment length (regions).
	InversionLen int
	// Translocations is the number of segment moves applied to species M.
	Translocations int
	// MeanContig is the expected contig length in regions (geometric
	// fragmentation); min 1.
	MeanContig int
	// BaseScore is the mean ortholog alignment score.
	BaseScore float64
	// Noise is the relative score jitter in [0, 1).
	Noise float64
	// Spurious is the number of injected spurious alignment pairs.
	Spurious int
	// SpuriousScore caps the spurious scores (drawn uniformly below it).
	SpuriousScore float64
}

// DefaultConfig returns a small but structured workload configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Regions:        40,
		DeleteProb:     0.1,
		Inversions:     3,
		InversionLen:   6,
		Translocations: 1,
		MeanContig:     5,
		BaseScore:      10,
		Noise:          0.3,
		Spurious:       10,
		SpuriousScore:  4,
	}
}

// Workload is a generated instance plus its ground truth.
type Workload struct {
	Instance *core.Instance
	// TrueH and TrueM are the ground-truth layouts: contigs in genomic
	// order, forward orientation (contigs were cut from the genomes
	// left-to-right).
	TrueH, TrueM []core.OrientedFrag
	// OrthologTotal is the total score of all surviving ortholog pairs —
	// an upper bound on any solution restricted to ortholog matches.
	OrthologTotal float64
	// TrueLayoutScore is the alignment score of the ground-truth conjecture
	// pair — a lower bound on the CSR optimum.
	TrueLayoutScore float64
}

// Generate builds a workload from the configuration.
func Generate(cfg Config) *Workload {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Regions < 1 {
		cfg.Regions = 1
	}
	if cfg.MeanContig < 1 {
		cfg.MeanContig = 1
	}
	al := symbol.NewAlphabet()
	tb := score.NewTable()

	// Ancestral regions; species-specific symbols so σ is a genuine
	// cross-species table.
	hSyms := make([]symbol.Symbol, cfg.Regions)
	mSyms := make([]symbol.Symbol, cfg.Regions)
	for i := 0; i < cfg.Regions; i++ {
		hSyms[i] = al.Intern(fmt.Sprintf("H%d", i))
		mSyms[i] = al.Intern(fmt.Sprintf("M%d", i))
	}

	// Species H keeps ancestral order; species M evolves.
	var hGenome, mGenome symbol.Word
	present := make([][2]bool, cfg.Regions)
	for i := 0; i < cfg.Regions; i++ {
		if r.Float64() >= cfg.DeleteProb {
			hGenome = append(hGenome, hSyms[i])
			present[i][0] = true
		}
		if r.Float64() >= cfg.DeleteProb {
			mGenome = append(mGenome, mSyms[i])
			present[i][1] = true
		}
	}
	// Inversions on M.
	for k := 0; k < cfg.Inversions && len(mGenome) > 1; k++ {
		l := 1 + r.Intn(max(1, cfg.InversionLen))
		if l > len(mGenome) {
			l = len(mGenome)
		}
		at := r.Intn(len(mGenome) - l + 1)
		seg := symbol.Word(mGenome[at : at+l]).Rev()
		copy(mGenome[at:at+l], seg)
	}
	// Translocations on M: cut a segment, reinsert elsewhere.
	for k := 0; k < cfg.Translocations && len(mGenome) > 2; k++ {
		l := 1 + r.Intn(max(1, cfg.InversionLen))
		if l >= len(mGenome) {
			continue
		}
		at := r.Intn(len(mGenome) - l + 1)
		seg := append(symbol.Word(nil), mGenome[at:at+l]...)
		rest := append(append(symbol.Word(nil), mGenome[:at]...), mGenome[at+l:]...)
		pos := r.Intn(len(rest) + 1)
		mGenome = append(append(append(symbol.Word(nil), rest[:pos]...), seg...), rest[pos:]...)
	}

	// Ortholog scores for regions surviving in both species.
	ortho := 0.0
	for i := 0; i < cfg.Regions; i++ {
		if present[i][0] && present[i][1] {
			s := cfg.BaseScore * (1 + cfg.Noise*(2*r.Float64()-1))
			if s < 1 {
				s = 1
			}
			tb.Set(hSyms[i], mSyms[i], s)
			ortho += s
		}
	}
	// Spurious alignments between random cross pairs.
	for k := 0; k < cfg.Spurious; k++ {
		hi := r.Intn(cfg.Regions)
		mi := r.Intn(cfg.Regions)
		ms := mSyms[mi]
		if r.Intn(2) == 0 {
			ms = ms.Rev()
		}
		if tb.Score(hSyms[hi], ms) == 0 && cfg.SpuriousScore > 0 {
			tb.Set(hSyms[hi], ms, 1+r.Float64()*(cfg.SpuriousScore-1))
		}
	}

	in := &core.Instance{
		Name:  fmt.Sprintf("gen-%d", cfg.Seed),
		Alpha: al,
		Sigma: tb,
	}
	w := &Workload{Instance: in, OrthologTotal: ortho}
	// Fragment both genomes into contigs.
	for fi, frag := range fragment(r, hGenome, cfg.MeanContig) {
		in.H = append(in.H, core.Fragment{Name: fmt.Sprintf("h%d", fi), Regions: frag})
		w.TrueH = append(w.TrueH, core.OrientedFrag{Frag: fi})
	}
	for fi, frag := range fragment(r, mGenome, cfg.MeanContig) {
		in.M = append(in.M, core.Fragment{Name: fmt.Sprintf("m%d", fi), Regions: frag})
		w.TrueM = append(w.TrueM, core.OrientedFrag{Frag: fi})
	}
	w.TrueLayoutScore = align.Score(hGenome, mGenome, tb)
	return w
}

// fragment splits a genome into contigs with geometric lengths.
func fragment(r *rand.Rand, genome symbol.Word, mean int) []symbol.Word {
	var out []symbol.Word
	var cur symbol.Word
	for _, s := range genome {
		cur = append(cur, s)
		if r.Float64() < 1/float64(mean) {
			out = append(out, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
