package gen

import (
	"testing"

	"repro/internal/core"
)

func of(frag int, rev bool) core.OrientedFrag { return core.OrientedFrag{Frag: frag, Rev: rev} }

func TestLayoutAccuracyPerfect(t *testing.T) {
	layout := []core.OrientedFrag{of(0, false), of(1, false), of(2, false)}
	acc := LayoutAccuracy(layout, 3)
	if acc.PairOrder != 1 || acc.Orientation != 1 || acc.Placed != 3 {
		t.Fatalf("acc = %+v", acc)
	}
}

func TestLayoutAccuracyGlobalFlip(t *testing.T) {
	// The whole-genome reversal of the truth must also score perfectly.
	layout := []core.OrientedFrag{of(2, true), of(1, true), of(0, true)}
	acc := LayoutAccuracy(layout, 3)
	if acc.PairOrder != 1 || acc.Orientation != 1 {
		t.Fatalf("flip not recognized: %+v", acc)
	}
}

func TestLayoutAccuracyScrambled(t *testing.T) {
	layout := []core.OrientedFrag{of(1, false), of(0, false), of(2, false)}
	acc := LayoutAccuracy(layout, 3)
	// One inverted pair out of three.
	if acc.PairOrder <= 0.5 || acc.PairOrder >= 1 {
		t.Fatalf("pair order = %v", acc.PairOrder)
	}
}

func TestLayoutAccuracyOrientationErrors(t *testing.T) {
	layout := []core.OrientedFrag{of(0, false), of(1, true), of(2, false)}
	acc := LayoutAccuracy(layout, 3)
	if acc.Orientation <= 0.5 || acc.Orientation >= 1 {
		t.Fatalf("orientation = %v", acc.Orientation)
	}
	if acc.PairOrder != 1 {
		t.Fatalf("pair order should be unaffected: %v", acc.PairOrder)
	}
}

func TestLayoutAccuracyPlacedPrefix(t *testing.T) {
	layout := []core.OrientedFrag{of(0, false), of(1, false), of(9, true), of(8, true)}
	acc := LayoutAccuracy(layout, 2)
	if acc.Placed != 2 || acc.PairOrder != 1 || acc.Orientation != 1 {
		t.Fatalf("prefix evaluation wrong: %+v", acc)
	}
	// placed beyond the slice is clamped.
	acc = LayoutAccuracy(layout[:1], 5)
	if acc.Placed != 1 {
		t.Fatalf("clamping failed: %+v", acc)
	}
}

func TestLayoutAccuracyEmpty(t *testing.T) {
	acc := LayoutAccuracy(nil, 0)
	if acc.Placed != 0 || acc.PairOrder != 0 || acc.Orientation != 0 {
		t.Fatalf("empty accuracy = %+v", acc)
	}
}

func TestLayoutAccuracyEndToEnd(t *testing.T) {
	// Solving a generated workload and scoring the inferred M layout must
	// beat random ordering by a wide margin.
	w := Generate(DefaultConfig(8))
	// The ground-truth layout itself scores perfectly.
	acc := LayoutAccuracy(w.TrueM, len(w.TrueM))
	if acc.PairOrder != 1 || acc.Orientation != 1 {
		t.Fatalf("truth layout scored %+v", acc)
	}
}
