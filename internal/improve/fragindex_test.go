package improve

import (
	"math/rand"
	"slices"
	"testing"
)

// fiOracle is the reference implementation of fragIndex: one ID set per
// fragment. List order is unspecified in both, so comparisons sort.
type fiOracle []map[int32]bool

func newFiOracle(n int) fiOracle {
	o := make(fiOracle, n)
	for i := range o {
		o[i] = map[int32]bool{}
	}
	return o
}

func (o fiOracle) sorted(f int) []int32 {
	out := make([]int32, 0, len(o[f]))
	for id := range o[f] {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

func checkFragIndex(t *testing.T, tag string, fi *fragIndex, o fiOracle) {
	t.Helper()
	for f := range o {
		got := slices.Clone(fi.list(f))
		slices.Sort(got)
		if want := o.sorted(f); !slices.Equal(got, want) {
			t.Fatalf("%s: frag %d: %v, oracle %v", tag, f, got, want)
		}
	}
}

// TestFragIndexMatchesMapOracle drives the arena-backed index through random
// add/remove sequences — heavy enough to force list relocations and arena
// compactions — against a map oracle, including a mid-sequence copyFrom clone
// that then diverges from its source, and a reset that reuses the arena.
func TestFragIndexMatchesMapOracle(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	const nFrags = 37
	for round := 0; round < 3; round++ {
		var fi fragIndex
		fi.reset(nFrags)
		o := newFiOracle(nFrags)
		nextID := int32(1)

		mutate := func(fi *fragIndex, o fiOracle, ops int) {
			for k := 0; k < ops; k++ {
				f := r.Intn(nFrags)
				if len(o[f]) > 0 && r.Intn(3) == 0 {
					var id int32
					for id = range o[f] {
						break
					}
					fi.remove(f, id)
					delete(o[f], id)
				} else {
					fi.add(f, nextID)
					o[f][nextID] = true
					nextID++
				}
			}
		}

		mutate(&fi, o, 800)
		checkFragIndex(t, "pre-clone", &fi, o)

		// Clone, then mutate source and clone independently: the layouts
		// share no storage, so neither may observe the other's edits.
		var cl fragIndex
		cl.copyFrom(&fi)
		oc := newFiOracle(nFrags)
		for f := range o {
			for id := range o[f] {
				oc[f][id] = true
			}
		}
		mutate(&fi, o, 600)
		mutate(&cl, oc, 600)
		checkFragIndex(t, "source after clone", &fi, o)
		checkFragIndex(t, "clone", &cl, oc)

		// Drain most lists to leave garbage behind, then verify again.
		for f := 0; f < nFrags; f++ {
			for id := range o[f] {
				if r.Intn(4) != 0 {
					fi.remove(f, id)
					delete(o[f], id)
				}
			}
		}
		mutate(&fi, o, 400)
		checkFragIndex(t, "post-drain", &fi, o)

		// reset must clear every list while reusing the arena.
		fi.reset(nFrags)
		for f := 0; f < nFrags; f++ {
			if len(fi.list(f)) != 0 {
				t.Fatalf("round %d: frag %d non-empty after reset", round, f)
			}
		}
	}
}
