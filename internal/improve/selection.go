package improve

import (
	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/improve/enum"
)

// This file implements the driver's lazy best-first candidate-selection
// engine: the default replacement for the per-round evaluate-everything loop
// (which survives as the EagerSelect/FullEnum/FullReeval oracle in
// driver.go).
//
// Cached gains live in a generation-stamped flat slot array — one slot per
// live candidate, no per-candidate map on any per-round path — and feed an
// indexed max-heap ordered by (gain, enum.Less). Staleness is pushed, not
// polled: a per-fragment inverted dependency index maps every fragment to
// the slots whose recorded gains read it, so an accepted attempt dirties
// exactly the dependents of the fragments its replay bumped, in O(dirty)
// instead of the O(candidates) validity scan per round the map cache needed.
// Candidate identity is maintained by targeted repair: enum.Repair reports
// the enumeration pieces whose values changed, and only the candidate
// blocks generated from those pieces are freed and rebuilt.
//
// Heap invariants (checked by TestLazyHeapRepair):
//
//  1. Every live slot is either in the heap with a current gain, or stale —
//     out of the heap, queued on staleList for re-simulation. Conceptually a
//     stale slot sits in the heap re-keyed to +∞ (its true gain is unknown
//     and unbounded by the old one, since an accepted attempt elsewhere can
//     raise it); popping until the top is current therefore pops exactly the
//     stale set first. The implementation keeps that frontier on staleList
//     instead of materializing infinities, which is the same pop order with
//     fewer sift operations.
//  2. A dependency entry (slot, stamp) in deps[fr] is live iff the slot's
//     current stamp equals it. Stamps advance whenever a slot's recorded
//     gain stops being trustworthy — on dirty-marking, and on free (which
//     also guards slot reuse) — so stale index entries self-invalidate and
//     are dropped the next time their fragment's list is swept.
//
// Staleness proof sketch (why a popped current gain is provably current):
// a slot's gain was recorded by a simulation that read exactly the
// fragments in its recorded read set (incremental.go invariants 1–4), at
// the versions then current. Versions only advance during accepted-attempt
// replays on the live state, and every such bump is appended to the
// state's bumpLog, whose fragments are swept through the dependency index
// before the next selection. Therefore: no sweep marked the slot stale ⇒
// no fragment it read was bumped since the recording ⇒ a fresh simulation
// would replay the identical event sequence ⇒ the cached gain is bit-equal
// to a fresh one. Selecting the heap top under (gain, enum.Less) is then
// exactly the eager loop's argmax with the same tie-break, so both engines
// accept identical attempt sequences (TestLazySelectionMatchesFull).

// selSlot is one candidate's cached-gain entry.
type selSlot struct {
	cand    candKey
	gain    float64
	stamp   uint32 // generation of the recorded gain; deps entries cite it
	stale   bool   // gain unknown: queued on staleList, absent from the heap
	hadGain bool   // a gain was recorded at least once (Resimulated counting)
	live    bool
}

// depRef is one inverted-index entry: slot read its fragment at stamp.
type depRef struct {
	slot  int32
	stamp uint32
}

// lazySel owns the slots, the heap, the dependency index, and the
// piece-block registry of one solve's lazy selection engine.
type lazySel struct {
	full, border bool
	nh, nm       int

	slots []selSlot
	free  []int32

	heap      []int32 // slot ids, max-heap by (gain, enum.Less)
	pos       []int32 // slot → heap index, -1 when stale/free
	liveCount int

	deps      [2][][]depRef
	staleList []depRef // slots awaiting (re-)simulation, deterministic order

	// Candidate blocks: the slots generated from each enumeration piece, so
	// a piece change frees and rebuilds exactly its own block. I1 blocks are
	// keyed by the window-piece fragment (every opposite fragment pairs with
	// its windows), I2 blocks by the (H, M) fragment pair, I3 blocks by the
	// H fragment owning the chain links.
	i1 [2][][]int32
	i2 [][]int32 // indexed by pairs.Rank(fi, gi)
	i3 [][]int32
	// pairs is the solve's candidate pair universe; blocks and loops cover
	// only its pairs (all of them under classic enumeration).
	pairs *enum.PairSet
}

func (s *lazySel) init(in *core.Instance, full, border bool, ps *enum.PairSet) {
	s.full, s.border = full, border
	s.nh, s.nm = in.NumFrags(core.SpeciesH), in.NumFrags(core.SpeciesM)
	if ps == nil {
		ps = enum.AllPairs(s.nh, s.nm)
	}
	s.pairs = ps
	for sp, n := range [2]int{s.nh, s.nm} {
		s.deps[sp] = make([][]depRef, n)
		if full {
			s.i1[sp] = make([][]int32, n)
		}
	}
	if border {
		s.i2 = make([][]int32, ps.Len())
		s.i3 = make([][]int32, s.nh)
	}
}

// alloc claims a slot for a new candidate; the gain is unknown, so the slot
// is queued stale.
func (s *lazySel) alloc(c candKey) int32 {
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = int32(len(s.slots))
		s.slots = append(s.slots, selSlot{})
		s.pos = append(s.pos, -1)
	}
	sl := &s.slots[id]
	// The stamp survives frees and re-allocations monotonically, so index
	// entries of any previous occupant can never match again.
	sl.cand, sl.gain, sl.stale, sl.hadGain, sl.live = c, 0, true, false, true
	s.pos[id] = -1
	s.liveCount++
	s.staleList = append(s.staleList, depRef{slot: id, stamp: sl.stamp})
	return id
}

// freeSlot retires a candidate whose generating piece no longer produces it.
func (s *lazySel) freeSlot(id int32) {
	sl := &s.slots[id]
	if !sl.live {
		return
	}
	if s.pos[id] >= 0 {
		s.heapRemove(id)
	}
	sl.live = false
	sl.stamp++ // invalidates deps entries and pending staleList refs
	s.liveCount--
	s.free = append(s.free, id)
}

// markStale drops a slot's gain: out of the heap, onto the re-simulation
// queue, stamp advanced so surviving index entries die.
func (s *lazySel) markStale(id int32) {
	sl := &s.slots[id]
	if !sl.live || sl.stale {
		return
	}
	if s.pos[id] >= 0 {
		s.heapRemove(id)
	}
	sl.stale = true
	sl.stamp++
	s.staleList = append(s.staleList, depRef{slot: id, stamp: sl.stamp})
}

// dirty sweeps the dependency lists of the bumped fragments, marking every
// slot whose recorded gain read one of them. Duplicate fragments in the
// bump log are harmless: the first sweep empties the list.
func (s *lazySel) dirty(bumped []core.FragRef) {
	for _, fr := range bumped {
		lst := s.deps[fr.Sp][fr.Idx]
		for _, ref := range lst {
			if sl := &s.slots[ref.slot]; sl.live && !sl.stale && sl.stamp == ref.stamp {
				s.markStale(ref.slot)
			}
		}
		s.deps[fr.Sp][fr.Idx] = lst[:0]
	}
}

// record installs a freshly simulated gain: the slot becomes current, its
// read set is registered in the dependency index, and it (re-)enters the
// heap.
func (s *lazySel) record(id int32, gain float64, reads []readEntry) {
	sl := &s.slots[id]
	sl.gain, sl.stale, sl.hadGain = gain, false, true
	for _, r := range reads {
		s.deps[r.fr.Sp][r.fr.Idx] = append(s.deps[r.fr.Sp][r.fr.Idx], depRef{slot: id, stamp: sl.stamp})
	}
	s.heapPush(id)
}

// repair applies enumeration piece changes: each changed piece's candidate
// blocks are freed and rebuilt from the Enumerator's refreshed values.
// Rebuild order follows the (deterministic) change order; when two pieces
// feeding one I2 block both changed, the block is simply rebuilt twice —
// the second pass sees both new values, so the final state is exact.
func (s *lazySel) repair(en *enum.Enumerator, changes []enum.Change) {
	for _, ch := range changes {
		switch ch.Kind {
		case enum.PieceI1Windows:
			s.rebuildI1(en, ch.Frag)
		case enum.PieceI2Depths:
			s.rebuildI2Row(en, ch.Frag)
		case enum.PieceI3Chains:
			s.rebuildI3(en, ch.Frag)
		}
	}
}

// rebuildI1 regenerates the I1 candidates targeting g's windows: every
// pair-universe partner of g plugs into every window, in canonical
// (f, window) order.
func (s *lazySel) rebuildI1(en *enum.Enumerator, g core.FragRef) {
	blk := s.i1[g.Sp][g.Idx]
	for _, id := range blk {
		s.freeSlot(id)
	}
	blk = blk[:0]
	wins := en.Windows(g)
	fsp := g.Sp.Other()
	for _, fi32 := range s.pairs.PartnersOf(g) {
		f := core.FragRef{Sp: fsp, Idx: int(fi32)}
		for _, w := range wins {
			blk = append(blk, s.alloc(candKey{Kind: enum.KindI1, F: f, G: g, A1: w[0], A2: w[1]}))
		}
	}
	s.i1[g.Sp][g.Idx] = blk
}

// rebuildI2Row regenerates every I2 pair block involving fr.
func (s *lazySel) rebuildI2Row(en *enum.Enumerator, fr core.FragRef) {
	if fr.Sp == core.SpeciesH {
		for _, gi := range s.pairs.MPartners(fr.Idx) {
			s.rebuildI2Pair(en, fr.Idx, int(gi))
		}
	} else {
		for _, fi := range s.pairs.HPartners(fr.Idx) {
			s.rebuildI2Pair(en, int(fi), fr.Idx)
		}
	}
}

// rebuildI2Pair regenerates the I2 block of one (H fragment, M fragment)
// pair from the pair's current end-depth pieces, in canonical
// (fe, ge, fw, gw) order (depth values are emitted increasing, matching
// enum.AppendI2).
func (s *lazySel) rebuildI2Pair(en *enum.Enumerator, fi, gi int) {
	bi := s.pairs.Rank(fi, gi)
	if bi < 0 {
		return // pair outside the universe: no block to maintain
	}
	blk := s.i2[bi]
	for _, id := range blk {
		s.freeSlot(id)
	}
	blk = blk[:0]
	f := core.FragRef{Sp: core.SpeciesH, Idx: fi}
	g := core.FragRef{Sp: core.SpeciesM, Idx: gi}
	df, dg := en.EndDepths(f), en.EndDepths(g)
	for fe := enum.LeftEnd; fe <= enum.RightEnd; fe++ {
		for ge := enum.LeftEnd; ge <= enum.RightEnd; ge++ {
			for wi := 0; wi < df[fe].Len(); wi++ {
				for wj := 0; wj < dg[ge].Len(); wj++ {
					blk = append(blk, s.alloc(candKey{
						Kind: enum.KindI2, F: f, G: g,
						A1: fe, A2: df[fe].At(wi),
						B1: ge, B2: dg[ge].At(wj),
					}))
				}
			}
		}
	}
	s.i2[bi] = blk
}

// rebuildI3 regenerates the I3 chain-rewiring candidates of H fragment f.
func (s *lazySel) rebuildI3(en *enum.Enumerator, f core.FragRef) {
	blk := s.i3[f.Idx]
	for _, id := range blk {
		s.freeSlot(id)
	}
	blk = blk[:0]
	for _, ch := range en.ChainLinks(f) {
		blk = append(blk, s.alloc(candKey{Kind: enum.KindI3, F: f, G: ch.G, A1: ch.ID}))
	}
	s.i3[f.Idx] = blk
}

// above reports whether slot a outranks slot b: strictly greater gain, or
// an equal gain with the canonically smaller candidate — the eager loop's
// first-strict-improvement argmax expressed as a total order.
func (s *lazySel) above(a, b int32) bool {
	ga, gb := s.slots[a].gain, s.slots[b].gain
	if ga != gb {
		return ga > gb
	}
	return enum.Less(s.slots[a].cand, s.slots[b].cand)
}

func (s *lazySel) heapPush(id int32) {
	s.pos[id] = int32(len(s.heap))
	s.heap = append(s.heap, id)
	s.siftUp(int(s.pos[id]))
}

func (s *lazySel) heapRemove(id int32) {
	i := int(s.pos[id])
	last := len(s.heap) - 1
	s.pos[id] = -1
	if i == last {
		s.heap = s.heap[:last]
		return
	}
	moved := s.heap[last]
	s.heap[i] = moved
	s.pos[moved] = int32(i)
	s.heap = s.heap[:last]
	if !s.siftDown(i) {
		s.siftUp(i)
	}
}

func (s *lazySel) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.above(s.heap[i], s.heap[p]) {
			break
		}
		s.swap(i, p)
		i = p
	}
}

func (s *lazySel) siftDown(i int) bool {
	moved := false
	for {
		c := 2*i + 1
		if c >= len(s.heap) {
			return moved
		}
		if r := c + 1; r < len(s.heap) && s.above(s.heap[r], s.heap[c]) {
			c = r
		}
		if !s.above(s.heap[c], s.heap[i]) {
			return moved
		}
		s.swap(i, c)
		i, moved = c, true
	}
}

func (s *lazySel) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = int32(i)
	s.pos[s.heap[j]] = int32(j)
}

// peek returns the current best slot without removing it.
func (s *lazySel) peek() (int32, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0], true
}

// improveLazy is the lazy engine's driver loop, the default selection path
// of Improve. The state, enumerator, pool and acceptance floor are the ones
// the eager loop would use; only per-round candidate handling differs.
func improveLazy(opt Options, st *state, en *enum.Enumerator,
	pool *EvalPool, runShards enum.Runner, canceled func() error,
	maxRounds int, floor float64, stats *Stats) error {

	var sel lazySel
	sel.init(st.in, opt.Methods&FullOnly != 0, opt.Methods&BorderOnly != 0, st.pairs)
	// A non-nil bump log arms the live state's version bumps to record the
	// dirty set of each accepted replay (state.bump).
	st.bumpLog = make([]core.FragRef, 0, 32)
	var (
		frontier []int32
		gains    []float64
		recs     []*readRecorder
	)
	// Rounds starts at the resumed-op count (zero on fresh solves) so a
	// resumed run's round numbering continues the interrupted one's.
	for ; stats.Rounds < maxRounds; stats.Rounds++ {
		if err := canceled(); err != nil {
			if opt.Partial {
				stats.Partial = true
				return nil
			}
			return err
		}
		// Targeted enumeration repair: only pieces whose values moved
		// rebuild their candidate blocks; everything else keeps its slot
		// and its cached gain.
		sel.repair(en, en.Repair(enumView{st: st}, runShards))
		if err := canceled(); err != nil {
			if opt.Partial {
				stats.Partial = true
				return nil
			}
			return err
		}
		// Refill: the stale frontier — conceptually the run of +∞-keyed
		// entries at the top of the heap — is re-simulated in one batch on
		// the shared pool, so refills of concurrent batch solves overlap.
		frontier = frontier[:0]
		for _, ref := range sel.staleList {
			if sl := &sel.slots[ref.slot]; sl.live && sl.stale && sl.stamp == ref.stamp {
				frontier = append(frontier, ref.slot)
			}
		}
		sel.staleList = sel.staleList[:0]
		if cap(gains) < len(frontier) {
			gains = make([]float64, len(frontier))
			recs = make([]*readRecorder, len(frontier))
		} else {
			gains = gains[:len(frontier)]
			recs = recs[:len(frontier)]
		}
		eval := func(i int, scr *align.Scratch) {
			rec := newReadRecorder(st.vers)
			sim := st.clone()
			sim.rec = rec
			sim.scr = scr
			sim.ctx = opt.Ctx
			sim.delta = 0 // identical float additions as any fresh evaluation
			gains[i] = runCand(sim, sel.slots[frontier[i]].cand)
			sim.release()
			recs[i] = rec
		}
		if pool == nil || len(frontier) < 2 {
			for i := range frontier {
				if canceled() != nil {
					break
				}
				eval(i, st.scr)
			}
		} else {
			batch := evalBatch{p: pool}
			for i := range frontier {
				i := i
				batch.do(func(scr *align.Scratch) {
					if canceled() != nil {
						return // discarded: the round aborts below
					}
					eval(i, scr)
				})
			}
			batch.wait()
		}
		// This check runs before sel.record, so aborting here leaves the
		// live state exactly at the last accepted attempt — the partial
		// result contract.
		if err := canceled(); err != nil {
			if opt.Partial {
				stats.Partial = true
				return nil
			}
			return err
		}
		for i, id := range frontier {
			if sel.slots[id].hadGain {
				stats.Resimulated++
			}
			sel.record(id, gains[i], recs[i].reads)
		}
		stats.Evaluated += len(frontier)
		stats.Popped += len(frontier) // the stale pops of the refill...
		stats.Skipped += sel.liveCount - len(frontier)

		top, ok := sel.peek()
		stats.Popped++ // ...plus the current-top inspection deciding the round
		if !ok || sel.slots[top].gain <= floor {
			break // local optimum: every candidate gains ≤ the floor
		}
		// Replay on the live state, collecting the bumped fragments as the
		// next round's dirty set.
		st.bumpLog = st.bumpLog[:0]
		if err := replayAccept(st, &opt, stats, sel.slots[top].cand, sel.slots[top].gain); err != nil {
			return err
		}
		sel.dirty(st.bumpLog)
	}
	return nil
}
