package improve

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/improve/enum"
)

// targetWindows and endDepths are thin shims over the enumeration
// subsystem's pure window functions, exercised here against live states.
func targetWindows(st *state, fr core.FragRef) [][2]int {
	return enum.WindowsOf(st.sitesOn(fr), st.in.Frag(fr.Sp, fr.Idx).Len())
}

func endDepths(st *state, fr core.FragRef, e end) []int {
	d := enum.EndDepthsAt(st.sitesOn(fr), st.in.Frag(fr.Sp, fr.Idx).Len(), int(e))
	out := make([]int, d.Len())
	for i := range out {
		out[i] = d.At(i)
	}
	return out
}

func TestTargetWindows(t *testing.T) {
	in := core.PaperExample()
	st := newState(in, core.PaperExampleOptimum())
	// m2 (len 2) is fully covered by two sites [0,1) and [1,2): windows
	// are the whole fragment plus nothing else (no free gaps).
	m2 := core.FragRef{Sp: core.SpeciesM, Idx: 1}
	ws := targetWindows(st, m2)
	if len(ws) != 1 || ws[0] != [2]int{0, 2} {
		t.Fatalf("windows = %v, want just the whole fragment", ws)
	}
	// After removing the [0,1) match, the gap plus its extension across
	// the neighbouring site appear.
	for _, id := range st.fragMatchIDs(m2) {
		if st.matches[id].Side(core.SpeciesM).Lo == 0 {
			st.removeMatch(id)
		}
	}
	ws = targetWindows(st, m2)
	want := map[[2]int]bool{{0, 1}: true, {0, 2}: true}
	if len(ws) != len(want) {
		t.Fatalf("windows = %v", ws)
	}
	for _, w := range ws {
		if !want[w] {
			t.Fatalf("unexpected window %v", w)
		}
	}
}

func TestEndDepths(t *testing.T) {
	in := core.PaperExample()
	st := newState(in, nil)
	h1 := core.FragRef{Sp: core.SpeciesH, Idx: 0}
	// No matches: only the full depth.
	if ds := endDepths(st, h1, leftEnd); len(ds) != 1 || ds[0] != 3 {
		t.Fatalf("free fragment depths = %v", ds)
	}
	// Occupy the middle region [1,2): both ends get a free depth of 1 plus
	// the full depth.
	st.addMatch(st.mkMatch(core.FragRef{Sp: core.SpeciesM, Idx: 0}, false, h1, 1, 2))
	for _, e := range []end{leftEnd, rightEnd} {
		ds := endDepths(st, h1, e)
		if len(ds) != 2 || ds[0] != 1 || ds[1] != 3 {
			t.Fatalf("%v depths = %v", e, ds)
		}
	}
}

func TestEnumerateMethodFiltering(t *testing.T) {
	in := core.PaperExample()
	st := newState(in, nil)
	full := enumerate(st, FullOnly)
	border := enumerate(st, BorderOnly)
	all := enumerate(st, AllMethods)
	for _, at := range full {
		if at.kind() != "I1" {
			t.Fatalf("FullOnly produced %s", at.kind())
		}
	}
	for _, at := range border {
		if at.kind() == "I1" {
			t.Fatalf("BorderOnly produced I1")
		}
	}
	if len(all) != len(full)+len(border) {
		t.Fatalf("AllMethods %d != %d + %d", len(all), len(full), len(border))
	}
}

func TestMatchingTwoApproxRatio(t *testing.T) {
	// On single-region instances every match is full–full, so the
	// Hungarian matching is exactly optimal; on general small instances it
	// must stay within the formal factor 2 of Border CSR — here we check
	// the weaker, always-true property that it never beats exact and is
	// consistent.
	r := rand.New(rand.NewSource(127))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(r, 1+r.Intn(3), 1+r.Intn(3), 2, 4)
		m2, err := MatchingTwoApprox(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := m2.Validate(in); err != nil {
			t.Fatal(err)
		}
		if !m2.IsConsistent(in) {
			t.Fatal("matching solution inconsistent")
		}
		opt, err := exact.Solve(in, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		if m2.Score() > opt.Score+1e-9 {
			t.Fatalf("matching beats exact: %v > %v", m2.Score(), opt.Score)
		}
	}
}

func TestTPADirect(t *testing.T) {
	// A zone on m1 with two competing H fragments: TPA must pick the
	// non-conflicting pair, not just the single best.
	al := newAlphabetWith("a", "b", "p", "q")
	tb := newTableWith(al, [][3]any{
		{"a", "p", 5.0},
		{"b", "q", 4.0},
		{"a", "q", 6.0},
	})
	in := &core.Instance{
		H: []core.Fragment{
			{Name: "h1", Regions: wordOf(al, "a")},
			{Name: "h2", Regions: wordOf(al, "b")},
		},
		M:     []core.Fragment{{Name: "m", Regions: wordOf(al, "p q")}},
		Alpha: al,
		Sigma: tb,
	}
	st := newState(in, nil)
	gain := st.tpa([]core.Site{{Species: core.SpeciesM, Frag: 0, Lo: 0, Hi: 2}})
	// Optimal fill: a~p (5) + b~q (4) = 9; greedy would take a~q (6) and
	// block b. The two-phase algorithm is only 2-approx, so assert ≥ half
	// of 9 and feasibility; on this instance it does find 9.
	if gain < 4.5 {
		t.Fatalf("TPA gain %v below half of optimal fill", gain)
	}
	sol := st.solution()
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("TPA fill inconsistent")
	}
	if gain != 9 {
		t.Logf("note: TPA found %v (optimal fill is 9)", gain)
	}
}

func TestTPARespectsLocks(t *testing.T) {
	in := core.PaperExample()
	st := newState(in, nil)
	st.lock(core.FragRef{Sp: core.SpeciesH, Idx: 0})
	st.lock(core.FragRef{Sp: core.SpeciesH, Idx: 1})
	gain := st.tpa([]core.Site{{Species: core.SpeciesM, Frag: 0, Lo: 0, Hi: 2}})
	if gain != 0 || len(st.matches) != 0 {
		t.Fatalf("locked fragments were placed: gain %v, %d matches", gain, len(st.matches))
	}
}

func TestTPAProfitAccountsForContribution(t *testing.T) {
	// h1 already contributes 5 elsewhere; moving it into a zone worth 4
	// must not happen (profit would be negative).
	al := newAlphabetWith("a", "p", "q")
	tb := newTableWith(al, [][3]any{
		{"a", "p", 5.0},
		{"a", "q", 4.0},
	})
	in := &core.Instance{
		H: []core.Fragment{{Name: "h1", Regions: wordOf(al, "a")}},
		M: []core.Fragment{
			{Name: "m1", Regions: wordOf(al, "p")},
			{Name: "m2", Regions: wordOf(al, "q")},
		},
		Alpha: al,
		Sigma: tb,
	}
	st := newState(in, nil)
	st.addMatch(st.mkMatch(core.FragRef{Sp: core.SpeciesH, Idx: 0}, false,
		core.FragRef{Sp: core.SpeciesM, Idx: 0}, 0, 1))
	gain := st.tpa([]core.Site{{Species: core.SpeciesM, Frag: 1, Lo: 0, Hi: 1}})
	if gain != 0 {
		t.Fatalf("unprofitable move accepted: gain %v", gain)
	}
	if st.score() != 5 {
		t.Fatalf("score changed to %v", st.score())
	}
}
