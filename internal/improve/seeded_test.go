package improve

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/seed"
)

// TestSeededExhaustiveParity is the seeded-candidate subsystem's oracle:
// with seed.Params.Exhaustive the pair universe is the positive-σ mask,
// which the package-level proof (internal/seed doc) shows is lossless — a
// pair outside it can never produce a strictly positive gain in I1/I2/I3 or
// a positive TPA placement. The solve must therefore walk the exact same
// accepted-attempt sequence and land on the same matches and score as the
// classic all-pairs solve, under both selection engines.
func TestSeededExhaustiveParity(t *testing.T) {
	for _, gseed := range []int64{3, 7, 11, 19, 42} {
		for _, eager := range []bool{false, true} {
			cfg := gen.DefaultConfig(gseed)
			cfg.Regions = 40
			w := gen.Generate(cfg)
			base := Options{
				Methods: AllMethods, Eps: 0.05, SeedWithFourApprox: true,
				EagerSelect: eager,
			}
			type run struct {
				name     string
				opt      Options
				accepted []candKey
				score    float64
				matches  any
			}
			runs := []*run{
				{name: "classic", opt: base},
				{name: "seeded-exhaustive", opt: base},
			}
			runs[1].opt.Seeded = true
			runs[1].opt.SeedParams = seed.Params{Exhaustive: true}
			for _, r := range runs {
				r.opt.onAccept = func(k candKey) { r.accepted = append(r.accepted, k) }
				sol, _, err := Improve(w.Instance, r.opt)
				if err != nil {
					t.Fatalf("seed %d eager=%v %s: %v", gseed, eager, r.name, err)
				}
				r.score, r.matches = sol.Score(), sol.Matches
			}
			ref, got := runs[0], runs[1]
			if !reflect.DeepEqual(got.accepted, ref.accepted) {
				t.Errorf("seed %d eager=%v: accepted sequence diverges:\n%v\nwant\n%v",
					gseed, eager, got.accepted, ref.accepted)
			}
			if got.score != ref.score || !reflect.DeepEqual(got.matches, ref.matches) {
				t.Errorf("seed %d eager=%v: solution diverges (score %v vs %v)",
					gseed, eager, got.score, ref.score)
			}
		}
	}
}

// TestSeededParityUnderScaling repeats the exhaustive-parity check through
// the quantized and int32 scoring paths, which re-enter Improve against a
// shadow σ: Seeded must propagate to the innermost solve and seed against
// the prepared shadow table, not the original.
func TestSeededParityUnderScaling(t *testing.T) {
	for _, mode := range []struct {
		name string
		set  func(*Options)
	}{
		{"quantize", func(o *Options) { o.Quantize = true }},
		{"int32", func(o *Options) { o.IntScore = true }},
	} {
		cfg := gen.DefaultConfig(7)
		cfg.Regions = 40
		w := gen.Generate(cfg)
		base := Options{Methods: AllMethods, Eps: 0.05, SeedWithFourApprox: true}
		mode.set(&base)
		seeded := base
		seeded.Seeded = true
		seeded.SeedParams = seed.Params{Exhaustive: true}
		solA, _, err := Improve(w.Instance, base)
		if err != nil {
			t.Fatalf("%s classic: %v", mode.name, err)
		}
		solB, _, err := Improve(w.Instance, seeded)
		if err != nil {
			t.Fatalf("%s seeded: %v", mode.name, err)
		}
		if solA.Score() != solB.Score() || !reflect.DeepEqual(solA.Matches, solB.Matches) {
			t.Errorf("%s: seeded-exhaustive diverges (score %v vs %v)",
				mode.name, solB.Score(), solA.Score())
		}
	}
}

// TestSeededRecall pins the practical (minimizer) pipeline's solution
// quality on generated instances: the seeded solve must recover nearly all
// of the classic solve's score. The bound is intentionally loose — seeding
// is allowed to miss weak spurious pairs — but a recall collapse (e.g. the
// σ-translation or chain windows breaking) lands far below it.
func TestSeededRecall(t *testing.T) {
	for _, gseed := range []int64{3, 7, 11} {
		cfg := gen.DefaultConfig(gseed)
		cfg.Regions = 120
		w := gen.Generate(cfg)
		base := Options{Methods: AllMethods, Eps: 0.05, SeedWithFourApprox: true}
		seeded := base
		seeded.Seeded = true
		solA, _, err := Improve(w.Instance, base)
		if err != nil {
			t.Fatalf("seed %d classic: %v", gseed, err)
		}
		solB, stats, err := Improve(w.Instance, seeded)
		if err != nil {
			t.Fatalf("seed %d seeded: %v", gseed, err)
		}
		if stats.SeedPairs == 0 {
			t.Fatalf("seed %d: seeding produced no pairs", gseed)
		}
		if rec := solB.Score() / solA.Score(); rec < 0.95 {
			t.Errorf("seed %d: seeded recall %.3f (score %v vs %v, %d pairs, %d anchors)",
				gseed, rec, solB.Score(), solA.Score(), stats.SeedPairs, stats.SeedAnchors)
		}
	}
}
