package improve

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/improve/enum"
)

// TestLazySelectionMatchesFull is the lazy selection engine's oracle: the
// generation-stamped gain heap must drive the solver through the exact same
// accepted-attempt sequence — and to a bit-identical final match set and
// score — as the eager full-list engine, the fresh-enumeration engine
// (FullEnum), and the cache-free oracle (FullReeval), across seeds and all
// three method families. The accepted sequence is observed through the
// onAccept hook, so divergence is caught at the first differing attempt,
// not just in the final solution.
func TestLazySelectionMatchesFull(t *testing.T) {
	for _, seed := range []int64{2, 3, 5, 7, 11, 13, 17, 19, 23} {
		for _, m := range []struct {
			name    string
			methods Methods
		}{
			{"csr", AllMethods},
			{"full", FullOnly},
			{"border", BorderOnly},
		} {
			cfg := gen.DefaultConfig(seed)
			cfg.Regions = 40
			w := gen.Generate(cfg)
			base := Options{Methods: m.methods, Eps: 0.05, SeedWithFourApprox: seed%2 == 0}
			type run struct {
				name     string
				opt      Options
				accepted []candKey
				stats    Stats
				score    float64
				matches  any
			}
			runs := []*run{
				{name: "lazy", opt: base},
				{name: "eager", opt: base},
				{name: "full-enum", opt: base},
				{name: "full-reeval", opt: base},
			}
			runs[1].opt.EagerSelect = true
			runs[2].opt.FullEnum = true
			runs[3].opt.FullReeval = true
			for _, r := range runs {
				r.opt.onAccept = func(k candKey) { r.accepted = append(r.accepted, k) }
				sol, stats, err := Improve(w.Instance, r.opt)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, m.name, r.name, err)
				}
				r.stats, r.score, r.matches = stats, sol.Score(), sol.Matches
			}
			ref := runs[3] // the cache-free oracle
			for _, r := range runs[:3] {
				if !reflect.DeepEqual(r.accepted, ref.accepted) {
					t.Errorf("seed %d %s: %s accepted sequence diverges:\n%v\nwant\n%v",
						seed, m.name, r.name, r.accepted, ref.accepted)
				}
				if r.stats.Rounds != ref.stats.Rounds || r.stats.Accepted != ref.stats.Accepted {
					t.Errorf("seed %d %s: %s rounds/accepted diverge: %+v vs %+v",
						seed, m.name, r.name, r.stats, ref.stats)
				}
				if r.score != ref.score || !reflect.DeepEqual(r.matches, ref.matches) {
					t.Errorf("seed %d %s: %s solution diverges (score %v vs %v)",
						seed, m.name, r.name, r.score, ref.score)
				}
			}
			lazy := runs[0]
			// The engine must actually be lazy: on a multi-round solve the
			// gains computed must undercut the eager engine's full-list
			// walks, and some candidates must be carried untouched.
			if lazy.stats.Rounds > 1 {
				if lazy.stats.Evaluated >= runs[1].stats.Evaluated {
					t.Errorf("seed %d %s: lazy evaluated %d ≥ eager %d — no laziness",
						seed, m.name, lazy.stats.Evaluated, runs[1].stats.Evaluated)
				}
				if lazy.stats.Skipped == 0 {
					t.Errorf("seed %d %s: lazy run skipped no cached candidates: %+v",
						seed, m.name, lazy.stats)
				}
			}
			if runs[1].stats.Popped != 0 || runs[1].stats.Resimulated != 0 || runs[1].stats.Skipped != 0 {
				t.Errorf("seed %d %s: eager run reported lazy counters: %+v", seed, m.name, runs[1].stats)
			}
		}
	}
}

// TestLazySelectionModes covers the lazy engine under the remaining solver
// modes — quantized scaling, integer kernels, a shared eval pool, and a
// non-trivial seed — against the eager engine, so no mode silently falls
// off the bit-identical contract.
func TestLazySelectionModes(t *testing.T) {
	cfg := gen.DefaultConfig(9)
	cfg.Regions = 40
	w := gen.Generate(cfg)
	pool := NewEvalPool(4)
	defer pool.Close()
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"quantize", Options{Quantize: true, SeedWithFourApprox: true}},
		{"int-score", Options{IntScore: true, Eps: 0.05, SeedWithFourApprox: true}},
		{"pool", Options{Eps: 0.05, Eval: pool}},
		{"workers", Options{Eps: 0.05, Workers: 4}},
		{"empty-start", Options{Eps: 0.05}},
		{"eps-zero", Options{Eps: 0, MaxRounds: 12}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lazySol, lazyStats, err := Improve(w.Instance, tc.opt)
			if err != nil {
				t.Fatalf("lazy: %v", err)
			}
			eager := tc.opt
			eager.EagerSelect = true
			ref, refStats, err := Improve(w.Instance, eager)
			if err != nil {
				t.Fatalf("eager: %v", err)
			}
			if lazySol.Score() != ref.Score() || lazyStats.Accepted != refStats.Accepted ||
				lazyStats.Rounds != refStats.Rounds {
				t.Errorf("diverged: lazy score %v (%+v) vs eager %v (%+v)",
					lazySol.Score(), lazyStats, ref.Score(), refStats)
			}
			if !reflect.DeepEqual(lazySol.Matches, ref.Matches) {
				t.Errorf("match sets diverge")
			}
		})
	}
}

// TestLazySelectionCancel drives the lazy engine with the deterministic
// countCtx probe at several depths: cancellation must surface promptly with
// no solution and must not corrupt the pool for concurrent use (the refill
// batches poll the context exactly like the eager evaluation batches).
func TestLazySelectionCancel(t *testing.T) {
	cfg := gen.DefaultConfig(5)
	cfg.Regions = 40
	w := gen.Generate(cfg)
	for _, after := range []int64{0, 1, 7, 50, 400} {
		ctx := newCountCtx(after)
		sol, _, err := Improve(w.Instance, Options{Eps: 0.05, SeedWithFourApprox: true, Ctx: ctx})
		if err != context.Canceled {
			t.Fatalf("after %d polls: err = %v, want context.Canceled", after, err)
		}
		if sol != nil {
			t.Fatalf("after %d polls: got a solution alongside the error", after)
		}
	}
}

// heapSlots drains the selector's heap destructively, returning the slot
// order — test helper for inspecting the selection order.
func heapSlots(s *lazySel) []int32 {
	var out []int32
	for len(s.heap) > 0 {
		top := s.heap[0]
		out = append(out, top)
		s.heapRemove(top)
	}
	return out
}

// TestLazyHeapRepair unit-tests the selector's repair machinery on a
// hand-built instance: dirty re-keying moves a slot to the stale queue and
// out of the heap, stamp mismatches kill outdated dependency and stale
// entries, block rebuilds free and re-allocate candidates, and the heap
// drains in (gain, canonical-order) sequence throughout. Everything is
// deterministic — no solver, no goroutines.
func TestLazyHeapRepair(t *testing.T) {
	in := core.PaperExample()
	var sel lazySel
	sel.init(in, true, true, nil)

	mk := func(gi, lo, hi int) candKey {
		return candKey{Kind: enum.KindI1, F: core.FragRef{Sp: core.SpeciesH, Idx: 0},
			G: core.FragRef{Sp: core.SpeciesM, Idx: gi}, A1: lo, A2: hi}
	}
	reads := func(frs ...core.FragRef) []readEntry {
		var out []readEntry
		for _, fr := range frs {
			out = append(out, readEntry{fr: fr})
		}
		return out
	}
	g0 := core.FragRef{Sp: core.SpeciesM, Idx: 0}
	g1 := core.FragRef{Sp: core.SpeciesM, Idx: 1}

	a := sel.alloc(mk(0, 0, 1))
	b := sel.alloc(mk(0, 0, 2))
	c := sel.alloc(mk(1, 0, 1))
	if sel.liveCount != 3 || len(sel.staleList) != 3 {
		t.Fatalf("after alloc: liveCount %d staleList %d", sel.liveCount, len(sel.staleList))
	}
	// Record gains, draining the stale queue as the driver's refill would:
	// b on top, then a (tie with c broken by canonical order: G.Idx 0 < 1),
	// then c.
	sel.record(a, 2, reads(g0))
	sel.record(b, 5, reads(g0))
	sel.record(c, 2, reads(g1))
	sel.staleList = sel.staleList[:0]
	if top, ok := sel.peek(); !ok || top != b {
		t.Fatalf("peek = %d, want %d", top, b)
	}
	order := heapSlots(&sel)
	if !reflect.DeepEqual(order, []int32{b, a, c}) {
		t.Fatalf("drain order %v, want [%d %d %d] (gain desc, ties canonical)", order, b, a, c)
	}
	for _, id := range order {
		sel.heapPush(id) // restore
	}

	// Dirty g0: a and b re-key out of the heap onto the stale queue; c is
	// untouched and becomes the top.
	sel.dirty([]core.FragRef{g0})
	if top, ok := sel.peek(); !ok || top != c {
		t.Fatalf("after dirty: peek = %v, want %d", top, c)
	}
	if got := len(sel.staleList); got != 2 {
		t.Fatalf("after dirty: staleList %d, want 2", got)
	}
	if !sel.slots[a].stale || !sel.slots[b].stale || sel.slots[c].stale {
		t.Fatalf("staleness flags wrong: a=%v b=%v c=%v",
			sel.slots[a].stale, sel.slots[b].stale, sel.slots[c].stale)
	}
	// A second dirty sweep of g0 is a no-op: the dependency list was
	// consumed and the slots' stamps moved on.
	sel.dirty([]core.FragRef{g0})
	if got := len(sel.staleList); got != 2 {
		t.Fatalf("idempotent dirty appended: staleList %d, want 2", got)
	}
	// Re-record a with a higher gain: it must rejoin the heap above c.
	sel.record(a, 9, reads(g0))
	if top, ok := sel.peek(); !ok || top != a {
		t.Fatalf("after re-record: peek = %v, want %d", top, a)
	}

	// Free b while stale: its staleList entry must be ignored by the stamp
	// filter, and its slot recycles for a fresh candidate.
	sel.freeSlot(b)
	if sel.liveCount != 2 {
		t.Fatalf("liveCount after free = %d, want 2", sel.liveCount)
	}
	d := sel.alloc(mk(1, 1, 2))
	if d != b {
		t.Fatalf("slot not recycled: got %d, want %d", d, b)
	}
	valid := 0
	for _, ref := range sel.staleList {
		if sl := &sel.slots[ref.slot]; sl.live && sl.stale && sl.stamp == ref.stamp {
			valid++
		}
	}
	// Only the recycled slot d's fresh entry survives the stamp filter: b's
	// old entry died with the free, and a was re-recorded.
	if valid != 1 {
		t.Fatalf("stale entries surviving stamp filter = %d, want 1", valid)
	}

	// Heap removal from the middle keeps the heap property: fill with
	// distinct gains, remove an inner element, and drain.
	sel2 := lazySel{}
	sel2.init(in, true, false, nil)
	var ids []int32
	for i, g := range []float64{3, 7, 1, 9, 5} {
		id := sel2.alloc(mk(0, i, i+1))
		sel2.record(id, g, reads(g0))
		ids = append(ids, id)
	}
	sel2.heapRemove(ids[1]) // gain 7
	got := heapSlots(&sel2)
	want := []int32{ids[3], ids[4], ids[0], ids[2]} // 9, 5, 3, 1
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drain after middle removal = %v, want %v", got, want)
	}
}

// TestLazySharedPoolConcurrent runs several lazy solves concurrently on one
// shared eval pool — the refill path racing the enumeration shards of other
// solves — and checks every result is bit-identical to a solo reference.
// Run under -race in CI, this is the shared-pool refill data-race guard.
func TestLazySharedPoolConcurrent(t *testing.T) {
	const solvers = 4
	pool := NewEvalPool(3)
	defer pool.Close()
	type res struct {
		score float64
		stats Stats
		err   error
	}
	ws := make([]*gen.Workload, solvers)
	refs := make([]res, solvers)
	for i := range ws {
		cfg := gen.DefaultConfig(int64(40 + i))
		cfg.Regions = 40
		ws[i] = gen.Generate(cfg)
		sol, stats, err := Improve(ws[i].Instance, Options{Eps: 0.05, SeedWithFourApprox: true})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res{score: sol.Score(), stats: stats}
	}
	out := make([]res, solvers)
	done := make(chan int, solvers)
	for i := 0; i < solvers; i++ {
		i := i
		go func() {
			sol, stats, err := Improve(ws[i].Instance, Options{Eps: 0.05, SeedWithFourApprox: true, Eval: pool})
			if err == nil {
				out[i] = res{score: sol.Score(), stats: stats}
			} else {
				out[i] = res{err: err}
			}
			done <- i
		}()
	}
	for range out {
		<-done
	}
	for i, r := range out {
		if r.err != nil {
			t.Fatalf("solver %d: %v", i, r.err)
		}
		if r.score != refs[i].score || r.stats != refs[i].stats {
			t.Errorf("solver %d diverged on shared pool: %+v vs solo %+v", i, r, refs[i])
		}
	}
}
