package improve

import (
	"repro/internal/align"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/score"
)

// MatchingTwoApprox is the Lemma 9 algorithm for Border CSR: the optimum's
// solution graph has degree ≤ 2, so its edges split into two matchings, one
// of which carries half the score; a maximum-weight matching over
// whole-fragment pairs (w{h,m} = MS(h,m), full sites, best orientation)
// therefore earns at least half the Border CSR optimum. The result is a set
// of disjoint full–full matches — trivially consistent.
func MatchingTwoApprox(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	sigma := score.Prepare(in.Sigma, in.MaxSymbolID())
	scr := align.NewScratch()
	defer scr.Release()
	weights := make([][]float64, len(in.H))
	revs := make([][]bool, len(in.H))
	for hi := range in.H {
		weights[hi] = make([]float64, len(in.M))
		revs[hi] = make([]bool, len(in.M))
		for mi := range in.M {
			sc, rev := scr.BestOrient(in.H[hi].Regions, in.M[mi].Regions, sigma)
			if sc > 0 {
				weights[hi][mi] = sc
				revs[hi][mi] = rev
			}
		}
	}
	matchL, _ := bipartite.MaxWeightMatching(weights)
	sol := &core.Solution{}
	for hi, mi := range matchL {
		if mi < 0 {
			continue
		}
		sol.Matches = append(sol.Matches, core.Match{
			HSite: core.Site{Species: core.SpeciesH, Frag: hi, Lo: 0, Hi: in.H[hi].Len()},
			MSite: core.Site{Species: core.SpeciesM, Frag: mi, Lo: 0, Hi: in.M[mi].Len()},
			Rev:   revs[hi][mi],
			Score: weights[hi][mi],
		})
	}
	return sol, nil
}
