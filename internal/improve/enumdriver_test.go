package improve

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestIncrementalEnumMatchesFull is the enumeration subsystem's oracle: the
// incremental Enumerator (dirty-window re-enumeration merged with the
// cached candidate set) must drive the solver through the exact same
// accepted-attempt sequence — and enumerate the same number of candidates —
// as from-scratch enumeration with full re-simulation (Options.FullReeval),
// across seeds and method families. FullEnum alone (fresh enumeration, gain
// cache on) must coincide too, triangulating the two caches independently.
func TestIncrementalEnumMatchesFull(t *testing.T) {
	for _, seed := range []int64{3, 7, 11, 19} {
		for _, m := range []struct {
			name    string
			methods Methods
		}{
			{"all", AllMethods},
			{"full", FullOnly},
			{"border", BorderOnly},
		} {
			cfg := gen.DefaultConfig(seed)
			cfg.Regions = 40
			w := gen.Generate(cfg)
			base := Options{Methods: m.methods, Eps: 0.05, SeedWithFourApprox: true}
			type run struct {
				name     string
				opt      Options
				accepted []candKey
				stats    Stats
				score    float64
				matches  any
			}
			runs := []*run{
				{name: "incremental", opt: base},
				{name: "full-enum", opt: base},
				{name: "full-reeval", opt: base},
			}
			// EagerSelect pins the full-list engine whose Evaluated counts
			// this test compares; the lazy engine's oracle is
			// TestLazySelectionMatchesFull.
			runs[0].opt.EagerSelect = true
			runs[1].opt.FullEnum = true
			runs[2].opt.FullReeval = true
			for _, r := range runs {
				r.opt.onAccept = func(k candKey) { r.accepted = append(r.accepted, k) }
				sol, stats, err := Improve(w.Instance, r.opt)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, m.name, r.name, err)
				}
				r.stats, r.score, r.matches = stats, sol.Score(), sol.Matches
			}
			ref := runs[2]
			for _, r := range runs[:2] {
				if !reflect.DeepEqual(r.accepted, ref.accepted) {
					t.Errorf("seed %d %s: %s accepted sequence diverges:\n%v\nwant\n%v",
						seed, m.name, r.name, r.accepted, ref.accepted)
				}
				if r.stats.Evaluated != ref.stats.Evaluated || r.stats.Rounds != ref.stats.Rounds ||
					r.stats.Accepted != ref.stats.Accepted {
					t.Errorf("seed %d %s: %s stats diverge: %+v vs %+v",
						seed, m.name, r.name, r.stats, ref.stats)
				}
				if r.score != ref.score || !reflect.DeepEqual(r.matches, ref.matches) {
					t.Errorf("seed %d %s: %s solution diverges (score %v vs %v)",
						seed, m.name, r.name, r.score, ref.score)
				}
			}
			// The incremental run must actually reuse pieces (the point of
			// the subsystem) once the solve spans more than one round.
			if runs[0].stats.Rounds > 1 && runs[0].stats.EnumReused == 0 {
				t.Errorf("seed %d %s: incremental run reused no enumeration pieces: %+v",
					seed, m.name, runs[0].stats)
			}
		}
	}
}

// countCtx is a deterministic cancellation probe: it reports itself
// canceled after the Nth Err() poll, letting tests cancel mid-round without
// timing races.
type countCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func newCountCtx(after int64) *countCtx {
	return &countCtx{Context: context.Background(), after: after}
}

func (c *countCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestImproveCancelMidRound drives the solver with a context that fires
// partway through candidate evaluation: Improve must return ctx.Err()
// promptly with no solution, at every cancellation depth — including
// mid-simulation (the TPA batches poll the context too).
func TestImproveCancelMidRound(t *testing.T) {
	cfg := gen.DefaultConfig(5)
	cfg.Regions = 40
	w := gen.Generate(cfg)
	for _, after := range []int64{0, 1, 7, 50, 400} {
		ctx := newCountCtx(after)
		sol, _, err := Improve(w.Instance, Options{Eps: 0.05, SeedWithFourApprox: true, Ctx: ctx})
		if err != context.Canceled {
			t.Fatalf("after %d polls: err = %v, want context.Canceled", after, err)
		}
		if sol != nil {
			t.Fatalf("after %d polls: got a solution alongside the error", after)
		}
	}
}

// TestImproveCancelLeavesPoolUsable cancels one solve mid-round on a shared
// eval pool and checks a concurrent solve on the same pool is unaffected —
// its result must be bit-identical to a solo reference run. This is the
// "no corrupted state" half of the cancellation contract: aborted
// simulations are discarded wholesale, and the pool's workers (with their
// per-worker scratch arenas) remain consistent for other solves.
func TestImproveCancelLeavesPoolUsable(t *testing.T) {
	cfg := gen.DefaultConfig(6)
	cfg.Regions = 40
	w := gen.Generate(cfg)
	ref, refStats, err := Improve(w.Instance, Options{Eps: 0.05, SeedWithFourApprox: true})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewEvalPool(4)
	defer pool.Close()
	done := make(chan error, 1)
	go func() {
		ctx := newCountCtx(25)
		_, _, err := Improve(w.Instance, Options{Eps: 0.05, SeedWithFourApprox: true, Ctx: ctx, Eval: pool})
		done <- err
	}()
	sol, stats, err := Improve(w.Instance, Options{Eps: 0.05, SeedWithFourApprox: true, Eval: pool})
	if err != nil {
		t.Fatal(err)
	}
	if cerr := <-done; cerr != context.Canceled {
		t.Fatalf("canceled solve returned %v, want context.Canceled", cerr)
	}
	if sol.Score() != ref.Score() || stats.Accepted != refStats.Accepted {
		t.Fatalf("pool solve diverged after a concurrent cancellation: score %v vs %v",
			sol.Score(), ref.Score())
	}
	if !reflect.DeepEqual(sol.Matches, ref.Matches) {
		t.Fatal("pool solve matches diverged after a concurrent cancellation")
	}
}

// TestImproveCancelPromptness checks sub-round latency with a real context:
// on a workload whose rounds take much longer than the deadline, the solve
// must come back close to the deadline, not at the next round boundary.
func TestImproveCancelPromptness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := gen.DefaultConfig(8)
	cfg.Regions = 90 // rounds well beyond the deadline
	w := gen.Generate(cfg)
	solo := time.Now()
	if _, _, err := Improve(w.Instance, Options{Eps: 0.05, SeedWithFourApprox: true}); err != nil {
		t.Fatal(err)
	}
	full := time.Since(solo)
	// Shrink the deadline until a run actually gets interrupted; pooled
	// arenas make warm solves faster than the cold reference, so a fixed
	// fraction of the reference wall can race with completion.
	for deadline := full / 8; deadline >= 50*time.Microsecond; deadline /= 4 {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		_, _, err := Improve(w.Instance, Options{Eps: 0.05, SeedWithFourApprox: true, Ctx: ctx})
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			continue // solve beat this deadline; try a tighter one
		}
		if err != context.DeadlineExceeded {
			t.Fatalf("err = %v, want deadline exceeded", err)
		}
		// Generous bound: well under the full solve, i.e. the cancellation
		// did not wait for a round boundary on this round-dominated
		// workload.
		if elapsed > full/2+50*time.Millisecond {
			t.Fatalf("cancellation took %v of a %v solve — not sub-round", elapsed, full)
		}
		return
	}
	t.Skip("machine solves the workload faster than any deadline; nothing to observe")
}
