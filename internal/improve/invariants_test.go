package improve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/onecsr"
)

// TestRandomWorkloadInvariants is the regression net for the structural
// bug class fixed during development: every accepted improvement on
// realistic workloads must leave a consistent solution. It sweeps seeds ×
// sizes with full invariant checking (the shipped driver checks nothing in
// production mode).
func TestRandomWorkloadInvariants(t *testing.T) {
	seeds := int64(12)
	sizes := []int{30, 50}
	if testing.Short() {
		seeds, sizes = 4, []int{30}
	}
	for seed := int64(0); seed < seeds; seed++ {
		for _, regions := range sizes {
			cfg := gen.DefaultConfig(seed)
			cfg.Regions = regions
			w := gen.Generate(cfg)
			sol, _, err := Improve(w.Instance, Options{
				Eps: 0.05, SeedWithFourApprox: true, CheckInvariants: true,
			})
			if err != nil {
				t.Fatalf("seed %d regions %d: %v", seed, regions, err)
			}
			if !sol.IsConsistent(w.Instance) {
				t.Fatalf("seed %d regions %d: final solution inconsistent", seed, regions)
			}
			// Improvement must never lose to its own seed.
			fa, err := onecsr.FourApprox(w.Instance)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Score() < fa.Score()-1e-9 {
				t.Fatalf("seed %d regions %d: %v below seed %v", seed, regions, sol.Score(), fa.Score())
			}
		}
	}
}

// TestWorkloadDeterminismAcrossWorkers checks that parallel candidate
// evaluation is bit-deterministic on a realistic workload.
func TestWorkloadDeterminismAcrossWorkers(t *testing.T) {
	cfg := gen.DefaultConfig(55)
	cfg.Regions = 35
	w := gen.Generate(cfg)
	var base *core.Solution
	for _, workers := range []int{1, 3} {
		sol, _, err := Improve(w.Instance, Options{
			Eps: 0.05, SeedWithFourApprox: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = sol
			continue
		}
		if sol.Score() != base.Score() {
			t.Fatalf("workers=%d score %v, workers=1 score %v", workers, sol.Score(), base.Score())
		}
		if len(sol.Matches) != len(base.Matches) {
			t.Fatalf("workers=%d produced %d matches vs %d", workers, len(sol.Matches), len(base.Matches))
		}
	}
}

// TestEmptyStartInvariants runs the paper's literal configuration (empty
// initial solution) with invariant checking.
func TestEmptyStartInvariants(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		cfg := gen.DefaultConfig(seed)
		cfg.Regions = 30
		w := gen.Generate(cfg)
		sol, stats, err := Improve(w.Instance, Options{CheckInvariants: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.Accepted > 0 && sol.Score() <= 0 {
			t.Fatalf("seed %d: accepted %d improvements but scored %v",
				seed, stats.Accepted, sol.Score())
		}
	}
}

func TestI1AttemptPaperExample(t *testing.T) {
	in := core.PaperExample()
	st := newState(in, nil)
	// Plug h2 (⟨d⟩) into the whole of m2 (⟨u v⟩): best placement is
	// σ(d,vᴿ)=2 at window [1,2).
	at := i1Attempt(
		core.FragRef{Sp: core.SpeciesH, Idx: 1},
		core.FragRef{Sp: core.SpeciesM, Idx: 1}, 0, 2)
	gain := at.run(st)
	// The plug itself gains 2; the TPA run on the remnant window [0,1)
	// additionally places h1 against u (σ(c,u)=5), for 7 total.
	if gain != 7 {
		t.Fatalf("gain = %v, want 7 (plug 2 + TPA 5)", gain)
	}
	sol := st.solution()
	if len(sol.Matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(sol.Matches))
	}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("inconsistent after I1")
	}
}

func TestI1AttemptDisplacesWeakerMatch(t *testing.T) {
	in := core.PaperExample()
	// Seed: h2 matched to m1's t with σ(d,t)=2.
	seed := &core.Solution{Matches: []core.Match{{
		HSite: core.Site{Species: core.SpeciesH, Frag: 1, Lo: 0, Hi: 1},
		MSite: core.Site{Species: core.SpeciesM, Frag: 0, Lo: 1, Hi: 2},
		Rev:   false,
		Score: 2,
	}}}
	st := newState(in, seed)
	// Plug h1 into all of m1: best placement pairs a~s (4) — preparation
	// must displace h2 (its site is inside the window, partner side ⟨d⟩ is
	// full → removal), then TPA may re-place h2 elsewhere... m1 is fully
	// claimed by the window; freed zones lie on h2 itself.
	at := i1Attempt(
		core.FragRef{Sp: core.SpeciesH, Idx: 0},
		core.FragRef{Sp: core.SpeciesM, Idx: 0}, 0, 2)
	gain := at.run(st)
	sol := st.solution()
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("inconsistent after displacement")
	}
	if gain < 2 { // at least 4 (new) − 2 (displaced)
		t.Fatalf("gain = %v", gain)
	}
}

func TestI2AttemptFormsChain(t *testing.T) {
	// Two fragments whose ends align: h = ⟨x y⟩, m = ⟨p q⟩ with
	// σ(y,p) = 6: linking h's right end to m's left end forms a 2-island.
	in := chainPairInstance(t)
	st := newState(in, nil)
	at := i2Attempt(
		core.FragRef{Sp: core.SpeciesH, Idx: 0}, rightEnd, 2,
		core.FragRef{Sp: core.SpeciesM, Idx: 0}, leftEnd, 2)
	gain := at.run(st)
	if gain != 6 {
		t.Fatalf("gain = %v, want 6", gain)
	}
	sol := st.solution()
	if len(sol.Matches) != 1 {
		t.Fatalf("matches = %d", len(sol.Matches))
	}
	mt := sol.Matches[0]
	if mt.Rev {
		t.Fatal("right↔left link must be forward")
	}
	// Claims reach the fragment ends.
	if mt.HSite.Hi != 2 || mt.MSite.Lo != 0 {
		t.Fatalf("claims not end-anchored: %v %v", mt.HSite, mt.MSite)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("inconsistent chain")
	}
}

func TestI2AttemptSameEndIsReversed(t *testing.T) {
	in := chainPairInstance(t)
	// Right↔right geometry forces reversed orientation; score comes from
	// σ(y, qᴿ) = 4.
	st := newState(in, nil)
	at := i2Attempt(
		core.FragRef{Sp: core.SpeciesH, Idx: 0}, rightEnd, 2,
		core.FragRef{Sp: core.SpeciesM, Idx: 0}, rightEnd, 2)
	gain := at.run(st)
	if gain != 4 {
		t.Fatalf("gain = %v, want 4", gain)
	}
	sol := st.solution()
	if len(sol.Matches) != 1 || !sol.Matches[0].Rev {
		t.Fatalf("same-end link not reversed: %+v", sol.Matches)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("inconsistent")
	}
}

func chainPairInstance(t *testing.T) *core.Instance {
	t.Helper()
	in, err := buildInstance()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func buildInstance() (*core.Instance, error) {
	al := newAlphabetWith("x", "y", "p", "q")
	tb := newTableWith(al, [][3]any{
		{"y", "p", 6.0},
		{"y", "q'", 4.0},
	})
	in := &core.Instance{
		H:     []core.Fragment{{Name: "h", Regions: wordOf(al, "x y")}},
		M:     []core.Fragment{{Name: "m", Regions: wordOf(al, "p q")}},
		Alpha: al,
		Sigma: tb,
	}
	return in, in.Validate()
}
