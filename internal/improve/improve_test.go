package improve

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/greedy"
	"repro/internal/onecsr"
	"repro/internal/score"
	"repro/internal/symbol"
)

func fourApproxScore(in *core.Instance) (float64, error) {
	sol, err := onecsr.FourApprox(in)
	if err != nil {
		return 0, err
	}
	return sol.Score(), nil
}

func randInstance(r *rand.Rand, hFrags, mFrags, fragLen, alpha int) *core.Instance {
	al := symbol.NewAlphabet()
	syms := make([]symbol.Symbol, alpha)
	for i := range syms {
		syms[i] = al.Intern(string(rune('a' + i)))
	}
	tb := score.NewTable()
	for trial := 0; trial < alpha*3; trial++ {
		a := syms[r.Intn(alpha)]
		b := syms[r.Intn(alpha)]
		if r.Intn(2) == 0 {
			b = b.Rev()
		}
		tb.Set(a, b, float64(1+r.Intn(9)))
	}
	mk := func(n int) []core.Fragment {
		fs := make([]core.Fragment, n)
		for i := range fs {
			w := make(symbol.Word, 1+r.Intn(fragLen))
			for j := range w {
				w[j] = syms[r.Intn(alpha)]
				if r.Intn(4) == 0 {
					w[j] = w[j].Rev()
				}
			}
			fs[i] = core.Fragment{Name: "f", Regions: w}
		}
		return fs
	}
	return &core.Instance{H: mk(hFrags), M: mk(mFrags), Alpha: al, Sigma: tb}
}

func TestCSRImprovePaperExample(t *testing.T) {
	in := core.PaperExample()
	sol, stats, err := Improve(in, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("inconsistent result")
	}
	// The paper's optimum is 11; CSR_Improve guarantees ≥ opt/3 and on
	// this instance actually finds the optimum.
	if sol.Score() < 11 {
		t.Fatalf("CSR_Improve scored %v on the paper example (opt 11, stats %+v)", sol.Score(), stats)
	}
}

func TestImproveVariantsConsistentAndWithinRatio(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(r, 1+r.Intn(3), 1+r.Intn(3), 3, 4)
		opt, err := exact.Solve(in, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Methods{FullOnly, BorderOnly, AllMethods} {
			sol, _, err := Improve(in, Options{Methods: m, CheckInvariants: true})
			if err != nil {
				t.Fatalf("trial %d methods %v: %v", trial, m, err)
			}
			if sol.Score() > opt.Score+1e-9 {
				t.Fatalf("methods %v beat exact: %v > %v", m, sol.Score(), opt.Score)
			}
			if m == AllMethods && 3*sol.Score() < opt.Score-1e-9 {
				t.Fatalf("trial %d: CSR_Improve ratio >3: %v vs opt %v", trial, sol.Score(), opt.Score)
			}
		}
	}
}

func TestImproveBeatsGreedyOnFoolingFamily(t *testing.T) {
	in := greedy.FoolingInstance(3, 10)
	g := greedy.Matching(in)
	sol, _, err := Improve(in, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * (4*10.0 - 4) // planted optimum
	if sol.Score() < want {
		t.Fatalf("CSR_Improve %v below planted optimum %v", sol.Score(), want)
	}
	if sol.Score() <= g.Score() {
		t.Fatalf("CSR_Improve %v did not beat greedy %v", sol.Score(), g.Score())
	}
}

func TestSeedNeverHurts(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		in := randInstance(r, 2, 2, 3, 4)
		plain, _, err := Improve(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seeded, _, err := Improve(in, Options{SeedWithFourApprox: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := seeded.Validate(in); err != nil {
			t.Fatal(err)
		}
		if !seeded.IsConsistent(in) {
			t.Fatal("seeded result inconsistent")
		}
		// Both are local optima; the seeded one must be at least the seed.
		fa := seededBaseline(t, in)
		if seeded.Score() < fa-1e-9 {
			t.Fatalf("seeded result %v below its seed %v", seeded.Score(), fa)
		}
		_ = plain
	}
}

func seededBaseline(t *testing.T, in *core.Instance) float64 {
	t.Helper()
	sol, _, err := Improve(in, Options{MaxRounds: 1, SeedWithFourApprox: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = sol
	// Recompute the 4-approx directly.
	fa, err := fourApproxScore(in)
	if err != nil {
		t.Fatal(err)
	}
	return fa
}

func TestWorkersDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	in := randInstance(r, 3, 2, 3, 5)
	s1, _, err := Improve(in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s4, _, err := Improve(in, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Score() != s4.Score() {
		t.Fatalf("worker counts disagree: %v vs %v", s1.Score(), s4.Score())
	}
}

func TestThresholdBoundsRounds(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	in := randInstance(r, 3, 3, 3, 5)
	_, statsT, err := Improve(in, Options{Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if statsT.Threshold <= 0 {
		t.Skip("no positive baseline on this draw")
	}
	k := in.MaxMatches()
	if statsT.Accepted > 4*k*k/1+k+16 {
		t.Fatalf("accepted %d improvements, above the scaling bound", statsT.Accepted)
	}
}

func TestStatePrimitives(t *testing.T) {
	in := core.PaperExample()
	st := newState(in, core.PaperExampleOptimum())
	if st.score() != 11 {
		t.Fatalf("seeded state score %v", st.score())
	}
	h1 := core.FragRef{Sp: core.SpeciesH, Idx: 0}
	if st.degree(h1) != 2 {
		t.Fatalf("degree(h1) = %d", st.degree(h1))
	}
	if st.contribution(h1) != 9 {
		t.Fatalf("Cb(h1) = %v", st.contribution(h1))
	}
	m2 := core.FragRef{Sp: core.SpeciesM, Idx: 1}
	links := st.chainMatchIDs(m2)
	if len(links) != 1 {
		t.Fatalf("chain links of m2: %v", links)
	}
	// m1 = ⟨s t⟩ is fully occupied by match 0 (site m1(1,2) in paper
	// coordinates = [0,2) here): no free gaps.
	if gaps := st.freeGaps(core.FragRef{Sp: core.SpeciesM, Idx: 0}); len(gaps) != 0 {
		t.Fatalf("freeGaps(m1) = %v, want none", gaps)
	}
}

func TestPrepareRestrictsAndFrees(t *testing.T) {
	in := core.PaperExample()
	st := newState(in, core.PaperExampleOptimum())
	// Match 0 pairs h1's prefix with the full m1 — m1 is the plugged-in
	// satellite. Preparing any window on the satellite detaches it (the
	// paper's Simp(S) rule), freeing the partner site on h1.
	m1 := core.FragRef{Sp: core.SpeciesM, Idx: 0}
	freed := st.prepare(nil, m1, 1, 2)
	if len(freed) != 1 || freed[0] != (core.Site{Species: core.SpeciesH, Frag: 0, Lo: 0, Hi: 2}) {
		t.Fatalf("freed %v, want the h1 partner site", freed)
	}
	if st.degree(m1) != 0 {
		t.Fatal("satellite match survived preparation")
	}
	// A genuine restriction: satellite h2 (full site) plugged into m2's
	// window; preparing part of the center's window shrinks the center
	// side and keeps the satellite's full site.
	st2 := newState(in, &core.Solution{Matches: []core.Match{{
		HSite: core.Site{Species: core.SpeciesH, Frag: 0, Lo: 0, Hi: 3},
		MSite: core.Site{Species: core.SpeciesM, Frag: 0, Lo: 0, Hi: 2},
		Rev:   false,
		Score: 4, // h1 (full) vs m1 window: a~s
	}}})
	h1 := core.FragRef{Sp: core.SpeciesH, Idx: 0}
	_ = h1
	m1ref := core.FragRef{Sp: core.SpeciesM, Idx: 0}
	freed2 := st2.prepare(nil, m1ref, 1, 2)
	if len(freed2) != 0 {
		t.Fatalf("freed %v, want none (restriction of the center side)", freed2)
	}
	var got core.Match
	for _, mt := range st2.matches {
		got = mt
	}
	if got.MSite.Hi != 1 || got.Score != 4 {
		t.Fatalf("restricted match = %+v, want m-site [0,1) score 4", got)
	}
	// Preparing the whole of m2 removes its matches, freeing partners and
	// breaking the chain.
	st3 := newState(in, core.PaperExampleOptimum())
	m2 := core.FragRef{Sp: core.SpeciesM, Idx: 1}
	freed3 := st3.prepare(nil, m2, 0, 2)
	if len(freed3) != 2 {
		t.Fatalf("freed %v, want h-side partner sites of both m2 matches", freed3)
	}
	if st3.degree(m2) != 0 {
		t.Fatal("m2 still matched after full preparation")
	}
}

func TestFreeGapsClip(t *testing.T) {
	in := core.PaperExample()
	st := newState(in, core.PaperExampleOptimum())
	h1 := core.FragRef{Sp: core.SpeciesH, Idx: 0}
	if gaps := st.freeGaps(h1); len(gaps) != 0 {
		t.Fatalf("h1 fully covered, got gaps %v", gaps)
	}
	st.removeMatch(st.fragMatchIDs(h1)[0])
	gaps := st.freeGaps(h1)
	if len(gaps) != 1 || gaps[0] != [2]int{0, 2} {
		t.Fatalf("gaps = %v", gaps)
	}
	clip := st.clipFree(h1, 1, 3)
	if len(clip) != 1 || clip[0] != [2]int{1, 2} {
		t.Fatalf("clip = %v", clip)
	}
}
