package improve

// Crash-recovery contract tests: a checkpoint is the accepted-op log, and a
// resumed solve must be bit-identical to the uninterrupted one. The chaos
// test at the bottom closes the loop through the real file format
// (internal/encoding) with an injected torn write standing in for the crash.

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/improve/enum"
)

// recordingSink captures accepted ops and can fail after a set count.
type recordingSink struct {
	ops     []enum.Cand
	failAt  int // fail the failAt-th Accept (1-based); 0 = never
	failErr error
}

func (s *recordingSink) Accept(c enum.Cand) error {
	if s.failAt > 0 && len(s.ops)+1 >= s.failAt {
		return s.failErr
	}
	s.ops = append(s.ops, c)
	return nil
}

// TestCheckpointResumeBitIdentity is the contract test named in the Options
// docs: for every prefix length k of a solve's accepted-op log, resuming
// from that prefix reproduces the uninterrupted run exactly — same total
// accepted sequence, same round count, same match set, same score.
func TestCheckpointResumeBitIdentity(t *testing.T) {
	for _, mode := range []struct {
		name string
		opt  Options
	}{
		{"lazy", Options{Eps: 0.05}},
		{"eager", Options{Eps: 0.05, EagerSelect: true}},
		{"int", Options{Eps: 0.05, IntScore: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := gen.DefaultConfig(11)
			cfg.Regions = 60
			in := gen.Generate(cfg).Instance

			sink := &recordingSink{}
			opt := mode.opt
			opt.Checkpoint = sink
			full, fullStats, err := Improve(in, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(sink.ops) == 0 {
				t.Fatal("solve accepted nothing; the test instance is too easy")
			}
			if len(sink.ops) != fullStats.Accepted {
				t.Fatalf("sink saw %d ops, stats.Accepted = %d", len(sink.ops), fullStats.Accepted)
			}

			cuts := []int{1, len(sink.ops) / 2, len(sink.ops) - 1, len(sink.ops)}
			for _, k := range cuts {
				if k < 1 {
					continue
				}
				var accepts []candKey
				tail := &recordingSink{}
				ropt := mode.opt
				ropt.Resume = sink.ops[:k]
				ropt.Checkpoint = tail
				ropt.onAccept = func(c candKey) { accepts = append(accepts, c) }
				sol, stats, err := Improve(in, ropt)
				if err != nil {
					t.Fatalf("cut %d: %v", k, err)
				}
				if stats.Resumed != k {
					t.Fatalf("cut %d: Resumed = %d", k, stats.Resumed)
				}
				// onAccept sees replayed + fresh ops: the full sequence.
				if !reflect.DeepEqual(accepts, sink.ops) {
					t.Fatalf("cut %d: resumed accepted sequence diverged\n got %v\nwant %v", k, accepts, sink.ops)
				}
				// The sink sees only the fresh ops — replays are already in
				// the caller's durable log.
				if !reflect.DeepEqual(append(sink.ops[:k:k], tail.ops...), sink.ops) {
					t.Fatalf("cut %d: checkpoint tail %v does not extend prefix to %v", k, tail.ops, sink.ops)
				}
				if stats.Rounds != fullStats.Rounds {
					t.Fatalf("cut %d: Rounds = %d, want %d", k, stats.Rounds, fullStats.Rounds)
				}
				if sol.Score() != full.Score() {
					t.Fatalf("cut %d: score %v, want %v", k, sol.Score(), full.Score())
				}
				if !reflect.DeepEqual(sol.Matches, full.Matches) {
					t.Fatalf("cut %d: match sets differ", k)
				}
			}
		})
	}
}

// TestCheckpointSinkErrorAbortsSolve pins the durability contract: the solve
// must never run ahead of its log, so a sink failure is a solve failure.
func TestCheckpointSinkErrorAbortsSolve(t *testing.T) {
	cfg := gen.DefaultConfig(11)
	cfg.Regions = 60
	in := gen.Generate(cfg).Instance

	bad := errors.New("disk gone")
	sink := &recordingSink{failAt: 2, failErr: bad}
	sol, _, err := Improve(in, Options{Eps: 0.05, Checkpoint: sink})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want the sink's", err)
	}
	if sol != nil {
		t.Fatal("got a solution alongside the sink error")
	}
}

// TestResumeRejectsForeignOps: a log that does not fit the instance must
// fail typed, not corrupt state or panic.
func TestResumeRejectsForeignOps(t *testing.T) {
	cfg := gen.DefaultConfig(7)
	cfg.Regions = 30
	in := gen.Generate(cfg).Instance

	for _, bad := range []enum.Cand{
		{Kind: 0, F: core.FragRef{Sp: core.SpeciesH}, G: core.FragRef{Sp: core.SpeciesM}},
		{Kind: enum.KindI1, F: core.FragRef{Sp: core.SpeciesH, Idx: 999}, G: core.FragRef{Sp: core.SpeciesM}},
		{Kind: enum.KindI1, F: core.FragRef{Sp: core.SpeciesH, Idx: -1}, G: core.FragRef{Sp: core.SpeciesM}},
	} {
		_, _, err := Improve(in, Options{Eps: 0.05, Resume: []enum.Cand{bad}})
		if err == nil {
			t.Fatalf("resume with foreign op %+v succeeded", bad)
		}
	}
}

// TestChaosCheckpointTorn is the end-to-end crash drill over the real file
// format: a solve checkpointing to disk dies on an injected torn write (the
// crash-equivalent partial flush), the torn log is reloaded — losing exactly
// the torn record — and the resumed solve must still converge bit-identical
// to the uninterrupted oracle.
func TestChaosCheckpointTorn(t *testing.T) {
	cfg := gen.DefaultConfig(11)
	cfg.Regions = 60
	in := gen.Generate(cfg).Instance

	oracle := &recordingSink{}
	full, _, err := Improve(in, Options{Eps: 0.05, Checkpoint: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.ops) < 3 {
		t.Fatalf("only %d accepts; instance too easy for a mid-solve tear", len(oracle.ops))
	}

	for _, tearAt := range []int{1, 2, len(oracle.ops)} {
		t.Run(fmt.Sprintf("tear-%d", tearAt), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "solve.ckpt")
			hdr := encoding.CheckpointHeader{Index: 3, Name: in.Name, Fingerprint: "test"}
			w, err := encoding.CreateCheckpoint(path, hdr)
			if err != nil {
				t.Fatal(err)
			}
			w.SetInjector(faultinject.New(1, faultinject.Rule{
				Point: faultinject.CheckpointTorn, Nth: tearAt}))
			_, _, err = Improve(in, Options{Eps: 0.05, Checkpoint: w})
			if !errors.Is(err, encoding.ErrCheckpointTorn) {
				t.Fatalf("err = %v, want ErrCheckpointTorn", err)
			}
			w.Close()

			ck, err := encoding.LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if !ck.Torn {
				t.Fatal("torn checkpoint not flagged Torn")
			}
			if ck.Header.Index != 3 || ck.Header.Fingerprint != "test" {
				t.Fatalf("header mangled: %+v", ck.Header)
			}
			want := oracle.ops[:tearAt-1] // the torn record itself is lost
			if len(ck.Ops) != len(want) || (len(want) > 0 && !reflect.DeepEqual(ck.Ops, want)) {
				t.Fatalf("recovered ops %v, want %v", ck.Ops, want)
			}

			// Resume: truncate the torn tail, fast-forward, finish the solve.
			rw, err := encoding.ResumeCheckpoint(path, ck)
			if err != nil {
				t.Fatal(err)
			}
			sol, stats, err := Improve(in, Options{
				Eps: 0.05, Resume: ck.Ops, Checkpoint: rw})
			if err != nil {
				t.Fatal(err)
			}
			if err := rw.Close(); err != nil {
				t.Fatal(err)
			}
			if sol.Score() != full.Score() || !reflect.DeepEqual(sol.Matches, full.Matches) {
				t.Fatalf("resumed solve diverged: score %v want %v", sol.Score(), full.Score())
			}
			if stats.Resumed != len(ck.Ops) {
				t.Fatalf("Resumed = %d, want %d", stats.Resumed, len(ck.Ops))
			}

			// The healed file now holds the complete log.
			final, err := encoding.LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if final.Torn {
				t.Fatal("healed checkpoint still flagged Torn")
			}
			if !reflect.DeepEqual(final.Ops, oracle.ops) {
				t.Fatalf("healed log %v, want the oracle's %v", final.Ops, oracle.ops)
			}
		})
	}
}
