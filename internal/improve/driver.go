package improve

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/onecsr"
	"repro/internal/score"
)

// Methods selects which improvement methods the driver uses.
type Methods int

const (
	// FullOnly runs I1 only — the Full_Improve algorithm (Theorem 4).
	FullOnly Methods = 1 << iota
	// BorderOnly runs I2 and I3 — the Border_Improve algorithm (Theorem 5).
	BorderOnly
	// AllMethods runs I1, I2 and I3 — the CSR_Improve algorithm (Theorem 6).
	AllMethods = FullOnly | BorderOnly
)

// Options configures the iterative-improvement driver.
type Options struct {
	// Methods defaults to AllMethods.
	Methods Methods
	// Eps tunes the §4.1 scaling threshold: gains must exceed
	// Eps·X/k where X is the 4-approximate score and k the match bound
	// (the paper's X/k² with k replaced by k/Eps; Eps=0 accepts every
	// positive gain — exact local optimum, no polynomial bound).
	Eps float64
	// Seed is the starting solution; nil starts empty (as in the paper).
	Seed *core.Solution
	// SeedWithFourApprox starts from the Corollary 1 solution instead of
	// the empty set; never worse, often much faster to converge.
	SeedWithFourApprox bool
	// MaxRounds caps the improvement iterations (safety net; 0 = 4k²+k).
	MaxRounds int
	// Workers parallelizes candidate gain evaluation; < 1 means 1.
	Workers int
	// Eval is an externally owned evaluation pool. When set, candidate
	// simulations are submitted to it instead of a per-call pool (Workers
	// is then ignored), so batch drivers amortize worker goroutines across
	// many concurrent solves. The pool outlives the call; Improve never
	// closes it.
	Eval *EvalPool
	// Ctx cancels the solve between improvement rounds; nil means never.
	// On cancellation Improve returns the context's error.
	Ctx context.Context
	// Quantize applies the literal §4.1 scaling: run the search under a
	// scorer truncated to multiples of X/k² (X the 4-approximate score, k
	// the match bound), then re-score the result under the true σ. Every
	// accepted improvement then gains at least one quantum, limiting
	// improvements to 4k² without any gain threshold.
	Quantize bool
	// IntScore runs the search under the integer-quantized σ matrix
	// (score.CompiledInt): every alignment kernel then sweeps contiguous
	// int32 rows instead of float64, and the final solution is re-scored
	// under the true σ at the boundary. Search decisions differ from float
	// mode by at most the quantization bound (zero when σ is unit-quantized,
	// e.g. integral tables — see score.CompiledInt.Exact). Combines with
	// Quantize: the scaled shadow scorer is then quantized exactly, since
	// its values are multiples of the scaling unit by construction.
	IntScore bool
	// FullReeval disables the incremental candidate cache, re-simulating
	// every candidate every round. The accepted attempt sequence is
	// identical either way (see incremental.go); this exists for A/B
	// verification and benchmarking.
	FullReeval bool
	// minGain is an internal acceptance floor. The quantized path sets it
	// to half a quantum: every true gain is a whole multiple of the
	// quantum, so the floor only rejects floating-point noise around zero.
	minGain float64
	// CheckInvariants validates consistency after every accepted attempt
	// (slow; for tests).
	CheckInvariants bool
}

// Stats reports how an improvement run went.
type Stats struct {
	Rounds    int
	Evaluated int
	Accepted  int
	Threshold float64
	Final     float64
}

// Improve runs the selected iterative-improvement algorithm to a local
// optimum (all attempts gain ≤ threshold) and returns the resulting
// consistent solution.
func Improve(in *core.Instance, opt Options) (*core.Solution, Stats, error) {
	var stats Stats
	if err := in.Validate(); err != nil {
		return nil, stats, err
	}
	if opt.Methods == 0 {
		opt.Methods = AllMethods
	}
	// Integer-quantized search: swap σ for its int32 matrix, run the whole
	// algorithm under it, and re-score the result under the true σ at the
	// end — the same shadow-instance shape as the Quantize path below. When
	// Quantize is also set it runs first (outer), so the scaled scorer is
	// what gets quantized to integers; its values are unit multiples, making
	// the integer representation exact.
	if opt.IntScore && !opt.Quantize {
		ci := score.Compile(in.Sigma, in.MaxSymbolID()).Int()
		shadow := *in
		shadow.Sigma = ci
		iopt := opt
		iopt.IntScore = false
		if iopt.Seed != nil {
			iopt.Seed = rescore(&shadow, iopt.Seed)
		}
		sol, istats, err := Improve(&shadow, iopt)
		if err != nil {
			return nil, istats, err
		}
		sol = rescore(in, sol)
		istats.Final = sol.Score()
		return sol, istats, nil
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	seed := opt.Seed
	var baseline float64
	if fa, err := onecsr.FourApprox(in); err == nil {
		baseline = fa.Score()
		if opt.SeedWithFourApprox && seed == nil {
			seed = fa
		}
	}
	k := in.MaxMatches()
	if k < 1 {
		k = 1
	}
	if opt.Eps > 0 && baseline > 0 {
		stats.Threshold = opt.Eps * baseline / float64(k)
	}
	if opt.Quantize && baseline > 0 {
		unit := baseline / float64(k*k)
		shadow := *in
		shadow.Sigma = score.Quantized{Base: in.Sigma, Unit: unit}
		// Solve under truncated scores (the seed's caches must be
		// re-truncated), then re-score the result under the true σ.
		qopt := opt
		qopt.Quantize = false
		qopt.minGain = unit / 2
		if qopt.Seed == nil && seed != nil {
			qopt.Seed = seed
		}
		qopt.SeedWithFourApprox = false
		if qopt.Seed != nil {
			qopt.Seed = rescore(&shadow, qopt.Seed)
		}
		sol, qstats, err := Improve(&shadow, qopt)
		if err != nil {
			return nil, qstats, err
		}
		sol = rescore(in, sol)
		qstats.Final = sol.Score()
		qstats.Threshold = unit
		return sol, qstats, nil
	}
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4*k*k + k + 16
	}

	st := newState(in, seed)
	defer st.scr.Release() // the driver's own alignment scratch arena
	vers := make(map[core.FragRef]uint64)
	st.vers = vers
	cache := make(map[candKey]*cacheEntry)
	pool := opt.Eval
	if pool == nil && workers > 1 {
		pool = NewEvalPool(workers)
		defer pool.Close()
	}
	for stats.Rounds = 0; stats.Rounds < maxRounds; stats.Rounds++ {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		cands := enumerate(st, opt.Methods)
		stats.Evaluated += len(cands)
		gains := make([]float64, len(cands))
		// Reuse cached gains whose recorded read sets are untouched;
		// re-simulate only candidates invalidated by the matches the last
		// accepted attempt actually changed.
		fresh := make([]int, 0, len(cands))
		for i, at := range cands {
			if !opt.FullReeval {
				if e, ok := cache[at.key]; ok {
					if e.valid(vers) {
						e.seen = stats.Rounds
						gains[i] = e.gain
						continue
					}
					delete(cache, at.key)
				}
			}
			fresh = append(fresh, i)
		}
		recs := make([]*readRecorder, len(cands))
		eval := func(i int, scr *align.Scratch) {
			rec := newReadRecorder(vers)
			sim := st.clone()
			sim.rec = rec
			sim.scr = scr // the evaluating goroutine's scratch arena
			// Zero the gain accumulator so every evaluation performs the
			// identical float additions regardless of the live state's
			// accumulated delta — cached and fresh gains stay bit-equal.
			sim.delta = 0
			gains[i] = cands[i].run(sim)
			recs[i] = rec
		}
		if pool == nil || len(fresh) < 2 {
			for _, i := range fresh {
				eval(i, st.scr)
			}
		} else {
			batch := evalBatch{p: pool}
			for _, i := range fresh {
				i := i
				batch.do(func(scr *align.Scratch) { eval(i, scr) })
			}
			batch.wait()
		}
		if !opt.FullReeval {
			for _, i := range fresh {
				cache[cands[i].key] = &cacheEntry{gain: gains[i], reads: recs[i].reads, seen: stats.Rounds}
			}
			// Sweep entries whose keys were not enumerated this round:
			// their generating structure (windows, chain matches) is gone,
			// so they can never be looked up again.
			for k, e := range cache {
				if e.seen != stats.Rounds {
					delete(cache, k)
				}
			}
		}
		bestIdx, bestGain := -1, max(stats.Threshold, opt.minGain)
		for i, g := range gains {
			if g > bestGain {
				bestIdx, bestGain = i, g
			}
		}
		if bestIdx < 0 {
			break
		}
		st.delta = 0 // replay under the same accumulator base as the simulation
		got := cands[bestIdx].run(st)
		stats.Accepted++
		if diff := got - bestGain; diff > 1e-6*(1+bestGain) || diff < -1e-6*(1+bestGain) {
			return nil, stats, fmt.Errorf("improve: %s replayed gain %v != simulated %v",
				cands[bestIdx].desc(), got, bestGain)
		}
		if opt.CheckInvariants {
			sol := st.solution()
			if err := sol.Validate(in); err != nil {
				return nil, stats, fmt.Errorf("improve: after %s: %w", cands[bestIdx].desc(), err)
			}
			if _, err := sol.BuildConjecture(in); err != nil {
				return nil, stats, fmt.Errorf("improve: after %s: inconsistent solution: %w", cands[bestIdx].desc(), err)
			}
		}
	}
	sol := st.solution()
	stats.Final = sol.Score()
	return sol, stats, nil
}

// rescore refreshes every cached match score under the instance's σ,
// prepared once for the pass (a pre-quantized σ stays on the integer
// kernels).
func rescore(in *core.Instance, sol *core.Solution) *core.Solution {
	return Rescore(in, sol, score.Prepare(in.Sigma, in.MaxSymbolID()))
}

// Rescore returns a copy of the solution with every cached match score
// recomputed against the instance's words under the given scorer — the
// shared re-scoring boundary of the quantized modes (callers pass the exact
// dense σ to dequantize a search result, or a shadow scorer to re-truncate a
// seed).
func Rescore(in *core.Instance, sol *core.Solution, sc score.Scorer) *core.Solution {
	out := sol.Clone()
	s := align.NewScratch()
	defer s.Release()
	for i := range out.Matches {
		mt := &out.Matches[i]
		mt.Score = s.Score(in.SiteWord(mt.HSite), in.SiteWord(mt.MSite).Orient(mt.Rev), sc)
	}
	return out
}

// enumerate generates the candidate attempts for the current state.
func enumerate(st *state, methods Methods) []attempt {
	var out []attempt
	if methods&FullOnly != 0 {
		out = append(out, i1Candidates(st)...)
	}
	if methods&BorderOnly != 0 {
		out = append(out, i2Candidates(st, core.FragRef{Idx: -1}, core.FragRef{Idx: -1})...)
		out = append(out, i3Candidates(st)...)
	}
	return out
}

// i1Candidates proposes I1 attempts: every fragment f against every
// preparable window on every opposite-species fragment g. Windows are the
// maximal free gaps of g, optionally extended over the neighbouring match
// site on each side (triggering restriction), and the whole fragment.
// Target windows are computed once per g, not once per (f, g) pair.
func i1Candidates(st *state) []attempt {
	windows := [2][][][2]int{}
	for _, sp := range []core.Species{core.SpeciesH, core.SpeciesM} {
		windows[sp] = make([][][2]int, st.in.NumFrags(sp))
		for gi := range windows[sp] {
			windows[sp][gi] = targetWindows(st, core.FragRef{Sp: sp, Idx: gi})
		}
	}
	var out []attempt
	for _, sp := range []core.Species{core.SpeciesH, core.SpeciesM} {
		for fi := 0; fi < st.in.NumFrags(sp); fi++ {
			f := core.FragRef{Sp: sp, Idx: fi}
			osp := sp.Other()
			for gi := 0; gi < st.in.NumFrags(osp); gi++ {
				g := core.FragRef{Sp: osp, Idx: gi}
				for _, w := range windows[osp][gi] {
					out = append(out, i1Attempt(f, g, w[0], w[1]))
				}
			}
		}
	}
	return out
}

// targetWindows lists candidate preparation windows on fragment g: free
// gaps, gaps extended across one neighbouring site per side, and the whole
// fragment. All windows have endpoints on site boundaries, hence are never
// hidden.
func targetWindows(st *state, g core.FragRef) [][2]int {
	n := st.in.Frag(g.Sp, g.Idx).Len()
	sites := st.sitesOn(g)
	set := map[[2]int]bool{{0, n}: true}
	for _, gap := range st.freeGaps(g) {
		set[gap] = true
		lo, hi := gap[0], gap[1]
		// Extend across the neighbouring sites, when they exist.
		for _, s := range sites {
			if s.Hi == lo {
				set[[2]int{s.Lo, hi}] = true
			}
			if s.Lo == hi {
				set[[2]int{lo, s.Hi}] = true
			}
		}
	}
	out := make([][2]int, 0, len(set))
	for w := range set {
		if w[0] < w[1] {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// i2Candidates proposes I2 attempts. When only (exclude filters) a specific
// fragment x is wanted (the I3 rewiring case), pass x via the only
// parameter; otherwise pass Idx:-1 sentinels to enumerate all pairs.
// Window depths per end: the maximal free depth (no tearing) and the whole
// fragment (tear everything on that side).
func i2Candidates(st *state, only core.FragRef, exclude core.FragRef) []attempt {
	// End depths are computed once per (fragment, end), not once per pair.
	depths := [2][][2][]int{}
	for _, sp := range []core.Species{core.SpeciesH, core.SpeciesM} {
		depths[sp] = make([][2][]int, st.in.NumFrags(sp))
		for fi := range depths[sp] {
			fr := core.FragRef{Sp: sp, Idx: fi}
			if only.Idx >= 0 && only.Sp == sp && only.Idx != fi {
				continue
			}
			depths[sp][fi] = [2][]int{
				endDepths(st, fr, leftEnd),
				endDepths(st, fr, rightEnd),
			}
		}
	}
	var out []attempt
	for fi := 0; fi < st.in.NumFrags(core.SpeciesH); fi++ {
		f := core.FragRef{Sp: core.SpeciesH, Idx: fi}
		if only.Idx >= 0 && only.Sp == core.SpeciesH && only.Idx != fi {
			continue
		}
		if exclude.Idx >= 0 && exclude == f {
			continue
		}
		for gi := 0; gi < st.in.NumFrags(core.SpeciesM); gi++ {
			g := core.FragRef{Sp: core.SpeciesM, Idx: gi}
			if only.Idx >= 0 && only.Sp == core.SpeciesM && only.Idx != gi {
				continue
			}
			if exclude.Idx >= 0 && exclude == g {
				continue
			}
			for _, fe := range []end{leftEnd, rightEnd} {
				for _, ge := range []end{leftEnd, rightEnd} {
					for _, fw := range depths[core.SpeciesH][fi][fe] {
						for _, gw := range depths[core.SpeciesM][gi][ge] {
							out = append(out, i2Attempt(f, fe, fw, g, ge, gw))
						}
					}
				}
			}
		}
	}
	return out
}

// endDepths returns the candidate window depths at one end of a fragment:
// the free depth up to the outermost match (when positive) and the full
// length.
func endDepths(st *state, fr core.FragRef, e end) []int {
	n := st.in.Frag(fr.Sp, fr.Idx).Len()
	sites := st.sitesOn(fr)
	free := n
	if len(sites) > 0 {
		if e == leftEnd {
			free = sites[0].Lo
		} else {
			free = n - sites[len(sites)-1].Hi
		}
	}
	if free > 0 && free < n {
		return []int{free, n}
	}
	return []int{n}
}

// i3Candidates proposes one I3 rewiring per current 2-island.
func i3Candidates(st *state) []attempt {
	var out []attempt
	seen := map[int]bool{}
	for fi := 0; fi < st.in.NumFrags(core.SpeciesH); fi++ {
		f := core.FragRef{Sp: core.SpeciesH, Idx: fi}
		for _, id := range st.chainMatchIDs(f) {
			if seen[id] {
				continue
			}
			seen[id] = true
			mt := st.matches[id]
			g := core.FragRef{Sp: core.SpeciesM, Idx: mt.MSite.Frag}
			out = append(out, i3Attempt(f, g, id, func(s *state, x core.FragRef, excl core.FragRef) []attempt {
				return i2Candidates(s, x, excl)
			}))
		}
	}
	return out
}
