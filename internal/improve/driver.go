package improve

import (
	"context"
	"fmt"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/improve/enum"
	"repro/internal/onecsr"
	"repro/internal/score"
	"repro/internal/seed"
)

// Methods selects which improvement methods the driver uses.
type Methods int

const (
	// FullOnly runs I1 only — the Full_Improve algorithm (Theorem 4).
	FullOnly Methods = 1 << iota
	// BorderOnly runs I2 and I3 — the Border_Improve algorithm (Theorem 5).
	BorderOnly
	// AllMethods runs I1, I2 and I3 — the CSR_Improve algorithm (Theorem 6).
	AllMethods = FullOnly | BorderOnly
)

// Options configures the iterative-improvement driver.
type Options struct {
	// Methods defaults to AllMethods.
	Methods Methods
	// Eps tunes the §4.1 scaling threshold: gains must exceed
	// Eps·X/k where X is the 4-approximate score and k the match bound
	// (the paper's X/k² with k replaced by k/Eps; Eps=0 accepts every
	// positive gain — exact local optimum, no polynomial bound).
	Eps float64
	// Seed is the starting solution; nil starts empty (as in the paper).
	Seed *core.Solution
	// SeedWithFourApprox starts from the Corollary 1 solution instead of
	// the empty set; never worse, often much faster to converge.
	SeedWithFourApprox bool
	// MaxRounds caps the improvement iterations (safety net; 0 = 4k²+k).
	MaxRounds int
	// Workers parallelizes candidate gain evaluation; < 1 means 1.
	Workers int
	// Eval is an externally owned evaluation pool. When set, candidate
	// simulations and enumeration refreshes are submitted to it instead of
	// a per-call pool (Workers is then ignored), so batch drivers amortize
	// worker goroutines across many concurrent solves — enumeration shards
	// of one solve overlap with gain simulations of another. The pool
	// outlives the call; Improve never closes it.
	Eval *EvalPool
	// Ctx cancels the solve; nil means never. Cancellation is sub-round:
	// the driver checks between rounds, between candidate simulations,
	// between enumeration shards, and inside TPA batches, and returns the
	// context's error without mutating the live state — an accepted attempt
	// is always applied atomically.
	Ctx context.Context
	// Quantize applies the literal §4.1 scaling: run the search under a
	// scorer truncated to multiples of X/k² (X the 4-approximate score, k
	// the match bound), then re-score the result under the true σ. Every
	// accepted improvement then gains at least one quantum, limiting
	// improvements to 4k² without any gain threshold.
	Quantize bool
	// IntScore runs the search under the integer-quantized σ matrix
	// (score.CompiledInt): every alignment kernel then sweeps contiguous
	// int32 rows instead of float64, and the final solution is re-scored
	// under the true σ at the boundary. Search decisions differ from float
	// mode by at most the quantization bound (zero when σ is unit-quantized,
	// e.g. integral tables — see score.CompiledInt.Exact). Combines with
	// Quantize: the scaled shadow scorer is then quantized exactly, since
	// its values are multiples of the scaling unit by construction.
	IntScore bool
	// FullReeval disables both incremental caches — candidate gains and
	// enumeration pieces — re-enumerating and re-simulating everything
	// every round. The accepted attempt sequence is identical either way
	// (see incremental.go and the enum package); this exists for A/B
	// verification and benchmarking.
	FullReeval bool
	// FullEnum disables only the incremental enumeration cache, keeping
	// the gain cache: candidates are re-enumerated from scratch every
	// round. The A/B knob for the enumeration subsystem alone
	// (fragalign.WithIncrementalEnum(false)).
	FullEnum bool
	// EagerSelect disables the lazy best-first selection engine
	// (selection.go): every round then walks the full enumerated candidate
	// list and serves gains from the per-key cache map — the PR 4 driver.
	// The accepted attempt sequence, match set, and scores are identical
	// either way (TestLazySelectionMatchesFull); this is the selection
	// ablation knob (fragalign.WithLazySelection(false), csrbench
	// -lazy=false). FullEnum and FullReeval imply it: both oracles re-walk
	// the full candidate list by definition.
	EagerSelect bool
	// Seeded replaces all-pairs candidate enumeration with the minimizer
	// seed-and-chain pipeline (internal/seed): only fragment pairs whose
	// words share σ-translated minimizer chains (SeedParams.Exhaustive:
	// pairs with any positive σ cell — provably lossless) enter the
	// enumeration, I3 rewiring, and TPA loops. On genome-scale instances
	// this turns the quadratic pair sweeps into near-linear ones; on small
	// instances with exhaustive params the accepted sequence is
	// bit-identical to the unseeded solve (TestSeededExhaustiveParity).
	Seeded bool
	// SeedParams tunes the seeding pipeline; the zero value means
	// seed.DefaultParams().
	SeedParams seed.Params
	// Checkpoint, when set, observes every accepted candidate in acceptance
	// order — the driver's crash-recovery tap. Because the live state evolves
	// only through accepted attempts (simulations run on pooled clones) and
	// each attempt replays deterministically, the accepted-candidate log IS
	// the solve's recovery state: persist it and a crashed solve resumes via
	// Resume, bit-identical. A sink error aborts the solve — the durability
	// contract forbids running ahead of the log. Candidates fast-forwarded
	// from Resume are not re-reported (they are already in the caller's log).
	Checkpoint CheckpointSink
	// Resume fast-forwards a fresh state through a previously checkpointed
	// accepted-candidate log before the round loop runs: each op is applied
	// to the live state exactly as an accepted attempt would be, Stats.Rounds
	// and Stats.Accepted start at len(Resume), and the loop continues from
	// there. The continued run's accepted sequence and final solution are
	// bit-identical to an uninterrupted solve whose first len(Resume) accepts
	// were these ops (TestCheckpointResumeBitIdentity). Ops must come from a
	// solve of the same instance under the same options.
	Resume []enum.Cand
	// Partial degrades cancellation gracefully: when Ctx fires mid-solve,
	// the driver stops at the next sub-round check and returns the last
	// accepted state as a valid solution with Stats.Partial set, instead of
	// the context error. The result is exactly what an uncanceled run would
	// have produced after the same accepted attempts — consistent, and (in
	// the quantized modes) re-scored under the true σ.
	Partial bool
	// minGain is an internal acceptance floor. The quantized path sets it
	// to half a quantum: every true gain is a whole multiple of the
	// quantum, so the floor only rejects floating-point noise around zero.
	minGain float64
	// CheckInvariants validates consistency after every accepted attempt
	// (slow; for tests).
	CheckInvariants bool
	// onAccept, when set, observes every accepted attempt in order (test
	// hook for the enumeration oracle).
	onAccept func(candKey)
}

// CheckpointSink receives every accepted candidate of an improvement run in
// acceptance order (see Options.Checkpoint). encoding.CheckpointWriter is
// the durable implementation; tests use in-memory collectors.
type CheckpointSink interface {
	Accept(c enum.Cand) error
}

// Stats reports how an improvement run went.
type Stats struct {
	Rounds int
	// Resumed counts the checkpointed ops fast-forwarded through the live
	// state before the round loop ran (len(Options.Resume)); those accepts
	// are included in Rounds and Accepted.
	Resumed int
	// Evaluated counts candidate gains obtained per round. Under the eager
	// engines (EagerSelect/FullEnum/FullReeval) that is the full candidate
	// list every round — enumerated candidates, whether served from cache
	// or re-simulated. Under the lazy engine it is the gains actually
	// computed by simulation, which on converged rounds is just the dirty
	// frontier; the ≥3× per-round reduction is the engine's acceptance
	// criterion.
	Evaluated int
	Accepted  int
	Threshold float64
	Final     float64
	// Popped, Resimulated and Skipped report the lazy selection engine's
	// heap traffic (all zero under the eager engines). Popped counts heap
	// extractions: the stale frontier pulled for re-simulation each round
	// plus the current-top inspection that ends the round. Resimulated
	// counts frontier slots that already had a recorded gain — the
	// candidates invalidated by accepted attempts (first-time simulations
	// of newly enumerated candidates are excluded). Skipped counts live
	// candidates carried through a selection untouched — cached gains the
	// eager loop would have re-checked.
	Popped      int
	Resimulated int
	Skipped     int
	// EnumRefreshed and EnumReused count the enumeration subsystem's
	// piece-cache traffic across all rounds: pieces recomputed vs served
	// from cache. Under FullEnum/FullReeval every piece refreshes every
	// round, so EnumReused is zero and EnumRefreshed counts pieces×rounds.
	EnumRefreshed int
	EnumReused    int
	// Partial reports that the run was cut short by its context under
	// Options.Partial: the returned solution is the last accepted state,
	// not a local optimum.
	Partial bool
	// SeedPairs and SeedAnchors report the seeded candidate universe
	// (Options.Seeded): pairs admitted out of nh×nm possible, and minimizer
	// anchors matched. Zero on unseeded solves.
	SeedPairs   int
	SeedAnchors int
}

// Improve runs the selected iterative-improvement algorithm to a local
// optimum (all attempts gain ≤ threshold) and returns the resulting
// consistent solution.
func Improve(in *core.Instance, opt Options) (*core.Solution, Stats, error) {
	var stats Stats
	if err := in.Validate(); err != nil {
		return nil, stats, err
	}
	// The memo keys pack fragment indices into 20 bits and site bounds into
	// 21 (incremental.go: mkAlignKey/mkPlaceKey); reject instances beyond
	// those ranges up front — a silent packed-key collision would corrupt
	// cached scores. Real instances are orders of magnitude smaller.
	const maxPackFrags, maxPackLen = 1 << 20, 1 << 21
	for _, sp := range []core.Species{core.SpeciesH, core.SpeciesM} {
		if n := in.NumFrags(sp); n >= maxPackFrags {
			return nil, stats, fmt.Errorf("improve: %d %v fragments exceed the %d supported", n, sp, maxPackFrags-1)
		}
		for i := 0; i < in.NumFrags(sp); i++ {
			if l := in.Frag(sp, i).Len(); l >= maxPackLen {
				return nil, stats, fmt.Errorf("improve: fragment %v/%d length %d exceeds the %d supported", sp, i, l, maxPackLen-1)
			}
		}
	}
	if opt.Methods == 0 {
		opt.Methods = AllMethods
	}
	// Integer-quantized search: swap σ for its int32 matrix, run the whole
	// algorithm under it, and re-score the result under the true σ at the
	// end — the same shadow-instance shape as the Quantize path below. When
	// Quantize is also set it runs first (outer), so the scaled scorer is
	// what gets quantized to integers; its values are unit multiples, making
	// the integer representation exact.
	if opt.IntScore && !opt.Quantize {
		ci := score.Compile(in.Sigma, in.MaxSymbolID()).Int()
		shadow := *in
		shadow.Sigma = ci
		iopt := opt
		iopt.IntScore = false
		if iopt.Seed != nil {
			iopt.Seed = rescore(&shadow, iopt.Seed)
		}
		sol, istats, err := Improve(&shadow, iopt)
		if err != nil {
			return nil, istats, err
		}
		// The inner call built sol from its own state: re-score it in place.
		RescoreInPlace(in, sol, score.Prepare(in.Sigma, in.MaxSymbolID()))
		istats.Final = sol.Score()
		return sol, istats, nil
	}
	// Prepare σ once for the whole solve: the baseline 4-approximation and
	// the driver state then share one compiled matrix (and its cached
	// transpose) instead of each compiling their own. Scoring is
	// bit-identical — a compiled matrix returns the exact float64 cells of
	// its base scorer — and batch-pooled instances, whose Sigma is already
	// the pool's cached matrix, pass through untouched.
	prepared := *in
	prepared.Sigma = score.Prepare(in.Sigma, in.MaxSymbolID())
	in = &prepared
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	seedSol := opt.Seed
	var baseline float64
	if fa, err := onecsr.FourApprox(in); err == nil {
		baseline = fa.Score()
		if opt.SeedWithFourApprox && seedSol == nil {
			seedSol = fa
		}
	}
	k := in.MaxMatches()
	if k < 1 {
		k = 1
	}
	if opt.Eps > 0 && baseline > 0 {
		stats.Threshold = opt.Eps * baseline / float64(k)
	}
	if opt.Quantize && baseline > 0 {
		unit := baseline / float64(k*k)
		shadow := *in
		shadow.Sigma = score.Quantized{Base: in.Sigma, Unit: unit}
		// Solve under truncated scores (the seed's caches must be
		// re-truncated), then re-score the result under the true σ.
		qopt := opt
		qopt.Quantize = false
		qopt.minGain = unit / 2
		if qopt.Seed == nil && seedSol != nil {
			qopt.Seed = seedSol
		}
		qopt.SeedWithFourApprox = false
		if qopt.Seed != nil {
			qopt.Seed = rescore(&shadow, qopt.Seed)
		}
		sol, qstats, err := Improve(&shadow, qopt)
		if err != nil {
			return nil, qstats, err
		}
		// The inner call built sol from its own state: re-score it in place.
		RescoreInPlace(in, sol, score.Prepare(in.Sigma, in.MaxSymbolID()))
		qstats.Final = sol.Score()
		qstats.Threshold = unit
		return sol, qstats, nil
	}
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4*k*k + k + 16
	}

	st := newState(in, seedSol)
	defer st.scr.Release() // the driver's own alignment scratch arena
	if opt.Seeded {
		// Seed-and-chain candidate generation: restrict the solve's pair
		// universe to the chained (or, with Exhaustive, positive-σ) pairs.
		// Runs against the prepared σ, so the shadow recursions above seed
		// under the scorer the search actually uses.
		sp := opt.SeedParams
		if sp == (seed.Params{}) {
			sp = seed.DefaultParams()
		}
		res := seed.Candidates(in, sp)
		st.pairs = enum.NewPairSet(
			in.NumFrags(core.SpeciesH), in.NumFrags(core.SpeciesM), res.PairList())
		stats.SeedPairs = res.Stats.Pairs
		stats.SeedAnchors = res.Stats.Anchors
	}
	vers := st.vers
	pool := opt.Eval
	if pool == nil && workers > 1 {
		pool = NewEvalPool(workers)
		defer pool.Close()
	}
	// Pool-less solves run every simulation inline on this goroutine (all
	// concurrent paths below fall back to sequential loops when pool is
	// nil), so the shared memos can elide their locks.
	st.memo.seq = pool == nil
	st.pmemo.seq = pool == nil
	if len(opt.Resume) > 0 {
		// Crash recovery: fast-forward the live state through the
		// checkpointed accepted-op log. Each op is applied exactly as
		// replayAccept applies an accepted attempt (zeroed accumulator, same
		// float addition sequence), but without a gain check — the log IS the
		// trajectory — and without re-reporting to Checkpoint, where the ops
		// already are durable. Rounds/Accepted start at the replayed count so
		// the continued loop's accounting matches the uninterrupted run's.
		// Structural references are bounds-checked so a log from another
		// instance fails typed instead of corrupting state.
		for i, c := range opt.Resume {
			if c.Kind < enum.KindI1 || c.Kind > enum.KindI3 ||
				(c.F.Sp != core.SpeciesH && c.F.Sp != core.SpeciesM) ||
				(c.G.Sp != core.SpeciesH && c.G.Sp != core.SpeciesM) ||
				c.F.Idx < 0 || c.F.Idx >= in.NumFrags(c.F.Sp) ||
				c.G.Idx < 0 || c.G.Idx >= in.NumFrags(c.G.Sp) {
				return nil, stats, fmt.Errorf("improve: resume op %d (%s) does not fit this instance", i, c)
			}
			st.delta = 0
			runCand(st, c)
			stats.Accepted++
			if opt.onAccept != nil {
				opt.onAccept(c)
			}
		}
		stats.Resumed = len(opt.Resume)
		stats.Rounds = len(opt.Resume)
	}
	canceled := func() error {
		if opt.Ctx == nil {
			return nil
		}
		return opt.Ctx.Err()
	}
	// Enumeration runs incrementally against the live version counters; its
	// dirty-piece refreshes are sharded over the eval pool when one exists,
	// overlapping with the candidate simulations of concurrent solves.
	en := enum.New(opt.Methods&FullOnly != 0, opt.Methods&BorderOnly != 0, st.pairs)
	fullEnum := opt.FullReeval || opt.FullEnum
	runShards := func(tasks []func()) {
		const chunk = 8
		if pool == nil || len(tasks) < 2*chunk {
			for _, t := range tasks {
				t()
			}
			return
		}
		batch := evalBatch{p: pool}
		for lo := 0; lo < len(tasks); lo += chunk {
			part := tasks[lo:min(lo+chunk, len(tasks))]
			batch.do(func(*align.Scratch) {
				for _, t := range part {
					if canceled() != nil {
						return // stale pieces are fine: the round aborts
					}
					t()
				}
			})
		}
		batch.wait()
	}
	floor := max(stats.Threshold, opt.minGain)
	if !fullEnum && !opt.EagerSelect {
		// Default path: the lazy best-first selection engine (selection.go).
		// The eager loop below survives as its oracle and ablation.
		if err := improveLazy(opt, st, en, pool, runShards, canceled, maxRounds, floor, &stats); err != nil {
			return nil, stats, err
		}
		es := en.Stats()
		stats.EnumRefreshed, stats.EnumReused = es.Refreshed, es.Reused
		sol := st.solution()
		stats.Final = sol.Score()
		return sol, stats, nil
	}
	// The eager engines: per-round full-list selection with the per-key
	// gain-cache map (dropped under FullReeval).
	cache := make(map[candKey]*cacheEntry)
	// Per-round buffers, reused across rounds.
	var (
		gains []float64
		recs  []*readRecorder
		fresh []int
	)
	// Rounds starts at the resumed-op count (zero on fresh solves) so a
	// resumed run's round numbering continues the interrupted one's.
	for ; stats.Rounds < maxRounds; stats.Rounds++ {
		if err := canceled(); err != nil {
			if opt.Partial {
				stats.Partial = true
				break
			}
			return nil, stats, err
		}
		if fullEnum {
			en.Invalidate()
		}
		cands := en.Candidates(enumView{st: st}, runShards)
		if err := canceled(); err != nil {
			if opt.Partial {
				stats.Partial = true
				break
			}
			return nil, stats, err
		}
		stats.Evaluated += len(cands)
		if cap(gains) < len(cands) {
			gains = make([]float64, len(cands))
			recs = make([]*readRecorder, len(cands))
		} else {
			gains = gains[:len(cands)]
			recs = recs[:len(cands)]
		}
		clear(gains)
		clear(recs)
		// Reuse cached gains whose recorded read sets are untouched;
		// re-simulate only candidates invalidated by the matches the last
		// accepted attempt actually changed.
		fresh = fresh[:0]
		for i, key := range cands {
			if !opt.FullReeval {
				if e, ok := cache[key]; ok {
					if e.valid(vers) {
						e.seen = stats.Rounds
						gains[i] = e.gain
						continue
					}
					delete(cache, key)
				}
			}
			fresh = append(fresh, i)
		}
		eval := func(i int, scr *align.Scratch) {
			rec := newReadRecorder(vers)
			sim := st.clone()
			sim.rec = rec
			sim.scr = scr // the evaluating goroutine's scratch arena
			sim.ctx = opt.Ctx
			// Zero the gain accumulator so every evaluation performs the
			// identical float additions regardless of the live state's
			// accumulated delta — cached and fresh gains stay bit-equal.
			sim.delta = 0
			gains[i] = runCand(sim, cands[i])
			sim.release()
			recs[i] = rec
		}
		if pool == nil || len(fresh) < 2 {
			for _, i := range fresh {
				if canceled() != nil {
					break
				}
				eval(i, st.scr)
			}
		} else {
			batch := evalBatch{p: pool}
			for _, i := range fresh {
				i := i
				batch.do(func(scr *align.Scratch) {
					if canceled() != nil {
						return // discarded below; skip the simulation
					}
					eval(i, scr)
				})
			}
			batch.wait()
		}
		if err := canceled(); err != nil {
			if opt.Partial {
				stats.Partial = true
				break
			}
			return nil, stats, err
		}
		if !opt.FullReeval {
			for _, i := range fresh {
				cache[cands[i]] = &cacheEntry{gain: gains[i], reads: recs[i].reads, seen: stats.Rounds}
			}
			// Sweep entries whose keys were not enumerated this round:
			// their generating structure (windows, chain matches) is gone,
			// so they can never be looked up again.
			for k, e := range cache {
				if e.seen != stats.Rounds {
					delete(cache, k)
				}
			}
		}
		// Argmax under the same total order the lazy engine's heap uses:
		// strictly best gain, ties to the enum.Less-least candidate (which
		// coincides with list position for I1/I2; I3 ties resolve by chain
		// ID in both engines).
		bestIdx, bestGain := -1, floor
		for i, g := range gains {
			if g > bestGain || (bestIdx >= 0 && g == bestGain && enum.Less(cands[i], cands[bestIdx])) {
				bestIdx, bestGain = i, g
			}
		}
		if bestIdx < 0 {
			break
		}
		if err := replayAccept(st, &opt, &stats, cands[bestIdx], bestGain); err != nil {
			return nil, stats, err
		}
	}
	es := en.Stats()
	stats.EnumRefreshed, stats.EnumReused = es.Refreshed, es.Reused
	sol := st.solution()
	stats.Final = sol.Score()
	return sol, stats, nil
}

// replayAccept applies an accepted candidate on the live state and verifies
// the replayed gain matches the simulated one — shared by both selection
// engines (the lazy engine resets st.bumpLog beforehand to collect the
// replay's dirty fragment set). The replay runs with a zeroed accumulator,
// mirroring the simulation's float addition sequence exactly.
func replayAccept(st *state, opt *Options, stats *Stats, key candKey, want float64) error {
	st.delta = 0
	got := runCand(st, key)
	stats.Accepted++
	if opt.onAccept != nil {
		opt.onAccept(key)
	}
	if opt.Checkpoint != nil {
		if err := opt.Checkpoint.Accept(key); err != nil {
			// The solve may not run ahead of its durable log: a sink failure
			// (disk full, injected torn write) aborts like a crash would.
			return fmt.Errorf("improve: checkpoint accept %s: %w", key, err)
		}
	}
	if diff := got - want; diff > 1e-6*(1+want) || diff < -1e-6*(1+want) {
		return fmt.Errorf("improve: %s replayed gain %v != simulated %v", key, got, want)
	}
	if opt.CheckInvariants {
		sol := st.solution()
		if err := sol.Validate(st.in); err != nil {
			return fmt.Errorf("improve: after %s: %w", key, err)
		}
		if _, err := sol.BuildConjecture(st.in); err != nil {
			return fmt.Errorf("improve: after %s: inconsistent solution: %w", key, err)
		}
	}
	return nil
}

// rescore refreshes every cached match score under the instance's σ,
// prepared once for the pass (a pre-quantized σ stays on the integer
// kernels).
func rescore(in *core.Instance, sol *core.Solution) *core.Solution {
	return Rescore(in, sol, score.Prepare(in.Sigma, in.MaxSymbolID()))
}

// Rescore returns a copy of the solution with every cached match score
// recomputed against the instance's words under the given scorer — the
// shared re-scoring boundary of the quantized modes (callers pass the exact
// dense σ to dequantize a search result, or a shadow scorer to re-truncate a
// seed).
func Rescore(in *core.Instance, sol *core.Solution, sc score.Scorer) *core.Solution {
	out := sol.Clone()
	RescoreInPlace(in, out, sc)
	return out
}

// RescoreInPlace is Rescore mutating sol directly — the allocation-free form
// for solutions the caller owns outright (a solver's freshly built result,
// never a user-provided seed).
func RescoreInPlace(in *core.Instance, sol *core.Solution, sc score.Scorer) {
	s := align.NewScratch()
	defer s.Release()
	for i := range sol.Matches {
		mt := &sol.Matches[i]
		mt.Score = s.Score(in.SiteWord(mt.HSite), in.SiteWord(mt.MSite).Orient(mt.Rev), sc)
	}
}
