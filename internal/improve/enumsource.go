package improve

import (
	"repro/internal/core"
	"repro/internal/improve/enum"
)

// enumView adapts the live driver state to the enumeration subsystem's
// read-only Source interface. Queries record the fragments they read into
// the enum.Reads set — at the adapter level, mirroring exactly what the
// underlying state accessors consult — so cached enumeration pieces
// invalidate under the same version-counter scheme as the gain cache.
//
// The view is safe for concurrent queries while the state is quiescent
// (all accesses are read-only), which is what lets the driver shard piece
// refreshes over the shared EvalPool.
type enumView struct {
	st *state
}

func (v enumView) NumFrags(sp core.Species) int { return v.st.in.NumFrags(sp) }

func (v enumView) FragLen(fr core.FragRef) int { return v.st.in.Frag(fr.Sp, fr.Idx).Len() }

func (v enumView) Version(fr core.FragRef) uint64 {
	if v.st.vers == nil {
		return 0
	}
	return v.st.vers.of(fr)
}

func (v enumView) note(r enum.Reads, fr core.FragRef) { r.Note(fr, v.Version(fr)) }

// Sites returns fr's occupied sites, reading only fr's match data. Unlike
// the single-goroutine state accessors it allocates its result: refresh
// tasks call it concurrently from several pool workers, so the per-state
// scratch buffers are off limits here.
func (v enumView) Sites(fr core.FragRef, r enum.Reads) []core.Site {
	v.note(r, fr)
	ids := v.st.fragMatchIDsInto(nil, fr)
	out := make([]core.Site, 0, len(ids))
	for _, id := range ids {
		out = append(out, v.st.matches[id].Side(fr.Sp))
	}
	return out
}

// Chains returns fr's 2-island links in site order. The computation reads
// fr's match list plus the degree of every partner fragment, so all of
// those are recorded. Allocates for the same concurrency reason as Sites.
func (v enumView) Chains(fr core.FragRef, r enum.Reads) []enum.Chain {
	v.note(r, fr)
	var out []enum.Chain
	for _, id := range v.st.fragMatchIDsInto(nil, fr) {
		mt := v.st.matches[id]
		m := core.FragRef{Sp: core.SpeciesM, Idx: mt.MSite.Frag}
		v.note(r, m)
		if v.st.degree(fr) >= 2 && v.st.degree(m) >= 2 {
			out = append(out, enum.Chain{ID: id, G: m})
		}
	}
	return out
}
