// Package improve implements the paper's primary contribution (§4): the
// iterative-improvement approximation algorithms for CSR.
//
//   - Full_Improve   (method I1, Theorem 4, ratio 3+ε for Full CSR)
//   - Border_Improve (methods I2/I3, Theorem 5, ratio 3+ε for Border CSR)
//   - CSR_Improve    (all methods, Theorem 6, ratio 3+ε for general CSR)
//
// The algorithms maintain a consistent set of matches (1- and 2-islands
// only), repeatedly evaluating improvement attempts — plugging a fragment
// into a prepared site (I1), forming a border match between two fragment
// ends (I2), or rewiring a 2-island (I3) — each followed by TPA runs (the
// ratio-2 two-phase interval-selection algorithm) over the zones the
// preparation exposed. Iteration counts are bounded by the
// Chandra–Halldórsson scaling rule of §4.1: only gains above X/k² are
// accepted, where X is a 4-approximate score and k bounds the match count.
//
// # Evaluation fast path
//
// The driver compiles σ into a dense matrix once per solve (score.Compile)
// and shares it — together with a site-word alignment memo and a Pareto
// placement memo, both keyed purely by instance data — across every
// simulation, TPA batch, and replay. Candidate gains are evaluated
// incrementally: each simulation records the fragments whose match data it
// read, accepted attempts bump per-fragment version counters, and a cached
// gain is reused whenever its recorded read set is untouched. The recorded
// gains are bit-identical to fresh evaluation (see incremental.go for the
// invariants), so the incremental driver accepts exactly the same attempt
// sequence as full per-round re-evaluation (Options.FullReeval).
package improve

import (
	"sort"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/symbol"
)

// state is the solver's working solution: a set of live matches keyed by
// stable IDs, plus fragments locked by the improvement attempt currently
// being simulated.
//
// Shared across the whole solve (pointers copied by clone): the compiled σ
// matrices sig/sigT and the site-alignment memo. Owned per state: the match
// set and the attempt gain accumulator delta. The live driver state
// additionally owns the per-fragment version map vers (clones drop it);
// simulations may carry a readRecorder rec (clones keep it).
type state struct {
	in      *core.Instance
	matches map[int]core.Match
	// byFrag indexes the IDs of matches touching each fragment, so
	// per-fragment queries never scan the whole match set. Lists are
	// unsorted; fragMatchIDs sorts a copy on demand.
	byFrag map[core.FragRef][]int
	nextID int
	locked map[core.FragRef]bool

	sig   score.Scorer // σ prepared over the instance alphabet (dense float64 or int32-quantized)
	sigT  score.Scorer // σᵀ for M-first alignments
	memo  *alignMemo
	pmemo *placeMemo
	// scr is the goroutine-local alignment scratch arena, never nil: the
	// driver's on the live state, an eval worker's on the simulations it
	// runs. Clones inherit it (correct for same-goroutine sub-simulations);
	// the driver overwrites it with the worker's arena before a simulation
	// crosses goroutines (see eval in driver.go).
	scr *align.Scratch
	// revWords[sp][i] is fragment i of species sp reversed, materialized
	// once per solve (shared by clones) so hot loops never re-allocate it.
	revWords [2][]symbol.Word

	// delta accumulates the score change of the attempt being applied:
	// +score on add, −score on remove, the difference on restriction.
	delta float64
	// vers is the live state's per-fragment version map (nil on clones).
	vers map[core.FragRef]uint64
	// rec records fragment reads during a simulation (nil on the live
	// state and on replays).
	rec *readRecorder
}

func newState(in *core.Instance, seed *core.Solution) *state {
	sig := score.Prepare(in.Sigma, in.MaxSymbolID())
	st := &state{
		in:      in,
		matches: make(map[int]core.Match),
		byFrag:  make(map[core.FragRef][]int),
		locked:  make(map[core.FragRef]bool),
		sig:     sig,
		sigT:    score.Transpose(sig),
		memo:    newAlignMemo(),
		pmemo:   newPlaceMemo(),
		scr:     align.NewScratch(),
	}
	for _, sp := range []core.Species{core.SpeciesH, core.SpeciesM} {
		frags := in.Frags(sp)
		st.revWords[sp] = make([]symbol.Word, len(frags))
		for i := range frags {
			st.revWords[sp][i] = frags[i].Regions.Rev()
		}
	}
	if seed != nil {
		for _, mt := range seed.Matches {
			id := st.nextID
			st.nextID++
			st.matches[id] = mt
			st.index(id, mt)
		}
	}
	return st
}

// index adds match id to both fragments' ID lists.
func (st *state) index(id int, mt core.Match) {
	h := core.FragRef{Sp: core.SpeciesH, Idx: mt.HSite.Frag}
	m := core.FragRef{Sp: core.SpeciesM, Idx: mt.MSite.Frag}
	st.byFrag[h] = append(st.byFrag[h], id)
	st.byFrag[m] = append(st.byFrag[m], id)
}

// unindex removes match id from both fragments' ID lists.
func (st *state) unindex(id int, mt core.Match) {
	for _, fr := range [2]core.FragRef{
		{Sp: core.SpeciesH, Idx: mt.HSite.Frag},
		{Sp: core.SpeciesM, Idx: mt.MSite.Frag},
	} {
		ids := st.byFrag[fr]
		for i, v := range ids {
			if v == id {
				ids[i] = ids[len(ids)-1]
				st.byFrag[fr] = ids[:len(ids)-1]
				break
			}
		}
	}
}

func (st *state) clone() *state {
	c := &state{
		in:       st.in,
		matches:  make(map[int]core.Match, len(st.matches)),
		byFrag:   make(map[core.FragRef][]int, len(st.byFrag)),
		nextID:   st.nextID,
		locked:   make(map[core.FragRef]bool, len(st.locked)),
		sig:      st.sig,
		sigT:     st.sigT,
		memo:     st.memo,
		pmemo:    st.pmemo,
		revWords: st.revWords,
		delta:    st.delta,
		rec:      st.rec, // sub-simulations keep recording
		scr:      st.scr, // overwritten by the worker on cross-goroutine evals
		// vers deliberately dropped: simulations never bump live versions.
	}
	for id, mt := range st.matches {
		c.matches[id] = mt
	}
	for fr, ids := range st.byFrag {
		if len(ids) == 0 {
			continue
		}
		// Fresh backing arrays: unindex swap-deletes in place.
		c.byFrag[fr] = append([]int(nil), ids...)
	}
	for fr := range st.locked {
		c.locked[fr] = true
	}
	return c
}

// note records a read of fragment fr's match data during a simulation.
func (st *state) note(fr core.FragRef) {
	if st.rec != nil {
		st.rec.note(fr)
	}
}

// bump advances the version of both fragments a match touches (live state
// only; a no-op on simulations).
func (st *state) bump(mt core.Match) {
	if st.vers == nil {
		return
	}
	st.vers[core.FragRef{Sp: core.SpeciesH, Idx: mt.HSite.Frag}]++
	st.vers[core.FragRef{Sp: core.SpeciesM, Idx: mt.MSite.Frag}]++
}

// score sums in sorted-ID order so that a simulation and its replay (which
// allocate identical IDs) produce bit-identical totals.
func (st *state) score() float64 {
	t := 0.0
	for _, id := range st.matchIDs() {
		t += st.matches[id].Score
	}
	return t
}

func (st *state) solution() *core.Solution {
	ids := st.matchIDs()
	sol := &core.Solution{Matches: make([]core.Match, 0, len(ids))}
	for _, id := range ids {
		sol.Matches = append(sol.Matches, st.matches[id])
	}
	return sol
}

// matchIDs returns the live match IDs in deterministic order.
func (st *state) matchIDs() []int {
	ids := make([]int, 0, len(st.matches))
	for id := range st.matches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (st *state) addMatch(mt core.Match) int {
	id := st.nextID
	st.nextID++
	st.matches[id] = mt
	st.index(id, mt)
	st.delta += mt.Score
	st.bump(mt)
	return id
}

// setMatch replaces match id in place (site restriction), keeping its ID.
func (st *state) setMatch(id int, mt core.Match) {
	old := st.matches[id]
	st.matches[id] = mt
	st.delta += mt.Score - old.Score
	st.bump(mt)
}

// fragMatchIDs returns the IDs of matches touching fragment fr, sorted by
// site position.
func (st *state) fragMatchIDs(fr core.FragRef) []int {
	st.note(fr)
	idx := st.byFrag[fr]
	if len(idx) == 0 {
		return nil
	}
	ids := append([]int(nil), idx...) // callers mutate state while iterating
	sort.Slice(ids, func(a, b int) bool {
		sa := st.matches[ids[a]].Side(fr.Sp).Lo
		sb := st.matches[ids[b]].Side(fr.Sp).Lo
		if sa != sb {
			return sa < sb
		}
		return ids[a] < ids[b]
	})
	return ids
}

func (st *state) degree(fr core.FragRef) int {
	st.note(fr)
	return len(st.byFrag[fr])
}

// contribution is Cb(f, S): the total score of matches touching fr.
// Summation follows sorted match IDs for bit-stable float totals.
func (st *state) contribution(fr core.FragRef) float64 {
	t := 0.0
	for _, id := range st.fragMatchIDs(fr) {
		t += st.matches[id].Score
	}
	return t
}

// chainMatchIDs returns fr's matches whose both fragments participate in
// ≥ 2 matches — the 2-island links.
func (st *state) chainMatchIDs(fr core.FragRef) []int {
	var out []int
	for _, id := range st.fragMatchIDs(fr) {
		mt := st.matches[id]
		h := core.FragRef{Sp: core.SpeciesH, Idx: mt.HSite.Frag}
		m := core.FragRef{Sp: core.SpeciesM, Idx: mt.MSite.Frag}
		if st.degree(h) >= 2 && st.degree(m) >= 2 {
			out = append(out, id)
		}
	}
	return out
}

// sitesOn returns the sites occupied on fragment fr, sorted.
func (st *state) sitesOn(fr core.FragRef) []core.Site {
	ids := st.fragMatchIDs(fr)
	out := make([]core.Site, 0, len(ids))
	for _, id := range ids {
		out = append(out, st.matches[id].Side(fr.Sp))
	}
	return out
}

// freeGaps returns the maximal unoccupied intervals of fragment fr.
func (st *state) freeGaps(fr core.FragRef) [][2]int {
	n := st.in.Frag(fr.Sp, fr.Idx).Len()
	var out [][2]int
	pos := 0
	for _, s := range st.sitesOn(fr) {
		if s.Lo > pos {
			out = append(out, [2]int{pos, s.Lo})
		}
		pos = s.Hi
	}
	if pos < n {
		out = append(out, [2]int{pos, n})
	}
	return out
}

// clipFree intersects [lo, hi) on fr with the free space, returning the
// free sub-intervals.
func (st *state) clipFree(fr core.FragRef, lo, hi int) [][2]int {
	var out [][2]int
	for _, g := range st.freeGaps(fr) {
		a, b := max(g[0], lo), min(g[1], hi)
		if a < b {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// sigmaFor returns the compiled scorer whose first argument is a word of
// species sp — σ for H, the transposed σ for M.
func (st *state) sigmaFor(sp core.Species) score.Scorer {
	if sp == core.SpeciesH {
		return st.sig
	}
	return st.sigT
}

// placement aliases align.Placement for the placeMemo declarations.
type placement = align.Placement

// placements returns the Pareto fit-placement frontier of fragment x at
// orientation rev inside the window [lo, hi) of fragment z, memoized for
// the lifetime of the solve. The returned slice is shared: callers must not
// modify it.
func (st *state) placements(x core.FragRef, rev bool, z core.FragRef, lo, hi int) []placement {
	k := placeKey{x: x, rev: rev, z: z, lo: lo, hi: hi}
	if v, ok := st.pmemo.get(k); ok {
		return v
	}
	zoneWord := st.in.Frag(z.Sp, z.Idx).Regions[lo:hi]
	v := st.scr.Placements(st.fragWord(x, rev), zoneWord, st.sigmaFor(x.Sp), 0)
	st.pmemo.put(k, v)
	return v
}

// fragWord returns the full region word of fragment fr at the given
// orientation without allocating.
func (st *state) fragWord(fr core.FragRef, rev bool) symbol.Word {
	if rev {
		return st.revWords[fr.Sp][fr.Idx]
	}
	return st.in.Frag(fr.Sp, fr.Idx).Regions
}

// siteScore returns MS of the H-site h against the M-site m at orientation
// rev, memoized for the lifetime of the solve (the score depends only on
// the instance words and σ).
func (st *state) siteScore(h, m core.Site, rev bool) float64 {
	k := alignKey{h: h, m: m, rev: rev}
	if v, ok := st.memo.get(k); ok {
		return v
	}
	v := st.scr.Score(st.in.SiteWord(h), st.in.SiteWord(m).Orient(rev), st.sig)
	st.memo.put(k, v)
	return v
}

// mkMatch builds a match pairing the full fragment x against the window
// [lo, hi) of fragment z of the other species, with x oriented by rev.
// The cached score is recomputed canonically.
func (st *state) mkMatch(x core.FragRef, rev bool, z core.FragRef, lo, hi int) core.Match {
	xSite := core.Site{Species: x.Sp, Frag: x.Idx, Lo: 0, Hi: st.in.Frag(x.Sp, x.Idx).Len()}
	zSite := core.Site{Species: z.Sp, Frag: z.Idx, Lo: lo, Hi: hi}
	var mt core.Match
	if x.Sp == core.SpeciesH {
		mt = core.Match{HSite: xSite, MSite: zSite, Rev: rev}
	} else {
		mt = core.Match{HSite: zSite, MSite: xSite, Rev: rev}
	}
	mt.Score = st.siteScore(mt.HSite, mt.MSite, mt.Rev)
	return mt
}

// removeMatch deletes a match and returns it.
func (st *state) removeMatch(id int) core.Match {
	mt := st.matches[id]
	delete(st.matches, id)
	st.unindex(id, mt)
	st.delta -= mt.Score
	st.bump(mt)
	return mt
}

// otherSite returns the site of match mt on the species opposite to sp.
func otherSite(mt core.Match, sp core.Species) core.Site {
	return mt.Side(sp.Other())
}

// prepare makes the window [lo, hi) on fragment fr usable for a new match,
// following the §4.2/§4.3 preparation rules:
//
//   - if fr is the multiple fragment of a 2-island, the island is broken
//     first (its chain matches are removed);
//   - a satellite match — the partner plugged in with a full site — that
//     overlaps the window is restricted on fr's side to the part outside
//     the window and re-scored (the paper's Mult(S) rule; the satellite
//     keeps its full site, so the island stays a caterpillar);
//   - any other overlapping match (the partner side is not full, so
//     restricting fr's side would leave a match with no full or border
//     structure) is removed outright, mirroring the paper's Simp(S)
//     "detach" rule.
//
// It returns the partner sites freed by removals — the TPA zones of the
// calling improvement method. Preparing a hidden window is the caller's
// responsibility to avoid; windows bounded by existing site endpoints are
// never hidden.
func (st *state) prepare(fr core.FragRef, lo, hi int) (freed []core.Site) {
	for _, id := range st.fragMatchIDs(fr) {
		mt := st.matches[id]
		s := mt.Side(fr.Sp)
		partner := otherSite(mt, fr.Sp)
		partnerFull := st.in.Kind(partner) == core.KindFull
		myFull := st.in.Kind(s) == core.KindFull
		if !partnerFull && !myFull {
			// Border match: remove regardless of overlap — the general
			// form of the paper's "break the 2-island first" rule. Border
			// claims may only ever exist at a fragment's extremes, and a
			// fragment being rewired must shed them so the new link is its
			// only claim on that end structure.
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		if s.Hi <= lo || hi <= s.Lo {
			continue // disjoint from the window
		}
		if !partnerFull || (lo <= s.Lo && s.Hi <= hi) {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		// Partial overlap with a plugged-in satellite: restrict fr's side
		// to the part outside the window. The window is never strictly
		// inside the site (callers use site-boundary windows), so the
		// remainder is one interval.
		ns := s
		if s.Lo < lo {
			ns.Hi = lo
		} else {
			ns.Lo = hi
		}
		if ns.Lo >= ns.Hi {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		mt.SetSide(fr.Sp, ns)
		mt.Score = st.siteScore(mt.HSite, mt.MSite, mt.Rev)
		if mt.Score <= 0 {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		st.setMatch(id, mt)
	}
	return freed
}
