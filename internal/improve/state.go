// Package improve implements the paper's primary contribution (§4): the
// iterative-improvement approximation algorithms for CSR.
//
//   - Full_Improve   (method I1, Theorem 4, ratio 3+ε for Full CSR)
//   - Border_Improve (methods I2/I3, Theorem 5, ratio 3+ε for Border CSR)
//   - CSR_Improve    (all methods, Theorem 6, ratio 3+ε for general CSR)
//
// The algorithms maintain a consistent set of matches (1- and 2-islands
// only), repeatedly evaluating improvement attempts — plugging a fragment
// into a prepared site (I1), forming a border match between two fragment
// ends (I2), or rewiring a 2-island (I3) — each followed by TPA runs (the
// ratio-2 two-phase interval-selection algorithm) over the zones the
// preparation exposed. Iteration counts are bounded by the
// Chandra–Halldórsson scaling rule of §4.1: only gains above X/k² are
// accepted, where X is a 4-approximate score and k bounds the match count.
package improve

import (
	"sort"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/symbol"
)

// state is the solver's working solution: a set of live matches keyed by
// stable IDs, plus fragments locked by the improvement attempt currently
// being simulated.
type state struct {
	in      *core.Instance
	matches map[int]core.Match
	nextID  int
	locked  map[core.FragRef]bool
}

func newState(in *core.Instance, seed *core.Solution) *state {
	st := &state{
		in:      in,
		matches: make(map[int]core.Match),
		locked:  make(map[core.FragRef]bool),
	}
	if seed != nil {
		for _, mt := range seed.Matches {
			st.matches[st.nextID] = mt
			st.nextID++
		}
	}
	return st
}

func (st *state) clone() *state {
	c := &state{
		in:      st.in,
		matches: make(map[int]core.Match, len(st.matches)),
		nextID:  st.nextID,
		locked:  make(map[core.FragRef]bool, len(st.locked)),
	}
	for id, mt := range st.matches {
		c.matches[id] = mt
	}
	for fr := range st.locked {
		c.locked[fr] = true
	}
	return c
}

// score sums in sorted-ID order so that a simulation and its replay (which
// allocate identical IDs) produce bit-identical totals.
func (st *state) score() float64 {
	t := 0.0
	for _, id := range st.matchIDs() {
		t += st.matches[id].Score
	}
	return t
}

func (st *state) solution() *core.Solution {
	ids := st.matchIDs()
	sol := &core.Solution{Matches: make([]core.Match, 0, len(ids))}
	for _, id := range ids {
		sol.Matches = append(sol.Matches, st.matches[id])
	}
	return sol
}

// matchIDs returns the live match IDs in deterministic order.
func (st *state) matchIDs() []int {
	ids := make([]int, 0, len(st.matches))
	for id := range st.matches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (st *state) addMatch(mt core.Match) int {
	id := st.nextID
	st.nextID++
	st.matches[id] = mt
	return id
}

// fragMatchIDs returns the IDs of matches touching fragment fr, sorted by
// site position.
func (st *state) fragMatchIDs(fr core.FragRef) []int {
	var ids []int
	for id, mt := range st.matches {
		if mt.Side(fr.Sp).Frag == fr.Idx {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		sa := st.matches[ids[a]].Side(fr.Sp).Lo
		sb := st.matches[ids[b]].Side(fr.Sp).Lo
		if sa != sb {
			return sa < sb
		}
		return ids[a] < ids[b]
	})
	return ids
}

func (st *state) degree(fr core.FragRef) int {
	n := 0
	for _, mt := range st.matches {
		if mt.Side(fr.Sp).Frag == fr.Idx {
			n++
		}
	}
	return n
}

// contribution is Cb(f, S): the total score of matches touching fr.
// Summation follows sorted match IDs for bit-stable float totals.
func (st *state) contribution(fr core.FragRef) float64 {
	t := 0.0
	for _, id := range st.fragMatchIDs(fr) {
		t += st.matches[id].Score
	}
	return t
}

// chainMatchIDs returns fr's matches whose both fragments participate in
// ≥ 2 matches — the 2-island links.
func (st *state) chainMatchIDs(fr core.FragRef) []int {
	var out []int
	for _, id := range st.fragMatchIDs(fr) {
		mt := st.matches[id]
		h := core.FragRef{Sp: core.SpeciesH, Idx: mt.HSite.Frag}
		m := core.FragRef{Sp: core.SpeciesM, Idx: mt.MSite.Frag}
		if st.degree(h) >= 2 && st.degree(m) >= 2 {
			out = append(out, id)
		}
	}
	return out
}

// sitesOn returns the sites occupied on fragment fr, sorted.
func (st *state) sitesOn(fr core.FragRef) []core.Site {
	ids := st.fragMatchIDs(fr)
	out := make([]core.Site, 0, len(ids))
	for _, id := range ids {
		out = append(out, st.matches[id].Side(fr.Sp))
	}
	return out
}

// freeGaps returns the maximal unoccupied intervals of fragment fr.
func (st *state) freeGaps(fr core.FragRef) [][2]int {
	n := st.in.Frag(fr.Sp, fr.Idx).Len()
	var out [][2]int
	pos := 0
	for _, s := range st.sitesOn(fr) {
		if s.Lo > pos {
			out = append(out, [2]int{pos, s.Lo})
		}
		pos = s.Hi
	}
	if pos < n {
		out = append(out, [2]int{pos, n})
	}
	return out
}

// clipFree intersects [lo, hi) on fr with the free space, returning the
// free sub-intervals.
func (st *state) clipFree(fr core.FragRef, lo, hi int) [][2]int {
	var out [][2]int
	for _, g := range st.freeGaps(fr) {
		a, b := max(g[0], lo), min(g[1], hi)
		if a < b {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// sigmaFor returns a scorer whose first argument is a word of species sp —
// the instance's σ for H, the transposed σ for M.
func (st *state) sigmaFor(sp core.Species) score.Scorer {
	if sp == core.SpeciesH {
		return st.in.Sigma
	}
	return transposed{st.in.Sigma}
}

type transposed struct{ base score.Scorer }

func (t transposed) Score(a, b symbol.Symbol) float64 { return t.base.Score(b, a) }

// mkMatch builds a match pairing the full fragment x against the window
// [lo, hi) of fragment z of the other species, with x oriented by rev.
// The cached score is recomputed canonically.
func (st *state) mkMatch(x core.FragRef, rev bool, z core.FragRef, lo, hi int) core.Match {
	xSite := core.Site{Species: x.Sp, Frag: x.Idx, Lo: 0, Hi: st.in.Frag(x.Sp, x.Idx).Len()}
	zSite := core.Site{Species: z.Sp, Frag: z.Idx, Lo: lo, Hi: hi}
	var mt core.Match
	if x.Sp == core.SpeciesH {
		mt = core.Match{HSite: xSite, MSite: zSite, Rev: rev}
	} else {
		mt = core.Match{HSite: zSite, MSite: xSite, Rev: rev}
	}
	mt.Score = align.Score(st.in.SiteWord(mt.HSite), st.in.SiteWord(mt.MSite).Orient(mt.Rev), st.in.Sigma)
	return mt
}

// removeMatch deletes a match and returns it.
func (st *state) removeMatch(id int) core.Match {
	mt := st.matches[id]
	delete(st.matches, id)
	return mt
}

// otherSite returns the site of match mt on the species opposite to sp.
func otherSite(mt core.Match, sp core.Species) core.Site {
	return mt.Side(sp.Other())
}

// prepare makes the window [lo, hi) on fragment fr usable for a new match,
// following the §4.2/§4.3 preparation rules:
//
//   - if fr is the multiple fragment of a 2-island, the island is broken
//     first (its chain matches are removed);
//   - a satellite match — the partner plugged in with a full site — that
//     overlaps the window is restricted on fr's side to the part outside
//     the window and re-scored (the paper's Mult(S) rule; the satellite
//     keeps its full site, so the island stays a caterpillar);
//   - any other overlapping match (the partner side is not full, so
//     restricting fr's side would leave a match with no full or border
//     structure) is removed outright, mirroring the paper's Simp(S)
//     "detach" rule.
//
// It returns the partner sites freed by removals — the TPA zones of the
// calling improvement method. Preparing a hidden window is the caller's
// responsibility to avoid; windows bounded by existing site endpoints are
// never hidden.
func (st *state) prepare(fr core.FragRef, lo, hi int) (freed []core.Site) {
	for _, id := range st.fragMatchIDs(fr) {
		mt := st.matches[id]
		s := mt.Side(fr.Sp)
		partner := otherSite(mt, fr.Sp)
		partnerFull := st.in.Kind(partner) == core.KindFull
		myFull := st.in.Kind(s) == core.KindFull
		if !partnerFull && !myFull {
			// Border match: remove regardless of overlap — the general
			// form of the paper's "break the 2-island first" rule. Border
			// claims may only ever exist at a fragment's extremes, and a
			// fragment being rewired must shed them so the new link is its
			// only claim on that end structure.
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		if s.Hi <= lo || hi <= s.Lo {
			continue // disjoint from the window
		}
		if !partnerFull || (lo <= s.Lo && s.Hi <= hi) {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		// Partial overlap with a plugged-in satellite: restrict fr's side
		// to the part outside the window. The window is never strictly
		// inside the site (callers use site-boundary windows), so the
		// remainder is one interval.
		ns := s
		if s.Lo < lo {
			ns.Hi = lo
		} else {
			ns.Lo = hi
		}
		if ns.Lo >= ns.Hi {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		mt.SetSide(fr.Sp, ns)
		mt.Score = align.Score(st.in.SiteWord(mt.HSite), st.in.SiteWord(mt.MSite).Orient(mt.Rev), st.in.Sigma)
		if mt.Score <= 0 {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		st.matches[id] = mt
	}
	return freed
}
