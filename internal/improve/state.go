// Package improve implements the paper's primary contribution (§4): the
// iterative-improvement approximation algorithms for CSR.
//
//   - Full_Improve   (method I1, Theorem 4, ratio 3+ε for Full CSR)
//   - Border_Improve (methods I2/I3, Theorem 5, ratio 3+ε for Border CSR)
//   - CSR_Improve    (all methods, Theorem 6, ratio 3+ε for general CSR)
//
// The algorithms maintain a consistent set of matches (1- and 2-islands
// only), repeatedly evaluating improvement attempts — plugging a fragment
// into a prepared site (I1), forming a border match between two fragment
// ends (I2), or rewiring a 2-island (I3) — each followed by TPA runs (the
// ratio-2 two-phase interval-selection algorithm) over the zones the
// preparation exposed. Iteration counts are bounded by the
// Chandra–Halldórsson scaling rule of §4.1: only gains above X/k² are
// accepted, where X is a 4-approximate score and k bounds the match count.
//
// # Evaluation fast path
//
// The driver compiles σ into a dense matrix once per solve (score.Compile)
// and shares it — together with a site-word alignment memo and a Pareto
// placement memo, both keyed purely by instance data — across every
// simulation, TPA batch, and replay. Candidate gains are evaluated
// incrementally: each simulation records the fragments whose match data it
// read, accepted attempts bump per-fragment version counters, and a cached
// gain is reused whenever its recorded read set is untouched. The same
// version counters drive the incremental candidate-enumeration subsystem
// (internal/improve/enum), which re-enumerates only the attempt windows
// that read a dirty fragment. The recorded gains are bit-identical to fresh
// evaluation (see incremental.go for the invariants), so the incremental
// driver accepts exactly the same attempt sequence as full per-round
// re-enumeration and re-evaluation (Options.FullReeval).
package improve

import (
	"context"
	"sync"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/improve/enum"
	"repro/internal/isp"
	"repro/internal/score"
	"repro/internal/symbol"
)

// versions is the live state's per-fragment version counters, bumped
// whenever a match touching a fragment is added, removed, or restricted.
// Both the gain cache and the enumeration piece cache invalidate on them.
type versions struct {
	v [2][]uint64
}

func newVersions(in *core.Instance) *versions {
	var vs versions
	vs.v[core.SpeciesH] = make([]uint64, in.NumFrags(core.SpeciesH))
	vs.v[core.SpeciesM] = make([]uint64, in.NumFrags(core.SpeciesM))
	return &vs
}

// of returns the current version of fragment fr.
func (vs *versions) of(fr core.FragRef) uint64 { return vs.v[fr.Sp][fr.Idx] }

// state is the solver's working solution: a set of live matches keyed by
// stable IDs, plus fragments locked by the improvement attempt currently
// being simulated.
//
// Storage is slice-backed throughout — match IDs are indices into a dense
// slice with a liveness mask, and the per-fragment match index is a slice
// of small ID lists — so cloning a state for a candidate simulation is a
// handful of memcpys instead of map rebuilds, and clones are recycled
// through a pool (clone/release) to make steady-state simulation
// allocation-free.
//
// Shared across the whole solve (pointers copied by clone): the compiled σ
// matrices sig/sigT and the site-alignment memo. Owned per state: the match
// set and the attempt gain accumulator delta. The live driver state
// additionally owns the per-fragment version counters vers (clones drop
// them); simulations may carry a readRecorder rec and a cancellation probe
// ctx (clones keep both).
type state struct {
	in *core.Instance
	// matches is the ID-indexed match store; alive masks the live entries
	// and free recycles dead IDs (LIFO), keeping the store at roughly the
	// live match count so clones stay small. ID allocation is still fully
	// deterministic: a simulation and its replay perform the same operation
	// sequence from the same start state (free list included), so they
	// allocate identical IDs — and a cached gain's validity implies its
	// referenced IDs are unchanged, since freeing an ID bumps the versions
	// of the fragments its match touched.
	matches []core.Match
	alive   []bool
	free    []int32
	// byFrag[sp] indexes the IDs of live matches by the fragment of species
	// sp they touch, arena-backed (fragindex.go) so clones copy four flat
	// slices per species. Lists are unsorted; fragMatchIDs sorts a copy on
	// demand.
	byFrag [2]fragIndex
	// locked lists fragments pinned by the attempt being simulated (at most
	// a few entries; linear scans beat a map here).
	locked []core.FragRef

	// pairs is the solve's candidate pair universe (never nil): dense under
	// classic enumeration, sparse under seeded candidate generation. Every
	// pair-producing loop — enumeration, I3's internal I2 scan, TPA's
	// cross-fragment sweep — iterates it instead of all nh×nm pairs.
	pairs *enum.PairSet

	sig   score.Scorer // σ prepared over the instance alphabet (dense float64 or int32-quantized)
	sigT  score.Scorer // σᵀ for M-first alignments
	memo  *alignMemo
	pmemo *placeMemo
	// scr is the goroutine-local alignment scratch arena, never nil: the
	// driver's on the live state, an eval worker's on the simulations it
	// runs. Clones inherit it (correct for same-goroutine sub-simulations);
	// the driver overwrites it with the worker's arena before a simulation
	// crosses goroutines (see eval in driver.go).
	scr *align.Scratch
	// revWords[sp][i] is fragment i of species sp reversed, materialized
	// once per solve (shared by clones) so hot loops never re-allocate it.
	revWords [2][]symbol.Word

	// delta accumulates the score change of the attempt being applied:
	// +score on add, −score on remove, the difference on restriction.
	delta float64
	// vers is the live state's per-fragment version counters (nil on
	// clones: simulations never bump live versions).
	vers *versions
	// bumpLog, when non-nil on the live state, collects every fragment
	// whose version bumps during an accepted-attempt replay — the lazy
	// selection engine's dirty set (selection.go). Fragments may repeat;
	// consumers sweep idempotently. Nil on clones and on eager replays.
	bumpLog []core.FragRef
	// rec records fragment reads during a simulation (nil on the live
	// state and on replays).
	rec *readRecorder
	// ctx, when non-nil, is the solve's cancellation probe: long-running
	// simulation work (the TPA batches) aborts early once it fires. Only
	// simulations carry it — the live state and replays keep it nil, so an
	// accepted attempt is always applied atomically.
	ctx context.Context

	// Per-state scratch buffers, reused across the thousands of accessor
	// calls one simulation makes and — because simulation states are
	// pool-recycled (clone/release) — across every simulation a pooled
	// object ever serves. Each holds transient results valid only until the
	// next call of its producer; no producer is re-entered while a caller
	// still iterates its result (the accessors document this contract).
	// They are owned per state object: clone() leaves them alone and
	// release() keeps their capacity in the pool.
	idsBuf   []int          // fragMatchIDs result
	sitesBuf []core.Site    // sitesOn result
	gapsBuf  [][2]int       // freeGaps result
	clipBuf  [][2]int       // clipFree result (distinct: iterates gapsBuf)
	freedBuf []core.Site    // prepare's freed-zone accumulator (caller-reset)
	zonesBuf []core.Site    // runI2's remnant-zone list
	tpaZrs   []tpaZone      // tpaBatch zone records
	tpaCands []tpaCand      // tpaBatch candidate list
	tpaIvs   []isp.Interval // tpaBatch ISP intervals
	tpaHz    []core.Site    // tpa species split, H side
	tpaMz    []core.Site    // tpa species split, M side
	ispScr   *isp.Scratch   // two-phase selection scratch, lazily created
}

func newState(in *core.Instance, seed *core.Solution) *state {
	sig := score.Prepare(in.Sigma, in.MaxSymbolID())
	st := &state{
		in:    in,
		pairs: enum.AllPairs(in.NumFrags(core.SpeciesH), in.NumFrags(core.SpeciesM)),
		sig:   sig,
		sigT:  score.Transpose(sig),
		memo:  newAlignMemo(),
		pmemo: newPlaceMemo(),
		scr:   align.NewScratch(),
		vers:  newVersions(in),
	}
	for _, sp := range []core.Species{core.SpeciesH, core.SpeciesM} {
		frags := in.Frags(sp)
		st.byFrag[sp].reset(len(frags))
		st.revWords[sp] = make([]symbol.Word, len(frags))
		for i := range frags {
			st.revWords[sp][i] = frags[i].Regions.Rev()
		}
	}
	if seed != nil {
		for _, mt := range seed.Matches {
			id := len(st.matches)
			st.matches = append(st.matches, mt)
			st.alive = append(st.alive, true)
			st.index(id, mt)
		}
	}
	return st
}

// index adds match id to both fragments' ID lists.
func (st *state) index(id int, mt core.Match) {
	st.byFrag[core.SpeciesH].add(mt.HSite.Frag, int32(id))
	st.byFrag[core.SpeciesM].add(mt.MSite.Frag, int32(id))
}

// unindex removes match id from both fragments' ID lists.
func (st *state) unindex(id int, mt core.Match) {
	st.byFrag[core.SpeciesH].remove(mt.HSite.Frag, int32(id))
	st.byFrag[core.SpeciesM].remove(mt.MSite.Frag, int32(id))
}

// statePool recycles simulation clones: candidate evaluation clones the
// live state thousands of times per round, and the backing arrays of a
// released clone are reused wholesale by the next one.
var statePool = sync.Pool{New: func() any { return new(state) }}

// clone returns a pooled copy of st for simulation. The caller must release
// it when the simulation is done and must not use it afterwards.
func (st *state) clone() *state {
	c := statePool.Get().(*state)
	c.in = st.in
	c.matches = append(c.matches[:0], st.matches...)
	c.alive = append(c.alive[:0], st.alive...)
	c.free = append(c.free[:0], st.free...)
	c.byFrag[0].copyFrom(&st.byFrag[0])
	c.byFrag[1].copyFrom(&st.byFrag[1])
	c.locked = append(c.locked[:0], st.locked...)
	c.pairs = st.pairs
	c.sig, c.sigT = st.sig, st.sigT
	c.memo, c.pmemo = st.memo, st.pmemo
	c.scr = st.scr // overwritten by the worker on cross-goroutine evals
	c.revWords = st.revWords
	c.delta = st.delta
	c.vers = nil    // simulations never bump live versions
	c.bumpLog = nil // (and therefore never log bumps)
	c.rec = st.rec  // sub-simulations keep recording
	c.ctx = st.ctx  // sub-simulations stay cancelable
	return c
}

// release returns a simulation clone to the pool, dropping its references
// to solve-shared structures.
func (st *state) release() {
	st.in = nil
	st.pairs = nil
	st.sig, st.sigT = nil, nil
	st.memo, st.pmemo = nil, nil
	st.scr = nil
	st.revWords = [2][]symbol.Word{}
	st.vers = nil
	st.bumpLog = nil
	st.rec = nil
	st.ctx = nil
	statePool.Put(st)
}

// note records a read of fragment fr's match data during a simulation.
func (st *state) note(fr core.FragRef) {
	if st.rec != nil {
		st.rec.note(fr)
	}
}

// bump advances the version of both fragments a match touches (live state
// only; a no-op on simulations), logging them when a bump log is attached.
func (st *state) bump(mt core.Match) {
	if st.vers == nil {
		return
	}
	st.vers.v[core.SpeciesH][mt.HSite.Frag]++
	st.vers.v[core.SpeciesM][mt.MSite.Frag]++
	if st.bumpLog != nil {
		st.bumpLog = append(st.bumpLog,
			core.FragRef{Sp: core.SpeciesH, Idx: mt.HSite.Frag},
			core.FragRef{Sp: core.SpeciesM, Idx: mt.MSite.Frag})
	}
}

// isLive reports whether match id exists in this state.
func (st *state) isLive(id int) bool {
	return id >= 0 && id < len(st.alive) && st.alive[id]
}

// lock pins fr for the duration of an attempt simulation.
func (st *state) lock(fr core.FragRef) { st.locked = append(st.locked, fr) }

// unlock releases the most recent lock on fr.
func (st *state) unlock(fr core.FragRef) {
	for i := len(st.locked) - 1; i >= 0; i-- {
		if st.locked[i] == fr {
			st.locked = append(st.locked[:i], st.locked[i+1:]...)
			return
		}
	}
}

// isLocked reports whether fr is pinned by the running attempt.
func (st *state) isLocked(fr core.FragRef) bool {
	for _, l := range st.locked {
		if l == fr {
			return true
		}
	}
	return false
}

// score sums in ascending-ID order so that a simulation and its replay
// (which allocate identical IDs) produce bit-identical totals.
func (st *state) score() float64 {
	t := 0.0
	for id, ok := range st.alive {
		if ok {
			t += st.matches[id].Score
		}
	}
	return t
}

func (st *state) solution() *core.Solution {
	sol := &core.Solution{}
	for id, ok := range st.alive {
		if ok {
			sol.Matches = append(sol.Matches, st.matches[id])
		}
	}
	return sol
}

// matchIDs returns the live match IDs in deterministic (ascending) order.
func (st *state) matchIDs() []int {
	ids := make([]int, 0, len(st.alive))
	for id, ok := range st.alive {
		if ok {
			ids = append(ids, id)
		}
	}
	return ids
}

func (st *state) addMatch(mt core.Match) int {
	var id int
	if n := len(st.free); n > 0 {
		id = int(st.free[n-1])
		st.free = st.free[:n-1]
		st.matches[id] = mt
		st.alive[id] = true
	} else {
		id = len(st.matches)
		st.matches = append(st.matches, mt)
		st.alive = append(st.alive, true)
	}
	st.index(id, mt)
	st.delta += mt.Score
	st.bump(mt)
	return id
}

// setMatch replaces match id in place (site restriction), keeping its ID.
func (st *state) setMatch(id int, mt core.Match) {
	old := st.matches[id]
	st.matches[id] = mt
	st.delta += mt.Score - old.Score
	st.bump(mt)
}

// fragMatchIDs returns the IDs of matches touching fragment fr, sorted by
// site position (ties by ID — a unique total order, so any sort yields the
// same sequence). The result lives in a per-state buffer, valid until the
// next call: callers may mutate match state while iterating it, but never
// re-enter fragMatchIDs mid-iteration. Lists are a handful of entries, so
// an allocation-free insertion sort beats the reflective sort.Slice that
// used to dominate this accessor.
func (st *state) fragMatchIDs(fr core.FragRef) []int {
	if cap(st.idsBuf) < 16 {
		st.idsBuf = make([]int, 0, 16)
	}
	st.idsBuf = st.fragMatchIDsInto(st.idsBuf, fr)
	return st.idsBuf
}

// fragMatchIDsInto is fragMatchIDs into a caller-owned buffer — the
// concurrency-safe form the enumeration Source adapter uses while refresh
// tasks query the quiescent state from several pool workers at once.
func (st *state) fragMatchIDsInto(dst []int, fr core.FragRef) []int {
	st.note(fr)
	idx := st.byFrag[fr.Sp].list(fr.Idx)
	dst = dst[:0]
	for _, v := range idx {
		dst = append(dst, int(v))
	}
	key := func(id int) int { return st.matches[id].Side(fr.Sp).Lo }
	for i := 1; i < len(dst); i++ {
		id, lo := dst[i], key(dst[i])
		j := i - 1
		for j >= 0 && (key(dst[j]) > lo || (key(dst[j]) == lo && dst[j] > id)) {
			dst[j+1] = dst[j]
			j--
		}
		dst[j+1] = id
	}
	return dst
}

func (st *state) degree(fr core.FragRef) int {
	st.note(fr)
	return int(st.byFrag[fr.Sp].ln[fr.Idx])
}

// contribution is Cb(f, S): the total score of matches touching fr.
// Summation follows sorted match IDs for bit-stable float totals.
func (st *state) contribution(fr core.FragRef) float64 {
	t := 0.0
	for _, id := range st.fragMatchIDs(fr) {
		t += st.matches[id].Score
	}
	return t
}

// chainMatchIDs returns fr's matches whose both fragments participate in
// ≥ 2 matches — the 2-island links.
func (st *state) chainMatchIDs(fr core.FragRef) []int {
	var out []int
	for _, id := range st.fragMatchIDs(fr) {
		mt := st.matches[id]
		h := core.FragRef{Sp: core.SpeciesH, Idx: mt.HSite.Frag}
		m := core.FragRef{Sp: core.SpeciesM, Idx: mt.MSite.Frag}
		if st.degree(h) >= 2 && st.degree(m) >= 2 {
			out = append(out, id)
		}
	}
	return out
}

// sitesOn returns the sites occupied on fragment fr, sorted. The result is
// a per-state buffer, valid until the next call (the enum Source interface
// documents the same transience).
func (st *state) sitesOn(fr core.FragRef) []core.Site {
	ids := st.fragMatchIDs(fr)
	out := st.sitesBuf[:0]
	for _, id := range ids {
		out = append(out, st.matches[id].Side(fr.Sp))
	}
	st.sitesBuf = out
	return out
}

// freeGaps returns the maximal unoccupied intervals of fragment fr, in a
// per-state buffer valid until the next call.
func (st *state) freeGaps(fr core.FragRef) [][2]int {
	n := st.in.Frag(fr.Sp, fr.Idx).Len()
	out := st.gapsBuf[:0]
	pos := 0
	for _, s := range st.sitesOn(fr) {
		if s.Lo > pos {
			out = append(out, [2]int{pos, s.Lo})
		}
		pos = s.Hi
	}
	if pos < n {
		out = append(out, [2]int{pos, n})
	}
	st.gapsBuf = out
	return out
}

// clipFree intersects [lo, hi) on fr with the free space, returning the
// free sub-intervals in a per-state buffer (distinct from freeGaps's, which
// it iterates) valid until the next call.
func (st *state) clipFree(fr core.FragRef, lo, hi int) [][2]int {
	out := st.clipBuf[:0]
	for _, g := range st.freeGaps(fr) {
		a, b := max(g[0], lo), min(g[1], hi)
		if a < b {
			out = append(out, [2]int{a, b})
		}
	}
	st.clipBuf = out
	return out
}

// sigmaFor returns the compiled scorer whose first argument is a word of
// species sp — σ for H, the transposed σ for M.
func (st *state) sigmaFor(sp core.Species) score.Scorer {
	if sp == core.SpeciesH {
		return st.sig
	}
	return st.sigT
}

// placement aliases align.Placement for the placeMemo declarations.
type placement = align.Placement

// placements returns the Pareto fit-placement frontier of fragment x at
// orientation rev inside the window [lo, hi) of fragment z, memoized for
// the lifetime of the solve. The returned slice is shared: callers must not
// modify it.
func (st *state) placements(x core.FragRef, rev bool, z core.FragRef, lo, hi int) []placement {
	k := mkPlaceKey(x, rev, z, lo, hi)
	if v, ok := st.pmemo.get(k); ok {
		return v
	}
	zoneWord := st.in.Frag(z.Sp, z.Idx).Regions[lo:hi]
	v := st.scr.Placements(st.fragWord(x, rev), zoneWord, st.sigmaFor(x.Sp), 0)
	st.pmemo.put(k, v)
	return v
}

// fragWord returns the full region word of fragment fr at the given
// orientation without allocating.
func (st *state) fragWord(fr core.FragRef, rev bool) symbol.Word {
	if rev {
		return st.revWords[fr.Sp][fr.Idx]
	}
	return st.in.Frag(fr.Sp, fr.Idx).Regions
}

// siteScore returns MS of the H-site h against the M-site m at orientation
// rev, memoized for the lifetime of the solve (the score depends only on
// the instance words and σ).
func (st *state) siteScore(h, m core.Site, rev bool) float64 {
	k := mkAlignKey(h, m, rev)
	if v, ok := st.memo.get(k); ok {
		return v
	}
	v := st.scr.Score(st.in.SiteWord(h), st.in.SiteWord(m).Orient(rev), st.sig)
	st.memo.put(k, v)
	return v
}

// mkMatch builds a match pairing the full fragment x against the window
// [lo, hi) of fragment z of the other species, with x oriented by rev.
// The cached score is recomputed canonically.
func (st *state) mkMatch(x core.FragRef, rev bool, z core.FragRef, lo, hi int) core.Match {
	xSite := core.Site{Species: x.Sp, Frag: x.Idx, Lo: 0, Hi: st.in.Frag(x.Sp, x.Idx).Len()}
	zSite := core.Site{Species: z.Sp, Frag: z.Idx, Lo: lo, Hi: hi}
	var mt core.Match
	if x.Sp == core.SpeciesH {
		mt = core.Match{HSite: xSite, MSite: zSite, Rev: rev}
	} else {
		mt = core.Match{HSite: zSite, MSite: xSite, Rev: rev}
	}
	mt.Score = st.siteScore(mt.HSite, mt.MSite, mt.Rev)
	return mt
}

// removeMatch deletes a match and returns it.
func (st *state) removeMatch(id int) core.Match {
	mt := st.matches[id]
	st.alive[id] = false
	st.free = append(st.free, int32(id))
	st.unindex(id, mt)
	st.delta -= mt.Score
	st.bump(mt)
	return mt
}

// otherSite returns the site of match mt on the species opposite to sp.
func otherSite(mt core.Match, sp core.Species) core.Site {
	return mt.Side(sp.Other())
}

// prepare makes the window [lo, hi) on fragment fr usable for a new match,
// following the §4.2/§4.3 preparation rules:
//
//   - if fr is the multiple fragment of a 2-island, the island is broken
//     first (its chain matches are removed);
//   - a satellite match — the partner plugged in with a full site — that
//     overlaps the window is restricted on fr's side to the part outside
//     the window and re-scored (the paper's Mult(S) rule; the satellite
//     keeps its full site, so the island stays a caterpillar);
//   - any other overlapping match (the partner side is not full, so
//     restricting fr's side would leave a match with no full or border
//     structure) is removed outright, mirroring the paper's Simp(S)
//     "detach" rule.
//
// It appends the partner sites freed by removals — the TPA zones of the
// calling improvement method — onto freed (callers pass a reusable buffer,
// typically st.freedBuf[:0], and may chain calls). Preparing a hidden
// window is the caller's responsibility to avoid; windows bounded by
// existing site endpoints are never hidden.
func (st *state) prepare(freed []core.Site, fr core.FragRef, lo, hi int) []core.Site {
	for _, id := range st.fragMatchIDs(fr) {
		mt := st.matches[id]
		s := mt.Side(fr.Sp)
		partner := otherSite(mt, fr.Sp)
		partnerFull := st.in.Kind(partner) == core.KindFull
		myFull := st.in.Kind(s) == core.KindFull
		if !partnerFull && !myFull {
			// Border match: remove regardless of overlap — the general
			// form of the paper's "break the 2-island first" rule. Border
			// claims may only ever exist at a fragment's extremes, and a
			// fragment being rewired must shed them so the new link is its
			// only claim on that end structure.
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		if s.Hi <= lo || hi <= s.Lo {
			continue // disjoint from the window
		}
		if !partnerFull || (lo <= s.Lo && s.Hi <= hi) {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		// Partial overlap with a plugged-in satellite: restrict fr's side
		// to the part outside the window. The window is never strictly
		// inside the site (callers use site-boundary windows), so the
		// remainder is one interval.
		ns := s
		if s.Lo < lo {
			ns.Hi = lo
		} else {
			ns.Lo = hi
		}
		if ns.Lo >= ns.Hi {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		mt.SetSide(fr.Sp, ns)
		mt.Score = st.siteScore(mt.HSite, mt.MSite, mt.Rev)
		if mt.Score <= 0 {
			st.removeMatch(id)
			freed = append(freed, partner)
			continue
		}
		st.setMatch(id, mt)
	}
	return freed
}
