package improve

// Test-only shims over the candKey dispatch: the driver itself works on
// enum.Cand keys straight from the Enumerator (see runCand), while the
// attempt tests build individual keys and apply them to hand-made states.

import (
	"repro/internal/core"
	"repro/internal/improve/enum"
)

// attempt wraps one candidate key for direct application in tests.
type attempt struct {
	key candKey
}

// run applies the attempt to st and returns the gain.
func (at attempt) run(st *state) float64 { return runCand(st, at.key) }

// kind returns the method label "I1", "I2" or "I3".
func (at attempt) kind() string { return at.key.Kind.String() }

// i1Attempt keys the I1 method: plug f into the window [wLo, wHi) on g.
func i1Attempt(f, g core.FragRef, wLo, wHi int) attempt {
	return attempt{key: candKey{Kind: enum.KindI1, F: f, G: g, A1: wLo, A2: wHi}}
}

// i2Attempt keys the I2 method: join fe of f (window depth fw) to ge of g
// (depth gw).
func i2Attempt(f core.FragRef, fe end, fw int, g core.FragRef, ge end, gw int) attempt {
	return attempt{key: candKey{Kind: enum.KindI2, F: f, G: g, A1: int(fe), A2: fw, B1: int(ge), B2: gw}}
}

// enumerate generates the candidate attempts for the current state from
// scratch — the non-incremental reference enumeration.
func enumerate(st *state, methods Methods) []attempt {
	en := enum.New(methods&FullOnly != 0, methods&BorderOnly != 0, nil)
	keys := en.Candidates(enumView{st: st}, nil)
	out := make([]attempt, len(keys))
	for i, k := range keys {
		out[i] = attempt{key: k}
	}
	return out
}
