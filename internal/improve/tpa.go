package improve

import (
	"slices"

	"repro/internal/core"
	"repro/internal/isp"
)

// tpa is the TPA(B, S) subroutine of §4.2: given a batch of zones (sites
// whose space is available), it builds the interval-selection instance with
// profit p(x, m̄) = MS(x, m̄) − Cb(x, S) over every candidate fragment of
// the opposite species and every Pareto-optimal placement inside every
// zone, runs the ratio-2 two-phase algorithm, and applies the selected
// matches: each selected fragment is detached from its current matches and
// plugged in full into its window. Locked fragments never participate.
//
// Zones are clipped against the current occupation first, so freed sites
// can be passed verbatim. Returns the net score change.
//
// Zones of the two species are processed as two sequential batches (H-side
// zones first): within one batch all new matches plug an opposite-species
// fragment in full, so a batch can never place a window onto a fragment
// that simultaneously receives a full-site match.
//
// On a simulation whose solve context has fired, TPA batches return
// immediately: the simulation's gain is garbage, but the driver discards
// every in-flight result on cancellation, and the live state (which never
// carries a context) is untouched — this is what makes per-instance
// cancellation sub-round even inside one long candidate evaluation.
func (st *state) tpa(zones []core.Site) float64 {
	hz, mz := st.tpaHz[:0], st.tpaMz[:0]
	for _, z := range zones {
		if z.Species == core.SpeciesH {
			hz = append(hz, z)
		} else {
			mz = append(mz, z)
		}
	}
	st.tpaHz, st.tpaMz = hz, mz
	gain := 0.0
	if len(hz) > 0 {
		gain += st.tpaBatch(hz)
	}
	if len(mz) > 0 {
		gain += st.tpaBatch(mz)
	}
	return gain
}

// tpaZone is one clipped zone record of a TPA batch; tpaCand one candidate
// placement. Both live in per-state buffers (state.tpaZrs / state.tpaCands)
// reused across the thousands of batches a pooled simulation state runs.
type tpaZone struct {
	fr   core.FragRef
	lo   int
	hi   int
	base int // ISP coordinate offset
}

type tpaCand struct {
	x      core.FragRef
	rev    bool
	zone   int // index into the zone records
	lo, hi int // window within the zone's fragment (absolute)
	score  float64
}

// tpaBatch runs one single-species TPA batch.
func (st *state) tpaBatch(zones []core.Site) float64 {
	if st.ctx != nil && st.ctx.Err() != nil {
		return 0 // canceled mid-simulation; the driver discards this gain
	}
	zrs := st.tpaZrs[:0]
	base := 0
	for _, z := range zones {
		fr := core.FragRef{Sp: z.Species, Idx: z.Frag}
		for _, g := range st.clipFree(fr, z.Lo, z.Hi) {
			zrs = append(zrs, tpaZone{fr: fr, lo: g[0], hi: g[1], base: base})
			base += g[1] - g[0] + 1
		}
	}
	st.tpaZrs = zrs
	if len(zrs) == 0 {
		return 0
	}
	// Merge duplicate zone records (two freed sites may clip to the same
	// gap).
	slices.SortFunc(zrs, func(a, b tpaZone) int {
		if a.fr.Sp != b.fr.Sp {
			return int(a.fr.Sp) - int(b.fr.Sp)
		}
		if a.fr.Idx != b.fr.Idx {
			return a.fr.Idx - b.fr.Idx
		}
		if a.lo != b.lo {
			return a.lo - b.lo
		}
		return a.hi - b.hi
	})
	dedup := zrs[:0]
	for _, z := range zrs {
		if len(dedup) > 0 {
			last := dedup[len(dedup)-1]
			if last.fr == z.fr && last.lo == z.lo && last.hi == z.hi {
				continue
			}
		}
		dedup = append(dedup, z)
	}
	zrs = dedup
	st.tpaZrs = zrs

	cands := st.tpaCands[:0]
	intervals := st.tpaIvs[:0]
	jobOf := func(fr core.FragRef) int {
		return int(fr.Sp)*max(len(st.in.H), len(st.in.M)) + fr.Idx
	}
	for zi, z := range zrs {
		sp := z.fr.Sp.Other()
		// Only pair-universe partners of the zone's fragment can place
		// positively into its freed window: a positive placement needs a
		// positive σ cell against the zone word, and the universe is a
		// superset of all positive-σ pairs (exhaustive mode) or the seeded
		// restriction of them. Ascending order matches the dense loop.
		for _, xi32 := range st.pairs.PartnersOf(z.fr) {
			x := core.FragRef{Sp: sp, Idx: int(xi32)}
			if st.isLocked(x) {
				continue
			}
			// Cb(x) is consulted lazily, only once x shows a positive
			// placement: a fragment with no placement in any zone cannot
			// influence the outcome, so the evaluation must not read (and
			// thereby depend on) its match set.
			cb, cbKnown := 0.0, false
			for o := 0; o < 2; o++ {
				rev := o == 1
				ps := st.placements(x, rev, z.fr, z.lo, z.hi)
				if len(ps) == 0 {
					continue
				}
				if !cbKnown {
					cb, cbKnown = st.contribution(x), true
				}
				for _, p := range ps {
					profit := p.Score - cb
					if profit <= 0 {
						continue
					}
					cands = append(cands, tpaCand{
						x: x, rev: rev, zone: zi,
						lo: z.lo + p.Lo, hi: z.lo + p.Hi,
						score: p.Score,
					})
					intervals = append(intervals, isp.Interval{
						ID:     len(cands) - 1,
						Job:    jobOf(x),
						Lo:     zrs[zi].base + p.Lo,
						Hi:     zrs[zi].base + p.Hi,
						Profit: profit,
					})
				}
			}
		}
	}
	st.tpaCands, st.tpaIvs = cands, intervals
	if len(intervals) == 0 {
		return 0
	}
	if st.ispScr == nil {
		st.ispScr = new(isp.Scratch)
	}
	res := isp.TwoPhaseScratch(st.ispScr, intervals, 2*max(len(st.in.H), len(st.in.M)))
	gain := 0.0
	// Deterministic application order.
	slices.SortFunc(res.Selected, func(a, b isp.Interval) int { return a.ID - b.ID })
	for _, iv := range res.Selected {
		c := cands[iv.ID]
		// Detach x from its current matches.
		for _, id := range st.fragMatchIDs(c.x) {
			gain -= st.matches[id].Score
			st.removeMatch(id)
		}
		mt := st.mkMatch(c.x, c.rev, zrs[c.zone].fr, c.lo, c.hi)
		st.addMatch(mt)
		gain += mt.Score
	}
	return gain
}
