package improve

// fragIndex is the per-species fragment → live-match-ID index, arena-backed
// so a simulation clone is four memcpys instead of a per-fragment slice
// loop: fragment f's ID list occupies ids[off[f] : off[f]+ln[f]] inside a
// reserved block of cp[f] cells. Lists grow by relocating to the arena end
// with doubled capacity (the abandoned block stays behind as garbage), and
// the arena compacts deterministically once garbage dominates. List order is
// insertion order perturbed by swap-deletes — callers must not depend on it
// (fragMatchIDsInto sorts; degree only counts).
//
// Every operation is a pure function of the operation sequence, so a
// simulation and its replay — and a clone and its source — hold identical
// layouts, preserving the driver's determinism invariants.
type fragIndex struct {
	ids []int32
	off []int32
	ln  []int32
	cp  []int32
	// sumCp tracks Σ cp (live capacity); the arena compacts when its length
	// exceeds 4× this, bounding both memory and clone cost at a small
	// multiple of the live index size.
	sumCp int32
	// tmp is the compaction double-buffer, swapped with ids each pass so
	// steady-state compaction allocates nothing.
	tmp []int32
}

// reset sizes the index for n fragments with all lists empty.
func (fi *fragIndex) reset(n int) {
	fi.ids = fi.ids[:0]
	if cap(fi.off) < n {
		fi.off = make([]int32, n)
		fi.ln = make([]int32, n)
		fi.cp = make([]int32, n)
	} else {
		fi.off, fi.ln, fi.cp = fi.off[:n], fi.ln[:n], fi.cp[:n]
	}
	clear(fi.off)
	clear(fi.ln)
	clear(fi.cp)
	fi.sumCp = 0
}

// list returns fragment f's ID list, valid until the next add on f.
func (fi *fragIndex) list(f int) []int32 {
	o := fi.off[f]
	return fi.ids[o : o+fi.ln[f]]
}

// add appends id to fragment f's list.
func (fi *fragIndex) add(f int, id int32) {
	if fi.ln[f] < fi.cp[f] {
		fi.ids[fi.off[f]+fi.ln[f]] = id
		fi.ln[f]++
		return
	}
	// Relocate to the arena end with doubled capacity (min 4).
	nc := max(4, 2*fi.cp[f])
	o := int32(len(fi.ids))
	fi.ids = append(fi.ids, fi.list(f)...)
	fi.ids = append(fi.ids, id)
	for int32(len(fi.ids)) < o+nc {
		fi.ids = append(fi.ids, 0)
	}
	fi.sumCp += nc - fi.cp[f]
	fi.off[f], fi.cp[f] = o, nc
	fi.ln[f]++
	if int32(len(fi.ids)) > 4*fi.sumCp {
		fi.compact()
	}
}

// remove swap-deletes id from fragment f's list.
func (fi *fragIndex) remove(f int, id int32) {
	l := fi.list(f)
	for i, v := range l {
		if v == id {
			l[i] = l[len(l)-1]
			fi.ln[f]--
			return
		}
	}
}

// compact rewrites every live block front-to-back (fragment order, so the
// result is a pure function of the logical index contents) into the spare
// buffer, then swaps buffers.
func (fi *fragIndex) compact() {
	tmp := fi.tmp
	if cap(tmp) < int(fi.sumCp) {
		tmp = make([]int32, fi.sumCp)
	}
	tmp = tmp[:fi.sumCp]
	w := int32(0)
	for f := range fi.off {
		copy(tmp[w:], fi.list(f))
		fi.off[f] = w
		w += fi.cp[f]
	}
	fi.tmp = fi.ids[:0]
	fi.ids = tmp
}

// copyFrom makes fi an exact layout copy of src.
func (fi *fragIndex) copyFrom(src *fragIndex) {
	fi.ids = append(fi.ids[:0], src.ids...)
	fi.off = append(fi.off[:0], src.off...)
	fi.ln = append(fi.ln[:0], src.ln...)
	fi.cp = append(fi.cp[:0], src.cp...)
	fi.sumCp = src.sumCp
}
