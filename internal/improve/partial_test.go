package improve

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/score"
)

// TestImprovePartialDegradesGracefully cancels the solver at every depth the
// deterministic probe can reach and checks the Partial contract: no error, a
// consistent solution whose accepted-attempt sequence is a prefix of the
// uncanceled run's, and a score that never falls below the seed.
func TestImprovePartialDegradesGracefully(t *testing.T) {
	cfg := gen.DefaultConfig(5)
	cfg.Regions = 40
	w := gen.Generate(cfg)
	in := w.Instance

	var fullAccepts []candKey
	full, fullStats, err := Improve(in, Options{
		Eps: 0.05, SeedWithFourApprox: true,
		onAccept: func(k candKey) { fullAccepts = append(fullAccepts, k) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.Partial {
		t.Fatal("uncanceled run reported Partial")
	}

	for _, after := range []int64{0, 1, 7, 50, 400, 100000} {
		var accepts []candKey
		ctx := newCountCtx(after)
		sol, stats, err := Improve(in, Options{
			Eps: 0.05, SeedWithFourApprox: true, Ctx: ctx, Partial: true,
			onAccept: func(k candKey) { accepts = append(accepts, k) },
		})
		if err != nil {
			t.Fatalf("after %d polls: err = %v, want graceful partial", after, err)
		}
		if sol == nil {
			t.Fatalf("after %d polls: nil solution", after)
		}
		if err := sol.Validate(in); err != nil {
			t.Fatalf("after %d polls: inconsistent partial solution: %v", after, err)
		}
		if _, err := sol.BuildConjecture(in); err != nil {
			t.Fatalf("after %d polls: unrealizable partial solution: %v", after, err)
		}
		if len(accepts) > len(fullAccepts) ||
			!reflect.DeepEqual(accepts, fullAccepts[:len(accepts)]) {
			t.Fatalf("after %d polls: accepted sequence %v is not a prefix of %v",
				after, accepts, fullAccepts)
		}
		if ctx.polls.Load() > after {
			// The probe actually fired mid-solve.
			if !stats.Partial {
				t.Fatalf("after %d polls: canceled run did not report Partial", after)
			}
			if sol.Score() > full.Score() {
				t.Fatalf("after %d polls: partial score %v exceeds converged %v",
					after, sol.Score(), full.Score())
			}
		} else {
			// The solve converged before the probe fired: identical to full.
			if stats.Partial {
				t.Fatalf("after %d polls: completed run reported Partial", after)
			}
			if sol.Score() != full.Score() || !reflect.DeepEqual(sol.Matches, full.Matches) {
				t.Fatalf("after %d polls: completed run diverged from reference", after)
			}
		}
	}
}

// TestImprovePartialQuantizedModes checks Partial propagates through the
// IntScore and Quantize shadow recursions, and that the partial solution's
// cached match scores are exact under the true σ (the dequantization
// boundary still runs).
func TestImprovePartialQuantizedModes(t *testing.T) {
	cfg := gen.DefaultConfig(9)
	cfg.Regions = 40
	w := gen.Generate(cfg)
	in := w.Instance
	for _, mode := range []struct {
		name string
		opt  Options
	}{
		{"int", Options{Eps: 0.05, SeedWithFourApprox: true, IntScore: true, Partial: true}},
		{"quantize", Options{Eps: 0.05, SeedWithFourApprox: true, Quantize: true, Partial: true}},
		{"quantize-int", Options{Eps: 0.05, SeedWithFourApprox: true, Quantize: true, IntScore: true, Partial: true}},
	} {
		opt := mode.opt
		ctx := newCountCtx(20)
		opt.Ctx = ctx
		sol, stats, err := Improve(in, opt)
		if err != nil {
			t.Fatalf("%s: err = %v, want graceful partial", mode.name, err)
		}
		if ctx.polls.Load() > 20 && !stats.Partial {
			t.Fatalf("%s: canceled run did not report Partial", mode.name)
		}
		if err := sol.Validate(in); err != nil {
			t.Fatalf("%s: inconsistent partial solution: %v", mode.name, err)
		}
		// Score exactness: re-scoring under the true σ must be a no-op.
		re := Rescore(in, sol, score.Prepare(in.Sigma, in.MaxSymbolID()))
		if re.Score() != sol.Score() {
			t.Fatalf("%s: partial score %v not exact under true σ (want %v)",
				mode.name, sol.Score(), re.Score())
		}
		if stats.Final != sol.Score() {
			t.Fatalf("%s: Stats.Final %v != solution score %v", mode.name, stats.Final, sol.Score())
		}
	}
}

// TestImprovePartialLazyEngine exercises the Partial path of the lazy
// selection engine specifically (the default path), including an immediate
// pre-round cancellation that must hand back the seed.
func TestImprovePartialLazyEngine(t *testing.T) {
	cfg := gen.DefaultConfig(11)
	cfg.Regions = 40
	w := gen.Generate(cfg)
	in := w.Instance
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the first round
	sol, stats, err := Improve(in, Options{
		Eps: 0.05, SeedWithFourApprox: true, Ctx: ctx, Partial: true,
	})
	if err != nil {
		t.Fatalf("err = %v, want graceful partial", err)
	}
	if !stats.Partial || stats.Accepted != 0 {
		t.Fatalf("pre-round cancel: stats %+v, want Partial with 0 accepts", stats)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatalf("seed hand-back invalid: %v", err)
	}
	if sol.Score() <= 0 {
		t.Fatalf("4-approx seed hand-back scored %v, want > 0", sol.Score())
	}
	// Without Partial the same cancellation is still the hard error.
	if _, _, err := Improve(in, Options{
		Eps: 0.05, SeedWithFourApprox: true, Ctx: ctx,
	}); err != context.Canceled {
		t.Fatalf("non-partial canceled run: err = %v, want context.Canceled", err)
	}
}
