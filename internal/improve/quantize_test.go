package improve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestQuantizedScalingPaperExample(t *testing.T) {
	in := core.PaperExample()
	sol, stats, err := Improve(in, Options{Quantize: true, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !sol.IsConsistent(in) {
		t.Fatal("quantized run inconsistent")
	}
	// Scores are integers here, so quantization is harmless: optimum 11.
	if sol.Score() != 11 {
		t.Fatalf("quantized score %v, want 11", sol.Score())
	}
	if stats.Threshold <= 0 {
		t.Fatal("quantum not reported")
	}
}

func TestFullImproveProducesOnlyFullMatches(t *testing.T) {
	// Full CSR restricts legal solutions to full matches; I1 from an empty
	// start must respect that (the plug and every TPA fill use a full
	// site, and restriction keeps the satellite side full).
	for seed := int64(40); seed < 46; seed++ {
		cfg := gen.DefaultConfig(seed)
		cfg.Regions = 25
		w := gen.Generate(cfg)
		sol, _, err := Improve(w.Instance, Options{Methods: FullOnly})
		if err != nil {
			t.Fatal(err)
		}
		for _, mt := range sol.Matches {
			if w.Instance.KindOf(mt) != core.FullMatch {
				t.Fatalf("seed %d: Full_Improve produced a %v match %v/%v",
					seed, w.Instance.KindOf(mt), mt.HSite, mt.MSite)
			}
		}
	}
}

func TestQuantizedScalingWorkloads(t *testing.T) {
	for seed := int64(30); seed < 34; seed++ {
		cfg := gen.DefaultConfig(seed)
		cfg.Regions = 30
		w := gen.Generate(cfg)
		qsol, qstats, err := Improve(w.Instance, Options{
			Quantize: true, SeedWithFourApprox: true, CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !qsol.IsConsistent(w.Instance) {
			t.Fatalf("seed %d: inconsistent", seed)
		}
		plain, _, err := Improve(w.Instance, Options{
			Eps: 0.05, SeedWithFourApprox: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Quantization underestimates by at most X/k per the §4.1 analysis;
		// in practice the results track the thresholded variant closely.
		if qsol.Score() < 0.9*plain.Score() {
			t.Fatalf("seed %d: quantized %v far below thresholded %v",
				seed, qsol.Score(), plain.Score())
		}
		// The scaling bound: accepted improvements ≤ 4k² (loose check).
		k := w.Instance.MaxMatches()
		if qstats.Accepted > 4*k*k {
			t.Fatalf("seed %d: %d improvements above the 4k² bound", seed, qstats.Accepted)
		}
	}
}
