package enum

import (
	"sort"

	"repro/internal/core"
)

// PairSet is the candidate fragment-pair universe of a solve: which
// (H fragment, M fragment) pairs enumeration and simulation may consider.
// The default universe is all nh×nm pairs (AllPairs), which reproduces
// classic all-pairs enumeration bit for bit — partner lists and ranks then
// come from arithmetic, with no per-pair storage. A sparse universe
// (NewPairSet, fed by the minimizer seeding pipeline) stores ascending
// partner lists both ways plus prefix offsets, so candidate slots stay
// dense (Rank) and per-fragment iteration stays ascending-order — the same
// iteration order the dense loops produce, restricted to surviving pairs.
type PairSet struct {
	nh, nm int
	all    bool
	// allH/allM are the shared identity partner lists of the dense mode.
	allH, allM []int32
	// mOf[fi] lists the M partners of H fragment fi, ascending; hOf[gi]
	// the H partners of M fragment gi. off[fi] is the rank of fi's first
	// pair in H-major order.
	mOf, hOf [][]int32
	off      []int32
}

// AllPairs returns the dense universe over nh×nm fragments.
func AllPairs(nh, nm int) *PairSet {
	p := &PairSet{nh: nh, nm: nm, all: true, allH: iota32(nh), allM: iota32(nm)}
	return p
}

// NewPairSet returns the sparse universe holding exactly the given
// (H index, M index) pairs (deduplicated; order irrelevant).
func NewPairSet(nh, nm int, pairs [][2]int32) *PairSet {
	sorted := make([][2]int32, len(pairs))
	copy(sorted, pairs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	p := &PairSet{
		nh:  nh,
		nm:  nm,
		mOf: make([][]int32, nh),
		hOf: make([][]int32, nm),
		off: make([]int32, nh+1),
	}
	mBuf := make([]int32, 0, len(sorted))
	hCnt := make([]int32, nm)
	for i, pr := range sorted {
		if i > 0 && pr == sorted[i-1] {
			continue
		}
		fi, gi := pr[0], pr[1]
		mBuf = append(mBuf, gi)
		p.off[fi+1]++
		hCnt[gi]++
	}
	for fi := 0; fi < nh; fi++ {
		p.off[fi+1] += p.off[fi]
		p.mOf[fi] = mBuf[p.off[fi]:p.off[fi+1]:p.off[fi+1]]
	}
	hBuf := make([]int32, len(mBuf))
	at := make([]int32, nm)
	for gi := 1; gi < nm; gi++ {
		at[gi] = at[gi-1] + hCnt[gi-1]
	}
	for gi, c := range hCnt {
		p.hOf[gi] = hBuf[at[gi] : at[gi] : at[gi]+c]
	}
	for fi := 0; fi < nh; fi++ {
		for _, gi := range p.mOf[fi] {
			p.hOf[gi] = append(p.hOf[gi], int32(fi))
		}
	}
	return p
}

func iota32(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// NumH and NumM return the universe's fragment counts.
func (p *PairSet) NumH() int { return p.nh }
func (p *PairSet) NumM() int { return p.nm }

// Dense reports whether the universe is all nh×nm pairs.
func (p *PairSet) Dense() bool { return p.all }

// Len returns the number of pairs in the universe.
func (p *PairSet) Len() int {
	if p.all {
		return p.nh * p.nm
	}
	return int(p.off[p.nh])
}

// MPartners returns the ascending M partner indices of H fragment fi. The
// slice is shared; callers must not modify it.
func (p *PairSet) MPartners(fi int) []int32 {
	if p.all {
		return p.allM
	}
	return p.mOf[fi]
}

// HPartners returns the ascending H partner indices of M fragment gi.
func (p *PairSet) HPartners(gi int) []int32 {
	if p.all {
		return p.allH
	}
	return p.hOf[gi]
}

// Rank returns the dense slot index of pair (fi, gi) in H-major order, or
// -1 when the pair is not in the universe.
func (p *PairSet) Rank(fi, gi int) int {
	if p.all {
		return fi*p.nm + gi
	}
	row := p.mOf[fi]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < int32(gi) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == int32(gi) {
		return int(p.off[fi]) + lo
	}
	return -1
}

// Contains reports whether pair (fi, gi) is in the universe.
func (p *PairSet) Contains(fi, gi int) bool { return p.Rank(fi, gi) >= 0 }

// PartnersOf returns the ascending opposite-species partner indices of the
// given fragment.
func (p *PairSet) PartnersOf(fr core.FragRef) []int32 {
	if fr.Sp == core.SpeciesH {
		return p.MPartners(fr.Idx)
	}
	return p.HPartners(fr.Idx)
}
