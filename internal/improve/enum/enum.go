// Package enum is the candidate-enumeration subsystem of the CSR
// improvement driver: it generates the I1/I2/I3 attempt candidates of §4.2–
// §4.4 for the current solver state, incrementally.
//
// Full enumeration is O(F²·W) per improvement round — every fragment pair
// times every preparation window — and between two rounds almost all of it
// is unchanged: an accepted attempt touches a handful of fragments, and only
// the candidate windows that read one of those fragments can differ. The
// Enumerator therefore caches enumeration per *piece* — the I1 target
// windows of one fragment, the I2 end depths of one fragment, the I3 chain
// links of one fragment — together with the read set (fragment → version)
// that produced it, exactly the invalidation scheme the driver's gain cache
// uses for simulations (see improve/incremental.go). Each round it
// re-enumerates only the dirty pieces and rebuilds the merged candidate list
// in the canonical order, so the output is always element-for-element
// identical to enumerating from scratch (the improve package enforces this
// against the Options.FullReeval oracle).
//
// Piece refreshes are independent closures; the driver may run them inline
// or shard them over the shared evaluation pool (improve.EvalPool), where
// they overlap with candidate simulations of concurrent batch solves.
//
// Two consumption modes share the piece cache. Candidates rebuilds the full
// merged candidate list each call — the eager driver's per-round input.
// Repair instead reports which pieces actually changed value, so the lazy
// best-first selection engine (improve/selection.go) can patch just the
// affected candidate blocks of its heap and leave everything else — cached
// gains included — untouched.
package enum

import (
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"repro/internal/core"
)

// Kind labels the improvement method that generates a candidate.
type Kind uint8

// Candidate kinds: the paper's improvement methods I1 (plug a fragment into
// a prepared window), I2 (form a border match between two fragment ends),
// and I3 (rewire a 2-island).
const (
	KindI1 Kind = 1 + iota
	KindI2
	KindI3
)

// String returns the method label "I1", "I2" or "I3".
func (k Kind) String() string {
	switch k {
	case KindI1:
		return "I1"
	case KindI2:
		return "I2"
	default:
		return "I3"
	}
}

// Cand is the structural identity of one improvement attempt: a flat
// comparable struct, usable directly as a cache key.
//
//	I1: A1, A2 = the window [A1, A2) on g.
//	I2: A1, A2 = f's end and depth; B1, B2 = g's end and depth.
//	I3: A1 = the chain match ID.
type Cand struct {
	Kind Kind
	F, G core.FragRef
	A1   int
	A2   int
	B1   int
	B2   int
}

// String renders the candidate for error messages (cold path only).
func (c Cand) String() string {
	switch c.Kind {
	case KindI1:
		return fmt.Sprintf("I1(%v→%v[%d,%d))", c.F, c.G, c.A1, c.A2)
	case KindI2:
		return fmt.Sprintf("I2(%v.%s:%d↔%v.%s:%d)", c.F, endLabel(c.A1), c.A2, c.G, endLabel(c.B1), c.B2)
	default:
		return fmt.Sprintf("I3(%v~%v#%d)", c.F, c.G, c.A1)
	}
}

// Less is the canonical total order on candidates, the driver's gain
// tie-break: among equal-gain attempts the Less-least candidate is accepted.
// It is consistent with the canonical enumeration order Candidates emits —
// I1 before I2 before I3; I1 by (species of F, F, G, window lo, window hi);
// I2 by (F, G, F's end, G's end, then depths, which AppendI2 emits in
// increasing order) — so for I1/I2 ties it selects exactly the first
// occurrence in the enumerated list. I3 candidates within one H fragment
// are ordered by chain-match ID (the only state-independent identity they
// carry; the enumerated list orders them by site position, which can differ
// — both selection engines therefore break I3 ties through Less, never
// through list position).
func Less(a, b Cand) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.F != b.F {
		if a.F.Sp != b.F.Sp {
			return a.F.Sp < b.F.Sp
		}
		return a.F.Idx < b.F.Idx
	}
	if a.G.Idx != b.G.Idx {
		return a.G.Idx < b.G.Idx
	}
	if a.Kind == KindI2 {
		// The enumeration nests ends outside depths: (fe, ge, fw, gw).
		if a.A1 != b.A1 {
			return a.A1 < b.A1
		}
		if a.B1 != b.B1 {
			return a.B1 < b.B1
		}
		if a.A2 != b.A2 {
			return a.A2 < b.A2
		}
		return a.B2 < b.B2
	}
	if a.A1 != b.A1 {
		return a.A1 < b.A1
	}
	if a.A2 != b.A2 {
		return a.A2 < b.A2
	}
	if a.B1 != b.B1 {
		return a.B1 < b.B1
	}
	return a.B2 < b.B2
}

// Fragment ends for I2 candidates.
const (
	LeftEnd  = 0
	RightEnd = 1
)

func endLabel(e int) string {
	if e == LeftEnd {
		return "L"
	}
	return "R"
}

// Chain is one I3 rewiring site: the chain match ID joining an H fragment
// to its M partner G.
type Chain struct {
	ID int
	G  core.FragRef
}

// Reads is a recorded read set: every fragment a piece's enumeration
// consulted, with the live version at read time. A cached piece is reusable
// iff every recorded fragment still has its recorded version.
type Reads map[core.FragRef]uint64

// Note records a read of fr at version v (first read wins, matching the
// recording rule of the driver's simulation recorder).
func (r Reads) Note(fr core.FragRef, v uint64) {
	if _, ok := r[fr]; !ok {
		r[fr] = v
	}
}

// Source is the read-only view of the solver state the Enumerator consumes.
// Implementations must record every fragment a query reads into the passed
// Reads set; queries must be safe for concurrent use while the state is
// quiescent (the driver enumerates strictly between mutations).
type Source interface {
	// NumFrags returns the fragment count of one species (fixed per solve).
	NumFrags(sp core.Species) int
	// FragLen returns the region count of a fragment (fixed per solve).
	FragLen(fr core.FragRef) int
	// Version returns the live version of a fragment's match data.
	Version(fr core.FragRef) uint64
	// Sites returns the occupied sites on fr, sorted by position. The slice
	// is transient: valid only until the next call.
	Sites(fr core.FragRef, r Reads) []core.Site
	// Chains returns fr's 2-island chain links in site order.
	Chains(fr core.FragRef, r Reads) []Chain
}

// Runner executes a batch of independent piece-refresh tasks, possibly
// concurrently. A nil Runner runs them inline.
type Runner func(tasks []func())

// Depths holds the candidate I2 window depths at one fragment end: the free
// depth up to the outermost match (when it exists and is partial) and the
// full fragment length. Value type, so cached pieces hold no per-end
// allocations.
type Depths struct {
	d [2]int
	n int
}

// Len returns the number of candidate depths.
func (d Depths) Len() int { return d.n }

// At returns the i-th candidate depth.
func (d Depths) At(i int) int { return d.d[i] }

// EndDepthsAt computes the candidate window depths at one end of a fragment
// of length n whose occupied sites (sorted) are given: the free depth when
// positive and partial, then the full length.
func EndDepthsAt(sites []core.Site, n int, e int) Depths {
	free := n
	if len(sites) > 0 {
		if e == LeftEnd {
			free = sites[0].Lo
		} else {
			free = n - sites[len(sites)-1].Hi
		}
	}
	if free > 0 && free < n {
		return Depths{d: [2]int{free, n}, n: 2}
	}
	return Depths{d: [2]int{n}, n: 1}
}

// WindowsOf computes the I1 target windows of a fragment of length n with
// the given occupied sites (sorted): its maximal free gaps, each gap
// extended across one neighbouring site per side, and the whole fragment —
// sorted and deduplicated. All windows have endpoints on site boundaries,
// hence are never hidden.
func WindowsOf(sites []core.Site, n int) [][2]int {
	wins := [][2]int{{0, n}}
	pos := 0
	addGap := func(lo, hi int) {
		wins = append(wins, [2]int{lo, hi})
		// Extend across the neighbouring sites, when they exist.
		for _, s := range sites {
			if s.Hi == lo {
				wins = append(wins, [2]int{s.Lo, hi})
			}
			if s.Lo == hi {
				wins = append(wins, [2]int{lo, s.Hi})
			}
		}
	}
	for _, s := range sites {
		if s.Lo > pos {
			addGap(pos, s.Lo)
		}
		pos = s.Hi
	}
	if pos < n {
		addGap(pos, n)
	}
	out := wins[:0]
	for _, w := range wins {
		if w[0] < w[1] {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	dedup := out[:0]
	for _, w := range out {
		if len(dedup) > 0 && dedup[len(dedup)-1] == w {
			continue
		}
		dedup = append(dedup, w)
	}
	return dedup
}

// AppendI2 appends the I2 candidates in canonical (fi, gi, fe, ge, fw, gw)
// order, restricted to the pair universe. only restricts one species to a
// single fragment and exclude drops one fragment from pairing (Idx < 0
// sentinels disable either filter); depths supplies the per-end window
// depths of a fragment — the Enumerator passes its cached pieces, the I3
// rewiring path computes them on the fly against its simulation state. A
// dense universe iterates exactly the classic nested (fi, gi) loops.
func AppendI2(dst []Cand, ps *PairSet, only, exclude core.FragRef, depths func(core.FragRef) [2]Depths) []Cand {
	for fi := 0; fi < ps.NumH(); fi++ {
		f := core.FragRef{Sp: core.SpeciesH, Idx: fi}
		if only.Idx >= 0 && only.Sp == core.SpeciesH && only.Idx != fi {
			continue
		}
		if exclude.Idx >= 0 && exclude == f {
			continue
		}
		df := depths(f)
		for _, gi32 := range ps.MPartners(fi) {
			gi := int(gi32)
			g := core.FragRef{Sp: core.SpeciesM, Idx: gi}
			if only.Idx >= 0 && only.Sp == core.SpeciesM && only.Idx != gi {
				continue
			}
			if exclude.Idx >= 0 && exclude == g {
				continue
			}
			dg := depths(g)
			for fe := LeftEnd; fe <= RightEnd; fe++ {
				for ge := LeftEnd; ge <= RightEnd; ge++ {
					for wi := 0; wi < df[fe].Len(); wi++ {
						for wj := 0; wj < dg[ge].Len(); wj++ {
							dst = append(dst, Cand{
								Kind: KindI2, F: f, G: g,
								A1: fe, A2: df[fe].At(wi),
								B1: ge, B2: dg[ge].At(wj),
							})
						}
					}
				}
			}
		}
	}
	return dst
}

// PieceKind identifies one cached-enumeration piece family.
type PieceKind uint8

// Piece families: the I1 target windows of one fragment, the I2 end depths
// of one fragment, and the I3 chain links of one H fragment.
const (
	PieceI1Windows PieceKind = iota
	PieceI2Depths
	PieceI3Chains
)

// Change reports one enumeration piece whose refreshed value differs from
// the previously cached one — the unit of targeted repair: exactly the
// candidates generated from this piece (I1 windows of Frag, I2 depth
// products involving Frag, or I3 chain links of Frag) may have appeared,
// disappeared, or changed identity.
type Change struct {
	Kind PieceKind
	Frag core.FragRef
}

// Stats counts the Enumerator's piece-cache traffic over a solve.
type Stats struct {
	// Refreshed is the number of enumeration pieces recomputed.
	Refreshed int
	// Reused is the number of rounds × pieces served from cache.
	Reused int
}

// piece is one cached enumeration unit plus the read set justifying it.
type piece[T any] struct {
	ok    bool
	reads Reads
	val   T
}

// valid reports whether the piece exists and every fragment it read still
// has the version it read.
func (p *piece[T]) valid(src Source) bool {
	if !p.ok {
		return false
	}
	for fr, v := range p.reads {
		if src.Version(fr) != v {
			return false
		}
	}
	return true
}

// Enumerator incrementally enumerates improvement candidates for one solve.
// It is not safe for concurrent use; one solve, one Enumerator.
type Enumerator struct {
	full, border bool
	sized        bool
	nh, nm       int
	pairs        *PairSet

	win   [2][]piece[[][2]int]  // I1 target windows per fragment
	dep   [2][]piece[[2]Depths] // I2 end depths per fragment
	chain []piece[[]Chain]      // I3 chain links per H fragment

	cands []Cand   // merged candidate list, rebuilt each Candidates call
	tasks []func() // dirty-piece refresh tasks, reused across rounds
	// refs[i] identifies the piece tasks[i] refreshes and changed[i] records
	// whether its value actually moved; walked serially after the tasks ran,
	// so change reporting is deterministic regardless of task scheduling.
	refs    []Change
	changed []bool
	changes []Change
	// refreshed counts tasks that actually executed (atomic: tasks may run
	// on pool workers, and a canceled round skips queued tasks).
	refreshed atomic.Int64
	reused    int
}

// New returns an Enumerator for the selected method families over the given
// pair universe. A nil universe means all pairs (classic enumeration).
func New(full, border bool, ps *PairSet) *Enumerator {
	return &Enumerator{full: full, border: border, pairs: ps}
}

// Pairs returns the enumerator's pair universe (never nil after the first
// Candidates/Repair call sized it).
func (e *Enumerator) Pairs() *PairSet { return e.pairs }

// Stats returns the cumulative piece-cache counters.
func (e *Enumerator) Stats() Stats {
	return Stats{Refreshed: int(e.refreshed.Load()), Reused: e.reused}
}

// Invalidate drops every cached piece, forcing the next Candidates call to
// enumerate from scratch — the A/B oracle mode of the driver.
func (e *Enumerator) Invalidate() {
	for sp := 0; sp < 2; sp++ {
		for i := range e.win[sp] {
			e.win[sp][i].ok = false
		}
		for i := range e.dep[sp] {
			e.dep[sp][i].ok = false
		}
	}
	for i := range e.chain {
		e.chain[i].ok = false
	}
}

func (e *Enumerator) size(src Source) {
	if e.sized {
		return
	}
	e.sized = true
	e.nh = src.NumFrags(core.SpeciesH)
	e.nm = src.NumFrags(core.SpeciesM)
	if e.pairs == nil {
		e.pairs = AllPairs(e.nh, e.nm)
	}
	for sp, n := range [2]int{e.nh, e.nm} {
		if e.full {
			e.win[sp] = make([]piece[[][2]int], n)
		}
		if e.border {
			e.dep[sp] = make([]piece[[2]Depths], n)
		}
	}
	if e.border {
		e.chain = make([]piece[[]Chain], e.nh)
	}
}

// refresh re-enumerates every piece whose recorded reads are dirty (sharded
// through run; nil runs inline) and records, per piece, whether its value
// actually changed. A piece refreshing to an identical value still updates
// its recorded read set — otherwise it would stay permanently dirty — but
// reports no change. Task scheduling order never affects the outcome: each
// task touches only its own piece and its own changed slot.
func (e *Enumerator) refresh(src Source, run Runner) {
	e.size(src)
	e.tasks, e.refs, e.changed = e.tasks[:0], e.refs[:0], e.changed[:0]
	add := func(kind PieceKind, fr core.FragRef, task func(i int)) {
		i := len(e.tasks)
		e.refs = append(e.refs, Change{Kind: kind, Frag: fr})
		e.changed = append(e.changed, false)
		e.tasks = append(e.tasks, func() {
			task(i)
			e.refreshed.Add(1)
		})
	}
	visit := func(sp core.Species, idx int) {
		fr := core.FragRef{Sp: sp, Idx: idx}
		if e.full {
			if p := &e.win[sp][idx]; !p.valid(src) {
				add(PieceI1Windows, fr, func(i int) {
					r := make(Reads, 2)
					v := WindowsOf(src.Sites(fr, r), src.FragLen(fr))
					e.changed[i] = !p.ok || !slices.Equal(p.val, v)
					p.val, p.reads, p.ok = v, r, true
				})
			} else {
				e.reused++
			}
		}
		if e.border {
			if p := &e.dep[sp][idx]; !p.valid(src) {
				add(PieceI2Depths, fr, func(i int) {
					r := make(Reads, 1)
					n := src.FragLen(fr)
					sites := src.Sites(fr, r)
					v := [2]Depths{EndDepthsAt(sites, n, LeftEnd), EndDepthsAt(sites, n, RightEnd)}
					e.changed[i] = !p.ok || p.val != v
					p.val, p.reads, p.ok = v, r, true
				})
			} else {
				e.reused++
			}
			if sp == core.SpeciesH {
				if p := &e.chain[idx]; !p.valid(src) {
					add(PieceI3Chains, fr, func(i int) {
						r := make(Reads, 4)
						v := src.Chains(fr, r)
						e.changed[i] = !p.ok || !slices.Equal(p.val, v)
						p.val, p.reads, p.ok = v, r, true
					})
				} else {
					e.reused++
				}
			}
		}
	}
	for i := 0; i < e.nh; i++ {
		visit(core.SpeciesH, i)
	}
	for i := 0; i < e.nm; i++ {
		visit(core.SpeciesM, i)
	}
	if len(e.tasks) > 0 {
		if run != nil {
			run(e.tasks)
		} else {
			for _, t := range e.tasks {
				t()
			}
		}
	}
}

// Candidates returns the full candidate list for the current state,
// re-enumerating only the pieces whose recorded reads are dirty. The
// returned slice is owned by the Enumerator and valid until the next call.
// run executes the refresh tasks (nil means inline); tasks are independent
// and may run concurrently.
func (e *Enumerator) Candidates(src Source, run Runner) []Cand {
	e.refresh(src, run)
	e.rebuild()
	return e.cands
}

// Repair refreshes the dirty pieces and returns the pieces whose values
// changed, in deterministic (species, fragment, piece-family) order — the
// input of the lazy selection engine's targeted heap repair. The returned
// slice is owned by the Enumerator and valid until the next call. On the
// first call every piece is dirty, so every piece is reported.
func (e *Enumerator) Repair(src Source, run Runner) []Change {
	e.refresh(src, run)
	e.changes = e.changes[:0]
	for i, c := range e.changed {
		if c {
			e.changes = append(e.changes, e.refs[i])
		}
	}
	return e.changes
}

// Windows returns the cached I1 target windows of fr. Valid after a
// Candidates or Repair call; the slice is owned by the Enumerator.
func (e *Enumerator) Windows(fr core.FragRef) [][2]int { return e.win[fr.Sp][fr.Idx].val }

// EndDepths returns the cached I2 end depths of fr (left, right).
func (e *Enumerator) EndDepths(fr core.FragRef) [2]Depths { return e.dep[fr.Sp][fr.Idx].val }

// ChainLinks returns the cached I3 chain links of the H fragment fr.
func (e *Enumerator) ChainLinks(fr core.FragRef) []Chain { return e.chain[fr.Idx].val }

// rebuild merges the cached pieces into the canonical candidate order:
// I1 over (species, f, g, window), then I2 over (f, g, ends, depths), then
// one I3 per chain link — element-for-element what from-scratch enumeration
// produces.
func (e *Enumerator) rebuild() {
	e.cands = e.cands[:0]
	if e.full {
		for sp := core.SpeciesH; sp <= core.SpeciesM; sp++ {
			osp := sp.Other()
			nf := e.numFrags(sp)
			for fi := 0; fi < nf; fi++ {
				f := core.FragRef{Sp: sp, Idx: fi}
				for _, gi32 := range e.pairs.PartnersOf(f) {
					gi := int(gi32)
					g := core.FragRef{Sp: osp, Idx: gi}
					for _, w := range e.win[osp][gi].val {
						e.cands = append(e.cands, Cand{Kind: KindI1, F: f, G: g, A1: w[0], A2: w[1]})
					}
				}
			}
		}
	}
	if e.border {
		none := core.FragRef{Idx: -1}
		e.cands = AppendI2(e.cands, e.pairs, none, none, func(fr core.FragRef) [2]Depths {
			return e.dep[fr.Sp][fr.Idx].val
		})
		// Chain links are disjoint across H fragments (a match touches
		// exactly one H fragment), so no cross-piece dedup is needed.
		for fi := 0; fi < e.nh; fi++ {
			f := core.FragRef{Sp: core.SpeciesH, Idx: fi}
			for _, ch := range e.chain[fi].val {
				e.cands = append(e.cands, Cand{Kind: KindI3, F: f, G: ch.G, A1: ch.ID})
			}
		}
	}
}

func (e *Enumerator) numFrags(sp core.Species) int {
	if sp == core.SpeciesH {
		return e.nh
	}
	return e.nm
}
