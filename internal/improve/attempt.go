package improve

import (
	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/improve/enum"
	"repro/internal/score"
)

// candKey is the structural identity of an attempt: the comparable cache
// key of the incremental driver, produced by the enumeration subsystem.
// Identical keys denote identical attempt behavior; attempts are simulated
// on clones during evaluation and replayed on the live state when accepted,
// dispatched by runCand — candidate lists carry no per-candidate closures.
type candKey = enum.Cand

// runCand applies the attempt identified by k and returns the gain.
func runCand(st *state, k candKey) float64 {
	switch k.Kind {
	case enum.KindI1:
		return runI1(st, k)
	case enum.KindI2:
		return runI2(st, k)
	default:
		return runI3(st, k)
	}
}

// runI1 is the Full CSR improvement method I1(f, ḡ, ĝ) of §4.2: prepare
// fragment f (detaching it) and the window ĝ = [wLo, wHi) on fragment g;
// plug f into its best placement ḡ inside the window; run TPA on the
// remnants ĝ − ḡ and on the partner sites freed by the preparation.
func runI1(st *state, k candKey) float64 {
	f, g, wLo, wHi := k.F, k.G, k.A1, k.A2
	start := st.delta
	st.lock(f)
	defer st.unlock(f)

	// Prepare f: detach it from everything (its full site is plugged in).
	// Freed partner zones are not refilled here — Fig. 9 runs TPA only on
	// the target-side zones.
	for _, id := range st.fragMatchIDs(f) {
		st.removeMatch(id)
	}
	// Prepare the target window (freed zones accumulate in the state's
	// reusable buffer; consumed by the TPA calls below).
	st.freedBuf = st.prepare(st.freedBuf[:0], g, wLo, wHi)
	freed := st.freedBuf

	// Best placement of f inside the prepared window (the last entry of
	// the Pareto frontier is the best-scoring one).
	bestScore, bestRev := 0.0, false
	var best align.Placement
	for o := 0; o < 2; o++ {
		rev := o == 1
		if ps := st.placements(f, rev, g, wLo, wHi); len(ps) > 0 {
			if p := ps[len(ps)-1]; p.Score > bestScore {
				best, bestScore, bestRev = p, p.Score, rev
			}
		}
	}
	if bestScore <= 0 {
		return st.delta - start // preparation-only "attempt" (never accepted)
	}
	mt := st.mkMatch(f, bestRev, g, wLo+best.Lo, wLo+best.Hi)
	st.addMatch(mt)

	// TPA on the window remnants, then on freed partner sites.
	st.tpa([]core.Site{
		{Species: g.Sp, Frag: g.Idx, Lo: wLo, Hi: wLo + best.Lo},
		{Species: g.Sp, Frag: g.Idx, Lo: wLo + best.Hi, Hi: wHi},
	})
	st.tpa(freed)
	return st.delta - start
}

// end identifies a fragment end for border matches.
type end int

const (
	leftEnd  end = enum.LeftEnd
	rightEnd end = enum.RightEnd
)

func (e end) String() string {
	if e == leftEnd {
		return "L"
	}
	return "R"
}

// runI2 is the Border CSR improvement method I2 of §4.3/§4.4: prepare end
// windows on f and g (breaking their 2-islands), form the border match
// joining fEnd of f to gEnd of g, then run TPA on the inner remnants and
// freed partner sites. The relative orientation is forced by the end
// combination (same ends ⇒ reversed), mirroring the Fig. 8 rule. The key's
// depths (A2, B2) give how deep the prepared windows reach into each
// fragment from the chosen end.
func runI2(st *state, k candKey) float64 {
	f, g := k.F, k.G
	fe, fw := end(k.A1), k.A2
	ge, gw := end(k.B1), k.B2
	start := st.delta
	st.lock(f)
	st.lock(g)
	defer st.unlock(f)
	defer st.unlock(g)

	nf := st.in.Frag(f.Sp, f.Idx).Len()
	ng := st.in.Frag(g.Sp, g.Idx).Len()
	fLo, fHi := windowAt(fe, fw, nf)
	gLo, gHi := windowAt(ge, gw, ng)

	freed := st.prepare(st.freedBuf[:0], f, fLo, fHi)
	freed = st.prepare(freed, g, gLo, gHi)
	// Multi-edge guard: a conjecture pair merges two matches between the
	// same fragments into one, so any surviving f–g match must yield to
	// the new link. Its sites become zones.
	for _, id := range st.fragMatchIDs(f) {
		mt := st.matches[id]
		if mt.Side(g.Sp).Frag == g.Idx {
			st.removeMatch(id)
			freed = append(freed, mt.HSite, mt.MSite)
		}
	}
	st.freedBuf = freed

	// Border alignment: orient g's window relative to f per the end rule,
	// then claim sites from the outermost scoring columns to the fragment
	// ends.
	rev := fe == ge
	fWord := st.in.Frag(f.Sp, f.Idx).Regions[fLo:fHi]
	gOri := st.in.Frag(g.Sp, g.Idx).Regions[gLo:gHi].Orient(rev)
	sigma := st.sigmaFor(f.Sp)
	// Quantized screen: most candidate windows align to nothing, and the
	// attempt bails identically on sc ≤ 0 below — so on the int32 tier a
	// cheap ScoreAtLeast sweep (early-exits on the suffix gain bound,
	// O(|b|) space instead of the full Align matrix) rejects them before
	// the quadratic fill. Exact whenever it exceeds the threshold, so
	// accepted pairs proceed unchanged.
	if _, ok := sigma.(*score.CompiledInt); ok && len(fWord)*len(gOri) >= 128 {
		if st.scr.ScoreAtLeast(fWord, gOri, sigma, 0) <= 0 {
			return st.delta - start
		}
	}
	sc, cols := st.scr.Align(fWord, gOri, sigma)
	if sc <= 0 || len(cols) == 0 {
		return st.delta - start
	}
	fSpanLo, fSpanHi := fLo+cols[0].I, fLo+cols[len(cols)-1].I+1
	gj0, gj1 := cols[0].J, cols[len(cols)-1].J
	if rev {
		gj0, gj1 = (gHi-gLo)-1-gj1, (gHi-gLo)-1-gj0
	}
	gSpanLo, gSpanHi := gLo+gj0, gLo+gj1+1
	// Extend claims to the fragment ends (the chain link must be
	// outermost; dangling tails are junk no other match may use).
	fSite := claimToEnd(fe, fSpanLo, fSpanHi, nf)
	gSite := claimToEnd(ge, gSpanLo, gSpanHi, ng)

	var mt core.Match
	fs := core.Site{Species: f.Sp, Frag: f.Idx, Lo: fSite[0], Hi: fSite[1]}
	gs := core.Site{Species: g.Sp, Frag: g.Idx, Lo: gSite[0], Hi: gSite[1]}
	if f.Sp == core.SpeciesH {
		mt = core.Match{HSite: fs, MSite: gs, Rev: rev}
	} else {
		mt = core.Match{HSite: gs, MSite: fs, Rev: rev}
	}
	mt.Score = st.siteScore(mt.HSite, mt.MSite, mt.Rev)
	st.addMatch(mt)

	// TPA on the inner remnants (window minus claimed site) and the freed
	// partner sites.
	zones := st.zonesBuf[:0]
	defer func() { st.zonesBuf = zones[:0] }()
	if fe == rightEnd && fSite[0] > fLo {
		zones = append(zones, core.Site{Species: f.Sp, Frag: f.Idx, Lo: fLo, Hi: fSite[0]})
	}
	if fe == leftEnd && fSite[1] < fHi {
		zones = append(zones, core.Site{Species: f.Sp, Frag: f.Idx, Lo: fSite[1], Hi: fHi})
	}
	if ge == rightEnd && gSite[0] > gLo {
		zones = append(zones, core.Site{Species: g.Sp, Frag: g.Idx, Lo: gLo, Hi: gSite[0]})
	}
	if ge == leftEnd && gSite[1] < gHi {
		zones = append(zones, core.Site{Species: g.Sp, Frag: g.Idx, Lo: gSite[1], Hi: gHi})
	}
	st.tpa(zones)
	st.tpa(freed)
	return st.delta - start
}

func windowAt(e end, depth, n int) (int, int) {
	if depth > n {
		depth = n
	}
	if e == leftEnd {
		return 0, depth
	}
	return n - depth, n
}

func claimToEnd(e end, spanLo, spanHi, n int) [2]int {
	if e == leftEnd {
		return [2]int{0, spanHi}
	}
	return [2]int{spanLo, n}
}

// runI3 is the 2-island rewiring method I3 (§4.3): break the chain match
// joining f and g, then greedily run the best I2 attempt for f (excluding
// g as partner) followed by the best I2 attempt for g (excluding f). The
// compound gain is evaluated atomically, capturing the cases where
// breaking the island only pays off when both ends are re-linked.
func runI3(st *state, k candKey) float64 {
	f, g, chainID := k.F, k.G, k.A1
	start := st.delta
	// The existence of the chain match depends on f's and g's match sets;
	// record the reads even on the early-out path.
	st.note(f)
	st.note(g)
	if !st.isLive(chainID) {
		return 0
	}
	st.removeMatch(chainID)
	var buf []candKey
	for _, x := range [2]core.FragRef{f, g} {
		exclude := g
		if x == g {
			exclude = f
		}
		buf = i2CandsFor(st, x, exclude, buf[:0])
		bestGain, bestIdx := 0.0, -1
		for i := range buf {
			sim := st.clone() // inherits this goroutine's scratch
			gain := runCand(sim, buf[i])
			sim.release()
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx >= 0 {
			runCand(st, buf[bestIdx])
		}
	}
	return st.delta - start
}

// i2CandsFor enumerates the I2 candidates pairing fragment only against
// its pair-universe partners except exclude, on the current (simulation)
// state. End depths are computed on the fly — the reads go through st and
// are thus recorded by the simulation's readRecorder, exactly like the rest
// of the attempt's work.
func i2CandsFor(st *state, only, exclude core.FragRef, dst []candKey) []candKey {
	onlyDepths := stateEndDepths(st, only)
	return enum.AppendI2(dst,
		st.pairs,
		only, exclude,
		func(fr core.FragRef) [2]enum.Depths {
			if fr == only {
				return onlyDepths
			}
			return stateEndDepths(st, fr)
		})
}

// stateEndDepths computes both end-depth sets of fr against st's current
// occupation.
func stateEndDepths(st *state, fr core.FragRef) [2]enum.Depths {
	n := st.in.Frag(fr.Sp, fr.Idx).Len()
	sites := st.sitesOn(fr)
	return [2]enum.Depths{
		enum.EndDepthsAt(sites, n, enum.LeftEnd),
		enum.EndDepthsAt(sites, n, enum.RightEnd),
	}
}
