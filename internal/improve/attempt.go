package improve

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/core"
)

// attempt is one improvement attempt: a closure that mutates a state and
// returns the score gain. Attempts are simulated on clones during
// evaluation and replayed on the live state when accepted.
type attempt struct {
	// key identifies the attempt: the comparable cache key of the
	// incremental driver and the basis of log messages. Identical keys
	// denote identical attempt closures.
	key candKey
	// run applies the attempt and returns the gain.
	run func(st *state) float64
}

// kind returns the method label "I1", "I2" or "I3".
func (at attempt) kind() string {
	switch at.key.kind {
	case 1:
		return "I1"
	case 2:
		return "I2"
	default:
		return "I3"
	}
}

// candKey is the structural identity of an attempt. Enumeration runs every
// round over thousands of candidates, so the key is a flat comparable
// struct rather than a formatted string.
type candKey struct {
	kind byte // 1, 2, 3
	f, g core.FragRef
	// I1: a1, a2 = window [wLo, wHi) on g.
	// I2: a1, a2 = f end and depth; b1, b2 = g end and depth.
	// I3: a1 = chain match ID.
	a1, a2, b1, b2 int
}

// desc renders the attempt for error messages (cold path only).
func (at attempt) desc() string {
	k := at.key
	switch k.kind {
	case 1:
		return fmt.Sprintf("I1(%v→%v[%d,%d))", k.f, k.g, k.a1, k.a2)
	case 2:
		return fmt.Sprintf("I2(%v.%v:%d↔%v.%v:%d)", k.f, end(k.a1), k.a2, k.g, end(k.b1), k.b2)
	default:
		return fmt.Sprintf("I3(%v~%v#%d)", k.f, k.g, k.a1)
	}
}

// i1Attempt builds the Full CSR improvement method I1(f, ḡ, ĝ) of §4.2:
// prepare fragment f (detaching it) and the window ĝ = [wLo, wHi) on
// fragment g; plug f into its best placement ḡ inside the window; run TPA
// on the remnants ĝ − ḡ and on the partner sites freed by the preparation.
func i1Attempt(f, g core.FragRef, wLo, wHi int) attempt {
	return attempt{
		key: candKey{kind: 1, f: f, g: g, a1: wLo, a2: wHi},
		run: func(st *state) float64 {
			start := st.delta
			st.locked[f] = true
			defer delete(st.locked, f)

			// Prepare f: detach it from everything (its full site is
			// plugged in). Freed partner zones are not refilled here —
			// Fig. 9 runs TPA only on the target-side zones.
			for _, id := range st.fragMatchIDs(f) {
				st.removeMatch(id)
			}
			// Prepare the target window.
			freed := st.prepare(g, wLo, wHi)

			// Best placement of f inside the prepared window (the last
			// entry of the Pareto frontier is the best-scoring one).
			bestScore, bestRev := 0.0, false
			var best align.Placement
			for o := 0; o < 2; o++ {
				rev := o == 1
				if ps := st.placements(f, rev, g, wLo, wHi); len(ps) > 0 {
					if p := ps[len(ps)-1]; p.Score > bestScore {
						best, bestScore, bestRev = p, p.Score, rev
					}
				}
			}
			if bestScore <= 0 {
				return st.delta - start // preparation-only "attempt" (never accepted)
			}
			mt := st.mkMatch(f, bestRev, g, wLo+best.Lo, wLo+best.Hi)
			st.addMatch(mt)

			// TPA on the window remnants, then on freed partner sites.
			st.tpa([]core.Site{
				{Species: g.Sp, Frag: g.Idx, Lo: wLo, Hi: wLo + best.Lo},
				{Species: g.Sp, Frag: g.Idx, Lo: wLo + best.Hi, Hi: wHi},
			})
			st.tpa(freed)
			return st.delta - start
		},
	}
}

// end identifies a fragment end for border matches.
type end int

const (
	leftEnd  end = 0
	rightEnd end = 1
)

func (e end) String() string {
	if e == leftEnd {
		return "L"
	}
	return "R"
}

// i2Attempt builds the Border CSR improvement method I2 of §4.3/§4.4:
// prepare end windows on f and g (breaking their 2-islands), form the
// border match joining fEnd of f to gEnd of g, then run TPA on the inner
// remnants and freed partner sites. The relative orientation is forced by
// the end combination (same ends ⇒ reversed), mirroring the Fig. 8 rule.
//
// fw and gw give how deep the prepared windows reach into each fragment
// (wf regions from the chosen end).
func i2Attempt(f core.FragRef, fe end, fw int, g core.FragRef, ge end, gw int) attempt {
	return attempt{
		key: candKey{kind: 2, f: f, g: g, a1: int(fe), a2: fw, b1: int(ge), b2: gw},
		run: func(st *state) float64 {
			start := st.delta
			st.locked[f] = true
			st.locked[g] = true
			defer delete(st.locked, f)
			defer delete(st.locked, g)

			nf := st.in.Frag(f.Sp, f.Idx).Len()
			ng := st.in.Frag(g.Sp, g.Idx).Len()
			fLo, fHi := windowAt(fe, fw, nf)
			gLo, gHi := windowAt(ge, gw, ng)

			freed := st.prepare(f, fLo, fHi)
			freed = append(freed, st.prepare(g, gLo, gHi)...)
			// Multi-edge guard: a conjecture pair merges two matches
			// between the same fragments into one, so any surviving f–g
			// match must yield to the new link. Its sites become zones.
			for _, id := range st.fragMatchIDs(f) {
				mt := st.matches[id]
				if mt.Side(g.Sp).Frag == g.Idx {
					st.removeMatch(id)
					freed = append(freed, mt.HSite, mt.MSite)
				}
			}

			// Border alignment: orient g's window relative to f per the
			// end rule, then claim sites from the outermost scoring
			// columns to the fragment ends.
			rev := fe == ge
			fWord := st.in.Frag(f.Sp, f.Idx).Regions[fLo:fHi]
			gWord := st.in.Frag(g.Sp, g.Idx).Regions[gLo:gHi]
			sigma := st.sigmaFor(f.Sp)
			sc, cols := st.scr.Align(fWord, gWord.Orient(rev), sigma)
			if sc <= 0 || len(cols) == 0 {
				return st.delta - start
			}
			fSpanLo, fSpanHi := fLo+cols[0].I, fLo+cols[len(cols)-1].I+1
			gj0, gj1 := cols[0].J, cols[len(cols)-1].J
			if rev {
				gj0, gj1 = (gHi-gLo)-1-gj1, (gHi-gLo)-1-gj0
			}
			gSpanLo, gSpanHi := gLo+gj0, gLo+gj1+1
			// Extend claims to the fragment ends (the chain link must be
			// outermost; dangling tails are junk no other match may use).
			fSite := claimToEnd(fe, fSpanLo, fSpanHi, nf)
			gSite := claimToEnd(ge, gSpanLo, gSpanHi, ng)

			var mt core.Match
			fs := core.Site{Species: f.Sp, Frag: f.Idx, Lo: fSite[0], Hi: fSite[1]}
			gs := core.Site{Species: g.Sp, Frag: g.Idx, Lo: gSite[0], Hi: gSite[1]}
			if f.Sp == core.SpeciesH {
				mt = core.Match{HSite: fs, MSite: gs, Rev: rev}
			} else {
				mt = core.Match{HSite: gs, MSite: fs, Rev: rev}
			}
			mt.Score = st.siteScore(mt.HSite, mt.MSite, mt.Rev)
			st.addMatch(mt)

			// TPA on the inner remnants (window minus claimed site) and
			// the freed partner sites.
			var zones []core.Site
			if fe == rightEnd && fSite[0] > fLo {
				zones = append(zones, core.Site{Species: f.Sp, Frag: f.Idx, Lo: fLo, Hi: fSite[0]})
			}
			if fe == leftEnd && fSite[1] < fHi {
				zones = append(zones, core.Site{Species: f.Sp, Frag: f.Idx, Lo: fSite[1], Hi: fHi})
			}
			if ge == rightEnd && gSite[0] > gLo {
				zones = append(zones, core.Site{Species: g.Sp, Frag: g.Idx, Lo: gLo, Hi: gSite[0]})
			}
			if ge == leftEnd && gSite[1] < gHi {
				zones = append(zones, core.Site{Species: g.Sp, Frag: g.Idx, Lo: gSite[1], Hi: gHi})
			}
			st.tpa(zones)
			st.tpa(freed)
			return st.delta - start
		},
	}
}

func windowAt(e end, depth, n int) (int, int) {
	if depth > n {
		depth = n
	}
	if e == leftEnd {
		return 0, depth
	}
	return n - depth, n
}

func claimToEnd(e end, spanLo, spanHi, n int) [2]int {
	if e == leftEnd {
		return [2]int{0, spanHi}
	}
	return [2]int{spanLo, n}
}

// i3Attempt rewires a 2-island (§4.3 method I3): break the chain match
// joining f and g, then greedily run the best I2 attempt for f (excluding
// g as partner) followed by the best I2 attempt for g (excluding f). The
// compound gain is evaluated atomically, capturing the cases where
// breaking the island only pays off when both ends are re-linked.
func i3Attempt(f, g core.FragRef, chainID int, candidates func(st *state, x core.FragRef, exclude core.FragRef) []attempt) attempt {
	return attempt{
		key: candKey{kind: 3, f: f, g: g, a1: chainID},
		run: func(st *state) float64 {
			start := st.delta
			// The existence of the chain match depends on f's and g's match
			// sets; record the reads even on the early-out path.
			st.note(f)
			st.note(g)
			if _, ok := st.matches[chainID]; !ok {
				return 0
			}
			st.removeMatch(chainID)
			for _, x := range []core.FragRef{f, g} {
				exclude := g
				if x == g {
					exclude = f
				}
				bestGain, applied := 0.0, false
				var bestAt attempt
				for _, at := range candidates(st, x, exclude) {
					sim := st.clone() // inherits this goroutine's scratch
					gain := at.run(sim)
					if gain > bestGain {
						bestGain, bestAt, applied = gain, at, true
					}
				}
				if applied {
					bestAt.run(st)
				}
			}
			return st.delta - start
		},
	}
}
