package improve

import (
	"repro/internal/score"
	"repro/internal/symbol"
)

func newAlphabetWith(names ...string) *symbol.Alphabet {
	al := symbol.NewAlphabet()
	for _, n := range names {
		al.Intern(n)
	}
	return al
}

func newTableWith(al *symbol.Alphabet, entries [][3]any) *score.Table {
	tb := score.NewTable()
	for _, e := range entries {
		a, _ := al.ParseSymbol(e[0].(string))
		b, _ := al.ParseSymbol(e[1].(string))
		tb.Set(a, b, e[2].(float64))
	}
	return tb
}

func wordOf(al *symbol.Alphabet, text string) symbol.Word {
	w, err := al.ParseWord(text)
	if err != nil {
		panic(err)
	}
	return w
}
