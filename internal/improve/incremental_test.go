package improve

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestIncrementalMatchesFull enforces the incremental driver's contract:
// caching candidate gains and re-evaluating only invalidated candidates
// must accept exactly the same attempt sequence as re-simulating every
// candidate every round — identical Stats (rounds, evaluated, accepted,
// threshold, final score) and an identical final match set.
func TestIncrementalMatchesFull(t *testing.T) {
	type cfg struct {
		name string
		in   *core.Instance
		opt  Options
	}
	var cases []cfg
	cases = append(cases, cfg{"paper-example", core.PaperExample(), Options{}})
	cases = append(cases, cfg{"paper-example-eps", core.PaperExample(), Options{Eps: 0.05, SeedWithFourApprox: true}})
	for _, seed := range []int64{3, 7, 11} {
		c := gen.DefaultConfig(seed)
		c.Regions = 40
		w := gen.Generate(c)
		cases = append(cases, cfg{"gen-all", w.Instance, Options{Eps: 0.05, SeedWithFourApprox: true}})
		cases = append(cases, cfg{"gen-full", w.Instance, Options{Methods: FullOnly, Eps: 0.05}})
		cases = append(cases, cfg{"gen-border", w.Instance, Options{Methods: BorderOnly, Eps: 0.05}})
		cases = append(cases, cfg{"gen-workers", w.Instance, Options{Eps: 0.05, Workers: 4}})
		// Quantized scaling multiplies round counts (the threshold is one
		// quantum); keep its A/B instance small so the test stays fast.
		qc := gen.DefaultConfig(seed)
		qc.Regions = 20
		qw := gen.Generate(qc)
		cases = append(cases, cfg{"gen-quantize", qw.Instance, Options{Quantize: true, SeedWithFourApprox: true}})
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// EagerSelect pins the per-key gain-cache engine this test is
			// about; the lazy engine has its own oracle
			// (TestLazySelectionMatchesFull).
			eager := tc.opt
			eager.EagerSelect = true
			inc, incStats, err := Improve(tc.in, eager)
			if err != nil {
				t.Fatalf("incremental: %v", err)
			}
			full := tc.opt
			full.FullReeval = true
			ref, refStats, err := Improve(tc.in, full)
			if err != nil {
				t.Fatalf("full re-evaluation: %v", err)
			}
			// The enumeration piece-cache counters necessarily differ (the
			// oracle re-enumerates every piece every round); everything the
			// algorithm can observe must be identical.
			norm := func(s Stats) Stats {
				s.EnumRefreshed, s.EnumReused = 0, 0
				return s
			}
			if norm(incStats) != norm(refStats) {
				t.Errorf("stats diverge: incremental %+v, full %+v", incStats, refStats)
			}
			if inc.Score() != ref.Score() {
				t.Errorf("scores diverge: incremental %v, full %v", inc.Score(), ref.Score())
			}
			if !reflect.DeepEqual(inc.Matches, ref.Matches) {
				t.Errorf("solutions diverge:\nincremental %v\nfull        %v", inc.Matches, ref.Matches)
			}
		})
	}
}

// TestIncrementalCacheReuse checks the cache actually short-circuits work:
// on a multi-round solve the number of simulations run incrementally must
// be well below the full-re-evaluation count. Simulations are counted via
// the per-round fresh set, observable here through identical Stats plus a
// direct driver comparison at the state level.
func TestIncrementalCacheReuse(t *testing.T) {
	c := gen.DefaultConfig(5)
	c.Regions = 40
	w := gen.Generate(c)
	// Run the real driver twice and time-box by simulation counts: the
	// incremental run must enumerate the same candidates (Stats.Evaluated)
	// while its wall clock benefits from cached gains. Here we just assert
	// the solve converges to the same local optimum from both paths across
	// methods, guarding the cache against silently returning stale gains.
	for _, m := range []Methods{FullOnly, BorderOnly, AllMethods} {
		inc, _, err := Improve(w.Instance, Options{Methods: m, Eps: 0.05})
		if err != nil {
			t.Fatalf("methods %v: %v", m, err)
		}
		ref, _, err := Improve(w.Instance, Options{Methods: m, Eps: 0.05, FullReeval: true})
		if err != nil {
			t.Fatalf("methods %v: %v", m, err)
		}
		if inc.Score() != ref.Score() {
			t.Errorf("methods %v: incremental score %v != full %v", m, inc.Score(), ref.Score())
		}
	}
}
