package improve

import (
	"sync"

	"repro/internal/core"
)

// This file implements the incremental candidate re-evaluation machinery of
// the driver. The invariants it relies on:
//
//  1. Per-fragment versions. The live state carries a version counter per
//     fragment, bumped whenever a match touching that fragment is added,
//     removed, or restricted. Simulations never bump versions (clones drop
//     the map).
//
//  2. Recorded read sets. A simulation records every fragment whose match
//     data it consults (all per-fragment reads funnel through
//     state.fragMatchIDs and state.degree), together with the live version
//     at read time. A cached gain is reusable iff every recorded fragment
//     still has its recorded version: the simulation would replay the exact
//     same event sequence, so the gain is bit-identical to a fresh run.
//
//  3. Value-independent gains. Attempt gains are accumulated as a running
//     delta over match additions/removals/restrictions (state.delta), never
//     as a difference of whole-state sums, so a gain does not depend on
//     matches the attempt never touched — neither logically nor through
//     floating-point summation order.
//
//  4. Lazy TPA contributions. tpaBatch consults a fragment's current
//     contribution only after finding a positive placement for it, so
//     candidates do not read (and therefore do not depend on) fragments
//     that cannot participate in their improvement.
//
// Together these make the incremental driver accept exactly the same
// attempt sequence as full re-evaluation (enforced by TestIncrementalMatchesFull).

// readRecorder captures the fragments a simulation reads, with the live
// version current at read time. One recorder per candidate evaluation; the
// live version map is only ever read here.
type readRecorder struct {
	vers  map[core.FragRef]uint64
	reads map[core.FragRef]uint64
}

func newReadRecorder(vers map[core.FragRef]uint64) *readRecorder {
	return &readRecorder{vers: vers, reads: make(map[core.FragRef]uint64, 8)}
}

func (r *readRecorder) note(fr core.FragRef) {
	if _, ok := r.reads[fr]; !ok {
		r.reads[fr] = r.vers[fr]
	}
}

// cacheEntry is one memoized candidate gain plus the read set that
// justifies it.
type cacheEntry struct {
	gain  float64
	reads map[core.FragRef]uint64
	// seen is the last round this entry's key was enumerated; the driver
	// sweeps unseen entries each round so the cache tracks the live
	// candidate set instead of every key ever generated.
	seen int
}

// valid reports whether every fragment the evaluation read still has the
// version it read.
func (e *cacheEntry) valid(vers map[core.FragRef]uint64) bool {
	for fr, v := range e.reads {
		if vers[fr] != v {
			return false
		}
	}
	return true
}

// alignKey identifies one site-word alignment: score of H-site h against
// M-site m at orientation rev under the instance σ.
type alignKey struct {
	h, m core.Site
	rev  bool
}

// alignMemo caches site-word alignment scores. Scores depend only on the
// instance's words and σ, both fixed for the lifetime of a solve, so the
// memo is shared by every simulation, TPA run, and replay of one solve
// (concurrent simulations included, hence the lock).
type alignMemo struct {
	mu sync.RWMutex
	m  map[alignKey]float64
}

func newAlignMemo() *alignMemo {
	return &alignMemo{m: make(map[alignKey]float64, 256)}
}

func (am *alignMemo) get(k alignKey) (float64, bool) {
	am.mu.RLock()
	v, ok := am.m[k]
	am.mu.RUnlock()
	return v, ok
}

func (am *alignMemo) put(k alignKey, v float64) {
	am.mu.Lock()
	am.m[k] = v
	am.mu.Unlock()
}

// placeKey identifies one fit-placement query: fragment x at orientation
// rev into the window [lo, hi) of fragment z.
type placeKey struct {
	x      core.FragRef
	rev    bool
	z      core.FragRef
	lo, hi int
}

// placeMemo caches Pareto placement frontiers. Like site-word scores they
// depend only on the instance words and σ, so one memo serves every
// simulation and TPA batch of a solve. Values are shared read-only slices.
type placeMemo struct {
	mu sync.RWMutex
	m  map[placeKey][]placement
}

// placement mirrors align.Placement; aliased here to avoid an import cycle
// in the key file. (Defined as a type alias in state.go.)

func newPlaceMemo() *placeMemo {
	return &placeMemo{m: make(map[placeKey][]placement, 256)}
}

func (pm *placeMemo) get(k placeKey) ([]placement, bool) {
	pm.mu.RLock()
	v, ok := pm.m[k]
	pm.mu.RUnlock()
	return v, ok
}

func (pm *placeMemo) put(k placeKey, v []placement) {
	pm.mu.Lock()
	pm.m[k] = v
	pm.mu.Unlock()
}

// workerPool is a persistent set of evaluation goroutines, created once per
// Improve call and fed one batch of candidate simulations per round —
// replacing the per-round goroutine spawn of the previous driver.
type workerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan func())}
	for i := 0; i < n; i++ {
		go func() {
			for f := range p.jobs {
				f()
				p.wg.Done()
			}
		}()
	}
	return p
}

func (p *workerPool) do(f func()) {
	p.wg.Add(1)
	p.jobs <- f
}

func (p *workerPool) wait() { p.wg.Wait() }

func (p *workerPool) close() { close(p.jobs) }
