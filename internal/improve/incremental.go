package improve

import (
	"sync"

	"repro/internal/align"
	"repro/internal/core"
)

// This file implements the incremental candidate re-evaluation machinery of
// the driver. The invariants it relies on:
//
//  1. Per-fragment versions. The live state carries a version counter per
//     fragment, bumped whenever a match touching that fragment is added,
//     removed, or restricted. Simulations never bump versions (clones drop
//     the counters).
//
//  2. Recorded read sets. A simulation records every fragment whose match
//     data it consults (all per-fragment reads funnel through
//     state.fragMatchIDs and state.degree), together with the live version
//     at read time. A cached gain is reusable iff every recorded fragment
//     still has its recorded version: the simulation would replay the exact
//     same event sequence, so the gain is bit-identical to a fresh run.
//
//  3. Value-independent gains. Attempt gains are accumulated as a running
//     delta over match additions/removals/restrictions (state.delta), never
//     as a difference of whole-state sums, so a gain does not depend on
//     matches the attempt never touched — neither logically nor through
//     floating-point summation order.
//
//  4. Lazy TPA contributions. tpaBatch consults a fragment's current
//     contribution only after finding a positive placement for it, so
//     candidates do not read (and therefore do not depend on) fragments
//     that cannot participate in their improvement.
//
// Together these make the incremental driver accept exactly the same
// attempt sequence as full re-evaluation (enforced by
// TestIncrementalMatchesFull). The enumeration subsystem
// (internal/improve/enum) caches candidate windows under the same
// version-counter scheme, so the per-round candidate list is likewise
// bit-identical to from-scratch enumeration (TestIncrementalEnumMatchesFull).

// readEntry is one recorded fragment read: the fragment plus the live
// version at first read.
type readEntry struct {
	fr  core.FragRef
	ver uint64
}

// readRecorder captures the fragments a simulation reads, with the live
// version current at read time. One recorder per candidate evaluation; the
// live version counters are only ever read here. Read sets are small (a
// simulation touches a handful of fragments), so a linear-scanned slice
// beats a map on both the first-read dedup check and the downstream
// iteration — and recording order becomes deterministic, which keeps every
// structure derived from read sets (the lazy engine's dependency lists)
// deterministic too.
type readRecorder struct {
	vers  *versions
	reads []readEntry
}

func newReadRecorder(vers *versions) *readRecorder {
	return &readRecorder{vers: vers}
}

func (r *readRecorder) note(fr core.FragRef) {
	for _, e := range r.reads {
		if e.fr == fr {
			return // first read wins
		}
	}
	r.reads = append(r.reads, readEntry{fr: fr, ver: r.vers.of(fr)})
}

// cacheEntry is one memoized candidate gain plus the read set that
// justifies it.
type cacheEntry struct {
	gain  float64
	reads []readEntry
	// seen is the last round this entry's key was enumerated; the driver
	// sweeps unseen entries each round so the cache tracks the live
	// candidate set instead of every key ever generated.
	seen int
}

// valid reports whether every fragment the evaluation read still has the
// version it read.
func (e *cacheEntry) valid(vers *versions) bool {
	for _, r := range e.reads {
		if vers.of(r.fr) != r.ver {
			return false
		}
	}
	return true
}

// alignKey identifies one site-word alignment — score of H-site h against
// M-site m at orientation rev under the instance σ — packed into two words
// for cheap hashing (fragment indices fit 20 bits, site bounds 21, far
// beyond any constructible instance; rev rides the top bit).
type alignKey struct {
	h, m uint64
}

func packSite(s core.Site) uint64 {
	return uint64(s.Species)<<62 | uint64(s.Frag)<<42 | uint64(s.Lo)<<21 | uint64(s.Hi)
}

func mkAlignKey(h, m core.Site, rev bool) alignKey {
	k := alignKey{h: packSite(h), m: packSite(m)}
	if rev {
		k.h |= 1 << 63
	}
	return k
}

// alignMemo caches site-word alignment scores. Scores depend only on the
// instance's words and σ, both fixed for the lifetime of a solve, so the
// memo is shared by every simulation, TPA run, and replay of one solve
// (concurrent simulations included, hence the lock).
type alignMemo struct {
	mu sync.RWMutex
	// seq marks a pool-less solve: every simulation, refresh, and replay
	// runs inline on the driver goroutine (see the pool == nil fallbacks),
	// so the memo skips its lock — the RWMutex atomics are measurable on
	// the hottest memos at single-worker batch scale.
	seq bool
	m   map[alignKey]float64
}

func newAlignMemo() *alignMemo {
	return &alignMemo{m: make(map[alignKey]float64, 256)}
}

func (am *alignMemo) get(k alignKey) (float64, bool) {
	if am.seq {
		v, ok := am.m[k]
		return v, ok
	}
	am.mu.RLock()
	v, ok := am.m[k]
	am.mu.RUnlock()
	return v, ok
}

func (am *alignMemo) put(k alignKey, v float64) {
	if am.seq {
		am.m[k] = v
		return
	}
	am.mu.Lock()
	am.m[k] = v
	am.mu.Unlock()
}

// placeKey identifies one fit-placement query — fragment x at orientation
// rev into the window [lo, hi) of fragment z — packed into two words so map
// lookups hash 16 bytes instead of a 40-byte struct (placements are the
// hottest memo in candidate simulation; the packing measurably cuts
// per-candidate hashing cost). Fragment indices fit 30 bits and window
// bounds 32, both far beyond any constructible instance.
type placeKey struct {
	a, b uint64
}

func mkPlaceKey(x core.FragRef, rev bool, z core.FragRef, lo, hi int) placeKey {
	a := uint64(x.Sp)<<63 | uint64(z.Sp)<<62 | uint64(x.Idx)<<31 | uint64(z.Idx)<<1
	if rev {
		a |= 1
	}
	return placeKey{a: a, b: uint64(lo)<<32 | uint64(uint32(hi))}
}

// placeMemo caches Pareto placement frontiers. Like site-word scores they
// depend only on the instance words and σ, so one memo serves every
// simulation and TPA batch of a solve. Values are shared read-only slices.
//
// The memo is the hottest lookup structure of candidate simulation — every
// TPA zone probes it twice per fragment — and a generic map spends most of
// each probe in hashing and control-group machinery. It is therefore a flat
// open-addressed table: entries are only ever inserted (a memo never
// deletes), so linear probing with doubling growth suffices, and the common
// hit is one multiply-mix, one slot load, and one 16-byte key compare.
// The table is stored as parallel key/value/used arrays rather than one
// slice of structs: the probe loop touches only keys (16 bytes) and the
// occupancy bytes, so a miss chain walks two dense arrays instead of
// dragging each slot's 24-byte value header through the cache, and the
// hot negative probe stays within a couple of cache lines.
type placeMemo struct {
	mu sync.RWMutex
	// seq: see alignMemo.seq — lock elision for pool-less solves.
	seq  bool
	keys []placeKey
	vals [][]placement
	used []bool
	mask uint64
	n    int
}

// placement mirrors align.Placement; aliased here to avoid an import cycle
// in the key file. (Defined as a type alias in state.go.)

func newPlaceMemo() *placeMemo {
	const initSlots = 1 << 10
	return &placeMemo{
		keys: make([]placeKey, initSlots),
		vals: make([][]placement, initSlots),
		used: make([]bool, initSlots),
		mask: initSlots - 1,
	}
}

// pmHash mixes the packed key words. The packing concentrates entropy in a
// few bit fields, so both words get a multiply spread and a fold before
// indexing.
func pmHash(k placeKey) uint64 {
	h := (k.a ^ 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	h ^= k.b * 0x94D049BB133111EB
	return h ^ (h >> 29)
}

func (pm *placeMemo) lookup(k placeKey) ([]placement, bool) {
	i := pmHash(k) & pm.mask
	for {
		if !pm.used[i] {
			return nil, false
		}
		if pm.keys[i] == k {
			return pm.vals[i], true
		}
		i = (i + 1) & pm.mask
	}
}

func (pm *placeMemo) insert(k placeKey, v []placement) {
	if 2*(pm.n+1) > len(pm.keys) {
		pm.grow()
	}
	i := pmHash(k) & pm.mask
	for {
		if !pm.used[i] {
			pm.keys[i], pm.vals[i], pm.used[i] = k, v, true
			pm.n++
			return
		}
		if pm.keys[i] == k {
			pm.vals[i] = v
			return
		}
		i = (i + 1) & pm.mask
	}
}

func (pm *placeMemo) grow() {
	oldKeys, oldVals, oldUsed := pm.keys, pm.vals, pm.used
	n := 2 * len(oldKeys)
	pm.keys = make([]placeKey, n)
	pm.vals = make([][]placement, n)
	pm.used = make([]bool, n)
	pm.mask = uint64(n - 1)
	for i := range oldKeys {
		if !oldUsed[i] {
			continue
		}
		j := pmHash(oldKeys[i]) & pm.mask
		for pm.used[j] {
			j = (j + 1) & pm.mask
		}
		pm.keys[j], pm.vals[j], pm.used[j] = oldKeys[i], oldVals[i], true
	}
}

func (pm *placeMemo) get(k placeKey) ([]placement, bool) {
	if pm.seq {
		return pm.lookup(k)
	}
	pm.mu.RLock()
	v, ok := pm.lookup(k)
	pm.mu.RUnlock()
	return v, ok
}

func (pm *placeMemo) put(k placeKey, v []placement) {
	if pm.seq {
		pm.insert(k, v)
		return
	}
	pm.mu.Lock()
	pm.insert(k, v)
	pm.mu.Unlock()
}

// EvalPool is a persistent set of worker goroutines for the driver's
// shardable jobs: candidate gain simulations and enumeration piece
// refreshes (internal/improve/enum). Improve creates a private pool per
// call when Options.Workers > 1, but a pool can also be created once and
// shared — safely, concurrently — by many Improve calls via Options.Eval:
// completion is tracked per submission batch (see evalBatch), not per pool,
// so batch drivers such as internal/batch reuse one set of workers across
// thousands of solves instead of spawning goroutines per instance, and the
// enumeration shards of one solve overlap with the simulations of another.
// Each worker owns an align.Scratch arena for its lifetime and passes it to
// every task, so candidate simulations reuse one set of DP buffers across
// all the solves the worker ever touches.
type EvalPool struct {
	jobs    chan func(*align.Scratch)
	workers int
	done    sync.WaitGroup // worker goroutine lifetimes, for Close
}

// NewEvalPool starts n worker goroutines. n < 1 is treated as 1.
func NewEvalPool(n int) *EvalPool {
	if n < 1 {
		n = 1
	}
	p := &EvalPool{jobs: make(chan func(*align.Scratch)), workers: n}
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.done.Done()
			s := align.NewScratch()
			defer s.Release()
			for f := range p.jobs {
				f(s)
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *EvalPool) Workers() int { return p.workers }

// Close stops the workers after the queued jobs drain. Callers must not
// submit after Close.
func (p *EvalPool) Close() {
	close(p.jobs)
	p.done.Wait()
}

// evalBatch tracks one caller's batch of jobs on a (possibly shared) pool.
// Each driver round submits its fresh candidates — and each enumeration
// refresh its dirty pieces — through its own batch and waits for exactly
// those, regardless of what other solves have in flight.
type evalBatch struct {
	p  *EvalPool
	wg sync.WaitGroup
}

func (b *evalBatch) do(f func(*align.Scratch)) {
	b.wg.Add(1)
	b.p.jobs <- func(s *align.Scratch) {
		defer b.wg.Done()
		f(s)
	}
}

func (b *evalBatch) wait() { b.wg.Wait() }
