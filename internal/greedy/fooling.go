package greedy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/symbol"
)

// FoolingInstance builds the classic adversarial family for greedy
// heuristics: n "bait" triples. In triple t, fragment hₜ scores 2w−1 with
// bait mₜ but the optimum pairs hₜ with m′ₜ (score 2w−2) and h′ₜ with mₜ
// (score 2w−2): greedy grabs the bait (2w−1 per triple), the optimum earns
// 4w−4, so greedy converges to ratio 2 from below as w grows.
//
// Every fragment is a single region, so the instance is also a worst case
// for the matching-based heuristic specifically.
func FoolingInstance(n int, w float64) *core.Instance {
	if w < 2 {
		w = 2
	}
	al := symbol.NewAlphabet()
	tb := score.NewTable()
	in := &core.Instance{Name: fmt.Sprintf("fooling-%d", n), Alpha: al, Sigma: tb}
	for t := 0; t < n; t++ {
		h := al.Intern(fmt.Sprintf("h%d", t))
		h2 := al.Intern(fmt.Sprintf("h'%d", t))
		m := al.Intern(fmt.Sprintf("m%d", t))
		m2 := al.Intern(fmt.Sprintf("m'%d", t))
		tb.Set(h, m, 2*w-1)  // bait
		tb.Set(h, m2, 2*w-2) // optimal pairing 1
		tb.Set(h2, m, 2*w-2) // optimal pairing 2
		in.H = append(in.H,
			core.Fragment{Name: fmt.Sprintf("h%d", t), Regions: symbol.Word{h}},
			core.Fragment{Name: fmt.Sprintf("h'%d", t), Regions: symbol.Word{h2}},
		)
		in.M = append(in.M,
			core.Fragment{Name: fmt.Sprintf("m%d", t), Regions: symbol.Word{m}},
			core.Fragment{Name: fmt.Sprintf("m'%d", t), Regions: symbol.Word{m2}},
		)
	}
	return in
}

// FoolingOptimum returns the optimal solution of FoolingInstance(n, w):
// every triple contributes its two cross pairings, 4w−4 per triple.
func FoolingOptimum(n int, w float64, in *core.Instance) *core.Solution {
	if w < 2 {
		w = 2
	}
	sol := &core.Solution{}
	site := func(sp core.Species, frag int) core.Site {
		return core.Site{Species: sp, Frag: frag, Lo: 0, Hi: 1}
	}
	for t := 0; t < n; t++ {
		// h_t (index 2t) with m'_t (index 2t+1).
		sol.Matches = append(sol.Matches, core.Match{
			HSite: site(core.SpeciesH, 2*t),
			MSite: site(core.SpeciesM, 2*t+1),
			Score: 2*w - 2,
		})
		// h'_t (index 2t+1) with m_t (index 2t).
		sol.Matches = append(sol.Matches, core.Match{
			HSite: site(core.SpeciesH, 2*t+1),
			MSite: site(core.SpeciesM, 2*t),
			Score: 2*w - 2,
		})
	}
	return sol
}
