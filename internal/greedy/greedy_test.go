package greedy

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/score"
	"repro/internal/symbol"
)

func randInstance(r *rand.Rand, hFrags, mFrags, fragLen, alpha int) *core.Instance {
	al := symbol.NewAlphabet()
	syms := make([]symbol.Symbol, alpha)
	for i := range syms {
		syms[i] = al.Intern(string(rune('a' + i)))
	}
	tb := score.NewTable()
	for trial := 0; trial < alpha*3; trial++ {
		a := syms[r.Intn(alpha)]
		b := syms[r.Intn(alpha)]
		if r.Intn(2) == 0 {
			b = b.Rev()
		}
		tb.Set(a, b, float64(1+r.Intn(9)))
	}
	mk := func(n int) []core.Fragment {
		fs := make([]core.Fragment, n)
		for i := range fs {
			w := make(symbol.Word, 1+r.Intn(fragLen))
			for j := range w {
				w[j] = syms[r.Intn(alpha)]
			}
			fs[i] = core.Fragment{Name: "f", Regions: w}
		}
		return fs
	}
	return &core.Instance{H: mk(hFrags), M: mk(mFrags), Alpha: al, Sigma: tb}
}

func TestMatchingConsistentAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(r, 1+r.Intn(4), 1+r.Intn(4), 3, 5)
		sol := Matching(in)
		if err := sol.Validate(in); err != nil {
			t.Fatal(err)
		}
		if !sol.IsConsistent(in) {
			t.Fatal("matching greedy inconsistent")
		}
		opt, err := exact.Solve(in, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Score() > opt.Score+1e-9 {
			t.Fatalf("greedy beats exact: %v > %v", sol.Score(), opt.Score)
		}
	}
}

func TestPlacementConsistentAndDominatesNothingWrong(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(r, 1+r.Intn(4), 1+r.Intn(3), 3, 5)
		sol := Placement(in)
		if err := sol.Validate(in); err != nil {
			t.Fatal(err)
		}
		if !sol.IsConsistent(in) {
			t.Fatal("placement greedy inconsistent")
		}
		opt, err := exact.Solve(in, exact.Solver{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Score() > opt.Score+1e-9 {
			t.Fatalf("greedy beats exact: %v > %v", sol.Score(), opt.Score)
		}
	}
}

func TestFoolingFamilyRatio(t *testing.T) {
	const w = 10.0
	for _, n := range []int{1, 3, 6} {
		in := FoolingInstance(n, w)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		opt := FoolingOptimum(n, w, in)
		if err := opt.Validate(in); err != nil {
			t.Fatal(err)
		}
		if !opt.IsConsistent(in) {
			t.Fatal("planted optimum inconsistent")
		}
		wantOpt := float64(n) * (4*w - 4)
		if opt.Score() != wantOpt {
			t.Fatalf("planted optimum %v, want %v", opt.Score(), wantOpt)
		}
		g := Matching(in)
		wantGreedy := float64(n) * (2*w - 1)
		if g.Score() != wantGreedy {
			t.Fatalf("greedy %v, want %v", g.Score(), wantGreedy)
		}
		ratio := opt.Score() / g.Score()
		if ratio < 1.8 {
			t.Fatalf("fooling ratio only %v; want ≈ 2", ratio)
		}
		// Placement greedy falls for the same bait on this family.
		p := Placement(in)
		if p.Score() != wantGreedy {
			t.Fatalf("placement greedy %v, want %v", p.Score(), wantGreedy)
		}
	}
}

func TestFoolingSmallExact(t *testing.T) {
	// For one triple the exact solver confirms the planted optimum.
	in := FoolingInstance(1, 5)
	opt, err := exact.Solve(in, exact.Solver{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Score != 16 { // 4w−4 = 16
		t.Fatalf("exact %v, want 16", opt.Score)
	}
}

func TestMatchingEmptyInstance(t *testing.T) {
	in := &core.Instance{Sigma: score.NewTable()}
	if sol := Matching(in); len(sol.Matches) != 0 {
		t.Fatal("matches from empty instance")
	}
	if sol := Placement(in); len(sol.Matches) != 0 {
		t.Fatal("placements from empty instance")
	}
}
