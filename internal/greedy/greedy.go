// Package greedy implements the baseline heuristics the paper argues
// against in §1 — best-match-first greedy strategies — together with an
// adversarial instance family on which greedy is a factor ≈2 from optimal
// while the approximation algorithms stay near the optimum. The MAX-SNP
// hardness result (Theorem 2) implies every polynomial heuristic has such a
// family; this package exhibits the classic one for greedy.
package greedy

import (
	"sort"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/score"
)

// Matching is the simplest credible heuristic: score every H×M fragment
// pair by best-orientation whole-fragment alignment, then greedily take the
// highest-scoring pairs, consuming both fragments. The result is a set of
// full–full matches (always consistent).
func Matching(in *core.Instance) *core.Solution {
	// Prepare keeps a caller-selected scoring mode (e.g. an int32-quantized
	// matrix) on its fast path; one scratch arena serves the whole sweep.
	sigma := score.Prepare(in.Sigma, in.MaxSymbolID())
	scr := align.NewScratch()
	defer scr.Release()
	type cand struct {
		h, m  int
		rev   bool
		score float64
	}
	var cands []cand
	for hi := range in.H {
		for mi := range in.M {
			sc, rev := scr.BestOrient(in.H[hi].Regions, in.M[mi].Regions, sigma)
			if sc > 0 {
				cands = append(cands, cand{h: hi, m: mi, rev: rev, score: sc})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].h != cands[j].h {
			return cands[i].h < cands[j].h
		}
		return cands[i].m < cands[j].m
	})
	usedH := make([]bool, len(in.H))
	usedM := make([]bool, len(in.M))
	sol := &core.Solution{}
	for _, c := range cands {
		if usedH[c.h] || usedM[c.m] {
			continue
		}
		usedH[c.h], usedM[c.m] = true, true
		sol.Matches = append(sol.Matches, core.Match{
			HSite: core.Site{Species: core.SpeciesH, Frag: c.h, Lo: 0, Hi: in.H[c.h].Len()},
			MSite: core.Site{Species: core.SpeciesM, Frag: c.m, Lo: 0, Hi: in.M[c.m].Len()},
			Rev:   c.rev,
			Score: c.score,
		})
	}
	return sol
}

// Placement is a stronger greedy: every Pareto placement of every H
// fragment into every M fragment is a candidate; repeatedly take the
// highest-scoring placement whose window is still free and whose H fragment
// is unused. Produces 1-islands only (full H sites in disjoint M windows).
func Placement(in *core.Instance) *core.Solution {
	sigma := score.Prepare(in.Sigma, in.MaxSymbolID())
	scr := align.NewScratch()
	defer scr.Release()
	type cand struct {
		h, m   int
		rev    bool
		lo, hi int
		score  float64
	}
	var cands []cand
	for hi := range in.H {
		h := in.H[hi].Regions
		for mi := range in.M {
			m := in.M[mi].Regions
			for o := 0; o < 2; o++ {
				rev := o == 1
				for _, p := range scr.Placements(h.Orient(rev), m, sigma, 0) {
					cands = append(cands, cand{h: hi, m: mi, rev: rev, lo: p.Lo, hi: p.Hi, score: p.Score})
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.h != b.h {
			return a.h < b.h
		}
		if a.m != b.m {
			return a.m < b.m
		}
		if a.lo != b.lo {
			return a.lo < b.lo
		}
		return !a.rev && b.rev
	})
	usedH := make([]bool, len(in.H))
	taken := make([][][2]int, len(in.M)) // occupied windows per M fragment
	sol := &core.Solution{}
	for _, c := range cands {
		if usedH[c.h] {
			continue
		}
		free := true
		for _, w := range taken[c.m] {
			if c.lo < w[1] && w[0] < c.hi {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		usedH[c.h] = true
		taken[c.m] = append(taken[c.m], [2]int{c.lo, c.hi})
		hs := core.Site{Species: core.SpeciesH, Frag: c.h, Lo: 0, Hi: in.H[c.h].Len()}
		ms := core.Site{Species: core.SpeciesM, Frag: c.m, Lo: c.lo, Hi: c.hi}
		sol.Matches = append(sol.Matches, core.Match{
			HSite: hs,
			MSite: ms,
			Rev:   c.rev,
			Score: scr.Score(in.SiteWord(hs), in.SiteWord(ms).Orient(c.rev), sigma),
		})
	}
	return sol
}
