// Package encoding reads and writes CSR instances and solutions in a
// line-oriented text format and in JSON.
//
// Text format, one record per line ('#' starts a comment):
//
//	N <instance name>
//	H <fragment name> <region> <region> ...     # H-side contig
//	M <fragment name> <region> <region> ...     # M-side contig
//	S <h-region> <m-region> <score>             # σ entry; x' reverses x
//
// Region tokens ending in ' denote reversed occurrences, matching the
// alphabet syntax of the rest of the library.
package encoding

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/symbol"
)

// WriteText serializes an instance whose scorer is a *score.Table.
func WriteText(w io.Writer, in *core.Instance) error {
	tb, ok := in.Sigma.(*score.Table)
	if !ok {
		return fmt.Errorf("encoding: only Table-scored instances can be serialized")
	}
	bw := bufio.NewWriter(w)
	if in.Name != "" {
		fmt.Fprintf(bw, "N %s\n", in.Name)
	}
	for _, sp := range []core.Species{core.SpeciesH, core.SpeciesM} {
		tag := "H"
		if sp == core.SpeciesM {
			tag = "M"
		}
		for _, f := range in.Frags(sp) {
			fmt.Fprintf(bw, "%s %s %s\n", tag, f.Name, in.FormatWord(f.Regions))
		}
	}
	type entry struct {
		a, b string
		v    float64
	}
	var entries []entry
	tb.Pairs(func(a, b symbol.Symbol, v float64) {
		entries = append(entries, entry{in.Alpha.Name(a), in.Alpha.Name(b), v})
	})
	// Deterministic output order, independent of symbol interning order.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].a != entries[j].a {
			return entries[i].a < entries[j].a
		}
		return entries[i].b < entries[j].b
	})
	for _, e := range entries {
		fmt.Fprintf(bw, "S %s %s %v\n", e.a, e.b, e.v)
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*core.Instance, error) {
	al := symbol.NewAlphabet()
	tb := score.NewTable()
	in := &core.Instance{Alpha: al, Sigma: tb}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "N":
			in.Name = strings.Join(fields[1:], " ")
		case "H", "M":
			if len(fields) < 3 {
				return nil, fmt.Errorf("encoding: line %d: fragment needs a name and regions", lineNo)
			}
			w, err := al.ParseWord(strings.Join(fields[2:], " "))
			if err != nil {
				return nil, fmt.Errorf("encoding: line %d: %w", lineNo, err)
			}
			frag := core.Fragment{Name: fields[1], Regions: w}
			if fields[0] == "H" {
				in.H = append(in.H, frag)
			} else {
				in.M = append(in.M, frag)
			}
		case "S":
			if len(fields) != 4 {
				return nil, fmt.Errorf("encoding: line %d: S needs two regions and a score", lineNo)
			}
			a, err := al.ParseSymbol(fields[1])
			if err != nil {
				return nil, fmt.Errorf("encoding: line %d: %w", lineNo, err)
			}
			b, err := al.ParseSymbol(fields[2])
			if err != nil {
				return nil, fmt.Errorf("encoding: line %d: %w", lineNo, err)
			}
			v, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("encoding: line %d: bad score %q", lineNo, fields[3])
			}
			tb.Set(a, b, v)
		default:
			return nil, fmt.Errorf("encoding: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// jsonInstance is the JSON wire form.
type jsonInstance struct {
	Name   string      `json:"name,omitempty"`
	H      []jsonFrag  `json:"h"`
	M      []jsonFrag  `json:"m"`
	Scores []jsonScore `json:"scores"`
}

type jsonFrag struct {
	Name    string   `json:"name"`
	Regions []string `json:"regions"`
}

type jsonScore struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Value float64 `json:"v"`
}

// MarshalJSON serializes an instance to indented JSON.
func MarshalJSON(in *core.Instance) ([]byte, error) {
	j, err := toWire(in)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(j, "", "  ")
}

// toWire builds the JSON wire form with deterministic score ordering.
func toWire(in *core.Instance) (*jsonInstance, error) {
	tb, ok := in.Sigma.(*score.Table)
	if !ok {
		return nil, fmt.Errorf("encoding: only Table-scored instances can be serialized")
	}
	j := jsonInstance{Name: in.Name}
	frag := func(f core.Fragment) jsonFrag {
		jf := jsonFrag{Name: f.Name}
		for _, s := range f.Regions {
			jf.Regions = append(jf.Regions, in.Alpha.Name(s))
		}
		return jf
	}
	for _, f := range in.H {
		j.H = append(j.H, frag(f))
	}
	for _, f := range in.M {
		j.M = append(j.M, frag(f))
	}
	tb.Pairs(func(a, b symbol.Symbol, v float64) {
		j.Scores = append(j.Scores, jsonScore{A: in.Alpha.Name(a), B: in.Alpha.Name(b), Value: v})
	})
	sort.Slice(j.Scores, func(a, b int) bool {
		if j.Scores[a].A != j.Scores[b].A {
			return j.Scores[a].A < j.Scores[b].A
		}
		return j.Scores[a].B < j.Scores[b].B
	})
	return &j, nil
}

// WriteJSONLine appends one instance to w as a single compact JSON line —
// the JSONL stream format consumed by csrbatch and ReadJSONL.
func WriteJSONLine(w io.Writer, in *core.Instance) error {
	j, err := toWire(in)
	if err != nil {
		return err
	}
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadJSONL parses a stream of newline-delimited JSON instances, invoking
// fn for each in stream order. Blank lines and '#' comment lines are
// skipped; fn returning an error stops the scan and returns that error.
func ReadJSONL(r io.Reader, fn func(*core.Instance) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		in, err := UnmarshalJSON([]byte(line))
		if err != nil {
			return fmt.Errorf("encoding: jsonl line %d: %w", lineNo, err)
		}
		if err := fn(in); err != nil {
			return err
		}
	}
	return sc.Err()
}

// UnmarshalJSON parses the JSON wire form.
func UnmarshalJSON(data []byte) (*core.Instance, error) {
	var j jsonInstance
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	al := symbol.NewAlphabet()
	tb := score.NewTable()
	in := &core.Instance{Name: j.Name, Alpha: al, Sigma: tb}
	parse := func(jf jsonFrag) (core.Fragment, error) {
		var w symbol.Word
		for _, tok := range jf.Regions {
			s, err := al.ParseSymbol(tok)
			if err != nil {
				return core.Fragment{}, err
			}
			w = append(w, s)
		}
		return core.Fragment{Name: jf.Name, Regions: w}, nil
	}
	for _, jf := range j.H {
		f, err := parse(jf)
		if err != nil {
			return nil, err
		}
		in.H = append(in.H, f)
	}
	for _, jf := range j.M {
		f, err := parse(jf)
		if err != nil {
			return nil, err
		}
		in.M = append(in.M, f)
	}
	for _, js := range j.Scores {
		a, err := al.ParseSymbol(js.A)
		if err != nil {
			return nil, err
		}
		b, err := al.ParseSymbol(js.B)
		if err != nil {
			return nil, err
		}
		tb.Set(a, b, js.Value)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
