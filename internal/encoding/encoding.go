// Package encoding reads and writes CSR instances and solutions in a
// line-oriented text format and in JSON.
//
// Text format, one record per line ('#' starts a comment):
//
//	N <instance name>
//	H <fragment name> <region> <region> ...     # H-side contig
//	M <fragment name> <region> <region> ...     # M-side contig
//	S <h-region> <m-region> <score>             # σ entry; x' reverses x
//
// Region tokens ending in ' denote reversed occurrences, matching the
// alphabet syntax of the rest of the library.
package encoding

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/symbol"
)

// WriteText serializes an instance whose scorer is a *score.Table.
func WriteText(w io.Writer, in *core.Instance) error {
	tb, ok := in.Sigma.(*score.Table)
	if !ok {
		return fmt.Errorf("encoding: only Table-scored instances can be serialized")
	}
	bw := bufio.NewWriter(w)
	if in.Name != "" {
		fmt.Fprintf(bw, "N %s\n", in.Name)
	}
	for _, sp := range []core.Species{core.SpeciesH, core.SpeciesM} {
		tag := "H"
		if sp == core.SpeciesM {
			tag = "M"
		}
		for _, f := range in.Frags(sp) {
			fmt.Fprintf(bw, "%s %s %s\n", tag, f.Name, in.FormatWord(f.Regions))
		}
	}
	type entry struct {
		a, b string
		v    float64
	}
	var entries []entry
	tb.Pairs(func(a, b symbol.Symbol, v float64) {
		entries = append(entries, entry{in.Alpha.Name(a), in.Alpha.Name(b), v})
	})
	// Deterministic output order, independent of symbol interning order.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].a != entries[j].a {
			return entries[i].a < entries[j].a
		}
		return entries[i].b < entries[j].b
	})
	for _, e := range entries {
		fmt.Fprintf(bw, "S %s %s %v\n", e.a, e.b, e.v)
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*core.Instance, error) {
	al := symbol.NewAlphabet()
	tb := score.NewTable()
	in := &core.Instance{Alpha: al, Sigma: tb}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "N":
			in.Name = strings.Join(fields[1:], " ")
		case "H", "M":
			if len(fields) < 3 {
				return nil, fmt.Errorf("encoding: line %d: fragment needs a name and regions", lineNo)
			}
			w, err := al.ParseWord(strings.Join(fields[2:], " "))
			if err != nil {
				return nil, fmt.Errorf("encoding: line %d: %w", lineNo, err)
			}
			frag := core.Fragment{Name: fields[1], Regions: w}
			if fields[0] == "H" {
				in.H = append(in.H, frag)
			} else {
				in.M = append(in.M, frag)
			}
		case "S":
			if len(fields) != 4 {
				return nil, fmt.Errorf("encoding: line %d: S needs two regions and a score", lineNo)
			}
			a, err := al.ParseSymbol(fields[1])
			if err != nil {
				return nil, fmt.Errorf("encoding: line %d: %w", lineNo, err)
			}
			b, err := al.ParseSymbol(fields[2])
			if err != nil {
				return nil, fmt.Errorf("encoding: line %d: %w", lineNo, err)
			}
			v, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("encoding: line %d: bad score %q", lineNo, fields[3])
			}
			tb.Set(a, b, v)
		default:
			return nil, fmt.Errorf("encoding: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// jsonInstance is the JSON wire form.
type jsonInstance struct {
	Name   string      `json:"name,omitempty"`
	H      []jsonFrag  `json:"h"`
	M      []jsonFrag  `json:"m"`
	Scores []jsonScore `json:"scores"`
}

type jsonFrag struct {
	Name    string   `json:"name"`
	Regions []string `json:"regions"`
}

type jsonScore struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Value float64 `json:"v"`
}

// MarshalJSON serializes an instance to indented JSON.
func MarshalJSON(in *core.Instance) ([]byte, error) {
	j, err := toWire(in)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(j, "", "  ")
}

// toWire builds the JSON wire form with deterministic score ordering.
func toWire(in *core.Instance) (*jsonInstance, error) {
	tb, ok := in.Sigma.(*score.Table)
	if !ok {
		return nil, fmt.Errorf("encoding: only Table-scored instances can be serialized")
	}
	j := jsonInstance{Name: in.Name}
	frag := func(f core.Fragment) jsonFrag {
		jf := jsonFrag{Name: f.Name}
		for _, s := range f.Regions {
			jf.Regions = append(jf.Regions, in.Alpha.Name(s))
		}
		return jf
	}
	for _, f := range in.H {
		j.H = append(j.H, frag(f))
	}
	for _, f := range in.M {
		j.M = append(j.M, frag(f))
	}
	tb.Pairs(func(a, b symbol.Symbol, v float64) {
		j.Scores = append(j.Scores, jsonScore{A: in.Alpha.Name(a), B: in.Alpha.Name(b), Value: v})
	})
	sort.Slice(j.Scores, func(a, b int) bool {
		if j.Scores[a].A != j.Scores[b].A {
			return j.Scores[a].A < j.Scores[b].A
		}
		return j.Scores[a].B < j.Scores[b].B
	})
	return &j, nil
}

// WriteJSONLine appends one instance to w as a single compact JSON line —
// the JSONL stream format consumed by csrbatch and ReadJSONL.
func WriteJSONLine(w io.Writer, in *core.Instance) error {
	j, err := toWire(in)
	if err != nil {
		return err
	}
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadJSONL parses a stream of newline-delimited JSON instances, invoking
// fn for each in stream order. Blank lines and '#' comment lines are
// skipped; fn returning an error stops the scan and returns that error.
//
// Score tables are content-deduplicated across the stream: instances whose
// score entries are identical share one alphabet and one *score.Table, so a
// `csrgen -shared-alphabet | csrbatch` pipeline presents the same scorer
// identity for every instance and the batch pool's per-alphabet cache
// (internal/batch) compiles — and int-quantizes — the σ matrix exactly once
// across process boundaries, just as in-process gen.Canonical workloads do.
// The shared alphabet is grown only by the reader goroutine (novel
// fragment-only region names); solvers never touch Instance.Alpha, so
// previously delivered instances are unaffected.
func ReadJSONL(r io.Reader, fn func(*core.Instance) error) error {
	return ReadJSONLWith(r, NewSigmaInterner(), fn)
}

// ReadJSONLWith is ReadJSONL with a caller-owned SigmaInterner, extending
// the σ-table dedup across streams: a server that keeps one interner per
// tenant hands every request of that tenant the same *score.Table for the
// same σ content, so the batch pool's identity-keyed cache compiles — and
// int-quantizes — the tenant's alphabet once for its lifetime instead of
// once per request.
func ReadJSONLWith(r io.Reader, si *SigmaInterner, fn func(*core.Instance) error) error {
	return scanLines(r, "jsonl", func(line string) error {
		var j jsonInstance
		if err := json.Unmarshal([]byte(line), &j); err != nil {
			return err
		}
		in, err := si.instance(&j)
		if err != nil {
			return err
		}
		if err := fn(in); err != nil {
			return lineStop{err}
		}
		return nil
	})
}

// scanLines drives the shared JSONL scanning loop: large line buffers,
// blank/'#' skipping, and positioned error wrapping. perLine errors other
// than the caller's own (wrapped in lineStop) gain the stream position.
func scanLines(r io.Reader, what string, perLine func(line string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := perLine(line); err != nil {
			if ls, ok := err.(lineStop); ok {
				return ls.err
			}
			// A read failure (body size limit, disconnect) can surface as a
			// truncated final token; the parse error it causes is a symptom,
			// so report the underlying stream error instead.
			if rerr := sc.Err(); rerr != nil {
				return rerr
			}
			return fmt.Errorf("encoding: %s line %d: %w", what, lineNo, err)
		}
	}
	return sc.Err()
}

// lineStop marks an error that came from the caller's per-record callback,
// which must propagate verbatim rather than gain a line position.
type lineStop struct{ err error }

func (l lineStop) Error() string { return l.err.Error() }

// SigmaInterner shares one alphabet + σ table across all instances (of one
// stream, or of many streams when reused via ReadJSONLWith) with identical
// score semantics. Keys are the resolved (last entry wins, as in
// score.Table.Set) canonical score triples; fragment words are parsed
// against the shared alphabet, interning any region names the σ table does
// not mention. The cache is bounded: workloads that benefit share a handful
// of tables, so past maxSigmas new σ content is parsed per line, uncached.
//
// An interner is safe for concurrent streams: instance construction — the
// only phase that touches the shared alphabets — is serialized internally,
// so two simultaneous requests of one tenant cannot race on alphabet
// growth. Instances already delivered are never mutated (solvers do not
// touch Instance.Alpha).
type SigmaInterner struct {
	mu sync.Mutex
	m  map[string]*sharedSigma
	// hits and misses count instance() resolutions served from the cache
	// vs built fresh — the per-tenant σ-affinity signal csrserve exports
	// in its tenants_detail metrics.
	hits, misses atomic.Int64
}

// Stats reports the interner's cumulative σ-content cache hits and misses.
func (d *SigmaInterner) Stats() (hits, misses int64) {
	return d.hits.Load(), d.misses.Load()
}

// NewSigmaInterner returns an empty interner.
func NewSigmaInterner() *SigmaInterner {
	return &SigmaInterner{m: make(map[string]*sharedSigma)}
}

// maxSigmas bounds the retained tables (and their key strings) so a
// heterogeneous million-line stream cannot grow reader memory linearly.
const maxSigmas = 128

type sharedSigma struct {
	al *symbol.Alphabet
	tb *score.Table
}

// resolveScores canonicalizes the wire entries into the semantic σ content:
// duplicate (A, B) pairs collapse to the last value in wire order — exactly
// what applying them to a score.Table yields — then sort by (A, B). The
// result is both the cache key material and the table-build order.
func resolveScores(scores []jsonScore) []jsonScore {
	resolved := make([]jsonScore, 0, len(scores))
	last := make(map[[2]string]int, len(scores))
	for _, s := range scores {
		if i, ok := last[[2]string{s.A, s.B}]; ok {
			resolved[i].Value = s.Value
			continue
		}
		last[[2]string{s.A, s.B}] = len(resolved)
		resolved = append(resolved, s)
	}
	sort.Slice(resolved, func(a, b int) bool {
		if resolved[a].A != resolved[b].A {
			return resolved[a].A < resolved[b].A
		}
		return resolved[a].B < resolved[b].B
	})
	return resolved
}

// instance builds a core.Instance from the wire form, reusing a previously
// built alphabet/table when the score semantics match.
func (d *SigmaInterner) instance(j *jsonInstance) (*core.Instance, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.m == nil {
		d.m = make(map[string]*sharedSigma)
	}
	// Wire-level validation, before any interning: a malformed instance must
	// fail with a message naming the defect (the HTTP frontend turns it into
	// a structured 400), and must not pollute the shared σ cache.
	if len(j.Scores) == 0 && (len(j.H) > 0 || len(j.M) > 0) {
		return nil, fmt.Errorf("instance %q has fragments but an empty score table", j.Name)
	}
	for _, s := range j.Scores {
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return nil, fmt.Errorf("instance %q: score (%s,%s) is %v", j.Name, s.A, s.B, s.Value)
		}
	}
	for _, side := range []struct {
		sp    string
		frags []jsonFrag
	}{{"h", j.H}, {"m", j.M}} {
		seen := make(map[string]int, len(side.frags))
		for i, f := range side.frags {
			if f.Name == "" {
				continue
			}
			if prev, dup := seen[f.Name]; dup {
				return nil, fmt.Errorf("instance %q: duplicate %s fragment id %q (fragments %d and %d)",
					j.Name, side.sp, f.Name, prev, i)
			}
			seen[f.Name] = i
		}
	}
	resolved := resolveScores(j.Scores)
	triples := make([]string, len(resolved))
	for i, s := range resolved {
		triples[i] = s.A + "\x00" + s.B + "\x00" + strconv.FormatFloat(s.Value, 'g', -1, 64)
	}
	k := strings.Join(triples, "\x01")
	sh, ok := d.m[k]
	if ok {
		d.hits.Add(1)
	} else {
		d.misses.Add(1)
		// First sight of this σ content: intern the score names first, in
		// canonical (resolved, sorted) order, so every later instance of
		// the key resolves them to the same symbol IDs regardless of its
		// own fragment content.
		sh = &sharedSigma{al: symbol.NewAlphabet(), tb: score.NewTable()}
		for _, js := range resolved {
			a, err := sh.al.ParseSymbol(js.A)
			if err != nil {
				return nil, err
			}
			b, err := sh.al.ParseSymbol(js.B)
			if err != nil {
				return nil, err
			}
			sh.tb.Set(a, b, js.Value)
		}
		if len(d.m) < maxSigmas {
			d.m[k] = sh
		}
	}
	in := &core.Instance{Name: j.Name, Alpha: sh.al, Sigma: sh.tb}
	parse := func(jf jsonFrag) (core.Fragment, error) {
		w := make(symbol.Word, 0, len(jf.Regions))
		for _, tok := range jf.Regions {
			s, err := sh.al.ParseSymbol(tok)
			if err != nil {
				return core.Fragment{}, err
			}
			w = append(w, s)
		}
		return core.Fragment{Name: jf.Name, Regions: w}, nil
	}
	for _, jf := range j.H {
		f, err := parse(jf)
		if err != nil {
			return nil, err
		}
		in.H = append(in.H, f)
	}
	for _, jf := range j.M {
		f, err := parse(jf)
		if err != nil {
			return nil, err
		}
		in.M = append(in.M, f)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// ResultRecord is the per-instance JSONL result line emitted by csrbatch
// and consumed by downstream pipelines via ReadJSONLResults. Index is the
// submission sequence number — in `-unordered` streams it is the only link
// back to the input order.
type ResultRecord struct {
	Index     int     `json:"index"`
	Name      string  `json:"name,omitempty"`
	Algorithm string  `json:"algorithm"`
	Score     float64 `json:"score"`
	Matches   int     `json:"matches,omitempty"`
	Rounds    int     `json:"rounds,omitempty"`
	// Partial marks a gracefully degraded solve: the deadline fired
	// mid-improvement and the record carries the last accepted solution
	// (score exact under the true σ) instead of an error. Emitted only when
	// true, so default-mode output is unchanged.
	Partial bool    `json:"partial,omitempty"`
	WallMS  float64 `json:"wall_ms"`
	Error   string  `json:"error,omitempty"`
}

// WriteJSONLResult appends one result record to w as a compact JSON line.
func WriteJSONLResult(w io.Writer, rec *ResultRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadJSONLResults parses a stream of csrbatch result lines, invoking fn
// for each record in stream order (which is completion order for
// `csrbatch -unordered` output — callers needing input order can collect by
// Index). Blank lines and '#' comments are skipped; fn returning an error
// stops the scan and returns that error. This is the reader half of the
// streamed result sink: a downstream pipeline can start consuming solved
// instances before the slowest instance of the batch finishes.
func ReadJSONLResults(r io.Reader, fn func(ResultRecord) error) error {
	return scanLines(r, "results", func(line string) error {
		var rec ResultRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return lineStop{err}
		}
		return nil
	})
}

// UnmarshalJSON parses the JSON wire form.
func UnmarshalJSON(data []byte) (*core.Instance, error) {
	var j jsonInstance
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	al := symbol.NewAlphabet()
	tb := score.NewTable()
	in := &core.Instance{Name: j.Name, Alpha: al, Sigma: tb}
	parse := func(jf jsonFrag) (core.Fragment, error) {
		var w symbol.Word
		for _, tok := range jf.Regions {
			s, err := al.ParseSymbol(tok)
			if err != nil {
				return core.Fragment{}, err
			}
			w = append(w, s)
		}
		return core.Fragment{Name: jf.Name, Regions: w}, nil
	}
	for _, jf := range j.H {
		f, err := parse(jf)
		if err != nil {
			return nil, err
		}
		in.H = append(in.H, f)
	}
	for _, jf := range j.M {
		f, err := parse(jf)
		if err != nil {
			return nil, err
		}
		in.M = append(in.M, f)
	}
	for _, js := range j.Scores {
		a, err := al.ParseSymbol(js.A)
		if err != nil {
			return nil, err
		}
		b, err := al.ParseSymbol(js.B)
		if err != nil {
			return nil, err
		}
		tb.Set(a, b, js.Value)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
